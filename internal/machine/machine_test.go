package machine_test

import (
	"testing"

	"latlab/internal/cpu"
	"latlab/internal/disk"
	"latlab/internal/machine"
	"latlab/internal/mem"
)

// The default profile must be golden-identical: every configuration a
// hardware model derives from Pentium100 equals the constants that model
// used before profiles existed.
func TestPentium100DerivationIdentities(t *testing.T) {
	p100 := machine.Pentium100()
	if got, want := cpu.PenaltiesFor(p100), cpu.DefaultPenalties(); got != want {
		t.Fatalf("PenaltiesFor(p100) = %+v, want %+v", got, want)
	}
	if got, want := mem.ConfigFor(p100), mem.DefaultConfig(); got != want {
		t.Fatalf("ConfigFor(p100) = %+v, want %+v", got, want)
	}
	if got, want := disk.ParamsFor(p100), disk.DefaultParams(); got != want {
		t.Fatalf("ParamsFor(p100) = %+v, want %+v", got, want)
	}
	c := cpu.NewFor(p100)
	if c.Freq != 100_000_000 || c.Penalties != cpu.DefaultPenalties() {
		t.Fatalf("NewFor(p100) not equivalent to the pre-profile CPU")
	}
}

func TestAllProfilesValid(t *testing.T) {
	all := machine.All()
	if len(all) == 0 || all[0].Short != "p100" {
		t.Fatalf("All must list the default profile first, got %v", machine.Shorts())
	}
	seen := map[string]bool{}
	for _, p := range all {
		p.Validate() // panics on a malformed profile
		if p.Name == "" || p.Short == "" {
			t.Fatalf("profile missing names: %+v", p)
		}
		if seen[p.Short] {
			t.Fatalf("duplicate short %q", p.Short)
		}
		seen[p.Short] = true
	}
	if got, want := len(machine.Shorts()), len(all); got != want {
		t.Fatalf("Shorts lists %d profiles, want %d", got, want)
	}
}

func TestByShort(t *testing.T) {
	for _, short := range machine.Shorts() {
		p, ok := machine.ByShort(short)
		if !ok || p.Short != short {
			t.Fatalf("ByShort(%q) = %+v, %v", short, p, ok)
		}
	}
	if _, ok := machine.ByShort("p133"); ok {
		t.Fatalf("ByShort must reject unknown ids")
	}
	if _, ok := machine.ByShort(""); ok {
		t.Fatalf("ByShort must reject the empty id")
	}
}

func TestOrDefault(t *testing.T) {
	var zero machine.Profile
	if !zero.IsZero() {
		t.Fatalf("zero profile must report IsZero")
	}
	if got := zero.OrDefault(); got.Short != "p100" {
		t.Fatalf("OrDefault(zero) = %q, want p100", got.Short)
	}
	p200 := machine.Pentium200()
	if got := p200.OrDefault(); got.Short != "p200" {
		t.Fatalf("OrDefault must keep a configured profile, got %q", got.Short)
	}
}

func TestCounterfactualsDifferOnlyWhereClaimed(t *testing.T) {
	p100 := machine.Pentium100()

	p200 := machine.Pentium200()
	if p200.ClockHz != 2*p100.ClockHz {
		t.Fatalf("p200 clock = %v", p200.ClockHz)
	}
	if p200.TLBMissCycles <= p100.TLBMissCycles || p200.DRAMLatencyCycles <= p100.DRAMLatencyCycles {
		t.Fatalf("p200 must pay more cycles per memory access (the memory wall)")
	}
	if p200.Disk != p100.Disk {
		t.Fatalf("p200 must keep the paper's disk")
	}

	ptlb := machine.PentiumTaggedTLB()
	if !ptlb.TaggedTLB {
		t.Fatalf("ptlb must be tagged")
	}
	ptlb.TaggedTLB = false
	ptlb.Name, ptlb.Short = p100.Name, p100.Short
	if ptlb.ITLBEntries != p100.ITLBEntries || ptlb.DTLBEntries != p100.DTLBEntries ||
		ptlb.L2Bytes != p100.L2Bytes || ptlb.Disk != p100.Disk {
		t.Fatalf("ptlb must differ from p100 only in the tag bit")
	}

	nol2 := machine.P100NoL2()
	if nol2.CacheLines() != 0 {
		t.Fatalf("nol2 CacheLines = %d, want 0", nol2.CacheLines())
	}
	if p100.CacheLines() != 8192 {
		t.Fatalf("p100 CacheLines = %d, want 8192 (256K of 32B lines)", p100.CacheLines())
	}

	fast := machine.P100FastDisk()
	if fast.Disk.Rotation >= p100.Disk.Rotation || fast.Disk.TransferPerBlock >= p100.Disk.TransferPerBlock {
		t.Fatalf("fastdisk must actually be faster: %+v", fast.Disk)
	}
}

func TestValidatePanicsOnMalformedProfile(t *testing.T) {
	cases := map[string]func(*machine.Profile){
		"no TLB":      func(p *machine.Profile) { p.ITLBEntries = 0 },
		"L2 no lines": func(p *machine.Profile) { p.L2LineBytes = 0 },
		"no disk":     func(p *machine.Profile) { p.Disk.Blocks = 0 },
		"odd clock":   func(p *machine.Profile) { p.ClockHz = 3_000_001 },
	}
	for name, breakIt := range cases {
		p := machine.Pentium100()
		breakIt(&p)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Validate should panic", name)
				}
			}()
			p.Validate()
		}()
	}
}
