package machine_test

import (
	"testing"

	"latlab/internal/cpu"
	"latlab/internal/disk"
	"latlab/internal/machine"
	"latlab/internal/mem"
)

// The default profile must be golden-identical: every configuration a
// hardware model derives from Pentium100 equals the constants that model
// used before profiles existed.
func TestPentium100DerivationIdentities(t *testing.T) {
	p100 := machine.Pentium100()
	if got, want := cpu.PenaltiesFor(p100), cpu.DefaultPenalties(); got != want {
		t.Fatalf("PenaltiesFor(p100) = %+v, want %+v", got, want)
	}
	if got, want := mem.ConfigFor(p100), mem.DefaultConfig(); got != want {
		t.Fatalf("ConfigFor(p100) = %+v, want %+v", got, want)
	}
	if got, want := disk.ParamsFor(p100), disk.DefaultParams(); got != want {
		t.Fatalf("ParamsFor(p100) = %+v, want %+v", got, want)
	}
	c := cpu.NewFor(p100)
	if c.Freq != 100_000_000 || c.Penalties != cpu.DefaultPenalties() {
		t.Fatalf("NewFor(p100) not equivalent to the pre-profile CPU")
	}
}

func TestAllProfilesValid(t *testing.T) {
	all := machine.All()
	if len(all) == 0 || all[0].Short != "p100" {
		t.Fatalf("All must list the default profile first, got %v", machine.Shorts())
	}
	seen := map[string]bool{}
	for _, p := range all {
		p.Validate() // panics on a malformed profile
		if p.Name == "" || p.Short == "" {
			t.Fatalf("profile missing names: %+v", p)
		}
		if seen[p.Short] {
			t.Fatalf("duplicate short %q", p.Short)
		}
		seen[p.Short] = true
	}
	if got, want := len(machine.Shorts()), len(all); got != want {
		t.Fatalf("Shorts lists %d profiles, want %d", got, want)
	}
}

func TestByShort(t *testing.T) {
	for _, short := range machine.Shorts() {
		p, ok := machine.ByShort(short)
		if !ok || p.Short != short {
			t.Fatalf("ByShort(%q) = %+v, %v", short, p, ok)
		}
	}
	if _, ok := machine.ByShort("p133"); ok {
		t.Fatalf("ByShort must reject unknown ids")
	}
	if _, ok := machine.ByShort(""); ok {
		t.Fatalf("ByShort must reject the empty id")
	}
}

func TestOrDefault(t *testing.T) {
	var zero machine.Profile
	if !zero.IsZero() {
		t.Fatalf("zero profile must report IsZero")
	}
	if got := zero.OrDefault(); got.Short != "p100" {
		t.Fatalf("OrDefault(zero) = %q, want p100", got.Short)
	}
	p200 := machine.Pentium200()
	if got := p200.OrDefault(); got.Short != "p200" {
		t.Fatalf("OrDefault must keep a configured profile, got %q", got.Short)
	}
}

func TestCounterfactualsDifferOnlyWhereClaimed(t *testing.T) {
	p100 := machine.Pentium100()

	p200 := machine.Pentium200()
	if p200.ClockHz != 2*p100.ClockHz {
		t.Fatalf("p200 clock = %v", p200.ClockHz)
	}
	if p200.TLBMissCycles <= p100.TLBMissCycles || p200.DRAMLatencyCycles <= p100.DRAMLatencyCycles {
		t.Fatalf("p200 must pay more cycles per memory access (the memory wall)")
	}
	if p200.Disk != p100.Disk {
		t.Fatalf("p200 must keep the paper's disk")
	}

	ptlb := machine.PentiumTaggedTLB()
	if !ptlb.TaggedTLB {
		t.Fatalf("ptlb must be tagged")
	}
	ptlb.TaggedTLB = false
	ptlb.Name, ptlb.Short = p100.Name, p100.Short
	if ptlb.ITLBEntries != p100.ITLBEntries || ptlb.DTLBEntries != p100.DTLBEntries ||
		ptlb.L2Bytes != p100.L2Bytes || ptlb.Disk != p100.Disk {
		t.Fatalf("ptlb must differ from p100 only in the tag bit")
	}

	nol2 := machine.P100NoL2()
	if nol2.CacheLines() != 0 {
		t.Fatalf("nol2 CacheLines = %d, want 0", nol2.CacheLines())
	}
	if p100.CacheLines() != 8192 {
		t.Fatalf("p100 CacheLines = %d, want 8192 (256K of 32B lines)", p100.CacheLines())
	}

	fast := machine.P100FastDisk()
	if fast.Disk.Rotation >= p100.Disk.Rotation || fast.Disk.TransferPerBlock >= p100.Disk.TransferPerBlock {
		t.Fatalf("fastdisk must actually be faster: %+v", fast.Disk)
	}
}

func TestValidatePanicsOnMalformedProfile(t *testing.T) {
	cases := map[string]func(*machine.Profile){
		"no TLB":      func(p *machine.Profile) { p.ITLBEntries = 0 },
		"L2 no lines": func(p *machine.Profile) { p.L2LineBytes = 0 },
		"no disk":     func(p *machine.Profile) { p.Disk.Blocks = 0 },
		"odd clock":   func(p *machine.Profile) { p.ClockHz = 3_000_001 },
	}
	for name, breakIt := range cases {
		p := machine.Pentium100()
		breakIt(&p)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Validate should panic", name)
				}
			}()
			p.Validate()
		}()
	}
	modern := map[string]func(*machine.Profile){
		"negative cores":   func(p *machine.Profile) { p.Cores = -1 },
		"3-way SMT":        func(p *machine.Profile) { p.SMTPerCore = 3 },
		"odd SMT count":    func(p *machine.Profile) { p.Cores = 7 },
		"descending ramp":  func(p *machine.Profile) { p.DVFS.Levels[1] = p.DVFS.Levels[0] },
		"odd DVFS level":   func(p *machine.Profile) { p.DVFS.Levels[0] = 3_000_001 },
		"torn ladder":      func(p *machine.Profile) { p.DVFS.Levels[1] = 0 },
		"max not clock":    func(p *machine.Profile) { p.ClockHz = 500_000_000 },
		"inverted pcts":    func(p *machine.Profile) { p.DVFS.UpPct, p.DVFS.DownPct = 10, 25 },
		"negative window":  func(p *machine.Profile) { p.IRQCoalesce.Window = -1 },
		"negative batch":   func(p *machine.Profile) { p.IRQCoalesce.MaxBatch = -1 },
		"negative stretch": func(p *machine.Profile) { p.SMTContentionPct = -5 },
	}
	for name, breakIt := range modern {
		p := machine.Modern2026()
		breakIt(&p)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: Validate should panic", name)
				}
			}()
			p.Validate()
		}()
	}
}

// The 1996 profiles must be byte-unaware of the modern axes: zero-value
// cores/DVFS/coalescing is the contract that keeps the pre-modern code
// paths (and every golden) intact.
func TestLegacyProfilesHaveModernAxesOff(t *testing.T) {
	for _, p := range machine.All() {
		if p.Era == "2026" {
			continue
		}
		if p.Era != "1996" {
			t.Fatalf("%s: unexpected era %q", p.Short, p.Era)
		}
		if p.Cores != 0 || p.SMTPerCore != 0 || p.SMTContentionPct != 0 || p.MigrationCycles != 0 {
			t.Fatalf("%s: 1996 profile has core topology set", p.Short)
		}
		if p.DVFS.Enabled() || p.DVFS != (machine.DVFSSpec{}) {
			t.Fatalf("%s: 1996 profile has DVFS set", p.Short)
		}
		if p.IRQCoalesce.Enabled() || p.IRQCoalesce != (machine.IRQCoalesceSpec{}) {
			t.Fatalf("%s: 1996 profile has IRQ coalescing set", p.Short)
		}
		if p.Desc == "" {
			t.Fatalf("%s: missing description", p.Short)
		}
	}
}

// The modern counterfactuals must differ from the pinned base only on
// the axis each one claims to probe.
func TestModernCounterfactualsDifferOnlyWhereClaimed(t *testing.T) {
	base := machine.Modern2026Pinned()

	full := machine.Modern2026()
	if !full.DVFS.Enabled() {
		t.Fatalf("m2026 must enable DVFS")
	}
	full.DVFS = machine.DVFSSpec{}
	full.Name, full.Short, full.Desc = base.Name, base.Short, base.Desc
	if full != base {
		t.Fatalf("m2026 must differ from m2026-pin only in the governor")
	}

	uni := machine.Modern2026Uni()
	if uni.Cores != 1 || uni.SMTPerCore != 0 {
		t.Fatalf("m2026-uni must be a single logical CPU, got %+v", uni)
	}
	if uni.Disk != base.Disk || uni.ClockHz != base.ClockHz {
		t.Fatalf("m2026-uni must keep the pinned machine's disk and clock")
	}

	hdd := machine.Modern2026HDD()
	if hdd.Disk != machine.Pentium100().Disk {
		t.Fatalf("m2026-hdd must carry the paper's disk")
	}
	if hdd.IRQCoalesce.Enabled() {
		t.Fatalf("m2026-hdd must run per-request interrupts")
	}

	noirq := machine.Modern2026NoCoalesce()
	if noirq.IRQCoalesce.Enabled() {
		t.Fatalf("m2026-noirq must disable coalescing")
	}
	noirq.IRQCoalesce = base.IRQCoalesce
	noirq.Name, noirq.Short, noirq.Desc = base.Name, base.Short, base.Desc
	if noirq != base {
		t.Fatalf("m2026-noirq must differ from m2026-pin only in coalescing")
	}
}

// The governor must be a pure function: deterministic, clamped, and
// monotone in observed load for any fixed starting level. Monotonicity
// is the property that makes the DVFS distortion interpretable — more
// load never lowers the clock.
func TestDVFSNextDeterministicAndMonotone(t *testing.T) {
	spec := machine.Modern2026().DVFS
	n := spec.NumLevels()
	if n < 2 {
		t.Fatalf("m2026 ladder has %d levels, want >= 2", n)
	}
	for level := -1; level <= n; level++ {
		prev := -1
		for busy := 0; busy <= 100; busy++ {
			next := spec.Next(level, busy)
			if again := spec.Next(level, busy); again != next {
				t.Fatalf("Next(%d,%d) is not deterministic: %d vs %d", level, busy, next, again)
			}
			if next < 0 || next >= n {
				t.Fatalf("Next(%d,%d) = %d outside ladder", level, busy, next)
			}
			if next < prev {
				t.Fatalf("Next(%d,·) not monotone: busy %d%% gives level %d after %d", level, busy, next, prev)
			}
			prev = next
		}
	}
	// Endpoint behavior: saturated load climbs to max, idle decays to min.
	level := 0
	for i := 0; i < n+2; i++ {
		level = spec.Next(level, 100)
	}
	if level != n-1 {
		t.Fatalf("saturated load must reach the top level, got %d", level)
	}
	for i := 0; i < n+2; i++ {
		level = spec.Next(level, 0)
	}
	if level != 0 {
		t.Fatalf("idle must decay to the bottom level, got %d", level)
	}
	if off := (machine.DVFSSpec{}); off.Enabled() || off.Next(3, 100) != 0 || off.Level(2) != 0 || off.NumLevels() != 0 {
		t.Fatalf("zero-value spec must be inert")
	}
	if spec.Level(-4) != spec.Levels[0] || spec.Level(99) != spec.Levels[n-1] {
		t.Fatalf("Level must clamp to the ladder")
	}
}
