// Package machine defines hardware profiles for the simulated machine.
//
// The paper attributes interactive-latency differences to architectural
// causes: the Pentium's untagged TLBs are flushed on every
// protection-domain crossing (§5.3), the L2 bounds how much working set
// survives between events, and the raw clock rate scales every code
// path (§5.1). A Profile makes each of those causes a parameter instead
// of a constant, so the attributions can be tested as counterfactuals —
// rerun the same persona on a machine with tagged TLBs and NT 3.51's
// server-architecture penalty should collapse toward NT 4.0's.
//
// Profiles are symmetric with the persona layer: a persona is an OS
// parameter set over the shared kernel, a Profile is a hardware
// parameter set under it. Pentium100 is the paper's experimental
// machine (§2.1) and is the byte-identical default: booting any persona
// on it reproduces exactly the schedules the simulator produced when
// the constants were hardcoded. The other profiles are named what-ifs.
//
// The package sits below the hardware models: cpu, mem, and disk each
// derive their own configuration from a Profile (cpu.NewFor,
// mem.ConfigFor, disk.ParamsFor), and kernel.Config carries the Profile
// so system.New can thread one machine through a whole boot.
package machine

import (
	"fmt"

	"latlab/internal/simtime"
)

// DiskGeometry describes drive geometry and speed, mirroring the
// positional service-time model in internal/disk (seek + rotation +
// transfer). Driver policy (retry budget, backoff) is not geometry and
// stays in disk.Params.
type DiskGeometry struct {
	// Blocks is the drive capacity in 512-byte blocks.
	Blocks int64
	// BlocksPerCylinder converts block distance to seek distance.
	BlocksPerCylinder int64
	// SeekSettle is the minimum cost of any seek.
	SeekSettle simtime.Duration
	// SeekPerCylinder is the incremental cost per cylinder crossed.
	SeekPerCylinder simtime.Duration
	// MaxSeek caps the seek cost (full-stroke seek).
	MaxSeek simtime.Duration
	// Rotation is the time of one revolution.
	Rotation simtime.Duration
	// TransferPerBlock is the media transfer time per 512-byte block.
	TransferPerBlock simtime.Duration
	// ControllerOverhead is the fixed per-request command cost.
	ControllerOverhead simtime.Duration
}

// MaxDVFSLevels bounds the frequency ladder. A fixed-size array (not a
// slice) keeps Profile comparable with ==, which the test suite and the
// derivation-identity checks rely on.
const MaxDVFSLevels = 6

// DVFSSpec describes a load-following frequency governor: an ascending
// ladder of clock levels plus the busy-percent thresholds that move the
// operating point up or down one level per governor window (the kernel
// evaluates it every clock tick). The zero value means DVFS is off and
// the machine runs at Profile.ClockHz forever — the pre-modern code
// path, byte-identical.
//
// The cycle counter is modeled as an invariant TSC: it always advances
// at Profile.ClockHz (the base/max clock) regardless of the current
// operating point, exactly like modern x86 TSCs. The idle-loop
// methodology calibrates against that base clock, so running slower
// elongates its samples — the central measurement distortion the
// ext-modern-dvfs experiment quantifies.
type DVFSSpec struct {
	// Levels is the ascending clock ladder, zero-terminated; the last
	// non-zero entry must equal the profile's ClockHz (the max/turbo
	// level), and every entry must divide a second evenly.
	Levels [MaxDVFSLevels]simtime.Hz
	// UpPct and DownPct are non-idle busy-percent thresholds over one
	// governor window: above UpPct the governor steps one level up,
	// below DownPct one level down, otherwise it holds.
	UpPct   int
	DownPct int
}

// Enabled reports whether the spec describes an active governor.
func (s DVFSSpec) Enabled() bool { return s.Levels[0] != 0 }

// NumLevels returns the number of configured ladder levels.
func (s DVFSSpec) NumLevels() int {
	n := 0
	for _, hz := range s.Levels {
		if hz == 0 {
			break
		}
		n++
	}
	return n
}

// Level returns the clock at ladder position i, clamped to the ladder.
func (s DVFSSpec) Level(i int) simtime.Hz {
	n := s.NumLevels()
	if n == 0 {
		return 0
	}
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return s.Levels[i]
}

// Next returns the ladder position after one governor window that
// observed busyPct percent non-idle busy time. It is a pure function —
// deterministic, and monotone in busyPct for any fixed level — which is
// what makes the governor property-testable.
func (s DVFSSpec) Next(level, busyPct int) int {
	n := s.NumLevels()
	if n == 0 {
		return 0
	}
	if level < 0 {
		level = 0
	}
	if level >= n {
		level = n - 1
	}
	switch {
	case busyPct > s.UpPct && level < n-1:
		return level + 1
	case busyPct < s.DownPct && level > 0:
		return level - 1
	}
	return level
}

// IRQCoalesceSpec describes device-interrupt coalescing, NVMe-style: a
// completed I/O arms a coalescing timer instead of raising its interrupt
// immediately, and the interrupt fires once for every completion that
// accumulated inside the window (or as soon as MaxBatch completions are
// pending). The zero value means every completion raises its own
// interrupt — the 1996 behavior, byte-identical.
type IRQCoalesceSpec struct {
	// Window is the coalescing timer armed by the first pending
	// completion; 0 disables coalescing entirely.
	Window simtime.Duration
	// MaxBatch flushes early once this many completions are pending
	// (0 means no batch cap, timer only).
	MaxBatch int
}

// Enabled reports whether completions are coalesced.
func (s IRQCoalesceSpec) Enabled() bool { return s.Window > 0 }

// Profile is one hardware configuration. The zero value is not a valid
// machine; use Pentium100 (or OrDefault, which maps the zero value to
// it so structs embedding a Profile keep working unconfigured).
type Profile struct {
	// Name is the full name ("Pentium 100 MHz"); Short a slug ("p100")
	// used on CLI flags and in run manifests.
	Name  string
	Short string

	// Era groups profiles by hardware generation ("1996", "2026") and
	// Desc is a one-line description; both are documentation fields
	// (latbench -list, doc walkthroughs) with no simulation effect.
	Era  string
	Desc string

	// ClockHz is the CPU clock. Segment costs are cycle counts, so the
	// clock scales every computation's wall time; it must divide a
	// second evenly (see simtime.Hz.Validate).
	ClockHz simtime.Hz

	// ITLBEntries and DTLBEntries size the instruction and data TLBs.
	ITLBEntries int
	DTLBEntries int
	// TaggedTLB marks TLB entries with an address-space tag, so
	// protection-domain crossings and process switches do not flush
	// them — the counterfactual the paper raises against the Pentium's
	// untagged TLBs (§5.3, reference [5]).
	TaggedTLB bool

	// L2Bytes and L2LineBytes size the unified L2 cache; the line count
	// is derived (CacheLines). L2Bytes == 0 means no L2 at all: every
	// cache reference goes to DRAM. The L2 hit latency is folded into
	// segment base cycles (a warm hit is the baseline the cost model is
	// calibrated against); only the miss penalty is explicit.
	L2Bytes     int
	L2LineBytes int

	// TLBMissCycles is the cost of one TLB refill (the hardware page
	// walk); DRAMLatencyCycles the cost of one cache miss to DRAM.
	// Both are cycle counts: on a faster clock the same absolute
	// memory latency costs proportionally more cycles, which is why
	// Pentium200 does not simply halve every latency.
	TLBMissCycles     int64
	DRAMLatencyCycles int64
	// SegLoadCycles and UnalignedCycles are the micro-architectural
	// costs of a segment-register load and a misaligned access (the
	// 16-bit code signature Windows 95 pays).
	SegLoadCycles   int64
	UnalignedCycles int64

	// Disk is the drive geometry.
	Disk DiskGeometry

	// Cores is the number of logical CPUs. 0 or 1 means the classic
	// single-core machine (the exact pre-modern code path). Core 0 runs
	// the full scheduler; cores 1..Cores-1 are auxiliary run queues
	// hosting background housekeeping threads.
	Cores int
	// SMTPerCore is the number of logical CPUs sharing one physical
	// core (2 = hyperthreading). Logical CPUs c and c^1 are siblings
	// when SMTPerCore is 2; 0 or 1 means no SMT.
	SMTPerCore int
	// SMTContentionPct stretches a run chunk's duration by this percent
	// when its SMT sibling is busy at chunk start — the shared-pipeline
	// tax of running two hardware threads on one core.
	SMTContentionPct int
	// MigrationCycles is the cache/TLB-refill tax charged when a thread
	// runs on a different core than its previous chunk (work stealing).
	MigrationCycles int64

	// DVFS is the frequency governor; zero value = fixed clock.
	DVFS DVFSSpec
	// IRQCoalesce batches disk-completion interrupts; zero value =
	// one interrupt per completion.
	IRQCoalesce IRQCoalesceSpec
}

// IsZero reports whether p is the unconfigured zero value.
func (p Profile) IsZero() bool { return p.ClockHz == 0 }

// OrDefault returns p, or Pentium100 when p is the zero value, so
// configs that never set a machine keep the paper's hardware.
func (p Profile) OrDefault() Profile {
	if p.IsZero() {
		return Pentium100()
	}
	return p
}

// CacheLines returns the derived L2 line count; 0 means no L2.
func (p Profile) CacheLines() int {
	if p.L2Bytes <= 0 || p.L2LineBytes <= 0 {
		return 0
	}
	return p.L2Bytes / p.L2LineBytes
}

// Validate panics on a malformed profile: a clock without an integral
// nanosecond period, empty TLBs, or a degenerate disk.
func (p Profile) Validate() {
	p.ClockHz.Validate()
	if p.ITLBEntries <= 0 || p.DTLBEntries <= 0 {
		panic(fmt.Sprintf("machine: %s has non-positive TLB entries", p.Short))
	}
	if p.L2Bytes < 0 || (p.L2Bytes > 0 && p.L2LineBytes <= 0) {
		panic(fmt.Sprintf("machine: %s has malformed L2 geometry", p.Short))
	}
	if p.Disk.Blocks <= 0 || p.Disk.BlocksPerCylinder <= 0 {
		panic(fmt.Sprintf("machine: %s has degenerate disk geometry", p.Short))
	}
	if p.Cores < 0 || p.SMTPerCore < 0 || p.SMTPerCore > 2 || p.SMTContentionPct < 0 || p.MigrationCycles < 0 {
		panic(fmt.Sprintf("machine: %s has malformed core topology", p.Short))
	}
	if p.SMTPerCore == 2 && p.Cores%2 != 0 {
		panic(fmt.Sprintf("machine: %s has SMT with an odd logical-CPU count", p.Short))
	}
	if p.DVFS.Enabled() {
		n := p.DVFS.NumLevels()
		prev := simtime.Hz(0)
		for i := 0; i < n; i++ {
			hz := p.DVFS.Levels[i]
			hz.Validate()
			if hz <= prev {
				panic(fmt.Sprintf("machine: %s DVFS ladder is not strictly ascending", p.Short))
			}
			prev = hz
		}
		for i := n; i < MaxDVFSLevels; i++ {
			if p.DVFS.Levels[i] != 0 {
				panic(fmt.Sprintf("machine: %s DVFS ladder is not zero-terminated", p.Short))
			}
		}
		if p.DVFS.Levels[n-1] != p.ClockHz {
			panic(fmt.Sprintf("machine: %s DVFS max level must equal ClockHz", p.Short))
		}
		if p.DVFS.UpPct <= p.DVFS.DownPct || p.DVFS.UpPct > 100 || p.DVFS.DownPct < 0 {
			panic(fmt.Sprintf("machine: %s has malformed DVFS thresholds", p.Short))
		}
	}
	if p.IRQCoalesce.Window < 0 || p.IRQCoalesce.MaxBatch < 0 {
		panic(fmt.Sprintf("machine: %s has malformed IRQ coalescing", p.Short))
	}
}

// fujitsuM1606 is the paper's dedicated SCSI disk (§2.1): ~1 GB,
// 5400 RPM (11.1 ms/rev), ~10 ms average seek, ~5 MB/s media rate.
func fujitsuM1606() DiskGeometry {
	return DiskGeometry{
		Blocks:             2_000_000,
		BlocksPerCylinder:  800,
		SeekSettle:         simtime.FromMillis(1.5),
		SeekPerCylinder:    8 * simtime.Microsecond,
		MaxSeek:            simtime.FromMillis(18),
		Rotation:           simtime.FromMillis(11.1),
		TransferPerBlock:   100 * simtime.Microsecond, // 512 B / ~5 MB/s
		ControllerOverhead: simtime.FromMillis(0.5),
	}
}

// Pentium100 is the paper's experimental machine (§2.1): 100 MHz
// Pentium, 32-entry ITLB / 64-entry DTLB (untagged), 256 KB L2 of
// 32-byte lines, and the Fujitsu M1606SAU disk. It is the default
// everywhere and is golden-identical: every derived configuration
// equals the constants the hardware models used before profiles
// existed.
func Pentium100() Profile {
	return Profile{
		Name:              "Pentium 100 MHz",
		Short:             "p100",
		Era:               "1996",
		Desc:              "the paper's experimental machine (§2.1); the byte-identical default",
		ClockHz:           100_000_000,
		ITLBEntries:       32,
		DTLBEntries:       64,
		L2Bytes:           256 << 10,
		L2LineBytes:       32,
		TLBMissCycles:     25,
		DRAMLatencyCycles: 20,
		SegLoadCycles:     12,
		UnalignedCycles:   3,
		Disk:              fujitsuM1606(),
	}
}

// Pentium200 doubles the clock. DRAM and the page walk are absolute
// latencies, so their cycle costs roughly double (the memory wall);
// everything compute-bound halves in wall time while memory-bound work
// barely moves — which is exactly the profile of difference the paper's
// counter attribution separates.
func Pentium200() Profile {
	p := Pentium100()
	p.Name = "Pentium 200 MHz"
	p.Short = "p200"
	p.Desc = "double the clock, memory wall intact (more cycles per DRAM access)"
	p.ClockHz = 200_000_000
	p.TLBMissCycles = 40
	p.DRAMLatencyCycles = 40
	return p
}

// PentiumTaggedTLB is the paper's §6 counterfactual: the same machine
// with address-space-tagged TLBs, so protection-domain crossings stop
// flushing them. NT 3.51's server-architecture penalty — crossings plus
// consequential TLB refills — should collapse toward NT 4.0's.
func PentiumTaggedTLB() Profile {
	p := Pentium100()
	p.Name = "Pentium 100 MHz, tagged TLBs"
	p.Short = "ptlb"
	p.Desc = "the paper's §6 counterfactual: crossings stop flushing the TLBs"
	p.TaggedTLB = true
	return p
}

// P100NoL2 removes the L2 entirely: every cache reference pays the DRAM
// latency, so warm-state reuse — the thing that makes steady-state
// latency so much better than cold-start in Table 1 — is destroyed for
// the cache while the TLBs still work.
func P100NoL2() Profile {
	p := Pentium100()
	p.Name = "Pentium 100 MHz, no L2"
	p.Short = "nol2"
	p.Desc = "no L2 at all: every cache reference pays the DRAM latency"
	p.L2Bytes = 0
	p.L2LineBytes = 0
	return p
}

// P100FastDisk swaps in a faster drive (7200 RPM class, ~10 MB/s): the
// counterfactual for Table 1's multi-second disk-bound latencies.
func P100FastDisk() Profile {
	p := Pentium100()
	p.Name = "Pentium 100 MHz, fast disk"
	p.Short = "fastdisk"
	p.Desc = "7200 RPM-class drive: the what-if for Table 1's disk-bound seconds"
	p.Disk = DiskGeometry{
		Blocks:             2_000_000,
		BlocksPerCylinder:  800,
		SeekSettle:         simtime.FromMillis(1.0),
		SeekPerCylinder:    5 * simtime.Microsecond,
		MaxSeek:            simtime.FromMillis(12),
		Rotation:           simtime.FromMillis(8.33),
		TransferPerBlock:   50 * simtime.Microsecond, // 512 B / ~10 MB/s
		ControllerOverhead: simtime.FromMillis(0.3),
	}
	return p
}

// nvmeDrive is an NVMe-class SSD: no moving parts, so the positional
// model degenerates — a cylinder so large every request lands on it
// (block distance never crosses one, so seek time is identically zero)
// and zero rotation. What remains is the fixed command cost (~12 µs
// submission-to-completion for a queue-depth-1 read on a 2026 drive)
// plus media transfer at ~3.4 GB/s (~150 ns per 512-byte block). The
// disk model itself is untouched: geometry alone expresses the device.
func nvmeDrive() DiskGeometry {
	return DiskGeometry{
		Blocks:             4_000_000_000, // ~2 TB
		BlocksPerCylinder:  4_000_000_000, // one "cylinder": seek distance always 0
		SeekSettle:         0,
		SeekPerCylinder:    0,
		MaxSeek:            0,
		Rotation:           0,
		TransferPerBlock:   150 * simtime.Nanosecond,
		ControllerOverhead: 12 * simtime.Microsecond,
	}
}

// Modern2026 is a 2026-class desktop: 8 logical CPUs (4 physical cores
// × 2-way SMT), a load-following DVFS governor, NVMe storage, and
// interrupt coalescing.
//
// The clock deserves a caveat: simtime requires an integral-nanosecond
// cycle period (simtime.Hz.Validate), so 1 GHz is the highest
// representable clock. Modern2026 therefore models a 2026 core as a
// 1 GHz machine with 2026-era per-cycle costs — a ~30 ns page walk is
// 30 cycles, ~80 ns DRAM is 80 cycles, against p100's 250 ns / 200 ns.
// Relative to p100 that is a 10× clock and an honest memory wall; the
// EXPERIMENTS.md chapter discusses the cap explicitly. The DVFS ladder
// (250/500/1000 MHz) steps by the same integral-period rule.
func Modern2026() Profile {
	return Profile{
		Name:              "2026 desktop (8T/4C, DVFS, NVMe)",
		Short:             "m2026",
		Era:               "2026",
		Desc:              "2026 desktop: SMT multicore, DVFS governor, NVMe, IRQ coalescing",
		ClockHz:           1_000_000_000,
		ITLBEntries:       512,
		DTLBEntries:       1024,
		TaggedTLB:         true, // PCID: no crossing flushes
		L2Bytes:           8 << 20,
		L2LineBytes:       64,
		TLBMissCycles:     30, // ~30 ns page walk
		DRAMLatencyCycles: 80, // ~80 ns DRAM
		SegLoadCycles:     1,  // segmentation is vestigial
		UnalignedCycles:   0,  // unaligned access is free on modern cores
		Disk:              nvmeDrive(),
		Cores:             8,
		SMTPerCore:        2,
		SMTContentionPct:  35,
		MigrationCycles:   3000, // ~3 µs of cache/TLB refill
		DVFS: DVFSSpec{
			Levels:  [MaxDVFSLevels]simtime.Hz{250_000_000, 500_000_000, 1_000_000_000},
			UpPct:   25,
			DownPct: 10,
		},
		IRQCoalesce: IRQCoalesceSpec{
			Window:   200 * simtime.Microsecond,
			MaxBatch: 8,
		},
	}
}

// Modern2026Pinned is Modern2026 with the governor disabled — the clock
// pinned at the 1 GHz max level. The control arm for ext-modern-dvfs,
// and the base for the other single-axis modern counterfactuals (which
// keep the clock pinned so the axis under test is the only difference).
func Modern2026Pinned() Profile {
	p := Modern2026()
	p.Name = "2026 desktop, clock pinned at max"
	p.Short = "m2026-pin"
	p.Desc = "m2026 with DVFS off: clock pinned at 1 GHz"
	p.DVFS = DVFSSpec{}
	return p
}

// Modern2026Uni squeezes the pinned machine down to one logical CPU, so
// background housekeeping contends with foreground work on core 0 the
// way it always did in 1996 — the control arm for ext-modern-smt.
func Modern2026Uni() Profile {
	p := Modern2026Pinned()
	p.Name = "2026 desktop, single core"
	p.Short = "m2026-uni"
	p.Desc = "m2026-pin squeezed to one logical CPU (no background offload)"
	p.Cores = 1
	p.SMTPerCore = 0
	p.SMTContentionPct = 0
	p.MigrationCycles = 0
	return p
}

// Modern2026HDD puts the paper's 1996 Fujitsu spindle under the 2026
// CPU — the control arm for ext-modern-nvme. Coalescing is also off
// (per-request interrupts), matching how a 1996 driver ran the drive.
func Modern2026HDD() Profile {
	p := Modern2026Pinned()
	p.Name = "2026 desktop, 1996 disk"
	p.Short = "m2026-hdd"
	p.Desc = "m2026-pin with the paper's 5400 RPM Fujitsu disk"
	p.Disk = fujitsuM1606()
	p.IRQCoalesce = IRQCoalesceSpec{}
	return p
}

// Modern2026NoCoalesce turns interrupt coalescing off on the NVMe
// machine, so every completion raises its own interrupt — the control
// arm for ext-modern-irq.
func Modern2026NoCoalesce() Profile {
	p := Modern2026Pinned()
	p.Name = "2026 desktop, per-request IRQs"
	p.Short = "m2026-noirq"
	p.Desc = "m2026-pin with IRQ coalescing off (one interrupt per completion)"
	p.IRQCoalesce = IRQCoalesceSpec{}
	return p
}

// All returns every named profile, default first.
func All() []Profile {
	return []Profile{
		Pentium100(), Pentium200(), PentiumTaggedTLB(), P100NoL2(), P100FastDisk(),
		Modern2026(), Modern2026Pinned(), Modern2026Uni(), Modern2026HDD(), Modern2026NoCoalesce(),
	}
}

// ByShort returns the profile with the given short name, or ok=false.
func ByShort(short string) (Profile, bool) {
	for _, p := range All() {
		if p.Short == short {
			return p, true
		}
	}
	return Profile{}, false
}

// Shorts returns the short names of every profile, in All order.
func Shorts() []string {
	all := All()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Short
	}
	return out
}
