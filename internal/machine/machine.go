// Package machine defines hardware profiles for the simulated machine.
//
// The paper attributes interactive-latency differences to architectural
// causes: the Pentium's untagged TLBs are flushed on every
// protection-domain crossing (§5.3), the L2 bounds how much working set
// survives between events, and the raw clock rate scales every code
// path (§5.1). A Profile makes each of those causes a parameter instead
// of a constant, so the attributions can be tested as counterfactuals —
// rerun the same persona on a machine with tagged TLBs and NT 3.51's
// server-architecture penalty should collapse toward NT 4.0's.
//
// Profiles are symmetric with the persona layer: a persona is an OS
// parameter set over the shared kernel, a Profile is a hardware
// parameter set under it. Pentium100 is the paper's experimental
// machine (§2.1) and is the byte-identical default: booting any persona
// on it reproduces exactly the schedules the simulator produced when
// the constants were hardcoded. The other profiles are named what-ifs.
//
// The package sits below the hardware models: cpu, mem, and disk each
// derive their own configuration from a Profile (cpu.NewFor,
// mem.ConfigFor, disk.ParamsFor), and kernel.Config carries the Profile
// so system.New can thread one machine through a whole boot.
package machine

import (
	"fmt"

	"latlab/internal/simtime"
)

// DiskGeometry describes drive geometry and speed, mirroring the
// positional service-time model in internal/disk (seek + rotation +
// transfer). Driver policy (retry budget, backoff) is not geometry and
// stays in disk.Params.
type DiskGeometry struct {
	// Blocks is the drive capacity in 512-byte blocks.
	Blocks int64
	// BlocksPerCylinder converts block distance to seek distance.
	BlocksPerCylinder int64
	// SeekSettle is the minimum cost of any seek.
	SeekSettle simtime.Duration
	// SeekPerCylinder is the incremental cost per cylinder crossed.
	SeekPerCylinder simtime.Duration
	// MaxSeek caps the seek cost (full-stroke seek).
	MaxSeek simtime.Duration
	// Rotation is the time of one revolution.
	Rotation simtime.Duration
	// TransferPerBlock is the media transfer time per 512-byte block.
	TransferPerBlock simtime.Duration
	// ControllerOverhead is the fixed per-request command cost.
	ControllerOverhead simtime.Duration
}

// Profile is one hardware configuration. The zero value is not a valid
// machine; use Pentium100 (or OrDefault, which maps the zero value to
// it so structs embedding a Profile keep working unconfigured).
type Profile struct {
	// Name is the full name ("Pentium 100 MHz"); Short a slug ("p100")
	// used on CLI flags and in run manifests.
	Name  string
	Short string

	// ClockHz is the CPU clock. Segment costs are cycle counts, so the
	// clock scales every computation's wall time; it must divide a
	// second evenly (see simtime.Hz.Validate).
	ClockHz simtime.Hz

	// ITLBEntries and DTLBEntries size the instruction and data TLBs.
	ITLBEntries int
	DTLBEntries int
	// TaggedTLB marks TLB entries with an address-space tag, so
	// protection-domain crossings and process switches do not flush
	// them — the counterfactual the paper raises against the Pentium's
	// untagged TLBs (§5.3, reference [5]).
	TaggedTLB bool

	// L2Bytes and L2LineBytes size the unified L2 cache; the line count
	// is derived (CacheLines). L2Bytes == 0 means no L2 at all: every
	// cache reference goes to DRAM. The L2 hit latency is folded into
	// segment base cycles (a warm hit is the baseline the cost model is
	// calibrated against); only the miss penalty is explicit.
	L2Bytes     int
	L2LineBytes int

	// TLBMissCycles is the cost of one TLB refill (the hardware page
	// walk); DRAMLatencyCycles the cost of one cache miss to DRAM.
	// Both are cycle counts: on a faster clock the same absolute
	// memory latency costs proportionally more cycles, which is why
	// Pentium200 does not simply halve every latency.
	TLBMissCycles     int64
	DRAMLatencyCycles int64
	// SegLoadCycles and UnalignedCycles are the micro-architectural
	// costs of a segment-register load and a misaligned access (the
	// 16-bit code signature Windows 95 pays).
	SegLoadCycles   int64
	UnalignedCycles int64

	// Disk is the drive geometry.
	Disk DiskGeometry
}

// IsZero reports whether p is the unconfigured zero value.
func (p Profile) IsZero() bool { return p.ClockHz == 0 }

// OrDefault returns p, or Pentium100 when p is the zero value, so
// configs that never set a machine keep the paper's hardware.
func (p Profile) OrDefault() Profile {
	if p.IsZero() {
		return Pentium100()
	}
	return p
}

// CacheLines returns the derived L2 line count; 0 means no L2.
func (p Profile) CacheLines() int {
	if p.L2Bytes <= 0 || p.L2LineBytes <= 0 {
		return 0
	}
	return p.L2Bytes / p.L2LineBytes
}

// Validate panics on a malformed profile: a clock without an integral
// nanosecond period, empty TLBs, or a degenerate disk.
func (p Profile) Validate() {
	p.ClockHz.Validate()
	if p.ITLBEntries <= 0 || p.DTLBEntries <= 0 {
		panic(fmt.Sprintf("machine: %s has non-positive TLB entries", p.Short))
	}
	if p.L2Bytes < 0 || (p.L2Bytes > 0 && p.L2LineBytes <= 0) {
		panic(fmt.Sprintf("machine: %s has malformed L2 geometry", p.Short))
	}
	if p.Disk.Blocks <= 0 || p.Disk.BlocksPerCylinder <= 0 {
		panic(fmt.Sprintf("machine: %s has degenerate disk geometry", p.Short))
	}
}

// fujitsuM1606 is the paper's dedicated SCSI disk (§2.1): ~1 GB,
// 5400 RPM (11.1 ms/rev), ~10 ms average seek, ~5 MB/s media rate.
func fujitsuM1606() DiskGeometry {
	return DiskGeometry{
		Blocks:             2_000_000,
		BlocksPerCylinder:  800,
		SeekSettle:         simtime.FromMillis(1.5),
		SeekPerCylinder:    8 * simtime.Microsecond,
		MaxSeek:            simtime.FromMillis(18),
		Rotation:           simtime.FromMillis(11.1),
		TransferPerBlock:   100 * simtime.Microsecond, // 512 B / ~5 MB/s
		ControllerOverhead: simtime.FromMillis(0.5),
	}
}

// Pentium100 is the paper's experimental machine (§2.1): 100 MHz
// Pentium, 32-entry ITLB / 64-entry DTLB (untagged), 256 KB L2 of
// 32-byte lines, and the Fujitsu M1606SAU disk. It is the default
// everywhere and is golden-identical: every derived configuration
// equals the constants the hardware models used before profiles
// existed.
func Pentium100() Profile {
	return Profile{
		Name:              "Pentium 100 MHz",
		Short:             "p100",
		ClockHz:           100_000_000,
		ITLBEntries:       32,
		DTLBEntries:       64,
		L2Bytes:           256 << 10,
		L2LineBytes:       32,
		TLBMissCycles:     25,
		DRAMLatencyCycles: 20,
		SegLoadCycles:     12,
		UnalignedCycles:   3,
		Disk:              fujitsuM1606(),
	}
}

// Pentium200 doubles the clock. DRAM and the page walk are absolute
// latencies, so their cycle costs roughly double (the memory wall);
// everything compute-bound halves in wall time while memory-bound work
// barely moves — which is exactly the profile of difference the paper's
// counter attribution separates.
func Pentium200() Profile {
	p := Pentium100()
	p.Name = "Pentium 200 MHz"
	p.Short = "p200"
	p.ClockHz = 200_000_000
	p.TLBMissCycles = 40
	p.DRAMLatencyCycles = 40
	return p
}

// PentiumTaggedTLB is the paper's §6 counterfactual: the same machine
// with address-space-tagged TLBs, so protection-domain crossings stop
// flushing them. NT 3.51's server-architecture penalty — crossings plus
// consequential TLB refills — should collapse toward NT 4.0's.
func PentiumTaggedTLB() Profile {
	p := Pentium100()
	p.Name = "Pentium 100 MHz, tagged TLBs"
	p.Short = "ptlb"
	p.TaggedTLB = true
	return p
}

// P100NoL2 removes the L2 entirely: every cache reference pays the DRAM
// latency, so warm-state reuse — the thing that makes steady-state
// latency so much better than cold-start in Table 1 — is destroyed for
// the cache while the TLBs still work.
func P100NoL2() Profile {
	p := Pentium100()
	p.Name = "Pentium 100 MHz, no L2"
	p.Short = "nol2"
	p.L2Bytes = 0
	p.L2LineBytes = 0
	return p
}

// P100FastDisk swaps in a faster drive (7200 RPM class, ~10 MB/s): the
// counterfactual for Table 1's multi-second disk-bound latencies.
func P100FastDisk() Profile {
	p := Pentium100()
	p.Name = "Pentium 100 MHz, fast disk"
	p.Short = "fastdisk"
	p.Disk = DiskGeometry{
		Blocks:             2_000_000,
		BlocksPerCylinder:  800,
		SeekSettle:         simtime.FromMillis(1.0),
		SeekPerCylinder:    5 * simtime.Microsecond,
		MaxSeek:            simtime.FromMillis(12),
		Rotation:           simtime.FromMillis(8.33),
		TransferPerBlock:   50 * simtime.Microsecond, // 512 B / ~10 MB/s
		ControllerOverhead: simtime.FromMillis(0.3),
	}
	return p
}

// All returns every named profile, default first.
func All() []Profile {
	return []Profile{Pentium100(), Pentium200(), PentiumTaggedTLB(), P100NoL2(), P100FastDisk()}
}

// ByShort returns the profile with the given short name, or ok=false.
func ByShort(short string) (Profile, bool) {
	for _, p := range All() {
		if p.Short == short {
			return p, true
		}
	}
	return Profile{}, false
}

// Shorts returns the short names of every profile, in All order.
func Shorts() []string {
	all := All()
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.Short
	}
	return out
}
