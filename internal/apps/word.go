package apps

import (
	"latlab/internal/kernel"
	"latlab/internal/rng"
	"latlab/internal/simtime"
	"latlab/internal/system"
)

// WordParams configures the word-processor model.
type WordParams struct {
	// Justify enables line justification work per keystroke.
	Justify bool
	// SpellCheck enables the interactive spell checker: each character
	// queues background analysis units, processed by a timer-driven
	// coroutine when the application is otherwise idle — the structure
	// the paper found so hard to analyze in §5.4 ("responds to input
	// events and handles background computations asynchronously using an
	// internal system of coroutines").
	SpellCheck bool
	// Seed drives the per-keystroke work dispersion: occasional line
	// re-breaks and glyph-cache refills add an exponentially distributed
	// extra cost, producing the heavy upper tail behind the paper's
	// Table 2 (101 events >100 ms, 26 >110 ms, 8 >120 ms out of ~1000).
	Seed uint64
	// TailMeanCycles is the mean of that extra cost (0 disables).
	TailMeanCycles float64
}

// DefaultWordParams matches the paper's §5.4 run: "line justification and
// interactive spell checking were enabled".
func DefaultWordParams() WordParams {
	return WordParams{Justify: true, SpellCheck: true, Seed: 1996, TailMeanCycles: 550_000}
}

// Word models the paper's §5.4 word processor. Its structural features
// reproduce the behaviours the paper measured:
//
//   - Keystrokes cost far more than Notepad's (formatting, variable-width
//     fonts, spell checking) — ≈30 ms typical under hand input.
//   - Background spell work runs in timer-paced chunks when idle, so
//     hand-typed events end quickly but background activity is higher.
//   - WM_QUEUESYNC (posted by the Test driver after every input) acts as
//     a synchronization point: Word flushes pending background work
//     synchronously, inflating Test-measured keystrokes to ≈80-100 ms —
//     the paper's hypothesis for the Test/hand discrepancy.
//   - Carriage returns reformat the paragraph and drain the backlog: long
//     under hand input (>200 ms, large backlog) but capped under Test
//     (≤≈140 ms, backlog flushed every keystroke).
//   - Under the Windows 95 persona the application lingers after every
//     event (persona.WordLinger), so the system never goes idle and all
//     measured latencies appear to be seconds long — why the paper
//     reports no Windows 95 Word numbers.
type Word struct {
	sys    *system.System
	thread *kernel.Thread
	params WordParams

	// Pending is the spell-check backlog in units.
	Pending int
	// LayoutPending is the deferred paragraph-layout backlog (one unit
	// per character since the last carriage return); it is drained at
	// carriage returns — or by WM_QUEUESYNC on every keystroke, which is
	// why Test-driven runs never show the >200 ms hand-typed CRs (§5.4).
	LayoutPending int
	// BackgroundBursts counts timer-driven background work chunks.
	BackgroundBursts int

	rand *rng.Source
}

// Background pacing: one chunk roughly every three clock ticks.
const wordTimerPeriod = 30 * simtime.Millisecond

// spellUnitCycles is one background analysis unit (≈8 ms).
const spellUnitCycles = 800_000

// NewWord spawns the word processor.
func NewWord(sys *system.System, params WordParams) *Word {
	w := &Word{sys: sys, params: params, rand: rng.New(params.Seed)}
	code := pageRange(320, 14)
	data := pageRange(1100, 10)
	format := appSeg("word-format", 2_100_000, code, data) // ~21 ms
	justify := appSeg("word-justify", 500_000, code, data[:4])
	reformat := appSeg("word-reformat", 5_200_000, code, data) // CR: ~52 ms
	spell := appSeg("word-spell", spellUnitCycles, code[:6], data[4:])
	layout := appSeg("word-layout", 100_000, code[:8], data[:6]) // 1 ms/char deferred layout
	flush := appSeg("word-sync-flush", 4_600_000, code, data)    // QUEUESYNC flush
	linger := appSeg("word-95-housekeeping", 1_000_000, code[:4], data[:2])
	qs := queueSyncSeg(sys.P)

	timerArmed := false
	armTimer := func(tc *kernel.TC) {
		if w.params.SpellCheck && w.Pending > 0 && !timerArmed {
			tc.SetTimer(wordTimerPeriod, kernel.WMIdleWork, 0)
			timerArmed = true
		}
	}
	drainAll := func(tc *kernel.TC) {
		for w.Pending > 0 {
			tc.Compute(spell)
			w.Pending--
		}
		for w.LayoutPending > 0 {
			tc.Compute(layout)
			w.LayoutPending--
		}
	}

	w.thread = sys.SpawnApp("word", func(tc *kernel.TC) {
		sys.Win.BindApp(code)
		for {
			m := tc.GetMessage()
			switch m.Kind {
			case kernel.WMQuit:
				return
			case kernel.WMIdleWork:
				// Background work; not a user event, but under the
				// lingering persona it too is followed by housekeeping.
				timerArmed = false
				if w.params.SpellCheck && w.Pending > 0 {
					tc.Compute(spell)
					w.Pending--
					w.BackgroundBursts++
				}
			case kernel.WMQueueSync:
				// Test's synchronization point: flush state and drain
				// the backlog synchronously.
				tc.Compute(qs)
				tc.Compute(flush)
				drainAll(tc)
			case kernel.WMChar:
				if m.Param == '\n' {
					tc.Compute(reformat)
					sys.Win.RepaintLines(tc, 10)
					drainAll(tc) // reformat needs spell state settled
				} else {
					tc.Compute(format)
					if params.TailMeanCycles > 0 {
						extra := w.rand.Exponential(params.TailMeanCycles)
						if max := 6 * params.TailMeanCycles; extra > max {
							extra = max
						}
						seg := format
						seg.Name = "word-rebreak"
						seg.BaseCycles = int64(extra)
						seg.Instructions = seg.BaseCycles / 2
						seg.DataRefs = seg.BaseCycles / 4
						tc.Compute(seg)
					}
					if w.params.Justify {
						tc.Compute(justify)
						sys.Win.RepaintLines(tc, 1)
					}
					sys.Win.TextOut(tc, 1)
					if w.params.SpellCheck {
						w.Pending++
					}
					if w.params.Justify {
						w.LayoutPending++
					}
				}
			case kernel.WMKeyDown:
				// Arrows/backspace: cursor work plus modest redraw.
				tc.Compute(justify)
				sys.Win.TextOut(tc, 1)
			}
			// Windows 95: keep grinding after the event (paper §5.1/5.4:
			// "the system does not become idle immediately after Word
			// finishes handling an event").
			if d := sys.P.WordLinger; d > 0 {
				chunks := int(d / (10 * simtime.Millisecond))
				for i := 0; i < chunks && !tc.HasMessage(); i++ {
					tc.Compute(linger)
				}
			}
			armTimer(tc)
		}
	})
	return w
}

// Thread returns the application's main thread.
func (w *Word) Thread() *kernel.Thread { return w.thread }
