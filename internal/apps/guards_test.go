package apps

import (
	"testing"

	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/system"
)

func bootNT40() *system.System { return system.New(system.Config{Persona: persona.NT40()}) }

func TestPowerpointCommandGuards(t *testing.T) {
	sys := bootNT40()
	defer sys.Shutdown()
	ppt := NewPowerpoint(sys, DefaultPowerpointParams())
	served := sys.K.Disk().Served()

	// Open/save/page-down before launch are ignored.
	for _, cmd := range []int64{CmdOpen, CmdSave} {
		sys.K.PostMessage(ppt.Thread(), kernel.WMCommand, cmd)
	}
	sys.K.PostMessage(ppt.Thread(), kernel.WMKeyDown, input.VKPageDown)
	sys.K.RunFor(500 * simtime.Millisecond)
	if ppt.Saves != 0 || ppt.PageDowns != 0 || ppt.CurSlide != 0 {
		t.Fatalf("pre-launch commands should be ignored: %+v", ppt)
	}
	if sys.K.Disk().Served() != served {
		t.Fatalf("pre-launch commands touched the disk")
	}

	// Double launch is idempotent.
	sys.K.PostMessage(ppt.Thread(), kernel.WMCommand, CmdLaunch)
	sys.K.RunFor(30 * simtime.Second)
	sys.K.PostMessage(ppt.Thread(), kernel.WMCommand, CmdLaunch)
	sys.K.RunFor(5 * simtime.Second)
	if ppt.Launches != 1 {
		t.Fatalf("launches = %d, want 1", ppt.Launches)
	}

	// Out-of-range object id is ignored.
	sys.K.PostMessage(ppt.Thread(), kernel.WMCommand, CmdOpen)
	sys.K.RunFor(30 * simtime.Second)
	sys.K.PostMessage(ppt.Thread(), kernel.WMCommand, CmdEditObject+99)
	sys.K.RunFor(2 * simtime.Second)
	if ppt.Edits != 0 {
		t.Fatalf("bogus object id should be ignored")
	}
	// End-edit with no session is a no-op.
	sys.K.PostMessage(ppt.Thread(), kernel.WMCommand, CmdEndEdit)
	sys.K.RunFor(2 * simtime.Second)
}

func TestPowerpointSlideWraparound(t *testing.T) {
	sys := bootNT40()
	defer sys.Shutdown()
	params := DefaultPowerpointParams()
	params.Slides = 3
	params.ObjectSlides = nil
	ppt := NewPowerpoint(sys, params)
	sys.K.PostMessage(ppt.Thread(), kernel.WMCommand, CmdLaunch)
	sys.K.RunFor(30 * simtime.Second)
	sys.K.PostMessage(ppt.Thread(), kernel.WMCommand, CmdOpen)
	sys.K.RunFor(30 * simtime.Second)
	for i := 0; i < 4; i++ {
		sys.K.PostMessage(ppt.Thread(), kernel.WMKeyDown, input.VKPageDown)
		sys.K.RunFor(2 * simtime.Second)
	}
	// 1 → 2 → 3 → 1 → 2.
	if ppt.CurSlide != 2 {
		t.Fatalf("slide = %d, want wraparound to 2", ppt.CurSlide)
	}
	if ppt.PageDowns != 4 {
		t.Fatalf("pagedowns = %d", ppt.PageDowns)
	}
}

func TestPowerpointAccessors(t *testing.T) {
	sys := bootNT40()
	defer sys.Shutdown()
	ppt := NewPowerpoint(sys, DefaultPowerpointParams())
	if len(ppt.Objects()) != 3 {
		t.Fatalf("objects = %d", len(ppt.Objects()))
	}
	if ppt.ObjectSlide(0) != 10 || ppt.ObjectSlide(2) != 30 {
		t.Fatalf("object slides wrong")
	}
	if ppt.Thread() == nil {
		t.Fatalf("thread nil")
	}
}

func TestPowerpointTypingOutsideEdit(t *testing.T) {
	sys := bootNT40()
	defer sys.Shutdown()
	ppt := NewPowerpoint(sys, DefaultPowerpointParams())
	sys.K.PostMessage(ppt.Thread(), kernel.WMCommand, CmdLaunch)
	sys.K.RunFor(30 * simtime.Second)
	sys.K.PostMessage(ppt.Thread(), kernel.WMCommand, CmdOpen)
	sys.K.RunFor(30 * simtime.Second)
	busy := sys.K.NonIdleBusyTime()
	sys.K.PostMessage(ppt.Thread(), kernel.WMChar, 'x') // slide-title typing
	sys.K.RunFor(2 * simtime.Second)
	if sys.K.NonIdleBusyTime() <= busy {
		t.Fatalf("typing outside an OLE session should still do work")
	}
}

func TestNotepadUnknownKeyFallsThrough(t *testing.T) {
	sys := bootNT40()
	defer sys.Shutdown()
	n := NewNotepad(sys, 250_000)
	sys.K.RunFor(5 * simtime.Second) // load document
	busy := sys.K.NonIdleBusyTime()
	sys.K.PostMessage(n.Thread(), kernel.WMKeyDown, 0x70 /* F1 */)
	sys.K.RunFor(simtime.Second)
	if sys.K.NonIdleBusyTime() <= busy {
		t.Fatalf("unknown keydown should be translated and DefWindowProc'd")
	}
	if n.Chars != 0 || n.Refreshes != 0 {
		t.Fatalf("unknown key should not count as edit activity")
	}
}

func TestNotepadArrowKeysCheap(t *testing.T) {
	sys := bootNT40()
	defer sys.Shutdown()
	n := NewNotepad(sys, 250_000)
	sys.K.RunFor(5 * simtime.Second)
	b0 := sys.K.NonIdleBusyTime()
	sys.K.PostMessage(n.Thread(), kernel.WMKeyDown, input.VKLeft)
	sys.K.RunFor(simtime.Second)
	arrowCost := sys.K.NonIdleBusyTime() - b0

	b1 := sys.K.NonIdleBusyTime()
	sys.K.PostMessage(n.Thread(), kernel.WMKeyDown, input.VKPageDown)
	sys.K.RunFor(2 * simtime.Second)
	pageCost := sys.K.NonIdleBusyTime() - b1
	if arrowCost*10 > pageCost {
		t.Fatalf("arrow %v should be far cheaper than page-down %v", arrowCost, pageCost)
	}
}

func TestNotepadBackspaceCountsAsChar(t *testing.T) {
	sys := bootNT40()
	defer sys.Shutdown()
	n := NewNotepad(sys, 250_000)
	sys.K.RunFor(5 * simtime.Second)
	sys.K.PostMessage(n.Thread(), kernel.WMKeyDown, input.VKBack)
	sys.K.RunFor(simtime.Second)
	if n.Chars != 1 {
		t.Fatalf("backspace should count as a char edit")
	}
}

func TestEchoHandlesQueueSync(t *testing.T) {
	sys := bootNT40()
	defer sys.Shutdown()
	e := NewEcho(sys, 100_000)
	sys.K.PostMessage(e.Thread(), kernel.WMQueueSync, 0)
	sys.K.PostMessage(e.Thread(), kernel.WMChar, 'a')
	sys.K.RunFor(simtime.Second)
	if len(e.Conventional) != 1 {
		t.Fatalf("conventional measurements = %d, want 1 (QS not measured)", len(e.Conventional))
	}
}

func TestWordQuitAndKeydown(t *testing.T) {
	sys := bootNT40()
	defer sys.Shutdown()
	w := NewWord(sys, DefaultWordParams())
	sys.K.PostMessage(w.Thread(), kernel.WMKeyDown, input.VKLeft)
	sys.K.RunFor(simtime.Second)
	sys.K.PostMessage(w.Thread(), kernel.WMQuit, 0)
	sys.K.RunFor(simtime.Second)
	if w.Thread().State() != kernel.StateDone {
		t.Fatalf("word should exit on WM_QUIT")
	}
}

func TestWordSpellCheckDisabled(t *testing.T) {
	sys := bootNT40()
	defer sys.Shutdown()
	params := DefaultWordParams()
	params.SpellCheck = false
	params.Justify = false
	params.TailMeanCycles = 0
	w := NewWord(sys, params)
	script := &input.Script{Events: input.TypeText(simtime.Time(100*simtime.Millisecond), "abc", 200*simtime.Millisecond)}
	script.Install(sys)
	sys.K.Run(script.End().Add(2 * simtime.Second))
	if w.Pending != 0 || w.LayoutPending != 0 || w.BackgroundBursts != 0 {
		t.Fatalf("disabled features still queued work: %+v", w)
	}
}
