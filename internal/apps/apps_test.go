package apps

import (
	"testing"

	"latlab/internal/core"
	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/system"
)

// rig boots a persona with probe + idle-loop instrumentation.
type rig struct {
	sys *system.System
	pr  *core.Probe
	il  *core.IdleLoop
}

func newRig(p persona.P, bufCap int) *rig {
	sys := system.New(system.Config{Persona: p})
	pr := core.AttachProbe(sys.K)
	il := core.StartIdleLoop(sys.K, bufCap)
	return &rig{sys: sys, pr: pr, il: il}
}

func (r *rig) extract(thread *kernel.Thread, strip bool) []core.Event {
	return core.Extract(r.il.Samples(), r.pr.Msgs, core.ExtractOptions{
		Thread:         thread.ID(),
		StripQueueSync: strip,
	})
}

func secs(s float64) simtime.Time { return simtime.Time(simtime.FromSeconds(s)) }

func TestEchoConventionalVsIdleLoop(t *testing.T) {
	// Fig. 1: the conventional (in-application) measurement misses the
	// interrupt handling and rescheduling time; the idle-loop latency is
	// larger by that system time.
	r := newRig(persona.NT40(), 400_000)
	defer r.sys.Shutdown()
	e := NewEcho(r.sys, 900_000) // ≈9 ms of application work
	script := &input.Script{Events: input.TypeText(secs(0.2), "abcde", 200*simtime.Millisecond)}
	script.Install(r.sys)
	r.sys.K.Run(secs(2))

	events := r.extract(e.Thread(), false)
	if len(events) != 5 || len(e.Conventional) != 5 {
		t.Fatalf("events = %d, conventional = %d", len(events), len(e.Conventional))
	}
	for i, ev := range events {
		conv := e.Conventional[i]
		if ev.Latency <= conv {
			t.Fatalf("event %d: idle-loop %v should exceed conventional %v", i, ev.Latency, conv)
		}
		gap := ev.Latency - conv
		if gap < 10*simtime.Microsecond || gap > simtime.Millisecond {
			t.Fatalf("event %d: missed system time = %v, want tens of µs", i, gap)
		}
	}
}

func TestNotepadLatencyClasses(t *testing.T) {
	// §5.1: echo keystrokes < 10 ms; newline/page-down ≥ 28 ms.
	r := newRig(persona.NT40(), 1_000_000)
	defer r.sys.Shutdown()
	n := NewNotepad(r.sys, 250_000)
	text := input.SampleText(60) + "\n" + input.SampleText(40)
	ev := input.TypeText(secs(0.5), text, 120*simtime.Millisecond)
	ev = append(ev, input.KeyDowns(secs(0.5).Add(simtime.Duration(len(text))*120*simtime.Millisecond+simtime.Second), input.VKPageDown, 2, 500*simtime.Millisecond)...)
	script := &input.Script{Events: ev, QueueSync: true}
	script.Install(r.sys)
	r.sys.K.Run(script.End().Add(2 * simtime.Second))

	events := r.extract(n.Thread(), true)
	if len(events) != len(ev) {
		t.Fatalf("events = %d, want %d", len(events), len(ev))
	}
	var chars, refreshes int
	for _, e := range events {
		ms := e.Latency.Milliseconds()
		switch {
		case ms < 10:
			chars++
		case ms >= 25:
			refreshes++
		default:
			t.Fatalf("event latency %vms in neither class", ms)
		}
	}
	if chars != 100 || refreshes != 3 {
		t.Fatalf("chars=%d refreshes=%d, want 100/3", chars, refreshes)
	}
	if n.Chars != 100 || n.Refreshes != 3 {
		t.Fatalf("app counters: %d/%d", n.Chars, n.Refreshes)
	}
}

func TestNotepadW95SmallestCumulativeLatencyLargestElapsed(t *testing.T) {
	// The Fig. 7 anomaly. Identical input on all three personas; compare
	// cumulative (stripped) latency and busy elapsed time.
	type res struct {
		cum  simtime.Duration
		busy simtime.Duration
	}
	results := map[string]res{}
	for _, p := range persona.All() {
		r := newRig(p, 1_000_000)
		n := NewNotepad(r.sys, 250_000)
		script := &input.Script{
			Events:    input.TypeText(secs(0.5), input.SampleText(120), 120*simtime.Millisecond),
			QueueSync: true,
		}
		script.Install(r.sys)
		r.sys.K.Run(script.End().Add(2 * simtime.Second))
		events := r.extract(n.Thread(), true)
		if len(events) != 120 {
			t.Fatalf("%s: events = %d", p.Short, len(events))
		}
		var cum simtime.Duration
		for _, e := range events {
			cum += e.Latency
		}
		results[p.Short] = res{cum: cum, busy: r.sys.K.NonIdleBusyTime()}
		r.sys.Shutdown()
	}
	w95, nt40, nt351 := results["w95"], results["nt40"], results["nt351"]
	if !(w95.cum < nt40.cum && nt40.cum < nt351.cum) {
		t.Fatalf("cumulative latency want w95 < nt40 < nt351, got %v / %v / %v",
			w95.cum, nt40.cum, nt351.cum)
	}
	// Elapsed (busy) time largest on W95: WM_QUEUESYNC processing.
	if !(w95.busy > nt40.busy && w95.busy > nt351.busy) {
		t.Fatalf("busy time want w95 largest, got w95=%v nt40=%v nt351=%v",
			w95.busy, nt40.busy, nt351.busy)
	}
}

func TestWordHandVsTest(t *testing.T) {
	// §5.4: Test-driven events ≈80-100 ms typical, ≤≈140 ms max; hand
	// input ≈32 ms typical with CRs >200 ms.
	text := input.SampleText(180) + "\n" + input.SampleText(60)

	// Test-driven: fixed pacing + WM_QUEUESYNC.
	rTest := newRig(persona.NT351(), 2_000_000)
	wTest := NewWord(rTest.sys, DefaultWordParams())
	st := &input.Script{Events: input.TypeText(secs(0.5), text, 150*simtime.Millisecond), QueueSync: true}
	st.Install(rTest.sys)
	rTest.sys.K.Run(st.End().Add(3 * simtime.Second))
	testEvents := rTest.extract(wTest.Thread(), false)
	rTest.sys.Shutdown()

	// Hand-driven: typist pacing, no QUEUESYNC.
	rHand := newRig(persona.NT351(), 4_000_000)
	wHand := NewWord(rHand.sys, DefaultWordParams())
	sh := &input.Script{Events: input.NewTypist(11, 100).Type(secs(0.5), text)}
	sh.Install(rHand.sys)
	rHand.sys.K.Run(sh.End().Add(3 * simtime.Second))
	handEvents := rHand.extract(wHand.Thread(), false)
	handBursts := wHand.BackgroundBursts
	rHand.sys.Shutdown()

	if len(testEvents) != len(text)+0 || len(handEvents) != len(text) {
		t.Fatalf("events: test=%d hand=%d, want %d", len(testEvents), len(handEvents), len(text))
	}

	typical := func(evs []core.Event) float64 {
		var chars []float64
		for _, e := range evs {
			if e.Kind == kernel.WMChar && e.Latency < simtime.FromMillis(190) {
				chars = append(chars, e.Latency.Milliseconds())
			}
		}
		var sum float64
		for _, c := range chars {
			sum += c
		}
		return sum / float64(len(chars))
	}
	testTypical, handTypical := typical(testEvents), typical(handEvents)
	if testTypical < 70 || testTypical > 110 {
		t.Fatalf("Test typical keystroke = %.1fms, want ≈80-100", testTypical)
	}
	if handTypical < 22 || handTypical > 45 {
		t.Fatalf("hand typical keystroke = %.1fms, want ≈32", handTypical)
	}

	maxOf := func(evs []core.Event) float64 {
		m := 0.0
		for _, e := range evs {
			if v := e.Latency.Milliseconds(); v > m {
				m = v
			}
		}
		return m
	}
	if m := maxOf(testEvents); m > 155 {
		t.Fatalf("Test max = %.1fms, want ≤≈140", m)
	}
	if m := maxOf(handEvents); m < 200 {
		t.Fatalf("hand max (CR) = %.1fms, want >200", m)
	}
	if handBursts == 0 {
		t.Fatalf("hand run should show background activity (timer bursts)")
	}
}

func TestWordW95NeverIdle(t *testing.T) {
	// §5.1/§5.4: under Windows 95 the system stays busy after each Word
	// event, making latencies appear seconds long — the paper could not
	// report W95 Word results.
	r := newRig(persona.W95(), 6_000_000)
	defer r.sys.Shutdown()
	w := NewWord(r.sys, DefaultWordParams())
	script := &input.Script{Events: input.TypeText(secs(0.5), "abcdef", 150*simtime.Millisecond)}
	script.Install(r.sys)
	r.sys.K.Run(script.End().Add(5 * simtime.Second))
	events := r.extract(w.Thread(), false)
	if len(events) != 6 {
		t.Fatalf("events = %d", len(events))
	}
	// Lingering keeps the CPU busy across keystrokes, so measured event
	// latencies are dominated by the housekeeping, and once input stops
	// the final event stretches to seconds.
	last := events[len(events)-1]
	if last.Latency < simtime.Second {
		t.Fatalf("final W95 Word event latency = %v, want seconds (lingering)", last.Latency)
	}
	for i, e := range events[:len(events)-1] {
		if e.Latency < 100*simtime.Millisecond {
			t.Fatalf("event %d latency = %v; lingering should dominate inter-key gaps", i, e.Latency)
		}
	}
}

func TestPowerpointTaskLongEvents(t *testing.T) {
	// The Table 1 events in task context: launch, open, OLE edits, save.
	r := newRig(persona.NT40(), 60_000_000)
	defer r.sys.Shutdown()
	ppt := NewPowerpoint(r.sys, DefaultPowerpointParams())

	var evs []input.Event
	evs = append(evs, input.Command(secs(1), CmdLaunch))
	evs = append(evs, input.Command(secs(9), CmdOpen))
	// Page down to slide 10 (object slide), edit it, then save.
	evs = append(evs, input.KeyDowns(secs(15), input.VKPageDown, 9, 400*simtime.Millisecond)...)
	evs = append(evs, input.Command(secs(20), CmdEditObject+0))
	evs = append(evs, input.TypeText(secs(28), "42", 200*simtime.Millisecond)...)
	evs = append(evs, input.Command(secs(29), CmdEndEdit))
	evs = append(evs, input.Command(secs(30), CmdSave))
	script := &input.Script{Events: evs, QueueSync: true}
	script.Install(r.sys)
	r.sys.K.Run(secs(55))

	events := r.extract(ppt.Thread(), true)
	if len(events) != len(evs) {
		t.Fatalf("events = %d, want %d", len(events), len(evs))
	}
	sec := func(e core.Event) float64 { return e.Latency.Seconds() }

	launch, open := events[0], events[1]
	if sec(launch) < 3.5 || sec(launch) > 8.5 {
		t.Fatalf("launch latency = %.2fs, want ≈5.8s (Table 1)", sec(launch))
	}
	if sec(open) < 2.5 || sec(open) > 6.0 {
		t.Fatalf("open latency = %.2fs, want ≈4.2s (Table 1)", sec(open))
	}
	oleEdit := events[2+9]
	if oleEdit.Kind != kernel.WMCommand {
		t.Fatalf("event 11 kind = %v", oleEdit.Kind)
	}
	if sec(oleEdit) < 3.5 || sec(oleEdit) > 8.5 {
		t.Fatalf("first OLE edit latency = %.2fs, want ≈5.8s", sec(oleEdit))
	}
	save := events[len(events)-1]
	if sec(save) < 6.0 || sec(save) > 13.0 {
		t.Fatalf("save latency = %.2fs, want ≈9.6s (Table 1)", sec(save))
	}
	// Page-downs are sub-second (Fig. 8).
	for i := 2; i < 11; i++ {
		if sec(events[i]) > 1.0 {
			t.Fatalf("page-down %d latency = %.2fs, want <1s", i-2, sec(events[i]))
		}
	}
	if ppt.Launches != 1 || ppt.Saves != 1 || ppt.PageDowns != 9 || ppt.Edits != 1 {
		t.Fatalf("counters: %d/%d/%d/%d", ppt.Launches, ppt.Saves, ppt.PageDowns, ppt.Edits)
	}
}
