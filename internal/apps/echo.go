package apps

import (
	"latlab/internal/kernel"
	"latlab/internal/simtime"
	"latlab/internal/system"
)

// Echo is the paper's Fig. 1 validation microbenchmark: "a program that
// waits for input from the user and when the input is received, performs
// some computation, echoes the character to the screen, and then waits
// for the next input."
//
// It also performs the *conventional* measurement the paper compares
// against: a timestamp when the program receives the character (after
// GetMessage returns — the getchar() analog) and another after the echo.
// The difference between the idle-loop latency and these in-application
// timestamps is the system time spent in interrupt handling and
// rescheduling before control returns to the program.
type Echo struct {
	sys    *system.System
	thread *kernel.Thread
	// Conventional holds the in-application measurements, one per
	// keystroke.
	Conventional []simtime.Duration
}

// NewEcho spawns the echo application; computeCycles is the per-keystroke
// "some computation" (Fig. 1's run shows ≈9.76 ms of total handling).
func NewEcho(sys *system.System, computeCycles int64) *Echo {
	e := &Echo{sys: sys}
	code := pageRange(310, 3)
	data := pageRange(1310, 2)
	work := appSeg("echo-work", computeCycles, code, data)
	qs := queueSyncSeg(sys.P)
	freq := sys.K.CPU().Freq
	e.thread = sys.SpawnApp("echo", func(tc *kernel.TC) {
		sys.Win.BindApp(code)
		for {
			m := tc.GetMessage()
			switch m.Kind {
			case kernel.WMQuit:
				return
			case kernel.WMQueueSync:
				tc.Compute(qs)
			case kernel.WMChar, kernel.WMKeyDown:
				t0 := tc.Cycles()
				tc.Compute(work)
				sys.Win.TextOut(tc, 1)
				t1 := tc.Cycles()
				e.Conventional = append(e.Conventional, freq.DurationOf(t1-t0))
			}
		}
	})
	return e
}

// Thread returns the application's main thread.
func (e *Echo) Thread() *kernel.Thread { return e.thread }
