package apps

import (
	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/system"
)

// Notepad models the paper's §5.1 benchmark application: "a simple editor
// for ASCII text". Printable keystrokes insert into a flat buffer and
// echo one fixed-pitch glyph; newline and page-down refresh all or part
// of the screen — the two latency classes visible in Fig. 7 (>80% of
// total latency from sub-10 ms echo keystrokes, the rest from ≥28 ms
// refresh keystrokes).
//
// The paper used the same (Windows 95) Notepad binary on all three
// systems, so the application-side costs here are persona-independent;
// only the window system underneath differs.
type Notepad struct {
	sys    *system.System
	thread *kernel.Thread

	// Chars counts printable characters inserted.
	Chars int
	// Refreshes counts newline/page-down screen refreshes.
	Refreshes int
}

// refreshLines is the visible-line count repainted by newline scrolls and
// page movement; sized so refresh keystrokes land at ≥28 ms (paper §5.1).
const refreshLines = 26

// NewNotepad spawns Notepad editing a 56 KB document (14 pages) located
// at docBlock on disk; the file is read during startup so the editing
// session itself is compute-bound, as in the paper.
func NewNotepad(sys *system.System, docBlock int64) *Notepad {
	n := &Notepad{sys: sys}
	code := pageRange(300, 5)
	data := pageRange(1000, 4)
	doc := sys.K.Cache().AddFile("notepad-doc.txt", docBlock, 14)

	insert := appSeg("notepad-insert", 16_000, code, data)
	caret := appSeg("notepad-caret", 9_000, code, data[:1])
	scrollPrep := appSeg("notepad-scroll", 22_000, code, data)
	qs := queueSyncSeg(sys.P)

	n.thread = sys.SpawnApp("notepad", func(tc *kernel.TC) {
		sys.Win.BindApp(code)
		tc.ReadFile(doc, 0, 14) // load the document
		for {
			m := tc.GetMessage()
			switch m.Kind {
			case kernel.WMQuit:
				return
			case kernel.WMQueueSync:
				tc.Compute(qs)
			case kernel.WMChar:
				if m.Param == '\n' {
					n.Refreshes++
					tc.Compute(scrollPrep)
					sys.Win.ScrollWindow(tc)
					sys.Win.RepaintLines(tc, refreshLines)
				} else {
					n.Chars++
					tc.Compute(insert)
					sys.Win.TextOut(tc, 1)
				}
			case kernel.WMKeyDown:
				switch m.Param {
				case input.VKPageDown:
					n.Refreshes++
					tc.Compute(scrollPrep)
					sys.Win.RepaintLines(tc, refreshLines)
				case input.VKBack:
					n.Chars++
					tc.Compute(insert)
					sys.Win.TextOut(tc, 1)
				case input.VKLeft, input.VKRight, input.VKUp, input.VKDown:
					tc.Compute(caret)
					sys.Win.DefWindowProc(tc)
				default:
					sys.Win.KeyTranslate(tc)
					sys.Win.DefWindowProc(tc)
				}
			}
		}
	})
	return n
}

// Thread returns the application's main thread.
func (n *Notepad) Thread() *kernel.Thread { return n.thread }
