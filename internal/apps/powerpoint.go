package apps

import (
	"latlab/internal/cpu"
	"latlab/internal/fscache"
	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/ole"
	"latlab/internal/system"
)

// PowerpointParams sizes the §5.2 presentation workload.
type PowerpointParams struct {
	// Slides is the deck length (the paper's deck: 46 pages).
	Slides int
	// DocPages is the document size in 4 KB pages (530 KB → 133).
	DocPages int64
	// ObjectSlides lists the slides carrying OLE embedded graph objects
	// (the paper's deck has three, of similar size and complexity).
	ObjectSlides []int
	// ObjectDataPages is each object's storage size.
	ObjectDataPages int64
	// Elements is each graph's drawn-element count.
	Elements int
	// ExePages and FontPages size the application image and its startup
	// resources (before persona BinaryScale).
	ExePages  int64
	FontPages int64
}

// DefaultPowerpointParams matches the paper's task scenario.
func DefaultPowerpointParams() PowerpointParams {
	return PowerpointParams{
		Slides:          46,
		DocPages:        133,
		ObjectSlides:    []int{10, 20, 30},
		ObjectDataPages: 140,
		Elements:        240,
		ExePages:        1250,
		FontPages:       220,
	}
}

// Disk layout (block addresses) for the PowerPoint scenario's files.
const (
	pptExeBlock   = 900_000
	pptLibsBlock  = 1_050_000
	pptDocBlock   = 300_000
	pptObj0Block  = 400_000
	pptObjStride  = 80_000
	pptTempBlock  = 1_800_000
	pptMetaBlock  = 64
	pptServerBloc = 1_200_000
)

// Powerpoint models the slide editor of §5.2: cold start, document open,
// page-down browsing with embedded-graph rendering, OLE in-place edit
// sessions, and a safe-save. All the long-latency events of Table 1 are
// driven through WMCommand messages so they are measurable as user
// events.
type Powerpoint struct {
	sys    *system.System
	thread *kernel.Thread
	params PowerpointParams

	exe, libs, doc   fscache.FileID
	temp, meta       fscache.FileID
	server           *ole.Server
	objects          []*ole.Object
	objectBySlide    map[int]*ole.Object
	started, opened  bool
	CurSlide         int
	editing          *ole.Object
	Launches, Saves  int
	PageDowns, Edits int
}

// NewPowerpoint registers the scenario's files and spawns the
// application. It performs no work until it receives CmdLaunch.
func NewPowerpoint(sys *system.System, params PowerpointParams) *Powerpoint {
	p := &Powerpoint{sys: sys, params: params, objectBySlide: make(map[int]*ole.Object)}
	scale := sys.P.BinaryScale
	if scale <= 0 {
		scale = 1
	}
	cache := sys.K.Cache()
	exePages := int64(float64(params.ExePages) * scale)
	fontPages := int64(float64(params.FontPages) * scale)
	libPages := int64(float64(680) * scale)
	p.exe = cache.AddFile("powerpnt.exe", pptExeBlock, exePages+fontPages)
	p.libs = cache.AddFile("converters.dll", pptLibsBlock, libPages)
	p.doc = cache.AddFile("deck.ppt", pptDocBlock, params.DocPages)
	p.temp = cache.AddFile("~save.tmp", pptTempBlock, params.DocPages*2+64)
	p.meta = cache.AddFile("fs-meta", pptMetaBlock, 8)

	srvCfg := ole.DefaultServerConfig()
	srvCfg.StartBlock = pptServerBloc
	p.server = ole.NewServer(sys.Win, cache, srvCfg)
	for i, slide := range params.ObjectSlides {
		o := ole.NewObject(p.server, "graph-obj", pptObj0Block+int64(i)*pptObjStride,
			params.ObjectDataPages, params.Elements)
		p.objects = append(p.objects, o)
		p.objectBySlide[slide] = o
	}

	code := pageRange(360, 18)
	data := pageRange(1200, 12)
	initSeg := appSeg("ppt-init", 28_000_000, code, data) // ~280 ms startup compute
	parse := appSeg("ppt-parse", 2_400_000, code, data)   // per ~12 pages parsed
	slidePrep := appSeg("ppt-slideprep", 500_000, code, data[:4])
	qs := queueSyncSeg(sys.P)

	p.thread = sys.SpawnApp("powerpoint", func(tc *kernel.TC) {
		sys.Win.BindApp(code)
		for {
			m := tc.GetMessage()
			switch m.Kind {
			case kernel.WMQuit:
				return
			case kernel.WMQueueSync:
				tc.Compute(qs)
			case kernel.WMCommand:
				switch {
				case m.Param == CmdLaunch:
					p.launch(tc, exePages, fontPages, initSeg)
				case m.Param == CmdOpen:
					p.open(tc, libPages, parse)
				case m.Param == CmdSave:
					p.save(tc)
				case m.Param == CmdEndEdit:
					if p.editing != nil {
						p.editing.Deactivate(tc, sys.Win)
						p.editing = nil
					}
				case m.Param >= CmdEditObject:
					i := int(m.Param - CmdEditObject)
					if i >= 0 && i < len(p.objects) {
						p.Edits++
						p.editing = p.objects[i]
						p.editing.Activate(tc, sys.Win)
					}
				}
			case kernel.WMKeyDown:
				if m.Param == input.VKPageDown {
					p.pageDown(tc, slidePrep)
				}
			case kernel.WMChar:
				if p.editing != nil {
					p.editing.EditKeystroke(tc, sys.Win)
				} else {
					tc.Compute(slidePrep)
					sys.Win.TextOut(tc, 1)
				}
			}
		}
	})
	return p
}

// launch is the cold application start ("Start Powerpoint", Table 1):
// demand-page the image and fonts, initialize, build the frame window.
func (p *Powerpoint) launch(tc *kernel.TC, exePages, fontPages int64, initSeg cpu.Segment) {
	if p.started {
		return
	}
	p.started = true
	p.Launches++
	readChunked(tc, p.exe, 0, exePages, 2)
	p.sys.Win.CreateWindow(tc)
	tc.Compute(initSeg)
	readChunked(tc, p.exe, exePages, fontPages, 2)
	p.sys.Win.OLESetup(tc, 260) // toolbars, galleries
	p.sys.Win.RepaintLines(tc, 20)
}

// open is "Open document" (Table 1): converter libraries, the compound
// document read in small records, parsing, previews, first slide.
func (p *Powerpoint) open(tc *kernel.TC, libPages int64, parse cpu.Segment) {
	if p.opened || !p.started {
		return
	}
	p.opened = true
	readChunked(tc, p.libs, 0, libPages, 2)
	for off := int64(0); off < p.params.DocPages; off++ {
		tc.ReadFile(p.doc, off, 1)
		if off%10 == 0 {
			tc.Compute(parse)
		}
	}
	p.CurSlide = 1
	p.sys.Win.RepaintLines(tc, 20)
	p.renderSlide(tc)
}

// save is "Save document" (Table 1): a safe-save that alternates data
// writes to a distant temp file with metadata updates near the start of
// the disk — long seeks dominate, and the persona's SaveScale sets the
// write volume (NT 4.0 writes more, making it slower than NT 3.51).
func (p *Powerpoint) save(tc *kernel.TC) {
	if !p.opened {
		return
	}
	p.Saves++
	scale := p.sys.P.SaveScale
	if scale <= 0 {
		scale = 1
	}
	pages := int64(float64(p.params.DocPages+30) * scale)
	for i := int64(0); i < pages; i++ {
		tc.WriteFile(p.temp, i%(p.params.DocPages*2), 1)
		tc.WriteFile(p.meta, i%8, 1)
	}
	// Copy back in larger runs.
	for i := int64(0); i+4 <= p.params.DocPages; i += 4 {
		tc.WriteFile(p.doc, i, 4)
	}
}

// pageDown advances one slide and redraws it (the Fig. 9 operation when
// the slide carries an OLE graph).
func (p *Powerpoint) pageDown(tc *kernel.TC, prep cpu.Segment) {
	if !p.opened {
		return
	}
	p.PageDowns++
	p.CurSlide++
	if p.CurSlide > p.params.Slides {
		p.CurSlide = 1
	}
	tc.Compute(prep)
	p.renderSlide(tc)
}

func (p *Powerpoint) renderSlide(tc *kernel.TC) {
	p.sys.Win.RepaintLines(tc, 18)
	if o, ok := p.objectBySlide[p.CurSlide]; ok {
		o.Render(tc, p.sys.Win)
	}
}

// Thread returns the application's main thread.
func (p *Powerpoint) Thread() *kernel.Thread { return p.thread }

// Objects returns the embedded objects in document order.
func (p *Powerpoint) Objects() []*ole.Object { return p.objects }

// ObjectSlide returns the slide number of object i.
func (p *Powerpoint) ObjectSlide(i int) int { return p.params.ObjectSlides[i] }

// readChunked demand-pages [first, first+pages) of f in chunk-page
// requests.
func readChunked(tc *kernel.TC, f fscache.FileID, first, pages, chunk int64) {
	for p := first; p < first+pages; p += chunk {
		n := chunk
		if p+n > first+pages {
			n = first + pages - p
		}
		tc.ReadFile(f, p, n)
	}
}
