// Package apps implements the message-driven application models the
// paper's benchmarks drive: a plain-text editor (Notepad), a word
// processor with background spell-checking coroutines (Word), a slide
// editor with OLE-embedded graph objects (PowerPoint), and the echo
// microbenchmark used to validate the idle-loop methodology (Fig. 1).
//
// Applications run as foreground threads under internal/system, pull
// input with GetMessage, and perform their work through internal/winsys
// calls plus application-side compute segments — so every persona
// difference (crossings, 16-bit costs, path lengths) reaches their
// event latencies through mechanism, not assertion.
package apps

import (
	"latlab/internal/cpu"
	"latlab/internal/persona"
)

// Application command identifiers (Param of WMCommand messages).
const (
	// CmdLaunch makes an application perform its startup sequence (cold
	// start: demand-page the binary, build windows).
	CmdLaunch int64 = 1
	// CmdOpen opens the application's document.
	CmdOpen int64 = 2
	// CmdSave saves the document.
	CmdSave int64 = 3
	// CmdEndEdit deactivates the current OLE editing session.
	CmdEndEdit int64 = 4
	// CmdEditObject activates OLE object i as CmdEditObject+i.
	CmdEditObject int64 = 10
)

// queueSyncSeg builds the per-persona WM_QUEUESYNC processing segment
// (the Microsoft Test artifact; dearest on Windows 95 — Fig. 7 note).
func queueSyncSeg(p persona.P) cpu.Segment {
	c := p.QueueSyncCycles
	seg := cpu.Segment{
		Name:         "wm-queuesync",
		BaseCycles:   c,
		Instructions: c * 6 / 10,
		DataRefs:     c / 4,
		CodePages:    []uint64{250, 251},
		DataPages:    []uint64{252},
	}
	if p.SegLoadsPerKCycle > 0 {
		seg.SegmentLoads = int64(p.SegLoadsPerKCycle * float64(c) / 1000)
	}
	return seg
}

// appSeg builds an application-side compute segment over the app's own
// working set.
func appSeg(name string, cycles int64, code []uint64, data []uint64) cpu.Segment {
	return cpu.Segment{
		Name:         name,
		BaseCycles:   cycles,
		Instructions: cycles * 55 / 100,
		DataRefs:     cycles / 4,
		CodePages:    code,
		DataPages:    data,
	}
}

// pageRange allocates a contiguous page-id range.
func pageRange(base uint64, n int) []uint64 {
	ps := make([]uint64, n)
	for i := range ps {
		ps[i] = base + uint64(i)
	}
	return ps
}
