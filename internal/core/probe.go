// Package core implements the paper's measurement methodology:
//
//   - an idle-loop instrument that replaces the OS idle loop with a
//     calibrated busy-wait and detects event handling as lost time
//     (paper §2.3);
//   - a message-API monitor over GetMessage/PeekMessage (§2.4);
//   - a think-time/wait-time finite state machine over CPU, queue, and
//     synchronous-I/O state (§2.3, Fig. 2);
//   - an event extractor that correlates the idle-loop trace with the
//     message trace to produce per-event latencies, including removal of
//     the Microsoft Test WM_QUEUESYNC artifact (§5.1, §5.4);
//   - latency reports (histograms, cumulative-latency curves,
//     interarrival analysis) matching §3.2;
//   - CPU-utilization profiles (Figs. 3-4) and a hardware-counter
//     measurement facade (Figs. 9-10).
//
// The measurement path never reads simulator ground truth: everything is
// derived from the cycle counter, the idle-loop trace, and the message
// monitor — exactly the information the paper had. Ground truth is used
// only by tests to validate the methodology, which is itself one of the
// paper's claims (Fig. 1).
package core

import (
	"latlab/internal/kernel"
	"latlab/internal/simtime"
	"latlab/internal/trace"
)

// PostRecord logs one message enqueue observed by the probe.
type PostRecord struct {
	Thread   int
	Kind     int
	At       simtime.Time
	QueueLen int
}

// BusyChange logs a ground-truth CPU busy/idle transition. It is exposed
// for validation; the measured path derives CPU state from idle samples.
type BusyChange struct {
	Busy bool
	At   simtime.Time
}

// SyncIOChange logs a change in outstanding synchronous I/O.
type SyncIOChange struct {
	Outstanding int
	At          simtime.Time
}

// Probe attaches to a kernel's observation hooks and records everything
// the methodology (and its validation) needs. Attach exactly one Probe
// per kernel, before running.
type Probe struct {
	Msgs   []trace.MsgRecord
	Posts  []PostRecord
	Busy   []BusyChange
	SyncIO []SyncIOChange
}

// AttachProbe installs the probe's hooks on k and returns it.
func AttachProbe(k *kernel.Kernel) *Probe {
	p := &Probe{}
	k.SetHooks(kernel.Hooks{
		OnMsgAPI: func(rec trace.MsgRecord) { p.Msgs = append(p.Msgs, rec) },
		OnPost: func(target *kernel.Thread, msg kernel.Msg, now simtime.Time, qlen int) {
			p.Posts = append(p.Posts, PostRecord{
				Thread: target.ID(), Kind: int(msg.Kind), At: now, QueueLen: qlen,
			})
		},
		OnBusy: func(busy bool, now simtime.Time) {
			p.Busy = append(p.Busy, BusyChange{Busy: busy, At: now})
		},
		OnSyncIO: func(outstanding int, now simtime.Time) {
			p.SyncIO = append(p.SyncIO, SyncIOChange{Outstanding: outstanding, At: now})
		},
	})
	return p
}

// MsgsForThread filters message records by thread id.
func (p *Probe) MsgsForThread(id int) []trace.MsgRecord {
	var out []trace.MsgRecord
	for _, m := range p.Msgs {
		if m.Thread == id {
			out = append(out, m)
		}
	}
	return out
}

// GroundTruthBusySpans converts the busy transition log into closed
// spans, ending an open span at end if still busy.
func (p *Probe) GroundTruthBusySpans(end simtime.Time) []Span {
	var spans []Span
	var open *Span
	for _, b := range p.Busy {
		if b.Busy && open == nil {
			open = &Span{Start: b.At}
		} else if !b.Busy && open != nil {
			open.End = b.At
			spans = append(spans, *open)
			open = nil
		}
	}
	if open != nil {
		open.End = end
		spans = append(spans, *open)
	}
	return spans
}

// Span is a half-open time interval [Start, End).
type Span struct {
	Start, End simtime.Time
}

// Duration returns End-Start.
func (s Span) Duration() simtime.Duration { return s.End.Sub(s.Start) }

// Contains reports whether t lies in [Start, End).
func (s Span) Contains(t simtime.Time) bool { return t >= s.Start && t < s.End }

// Overlaps reports whether two spans intersect.
func (s Span) Overlaps(o Span) bool { return s.Start < o.End && o.Start < s.End }
