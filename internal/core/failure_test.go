package core

import (
	"strings"
	"testing"

	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/simtime"
)

// TestTraceBufferExhaustion: the paper's instrument runs "while
// (space_left_in_the_buffer)". When the buffer fills mid-run, the
// instrument stops sampling; extraction must degrade gracefully — events
// inside the sampled window keep exact latencies, later events lose
// their busy attribution rather than corrupting anything.
func TestTraceBufferExhaustion(t *testing.T) {
	k := kernel.New(quietConfig())
	defer k.Shutdown()
	pr := AttachProbe(k)
	il := StartIdleLoop(k, 100) // fills after ≈100 ms of idle
	app := k.Spawn("app", 1, 8, func(tc *kernel.TC) {
		for {
			if tc.GetMessage().Kind == kernel.WMQuit {
				return
			}
			tc.Compute(cpu.Segment{Name: "w", BaseCycles: 300_000})
		}
	})
	// One event inside the sampled window, one far beyond it.
	k.At(simtime.Time(30*simtime.Millisecond), func(simtime.Time) {
		k.KeyboardInterrupt(app, kernel.WMChar, 0)
	})
	k.At(simtime.Time(400*simtime.Millisecond), func(simtime.Time) {
		k.KeyboardInterrupt(app, kernel.WMChar, 0)
	})
	k.Run(simtime.Time(600 * simtime.Millisecond))

	if !il.Full() {
		t.Fatalf("buffer should have filled")
	}
	if last := il.Samples()[len(il.Samples())-1].Done; last > simtime.Time(200*simtime.Millisecond) {
		t.Fatalf("sampling should have stopped early, last sample at %v", last)
	}

	events := Extract(il.Samples(), pr.Msgs, ExtractOptions{Thread: app.ID()})
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2 anchors regardless of trace truncation", len(events))
	}
	if events[0].Latency < simtime.FromMillis(3) || events[0].Latency > simtime.FromMillis(3.3) {
		t.Fatalf("in-window event latency = %v, want ≈3ms", events[0].Latency)
	}
	if events[1].Busy != 0 {
		t.Fatalf("post-truncation event should have no attributed busy time, got %v", events[1].Busy)
	}
}

// TestSchedulerLivelockGuard: an application that spins on instantaneous
// primitives without ever consuming simulated time is a modelling bug;
// the scheduler must detect it and fail loudly rather than hang the host.
func TestSchedulerLivelockGuard(t *testing.T) {
	k := kernel.New(quietConfig())
	// No Shutdown: the panic leaves the kernel mid-flight; the spinner
	// goroutine is parked forever, which is acceptable for a test of a
	// fatal-diagnostic path. The guard fires as soon as the spinner is
	// scheduled — already inside Spawn.
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("livelock guard did not fire")
		}
		if !strings.Contains(r.(string), "livelock") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	k.Spawn("spinner", 1, 8, func(tc *kernel.TC) {
		for {
			tc.PeekMessage() // never computes, never blocks
		}
	})
	k.Run(simtime.Time(simtime.Second))
}

// TestInstrumentBufferIsolation: filling the instrument's buffer must
// not perturb the measured system — the workload continues unaffected.
func TestInstrumentBufferIsolation(t *testing.T) {
	run := func(bufCap int) simtime.Duration {
		k := kernel.New(quietConfig())
		defer k.Shutdown()
		StartIdleLoop(k, bufCap)
		var done simtime.Time
		app := k.Spawn("app", 1, 8, func(tc *kernel.TC) {
			tc.GetMessage()
			tc.Compute(cpu.Segment{Name: "w", BaseCycles: 900_000})
			done = tc.Now()
		})
		k.At(simtime.Time(300*simtime.Millisecond), func(simtime.Time) {
			k.PostMessage(app, kernel.WMChar, 0)
		})
		k.Run(simtime.Time(500 * simtime.Millisecond))
		return simtime.Duration(done)
	}
	small, big := run(50), run(50_000)
	if small != big {
		t.Fatalf("workload timing depends on instrument buffer: %v vs %v", small, big)
	}
}
