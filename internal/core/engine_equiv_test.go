package core

import (
	"testing"

	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/machine"
	"latlab/internal/simtime"
	"latlab/internal/trace"
)

// engineScenario boots a kernel on the given engine, runs the idle-loop
// instrument against a periodically bursting worker for two seconds, and
// returns the machine's observable end state. The worker's bursts and
// sleeps exercise the straddling-cycle path: every elided span ends at a
// tick, wakeup, or completion, and the cycle crossing it is simulated.
func engineScenario(t *testing.T, eng kernel.Engine) (*kernel.Kernel, []trace.IdleSample) {
	t.Helper()
	cfg := kernel.DefaultConfig()
	cfg.Engine = eng
	k := kernel.New(cfg)
	il := StartIdleLoop(k, 4096)
	burst := cpu.Segment{
		Name:         "burst",
		BaseCycles:   300_000,
		Instructions: 200_000,
		DataRefs:     50_000,
		CodePages:    []uint64{7, 8},
		DataPages:    []uint64{9, 10, 11},
	}
	k.Spawn("worker", 1, 8, func(tc *kernel.TC) {
		for i := 0; i < 8; i++ {
			tc.Sleep(150 * simtime.Millisecond)
			tc.Compute(burst)
		}
	})
	k.Run(simtime.Time(2 * simtime.Second))
	k.Shutdown()
	return k, il.Samples()
}

// TestEngineEquivalence is the end-to-end exactness proof at the kernel
// level: the batched engine (calendar queue + idle skipping) must leave
// the machine in a state indistinguishable from the reference engine —
// identical idle-sample traces, hardware counters, tick counts, and
// busy-time accounting — while actually having elided work.
func TestEngineEquivalence(t *testing.T) {
	kr, ref := engineScenario(t, kernel.Engine{})
	kb, bat := engineScenario(t, kernel.BatchedEngine())

	if kb.BulkElided() == 0 {
		t.Fatalf("batched engine elided no idle cycles — the equivalence check is vacuous")
	}
	if kr.BulkElided() != 0 {
		t.Fatalf("reference engine elided %d cycles, want 0", kr.BulkElided())
	}
	if len(ref) != len(bat) {
		t.Fatalf("sample count diverged: reference %d, batched %d", len(ref), len(bat))
	}
	for i := range ref {
		if ref[i] != bat[i] {
			t.Fatalf("sample %d diverged: reference %+v, batched %+v", i, ref[i], bat[i])
		}
	}
	if a, b := kr.ClockTicks(), kb.ClockTicks(); a != b {
		t.Fatalf("clock ticks diverged: %d vs %d", a, b)
	}
	if a, b := kr.NonIdleBusyTime(), kb.NonIdleBusyTime(); a != b {
		t.Fatalf("busy time diverged: %v vs %v", a, b)
	}
	refSnap := kr.CPU().Snapshot()
	batSnap := kb.CPU().Snapshot()
	for kind := range refSnap {
		if refSnap[kind] != batSnap[kind] {
			t.Fatalf("counter %v diverged: reference %d, batched %d",
				cpu.EventKind(kind), refSnap[kind], batSnap[kind])
		}
	}
}

// TestEngineEquivalenceModernMachine re-proves engine equivalence on the
// 2026 profile, where three new mechanisms interact with idle elision:
// DVFS transitions re-price the idle loop's cycles (the sigClock guard
// must dirty stale signatures), auxiliary-core housekeeping events land
// inside otherwise-idle stretches, and disk-interrupt coalescing timers
// sit on the event queue. The batched engine must still elide work and
// still match the reference byte for byte.
func TestEngineEquivalenceModernMachine(t *testing.T) {
	run := func(eng kernel.Engine) ([]trace.IdleSample, *kernel.Kernel) {
		cfg := kernel.DefaultConfig()
		cfg.Machine = machine.Modern2026()
		cfg.Engine = eng
		k := kernel.New(cfg)
		il := StartIdleLoop(k, 8192)
		sleep := true
		k.SpawnLoopOn("housekeep", kernel.KernelProc, 4, 1, func(lc *kernel.LoopTC) bool {
			if sleep {
				lc.Sleep(170 * simtime.Millisecond)
			} else {
				lc.Compute(cpu.Segment{Name: "scrub", BaseCycles: 400_000, CodePages: []uint64{31}, CacheChunks: []uint64{77, 78}})
			}
			sleep = !sleep
			return true
		})
		k.Spawn("worker", 1, 8, func(tc *kernel.TC) {
			for i := 0; i < 6; i++ {
				tc.Sleep(220 * simtime.Millisecond)
				tc.Compute(cpu.Segment{Name: "burst", BaseCycles: 5_000_000, Instructions: 3_000_000})
			}
		})
		k.Run(simtime.Time(2 * simtime.Second))
		k.Shutdown()
		return il.Samples(), k
	}
	ref, kr := run(kernel.Engine{})
	bat, kb := run(kernel.BatchedEngine())
	if kb.BulkElided() == 0 {
		t.Fatalf("batched engine elided nothing on the modern profile")
	}
	if len(ref) != len(bat) {
		t.Fatalf("sample count diverged: reference %d, batched %d", len(ref), len(bat))
	}
	for i := range ref {
		if ref[i] != bat[i] {
			t.Fatalf("sample %d diverged: reference %+v, batched %+v", i, ref[i], bat[i])
		}
	}
	if a, b := kr.NonIdleBusyTime(), kb.NonIdleBusyTime(); a != b {
		t.Fatalf("busy time diverged: %v vs %v", a, b)
	}
	if a, b := kr.AuxBusyTime(), kb.AuxBusyTime(); a != b || a == 0 {
		t.Fatalf("aux busy diverged or vanished: %v vs %v", a, b)
	}
	if a, b := kr.DVFSLevel(), kb.DVFSLevel(); a != b {
		t.Fatalf("governor level diverged: %d vs %d", a, b)
	}
}

// TestEngineEquivalenceQuantumStraddle pins the subtlest piece of the
// elision replay: idle cycles whose compute chunks straddle scheduler
// quantum boundaries must replicate the slow path's per-chunk completion
// events (sequence numbers) and leftover quantum. A 2.5 ms quantum slices
// each 1 ms idle cycle differently on every iteration.
func TestEngineEquivalenceQuantumStraddle(t *testing.T) {
	run := func(eng kernel.Engine) ([]trace.IdleSample, *kernel.Kernel) {
		cfg := kernel.DefaultConfig()
		cfg.Quantum = 2500 * simtime.Microsecond
		cfg.Engine = eng
		k := kernel.New(cfg)
		il := StartIdleLoop(k, 4096)
		k.Spawn("worker", 1, 8, func(tc *kernel.TC) {
			for i := 0; i < 4; i++ {
				tc.Sleep(300 * simtime.Millisecond)
				tc.Compute(cpu.Segment{Name: "blip", BaseCycles: 50_000, Instructions: 30_000})
			}
		})
		k.Run(simtime.Time(1500 * simtime.Millisecond))
		k.Shutdown()
		return il.Samples(), k
	}
	ref, _ := run(kernel.Engine{})
	bat, kb := run(kernel.BatchedEngine())
	if kb.BulkElided() == 0 {
		t.Fatalf("no cycles elided under a straddling quantum")
	}
	if len(ref) != len(bat) {
		t.Fatalf("sample count diverged: reference %d, batched %d", len(ref), len(bat))
	}
	for i := range ref {
		if ref[i] != bat[i] {
			t.Fatalf("sample %d diverged: reference %+v, batched %+v", i, ref[i], bat[i])
		}
	}
}
