package core

import (
	"latlab/internal/simtime"
	"latlab/internal/stats"
)

// Report bundles the extracted events of one benchmark run with the
// analyses of paper §3.2.
type Report struct {
	Events []Event
	// Elapsed is the wall-clock span of the run (bracketed numbers in
	// Figs. 7/8/11).
	Elapsed simtime.Duration
}

// NewReport builds a report over events spanning elapsed time.
func NewReport(events []Event, elapsed simtime.Duration) *Report {
	return &Report{Events: events, Elapsed: elapsed}
}

// Latencies returns event latencies in milliseconds.
func (r *Report) Latencies() []float64 { return Latencies(r.Events) }

// TotalLatency returns the cumulative latency of all events.
func (r *Report) TotalLatency() simtime.Duration {
	var t simtime.Duration
	for _, e := range r.Events {
		t += e.Latency
	}
	return t
}

// Summary returns moments of the latency distribution (ms).
func (r *Report) Summary() stats.Summary { return stats.Summarize(r.Latencies()) }

// Histogram bins latencies (ms) over [lo, hi) with n bins; out-of-range
// events land in Under/Over.
func (r *Report) Histogram(lo, hi float64, n int) *stats.Histogram {
	h := stats.NewHistogram(lo, hi, n)
	for _, l := range r.Latencies() {
		h.Add(l)
	}
	return h
}

// CumulativeCurve returns the cumulative-latency curve: events sorted by
// latency, integrated.
func (r *Report) CumulativeCurve() []stats.CumulativePoint {
	return stats.CumulativeCurve(r.Latencies())
}

// FractionBelow returns the share of total latency from events under
// cutoffMs (the "over 80% of the latency of Notepad is due to events
// under 10 ms" analysis, §5.1).
func (r *Report) FractionBelow(cutoffMs float64) float64 {
	return stats.FractionBelow(r.Latencies(), cutoffMs)
}

// Interarrival summarizes gaps between events above thresholdMs, as in
// the paper's Table 2.
func (r *Report) Interarrival(thresholdMs float64) stats.Interarrival {
	return stats.InterarrivalAbove(Starts(r.Events), r.Latencies(), thresholdMs)
}

// CountAbove returns how many events exceed thresholdMs.
func (r *Report) CountAbove(thresholdMs float64) int {
	n := 0
	for _, l := range r.Latencies() {
		if l > thresholdMs {
			n++
		}
	}
	return n
}

// PerceptionThresholdMs is the 0.1 s limit below which latency is
// imperceptible; IrritationThresholdMs the 2 s floor of the range the
// paper reports as invariably irritating (§3.1, citing Shneiderman).
const (
	PerceptionThresholdMs = 100.0
	IrritationThresholdMs = 2000.0
)

// Irritation is the scalar user-responsiveness summation the paper
// sketches in §3.1 (a sum over events of penalty beyond a threshold) and
// then declines to adopt, because the threshold is event-type dependent
// and the human-factors questions are open. It is provided for
// completeness — with the paper's caveat attached — and weighs each
// event by its latency in excess of the threshold, in seconds.
func Irritation(latenciesMs []float64, thresholdMs float64) float64 {
	var sum float64
	for _, l := range latenciesMs {
		if l > thresholdMs {
			sum += (l - thresholdMs) / 1000
		}
	}
	return sum
}
