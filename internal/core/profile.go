package core

import (
	"latlab/internal/simtime"
	"latlab/internal/trace"
)

// ProfilePoint is one point of a CPU-utilization profile.
type ProfilePoint struct {
	// T is the time coordinate (sample completion, or bucket start for
	// averaged profiles).
	T simtime.Time
	// Util is average CPU utilization over the point's interval, 0..1.
	Util float64
}

// Profile converts idle samples into the full-resolution utilization
// profile of paper Figs. 3/4a: one point per sample, using the paper's
// formula (elapsed - idle) / elapsed.
func Profile(samples []trace.IdleSample) []ProfilePoint {
	pts := make([]ProfilePoint, len(samples))
	for i, s := range samples {
		pts[i] = ProfilePoint{T: s.Done, Util: s.Utilization(NominalSample)}
	}
	return pts
}

// AveragedProfile averages utilization over fixed buckets (Fig. 4b shows
// the same data as 4a averaged over 10 ms intervals). Buckets with no
// samples at all are omitted — with the instrument running, that only
// happens when the CPU was 100% busy for the whole bucket, so a gap
// bracketed by samples is emitted as a saturated bucket.
func AveragedProfile(samples []trace.IdleSample, bucket simtime.Duration) []ProfilePoint {
	if bucket <= 0 {
		panic("core: non-positive profile bucket")
	}
	if len(samples) == 0 {
		return nil
	}
	var pts []ProfilePoint
	bIdx := int64(samples[0].Done.Add(-samples[0].Elapsed)) / int64(bucket)
	var busyInBucket, idleInBucket simtime.Duration
	flush := func() {
		total := busyInBucket + idleInBucket
		if total > 0 {
			pts = append(pts, ProfilePoint{
				T:    simtime.Time(bIdx * int64(bucket)),
				Util: float64(busyInBucket) / float64(total),
			})
		}
		busyInBucket, idleInBucket = 0, 0
	}
	for _, s := range samples {
		start := s.Done.Add(-s.Elapsed)
		stolen := s.Stolen(NominalSample)
		idle := s.Elapsed - stolen
		// Distribute the sample's busy and idle time across the buckets
		// it spans, proportionally.
		for start < s.Done {
			idx := int64(start) / int64(bucket)
			if idx != bIdx {
				flush()
				// Buckets fully covered by a long sample are saturated
				// or idle proportionally; emit skipped buckets.
				for bIdx++; bIdx < idx; bIdx++ {
					frac := fraction(s, simtime.Time(bIdx*int64(bucket)), simtime.Time((bIdx+1)*int64(bucket)), stolen, idle)
					pts = append(pts, ProfilePoint{T: simtime.Time(bIdx * int64(bucket)), Util: frac})
				}
				bIdx = idx
			}
			bEnd := simtime.Time((idx + 1) * int64(bucket))
			segEnd := s.Done
			if bEnd < segEnd {
				segEnd = bEnd
			}
			seg := segEnd.Sub(start)
			// Apportion stolen/idle uniformly within the sample.
			if s.Elapsed > 0 {
				busyInBucket += simtime.Duration(int64(stolen) * int64(seg) / int64(s.Elapsed))
				idleInBucket += simtime.Duration(int64(idle) * int64(seg) / int64(s.Elapsed))
			}
			start = segEnd
		}
	}
	flush()
	return pts
}

// fraction returns the uniform busy fraction of a sample (used for fully
// covered buckets).
func fraction(s trace.IdleSample, _, _ simtime.Time, stolen, idle simtime.Duration) float64 {
	total := stolen + idle
	if total <= 0 {
		return 0
	}
	return float64(stolen) / float64(total)
}

// MaxUtil returns the maximum utilization in a profile.
func MaxUtil(pts []ProfilePoint) float64 {
	m := 0.0
	for _, p := range pts {
		if p.Util > m {
			m = p.Util
		}
	}
	return m
}

// MeanUtil returns the mean utilization across points.
func MeanUtil(pts []ProfilePoint) float64 {
	if len(pts) == 0 {
		return 0
	}
	var s float64
	for _, p := range pts {
		s += p.Util
	}
	return s / float64(len(pts))
}
