package core

import (
	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/simtime"
	"latlab/internal/trace"
)

// NominalSample is the calibrated duration of one idle-loop iteration on
// an otherwise idle CPU: the paper's "one trace record per millisecond of
// idle time".
const NominalSample = simtime.Millisecond

// perIterationCycles is the cost of one busy-wait iteration of the inner
// loop (`for (i = 0; i < N; i++) ;` — a couple of instructions on a
// Pentium).
const perIterationCycles = 10

// recordCycles is the cost of generating one trace record (timestamp read
// plus a buffer store). The calibration compensates for it, as the paper
// compensates for "the overhead introduced by the user-level idle loop".
const recordCycles = 220

// CalibrateN returns the iteration count N for which one loop pass plus
// record generation consumes exactly NominalSample of CPU at the
// machine's clock rate (paper §2.3: "We select the value of N such that
// the inner loop takes one ms to complete when the processor is idle").
func CalibrateN(freq simtime.Hz) int64 {
	budget := freq.CyclesIn(NominalSample) - recordCycles
	return budget / perIterationCycles
}

// IdleLoop is the idle-loop instrument: a lowest-priority thread running
// the calibrated busy-wait and logging one trace record per iteration.
// Because it runs in the idle class, it consumes only CPU time no other
// thread wants — it *is* the system's idle loop, replaced (§2.3).
type IdleLoop struct {
	k      *kernel.Kernel
	buf    *trace.Buffer
	thread *kernel.Thread
	n      int64
}

// StartIdleLoop calibrates and spawns the instrument with a trace buffer
// of bufCap samples. The instrument stops when the buffer fills.
func StartIdleLoop(k *kernel.Kernel, bufCap int) *IdleLoop {
	il := &IdleLoop{
		k:   k,
		buf: trace.NewBuffer(bufCap),
		n:   CalibrateN(k.CPU().Freq),
	}
	loopSeg := cpu.Segment{
		Name:         "idle-busywait",
		BaseCycles:   il.n * perIterationCycles,
		Instructions: il.n * 2,
		// The loop's working set is a handful of pages: it perturbs the
		// memory system as little as the paper's loop did.
		CodePages: []uint64{40},
		DataPages: []uint64{41},
	}
	recordSeg := cpu.Segment{
		Name:         "idle-record",
		BaseCycles:   recordCycles,
		Instructions: 60,
		DataRefs:     30,
		CodePages:    []uint64{40},
		DataPages:    []uint64{42},
	}
	freq := k.CPU().Freq
	il.thread = k.Spawn("idleloop", kernel.KernelProc, kernel.IdlePriority, func(tc *kernel.TC) {
		for !il.buf.Full() {
			start := tc.Cycles()
			// One batched request per sample: the busy-wait and the
			// record generation cost exactly what two Compute calls
			// would, but the simulator handshake fires once per record
			// — keeping the instrument's own overhead minimal, as the
			// paper requires of its idle loop (§2.2).
			tc.Compute2(loopSeg, recordSeg)
			end := tc.Cycles()
			il.buf.Append(trace.IdleSample{
				Done:    simtime.Time(freq.DurationOf(end)),
				Elapsed: freq.DurationOf(end - start),
			})
		}
	})
	return il
}

// Samples returns the recorded idle samples.
func (il *IdleLoop) Samples() []trace.IdleSample { return il.buf.Samples() }

// Full reports whether the trace buffer filled (the run should be sized
// so it does not).
func (il *IdleLoop) Full() bool { return il.buf.Full() }

// Thread returns the instrument's thread.
func (il *IdleLoop) Thread() *kernel.Thread { return il.thread }

// N returns the calibrated iteration count.
func (il *IdleLoop) N() int64 { return il.n }

// BusySpans converts an idle-sample trace into maximal busy spans: runs
// of consecutive elongated samples. threshold is the minimum stolen time
// for a sample to count as busy; at or below it, calibration jitter would
// masquerade as load.
//
// Span boundaries are known only to sample resolution (~1 ms), exactly as
// in the paper; Stolen is exact, because the idle loop accounts for every
// lost cycle.
func BusySpans(samples []trace.IdleSample, threshold simtime.Duration) []BusySpan {
	var spans []BusySpan
	var cur BusySpan
	open := false
	for _, s := range samples {
		stolen := s.Stolen(NominalSample)
		if stolen > threshold {
			if !open {
				cur = BusySpan{Span: Span{Start: s.Done.Add(-s.Elapsed)}}
				open = true
			}
			cur.Span.End = s.Done
			cur.Stolen += stolen
			cur.Samples++
		} else if open {
			spans = append(spans, cur)
			open = false
		}
	}
	if open {
		spans = append(spans, cur)
	}
	return spans
}

// BusySpan is a maximal run of elongated idle samples.
type BusySpan struct {
	Span
	// Stolen is the exact non-idle time observed within the span.
	Stolen simtime.Duration
	// Samples is the number of elongated samples merged.
	Samples int
}

// DefaultBusyThreshold distinguishes real work from jitter: 20 µs of
// stolen time within a 1 ms sample.
const DefaultBusyThreshold = 20 * simtime.Microsecond
