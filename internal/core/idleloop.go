package core

import (
	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/simtime"
	"latlab/internal/trace"
)

// NominalSample is the calibrated duration of one idle-loop iteration on
// an otherwise idle CPU: the paper's "one trace record per millisecond of
// idle time".
const NominalSample = simtime.Millisecond

// perIterationCycles is the cost of one busy-wait iteration of the inner
// loop (`for (i = 0; i < N; i++) ;` — a couple of instructions on a
// Pentium).
const perIterationCycles = 10

// recordCycles is the cost of generating one trace record (timestamp read
// plus a buffer store). The calibration compensates for it, as the paper
// compensates for "the overhead introduced by the user-level idle loop".
const recordCycles = 220

// CalibrateN returns the iteration count N for which one loop pass plus
// record generation consumes exactly NominalSample of CPU at the
// machine's clock rate (paper §2.3: "We select the value of N such that
// the inner loop takes one ms to complete when the processor is idle").
func CalibrateN(freq simtime.Hz) int64 {
	budget := freq.CyclesIn(NominalSample) - recordCycles
	return budget / perIterationCycles
}

// IdleLoop is the idle-loop instrument: a lowest-priority thread running
// the calibrated busy-wait and logging one trace record per iteration.
// Because it runs in the idle class, it consumes only CPU time no other
// thread wants — it *is* the system's idle loop, replaced (§2.3).
type IdleLoop struct {
	k      *kernel.Kernel
	buf    *trace.Buffer
	thread *kernel.Thread
	n      int64
	freq   simtime.Hz
	// start is the cycle-counter reading at the current iteration's
	// start. It lives on the struct rather than the loop closure so the
	// bulk-elision path (OnBulk) can roll it forward.
	start int64
}

// StartIdleLoop calibrates and spawns the instrument with a trace buffer
// of bufCap samples. The instrument stops when the buffer fills.
func StartIdleLoop(k *kernel.Kernel, bufCap int) *IdleLoop {
	return StartIdleLoopBuffer(k, trace.NewBuffer(bufCap))
}

// StartIdleLoopBuffer is StartIdleLoop recording into a caller-supplied
// buffer — the batch engine reuses one arena-backed buffer per machine
// slot across sessions (trace.NewBufferBacked).
func StartIdleLoopBuffer(k *kernel.Kernel, buf *trace.Buffer) *IdleLoop {
	il := &IdleLoop{
		k:    k,
		buf:  buf,
		n:    CalibrateN(k.CPU().Freq),
		freq: k.CPU().Freq,
	}
	loopSeg := cpu.Segment{
		Name:         "idle-busywait",
		BaseCycles:   il.n * perIterationCycles,
		Instructions: il.n * 2,
		// The loop's working set is a handful of pages: it perturbs the
		// memory system as little as the paper's loop did.
		CodePages: []uint64{40},
		DataPages: []uint64{41},
	}
	recordSeg := cpu.Segment{
		Name:         "idle-record",
		BaseCycles:   recordCycles,
		Instructions: 60,
		DataRefs:     30,
		CodePages:    []uint64{40},
		DataPages:    []uint64{42},
	}
	// The instrument is a kernel-resident loop thread: one invocation per
	// sample, no goroutine handshake. Each invocation first logs the
	// iteration that just completed, then starts the next one — the same
	// request stream (Compute2 per sample, then exit) and the same sample
	// values as the goroutine form, proven by the golden corpus.
	first := true
	il.thread = k.SpawnLoop("idleloop", kernel.KernelProc, kernel.IdlePriority, func(lc *kernel.LoopTC) bool {
		if !first {
			end := lc.Cycles()
			il.buf.Append(trace.IdleSample{
				Done:    simtime.Time(il.freq.DurationOf(end)),
				Elapsed: il.freq.DurationOf(end - il.start),
			})
		}
		first = false
		if il.buf.Full() {
			return false
		}
		il.start = lc.Cycles()
		// One batched request per sample: the busy-wait and the record
		// generation cost exactly what two Compute calls would, but the
		// kernel processes one request per record — keeping the
		// instrument's own overhead minimal, as the paper requires of
		// its idle loop (§2.2).
		lc.Compute2(loopSeg, recordSeg)
		return true
	})
	il.thread.SetBulkLoop(il)
	return il
}

// BulkBudget bounds analytic elision to the buffer space left, minus one
// so the straddling cycle's own sample still fits — the elided span must
// end with the instrument in a state the slow path could also reach.
func (il *IdleLoop) BulkBudget() int64 {
	b := int64(il.buf.Cap()-il.buf.Len()) - 1
	if b < 0 {
		b = 0
	}
	return b
}

// OnBulk appends the samples that n elided clean cycles would have
// recorded. Each cycle's Done/Elapsed reproduce the slow path's exact
// arithmetic — cycle boundaries quantised through the cycle counter —
// and il.start rolls forward to the straddling cycle's start, which the
// loop function already stamped at the span's beginning.
func (il *IdleLoop) OnBulk(n int64, start simtime.Time, cycle simtime.Duration) {
	// end_i = (start + i*cycle) / period, carried incrementally as a
	// quotient/remainder pair so the loop divides once at setup instead
	// of once per sample. The arithmetic is exact — identical to the
	// per-sample CycleAt the slow path computes.
	period := int64(simtime.Second) / int64(il.freq)
	first := int64(start) + int64(cycle)
	end, rem := first/period, first%period
	dq, dr := int64(cycle)/period, int64(cycle)%period
	for i := int64(1); i <= n; i++ {
		il.buf.Append(trace.IdleSample{
			Done:    simtime.Time(end * period),
			Elapsed: simtime.Duration((end - il.start) * period),
		})
		il.start = end
		end += dq
		if rem += dr; rem >= period {
			end++
			rem -= period
		}
	}
}

// Samples returns the recorded idle samples.
func (il *IdleLoop) Samples() []trace.IdleSample { return il.buf.Samples() }

// Full reports whether the trace buffer filled (the run should be sized
// so it does not).
func (il *IdleLoop) Full() bool { return il.buf.Full() }

// Thread returns the instrument's thread.
func (il *IdleLoop) Thread() *kernel.Thread { return il.thread }

// N returns the calibrated iteration count.
func (il *IdleLoop) N() int64 { return il.n }

// BusySpans converts an idle-sample trace into maximal busy spans: runs
// of consecutive elongated samples. threshold is the minimum stolen time
// for a sample to count as busy; at or below it, calibration jitter would
// masquerade as load.
//
// Span boundaries are known only to sample resolution (~1 ms), exactly as
// in the paper; Stolen is exact, because the idle loop accounts for every
// lost cycle.
func BusySpans(samples []trace.IdleSample, threshold simtime.Duration) []BusySpan {
	var spans []BusySpan
	var cur BusySpan
	open := false
	for _, s := range samples {
		stolen := s.Stolen(NominalSample)
		if stolen > threshold {
			if !open {
				cur = BusySpan{Span: Span{Start: s.Done.Add(-s.Elapsed)}}
				open = true
			}
			cur.Span.End = s.Done
			cur.Stolen += stolen
			cur.Samples++
		} else if open {
			spans = append(spans, cur)
			open = false
		}
	}
	if open {
		spans = append(spans, cur)
	}
	return spans
}

// BusySpan is a maximal run of elongated idle samples.
type BusySpan struct {
	Span
	// Stolen is the exact non-idle time observed within the span.
	Stolen simtime.Duration
	// Samples is the number of elongated samples merged.
	Samples int
}

// DefaultBusyThreshold distinguishes real work from jitter: 20 µs of
// stolen time within a 1 ms sample.
const DefaultBusyThreshold = 20 * simtime.Microsecond
