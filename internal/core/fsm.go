package core

import "latlab/internal/simtime"

// Phase classifies an interval of a user session (paper §2.3).
type Phase uint8

// Phases.
const (
	// Think: the user is neither making requests nor waiting — CPU idle,
	// message queue empty, no synchronous I/O outstanding.
	Think Phase = iota
	// Wait: the system is responding to a request the user is waiting
	// for — the CPU is busy, or input is queued, or synchronous I/O is
	// pending. Per the paper, we assume the user waits for every event.
	Wait
)

// String names the phase.
func (p Phase) String() string {
	if p == Think {
		return "think"
	}
	return "wait"
}

// PhaseChange is one FSM transition.
type PhaseChange struct {
	To Phase
	At simtime.Time
}

// FSM is the think-time/wait-time state machine of the paper's Fig. 2.
// Its inputs are the three observables the paper identifies: CPU state
// (busy/idle), message-queue state (empty/non-empty), and outstanding
// synchronous I/O. Asynchronous I/O is assumed to be background activity
// and is not an input.
//
// The paper notes that full implementation "requires additional system
// support for monitoring I/O and message queue state transitions"; the
// simulated kernel provides exactly those hooks, so latlab implements the
// complete FSM.
type FSM struct {
	cpuBusy  bool
	queueLen int
	syncIO   int

	cur         Phase
	since       simtime.Time
	transitions []PhaseChange
	think       simtime.Duration
	wait        simtime.Duration
}

// NewFSM returns an FSM in the Think state at time 0.
func NewFSM() *FSM {
	return &FSM{cur: Think}
}

// phase computes the state for the current inputs.
func (f *FSM) phase() Phase {
	if f.cpuBusy || f.queueLen > 0 || f.syncIO > 0 {
		return Wait
	}
	return Think
}

// SetCPU updates the CPU input at time now.
func (f *FSM) SetCPU(busy bool, now simtime.Time) {
	f.advance(now)
	f.cpuBusy = busy
	f.settle(now)
}

// SetQueue updates the message-queue length input at time now.
func (f *FSM) SetQueue(n int, now simtime.Time) {
	if n < 0 {
		panic("core: negative queue length")
	}
	f.advance(now)
	f.queueLen = n
	f.settle(now)
}

// SetSyncIO updates the outstanding synchronous I/O input at time now.
func (f *FSM) SetSyncIO(n int, now simtime.Time) {
	if n < 0 {
		panic("core: negative sync I/O count")
	}
	f.advance(now)
	f.syncIO = n
	f.settle(now)
}

// advance accrues time in the current phase up to now.
func (f *FSM) advance(now simtime.Time) {
	if now < f.since {
		panic("core: FSM time went backwards")
	}
	d := now.Sub(f.since)
	if f.cur == Think {
		f.think += d
	} else {
		f.wait += d
	}
	f.since = now
}

// settle records a transition if the inputs imply a new phase.
// Zero-duration flaps — several inputs updated at the same instant — are
// collapsed so the log reflects net phase changes only.
func (f *FSM) settle(now simtime.Time) {
	next := f.phase()
	if next == f.cur {
		return
	}
	f.cur = next
	if n := len(f.transitions); n > 0 && f.transitions[n-1].At == now {
		f.transitions = f.transitions[:n-1]
		before := Think
		if n >= 2 {
			before = f.transitions[n-2].To
		}
		if before == next {
			return // net no-op at this instant
		}
	}
	f.transitions = append(f.transitions, PhaseChange{To: next, At: now})
}

// Finish accrues time through end and returns the totals.
func (f *FSM) Finish(end simtime.Time) (think, wait simtime.Duration) {
	f.advance(end)
	return f.think, f.wait
}

// Phase returns the current phase.
func (f *FSM) Phase() Phase { return f.cur }

// Transitions returns the transition log.
func (f *FSM) Transitions() []PhaseChange { return f.transitions }

// ThinkTime and WaitTime return the accrued totals (excluding time since
// the last input update; call Finish for final numbers).
func (f *FSM) ThinkTime() simtime.Duration { return f.think }

// WaitTime returns the accrued wait time.
func (f *FSM) WaitTime() simtime.Duration { return f.wait }

// DriveFSM replays a probe's logs (ground-truth CPU, posts and
// message-API records for the given thread, sync-I/O changes) through a
// fresh FSM and returns it, finished at end. This is the "additional
// system support" configuration; RunFSMFromMeasurement feeds measured CPU
// state instead.
func DriveFSM(p *Probe, thread int, end simtime.Time) *FSM {
	f := NewFSM()
	var evs []ev
	for i, b := range p.Busy {
		evs = append(evs, ev{at: b.At, seq: i, kind: 0, b: b.Busy})
	}
	for i, post := range p.Posts {
		if post.Thread == thread {
			evs = append(evs, ev{at: post.At, seq: i, kind: 1, n: post.QueueLen})
		}
	}
	for i, m := range p.Msgs {
		if m.Thread == thread {
			evs = append(evs, ev{at: m.Return, seq: i, kind: 1, n: m.QueueLen})
		}
	}
	for i, s := range p.SyncIO {
		evs = append(evs, ev{at: s.At, seq: i, kind: 2, n: s.Outstanding})
	}
	// Stable sort by time; ties resolved by original order within kind,
	// which is already chronological, then by kind (busy first).
	sortEvs(evs)
	for _, e := range evs {
		switch e.kind {
		case 0:
			f.SetCPU(e.b, e.at)
		case 1:
			f.SetQueue(e.n, e.at)
		case 2:
			f.SetSyncIO(e.n, e.at)
		}
	}
	f.Finish(end)
	return f
}

func sortEvs(evs []ev) {
	// insertion sort keeps it dependency-free and stable; logs are
	// near-sorted already.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && less(evs[j], evs[j-1]); j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
}

type ev struct {
	at   simtime.Time
	seq  int
	kind int
	b    bool
	n    int
}

func less(a, b ev) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.seq < b.seq
}
