package core

import (
	"testing"
	"testing/quick"

	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/simtime"
)

func ms(f float64) simtime.Duration { return simtime.FromMillis(f) }
func at(f float64) simtime.Time     { return simtime.Time(simtime.FromMillis(f)) }

func TestFSMBasicTransitions(t *testing.T) {
	f := NewFSM()
	if f.Phase() != Think {
		t.Fatalf("initial phase = %v", f.Phase())
	}
	// Input arrives: queue non-empty → wait.
	f.SetQueue(1, at(100))
	if f.Phase() != Wait {
		t.Fatalf("queued input should mean wait")
	}
	// Dequeued, CPU handling it.
	f.SetQueue(0, at(101))
	f.SetCPU(true, at(101))
	if f.Phase() != Wait {
		t.Fatalf("busy CPU should mean wait")
	}
	// Handling done.
	f.SetCPU(false, at(110))
	if f.Phase() != Think {
		t.Fatalf("idle+empty+noio should mean think")
	}
	think, wait := f.Finish(at(200))
	if think != ms(100)+ms(90) {
		t.Fatalf("think = %v, want 190ms", think)
	}
	if wait != ms(10) {
		t.Fatalf("wait = %v, want 10ms", wait)
	}
	// Transition log: think→wait at 100, wait→think at 110.
	trs := f.Transitions()
	if len(trs) != 2 || trs[0].To != Wait || trs[0].At != at(100) || trs[1].To != Think || trs[1].At != at(110) {
		t.Fatalf("transitions = %+v", trs)
	}
}

func TestFSMSyncIOIsWait(t *testing.T) {
	// Paper §2.3: "synchronous I/O requests contribute to wait time, even
	// though the CPU can be idle during these operations."
	f := NewFSM()
	f.SetCPU(true, at(10))
	f.SetCPU(false, at(12))
	f.SetSyncIO(1, at(12)) // blocked on disk, CPU idle
	if f.Phase() != Wait {
		t.Fatalf("sync I/O with idle CPU must be wait")
	}
	f.SetSyncIO(0, at(30))
	_, wait := f.Finish(at(40))
	if wait != ms(20) {
		t.Fatalf("wait = %v, want 20ms (2 busy + 18 I/O)", wait)
	}
}

func TestFSMPhaseString(t *testing.T) {
	if Think.String() != "think" || Wait.String() != "wait" {
		t.Fatalf("phase names wrong")
	}
}

func TestFSMValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		fn()
	}
	f := NewFSM()
	f.SetCPU(true, at(10))
	mustPanic("time backwards", func() { f.SetCPU(false, at(5)) })
	mustPanic("negative queue", func() { NewFSM().SetQueue(-1, 0) })
	mustPanic("negative io", func() { NewFSM().SetSyncIO(-1, 0) })
}

// Property: think+wait always equals elapsed time, for any input script.
func TestFSMConservationProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		fsm := NewFSM()
		now := simtime.Time(0)
		for _, s := range steps {
			now = now.Add(simtime.Duration(s%1000) * simtime.Microsecond)
			switch s % 3 {
			case 0:
				fsm.SetCPU(s%2 == 0, now)
			case 1:
				fsm.SetQueue(int(s%4), now)
			case 2:
				fsm.SetSyncIO(int(s%2), now)
			}
		}
		end := now.Add(simtime.Millisecond)
		think, wait := fsm.Finish(end)
		return think+wait == simtime.Duration(end)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDriveFSMFromProbe(t *testing.T) {
	// End-to-end: an app handles one keystroke with a sync read; the FSM
	// driven from probe logs must classify wait = handling + I/O and
	// think = the rest.
	k := kernel.New(quietConfig())
	defer k.Shutdown()
	pr := AttachProbe(k)
	file := k.Cache().AddFile("doc", 200_000, 32)
	app := k.Spawn("app", 1, 8, func(tc *kernel.TC) {
		for {
			if m := tc.GetMessage(); m.Kind == kernel.WMQuit {
				return
			}
			tc.Compute(cpu.Segment{Name: "w", BaseCycles: 300_000}) // 3 ms
			tc.ReadFile(file, 0, 8)                                 // cold: tens of ms, CPU idle
		}
	})
	k.At(at(50), func(simtime.Time) { k.KeyboardInterrupt(app, kernel.WMChar, 0) })
	k.At(at(500), func(simtime.Time) { k.PostMessage(app, kernel.WMQuit, 0) })
	end := k.Run(simtime.Time(600 * simtime.Millisecond))

	f := DriveFSM(pr, app.ID(), end)
	think, wait := f.ThinkTime(), f.WaitTime()
	if think+wait != simtime.Duration(end) {
		t.Fatalf("conservation: think %v + wait %v != %v", think, wait, end)
	}
	// Wait covers ~3ms compute + disk read (several ms) + quit handling;
	// I/O wait must be included despite the idle CPU.
	if wait < ms(6) || wait > ms(60) {
		t.Fatalf("wait = %v, want handling+disk ≈ 10-40ms", wait)
	}
	if think < ms(500) {
		t.Fatalf("think = %v, want the bulk of the 600ms run", think)
	}
}

func TestSpanHelpers(t *testing.T) {
	s := Span{Start: at(10), End: at(20)}
	if s.Duration() != ms(10) {
		t.Fatalf("duration = %v", s.Duration())
	}
	if !s.Contains(at(10)) || s.Contains(at(20)) || s.Contains(at(5)) {
		t.Fatalf("contains wrong")
	}
	if !s.Overlaps(Span{Start: at(19), End: at(30)}) {
		t.Fatalf("overlap wrong")
	}
	if s.Overlaps(Span{Start: at(20), End: at(30)}) {
		t.Fatalf("touching spans do not overlap")
	}
}

func TestGroundTruthBusySpans(t *testing.T) {
	p := &Probe{Busy: []BusyChange{
		{Busy: true, At: at(10)},
		{Busy: false, At: at(15)},
		{Busy: true, At: at(40)},
	}}
	spans := p.GroundTruthBusySpans(at(50))
	if len(spans) != 2 {
		t.Fatalf("spans = %d", len(spans))
	}
	if spans[0] != (Span{Start: at(10), End: at(15)}) {
		t.Fatalf("span0 = %+v", spans[0])
	}
	if spans[1] != (Span{Start: at(40), End: at(50)}) {
		t.Fatalf("open span not closed at end: %+v", spans[1])
	}
}
