package core

import (
	"testing"
	"testing/quick"

	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/rng"
	"latlab/internal/simtime"
)

// TestExtractionAccuracyProperty is the repository's strongest validation
// of the methodology: for randomized workloads (random per-event costs
// and random spacing wide enough to avoid queueing), the idle-loop
// extraction must match the kernel's ground truth busy time per event to
// within the handler/dispatch overhead plus sample-resolution slop.
func TestExtractionAccuracyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := kernel.New(quietConfig())
		defer k.Shutdown()
		pr := AttachProbe(k)
		il := StartIdleLoop(k, 60_000)

		n := 4 + r.Intn(6)
		costs := make([]simtime.Duration, n)
		app := k.Spawn("app", 1, 8, func(tc *kernel.TC) {
			for {
				m := tc.GetMessage()
				if m.Kind == kernel.WMQuit {
					return
				}
				tc.Compute(cpu.Segment{Name: "w",
					BaseCycles: int64(costs[m.Param] / 10)}) // cycles at 10ns each
			}
		})

		at := simtime.Time(20 * simtime.Millisecond)
		for i := 0; i < n; i++ {
			costs[i] = simtime.Duration(r.Intn(24)+1) * simtime.Millisecond
			i := i
			k.At(at, func(simtime.Time) { k.KeyboardInterrupt(app, kernel.WMChar, int64(i)) })
			// Spacing always exceeds the largest possible cost.
			at = at.Add(simtime.Duration(r.Intn(30)+30) * simtime.Millisecond)
		}
		k.Run(at.Add(100 * simtime.Millisecond))

		events := Extract(il.Samples(), pr.Msgs, ExtractOptions{Thread: app.ID()})
		if len(events) != n {
			return false
		}
		for i, e := range events {
			// Latency must cover the compute cost plus the keyboard
			// handler, and not exceed it by more than dispatch overhead.
			lo := costs[i]
			hi := costs[i] + simtime.FromMillis(0.3)
			if e.Latency < lo || e.Latency > hi {
				t.Logf("seed %d event %d: latency %v, cost %v", seed, i, e.Latency, costs[i])
				return false
			}
			if e.Gapped {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestExtractionTotalsProperty: with queueing allowed (tight spacing),
// per-event attribution still conserves total busy mass: the sum of
// extracted Busy equals the instrument's total stolen time minus
// background (clock) noise.
func TestExtractionTotalsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := kernel.New(quietConfig()) // no clock cost: stolen is all events
		defer k.Shutdown()
		pr := AttachProbe(k)
		il := StartIdleLoop(k, 120_000)

		n := 5 + r.Intn(8)
		app := k.Spawn("app", 1, 8, func(tc *kernel.TC) {
			for {
				m := tc.GetMessage()
				if m.Kind == kernel.WMQuit {
					return
				}
				tc.Compute(cpu.Segment{Name: "w",
					BaseCycles: int64(r.Intn(900_000) + 100_000)})
			}
		})
		at := simtime.Time(20 * simtime.Millisecond)
		for i := 0; i < n; i++ {
			k.At(at, func(simtime.Time) { k.KeyboardInterrupt(app, kernel.WMChar, 0) })
			at = at.Add(simtime.Duration(r.Intn(12)+1) * simtime.Millisecond) // may queue
		}
		k.Run(at.Add(200 * simtime.Millisecond))

		events := Extract(il.Samples(), pr.Msgs, ExtractOptions{Thread: app.ID()})
		if len(events) != n {
			return false
		}
		var attributed simtime.Duration
		for _, e := range events {
			attributed += e.Busy
		}
		var stolen simtime.Duration
		for _, s := range il.Samples() {
			stolen += s.Stolen(NominalSample)
		}
		diff := attributed - stolen
		if diff < 0 {
			diff = -diff
		}
		// Tolerance: one sample of boundary slop.
		return diff <= simtime.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestExtractionLatencyOrderingProperty: events are returned in input
// order with non-overlapping [HandleStart, End) spans.
func TestExtractionLatencyOrderingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := kernel.New(quietConfig())
		defer k.Shutdown()
		pr := AttachProbe(k)
		il := StartIdleLoop(k, 120_000)
		app := k.Spawn("app", 1, 8, func(tc *kernel.TC) {
			for {
				if tc.GetMessage().Kind == kernel.WMQuit {
					return
				}
				tc.Compute(cpu.Segment{Name: "w", BaseCycles: int64(r.Intn(500_000) + 50_000)})
			}
		})
		at := simtime.Time(10 * simtime.Millisecond)
		n := 6 + r.Intn(6)
		for i := 0; i < n; i++ {
			k.At(at, func(simtime.Time) { k.KeyboardInterrupt(app, kernel.WMChar, 0) })
			at = at.Add(simtime.Duration(r.Intn(20)+1) * simtime.Millisecond)
		}
		k.Run(at.Add(100 * simtime.Millisecond))
		events := Extract(il.Samples(), pr.Msgs, ExtractOptions{Thread: app.ID()})
		if len(events) != n {
			return false
		}
		for i := 1; i < len(events); i++ {
			if events[i].Enqueued < events[i-1].Enqueued {
				return false
			}
			if events[i].HandleStart < events[i-1].End.Add(-simtime.Millisecond) {
				// Handling starts can't precede the previous event's end
				// beyond sample slop (single-threaded app).
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
