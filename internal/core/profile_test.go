package core

import (
	"math"
	"testing"

	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/simtime"
	"latlab/internal/trace"
)

func TestProfileFormula(t *testing.T) {
	// Paper §2.5: a 10 ms sample containing 1 ms of idle is 90% utilized.
	samples := []trace.IdleSample{
		{Done: at(1), Elapsed: ms(1)},
		{Done: at(11), Elapsed: ms(10)},
	}
	pts := Profile(samples)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Util != 0 {
		t.Fatalf("idle sample util = %v", pts[0].Util)
	}
	if math.Abs(pts[1].Util-0.9) > 1e-9 {
		t.Fatalf("busy sample util = %v, want 0.9", pts[1].Util)
	}
	if pts[1].T != at(11) {
		t.Fatalf("time coordinate = %v", pts[1].T)
	}
}

func TestAveragedProfileBuckets(t *testing.T) {
	// 20 one-ms idle samples then one 10ms sample (9 ms stolen): with
	// 10 ms buckets, bucket 0 and 1 are idle, bucket 2 is ~90% busy.
	var samples []trace.IdleSample
	for i := 1; i <= 20; i++ {
		samples = append(samples, trace.IdleSample{Done: at(float64(i)), Elapsed: ms(1)})
	}
	samples = append(samples, trace.IdleSample{Done: at(30), Elapsed: ms(10)})
	pts := AveragedProfile(samples, 10*simtime.Millisecond)
	if len(pts) != 3 {
		t.Fatalf("buckets = %d, want 3: %+v", len(pts), pts)
	}
	if pts[0].Util != 0 || pts[1].Util != 0 {
		t.Fatalf("idle buckets utilization = %v/%v", pts[0].Util, pts[1].Util)
	}
	if math.Abs(pts[2].Util-0.9) > 0.01 {
		t.Fatalf("busy bucket = %v, want ≈0.9", pts[2].Util)
	}
}

func TestAveragedProfileSaturatedGap(t *testing.T) {
	// One 35 ms sample (34 ms stolen) spans several 10 ms buckets; all
	// covered buckets must report near-saturation, none omitted.
	samples := []trace.IdleSample{
		{Done: at(1), Elapsed: ms(1)},
		{Done: at(36), Elapsed: ms(35)},
	}
	pts := AveragedProfile(samples, 10*simtime.Millisecond)
	if len(pts) < 4 {
		t.Fatalf("buckets = %d, want ≥4 (gap must be filled): %+v", len(pts), pts)
	}
	for _, p := range pts[1 : len(pts)-1] {
		if p.Util < 0.9 {
			t.Fatalf("covered bucket at %v util=%v, want ≈0.97", p.T, p.Util)
		}
	}
}

func TestAveragedProfileValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for bad bucket")
		}
	}()
	AveragedProfile(nil, 0)
}

func TestProfileHelpers(t *testing.T) {
	pts := []ProfilePoint{{Util: 0.2}, {Util: 0.8}, {Util: 0.5}}
	if MaxUtil(pts) != 0.8 {
		t.Fatalf("MaxUtil = %v", MaxUtil(pts))
	}
	if math.Abs(MeanUtil(pts)-0.5) > 1e-9 {
		t.Fatalf("MeanUtil = %v", MeanUtil(pts))
	}
	if MaxUtil(nil) != 0 || MeanUtil(nil) != 0 {
		t.Fatalf("empty helpers wrong")
	}
}

func TestEndToEndProfileOfBurst(t *testing.T) {
	// A 30 ms burst on an otherwise idle machine shows up as a block of
	// saturated utilization in the averaged profile (the Fig. 4 shape).
	k := kernel.New(quietConfig())
	defer k.Shutdown()
	il := StartIdleLoop(k, 2000)
	app := k.Spawn("app", 1, 8, func(tc *kernel.TC) {
		tc.GetMessage()
		tc.Compute(cpu.Segment{Name: "burst", BaseCycles: 3_000_000})
	})
	k.At(at(100), func(simtime.Time) { k.PostMessage(app, kernel.WMChar, 0) })
	k.Run(simtime.Time(300 * simtime.Millisecond))

	pts := AveragedProfile(il.Samples(), 10*simtime.Millisecond)
	var saturated int
	for _, p := range pts {
		if p.Util > 0.9 {
			saturated++
		}
	}
	if saturated < 2 || saturated > 4 {
		t.Fatalf("saturated 10ms buckets = %d, want ≈3 for a 30ms burst", saturated)
	}
}
