package core

import (
	"testing"

	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/simtime"
	"latlab/internal/trace"
)

// echoRig builds a quiet kernel with an idle loop, a probe, and an echo
// app whose per-event cost is fixed; it returns everything tests need.
type echoRig struct {
	k   *kernel.Kernel
	il  *IdleLoop
	pr  *Probe
	app *kernel.Thread
}

func newEchoRig(t *testing.T, workMs float64, queueSyncMs float64) *echoRig {
	t.Helper()
	k := kernel.New(quietConfig())
	pr := AttachProbe(k)
	il := StartIdleLoop(k, 20_000)
	work := cpu.Segment{Name: "echo", BaseCycles: int64(workMs * 100_000)}
	qs := cpu.Segment{Name: "qs", BaseCycles: int64(queueSyncMs * 100_000)}
	app := k.Spawn("app", 1, 8, func(tc *kernel.TC) {
		for {
			m := tc.GetMessage()
			switch m.Kind {
			case kernel.WMQuit:
				return
			case kernel.WMQueueSync:
				tc.Compute(qs)
			default:
				tc.Compute(work)
			}
		}
	})
	return &echoRig{k: k, il: il, pr: pr, app: app}
}

func (r *echoRig) extract(opts ExtractOptions) []Event {
	opts.Thread = r.app.ID()
	return Extract(r.il.Samples(), r.pr.Msgs, opts)
}

func TestExtractSingleKeystroke(t *testing.T) {
	r := newEchoRig(t, 9.76, 0)
	defer r.k.Shutdown()
	r.k.At(simtime.Time(50*simtime.Millisecond), func(simtime.Time) {
		r.k.KeyboardInterrupt(r.app, kernel.WMChar, 'x')
	})
	r.k.Run(simtime.Time(200 * simtime.Millisecond))

	events := r.extract(ExtractOptions{})
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
	e := events[0]
	if e.Kind != kernel.WMChar {
		t.Fatalf("kind = %v", e.Kind)
	}
	if e.Enqueued != simtime.Time(50*simtime.Millisecond) {
		t.Fatalf("enqueued = %v", e.Enqueued)
	}
	// Latency = keyboard handler (2.5k cycles quiet default... zeroed? no:
	// quietConfig keeps device handlers) + app compute. It must cover the
	// 9.76 ms compute and the interrupt handling the conventional method
	// misses, within sub-sample accuracy.
	want := simtime.FromMillis(9.76)
	if e.Latency < want || e.Latency > want+simtime.FromMillis(0.2) {
		t.Fatalf("latency = %v, want ≈%v (+handler)", e.Latency, want)
	}
	if e.Gapped {
		t.Fatalf("contiguous event marked gapped")
	}
	if e.HandleStart <= e.Enqueued {
		t.Fatalf("handle start %v should follow enqueue %v (interrupt+dispatch)", e.HandleStart, e.Enqueued)
	}
	if e.End <= e.HandleStart {
		t.Fatalf("end %v should follow handle start %v", e.End, e.HandleStart)
	}
}

func TestExtractCapturesSystemTimeConventionalMisses(t *testing.T) {
	// The Fig. 1 point: latency measured from the hardware event exceeds
	// the span the application itself can observe (HandleStart → End).
	cfg := quietConfig()
	cfg.KeyboardInterrupt = cpu.Segment{Name: "kbd", BaseCycles: 100_000} // 1 ms handler
	k := kernel.New(cfg)
	defer k.Shutdown()
	pr := AttachProbe(k)
	il := StartIdleLoop(k, 5000)
	app := k.Spawn("app", 1, 8, func(tc *kernel.TC) {
		for {
			if tc.GetMessage().Kind == kernel.WMQuit {
				return
			}
			tc.Compute(cpu.Segment{Name: "w", BaseCycles: 500_000})
		}
	})
	k.At(simtime.Time(20*simtime.Millisecond), func(simtime.Time) {
		k.KeyboardInterrupt(app, kernel.WMChar, 0)
	})
	k.Run(simtime.Time(100 * simtime.Millisecond))
	events := Extract(il.Samples(), pr.Msgs, ExtractOptions{Thread: app.ID()})
	if len(events) != 1 {
		t.Fatalf("events = %d", len(events))
	}
	e := events[0]
	conventional := e.End.Sub(e.HandleStart)
	if e.Latency <= conventional {
		t.Fatalf("idle-loop latency %v must exceed conventional %v (interrupt+dispatch time)",
			e.Latency, conventional)
	}
	if gap := e.Latency - conventional; gap < simtime.FromMillis(0.9) {
		t.Fatalf("missed system time = %v, want ≈1ms handler", gap)
	}
}

func TestExtractMultipleEventsMatchGroundTruth(t *testing.T) {
	r := newEchoRig(t, 3, 0)
	defer r.k.Shutdown()
	for i := int64(0); i < 10; i++ {
		at := simtime.Time(20+i*50) * simtime.Time(simtime.Millisecond)
		r.k.At(at, func(simtime.Time) { r.k.KeyboardInterrupt(r.app, kernel.WMChar, 0) })
	}
	r.k.Run(simtime.Time(simtime.Second))
	events := r.extract(ExtractOptions{})
	if len(events) != 10 {
		t.Fatalf("events = %d, want 10", len(events))
	}
	for i, e := range events {
		if e.Latency < simtime.FromMillis(3) || e.Latency > simtime.FromMillis(3.2) {
			t.Fatalf("event %d latency = %v, want ≈3ms", i, e.Latency)
		}
	}
}

func TestExtractQueuedInputLatencyIncludesWait(t *testing.T) {
	// Two keystrokes 1 ms apart with 5 ms handling each: the second waits
	// in the queue, so its latency ≈ 9 ms while its busy time ≈ 5 ms.
	r := newEchoRig(t, 5, 0)
	defer r.k.Shutdown()
	r.k.At(simtime.Time(20*simtime.Millisecond), func(simtime.Time) {
		r.k.KeyboardInterrupt(r.app, kernel.WMChar, 1)
	})
	r.k.At(simtime.Time(21*simtime.Millisecond), func(simtime.Time) {
		r.k.KeyboardInterrupt(r.app, kernel.WMChar, 2)
	})
	r.k.Run(simtime.Time(200 * simtime.Millisecond))
	events := r.extract(ExtractOptions{})
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	first, second := events[0], events[1]
	if first.Latency < simtime.FromMillis(5) || first.Latency > simtime.FromMillis(5.3) {
		t.Fatalf("first latency = %v", first.Latency)
	}
	if second.Latency < simtime.FromMillis(8.5) || second.Latency > simtime.FromMillis(9.5) {
		t.Fatalf("second latency = %v, want ≈9ms (queue wait included)", second.Latency)
	}
	if second.Busy > simtime.FromMillis(5.5) {
		t.Fatalf("second busy = %v, want ≈5ms", second.Busy)
	}
}

func TestExtractStripsQueueSync(t *testing.T) {
	// With Test-style input, WM_QUEUESYNC follows each keystroke; its
	// processing must be removable (paper §5.1).
	r := newEchoRig(t, 3, 4) // 3 ms real work, 4 ms WM_QUEUESYNC cost
	defer r.k.Shutdown()
	for i := int64(0); i < 5; i++ {
		at := simtime.Time(20+i*60) * simtime.Time(simtime.Millisecond)
		r.k.At(at, func(simtime.Time) {
			r.k.DeviceInterrupt(r.k.Config().KeyboardInterrupt, r.app,
				kernel.Msg{Kind: kernel.WMChar}, kernel.Msg{Kind: kernel.WMQueueSync})
		})
	}
	r.k.Run(simtime.Time(simtime.Second))

	raw := r.extract(ExtractOptions{})
	stripped := r.extract(ExtractOptions{StripQueueSync: true})
	if len(raw) != 5 || len(stripped) != 5 {
		t.Fatalf("events = %d/%d", len(raw), len(stripped))
	}
	for i := range raw {
		if raw[i].Latency < simtime.FromMillis(6.9) {
			t.Fatalf("raw latency %d = %v, want ≈7ms (3+4)", i, raw[i].Latency)
		}
		if stripped[i].Latency > simtime.FromMillis(3.4) || stripped[i].Latency < simtime.FromMillis(2.9) {
			t.Fatalf("stripped latency %d = %v, want ≈3ms", i, stripped[i].Latency)
		}
		if stripped[i].StrippedSync < simtime.FromMillis(3.8) {
			t.Fatalf("stripped amount %d = %v, want ≈4ms", i, stripped[i].StrippedSync)
		}
	}
}

func TestExtractGappedAnimationEvent(t *testing.T) {
	// A paced animation: the app handles one command with bursts
	// separated by tick-aligned sleeps. The extractor must merge it into
	// one event whose latency is the wall-clock span.
	k := kernel.New(quietConfig())
	defer k.Shutdown()
	pr := AttachProbe(k)
	il := StartIdleLoop(k, 20_000)
	app := k.Spawn("shell", 1, 8, func(tc *kernel.TC) {
		for {
			m := tc.GetMessage()
			if m.Kind == kernel.WMQuit {
				return
			}
			for i := 0; i < 8; i++ {
				tc.Compute(cpu.Segment{Name: "frame", BaseCycles: 200_000}) // 2 ms
				tc.Sleep(simtime.Nanosecond)                                // next tick
			}
		}
	})
	k.At(simtime.Time(25*simtime.Millisecond), func(simtime.Time) {
		k.KeyboardInterrupt(app, kernel.WMSysCommand, 1)
	})
	k.Run(simtime.Time(500 * simtime.Millisecond))
	events := Extract(il.Samples(), pr.Msgs, ExtractOptions{Thread: app.ID()})
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1 merged animation event", len(events))
	}
	e := events[0]
	if !e.Gapped {
		t.Fatalf("animation event not marked gapped")
	}
	// 8 frames paced at 10 ms ticks ≈ 80 ms wall clock, ~16 ms busy.
	if e.Latency < simtime.FromMillis(65) || e.Latency > simtime.FromMillis(95) {
		t.Fatalf("animation latency = %v, want ≈80ms span", e.Latency)
	}
	if e.Busy < simtime.FromMillis(15) || e.Busy > simtime.FromMillis(18) {
		t.Fatalf("animation busy = %v, want ≈16ms", e.Busy)
	}
}

func TestExtractEmptyInputs(t *testing.T) {
	if got := Extract(nil, nil, ExtractOptions{}); got != nil {
		t.Fatalf("empty extraction → %v", got)
	}
}

func TestFilterAndAccessors(t *testing.T) {
	events := []Event{
		{Latency: simtime.FromMillis(10), Enqueued: 5},
		{Latency: simtime.FromMillis(60), Enqueued: 7},
	}
	if got := FilterLatencyAbove(events, simtime.FromMillis(50)); len(got) != 1 || got[0].Enqueued != 7 {
		t.Fatalf("filter wrong: %v", got)
	}
	if ls := Latencies(events); ls[0] != 10 || ls[1] != 60 {
		t.Fatalf("latencies wrong: %v", ls)
	}
	if ss := Starts(events); ss[0] != 5 || ss[1] != 7 {
		t.Fatalf("starts wrong: %v", ss)
	}
}

func TestExtractOptionEndCapsAnalysis(t *testing.T) {
	r := newEchoRig(t, 3, 0)
	defer r.k.Shutdown()
	for _, ms := range []int64{20, 120} {
		at := simtime.Time(ms) * simtime.Time(simtime.Millisecond)
		r.k.At(at, func(simtime.Time) { r.k.KeyboardInterrupt(r.app, kernel.WMChar, 0) })
	}
	r.k.Run(simtime.Time(300 * simtime.Millisecond))
	// Capping End before the second event's dequeue excludes it... the
	// anchor still exists, but its window collapses to zero.
	events := Extract(r.il.Samples(), r.pr.Msgs, ExtractOptions{
		Thread: r.app.ID(),
		End:    simtime.Time(100 * simtime.Millisecond),
	})
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Latency < simtime.FromMillis(3) {
		t.Fatalf("first event unaffected by cap, got %v", events[0].Latency)
	}
}

func TestExtractCustomBusyThreshold(t *testing.T) {
	// An absurdly high threshold hides all activity: events extract with
	// zero attributed busy time.
	r := newEchoRig(t, 3, 0)
	defer r.k.Shutdown()
	r.k.At(simtime.Time(20*simtime.Millisecond), func(simtime.Time) {
		r.k.KeyboardInterrupt(r.app, kernel.WMChar, 0)
	})
	r.k.Run(simtime.Time(200 * simtime.Millisecond))
	events := Extract(r.il.Samples(), r.pr.Msgs, ExtractOptions{
		Thread:        r.app.ID(),
		BusyThreshold: simtime.Second,
	})
	if len(events) != 1 || events[0].Busy != 0 {
		t.Fatalf("threshold should hide busy spans: %+v", events)
	}
}

func TestProbeMsgsForThread(t *testing.T) {
	p := &Probe{Msgs: []trace.MsgRecord{{Thread: 1}, {Thread: 2}, {Thread: 1}}}
	if got := p.MsgsForThread(1); len(got) != 2 {
		t.Fatalf("filtered = %d", len(got))
	}
	if got := p.MsgsForThread(9); len(got) != 0 {
		t.Fatalf("unknown thread should be empty")
	}
}
