package core

import (
	"latlab/internal/kernel"
	"latlab/internal/simtime"
	"latlab/internal/trace"
)

// Event is one extracted interactive event: a user input and the system
// activity handling it.
type Event struct {
	// Kind is the triggering message kind.
	Kind kernel.MsgKind
	// Enqueued is the hardware-interrupt time of the input: latency is
	// measured from the user's action, not from when the application saw
	// the message (the Fig. 1 discrepancy).
	Enqueued simtime.Time
	// HandleStart is when the application dequeued the message.
	HandleStart simtime.Time
	// End is when the system went quiescent for this event.
	End simtime.Time
	// Latency is the user-perceived response time.
	Latency simtime.Duration
	// Busy is the exact non-idle CPU time attributed to the event window
	// (the idle loop accounts every stolen cycle).
	Busy simtime.Duration
	// Gapped reports that the event contained internal idle periods
	// (paced animation, synchronous I/O waits): its Latency is the
	// wall-clock span at ~1 ms sample resolution rather than the exact
	// stolen-time sum.
	Gapped bool
	// StrippedSync is the WM_QUEUESYNC processing time removed from the
	// latency (ExtractOptions.StripQueueSync).
	StrippedSync simtime.Duration
}

// ExtractOptions tunes event extraction.
type ExtractOptions struct {
	// Thread restricts the message trace to one application thread.
	Thread int
	// StripQueueSync removes Microsoft Test's WM_QUEUESYNC processing
	// from event latencies, as the paper does for the Notepad benchmark:
	// "we were able to clearly identify the Test overhead and remove it"
	// (§5.1). The time still exists in elapsed time — the Fig. 7 anomaly.
	StripQueueSync bool
	// BusyThreshold is the per-sample stolen-time floor; defaults to
	// DefaultBusyThreshold.
	BusyThreshold simtime.Duration
	// End caps the analysis window (defaults to the last sample).
	End simtime.Time
}

// Extract correlates the idle-loop trace with the message-API trace and
// produces one Event per user input, in input order.
//
// The boundary of an event is the next time the application *blocks*
// waiting for messages (a GetMessage call whose return came later), or
// the dequeue of the next user input, whichever is earlier — precisely
// the §2.4 role of the message monitor. Animation paced by timers never
// blocks in GetMessage, so multi-burst events stay whole (§2.6); an
// application that keeps feeding itself work (Word's background
// coroutines) inflates its events, reproducing the paper's §5.4
// difficulty rather than papering over it.
func Extract(samples []trace.IdleSample, msgs []trace.MsgRecord, opts ExtractOptions) []Event {
	if opts.BusyThreshold == 0 {
		opts.BusyThreshold = DefaultBusyThreshold
	}
	if opts.End == 0 && len(samples) > 0 {
		opts.End = samples[len(samples)-1].Done
	}

	// Count-then-fill keeps the analysis path at a handful of exact
	// allocations however large the trace is.
	nrecs := 0
	for _, m := range msgs {
		if m.Thread == opts.Thread {
			nrecs++
		}
	}
	var recs []trace.MsgRecord
	if nrecs == len(msgs) {
		recs = msgs // single-thread trace: no copy needed, Extract only reads
	} else {
		recs = make([]trace.MsgRecord, 0, nrecs)
		for _, m := range msgs {
			if m.Thread == opts.Thread {
				recs = append(recs, m)
			}
		}
	}
	spans := BusySpans(samples, opts.BusyThreshold)

	// Anchor records: user-input dequeues.
	nanchors := 0
	for _, m := range recs {
		if m.Received && kernel.MsgKind(m.Kind).UserInput() {
			nanchors++
		}
	}
	if nanchors == 0 {
		return nil
	}
	anchors := make([]int, 0, nanchors)
	for i, m := range recs {
		if m.Received && kernel.MsgKind(m.Kind).UserInput() {
			anchors = append(anchors, i)
		}
	}

	// nextBlock[i] is the call time of the first blocking GetMessage at
	// or after record i (opts.End when none): one backward pass replaces
	// a forward scan per anchor, which was quadratic in trace length.
	nextBlock := make([]simtime.Time, len(recs)+1)
	nextBlock[len(recs)] = opts.End
	for i := len(recs) - 1; i >= 0; i-- {
		if recs[i].API == trace.GetMessage && !recs[i].Received {
			nextBlock[i] = recs[i].Call
		} else {
			nextBlock[i] = nextBlock[i+1]
		}
	}

	events := make([]Event, 0, nanchors)
	var prevEnd simtime.Time
	// consumed tracks how much of each busy span's stolen mass has been
	// attributed to earlier events: back-to-back handling of queued
	// inputs produces one long span shared between events.
	consumed := make([]simtime.Duration, len(spans))
	// lo is the first span that can still overlap the current window.
	// Event windows have non-decreasing starts (each starts no earlier
	// than max(its enqueue, the previous event's end)), so spans wholly
	// before the current window are dead for all later windows too.
	lo := 0
	for ai, idx := range anchors {
		m := recs[idx]
		e := Event{
			Kind:        kernel.MsgKind(m.Kind),
			Enqueued:    m.Enqueued,
			HandleStart: m.Return,
		}

		// Boundary: the application's next blocking wait (logged at call
		// time by the monitor), capped by the next anchor's dequeue.
		boundary := nextBlock[idx+1]
		if ai+1 < len(anchors) {
			next := recs[anchors[ai+1]]
			if next.Return < boundary {
				boundary = next.Return
			}
		}
		if boundary < e.HandleStart {
			boundary = e.HandleStart
		}

		// Attribute stolen mass within [max(enqueued, prevEnd), boundary]
		// to this event, consuming spans so overlapping windows share
		// correctly.
		from := e.Enqueued
		if prevEnd > from {
			from = prevEnd
		}
		window := Span{Start: from, End: boundary}
		end := e.HandleStart
		gaps := false
		covered := false
		var busy simtime.Duration
		for lo < len(spans) && spans[lo].Span.End <= window.Start {
			lo++
		}
		for i := lo; i < len(spans); i++ {
			bs := spans[i]
			if bs.Span.Start >= window.End {
				break // spans are time-ordered; none later can overlap
			}
			if !bs.Span.Overlaps(window) {
				continue
			}
			if covered && bs.Span.Start > end {
				gaps = true
			}
			covered = true
			avail := bs.Stolen - consumed[i]
			if avail < 0 {
				avail = 0
			}
			take := avail
			if bs.Span.End > window.End {
				// The span continues past the boundary (the next event's
				// handling): within the window the CPU was saturated, so
				// the window's share is its busy extent.
				start := bs.Span.Start
				if window.Start > start {
					start = window.Start
				}
				if inWindow := window.End.Sub(start); inWindow < take {
					take = inWindow
				}
			}
			consumed[i] += take
			busy += take
			if bs.Span.End > end {
				end = bs.Span.End
			}
		}
		if end > boundary {
			end = boundary
		}
		e.End = end
		e.Busy = busy
		e.Gapped = gaps

		if gaps {
			// Paced events: wall-clock span at sample resolution.
			e.Latency = e.End.Sub(e.Enqueued)
		} else {
			// Contiguous events: queue wait (exact, from the message
			// trace) plus this event's stolen mass (exact, from the
			// idle loop).
			e.Latency = window.Start.Sub(e.Enqueued) + busy
		}

		if opts.StripQueueSync {
			e.StrippedSync = queueSyncTime(recs, idx, boundary)
			if e.StrippedSync > e.Latency {
				e.StrippedSync = e.Latency
			}
			e.Latency -= e.StrippedSync
		}
		if e.Latency < 0 {
			e.Latency = 0
		}
		prevEnd = e.End
		events = append(events, e)
	}
	return events
}

// queueSyncTime measures the processing time of WM_QUEUESYNC messages
// dequeued within (anchor, boundary]: from each sync dequeue to the
// application's next message-API call.
func queueSyncTime(recs []trace.MsgRecord, anchor int, boundary simtime.Time) simtime.Duration {
	var total simtime.Duration
	for j := anchor + 1; j < len(recs); j++ {
		r := recs[j]
		if r.Return > boundary {
			break
		}
		if !r.Received || kernel.MsgKind(r.Kind) != kernel.WMQueueSync {
			continue
		}
		// Processing runs from this dequeue to the next API call.
		if j+1 < len(recs) {
			total += recs[j+1].Call.Sub(r.Return)
		}
	}
	if total < 0 {
		return 0
	}
	return total
}

// Latencies returns the events' latencies in milliseconds, in order.
func Latencies(events []Event) []float64 {
	out := make([]float64, len(events))
	for i, e := range events {
		out[i] = e.Latency.Milliseconds()
	}
	return out
}

// Starts returns the events' enqueue times, in order.
func Starts(events []Event) []simtime.Time {
	out := make([]simtime.Time, len(events))
	for i, e := range events {
		out[i] = e.Enqueued
	}
	return out
}

// FilterLatencyAbove returns the events with latency of at least min (the
// paper pre-filters PowerPoint events below 50 ms, §5.2).
func FilterLatencyAbove(events []Event, min simtime.Duration) []Event {
	var out []Event
	for _, e := range events {
		if e.Latency >= min {
			out = append(out, e)
		}
	}
	return out
}
