package core

import (
	"testing"

	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/simtime"
	"latlab/internal/trace"
)

// quietConfig is a kernel with all incidental costs zeroed, so tests can
// assert exact times.
func quietConfig() kernel.Config {
	cfg := kernel.DefaultConfig()
	cfg.ContextSwitch = cpu.Segment{}
	cfg.ClockInterrupt = cpu.Segment{}
	cfg.FlushOnProcessSwitch = false
	return cfg
}

func msSeg(name string, ms int64) cpu.Segment {
	return cpu.Segment{Name: name, BaseCycles: ms * 100_000}
}

func TestCalibrateN(t *testing.T) {
	n := CalibrateN(simtime.CPUFrequency)
	total := n*perIterationCycles + recordCycles
	budget := simtime.CPUFrequency.CyclesIn(NominalSample)
	if total > budget || budget-total >= perIterationCycles {
		t.Fatalf("calibration: %d cycles for a %d budget", total, budget)
	}
}

func TestIdleLoopOnQuietSystem(t *testing.T) {
	k := kernel.New(quietConfig())
	defer k.Shutdown()
	il := StartIdleLoop(k, 200)
	k.Run(simtime.Time(300 * simtime.Millisecond))
	samples := il.Samples()
	if len(samples) != 200 || !il.Full() {
		t.Fatalf("samples = %d, want 200 (buffer-limited)", len(samples))
	}
	for i, s := range samples {
		slack := s.Elapsed - NominalSample
		if slack < -simtime.Duration(perIterationCycles*10) || slack > simtime.Microsecond {
			t.Fatalf("sample %d elapsed %v, want ≈1ms on an idle system", i, s.Elapsed)
		}
	}
	if il.N() <= 0 {
		t.Fatalf("N = %d", il.N())
	}
}

func TestIdleLoopSeesClockInterrupts(t *testing.T) {
	// Paper §2.5: by coupling the idle loop with the counters, clock
	// interrupt overhead (~400 cycles = 4 µs on NT 4.0) is measurable.
	cfg := quietConfig()
	cfg.ClockInterrupt = cpu.Segment{Name: "clock", BaseCycles: 400}
	k := kernel.New(cfg)
	defer k.Shutdown()
	il := StartIdleLoop(k, 500)
	k.Run(simtime.Time(600 * simtime.Millisecond))

	elongated := 0
	// Skip the first sample: the instrument's own cold TLB misses show
	// up there (the paper likewise ignores cold-cache cases).
	for _, s := range il.Samples()[1:] {
		if st := s.Stolen(NominalSample); st > 0 {
			if st < 3*simtime.Microsecond || st > 5*simtime.Microsecond {
				t.Fatalf("stolen %v, want ≈4µs per clock tick", st)
			}
			elongated++
		}
	}
	// 500 samples ≈ 500 ms ≈ 50 ticks.
	if elongated < 45 || elongated > 55 {
		t.Fatalf("elongated samples = %d, want ≈50", elongated)
	}
}

func TestIdleLoopMeasuresForegroundBurst(t *testing.T) {
	// Fig. 1 validation: the idle loop must account a known burst almost
	// exactly via elongation.
	k := kernel.New(quietConfig())
	defer k.Shutdown()
	il := StartIdleLoop(k, 300)
	app := k.Spawn("app", 1, 8, func(tc *kernel.TC) {
		tc.GetMessage()
		tc.Compute(cpu.Segment{Name: "work", BaseCycles: 976_000}) // 9.76 ms
	})
	k.At(simtime.Time(50*simtime.Millisecond), func(simtime.Time) {
		k.PostMessage(app, kernel.WMChar, 0)
	})
	k.Run(simtime.Time(400 * simtime.Millisecond))

	var stolen simtime.Duration
	for _, s := range il.Samples() {
		stolen += s.Stolen(NominalSample)
	}
	want := simtime.FromMillis(9.76)
	if stolen < want || stolen > want+simtime.FromMillis(0.1) {
		t.Fatalf("total stolen = %v, want ≈%v", stolen, want)
	}
}

func TestBusySpans(t *testing.T) {
	ms := func(f float64) simtime.Duration { return simtime.FromMillis(f) }
	at := func(f float64) simtime.Time { return simtime.Time(simtime.FromMillis(f)) }
	samples := []trace.IdleSample{
		{Done: at(1), Elapsed: ms(1)},
		{Done: at(2), Elapsed: ms(1)},
		{Done: at(5), Elapsed: ms(3)},  // 2 ms stolen
		{Done: at(7), Elapsed: ms(2)},  // 1 ms stolen
		{Done: at(8), Elapsed: ms(1)},  // idle: breaks the span
		{Done: at(10), Elapsed: ms(2)}, // 1 ms stolen
	}
	spans := BusySpans(samples, DefaultBusyThreshold)
	if len(spans) != 2 {
		t.Fatalf("spans = %d, want 2", len(spans))
	}
	if spans[0].Stolen != ms(3) || spans[0].Samples != 2 {
		t.Fatalf("span0 = %+v", spans[0])
	}
	if spans[0].Start != at(2) || spans[0].End != at(7) {
		t.Fatalf("span0 bounds = [%v,%v]", spans[0].Start, spans[0].End)
	}
	if spans[1].Stolen != ms(1) || spans[1].Samples != 1 {
		t.Fatalf("span1 = %+v", spans[1])
	}
}

func TestBusySpansEmptyAndQuiet(t *testing.T) {
	if got := BusySpans(nil, DefaultBusyThreshold); got != nil {
		t.Fatalf("nil samples → %v", got)
	}
	quiet := []trace.IdleSample{{Done: simtime.Time(simtime.Millisecond), Elapsed: simtime.Millisecond}}
	if got := BusySpans(quiet, DefaultBusyThreshold); len(got) != 0 {
		t.Fatalf("quiet trace → %d spans", len(got))
	}
}

func TestStolenMatchesGroundTruth(t *testing.T) {
	// The instrument's total stolen time must track the kernel's ground
	// truth across a messy schedule (several apps, I/O, interrupts).
	cfg := kernel.DefaultConfig() // full costs
	k := kernel.New(cfg)
	defer k.Shutdown()
	il := StartIdleLoop(k, 3000)
	f := k.Cache().AddFile("f", 100_000, 64)
	app := k.Spawn("app", 1, 8, func(tc *kernel.TC) {
		for {
			m := tc.GetMessage()
			if m.Kind == kernel.WMQuit {
				return
			}
			tc.Compute(msSeg("w", 3))
			tc.ReadFile(f, int64(m.Param%8)*8, 4)
		}
	})
	for i := int64(0); i < 6; i++ {
		i := i
		k.At(simtime.Time(i*100+30)*simtime.Time(simtime.Millisecond), func(simtime.Time) {
			k.KeyboardInterrupt(app, kernel.WMChar, i)
		})
	}
	k.At(simtime.Time(900*simtime.Millisecond), func(simtime.Time) { k.PostMessage(app, kernel.WMQuit, 0) })
	end := k.Run(simtime.Time(simtime.Second))

	var stolen simtime.Duration
	for _, s := range il.Samples() {
		stolen += s.Stolen(NominalSample)
	}
	truth := k.NonIdleBusyTime()
	_ = end
	diff := stolen - truth
	if diff < 0 {
		diff = -diff
	}
	// Within 2% of ground truth plus one sample of slop. The residual is
	// real methodology overhead (context switches to/from the instrument
	// are charged to busy time), just as in the paper.
	if float64(diff) > 0.02*float64(truth)+float64(simtime.Millisecond) {
		t.Fatalf("stolen %v vs ground truth %v (diff %v)", stolen, truth, diff)
	}
}
