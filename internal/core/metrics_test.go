package core

import (
	"math"
	"testing"

	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/simtime"
)

func eventsFromMs(latMs []float64, spacing simtime.Duration) []Event {
	evs := make([]Event, len(latMs))
	for i, l := range latMs {
		evs[i] = Event{
			Kind:     kernel.WMChar,
			Enqueued: simtime.Time(simtime.Duration(i) * spacing),
			Latency:  simtime.FromMillis(l),
		}
	}
	return evs
}

func TestReportBasics(t *testing.T) {
	r := NewReport(eventsFromMs([]float64{2, 2, 2, 2, 30}, simtime.Second), 10*simtime.Second)
	if got := r.TotalLatency(); got != simtime.FromMillis(38) {
		t.Fatalf("total latency = %v", got)
	}
	if s := r.Summary(); s.N != 5 || s.Max != 30 {
		t.Fatalf("summary = %+v", s)
	}
	if got := r.CountAbove(10); got != 1 {
		t.Fatalf("count above = %d", got)
	}
	// 8/38 ≈ 21% of latency comes from events under 10 ms.
	if f := r.FractionBelow(10); math.Abs(f-8.0/38) > 1e-9 {
		t.Fatalf("fraction below = %v", f)
	}
	h := r.Histogram(0, 40, 4)
	if h.Counts[0] != 4 || h.Counts[3] != 1 {
		t.Fatalf("histogram = %+v", h.Counts)
	}
	curve := r.CumulativeCurve()
	if len(curve) != 5 || curve[4].CumLatency != 38 {
		t.Fatalf("curve tail = %+v", curve[len(curve)-1])
	}
	if r.Elapsed != 10*simtime.Second {
		t.Fatalf("elapsed = %v", r.Elapsed)
	}
}

func TestReportInterarrival(t *testing.T) {
	// Events every second; every 3rd is long. Above-threshold gaps = 3s.
	var lats []float64
	for i := 0; i < 9; i++ {
		if i%3 == 0 {
			lats = append(lats, 200)
		} else {
			lats = append(lats, 10)
		}
	}
	r := NewReport(eventsFromMs(lats, simtime.Second), 9*simtime.Second)
	ia := r.Interarrival(100)
	if ia.Count != 3 {
		t.Fatalf("count = %d", ia.Count)
	}
	if math.Abs(ia.MeanSec-3) > 1e-9 || ia.StdDevSec > 1e-9 {
		t.Fatalf("interarrival = %+v", ia)
	}
}

func TestIrritation(t *testing.T) {
	lats := []float64{50, 150, 2100}
	// Above 100 ms: (150-100) + (2100-100) = 2050 ms = 2.05 s.
	if got := Irritation(lats, PerceptionThresholdMs); math.Abs(got-2.05) > 1e-9 {
		t.Fatalf("irritation = %v", got)
	}
	if got := Irritation(lats, IrritationThresholdMs); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("irritation@2s = %v", got)
	}
	if Irritation(nil, 100) != 0 {
		t.Fatalf("empty irritation should be 0")
	}
}

func TestMeasureCountersPairwise(t *testing.T) {
	k := kernel.New(quietConfig())
	defer k.Shutdown()
	seg := cpu.Segment{Name: "op", BaseCycles: 50_000,
		CodePages: []uint64{1, 2}, DataPages: []uint64{10, 11, 12},
		Instructions: 30_000, SegmentLoads: 7}
	reps := 0
	app := k.Spawn("app", 1, 8, func(tc *kernel.TC) {
		for {
			if m := tc.GetMessage(); m.Kind == kernel.WMQuit {
				return
			}
			tc.Compute(seg)
		}
	})
	run := func() {
		reps++
		k.PostMessage(app, kernel.WMCommand, 0)
		k.RunFor(10 * simtime.Millisecond)
	}
	kinds := []cpu.EventKind{cpu.Instructions, cpu.ITLBMisses, cpu.SegmentLoads}
	m := MeasureCounters(k, "op", kinds, run)
	if reps != 2 {
		t.Fatalf("repetitions = %d, want 2 (pairs of counters)", reps)
	}
	if m.Events[cpu.Instructions] != 30_000 {
		t.Fatalf("instructions = %d", m.Events[cpu.Instructions])
	}
	if m.Events[cpu.SegmentLoads] != 7 {
		t.Fatalf("segment loads = %d", m.Events[cpu.SegmentLoads])
	}
	// Cycles from the first repetition include the op plus dispatch.
	if lm := m.LatencyMs(k.CPU().Freq); lm < 0.5 || lm > 11 {
		t.Fatalf("latency = %vms", lm)
	}
	if m.Label != "op" {
		t.Fatalf("label = %q", m.Label)
	}
}

func TestTLBAttribution(t *testing.T) {
	slow := CounterMeasurement{Cycles: 1_000_000, Events: map[cpu.EventKind]int64{
		cpu.ITLBMisses: 8000, cpu.DTLBMisses: 6000}}
	fast := CounterMeasurement{Cycles: 800_000, Events: map[cpu.EventKind]int64{
		cpu.ITLBMisses: 1000, cpu.DTLBMisses: 3000}}
	extra, frac := TLBAttribution(slow, fast, 20)
	if extra != 10_000 {
		t.Fatalf("extra misses = %d", extra)
	}
	if math.Abs(frac-1.0) > 1e-9 { // 10k*20 = 200k = the whole diff
		t.Fatalf("fraction = %v", frac)
	}
	if _, f := TLBAttribution(fast, slow, 20); f != 0 {
		t.Fatalf("non-positive diff should yield 0 fraction")
	}
}
