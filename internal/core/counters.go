package core

import (
	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/simtime"
)

// CounterMeasurement holds the hardware-event counts and cycle cost of
// one measured operation (paper Figs. 9-10).
type CounterMeasurement struct {
	Label  string
	Cycles int64
	Events map[cpu.EventKind]int64
}

// LatencyMs converts the cycle count to milliseconds at the machine's
// clock rate.
func (m CounterMeasurement) LatencyMs(freq simtime.Hz) float64 {
	return freq.DurationOf(m.Cycles).Milliseconds()
}

// MeasureCounters measures op once per counter *pair*, exactly as the
// Pentium forces: two configurable event counters, system-mode access
// (paper §2.2: "we repeated the test 10 times for each performance
// counter"). The run callback must perform one repetition of the
// operation and return when it is complete (driving the kernel as
// needed); it is invoked ceil(len(kinds)/2) times.
//
// Because each repetition re-runs the operation, warm-up effects between
// repetitions are visible to the caller — run a warm-up first when
// measuring steady state, or don't, to reproduce the paper's cold-start
// observations (§5.3 OLE: "all of the events and the cycle counter
// increased steadily on subsequent runs").
func MeasureCounters(k *kernel.Kernel, label string, kinds []cpu.EventKind, run func()) CounterMeasurement {
	m := CounterMeasurement{Label: label, Events: make(map[cpu.EventKind]int64, len(kinds))}
	f := k.Counters()
	first := true
	for i := 0; i < len(kinds); i += 2 {
		pair := kinds[i:]
		if len(pair) > 2 {
			pair = pair[:2]
		}
		for j, kind := range pair {
			if err := f.Configure(cpu.SystemMode, j, kind); err != nil {
				panic("core: counter configuration failed: " + err.Error())
			}
		}
		startCycles := f.ReadCycles(k.Now())
		run()
		if first {
			// Cycle cost from the first repetition only, so warm-up of
			// later pairs doesn't skew it.
			m.Cycles = f.ReadCycles(k.Now()) - startCycles
			first = false
		}
		for j, kind := range pair {
			v, err := f.Read(cpu.SystemMode, j)
			if err != nil {
				panic("core: counter read failed: " + err.Error())
			}
			m.Events[kind] = v
		}
	}
	return m
}

// TLBAttribution quantifies how much of a latency difference between two
// measurements is explained by extra TLB misses, at a given cycles-per-
// miss cost — the paper's §5.3 argument ("Using 20 cycles per miss as a
// lower bound ... the extra TLB misses account for at least 25% of the
// latency difference").
func TLBAttribution(slow, fast CounterMeasurement, cyclesPerMiss int64) (extraMisses int64, fractionOfDiff float64) {
	slowTLB := slow.Events[cpu.ITLBMisses] + slow.Events[cpu.DTLBMisses]
	fastTLB := fast.Events[cpu.ITLBMisses] + fast.Events[cpu.DTLBMisses]
	extraMisses = slowTLB - fastTLB
	diff := slow.Cycles - fast.Cycles
	if diff <= 0 {
		return extraMisses, 0
	}
	return extraMisses, float64(extraMisses*cyclesPerMiss) / float64(diff)
}
