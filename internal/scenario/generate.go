package scenario

import (
	"fmt"

	"latlab/internal/faults"
	"latlab/internal/input"
	"latlab/internal/machine"
	"latlab/internal/rng"
)

// Constraints bounds the generative fuzzer's search space. The zero
// value means the full space at corpus-friendly sizes: every workload
// kind, persona, and machine, sessions small enough that a corpus
// replay stays fast.
type Constraints struct {
	// Kinds restricts the workload kinds drawn from; empty means all.
	Kinds []string
	// Personas restricts the persona short names; empty means all.
	Personas []string
	// Machines restricts the machine short names; empty means every
	// profile plus "" (inherit the run's -machine).
	Machines []string
	// MaxFaults caps the fault kinds per scenario (default 3; windows
	// count toward it too).
	MaxFaults int
	// MaxChars caps typed characters per typing scenario (default 120).
	MaxChars int
	// MaxViews caps browsed views per browse scenario (default 10).
	MaxViews int
	// MaxStanzas caps explicit input stanzas (default 3).
	MaxStanzas int
}

// withDefaults resolves the zero value to the full search space.
func (c Constraints) withDefaults() Constraints {
	if len(c.Kinds) == 0 {
		c.Kinds = WorkloadKinds()
	}
	if len(c.Personas) == 0 {
		c.Personas = personaShorts()
	}
	if len(c.Machines) == 0 {
		c.Machines = append([]string{""}, machine.Shorts()...)
	}
	if c.MaxFaults <= 0 {
		c.MaxFaults = 3
	}
	if c.MaxChars <= 0 {
		c.MaxChars = 120
	}
	if c.MaxViews <= 0 {
		c.MaxViews = 10
	}
	if c.MaxStanzas <= 0 {
		c.MaxStanzas = 3
	}
	return c
}

// Generate derives one scenario document from seed alone, inside c's
// bounds. The same (seed, c) always yields the same document, and the
// document pins its own Seed, so a cliff the fuzzer finds reproduces
// bit-for-bit from the committed file whatever the replaying run's
// -seed is. Generated documents always validate.
//
// The generator is biased toward the two cliff families the DSL can
// express: interarrival storms (keydown bursts at millisecond pitch
// riding on a human-paced timeline) and fault/phase alignments
// (explicit fault windows placed over the storm, or derived windows
// spanning the session). Quick is left nil — generated workloads are
// already corpus-sized, so -quick and full runs are identical, and the
// corpus goldens hold in both modes.
func Generate(seed uint64, c Constraints) Doc {
	c = c.withDefaults()
	r := rng.New(seed ^ 0x7363656e_67656e31) // "scengen1"
	d := Doc{
		Schema:  SchemaVersion,
		ID:      fmt.Sprintf("fz-%016x", seed),
		Title:   fmt.Sprintf("fuzzed scenario (seed %d)", seed),
		Paper:   "scenario fuzzer (generative extension)",
		Persona: c.Personas[r.Intn(len(c.Personas))],
		Machine: c.Machines[r.Intn(len(c.Machines))],
		Seed:    seed,
	}
	kind := c.Kinds[r.Intn(len(c.Kinds))]
	var sessionS float64
	switch kind {
	case KindTyping:
		sessionS = d.genTyping(r, c)
	case KindPowerpoint:
		sessionS = d.genPowerpoint(r)
	case KindBrowse:
		sessionS = d.genBrowse(r, c)
	}
	d.genFaults(r, c, sessionS)
	return d
}

// genTyping sizes a typing workload and, usually, an explicit input
// timeline mixing human-paced prose with interarrival storms.
func (d *Doc) genTyping(r *rng.Source, c Constraints) float64 {
	chars := 30 + r.Intn(c.MaxChars-29)
	wpm := 40 + 80*r.Float64()
	d.Workload = Workload{Kind: KindTyping, Full: Params{
		Chars: chars, WPM: round2(wpm), TrailingS: 3,
	}}
	// Rough session span: typist pace plus pauses, ~1.3x the raw pace.
	sessionS := float64(chars) * (60 / (wpm * 5)) * 1.3
	if r.Float64() < 0.75 {
		sessionS = d.genStanzas(r, c, sessionS)
	}
	return sessionS + 3
}

// genStanzas lays an explicit timeline: a typist bed plus keydown
// storms (the interarrival-storm cliff family) and occasional clicks —
// mouse input is where Windows 95's busy-wait lives.
func (d *Doc) genStanzas(r *rng.Source, c Constraints, sessionS float64) float64 {
	n := 1 + r.Intn(c.MaxStanzas)
	end := 300.0
	for i := 0; i < n; i++ {
		switch r.Intn(3) {
		case 0:
			st := Stanza{Type: "typist", AtMs: round2(end),
				Chars: 20 + r.Intn(60), WPM: round2(40 + 80*r.Float64())}
			d.Input = append(d.Input, st)
			end += float64(st.Chars) * (60000 / (st.WPM * 5)) * 1.3
		case 1:
			st := Stanza{Type: "keydowns", AtMs: round2(end), VK: input.VKPageDown,
				Count: 10 + r.Intn(50), PerKeyMs: round2(1 + 29*r.Float64())}
			d.Input = append(d.Input, st)
			end += float64(st.Count) * st.PerKeyMs
		default:
			st := Stanza{Type: "click", AtMs: round2(end),
				HoldMs: round2(30 + 400*r.Float64())}
			d.Input = append(d.Input, st)
			end += st.HoldMs
		}
		end += 200 + 1500*r.Float64()
	}
	return end / 1000
}

// genPowerpoint sizes a small completion-paced PowerPoint task.
func (d *Doc) genPowerpoint(r *rng.Source) float64 {
	edits := 1 + r.Intn(2)
	downs := make([]int, edits)
	for i := range downs {
		downs[i] = 1 + r.Intn(3)
	}
	objects := make([]int, edits)
	for i := range objects {
		objects[i] = 2 + 3*i + r.Intn(2)
	}
	d.Workload = Workload{Kind: KindPowerpoint, Full: Params{
		Slides: 10 + r.Intn(5), ObjectSlides: objects, PageDowns: downs,
		DeadlineS: 380,
	}}
	// Launch/open dominate; each edit adds a few seconds.
	return 20 + 8*float64(edits)
}

// genBrowse sizes a two-pass browsing session.
func (d *Doc) genBrowse(r *rng.Source, c Constraints) float64 {
	views := 4 + r.Intn(c.MaxViews-3)
	d.Workload = Workload{Kind: KindBrowse, Full: Params{Views: views, DeadlineS: 110}}
	return float64(2*views) * 0.8
}

// genFaults schedules the fault plan: sometimes none (a clean cliff is
// interesting too), sometimes derived kinds over the session, and
// sometimes explicit windows pinned over the middle of the session —
// the phase-alignment family.
func (d *Doc) genFaults(r *rng.Source, c Constraints, sessionS float64) {
	names := faults.KindNames()
	n := r.Intn(c.MaxFaults + 1)
	if n == 0 {
		return
	}
	picked := make([]string, 0, n)
	for _, i := range r.Perm(len(names))[:n] {
		picked = append(picked, names[i])
	}
	if r.Float64() < 0.5 {
		d.Faults = &FaultSpec{Kinds: picked, SpanS: round2(sessionS)}
		return
	}
	spec := &FaultSpec{}
	for _, name := range picked {
		start := sessionS * 1000 * (0.1 + 0.5*r.Float64())
		dur := sessionS * 1000 * (0.1 + 0.4*r.Float64())
		spec.Windows = append(spec.Windows, Window{
			Kind: name, StartMs: round2(start), DurationMs: round2(dur),
			Magnitude: round2(windowMagnitude(name, r)),
		})
	}
	d.Faults = spec
}

// windowMagnitude draws a kind-appropriate severity, mirroring the
// ranges faults.Generate uses for derived plans.
func windowMagnitude(kind string, r *rng.Source) float64 {
	switch kind {
	case "disk-degrade":
		return 3 + 5*r.Float64()
	case "disk-media-errors":
		return 0.5 + 0.4*r.Float64()
	case "irq-storm":
		return 2000 + 3000*r.Float64()
	case "timer-jitter":
		return 2 + 6*r.Float64()
	case "cache-pressure":
		return float64(64 + r.Intn(192))
	default:
		return 0
	}
}

// round2 keeps generated values to two decimals so documents stay
// readable and JSON round-trips exactly.
func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}
