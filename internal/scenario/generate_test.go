package scenario

import (
	"reflect"
	"testing"
)

// TestGenerateDeterministic locks the fuzzer's contract: the same
// (seed, constraints) always yields the same document, and the
// document pins its own seed.
func TestGenerateDeterministic(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		a := Generate(seed, Constraints{})
		b := Generate(seed, Constraints{})
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: Generate is not deterministic", seed)
		}
		if a.Seed != seed {
			t.Fatalf("seed %d: document pins seed %d", seed, a.Seed)
		}
	}
	if reflect.DeepEqual(Generate(1, Constraints{}), Generate(2, Constraints{})) {
		t.Fatal("distinct seeds should yield distinct documents")
	}
}

// TestGenerateAlwaysValidates runs the generator across a wide seed
// range: every output must pass the same Validate gate hand-written
// documents do.
func TestGenerateAlwaysValidates(t *testing.T) {
	for seed := uint64(1); seed <= 500; seed++ {
		d := Generate(seed, Constraints{})
		if err := d.Validate(); err != nil {
			t.Fatalf("seed %d: generated document is invalid: %v\n%+v", seed, err, d)
		}
	}
}

// TestGenerateHonoursConstraints pins the search-space bounds.
func TestGenerateHonoursConstraints(t *testing.T) {
	c := Constraints{
		Kinds:    []string{KindTyping},
		Personas: []string{"w95"},
		Machines: []string{"p200"},
		MaxChars: 50, MaxFaults: 1, MaxStanzas: 2,
	}
	for seed := uint64(1); seed <= 100; seed++ {
		d := Generate(seed, c)
		if d.Workload.Kind != KindTyping {
			t.Fatalf("seed %d: kind %q escaped constraint", seed, d.Workload.Kind)
		}
		if d.Persona != "w95" || d.Machine != "p200" {
			t.Fatalf("seed %d: persona/machine %q/%q escaped constraint", seed, d.Persona, d.Machine)
		}
		if d.Workload.Full.Chars > 50 {
			t.Fatalf("seed %d: chars %d > 50", seed, d.Workload.Full.Chars)
		}
		if len(d.Input) > 2 {
			t.Fatalf("seed %d: %d stanzas > 2", seed, len(d.Input))
		}
		if f := d.Faults; f != nil && len(f.Kinds)+len(f.Windows) > 1 {
			t.Fatalf("seed %d: fault count escaped MaxFaults", seed)
		}
	}
}

// TestGenerateCoversSpace checks the generator actually explores:
// across a modest seed range every workload kind appears, and both
// derived and explicit fault plans occur.
func TestGenerateCoversSpace(t *testing.T) {
	kinds := map[string]bool{}
	derived, explicit, clean := false, false, false
	for seed := uint64(1); seed <= 200; seed++ {
		d := Generate(seed, Constraints{})
		kinds[d.Workload.Kind] = true
		switch {
		case d.Faults == nil:
			clean = true
		case len(d.Faults.Kinds) > 0:
			derived = true
		default:
			explicit = true
		}
	}
	for _, k := range WorkloadKinds() {
		if !kinds[k] {
			t.Errorf("workload kind %q never generated", k)
		}
	}
	if !derived || !explicit || !clean {
		t.Errorf("fault-plan coverage: derived=%v explicit=%v clean=%v", derived, explicit, clean)
	}
}
