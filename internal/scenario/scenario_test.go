package scenario

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// validDoc is a minimal document that passes Validate; tests mutate
// copies of it to probe one rule at a time.
func validDoc() Doc {
	return Doc{
		Schema:  SchemaVersion,
		ID:      "test-doc",
		Title:   "a test document",
		Persona: "nt40",
		Workload: Workload{
			Kind: KindTyping,
			Full: Params{Chars: 40},
		},
	}
}

func TestValidateAcceptsMinimalDoc(t *testing.T) {
	if err := validDoc().Validate(); err != nil {
		t.Fatalf("minimal doc should validate: %v", err)
	}
}

// TestValidateRejections drives each grammar rule to its error and
// checks the message carries enough to fix the document.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*Doc)
		wantSub string
	}{
		{"schema", func(d *Doc) { d.Schema = 2 }, "schema 2 not supported"},
		{"id-shape", func(d *Doc) { d.ID = "Bad_ID" }, "not a slug"},
		{"no-title", func(d *Doc) { d.Title = "" }, "missing title"},
		{"persona", func(d *Doc) { d.Persona = "os2" }, `unknown persona "os2"`},
		{"machine", func(d *Doc) { d.Machine = "p999" }, `unknown machine "p999"`},
		{"workload-kind", func(d *Doc) { d.Workload.Kind = "spreadsheet" }, "unknown workload kind"},
		{"typing-chars", func(d *Doc) { d.Workload.Full.Chars = 0 }, "chars must be positive"},
		{"quick-validated", func(d *Doc) { d.Workload.Quick = &Params{} }, "chars must be positive"},
		{"negative-param", func(d *Doc) { d.Workload.Full.WPM = -1 }, "negative wpm"},
		{"browse-views", func(d *Doc) {
			d.Workload = Workload{Kind: KindBrowse, Full: Params{}}
		}, "views must be positive"},
		{"input-kind", func(d *Doc) {
			d.Workload = Workload{Kind: KindBrowse, Full: Params{Views: 4}}
			d.Input = []Stanza{{Type: "click", AtMs: 100}}
		}, "require the typing workload"},
		{"stanza-type", func(d *Doc) {
			d.Input = []Stanza{{Type: "drag", AtMs: 100}}
		}, `unknown stanza type "drag"`},
		{"stanza-typist", func(d *Doc) {
			d.Input = []Stanza{{Type: "typist", AtMs: 100}}
		}, "positive chars and wpm"},
		{"stanza-keydowns", func(d *Doc) {
			d.Input = []Stanza{{Type: "keydowns", AtMs: 100}}
		}, "positive count"},
		{"stanza-negative-time", func(d *Doc) {
			d.Input = []Stanza{{Type: "click", AtMs: -1}}
		}, "negative time"},
		{"faults-both", func(d *Doc) {
			d.Faults = &FaultSpec{Kinds: []string{"irq-storm"}, SpanS: 10,
				Windows: []Window{{Kind: "irq-storm", StartMs: 0, DurationMs: 1}}}
		}, "mutually exclusive"},
		{"faults-empty", func(d *Doc) { d.Faults = &FaultSpec{} }, "schedules nothing"},
		{"faults-span", func(d *Doc) {
			d.Faults = &FaultSpec{Kinds: []string{"irq-storm"}}
		}, "positive span_s"},
		{"faults-kind", func(d *Doc) {
			d.Faults = &FaultSpec{Kinds: []string{"gamma-rays"}, SpanS: 10}
		}, `unknown fault kind "gamma-rays"`},
		{"window-kind", func(d *Doc) {
			d.Faults = &FaultSpec{Windows: []Window{{Kind: "gamma-rays", DurationMs: 1}}}
		}, `unknown fault kind "gamma-rays"`},
		{"window-shape", func(d *Doc) {
			d.Faults = &FaultSpec{Windows: []Window{{Kind: "irq-storm", DurationMs: 0}}}
		}, "malformed window"},
		{"compare-label", func(d *Doc) { d.Compare = []Row{{}} }, "no label"},
		{"compare-dup", func(d *Doc) {
			d.Compare = []Row{{Label: "a"}, {Label: "a"}}
		}, "duplicate compare label"},
		{"compare-unfaultable", func(d *Doc) {
			d.Compare = []Row{{Label: "clean"}, {Label: "hurt", Faulted: true}}
		}, "no faults are declared"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := validDoc()
			tc.mutate(&d)
			err := d.Validate()
			if err == nil {
				t.Fatalf("expected a validation error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not contain %q", err, tc.wantSub)
			}
		})
	}
}

func TestParseStrict(t *testing.T) {
	good, err := Marshal(validDoc())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(good); err != nil {
		t.Fatalf("valid document should parse: %v", err)
	}

	typo := bytes.Replace(good, []byte(`"persona"`), []byte(`"maschine"`), 1)
	if _, err := Parse(typo); err == nil || !strings.Contains(err.Error(), "maschine") {
		t.Fatalf("unknown field should fail loudly, got %v", err)
	}

	trailing := append(append([]byte{}, good...), []byte("{}")...)
	if _, err := Parse(trailing); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Fatalf("trailing data should be rejected, got %v", err)
	}

	if _, err := Parse([]byte("{")); err == nil {
		t.Fatal("truncated JSON should be rejected")
	}

	if _, err := Parse([]byte("{}")); err == nil {
		t.Fatal("empty document should fail validation")
	}
}

// TestMarshalRoundTrip locks the corpus-file contract: Marshal → Parse
// → Marshal is byte-identical, so -update regeneration stays
// diff-clean.
func TestMarshalRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		d := Generate(seed, Constraints{})
		data, err := Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		parsed, err := Parse(data)
		if err != nil {
			t.Fatalf("seed %d: generated document does not re-parse: %v\n%s", seed, err, data)
		}
		if !reflect.DeepEqual(parsed, d) {
			t.Fatalf("seed %d: parse(marshal(d)) != d:\nin:  %+v\nout: %+v", seed, d, parsed)
		}
		again, err := Marshal(parsed)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("seed %d: marshal is not stable under round-trip", seed)
		}
	}
}
