package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Parse decodes and validates one scenario document. Decoding is
// strict: unknown fields are an error, so a typo in a hand-written
// document ("maschine") fails loudly instead of being silently
// ignored, and trailing garbage after the document is rejected.
func Parse(data []byte) (Doc, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var d Doc
	if err := dec.Decode(&d); err != nil {
		return Doc{}, fmt.Errorf("scenario: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return Doc{}, fmt.Errorf("scenario: trailing data after document")
	}
	if err := d.Validate(); err != nil {
		return Doc{}, err
	}
	return d, nil
}

// ParseFile reads and parses the scenario document at path.
func ParseFile(path string) (Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Doc{}, fmt.Errorf("scenario: %w", err)
	}
	d, err := Parse(data)
	if err != nil {
		return Doc{}, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// Marshal renders the document as committed-corpus JSON: two-space
// indented, trailing newline, key order fixed by the struct. Marshal
// of a Parse result round-trips byte-identically, which is what keeps
// `-update`-regenerated corpus files diff-clean.
func Marshal(d Doc) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(d); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return buf.Bytes(), nil
}
