package scenario

import (
	"testing"
)

// FuzzScenarioParse throws arbitrary bytes at the strict parser: it
// must never panic, and any document it accepts must satisfy the same
// Validate gate and survive a byte-stable Marshal/Parse round-trip.
// The seed corpus covers the grammar via the generator plus the
// classic JSON edge cases.
func FuzzScenarioParse(f *testing.F) {
	for seed := uint64(1); seed <= 20; seed++ {
		data, err := Marshal(Generate(seed, Constraints{}))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte("{}"))
	f.Add([]byte("{"))
	f.Add([]byte(`{"schema":1,"id":"x","title":"t","persona":"nt40","workload":{"kind":"typing","full":{"chars":1}}}`))
	f.Add([]byte(`{"schema":1e9}`))
	f.Add([]byte("null"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Parse(data)
		if err != nil {
			return
		}
		if verr := d.Validate(); verr != nil {
			t.Fatalf("Parse accepted a document Validate rejects: %v", verr)
		}
		out, err := Marshal(d)
		if err != nil {
			t.Fatalf("accepted document does not marshal: %v", err)
		}
		if _, err := Parse(out); err != nil {
			t.Fatalf("marshalled form of an accepted document does not re-parse: %v\n%s", err, out)
		}
	})
}
