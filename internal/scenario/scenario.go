// Package scenario defines the declarative scenario DSL: a
// schema-versioned JSON document describing one complete latency
// experiment — persona, machine profile, fault plan, input timeline,
// workload, and measurement windows — plus a validating parser and a
// seeded generative fuzzer.
//
// A scenario is pure data. The compiler that lowers a Doc onto the
// simulator (system.New + input.Script + faults + machine.Profile)
// lives in internal/experiments (FromScenario), so this package stays
// import-light and the document format can be parsed, generated, and
// round-tripped without booting anything. A new workload is a data
// file, not a code change: drop a document in testdata/scenarios/ and
// run it with `latbench -scenario file.json` (or the whole corpus with
// `latbench -run corpus`).
//
// The grammar is documented in DESIGN.md ("The scenario DSL"); the
// fuzz-found regression corpus is described in EXPERIMENTS.md.
package scenario

import (
	"fmt"
	"regexp"
	"strings"

	"latlab/internal/faults"
	"latlab/internal/machine"
	"latlab/internal/persona"
)

// SchemaVersion is the document schema this package parses. Documents
// must declare it explicitly so a future incompatible grammar can be
// detected instead of misread.
const SchemaVersion = 1

// Workload kinds understood by the compiler.
const (
	// KindTyping is a Notepad typing session: input comes from the
	// seeded typist model or from the document's explicit input
	// timeline; the session runs until the script drains plus a
	// trailing quiescence window.
	KindTyping = "typing"
	// KindPowerpoint is the paper's §5.2 PowerPoint task: launch, open,
	// page through, OLE-edit objects, save — completion-paced, like
	// Microsoft Test's wait-for-idle driver.
	KindPowerpoint = "powerpoint"
	// KindBrowse is the cache-warmth document browser: each page-down
	// reads the next window of a large file, cycling twice so the
	// second pass is cache-warm unless something evicts it.
	KindBrowse = "browse"
)

// WorkloadKinds lists every workload kind, in documentation order.
func WorkloadKinds() []string { return []string{KindTyping, KindPowerpoint, KindBrowse} }

// Doc is one parsed scenario document. The zero value is not a valid
// scenario; build documents with Parse (strict JSON) or Generate and
// check them with Validate.
type Doc struct {
	// Schema is the document schema version; must be SchemaVersion.
	Schema int `json:"schema"`
	// ID is the scenario's experiment id (slug: letters, digits, '-').
	ID string `json:"id"`
	// Title is the one-line spec title shown in listings.
	Title string `json:"title"`
	// Banner, when set, overrides Title as the rendered headline of the
	// result (the ext-faults twins use it to keep their exact wording).
	Banner string `json:"banner,omitempty"`
	// Paper cites what the scenario reproduces or extends.
	Paper string `json:"paper,omitempty"`
	// Persona is the OS personality short name ("nt351", "nt40", "w95").
	Persona string `json:"persona"`
	// Machine pins a hardware profile short name; empty inherits the
	// run's -machine configuration (default p100).
	Machine string `json:"machine,omitempty"`
	// Seed pins the stochastic seed; 0 inherits the run's -seed. The
	// fuzzer always pins, so a corpus scenario reproduces its cliff
	// numbers whatever seed the replaying suite runs with.
	Seed uint64 `json:"seed,omitempty"`
	// Workload selects and sizes the driven application.
	Workload Workload `json:"workload"`
	// Input is an explicit input timeline (typing workloads only);
	// empty means the workload's default input model.
	Input []Stanza `json:"input,omitempty"`
	// Faults schedules degradation windows; nil means a clean machine.
	Faults *FaultSpec `json:"faults,omitempty"`
	// Compare, when non-empty, runs the workload once per row (sharing
	// everything but the fault plan) and renders a clean-vs-degraded
	// comparison. Empty means a single measured run.
	Compare []Row `json:"compare,omitempty"`
	// Notes is free-form provenance — the fuzzer records the cliff
	// metrics and generation constraints that filed the scenario.
	Notes string `json:"notes,omitempty"`
}

// BannerOrTitle returns the rendered headline.
func (d Doc) BannerOrTitle() string {
	if d.Banner != "" {
		return d.Banner
	}
	return d.Title
}

// Workload selects the application model and its sizing. Full sizes
// the paper-scale run; Quick (nil = same as Full) the -quick run.
type Workload struct {
	// Kind is one of WorkloadKinds.
	Kind string `json:"kind"`
	// Full is the paper-sized parameter set.
	Full Params `json:"full"`
	// Quick, when non-nil, is the -quick parameter set.
	Quick *Params `json:"quick,omitempty"`
}

// Resolve returns the parameter set for the given mode.
func (w Workload) Resolve(quick bool) Params {
	if quick && w.Quick != nil {
		return *w.Quick
	}
	return w.Full
}

// Params sizes one workload run. Only the fields of the selected kind
// are consulted; zero values take kind-specific defaults chosen to
// match the pre-DSL hand-written experiments (see DESIGN.md).
type Params struct {
	// Chars is the typed character count (typing).
	Chars int `json:"chars,omitempty"`
	// WPM is the typist's words-per-minute pace (typing; default 70).
	WPM float64 `json:"wpm,omitempty"`
	// StartMs delays the first input (typing; default 300).
	StartMs float64 `json:"start_ms,omitempty"`
	// TrailingS runs the machine on after the last input so trailing
	// quiescence is recorded (typing; default 3).
	TrailingS float64 `json:"trailing_s,omitempty"`

	// Slides and ObjectSlides size the PowerPoint deck (powerpoint;
	// defaults: the paper's deck from apps.DefaultPowerpointParams).
	Slides       int   `json:"slides,omitempty"`
	ObjectSlides []int `json:"object_slides,omitempty"`
	// PageDowns[i] pages forward before OLE-editing object i; its
	// length is the edit count (powerpoint; default [9,10,10]).
	PageDowns []int `json:"page_downs,omitempty"`
	// ThinkMs is the completion-paced think time between chain steps
	// (powerpoint, browse; default 300).
	ThinkMs float64 `json:"think_ms,omitempty"`
	// DeadlineS bounds the completion-paced chain (powerpoint default
	// 380, browse default 110).
	DeadlineS float64 `json:"deadline_s,omitempty"`

	// Views is the number of 64-page windows browsed per pass (browse).
	Views int `json:"views,omitempty"`
}

// Stanza is one element of an explicit input timeline. Type selects
// which fields apply; times are absolute simulated milliseconds.
type Stanza struct {
	// Type is one of "typist", "text", "keydowns", "click", "command".
	Type string `json:"type"`
	// AtMs is the stanza's start time.
	AtMs float64 `json:"at_ms"`
	// Chars sizes the deterministic filler prose typed by "typist" and
	// "text" stanzas.
	Chars int `json:"chars,omitempty"`
	// WPM paces a "typist" stanza (seeded human model).
	WPM float64 `json:"wpm,omitempty"`
	// PerKeyMs paces "text" and "keydowns" stanzas (fixed interval; 0
	// means back-to-back — the §1.1 infinitely fast user).
	PerKeyMs float64 `json:"per_key_ms,omitempty"`
	// VK and Count describe a "keydowns" burst (default VK: page-down).
	VK    int64 `json:"vk,omitempty"`
	Count int   `json:"count,omitempty"`
	// HoldMs is a "click" stanza's press duration.
	HoldMs float64 `json:"hold_ms,omitempty"`
	// Cmd is a "command" stanza's application command id.
	Cmd int64 `json:"cmd,omitempty"`
}

// StanzaTypes lists the valid Stanza.Type values.
func StanzaTypes() []string { return []string{"typist", "text", "keydowns", "click", "command"} }

// FaultSpec schedules the document's degradation windows: either
// seed-derived (Kinds over SpanS, via faults.Generate) or explicit
// Windows — not both.
type FaultSpec struct {
	// Kinds are fault kind names (faults.KindNames) to derive windows
	// for from the run seed.
	Kinds []string `json:"kinds,omitempty"`
	// SpanS is the session span the derived windows are placed in.
	SpanS float64 `json:"span_s,omitempty"`
	// QuickSpanS overrides SpanS in -quick mode (0 = same).
	QuickSpanS float64 `json:"quick_span_s,omitempty"`
	// Windows lists explicit fault windows (the fuzzer uses these to
	// pin phase alignments it found).
	Windows []Window `json:"windows,omitempty"`
}

// Window is one explicit fault window.
type Window struct {
	// Kind is the fault kind name.
	Kind string `json:"kind"`
	// StartMs and DurationMs place the window in simulated time.
	StartMs    float64 `json:"start_ms"`
	DurationMs float64 `json:"duration_ms"`
	// Magnitude is the kind-specific severity (see faults.Kind).
	Magnitude float64 `json:"magnitude,omitempty"`
}

// Row is one run of a comparison scenario.
type Row struct {
	// Label tags the row in the rendering ("clean", "degraded").
	Label string `json:"label"`
	// Faulted arms the document's fault plan for this row.
	Faulted bool `json:"faulted"`
}

var idPattern = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Validate checks the document against the grammar: version, id shape,
// persona/machine/fault-kind names, workload sizing, stanza types, and
// comparison rows. It returns the first problem found, phrased with
// the valid alternatives so a hand-written document is fixable from
// the error alone.
func (d Doc) Validate() error {
	if d.Schema != SchemaVersion {
		return fmt.Errorf("scenario: schema %d not supported (want %d)", d.Schema, SchemaVersion)
	}
	if !idPattern.MatchString(d.ID) {
		return fmt.Errorf("scenario: id %q is not a slug (lowercase letters, digits, dashes)", d.ID)
	}
	if d.Title == "" {
		return fmt.Errorf("scenario %s: missing title", d.ID)
	}
	if _, ok := persona.ByShort(d.Persona); !ok {
		return fmt.Errorf("scenario %s: unknown persona %q (valid: %s)",
			d.ID, d.Persona, strings.Join(personaShorts(), ", "))
	}
	if d.Machine != "" {
		if _, ok := machine.ByShort(d.Machine); !ok {
			return fmt.Errorf("scenario %s: unknown machine %q (valid: %s)",
				d.ID, d.Machine, strings.Join(machine.Shorts(), ", "))
		}
	}
	if err := d.validateWorkload(); err != nil {
		return err
	}
	if err := d.validateInput(); err != nil {
		return err
	}
	if err := d.validateFaults(); err != nil {
		return err
	}
	return d.validateCompare()
}

func (d Doc) validateWorkload() error {
	switch d.Workload.Kind {
	case KindTyping, KindPowerpoint, KindBrowse:
	default:
		return fmt.Errorf("scenario %s: unknown workload kind %q (valid: %s)",
			d.ID, d.Workload.Kind, strings.Join(WorkloadKinds(), ", "))
	}
	for _, prm := range d.paramSets() {
		if err := prm.validate(d.Workload.Kind); err != nil {
			return fmt.Errorf("scenario %s: %w", d.ID, err)
		}
	}
	return nil
}

// paramSets returns the parameter sets to validate: Full, plus Quick
// when present.
func (d Doc) paramSets() []Params {
	sets := []Params{d.Workload.Full}
	if d.Workload.Quick != nil {
		sets = append(sets, *d.Workload.Quick)
	}
	return sets
}

func (p Params) validate(kind string) error {
	for name, v := range map[string]float64{
		"chars": float64(p.Chars), "wpm": p.WPM, "start_ms": p.StartMs,
		"trailing_s": p.TrailingS, "slides": float64(p.Slides),
		"think_ms": p.ThinkMs, "deadline_s": p.DeadlineS, "views": float64(p.Views),
	} {
		if v < 0 {
			return fmt.Errorf("workload %s: negative %s", kind, name)
		}
	}
	for _, n := range p.PageDowns {
		if n < 0 {
			return fmt.Errorf("workload %s: negative page_downs entry", kind)
		}
	}
	for _, s := range p.ObjectSlides {
		if s < 0 {
			return fmt.Errorf("workload %s: negative object_slides entry", kind)
		}
	}
	switch kind {
	case KindTyping:
		if p.Chars == 0 {
			return fmt.Errorf("workload typing: chars must be positive")
		}
	case KindBrowse:
		if p.Views == 0 {
			return fmt.Errorf("workload browse: views must be positive")
		}
	}
	return nil
}

func (d Doc) validateInput() error {
	if len(d.Input) == 0 {
		return nil
	}
	if d.Workload.Kind != KindTyping {
		return fmt.Errorf("scenario %s: explicit input timelines require the typing workload", d.ID)
	}
	for i, st := range d.Input {
		if err := st.validate(); err != nil {
			return fmt.Errorf("scenario %s: input[%d]: %w", d.ID, i, err)
		}
	}
	return nil
}

func (s Stanza) validate() error {
	switch s.Type {
	case "typist":
		if s.Chars <= 0 || s.WPM <= 0 {
			return fmt.Errorf("typist stanza needs positive chars and wpm")
		}
	case "text":
		if s.Chars <= 0 {
			return fmt.Errorf("text stanza needs positive chars")
		}
	case "keydowns":
		if s.Count <= 0 {
			return fmt.Errorf("keydowns stanza needs positive count")
		}
	case "click", "command":
	default:
		return fmt.Errorf("unknown stanza type %q (valid: %s)",
			s.Type, strings.Join(StanzaTypes(), ", "))
	}
	if s.AtMs < 0 || s.PerKeyMs < 0 || s.HoldMs < 0 {
		return fmt.Errorf("%s stanza has a negative time", s.Type)
	}
	return nil
}

func (d Doc) validateFaults() error {
	f := d.Faults
	if f == nil {
		return nil
	}
	if len(f.Kinds) > 0 && len(f.Windows) > 0 {
		return fmt.Errorf("scenario %s: faults.kinds and faults.windows are mutually exclusive", d.ID)
	}
	if len(f.Kinds) == 0 && len(f.Windows) == 0 {
		return fmt.Errorf("scenario %s: faults block schedules nothing (set kinds or windows)", d.ID)
	}
	if len(f.Kinds) > 0 && f.SpanS <= 0 {
		return fmt.Errorf("scenario %s: derived faults need a positive span_s", d.ID)
	}
	if f.SpanS < 0 || f.QuickSpanS < 0 {
		return fmt.Errorf("scenario %s: negative fault span", d.ID)
	}
	for _, name := range f.Kinds {
		if _, ok := faults.KindByName(name); !ok {
			return fmt.Errorf("scenario %s: unknown fault kind %q (valid: %s)",
				d.ID, name, strings.Join(faults.KindNames(), ", "))
		}
	}
	for i, w := range f.Windows {
		if _, ok := faults.KindByName(w.Kind); !ok {
			return fmt.Errorf("scenario %s: faults.windows[%d]: unknown fault kind %q (valid: %s)",
				d.ID, i, w.Kind, strings.Join(faults.KindNames(), ", "))
		}
		if w.StartMs < 0 || w.DurationMs <= 0 || w.Magnitude < 0 {
			return fmt.Errorf("scenario %s: faults.windows[%d]: malformed window", d.ID, i)
		}
	}
	return nil
}

func (d Doc) validateCompare() error {
	seen := map[string]bool{}
	faulted := false
	for i, r := range d.Compare {
		if r.Label == "" {
			return fmt.Errorf("scenario %s: compare[%d] has no label", d.ID, i)
		}
		if seen[r.Label] {
			return fmt.Errorf("scenario %s: duplicate compare label %q", d.ID, r.Label)
		}
		seen[r.Label] = true
		faulted = faulted || r.Faulted
	}
	if faulted && d.Faults == nil {
		return fmt.Errorf("scenario %s: a compare row is faulted but no faults are declared", d.ID)
	}
	return nil
}

// personaShorts lists the valid persona short names.
func personaShorts() []string {
	var out []string
	for _, p := range persona.All() {
		out = append(out, p.Short)
	}
	return out
}
