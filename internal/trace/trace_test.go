package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"latlab/internal/simtime"
)

func TestIdleSampleStolen(t *testing.T) {
	loop := simtime.Millisecond
	s := IdleSample{Done: 0, Elapsed: simtime.FromMillis(10.76)}
	if got := s.Stolen(loop); got != simtime.FromMillis(9.76) {
		t.Fatalf("Stolen = %v, want 9.76ms (paper Fig. 1)", got)
	}
	idle := IdleSample{Elapsed: simtime.Millisecond}
	if idle.Stolen(loop) != 0 {
		t.Fatalf("idle sample should have zero stolen time")
	}
	// Calibration jitter must not produce negative stolen time.
	short := IdleSample{Elapsed: simtime.FromMillis(0.99)}
	if short.Stolen(loop) != 0 {
		t.Fatalf("stolen time clamped at 0")
	}
}

func TestIdleSampleUtilization(t *testing.T) {
	loop := simtime.Millisecond
	// Paper §2.5: 10 ms sample containing 1 ms idle → 90% utilization.
	s := IdleSample{Elapsed: 10 * simtime.Millisecond}
	if got := s.Utilization(loop); got != 0.9 {
		t.Fatalf("Utilization = %v, want 0.9", got)
	}
	idle := IdleSample{Elapsed: simtime.Millisecond}
	if idle.Utilization(loop) != 0 {
		t.Fatalf("idle utilization should be 0")
	}
	if (IdleSample{}).Utilization(loop) != 0 {
		t.Fatalf("zero sample utilization should be 0")
	}
}

func TestMsgAPIString(t *testing.T) {
	if GetMessage.String() != "GetMessage" || PeekMessage.String() != "PeekMessage" {
		t.Fatalf("API names wrong")
	}
	if !strings.Contains(MsgAPI(9).String(), "9") {
		t.Fatalf("unknown API should show its value")
	}
}

func TestBuffer(t *testing.T) {
	b := NewBuffer(2)
	if b.Full() || b.Len() != 0 {
		t.Fatalf("new buffer should be empty")
	}
	if !b.Append(IdleSample{Done: 1}) || !b.Append(IdleSample{Done: 2}) {
		t.Fatalf("appends within capacity should succeed")
	}
	if b.Append(IdleSample{Done: 3}) {
		t.Fatalf("append past capacity should fail")
	}
	if !b.Full() || b.Dropped() != 1 || b.Len() != 2 {
		t.Fatalf("full/dropped/len = %v/%d/%d", b.Full(), b.Dropped(), b.Len())
	}
	if b.Samples()[1].Done != 2 {
		t.Fatalf("samples content wrong")
	}
	b.Reset()
	if b.Len() != 0 || b.Dropped() != 0 || b.Full() {
		t.Fatalf("reset did not clear buffer")
	}
}

func TestBufferBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewBuffer(0)
}

func TestIdleCSVRoundTrip(t *testing.T) {
	in := []IdleSample{
		{Done: simtime.Time(simtime.Millisecond), Elapsed: simtime.Millisecond},
		{Done: simtime.Time(simtime.FromMillis(11.76)), Elapsed: simtime.FromMillis(10.76)},
	}
	var sb strings.Builder
	if err := WriteIdleCSV(&sb, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseIdleCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Done != in[i].Done || out[i].Elapsed != in[i].Elapsed {
			t.Fatalf("sample %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestIdleCSVRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		in := make([]IdleSample, len(raw))
		for i, r := range raw {
			// Quantize to µs so the %.6f ms format is lossless.
			in[i] = IdleSample{
				Done:    simtime.Time(int64(r) * int64(simtime.Microsecond)),
				Elapsed: simtime.Duration(int64(r%100000)) * simtime.Microsecond,
			}
		}
		var sb strings.Builder
		if err := WriteIdleCSV(&sb, in); err != nil {
			return false
		}
		out, err := ParseIdleCSV(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParseIdleCSVErrors(t *testing.T) {
	if _, err := ParseIdleCSV(strings.NewReader("bogus\n1,2\n")); err == nil {
		t.Fatalf("missing header should error")
	}
	if _, err := ParseIdleCSV(strings.NewReader("done_ms,elapsed_ms\nnot,numbers\n")); err == nil {
		t.Fatalf("bad row should error")
	}
}

func TestWriteMsgCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteMsgCSV(&sb, []MsgRecord{{
		API: GetMessage, Call: 0, Return: simtime.Time(simtime.Millisecond),
		Received: true, Kind: 7, Enqueued: 0, QueueLen: 1, Thread: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "api,call_ms") {
		t.Fatalf("missing header: %q", got)
	}
	if !strings.Contains(got, "GetMessage,0.000000,1.000000,true,7,0.000000,1,3") {
		t.Fatalf("row wrong: %q", got)
	}
}

func TestMsgCSVRoundTrip(t *testing.T) {
	in := []MsgRecord{
		{API: GetMessage, Call: simtime.Time(simtime.Millisecond), Return: simtime.Time(3 * simtime.Millisecond),
			Received: true, Kind: 7, Enqueued: simtime.Time(simtime.FromMillis(0.25)), QueueLen: 2, Thread: 1},
		{API: PeekMessage, Call: simtime.Time(simtime.FromMillis(11.76)), Return: simtime.Time(simtime.FromMillis(11.76)),
			Received: false, Kind: 0, Enqueued: 0, QueueLen: 0, Thread: 4},
		{API: MsgAPI(9), Call: 0, Return: 0, Received: true, Kind: -3, Enqueued: 0, QueueLen: 0, Thread: 0},
	}
	var sb strings.Builder
	if err := WriteMsgCSV(&sb, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseMsgCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestCounterCSVRoundTrip(t *testing.T) {
	in := []CounterSnapshot{
		{Label: "getmsg-warm", Cycles: 4320, Events: map[string]int64{
			"itlb_miss": 3, "dtlb_miss": 7, "l2_miss": 12,
		}},
		{Label: "getmsg-cold", Cycles: 58000, Events: map[string]int64{
			"itlb_miss": 31, "dtlb_miss": 64, "l2_miss": 410,
		}},
		{Label: "empty-events", Cycles: -1},
	}
	var sb strings.Builder
	if err := WriteCounterCSV(&sb, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseCounterCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Label != in[i].Label || out[i].Cycles != in[i].Cycles {
			t.Fatalf("snapshot %d: got %+v, want %+v", i, out[i], in[i])
		}
		if len(out[i].Events) != len(in[i].Events) {
			t.Fatalf("snapshot %d events: got %v, want %v", i, out[i].Events, in[i].Events)
		}
		for k, v := range in[i].Events {
			if out[i].Events[k] != v {
				t.Fatalf("snapshot %d event %q: got %d, want %d", i, k, out[i].Events[k], v)
			}
		}
	}
}

func TestWriteCounterCSVDeterministic(t *testing.T) {
	// Map iteration order varies run to run; the writer must not.
	snap := []CounterSnapshot{{Label: "x", Cycles: 1, Events: map[string]int64{
		"c": 3, "a": 1, "b": 2,
	}}}
	var first string
	for i := 0; i < 10; i++ {
		var sb strings.Builder
		if err := WriteCounterCSV(&sb, snap); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = sb.String()
			if !strings.Contains(first, "x,1,a=1;b=2;c=3") {
				t.Fatalf("events not sorted by name: %q", first)
			}
		} else if sb.String() != first {
			t.Fatalf("write %d differs from first:\n%q\n%q", i, sb.String(), first)
		}
	}
}

func TestWriteCounterCSVReservedChars(t *testing.T) {
	var sb strings.Builder
	if err := WriteCounterCSV(&sb, []CounterSnapshot{{Label: "a,b"}}); err == nil {
		t.Fatalf("comma in label should error")
	}
	if err := WriteCounterCSV(&sb, []CounterSnapshot{{
		Label: "ok", Events: map[string]int64{"a=b": 1},
	}}); err == nil {
		t.Fatalf("'=' in event name should error")
	}
}

func TestParseCounterCSVErrors(t *testing.T) {
	cases := []string{
		"bogus\nx,1,\n",
		"label,cycles,events\nx,notanumber,\n",
		"label,cycles,events\nx,1\n",
		"label,cycles,events\nx,1,a=1;a=2\n",
		"label,cycles,events\nx,1,=5\n",
		"label,cycles,events\nx,1,a\n",
		"label,cycles,events\nx,1,a=nope\n",
	}
	for i, c := range cases {
		if _, err := ParseCounterCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d should error:\n%s", i, c)
		}
	}
}

// discard is a Writer that counts nothing and allocates nothing, so the
// CSV-writer allocation budgets measure the encoder alone.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

func TestBufferAppendAllocFree(t *testing.T) {
	b := NewBuffer(bufferPreSize) // fully pre-sized: appends must not grow
	s := IdleSample{Done: 1, Elapsed: simtime.Millisecond}
	if avg := testing.AllocsPerRun(1000, func() {
		if b.Full() {
			b.Reset()
		}
		b.Append(s)
	}); avg != 0 {
		t.Fatalf("Buffer.Append allocates %.1f/op, want 0", avg)
	}
}

func TestWriteIdleCSVRowAllocFree(t *testing.T) {
	samples := make([]IdleSample, 1000)
	for i := range samples {
		samples[i] = IdleSample{Done: simtime.Time(i) * 1000, Elapsed: simtime.Millisecond}
	}
	// One run writes 1000 rows; a budget of 2 allocations per run (the
	// row buffer, plus slack for the io.WriteString header path) means
	// the per-row cost is zero.
	if avg := testing.AllocsPerRun(10, func() {
		if err := WriteIdleCSV(discard{}, samples); err != nil {
			t.Fatal(err)
		}
	}); avg > 2 {
		t.Fatalf("WriteIdleCSV allocates %.1f per 1000 rows, want ≤2", avg)
	}
}

func TestWriteMsgCSVRowAllocFree(t *testing.T) {
	recs := make([]MsgRecord, 1000)
	for i := range recs {
		recs[i] = MsgRecord{API: GetMessage, Received: true, Kind: 3, QueueLen: 1, Thread: 2}
	}
	if avg := testing.AllocsPerRun(10, func() {
		if err := WriteMsgCSV(discard{}, recs); err != nil {
			t.Fatal(err)
		}
	}); avg > 2 {
		t.Fatalf("WriteMsgCSV allocates %.1f per 1000 rows, want ≤2", avg)
	}
}

func TestParseMsgCSVErrors(t *testing.T) {
	cases := []string{
		"bogus\nGetMessage,1,2,true,0,1,0,0\n",
		"api,call_ms,return_ms,received,kind,enqueued_ms,queue_len,thread\nGetMessage,1,2\n",
		"api,call_ms,return_ms,received,kind,enqueued_ms,queue_len,thread\nNoSuchAPI,1,2,true,0,1,0,0\n",
		"api,call_ms,return_ms,received,kind,enqueued_ms,queue_len,thread\nGetMessage,x,2,true,0,1,0,0\n",
		"api,call_ms,return_ms,received,kind,enqueued_ms,queue_len,thread\nGetMessage,1,2,maybe,0,1,0,0\n",
	}
	for i, c := range cases {
		if _, err := ParseMsgCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d should error:\n%s", i, c)
		}
	}
}

func BenchmarkWriteIdleCSV(b *testing.B) {
	samples := make([]IdleSample, 1000)
	for i := range samples {
		samples[i] = IdleSample{Done: simtime.Time(i) * 1000, Elapsed: simtime.Millisecond}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := WriteIdleCSV(discard{}, samples); err != nil {
			b.Fatal(err)
		}
	}
}
