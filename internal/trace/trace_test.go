package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"latlab/internal/simtime"
)

func TestIdleSampleStolen(t *testing.T) {
	loop := simtime.Millisecond
	s := IdleSample{Done: 0, Elapsed: simtime.FromMillis(10.76)}
	if got := s.Stolen(loop); got != simtime.FromMillis(9.76) {
		t.Fatalf("Stolen = %v, want 9.76ms (paper Fig. 1)", got)
	}
	idle := IdleSample{Elapsed: simtime.Millisecond}
	if idle.Stolen(loop) != 0 {
		t.Fatalf("idle sample should have zero stolen time")
	}
	// Calibration jitter must not produce negative stolen time.
	short := IdleSample{Elapsed: simtime.FromMillis(0.99)}
	if short.Stolen(loop) != 0 {
		t.Fatalf("stolen time clamped at 0")
	}
}

func TestIdleSampleUtilization(t *testing.T) {
	loop := simtime.Millisecond
	// Paper §2.5: 10 ms sample containing 1 ms idle → 90% utilization.
	s := IdleSample{Elapsed: 10 * simtime.Millisecond}
	if got := s.Utilization(loop); got != 0.9 {
		t.Fatalf("Utilization = %v, want 0.9", got)
	}
	idle := IdleSample{Elapsed: simtime.Millisecond}
	if idle.Utilization(loop) != 0 {
		t.Fatalf("idle utilization should be 0")
	}
	if (IdleSample{}).Utilization(loop) != 0 {
		t.Fatalf("zero sample utilization should be 0")
	}
}

func TestMsgAPIString(t *testing.T) {
	if GetMessage.String() != "GetMessage" || PeekMessage.String() != "PeekMessage" {
		t.Fatalf("API names wrong")
	}
	if !strings.Contains(MsgAPI(9).String(), "9") {
		t.Fatalf("unknown API should show its value")
	}
}

func TestBuffer(t *testing.T) {
	b := NewBuffer(2)
	if b.Full() || b.Len() != 0 {
		t.Fatalf("new buffer should be empty")
	}
	if !b.Append(IdleSample{Done: 1}) || !b.Append(IdleSample{Done: 2}) {
		t.Fatalf("appends within capacity should succeed")
	}
	if b.Append(IdleSample{Done: 3}) {
		t.Fatalf("append past capacity should fail")
	}
	if !b.Full() || b.Dropped() != 1 || b.Len() != 2 {
		t.Fatalf("full/dropped/len = %v/%d/%d", b.Full(), b.Dropped(), b.Len())
	}
	if b.Samples()[1].Done != 2 {
		t.Fatalf("samples content wrong")
	}
	b.Reset()
	if b.Len() != 0 || b.Dropped() != 0 || b.Full() {
		t.Fatalf("reset did not clear buffer")
	}
}

func TestBufferBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewBuffer(0)
}

func TestIdleCSVRoundTrip(t *testing.T) {
	in := []IdleSample{
		{Done: simtime.Time(simtime.Millisecond), Elapsed: simtime.Millisecond},
		{Done: simtime.Time(simtime.FromMillis(11.76)), Elapsed: simtime.FromMillis(10.76)},
	}
	var sb strings.Builder
	if err := WriteIdleCSV(&sb, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseIdleCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i].Done != in[i].Done || out[i].Elapsed != in[i].Elapsed {
			t.Fatalf("sample %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestIdleCSVRoundTripProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		in := make([]IdleSample, len(raw))
		for i, r := range raw {
			// Quantize to µs so the %.6f ms format is lossless.
			in[i] = IdleSample{
				Done:    simtime.Time(int64(r) * int64(simtime.Microsecond)),
				Elapsed: simtime.Duration(int64(r%100000)) * simtime.Microsecond,
			}
		}
		var sb strings.Builder
		if err := WriteIdleCSV(&sb, in); err != nil {
			return false
		}
		out, err := ParseIdleCSV(strings.NewReader(sb.String()))
		if err != nil {
			return false
		}
		if len(out) != len(in) {
			return false
		}
		for i := range in {
			if out[i] != in[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParseIdleCSVErrors(t *testing.T) {
	if _, err := ParseIdleCSV(strings.NewReader("bogus\n1,2\n")); err == nil {
		t.Fatalf("missing header should error")
	}
	if _, err := ParseIdleCSV(strings.NewReader("done_ms,elapsed_ms\nnot,numbers\n")); err == nil {
		t.Fatalf("bad row should error")
	}
}

func TestWriteMsgCSV(t *testing.T) {
	var sb strings.Builder
	err := WriteMsgCSV(&sb, []MsgRecord{{
		API: GetMessage, Call: 0, Return: simtime.Time(simtime.Millisecond),
		Received: true, Kind: 7, Enqueued: 0, QueueLen: 1, Thread: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.HasPrefix(got, "api,call_ms") {
		t.Fatalf("missing header: %q", got)
	}
	if !strings.Contains(got, "GetMessage,0.000000,1.000000,true,7,0.000000,1,3") {
		t.Fatalf("row wrong: %q", got)
	}
}

func TestMsgCSVRoundTrip(t *testing.T) {
	in := []MsgRecord{
		{API: GetMessage, Call: simtime.Time(simtime.Millisecond), Return: simtime.Time(3 * simtime.Millisecond),
			Received: true, Kind: 7, Enqueued: simtime.Time(simtime.FromMillis(0.25)), QueueLen: 2, Thread: 1},
		{API: PeekMessage, Call: simtime.Time(simtime.FromMillis(11.76)), Return: simtime.Time(simtime.FromMillis(11.76)),
			Received: false, Kind: 0, Enqueued: 0, QueueLen: 0, Thread: 4},
		{API: MsgAPI(9), Call: 0, Return: 0, Received: true, Kind: -3, Enqueued: 0, QueueLen: 0, Thread: 0},
	}
	var sb strings.Builder
	if err := WriteMsgCSV(&sb, in); err != nil {
		t.Fatal(err)
	}
	out, err := ParseMsgCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip length %d, want %d", len(out), len(in))
	}
	for i := range in {
		if out[i] != in[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, out[i], in[i])
		}
	}
}

func TestParseMsgCSVErrors(t *testing.T) {
	cases := []string{
		"bogus\nGetMessage,1,2,true,0,1,0,0\n",
		"api,call_ms,return_ms,received,kind,enqueued_ms,queue_len,thread\nGetMessage,1,2\n",
		"api,call_ms,return_ms,received,kind,enqueued_ms,queue_len,thread\nNoSuchAPI,1,2,true,0,1,0,0\n",
		"api,call_ms,return_ms,received,kind,enqueued_ms,queue_len,thread\nGetMessage,x,2,true,0,1,0,0\n",
		"api,call_ms,return_ms,received,kind,enqueued_ms,queue_len,thread\nGetMessage,1,2,maybe,0,1,0,0\n",
	}
	for i, c := range cases {
		if _, err := ParseMsgCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d should error:\n%s", i, c)
		}
	}
}
