package trace

import (
	"reflect"
	"strings"
	"testing"

	"latlab/internal/simtime"
)

func TestAttribCSVRoundTrip(t *testing.T) {
	recs := []AttribRecord{
		{
			Label: "WM_KEYDOWN",
			Start: simtime.Time(20 * simtime.Millisecond),
			End:   simtime.Time(25*simtime.Millisecond + 400*simtime.Microsecond),
			Causes: map[string]simtime.Duration{
				"base":       3 * simtime.Millisecond,
				"tlb-miss":   800 * simtime.Microsecond,
				"queue-wait": 1200 * simtime.Microsecond,
			},
		},
		{Label: "WM_CHAR", Start: 0, End: simtime.Time(simtime.Millisecond)},
	}
	var sb strings.Builder
	if err := WriteAttribCSV(&sb, recs); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "label,start_ms,end_ms,causes\n") {
		t.Fatalf("missing header:\n%s", out)
	}
	// Causes are sorted by name for deterministic output.
	if !strings.Contains(out, "base=3000000;queue-wait=1200000;tlb-miss=800000") {
		t.Fatalf("causes column not sorted name=ns:\n%s", out)
	}
	got, err := ParseAttribCSV(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs) {
		t.Fatalf("round trip changed data:\n%#v\n%#v", got, recs)
	}
	if got[0].Latency() != recs[0].End.Sub(recs[0].Start) {
		t.Fatalf("latency = %v", got[0].Latency())
	}
}

func TestAttribCSVRejectsReservedChars(t *testing.T) {
	var sb strings.Builder
	err := WriteAttribCSV(&sb, []AttribRecord{{Label: "a,b"}})
	if err == nil {
		t.Fatal("comma in label accepted")
	}
	err = WriteAttribCSV(&sb, []AttribRecord{{
		Label:  "ok",
		Causes: map[string]simtime.Duration{"a=b": 1},
	}})
	if err == nil {
		t.Fatal("'=' in cause name accepted")
	}
}

func TestParseAttribCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong header\n",
		"label,start_ms,end_ms,causes\nonly,three,fields\n",
		"label,start_ms,end_ms,causes\nx,notanumber,1.0,\n",
		"label,start_ms,end_ms,causes\nx,1.0,notanumber,\n",
		"label,start_ms,end_ms,causes\nx,1.0,2.0,noequals\n",
		"label,start_ms,end_ms,causes\nx,1.0,2.0,a=1;a=2\n",
		"label,start_ms,end_ms,causes\nx,1.0,2.0,a=notanumber\n",
	}
	for _, in := range cases {
		if _, err := ParseAttribCSV(strings.NewReader(in)); err == nil {
			t.Fatalf("accepted malformed input %q", in)
		}
	}
}

// The attribution CSV writer must stay allocation-free per row, like the
// other trace writers (its rows land in the verify alloc budget).
func TestWriteAttribCSVAllocs(t *testing.T) {
	recs := []AttribRecord{{
		Label: "WM_KEYDOWN",
		Start: simtime.Time(simtime.Millisecond),
		End:   simtime.Time(2 * simtime.Millisecond),
		Causes: map[string]simtime.Duration{
			"base": simtime.Millisecond, "tlb-miss": 100, "ctx-switch": 50,
		},
	}}
	var sink nopWriter
	if avg := testing.AllocsPerRun(100, func() {
		if err := WriteAttribCSV(sink, recs); err != nil {
			t.Fatal(err)
		}
	}); avg > 6 { // header string, row buffer, names slice + sort overhead
		t.Fatalf("WriteAttribCSV allocates %.1f per call", avg)
	}
}

type nopWriter struct{}

func (nopWriter) Write(p []byte) (int, error) { return len(p), nil }
