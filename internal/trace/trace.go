// Package trace defines the record types produced by latlab's measurement
// instruments and a bounded in-memory buffer to hold them, mirroring the
// paper's trace-record design: the idle loop emits one record per
// millisecond of idle time, and the message-API monitor logs every
// GetMessage/PeekMessage interaction.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"latlab/internal/simtime"
)

// IdleSample is one record from the idle-loop instrumentation: the loop
// completed a calibrated 1 ms busy-wait at Done, and the iteration took
// Elapsed of wall (simulated) time. Elapsed - 1ms is time stolen by
// non-idle activity (paper §2.3, Fig. 1).
type IdleSample struct {
	Done    simtime.Time
	Elapsed simtime.Duration
}

// Stolen returns the non-idle time observed during the sample: the
// elongation of the calibrated loop beyond its idle-time cost.
func (s IdleSample) Stolen(loop simtime.Duration) simtime.Duration {
	st := s.Elapsed - loop
	if st < 0 {
		return 0
	}
	return st
}

// Utilization returns the average CPU utilization over the sample
// interval, per the paper's formula: (elapsed - idle) / elapsed.
func (s IdleSample) Utilization(loop simtime.Duration) float64 {
	if s.Elapsed <= 0 {
		return 0
	}
	u := float64(s.Elapsed-loop) / float64(s.Elapsed)
	if u < 0 {
		return 0
	}
	return u
}

// MsgAPI identifies which message-retrieval entry point a record logs.
type MsgAPI uint8

// Message-API entry points (paper §2.4).
const (
	GetMessage MsgAPI = iota
	PeekMessage
)

// String returns the Win32-style name of the API.
func (a MsgAPI) String() string {
	switch a {
	case GetMessage:
		return "GetMessage"
	case PeekMessage:
		return "PeekMessage"
	default:
		return fmt.Sprintf("MsgAPI(%d)", uint8(a))
	}
}

// MsgRecord logs one interaction with the message API. For GetMessage,
// Call..Return spans any blocking wait; for PeekMessage the two are equal
// unless the queue lock was contended. Received reports whether a message
// was returned; for GetMessage it is always true.
type MsgRecord struct {
	API      MsgAPI
	Call     simtime.Time
	Return   simtime.Time
	Received bool
	// Kind is the message identifier (apps package message kinds); only
	// meaningful when Received. It is carried as an opaque int so trace
	// stays at the bottom of the dependency graph.
	Kind int
	// Enqueued is when the returned message entered the queue — for
	// hardware input, the interrupt time. Latency measured from here
	// captures queue wait, which conventional in-application timestamps
	// miss (the Fig. 1 discrepancy).
	Enqueued simtime.Time
	// QueueLen is the queue length observed after the call completed.
	QueueLen int
	// Thread identifies the calling thread.
	Thread int
}

// CounterSnapshot pairs a label with hardware-counter readings taken
// around an operation (paper §2.2, Figs. 9-10).
type CounterSnapshot struct {
	Label  string
	Cycles int64
	Events map[string]int64
}

// Buffer accumulates idle samples up to a fixed capacity, modelling the
// paper's "while (space_left_in_the_buffer)" trace buffer. A full buffer
// stops accepting samples rather than wrapping: losing the *end* of a run
// is detectable, silent overwrite is not.
type Buffer struct {
	samples []IdleSample
	cap     int
	dropped int
}

// bufferPreSize bounds the eager allocation of a new Buffer. Buffers are
// usually given a generous capacity as an overflow bound, then filled
// far below it; pre-sizing to min(capacity, bufferPreSize) removes the
// early growth reallocations without committing the full bound up front.
const bufferPreSize = 4096

// NewBuffer returns a buffer holding at most capacity samples.
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		panic("trace: non-positive buffer capacity")
	}
	pre := capacity
	if pre > bufferPreSize {
		pre = bufferPreSize
	}
	return &Buffer{cap: capacity, samples: make([]IdleSample, 0, pre)}
}

// NewBufferBacked returns a buffer that records into the caller's
// backing array: capacity is cap(backing) and no allocation happens at
// construction or append. The batch engine pre-grows one arena per
// machine slot and reuses it across sessions.
func NewBufferBacked(backing []IdleSample) *Buffer {
	if cap(backing) == 0 {
		panic("trace: zero-capacity backing array")
	}
	return &Buffer{cap: cap(backing), samples: backing[:0]}
}

// Append records a sample; it returns false (and counts a drop) when full.
func (b *Buffer) Append(s IdleSample) bool {
	if len(b.samples) >= b.cap {
		b.dropped++
		return false
	}
	b.samples = append(b.samples, s)
	return true
}

// Full reports whether the buffer has reached capacity.
func (b *Buffer) Full() bool { return len(b.samples) >= b.cap }

// Cap returns the buffer's fixed capacity.
func (b *Buffer) Cap() int { return b.cap }

// Dropped returns the number of samples rejected after the buffer filled.
func (b *Buffer) Dropped() int { return b.dropped }

// Samples returns the recorded samples. The returned slice aliases the
// buffer; callers must not modify it.
func (b *Buffer) Samples() []IdleSample { return b.samples }

// Len returns the number of recorded samples.
func (b *Buffer) Len() int { return len(b.samples) }

// Reset discards all samples and the drop count.
func (b *Buffer) Reset() { b.samples = b.samples[:0]; b.dropped = 0 }

// appendMs appends v with six decimal places, the CSV fixed-point
// format. strconv.AppendFloat writes into the caller's buffer, so the
// CSV writers allocate nothing per row; the output is byte-identical to
// fmt's %.6f (both round via strconv).
func appendMs(b []byte, v float64) []byte {
	return strconv.AppendFloat(b, v, 'f', 6, 64)
}

// WriteIdleCSV writes samples as CSV with a header row:
// done_ms,elapsed_ms — the format cmd/traceview consumes.
func WriteIdleCSV(w io.Writer, samples []IdleSample) error {
	if _, err := io.WriteString(w, "done_ms,elapsed_ms\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 64)
	for _, s := range samples {
		buf = buf[:0]
		buf = appendMs(buf, s.Done.Milliseconds())
		buf = append(buf, ',')
		buf = appendMs(buf, s.Elapsed.Milliseconds())
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ParseIdleCSV parses the format written by WriteIdleCSV.
func ParseIdleCSV(r io.Reader) ([]IdleSample, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "done_ms,elapsed_ms" {
		return nil, fmt.Errorf("trace: missing idle CSV header")
	}
	var out []IdleSample
	for i, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var doneMs, elapsedMs float64
		if _, err := fmt.Sscanf(line, "%f,%f", &doneMs, &elapsedMs); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", i+2, err)
		}
		out = append(out, IdleSample{
			Done:    simtime.Time(simtime.FromMillis(doneMs)),
			Elapsed: simtime.FromMillis(elapsedMs),
		})
	}
	return out, nil
}

// parseMsgAPI inverts MsgAPI.String: the two Win32 names plus the
// MsgAPI(n) fallback for values outside the known set.
func parseMsgAPI(s string) (MsgAPI, error) {
	switch s {
	case "GetMessage":
		return GetMessage, nil
	case "PeekMessage":
		return PeekMessage, nil
	}
	var n uint8
	if _, err := fmt.Sscanf(s, "MsgAPI(%d)", &n); err == nil && s == fmt.Sprintf("MsgAPI(%d)", n) {
		return MsgAPI(n), nil
	}
	return 0, fmt.Errorf("trace: unknown message API %q", s)
}

// WriteMsgCSV writes message records as CSV with a header row.
func WriteMsgCSV(w io.Writer, recs []MsgRecord) error {
	if _, err := io.WriteString(w, "api,call_ms,return_ms,received,kind,enqueued_ms,queue_len,thread\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 128)
	for _, r := range recs {
		buf = buf[:0]
		switch r.API {
		case GetMessage:
			buf = append(buf, "GetMessage"...)
		case PeekMessage:
			buf = append(buf, "PeekMessage"...)
		default:
			buf = append(buf, "MsgAPI("...)
			buf = strconv.AppendUint(buf, uint64(uint8(r.API)), 10)
			buf = append(buf, ')')
		}
		buf = append(buf, ',')
		buf = appendMs(buf, r.Call.Milliseconds())
		buf = append(buf, ',')
		buf = appendMs(buf, r.Return.Milliseconds())
		buf = append(buf, ',')
		buf = strconv.AppendBool(buf, r.Received)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Kind), 10)
		buf = append(buf, ',')
		buf = appendMs(buf, r.Enqueued.Milliseconds())
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.QueueLen), 10)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, int64(r.Thread), 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// counterHeader is the header row of the counter-snapshot CSV format.
const counterHeader = "label,cycles,events"

// WriteCounterCSV writes snapshots as CSV with a header row:
// label,cycles,events. The events column is a semicolon-joined list of
// name=count pairs sorted by name, so the output is deterministic
// regardless of map iteration order. Labels must not contain commas or
// newlines, and event names must not contain ',', ';', '=' or newlines.
func WriteCounterCSV(w io.Writer, snaps []CounterSnapshot) error {
	if _, err := io.WriteString(w, counterHeader+"\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 128)
	var names []string
	for _, s := range snaps {
		if strings.ContainsAny(s.Label, ",\n") {
			return fmt.Errorf("trace: counter label %q contains a reserved character", s.Label)
		}
		names = names[:0]
		for name := range s.Events {
			if strings.ContainsAny(name, ",;=\n") {
				return fmt.Errorf("trace: counter event name %q contains a reserved character", name)
			}
			names = append(names, name)
		}
		sort.Strings(names)
		buf = buf[:0]
		buf = append(buf, s.Label...)
		buf = append(buf, ',')
		buf = strconv.AppendInt(buf, s.Cycles, 10)
		buf = append(buf, ',')
		for i, name := range names {
			if i > 0 {
				buf = append(buf, ';')
			}
			buf = append(buf, name...)
			buf = append(buf, '=')
			buf = strconv.AppendInt(buf, s.Events[name], 10)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ParseCounterCSV parses the format written by WriteCounterCSV. A row
// with an empty events column yields a nil Events map; duplicate event
// names within a row are an error.
func ParseCounterCSV(r io.Reader) ([]CounterSnapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != counterHeader {
		return nil, fmt.Errorf("trace: missing counter CSV header")
	}
	var out []CounterSnapshot
	for i, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("trace: line %d: want 3 fields, got %d", i+2, len(fields))
		}
		snap := CounterSnapshot{Label: fields[0]}
		if snap.Cycles, err = strconv.ParseInt(fields[1], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: line %d: cycles: %w", i+2, err)
		}
		if fields[2] != "" {
			snap.Events = make(map[string]int64)
			for _, pair := range strings.Split(fields[2], ";") {
				name, val, ok := strings.Cut(pair, "=")
				if !ok || name == "" {
					return nil, fmt.Errorf("trace: line %d: malformed event pair %q", i+2, pair)
				}
				if _, dup := snap.Events[name]; dup {
					return nil, fmt.Errorf("trace: line %d: duplicate event %q", i+2, name)
				}
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: event %q: %w", i+2, name, err)
				}
				snap.Events[name] = n
			}
		}
		out = append(out, snap)
	}
	return out, nil
}

// ParseMsgCSV parses the format written by WriteMsgCSV.
func ParseMsgCSV(r io.Reader) ([]MsgRecord, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	const header = "api,call_ms,return_ms,received,kind,enqueued_ms,queue_len,thread"
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != header {
		return nil, fmt.Errorf("trace: missing message CSV header")
	}
	var out []MsgRecord
	for i, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 8 {
			return nil, fmt.Errorf("trace: line %d: want 8 fields, got %d", i+2, len(fields))
		}
		bad := func(col string, err error) error {
			return fmt.Errorf("trace: line %d: %s: %w", i+2, col, err)
		}
		var rec MsgRecord
		if rec.API, err = parseMsgAPI(fields[0]); err != nil {
			return nil, bad("api", err)
		}
		callMs, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, bad("call_ms", err)
		}
		returnMs, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, bad("return_ms", err)
		}
		if rec.Received, err = strconv.ParseBool(fields[3]); err != nil {
			return nil, bad("received", err)
		}
		if rec.Kind, err = strconv.Atoi(fields[4]); err != nil {
			return nil, bad("kind", err)
		}
		enqMs, err := strconv.ParseFloat(fields[5], 64)
		if err != nil {
			return nil, bad("enqueued_ms", err)
		}
		if rec.QueueLen, err = strconv.Atoi(fields[6]); err != nil {
			return nil, bad("queue_len", err)
		}
		if rec.Thread, err = strconv.Atoi(fields[7]); err != nil {
			return nil, bad("thread", err)
		}
		rec.Call = simtime.Time(simtime.FromMillis(callMs))
		rec.Return = simtime.Time(simtime.FromMillis(returnMs))
		rec.Enqueued = simtime.Time(simtime.FromMillis(enqMs))
		out = append(out, rec)
	}
	return out, nil
}
