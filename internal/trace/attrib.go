package trace

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"latlab/internal/simtime"
)

// AttribRecord is the per-event "where did the time go" record: one
// interactive episode (user action to the application's next readiness
// for input) with its wall time decomposed by cause. Causes carries
// attributed nanoseconds per cause name (the spans package's stable
// cause vocabulary); the names are opaque here so trace stays at the
// bottom of the dependency graph.
type AttribRecord struct {
	// Label names the episode (the input-message kind, e.g. WM_KEYDOWN).
	Label string
	// Start is the hardware enqueue; End is the handling thread's next
	// message-API call.
	Start, End simtime.Time
	// Causes maps cause name to attributed duration.
	Causes map[string]simtime.Duration
}

// Latency returns the episode's wall latency.
func (r AttribRecord) Latency() simtime.Duration { return r.End.Sub(r.Start) }

// attribHeader is the header row of the attribution CSV format.
const attribHeader = "label,start_ms,end_ms,causes"

// WriteAttribCSV writes records as CSV with a header row:
// label,start_ms,end_ms,causes. The causes column is a semicolon-joined
// list of name=nanoseconds pairs sorted by name, so output is
// deterministic regardless of map iteration order. Labels must not
// contain commas or newlines; cause names must not contain ',', ';',
// '=' or newlines.
func WriteAttribCSV(w io.Writer, recs []AttribRecord) error {
	if _, err := io.WriteString(w, attribHeader+"\n"); err != nil {
		return err
	}
	buf := make([]byte, 0, 256)
	var names []string
	for _, r := range recs {
		if strings.ContainsAny(r.Label, ",\n") {
			return fmt.Errorf("trace: attribution label %q contains a reserved character", r.Label)
		}
		names = names[:0]
		for name := range r.Causes {
			if strings.ContainsAny(name, ",;=\n") {
				return fmt.Errorf("trace: cause name %q contains a reserved character", name)
			}
			names = append(names, name)
		}
		sort.Strings(names)
		buf = buf[:0]
		buf = append(buf, r.Label...)
		buf = append(buf, ',')
		buf = appendMs(buf, r.Start.Milliseconds())
		buf = append(buf, ',')
		buf = appendMs(buf, r.End.Milliseconds())
		buf = append(buf, ',')
		for i, name := range names {
			if i > 0 {
				buf = append(buf, ';')
			}
			buf = append(buf, name...)
			buf = append(buf, '=')
			buf = strconv.AppendInt(buf, int64(r.Causes[name]), 10)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ParseAttribCSV parses the format written by WriteAttribCSV. A row with
// an empty causes column yields a nil Causes map; duplicate cause names
// within a row are an error.
func ParseAttribCSV(r io.Reader) ([]AttribRecord, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != attribHeader {
		return nil, fmt.Errorf("trace: missing attribution CSV header")
	}
	var out []AttribRecord
	for i, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Split(line, ",")
		if len(fields) != 4 {
			return nil, fmt.Errorf("trace: line %d: want 4 fields, got %d", i+2, len(fields))
		}
		rec := AttribRecord{Label: fields[0]}
		startMs, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: start_ms: %w", i+2, err)
		}
		endMs, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: end_ms: %w", i+2, err)
		}
		rec.Start = simtime.Time(simtime.FromMillis(startMs))
		rec.End = simtime.Time(simtime.FromMillis(endMs))
		if fields[3] != "" {
			rec.Causes = make(map[string]simtime.Duration)
			for _, pair := range strings.Split(fields[3], ";") {
				name, val, ok := strings.Cut(pair, "=")
				if !ok || name == "" {
					return nil, fmt.Errorf("trace: line %d: malformed cause pair %q", i+2, pair)
				}
				if _, dup := rec.Causes[name]; dup {
					return nil, fmt.Errorf("trace: line %d: duplicate cause %q", i+2, name)
				}
				ns, err := strconv.ParseInt(val, 10, 64)
				if err != nil {
					return nil, fmt.Errorf("trace: line %d: cause %q: %w", i+2, name, err)
				}
				rec.Causes[name] = simtime.Duration(ns)
			}
		}
		out = append(out, rec)
	}
	return out, nil
}
