package trace

import (
	"reflect"
	"strings"
	"testing"
)

// FuzzParseIdleCSV checks that arbitrary input never panics the parser
// and that anything it accepts survives a write/parse round trip.
func FuzzParseIdleCSV(f *testing.F) {
	f.Add("done_ms,elapsed_ms\n1.000000,1.000000\n")
	f.Add("done_ms,elapsed_ms\n")
	f.Add("done_ms,elapsed_ms\n10.760000,10.760000\n2.000000,1.000000\n")
	f.Add("bogus header\n1,2\n")
	f.Add("done_ms,elapsed_ms\nnot,numbers\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		samples, err := ParseIdleCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteIdleCSV(&sb, samples); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ParseIdleCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(samples) {
			t.Fatalf("round trip changed length: %d → %d", len(samples), len(again))
		}
	})
}

// FuzzParseCounterCSV checks that arbitrary input never panics the
// counter-snapshot parser and that anything it accepts survives a
// write/parse round trip exactly: the first parse canonicalises the
// input (sorted events, canonical integers), so write must reproduce it.
func FuzzParseCounterCSV(f *testing.F) {
	const hdr = "label,cycles,events\n"
	f.Add(hdr + "getmsg-warm,4320,dtlb_miss=7;itlb_miss=3;l2_miss=12\n")
	f.Add(hdr + "getmsg-cold,58000,dtlb_miss=64;itlb_miss=31;l2_miss=410\n")
	f.Add(hdr + "empty,0,\n")
	f.Add(hdr + "negative,-1,x=-5\n")
	f.Add(hdr)
	f.Add(hdr + "dup,1,a=1;a=2\n")
	f.Add(hdr + "bad,1,a\n")
	f.Add(hdr + "bad,notanumber,\n")
	f.Add("bogus header\nx,1,\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		snaps, err := ParseCounterCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteCounterCSV(&sb, snaps); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ParseCounterCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !reflect.DeepEqual(again, snaps) {
			t.Fatalf("round trip changed data:\n%#v\n%#v", snaps, again)
		}
	})
}

// FuzzParseMsgCSV checks that arbitrary input never panics the message
// parser and that anything it accepts survives a write/parse round trip.
func FuzzParseMsgCSV(f *testing.F) {
	const hdr = "api,call_ms,return_ms,received,kind,enqueued_ms,queue_len,thread\n"
	f.Add(hdr + "GetMessage,1.000000,2.000000,true,3,0.500000,1,2\n")
	f.Add(hdr + "PeekMessage,1.000000,1.000000,false,0,0.000000,0,1\n")
	f.Add(hdr + "MsgAPI(7),0.000000,0.000000,true,-1,0.000000,0,0\n")
	f.Add(hdr)
	f.Add(hdr + "GetMessage,not,a,number,row,x,y,z\n")
	f.Add(hdr + "GetMessage,1,2\n")
	f.Add("bogus header\nGetMessage,1,2,true,0,1,0,0\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ParseMsgCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteMsgCSV(&sb, recs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ParseMsgCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed length: %d → %d", len(recs), len(again))
		}
	})
}

// FuzzParseAttribCSV checks that arbitrary input never panics the
// attribution parser and that anything it accepts survives a write/parse
// round trip: cause maps exactly (they are integers), record count
// always.
func FuzzParseAttribCSV(f *testing.F) {
	const hdr = "label,start_ms,end_ms,causes\n"
	f.Add(hdr + "WM_KEYDOWN,20.000000,25.400000,base=3000000;queue-wait=1200000;tlb-miss=800000\n")
	f.Add(hdr + "empty,0.000000,0.000000,\n")
	f.Add(hdr + "\n  WM_CHAR,1.000000,2.000000,base=1\n\n")
	f.Add(hdr + "bad,x,y,z\n")
	f.Add(hdr + "dup,1.0,2.0,a=1;a=2\n")
	f.Add(hdr)
	f.Add("bogus header\nx,1,2,\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ParseAttribCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteAttribCSV(&sb, recs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ParseAttribCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed length: %d → %d", len(recs), len(again))
		}
		for i := range recs {
			if !reflect.DeepEqual(again[i].Causes, recs[i].Causes) {
				t.Fatalf("record %d causes changed:\n%#v\n%#v", i, recs[i].Causes, again[i].Causes)
			}
		}
	})
}
