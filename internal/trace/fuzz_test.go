package trace

import (
	"strings"
	"testing"
)

// FuzzParseIdleCSV checks that arbitrary input never panics the parser
// and that anything it accepts survives a write/parse round trip.
func FuzzParseIdleCSV(f *testing.F) {
	f.Add("done_ms,elapsed_ms\n1.000000,1.000000\n")
	f.Add("done_ms,elapsed_ms\n")
	f.Add("done_ms,elapsed_ms\n10.760000,10.760000\n2.000000,1.000000\n")
	f.Add("bogus header\n1,2\n")
	f.Add("done_ms,elapsed_ms\nnot,numbers\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		samples, err := ParseIdleCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteIdleCSV(&sb, samples); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ParseIdleCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(samples) {
			t.Fatalf("round trip changed length: %d → %d", len(samples), len(again))
		}
	})
}

// FuzzParseMsgCSV checks that arbitrary input never panics the message
// parser and that anything it accepts survives a write/parse round trip.
func FuzzParseMsgCSV(f *testing.F) {
	const hdr = "api,call_ms,return_ms,received,kind,enqueued_ms,queue_len,thread\n"
	f.Add(hdr + "GetMessage,1.000000,2.000000,true,3,0.500000,1,2\n")
	f.Add(hdr + "PeekMessage,1.000000,1.000000,false,0,0.000000,0,1\n")
	f.Add(hdr + "MsgAPI(7),0.000000,0.000000,true,-1,0.000000,0,0\n")
	f.Add(hdr)
	f.Add(hdr + "GetMessage,not,a,number,row,x,y,z\n")
	f.Add(hdr + "GetMessage,1,2\n")
	f.Add("bogus header\nGetMessage,1,2,true,0,1,0,0\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		recs, err := ParseMsgCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteMsgCSV(&sb, recs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ParseMsgCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(recs) {
			t.Fatalf("round trip changed length: %d → %d", len(recs), len(again))
		}
	})
}
