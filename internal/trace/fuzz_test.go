package trace

import (
	"strings"
	"testing"
)

// FuzzParseIdleCSV checks that arbitrary input never panics the parser
// and that anything it accepts survives a write/parse round trip.
func FuzzParseIdleCSV(f *testing.F) {
	f.Add("done_ms,elapsed_ms\n1.000000,1.000000\n")
	f.Add("done_ms,elapsed_ms\n")
	f.Add("done_ms,elapsed_ms\n10.760000,10.760000\n2.000000,1.000000\n")
	f.Add("bogus header\n1,2\n")
	f.Add("done_ms,elapsed_ms\nnot,numbers\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		samples, err := ParseIdleCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var sb strings.Builder
		if err := WriteIdleCSV(&sb, samples); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ParseIdleCSV(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if len(again) != len(samples) {
			t.Fatalf("round trip changed length: %d → %d", len(samples), len(again))
		}
	})
}
