// Package input generates user-input timelines and replays them through
// the simulated hardware path.
//
// Two generators mirror the paper's two input sources: Script is the
// Microsoft Visual Test analog — precisely timed events, each followed by
// a WM_QUEUESYNC message (the artifact §5.4 uncovers) — and Typist is a
// seeded human model with realistic inter-keystroke variation, used for
// the hand-generated comparisons.
package input

import (
	"sort"

	"latlab/internal/kernel"
	"latlab/internal/rng"
	"latlab/internal/simtime"
	"latlab/internal/system"
)

// Virtual key codes for non-printable keys (Param of WMKeyDown events).
const (
	VKBack     int64 = 0x08
	VKPageDown int64 = 0x22
	VKLeft     int64 = 0x25
	VKUp       int64 = 0x26
	VKRight    int64 = 0x27
	VKDown     int64 = 0x28
)

// Event is one input event to inject at an absolute simulated time.
type Event struct {
	At    simtime.Time
	Kind  kernel.MsgKind
	Param int64
}

// Script is a replayable input timeline.
type Script struct {
	Events []Event
	// QueueSync posts WM_QUEUESYNC after every event, modelling the
	// Microsoft Test driver. Hand-generated input leaves it false.
	QueueSync bool
}

// Install schedules every event for injection on sys. Call before
// running the kernel.
func (s *Script) Install(sys *system.System) {
	for _, e := range s.Events {
		e := e
		sys.K.At(e.At, func(now simtime.Time) {
			sys.Inject(e.Kind, e.Param, s.QueueSync)
		})
	}
}

// End returns the time of the last event, or 0 for an empty script.
func (s *Script) End() simtime.Time {
	var end simtime.Time
	for _, e := range s.Events {
		if e.At > end {
			end = e.At
		}
	}
	return end
}

// Len returns the number of events.
func (s *Script) Len() int { return len(s.Events) }

// Sort orders events chronologically (stably).
func (s *Script) Sort() {
	sort.SliceStable(s.Events, func(i, j int) bool { return s.Events[i].At < s.Events[j].At })
}

// charEvent converts a text character to an input event: printable
// characters and newline become WM_CHAR, backspace a WM_KEYDOWN.
func charEvent(at simtime.Time, c rune) Event {
	if c == '\b' {
		return Event{At: at, Kind: kernel.WMKeyDown, Param: VKBack}
	}
	return Event{At: at, Kind: kernel.WMChar, Param: int64(c)}
}

// TypeText generates fixed-pace keystrokes for text starting at start —
// the Test-script style: "Test scripts can specify the pauses between
// input events" (§3). At 100 words per minute use 120 ms.
func TypeText(start simtime.Time, text string, perKey simtime.Duration) []Event {
	evs := make([]Event, 0, len(text))
	at := start
	for _, c := range text {
		evs = append(evs, charEvent(at, c))
		at = at.Add(perKey)
	}
	return evs
}

// KeyDowns generates fixed-pace non-printable keystrokes.
func KeyDowns(start simtime.Time, vk int64, n int, perKey simtime.Duration) []Event {
	evs := make([]Event, 0, n)
	at := start
	for i := 0; i < n; i++ {
		evs = append(evs, Event{At: at, Kind: kernel.WMKeyDown, Param: vk})
		at = at.Add(perKey)
	}
	return evs
}

// Click generates a mouse press of the given hold duration.
func Click(at simtime.Time, hold simtime.Duration) []Event {
	return []Event{
		{At: at, Kind: kernel.WMMouseDown},
		{At: at.Add(hold), Kind: kernel.WMMouseUp},
	}
}

// Command generates a single application command (menu action).
func Command(at simtime.Time, cmd int64) Event {
	return Event{At: at, Kind: kernel.WMCommand, Param: cmd}
}

// Typist is the seeded human-typing model. The zero value is not useful;
// use NewTypist.
type Typist struct {
	// WPM is words per minute (a word is the conventional 5 characters).
	// Shneiderman's figure, cited in §2: even the best typists need
	// ~120 ms per keystroke.
	WPM float64
	// JitterFrac is the relative std-dev of inter-key intervals.
	JitterFrac float64
	// WordPause and SentencePause extend the gap after spaces and
	// sentence-ending punctuation.
	WordPause     simtime.Duration
	SentencePause simtime.Duration
	// ThinkEvery inserts a composition pause of ThinkPause roughly every
	// that many characters (0 disables).
	ThinkEvery int
	ThinkPause simtime.Duration

	rand *rng.Source
}

// NewTypist returns a typist at wpm with default human parameters.
func NewTypist(seed uint64, wpm float64) *Typist {
	return &Typist{
		WPM:           wpm,
		JitterFrac:    0.35,
		WordPause:     60 * simtime.Millisecond,
		SentencePause: 350 * simtime.Millisecond,
		ThinkEvery:    90,
		ThinkPause:    1500 * simtime.Millisecond,
		rand:          rng.New(seed),
	}
}

// Type generates human-paced keystrokes for text starting at start.
func (ty *Typist) Type(start simtime.Time, text string) []Event {
	base := 60.0 / (ty.WPM * 5.0) // seconds per keystroke
	evs := make([]Event, 0, len(text))
	at := start
	sinceThink := 0
	for _, c := range text {
		evs = append(evs, charEvent(at, c))
		gap := ty.rand.Normal(base, base*ty.JitterFrac)
		minGap := base * 0.4
		if gap < minGap {
			gap = minGap
		}
		d := simtime.FromSeconds(gap)
		switch c {
		case ' ':
			d += simtime.Duration(ty.rand.Exponential(float64(ty.WordPause)))
		case '.', '!', '?':
			d += simtime.Duration(ty.rand.Exponential(float64(ty.SentencePause)))
		}
		sinceThink++
		if ty.ThinkEvery > 0 && sinceThink >= ty.ThinkEvery && ty.rand.Float64() < 0.5 {
			d += simtime.Duration(ty.rand.Uniform(0.8, 1.6) * float64(ty.ThinkPause))
			sinceThink = 0
		}
		at = at.Add(d)
	}
	return evs
}

// SampleText returns deterministic filler prose of at least n characters,
// used by the benchmarks (the paper types 1300 characters into Notepad
// and ~1000 into Word).
func SampleText(n int) string {
	const para = "The conventional methodology for system performance " +
		"measurement relies primarily on throughput sensitive benchmarks. " +
		"The most important performance criterion for interactive " +
		"applications is responsiveness as perceived by the user. " +
		"Latency not throughput is the key metric for interactive software. "
	out := make([]byte, 0, n+len(para))
	for len(out) < n {
		out = append(out, para...)
	}
	return string(out[:n])
}
