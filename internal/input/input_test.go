package input

import (
	"testing"

	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/system"
)

func TestTypeTextFixedPace(t *testing.T) {
	evs := TypeText(simtime.Time(simtime.Second), "ab\bc", 120*simtime.Millisecond)
	if len(evs) != 4 {
		t.Fatalf("events = %d", len(evs))
	}
	if evs[0].Kind != kernel.WMChar || evs[0].Param != 'a' {
		t.Fatalf("first event = %+v", evs[0])
	}
	if evs[2].Kind != kernel.WMKeyDown || evs[2].Param != VKBack {
		t.Fatalf("backspace = %+v", evs[2])
	}
	if gap := evs[1].At.Sub(evs[0].At); gap != 120*simtime.Millisecond {
		t.Fatalf("pace = %v", gap)
	}
}

func TestKeyDownsAndClickAndCommand(t *testing.T) {
	kd := KeyDowns(0, VKPageDown, 3, simtime.Second)
	if len(kd) != 3 || kd[2].At != simtime.Time(2*simtime.Second) || kd[0].Param != VKPageDown {
		t.Fatalf("keydowns = %+v", kd)
	}
	cl := Click(simtime.Time(simtime.Second), 100*simtime.Millisecond)
	if len(cl) != 2 || cl[0].Kind != kernel.WMMouseDown || cl[1].Kind != kernel.WMMouseUp {
		t.Fatalf("click = %+v", cl)
	}
	if cl[1].At.Sub(cl[0].At) != 100*simtime.Millisecond {
		t.Fatalf("hold = %v", cl[1].At.Sub(cl[0].At))
	}
	cmd := Command(5, 42)
	if cmd.Kind != kernel.WMCommand || cmd.Param != 42 {
		t.Fatalf("command = %+v", cmd)
	}
}

func TestScriptHelpers(t *testing.T) {
	s := &Script{Events: []Event{{At: 30}, {At: 10}, {At: 20}}}
	if s.End() != 30 || s.Len() != 3 {
		t.Fatalf("end/len = %v/%d", s.End(), s.Len())
	}
	s.Sort()
	if s.Events[0].At != 10 || s.Events[2].At != 30 {
		t.Fatalf("sort failed: %+v", s.Events)
	}
	empty := &Script{}
	if empty.End() != 0 {
		t.Fatalf("empty end = %v", empty.End())
	}
}

func TestTypistRealism(t *testing.T) {
	ty := NewTypist(7, 100) // 100 wpm → mean 120 ms/keystroke
	text := SampleText(500)
	evs := ty.Type(0, text)
	if len(evs) != 500 {
		t.Fatalf("events = %d", len(evs))
	}
	var gaps []simtime.Duration
	for i := 1; i < len(evs); i++ {
		g := evs[i].At.Sub(evs[i-1].At)
		if g < 40*simtime.Millisecond {
			t.Fatalf("gap %d = %v, impossibly fast for a human", i, g)
		}
		gaps = append(gaps, g)
	}
	var total simtime.Duration
	distinct := map[simtime.Duration]bool{}
	for _, g := range gaps {
		total += g
		distinct[g] = true
	}
	mean := total / simtime.Duration(len(gaps))
	// Mean inter-key should be near 120 ms plus pause inflation — well
	// inside [110, 260] ms.
	if mean < 110*simtime.Millisecond || mean > 260*simtime.Millisecond {
		t.Fatalf("mean gap = %v, want ≈120-250ms at 100wpm", mean)
	}
	if len(distinct) < 100 {
		t.Fatalf("only %d distinct gaps; typist should jitter", len(distinct))
	}
}

func TestTypistDeterministic(t *testing.T) {
	a := NewTypist(42, 90).Type(0, SampleText(200))
	b := NewTypist(42, 90).Type(0, SampleText(200))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
	c := NewTypist(43, 90).Type(0, SampleText(200))
	same := 0
	for i := range a {
		if a[i].At == c[i].At {
			same++
		}
	}
	if same > len(a)/2 {
		t.Fatalf("different seeds too similar: %d/%d", same, len(a))
	}
}

func TestSampleText(t *testing.T) {
	s := SampleText(1300)
	if len(s) != 1300 {
		t.Fatalf("len = %d", len(s))
	}
}

func TestScriptInstallDelivers(t *testing.T) {
	sys := system.New(system.Config{Persona: persona.NT40()})
	defer sys.Shutdown()
	var got []kernel.Msg
	sys.SpawnApp("app", func(tc *kernel.TC) {
		for {
			m := tc.GetMessage()
			if m.Kind == kernel.WMQuit {
				return
			}
			got = append(got, m)
		}
	})
	s := &Script{Events: TypeText(simtime.Time(10*simtime.Millisecond), "hi", 50*simtime.Millisecond), QueueSync: true}
	s.Install(sys)
	sys.K.At(simtime.Time(500*simtime.Millisecond), func(simtime.Time) {
		sys.K.PostMessage(sys.Focus(), kernel.WMQuit, 0)
	})
	sys.K.Run(simtime.Time(simtime.Second))
	// 2 chars × (char + queuesync).
	if len(got) != 4 {
		t.Fatalf("messages = %d, want 4", len(got))
	}
	if got[0].Kind != kernel.WMChar || got[1].Kind != kernel.WMQueueSync {
		t.Fatalf("order: %v %v", got[0].Kind, got[1].Kind)
	}
}
