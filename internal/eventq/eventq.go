package eventq

import (
	"latlab/internal/simtime"
)

// Event is a popped event: the instant it was scheduled for and its
// callback. It is a value; popping performs no allocation.
type Event struct {
	at simtime.Time
	fn func(now simtime.Time)
}

// At returns the instant the event was scheduled to fire.
func (e Event) At() simtime.Time { return e.at }

// Fire invokes the event's callback at instant now. It is split from Pop
// so the simulator can update its clock between the two.
func (e Event) Fire(now simtime.Time) { e.fn(now) }

// Handle identifies a scheduled event for cancellation. The zero Handle
// is invalid. Handles are values; holding one does not keep anything
// alive, and using a handle after its event fired is detected via a
// generation check (the methods then report a dead event).
type Handle struct {
	q    *Queue
	at   simtime.Time
	slot int32
	gen  uint32
}

// Valid reports whether the handle refers to a queue at all (the zero
// Handle does not).
func (h Handle) Valid() bool { return h.q != nil }

// At returns the instant the event was scheduled to fire.
func (h Handle) At() simtime.Time { return h.at }

// Cancel marks the event so it will be skipped when it reaches the head
// of the queue. Cancelling an already-fired or already-cancelled event is
// a no-op.
func (h Handle) Cancel() {
	if h.q != nil && h.q.tickets[h.slot].gen == h.gen {
		h.q.tickets[h.slot].cancelled = true
		if h.q.cal != nil {
			h.q.cal.memoOK = false
		}
	}
}

// Cancelled reports whether Cancel has been called on the event (false
// once the event has fired or been discarded).
func (h Handle) Cancelled() bool {
	return h.q != nil && h.q.tickets[h.slot].gen == h.gen && h.q.tickets[h.slot].cancelled
}

// entry is one scheduled event inside the heap, stored by value.
type entry struct {
	at   simtime.Time
	seq  uint64
	slot int32
	fn   func(now simtime.Time)
}

// ticket carries the cancellation flag for one in-flight event. Slots are
// recycled through a free list; gen disambiguates reuse so stale Handles
// are inert.
type ticket struct {
	gen       uint32
	cancelled bool
}

// Queue is a deterministic priority queue of events. The zero value is an
// empty queue ready for use (4-ary heap backend); UseCalendar switches an
// empty queue to the calendar-queue backend, which yields the identical
// pop order — entries are totally ordered by (at, seq) and seq is unique,
// so the order is backend-independent. Queue is not safe for concurrent
// use; the simulator is single-threaded by construction.
type Queue struct {
	h       []entry
	seq     uint64
	tickets []ticket
	free    []int32
	cal     *calendar // non-nil selects the calendar backend
}

// Grow pre-sizes the queue's internal storage for at least n concurrently
// scheduled events, so the hot path never reallocates.
func (q *Queue) Grow(n int) {
	if cap(q.h) < n {
		h := make([]entry, len(q.h), n)
		copy(h, q.h)
		q.h = h
	}
	if cap(q.tickets) < n {
		t := make([]ticket, len(q.tickets), n)
		copy(t, q.tickets)
		q.tickets = t
	}
}

// Schedule enqueues fn to run at instant at and returns a handle that can
// cancel it. Scheduling in the past is the caller's bug and panics, since
// it would silently corrupt causality.
func (q *Queue) Schedule(at simtime.Time, fn func(now simtime.Time)) Handle {
	if fn == nil {
		panic("eventq: nil event function")
	}
	var slot int32
	if n := len(q.free); n > 0 {
		slot = q.free[n-1]
		q.free = q.free[:n-1]
		q.tickets[slot].cancelled = false
	} else {
		slot = int32(len(q.tickets))
		q.tickets = append(q.tickets, ticket{})
	}
	e := entry{at: at, seq: q.seq, slot: slot, fn: fn}
	q.seq++
	if q.cal != nil {
		q.cal.schedule(e)
	} else {
		q.h = append(q.h, e)
		q.siftUp(len(q.h) - 1)
	}
	return Handle{q: q, at: at, slot: slot, gen: q.tickets[slot].gen}
}

// Len returns the number of events still enqueued, including cancelled
// events that have not yet been skipped.
func (q *Queue) Len() int {
	if q.cal != nil {
		return q.cal.count
	}
	return len(q.h)
}

// Empty reports whether no live events remain. It discards any cancelled
// events at the head of the queue.
func (q *Queue) Empty() bool {
	if q.cal != nil {
		_, _, ok := q.cal.minLocate(q)
		return !ok
	}
	q.skipCancelled()
	return len(q.h) == 0
}

// NextTime returns the firing time of the earliest live event, or
// simtime.Never when the queue is empty.
func (q *Queue) NextTime() simtime.Time {
	if c := q.cal; c != nil {
		if c.memoOK { // skip the scan when the cached minimum is live
			return c.buckets[c.memoP][c.memoI].at
		}
		p, i, ok := c.minLocate(q)
		if !ok {
			return simtime.Never
		}
		return c.buckets[p][i].at
	}
	q.skipCancelled()
	if len(q.h) == 0 {
		return simtime.Never
	}
	return q.h[0].at
}

// Pop removes and returns the earliest live event; ok is false when the
// queue is empty.
func (q *Queue) Pop() (e Event, ok bool) {
	if c := q.cal; c != nil {
		p, i, ok := c.memoP, c.memoI, c.memoOK
		if !ok {
			if p, i, ok = c.minLocate(q); !ok {
				return Event{}, false
			}
		}
		head := c.removeAt(q, p, i)
		return Event{at: head.at, fn: head.fn}, true
	}
	q.skipCancelled()
	if len(q.h) == 0 {
		return Event{}, false
	}
	head := q.popHead()
	return Event{at: head.at, fn: head.fn}, true
}

// popHead removes the heap head, releasing its ticket.
func (q *Queue) popHead() entry {
	head := q.h[0]
	q.release(head.slot)
	last := len(q.h) - 1
	q.h[0] = q.h[last]
	q.h[last] = entry{} // drop the fn reference
	q.h = q.h[:last]
	if last > 0 {
		q.siftDown(0)
	}
	return head
}

// release recycles a ticket slot, invalidating outstanding Handles to it.
func (q *Queue) release(slot int32) {
	q.tickets[slot].gen++
	q.tickets[slot].cancelled = false
	q.free = append(q.free, slot)
}

func (q *Queue) skipCancelled() {
	for len(q.h) > 0 && q.tickets[q.h[0].slot].cancelled {
		q.popHead()
	}
}

// less orders entries by (at, seq); seq is unique, so the order is total
// and pop order is independent of heap arity or layout.
func (q *Queue) less(i, j int) bool {
	if q.h[i].at != q.h[j].at {
		return q.h[i].at < q.h[j].at
	}
	return q.h[i].seq < q.h[j].seq
}

// siftUp restores the heap invariant from a newly appended leaf.
func (q *Queue) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 4
		if !q.less(i, parent) {
			break
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

// siftDown restores the heap invariant from the root after a pop.
func (q *Queue) siftDown(i int) {
	n := len(q.h)
	for {
		first := 4*i + 1
		if first >= n {
			return
		}
		best := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.less(c, best) {
				best = c
			}
		}
		if !q.less(best, i) {
			return
		}
		q.h[i], q.h[best] = q.h[best], q.h[i]
		i = best
	}
}
