// Package eventq implements the discrete-event queue at the heart of the
// latlab simulator.
//
// Events are ordered by (time, sequence number): two events scheduled for
// the same instant fire in the order they were scheduled, which keeps the
// whole simulation deterministic. Cancellation is lazy — a cancelled event
// stays in the heap but is skipped when popped — so cancel is O(1) and the
// queue never needs to locate arbitrary entries.
package eventq

import (
	"container/heap"

	"latlab/internal/simtime"
)

// Event is a scheduled callback. The zero value is not usable; obtain
// events from Queue.Schedule.
type Event struct {
	at        simtime.Time
	seq       uint64
	index     int // heap index, -1 when popped
	cancelled bool
	fn        func(now simtime.Time)
}

// At returns the instant the event is scheduled to fire.
func (e *Event) At() simtime.Time { return e.at }

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e.cancelled }

// Cancel marks the event so it will be skipped when it reaches the head of
// the queue. Cancelling an already-fired or already-cancelled event is a
// no-op.
func (e *Event) Cancel() { e.cancelled = true }

// Queue is a deterministic priority queue of events. The zero value is an
// empty queue ready for use. Queue is not safe for concurrent use; the
// simulator is single-threaded by construction.
type Queue struct {
	h   eventHeap
	seq uint64
}

// Schedule enqueues fn to run at instant at and returns a handle that can
// cancel it. Scheduling in the past is the caller's bug and panics, since
// it would silently corrupt causality.
func (q *Queue) Schedule(at simtime.Time, fn func(now simtime.Time)) *Event {
	if fn == nil {
		panic("eventq: nil event function")
	}
	e := &Event{at: at, seq: q.seq, fn: fn}
	q.seq++
	heap.Push(&q.h, e)
	return e
}

// Len returns the number of events still enqueued, including cancelled
// events that have not yet been skipped.
func (q *Queue) Len() int { return len(q.h) }

// Empty reports whether no live events remain. It discards any cancelled
// events at the head of the queue.
func (q *Queue) Empty() bool {
	q.skipCancelled()
	return len(q.h) == 0
}

// NextTime returns the firing time of the earliest live event, or
// simtime.Never when the queue is empty.
func (q *Queue) NextTime() simtime.Time {
	q.skipCancelled()
	if len(q.h) == 0 {
		return simtime.Never
	}
	return q.h[0].at
}

// Pop removes and returns the earliest live event, or nil when the queue
// is empty.
func (q *Queue) Pop() *Event {
	q.skipCancelled()
	if len(q.h) == 0 {
		return nil
	}
	return heap.Pop(&q.h).(*Event)
}

// Fire invokes the event's callback at instant now. It is split from Pop
// so the simulator can update its clock between the two.
func (e *Event) Fire(now simtime.Time) { e.fn(now) }

func (q *Queue) skipCancelled() {
	for len(q.h) > 0 && q.h[0].cancelled {
		heap.Pop(&q.h)
	}
}

// eventHeap implements heap.Interface ordered by (at, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
