package eventq

import (
	"math/bits"

	"latlab/internal/simtime"
)

// Calendar-queue backend. The queue's pop order is the total order
// (at, seq) — seq is unique — so any backend that yields the minimum of
// that order is simulation-equivalent to the 4-ary heap; the
// differential fuzzer (FuzzQueueEquivalence) proves the two backends
// agree under arbitrary schedule/cancel/pop interleavings.
//
// Layout: a power-of-two ring of buckets, each covering 1<<shift
// nanoseconds of simulated time. An event at instant `at` lives in
// logical bucket at>>shift; the ring holds the window
// [base, base+len(buckets)) of logical buckets, and events beyond the
// horizon wait in an unordered overflow list until the cursor advances
// far enough to admit them. Events for logical buckets before the
// cursor (legal: base advances to the earliest *occupied* bucket, and
// a later Schedule may target an earlier instant that is still in the
// future) are clamped into the base bucket; the min-scan inspects every
// entry of the first occupied bucket, so clamping never reorders pops.
type calendar struct {
	shift    uint
	mask     int64
	buckets  [][]entry
	occupied []uint64 // bitset over physical bucket indices
	base     int64    // logical index of the earliest possibly-occupied bucket
	count    int      // entries in buckets + overflow (incl. not-yet-skipped cancelled)
	overflow []entry
	// ovMin is a conservative lower bound on the earliest overflow
	// entry's instant (it may refer to a cancelled entry); Never when
	// the overflow list is empty.
	ovMin simtime.Time
	// memo caches the last minLocate result so the NextTime-then-Pop
	// pattern pays for one scan, not two. Any mutation that could
	// displace the minimum — schedule, removeAt, Cancel — clears it.
	memoOK bool
	memoP  int64
	memoI  int
}

// Default calendar geometry: 512 buckets of ~0.5 ms give a ~268 ms
// horizon — wide enough that clock ticks, quanta, completions, and the
// background-thread sleeps all land in-window, while input scripts
// installed seconds ahead ride in overflow until the cursor nears them.
const (
	defaultCalendarShift   = 19 // bucket width 1<<19 ns ≈ 524 µs
	defaultCalendarBuckets = 512
)

func newCalendar(shift uint, nbuckets int) *calendar {
	if nbuckets <= 0 || nbuckets&(nbuckets-1) != 0 {
		panic("eventq: calendar bucket count must be a positive power of two")
	}
	return &calendar{
		shift:    shift,
		mask:     int64(nbuckets - 1),
		buckets:  make([][]entry, nbuckets),
		occupied: make([]uint64, (nbuckets+63)/64),
		ovMin:    simtime.Never,
	}
}

// UseCalendar switches the queue to the calendar backend with the
// default geometry. It may only be called while the queue is empty (at
// boot): entries do not migrate between backends.
func (q *Queue) UseCalendar() {
	if len(q.h) > 0 || q.cal != nil {
		panic("eventq: UseCalendar on a non-empty or already-calendar queue")
	}
	q.cal = newCalendar(defaultCalendarShift, defaultCalendarBuckets)
}

// SkipSeq advances the internal sequence counter by n without
// scheduling anything, replicating the seq numbering of n elided
// Schedule calls — the bulk idle-skip fast path uses it so elided and
// simulated runs assign identical (at, seq) keys to every later event.
func (q *Queue) SkipSeq(n uint64) { q.seq += n }

func (c *calendar) logicalIndex(at simtime.Time) int64 {
	idx := int64(at) >> c.shift
	if idx < c.base {
		idx = c.base
	}
	return idx
}

func (c *calendar) setBit(p int64)   { c.occupied[p>>6] |= 1 << uint(p&63) }
func (c *calendar) clearBit(p int64) { c.occupied[p>>6] &^= 1 << uint(p&63) }

func (c *calendar) schedule(e entry) {
	idx := c.logicalIndex(e.at)
	if idx >= c.base+c.mask+1 {
		// Overflow entries fire at or beyond the window horizon, which
		// every in-window memo entry precedes — the memo stays valid.
		if e.at < c.ovMin {
			c.ovMin = e.at
		}
		c.overflow = append(c.overflow, e)
	} else {
		p := idx & c.mask
		c.buckets[p] = append(c.buckets[p], e)
		c.setBit(p)
		// Keep the memo coherent instead of dropping it: the new entry
		// displaces the memoized minimum only if it fires strictly
		// earlier (its seq is necessarily larger, so ties lose). The
		// dominant schedule-then-peek pattern then never rescans.
		if c.memoOK {
			if e.at < c.buckets[c.memoP][c.memoI].at {
				c.memoP, c.memoI = p, len(c.buckets[p])-1
			}
		}
	}
	c.count++
}

// migrate moves overflow entries that now fall inside the bucket window
// into their buckets. Each entry migrates at most once, so the cost is
// amortized O(1) per scheduled event.
func (c *calendar) migrate() {
	if c.ovMin == simtime.Never || int64(c.ovMin)>>c.shift >= c.base+c.mask+1 {
		return
	}
	kept := c.overflow[:0]
	min := simtime.Never
	for _, e := range c.overflow {
		idx := c.logicalIndex(e.at)
		if idx < c.base+c.mask+1 {
			p := idx & c.mask
			c.buckets[p] = append(c.buckets[p], e)
			c.setBit(p)
		} else {
			if e.at < min {
				min = e.at
			}
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(c.overflow); i++ {
		c.overflow[i] = entry{} // drop fn references of migrated entries
	}
	c.overflow = kept
	c.ovMin = min
}

// minLocate finds the physical bucket and index of the earliest live
// entry, pruning cancelled entries (releasing their tickets via q) as
// it scans and advancing the base cursor past empty buckets. ok is
// false when no live entry remains.
func (c *calendar) minLocate(q *Queue) (p int64, at int, ok bool) {
	if c.memoOK {
		return c.memoP, c.memoI, true
	}
	for {
		// Admit overflow entries the advancing cursor has brought inside
		// the window first: an admitted entry may precede everything
		// currently bucketed. migrate is a single compare when the
		// overflow is empty or still beyond the horizon.
		c.migrate()
		// Scan logical buckets [base, base+n) in order. The first
		// non-empty bucket (after pruning) holds the global minimum:
		// clamped entries only ever land in the base bucket, and every
		// entry in a later bucket starts at or after that bucket's
		// nominal instant, which follows every instant reachable from an
		// earlier bucket. Empty stretches are skipped a 64-bucket bitset
		// word at a time — with analytic idle skipping the live event
		// population is sparse (tens of empty buckets between clock
		// ticks), so the word hop, not the per-bucket probe, sets the
		// scan's cost.
		n := c.mask + 1
		for off := int64(0); off < n; {
			logical := c.base + off
			p := logical & c.mask
			w := c.occupied[p>>6] >> uint(p&63)
			if w == 0 {
				off += 64 - (p & 63)
				continue
			}
			if skip := int64(bits.TrailingZeros64(w)); skip > 0 {
				off += skip
				continue
			}
			b := c.buckets[p]
			// Prune cancelled entries in place (swap-remove keeps the
			// scan O(len)); bucket-internal order is irrelevant because
			// the min is selected by (at, seq). The slice header is only
			// stored back when pruning shrank it — skipping the store on
			// the common no-cancel path avoids a pointer write barrier
			// per scan.
			pruned := false
			for i := 0; i < len(b); {
				if q.tickets[b[i].slot].cancelled {
					q.release(b[i].slot)
					last := len(b) - 1
					b[i] = b[last]
					b[last] = entry{}
					b = b[:last]
					c.count--
					pruned = true
				} else {
					i++
				}
			}
			if pruned {
				c.buckets[p] = b
			}
			if len(b) == 0 {
				c.clearBit(p)
				continue
			}
			best := 0
			for i := 1; i < len(b); i++ {
				if b[i].at < b[best].at || (b[i].at == b[best].at && b[i].seq < b[best].seq) {
					best = i
				}
			}
			// Advance the cursor to the first occupied bucket so the next
			// scan starts here; entries scheduled for earlier instants
			// clamp into this bucket and are still found by the min-scan.
			c.base = logical
			c.memoOK, c.memoP, c.memoI = true, p, best
			return p, best, true
		}
		// Window empty. Jump to the overflow's earliest bucket (ovMin is
		// a lower bound, so the jump never overshoots a live entry) and
		// admit what now fits; if the overflow is empty too, so is the
		// queue.
		if c.ovMin == simtime.Never {
			return 0, 0, false
		}
		c.base = int64(c.ovMin) >> c.shift
		c.migrate()
	}
}

func (c *calendar) removeAt(q *Queue, p int64, i int) entry {
	c.memoOK = false
	b := c.buckets[p]
	e := b[i]
	q.release(e.slot)
	last := len(b) - 1
	b[i] = b[last]
	b[last] = entry{}
	c.buckets[p] = b[:last]
	if last == 0 {
		c.clearBit(p)
	}
	c.count--
	return e
}
