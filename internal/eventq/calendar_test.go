package eventq

import (
	"math/rand"
	"testing"

	"latlab/internal/simtime"
)

// newCalendarQueue returns an empty queue on the calendar backend.
func newCalendarQueue() *Queue {
	var q Queue
	q.UseCalendar()
	return &q
}

func TestCalendarOrdering(t *testing.T) {
	q := newCalendarQueue()
	var got []int
	q.Schedule(30, func(simtime.Time) { got = append(got, 3) })
	q.Schedule(10, func(simtime.Time) { got = append(got, 1) })
	q.Schedule(20, func(simtime.Time) { got = append(got, 2) })
	for !q.Empty() {
		e, _ := q.Pop()
		e.Fire(e.At())
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fired order %v, want [1 2 3]", got)
	}
}

func TestCalendarFIFOTieBreak(t *testing.T) {
	q := newCalendarQueue()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.Schedule(42, func(simtime.Time) { got = append(got, i) })
	}
	for !q.Empty() {
		e, _ := q.Pop()
		e.Fire(e.At())
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of schedule order at %d: %v", i, got[:i+1])
		}
	}
}

func TestCalendarCancel(t *testing.T) {
	q := newCalendarQueue()
	fired := false
	h := q.Schedule(10, func(simtime.Time) { fired = true })
	q.Schedule(20, func(simtime.Time) {})
	h.Cancel()
	if !h.Cancelled() {
		t.Fatalf("Cancelled() = false after Cancel")
	}
	if got := q.NextTime(); got != 20 {
		t.Fatalf("NextTime = %v, want 20 (cancelled head skipped)", got)
	}
	if e, ok := q.Pop(); !ok || e.At() != 20 {
		t.Fatalf("Pop returned wrong event")
	}
	if fired {
		t.Fatalf("cancelled event fired")
	}
	if !q.Empty() {
		t.Fatalf("queue should be empty")
	}
}

// TestCalendarOverflow schedules far beyond the bucket horizon and
// interleaves in-window events, checking the overflow list migrates in
// order as the cursor advances.
func TestCalendarOverflow(t *testing.T) {
	q := newCalendarQueue()
	horizon := simtime.Time((defaultCalendarBuckets) << defaultCalendarShift)
	var got []simtime.Time
	record := func(simtime.Time) {}
	_ = record
	want := []simtime.Time{
		5, horizon - 1, horizon + 7, 2 * horizon, 2*horizon + 1, 10 * horizon,
	}
	// Schedule shuffled.
	for _, at := range []simtime.Time{2 * horizon, 5, 10 * horizon, horizon + 7, horizon - 1, 2*horizon + 1} {
		q.Schedule(at, func(simtime.Time) {})
	}
	for !q.Empty() {
		e, _ := q.Pop()
		got = append(got, e.At())
	}
	if len(got) != len(want) {
		t.Fatalf("popped %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestCalendarEarlyAfterAdvance pops the cursor forward, then schedules
// an event for an earlier instant (still legal — eventq has no clock);
// the clamped entry must still pop first.
func TestCalendarEarlyAfterAdvance(t *testing.T) {
	q := newCalendarQueue()
	far := simtime.Time(100 << defaultCalendarShift)
	q.Schedule(far, func(simtime.Time) {})
	q.Schedule(far+10, func(simtime.Time) {})
	if e, _ := q.Pop(); e.At() != far {
		t.Fatalf("first pop %v, want %v", e.At(), far)
	}
	// The cursor now sits at far's bucket; schedule before it.
	q.Schedule(5, func(simtime.Time) {})
	if got := q.NextTime(); got != 5 {
		t.Fatalf("NextTime = %v, want 5 (clamped early entry)", got)
	}
	if e, _ := q.Pop(); e.At() != 5 {
		t.Fatalf("clamped entry did not pop first")
	}
	if e, _ := q.Pop(); e.At() != far+10 {
		t.Fatalf("tail entry lost")
	}
}

// TestCalendarSchedulePopAllocFree: at steady state (bucket slices
// grown, no overflow churn) the calendar push/pop path must be
// allocation-free like the heap's.
func TestCalendarSchedulePopAllocFree(t *testing.T) {
	q := newCalendarQueue()
	q.Grow(64)
	fn := func(simtime.Time) {}
	var at simtime.Time
	step := func() {
		at = at.Add(10 * simtime.Microsecond)
		q.Schedule(at, fn)
		q.Schedule(at+5, fn)
		q.Pop()
		q.Pop()
	}
	for i := 0; i < 4096; i++ { // warm every bucket's slice through one full ring cycle
		step()
	}
	allocs := testing.AllocsPerRun(1000, step)
	if allocs != 0 {
		t.Fatalf("calendar Schedule+Pop allocates %.1f times per run, want 0", allocs)
	}
}

// FuzzQueueEquivalence drives the heap and calendar backends with one
// op stream — schedule (with fuzzer-chosen deltas, including ties and
// beyond-horizon jumps), cancel, pop — and requires identical NextTime
// after every op and an identical pop sequence, both instants and
// callback identities. Together with the uniqueness of (at, seq) this
// is the order-equivalence proof the calendar backend ships under.
func FuzzQueueEquivalence(f *testing.F) {
	f.Add([]byte{0, 10, 0, 20, 2, 2})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 1, 2, 2, 2})
	f.Add([]byte{0, 255, 0, 255, 0, 255, 2, 0, 1, 2, 2, 2})
	f.Add([]byte{0, 200, 3, 0, 5, 1, 0, 2, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		var hq Queue // heap backend
		cq := newCalendarQueue()
		var hGot, cGot []int
		type pair struct{ h, c Handle }
		var live []pair
		id := 0
		at := simtime.Time(0)
		for i := 0; i < len(data); i++ {
			switch data[i] % 4 {
			case 0: // schedule at `at + delta`, deltas stretched to cross buckets and the horizon
				i++
				if i >= len(data) {
					break
				}
				d := simtime.Duration(data[i])
				switch data[i] % 3 {
				case 1:
					d *= simtime.Duration(1) << defaultCalendarShift // bucket-scale jumps
				case 2:
					d *= simtime.Duration(defaultCalendarBuckets) << defaultCalendarShift / 16 // horizon-scale jumps
				}
				when := at.Add(d)
				n := id
				id++
				h := hq.Schedule(when, func(simtime.Time) { hGot = append(hGot, n) })
				c := cq.Schedule(when, func(simtime.Time) { cGot = append(cGot, n) })
				live = append(live, pair{h, c})
			case 1: // cancel a fuzzer-chosen outstanding handle
				i++
				if i >= len(data) || len(live) == 0 {
					break
				}
				j := int(data[i]) % len(live)
				live[j].h.Cancel()
				live[j].c.Cancel()
				if live[j].h.Cancelled() != live[j].c.Cancelled() {
					t.Fatalf("Cancelled() diverged")
				}
				live = append(live[:j], live[j+1:]...)
			case 2: // pop
				he, hok := hq.Pop()
				ce, cok := cq.Pop()
				if hok != cok {
					t.Fatalf("Pop ok diverged: heap %v calendar %v", hok, cok)
				}
				if hok {
					if he.At() != ce.At() {
						t.Fatalf("Pop at diverged: heap %v calendar %v", he.At(), ce.At())
					}
					he.Fire(he.At())
					ce.Fire(ce.At())
					at = he.At() // advance the schedule base like a simulator clock
				}
			case 3: // pop-all burst to force cursor advances
				for j := 0; j < 4; j++ {
					he, hok := hq.Pop()
					ce, cok := cq.Pop()
					if hok != cok {
						t.Fatalf("burst Pop ok diverged")
					}
					if !hok {
						break
					}
					if he.At() != ce.At() {
						t.Fatalf("burst Pop at diverged: heap %v calendar %v", he.At(), ce.At())
					}
					he.Fire(he.At())
					ce.Fire(ce.At())
					at = he.At()
				}
			}
			if hn, cn := hq.NextTime(), cq.NextTime(); hn != cn {
				t.Fatalf("NextTime diverged: heap %v calendar %v", hn, cn)
			}
		}
		// Drain both and require the identical event identity sequence.
		for {
			he, hok := hq.Pop()
			ce, cok := cq.Pop()
			if hok != cok {
				t.Fatalf("drain ok diverged")
			}
			if !hok {
				break
			}
			if he.At() != ce.At() {
				t.Fatalf("drain at diverged")
			}
			he.Fire(he.At())
			ce.Fire(ce.At())
		}
		if len(hGot) != len(cGot) {
			t.Fatalf("fired %d events on heap, %d on calendar", len(hGot), len(cGot))
		}
		for i := range hGot {
			if hGot[i] != cGot[i] {
				t.Fatalf("fired order diverged at %d: heap %v calendar %v", i, hGot, cGot)
			}
		}
	})
}

// TestQueueEquivalenceRandom is the always-on cousin of
// FuzzQueueEquivalence: long random op streams on every `go test` run.
func TestQueueEquivalenceRandom(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		ops := make([]byte, 4096)
		r.Read(ops)
		var hq Queue
		cq := newCalendarQueue()
		at := simtime.Time(0)
		var live []Handle
		var liveC []Handle
		for i := 0; i < len(ops)-1; i += 2 {
			switch ops[i] % 3 {
			case 0:
				d := simtime.Duration(ops[i+1]) * simtime.Duration(1<<uint(ops[i+1]%24))
				when := at.Add(d)
				live = append(live, hq.Schedule(when, func(simtime.Time) {}))
				liveC = append(liveC, cq.Schedule(when, func(simtime.Time) {}))
			case 1:
				if len(live) > 0 {
					j := int(ops[i+1]) % len(live)
					live[j].Cancel()
					liveC[j].Cancel()
					live = append(live[:j], live[j+1:]...)
					liveC = append(liveC[:j], liveC[j+1:]...)
				}
			case 2:
				he, hok := hq.Pop()
				ce, cok := cq.Pop()
				if hok != cok || (hok && he.At() != ce.At()) {
					t.Fatalf("seed %d: pop diverged", seed)
				}
				if hok {
					at = he.At()
				}
			}
			if hq.NextTime() != cq.NextTime() {
				t.Fatalf("seed %d: NextTime diverged", seed)
			}
		}
	}
}

// BenchmarkCalendarSchedulePop mirrors BenchmarkSchedulePop on the
// calendar backend: one push and one pop per iteration, warm queue.
// Events are spaced at the simulator's density (hundreds of µs between
// completions and ticks) so entries spread across buckets; packing the
// whole queue into one bucket degenerates to a linear scan and is not
// the regime the calendar is selected for.
func BenchmarkCalendarSchedulePop(b *testing.B) {
	const spacing = 250 * simtime.Microsecond
	q := newCalendarQueue()
	q.Grow(1024)
	fn := func(simtime.Time) {}
	for i := 0; i < 512; i++ {
		q.Schedule(simtime.Time(0).Add(simtime.Duration(i)*spacing), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	at := simtime.Time(0).Add(512 * spacing)
	for i := 0; i < b.N; i++ {
		q.Schedule(at, fn)
		at = at.Add(spacing)
		q.Pop()
	}
}
