package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"latlab/internal/simtime"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(30, func(simtime.Time) { got = append(got, 3) })
	q.Schedule(10, func(simtime.Time) { got = append(got, 1) })
	q.Schedule(20, func(simtime.Time) { got = append(got, 2) })
	for !q.Empty() {
		e, _ := q.Pop()
		e.Fire(e.At())
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fired order %v, want [1 2 3]", got)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.Schedule(42, func(simtime.Time) { got = append(got, i) })
	}
	for !q.Empty() {
		e, _ := q.Pop()
		e.Fire(e.At())
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of schedule order at %d: %v", i, got[:i+1])
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	h := q.Schedule(10, func(simtime.Time) { fired = true })
	q.Schedule(20, func(simtime.Time) {})
	h.Cancel()
	if !h.Cancelled() {
		t.Fatalf("Cancelled() = false after Cancel")
	}
	if got := q.NextTime(); got != 20 {
		t.Fatalf("NextTime = %v, want 20 (cancelled head skipped)", got)
	}
	if e, ok := q.Pop(); !ok || e.At() != 20 {
		t.Fatalf("Pop returned wrong event")
	}
	if fired {
		t.Fatalf("cancelled event fired")
	}
	if !q.Empty() {
		t.Fatalf("queue should be empty")
	}
}

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if _, ok := q.Pop(); ok {
		t.Fatalf("Pop on empty queue should report not-ok")
	}
	if q.NextTime() != simtime.Never {
		t.Fatalf("NextTime on empty queue should be Never")
	}
	if !q.Empty() || q.Len() != 0 {
		t.Fatalf("zero value should be empty")
	}
	var h Handle
	if h.Valid() || h.Cancelled() {
		t.Fatalf("zero Handle should be invalid and not cancelled")
	}
	h.Cancel() // must be a no-op, not a panic
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Schedule(nil) should panic")
		}
	}()
	var q Queue
	q.Schedule(0, nil)
}

func TestScheduleDuringFire(t *testing.T) {
	// Events scheduled from inside a callback for the same instant must
	// fire after the current event but before later instants.
	var q Queue
	var got []string
	q.Schedule(10, func(now simtime.Time) {
		got = append(got, "a")
		q.Schedule(now, func(simtime.Time) { got = append(got, "a-child") })
	})
	q.Schedule(20, func(simtime.Time) { got = append(got, "b") })
	for !q.Empty() {
		e, _ := q.Pop()
		e.Fire(e.At())
	}
	want := []string{"a", "a-child", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// TestStaleHandleInert checks that a handle outliving its event cannot
// affect a later event that recycled the same ticket slot.
func TestStaleHandleInert(t *testing.T) {
	var q Queue
	h := q.Schedule(10, func(simtime.Time) {})
	if _, ok := q.Pop(); !ok {
		t.Fatal("pop failed")
	}
	fired := false
	q.Schedule(20, func(simtime.Time) { fired = true })
	h.Cancel() // stale: must not cancel the recycled slot
	if h.Cancelled() {
		t.Fatalf("stale handle reports cancelled")
	}
	if e, ok := q.Pop(); !ok {
		t.Fatal("live event was skipped")
	} else {
		e.Fire(e.At())
	}
	if !fired {
		t.Fatalf("recycled-slot event did not fire")
	}
}

// TestGrowPreservesContents checks Grow against a non-empty queue.
func TestGrowPreservesContents(t *testing.T) {
	var q Queue
	for i := 0; i < 10; i++ {
		q.Schedule(simtime.Time(10-i), func(simtime.Time) {})
	}
	q.Grow(1024)
	var prev simtime.Time = -1
	for !q.Empty() {
		e, _ := q.Pop()
		if e.At() < prev {
			t.Fatalf("order broken after Grow")
		}
		prev = e.At()
	}
}

// TestSchedulePopAllocFree is the allocation budget for the hot path: a
// pre-grown queue must push and pop without allocating. The tentpole
// perf work depends on this staying at zero.
func TestSchedulePopAllocFree(t *testing.T) {
	var q Queue
	q.Grow(64)
	fn := func(simtime.Time) {}
	var at simtime.Time
	allocs := testing.AllocsPerRun(1000, func() {
		at += 10
		q.Schedule(at, fn)
		q.Schedule(at+5, fn)
		q.Pop()
		q.Pop()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Pop allocates %.1f times per run, want 0", allocs)
	}
}

// TestCancelAllocFree: cancel plus the lazy skip must also be free.
func TestCancelAllocFree(t *testing.T) {
	var q Queue
	q.Grow(64)
	fn := func(simtime.Time) {}
	var at simtime.Time
	allocs := testing.AllocsPerRun(1000, func() {
		at += 10
		h := q.Schedule(at, fn)
		q.Schedule(at+1, fn)
		h.Cancel()
		q.Pop()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Cancel+Pop allocates %.1f times per run, want 0", allocs)
	}
}

// Property: popping a randomly scheduled set of events yields them in
// non-decreasing time order, and within equal times, in scheduling order.
func TestPopOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		type rec struct {
			at  simtime.Time
			seq int
		}
		var scheduled []rec
		var popped []rec
		for i := 0; i < int(n); i++ {
			at := simtime.Time(r.Intn(16)) // small range to force ties
			i := i
			q.Schedule(at, func(simtime.Time) {})
			scheduled = append(scheduled, rec{at, i})
			_ = i
		}
		for {
			e, ok := q.Pop()
			if !ok {
				break
			}
			popped = append(popped, rec{e.At(), 0})
		}
		if len(popped) != len(scheduled) {
			return false
		}
		sort.SliceStable(scheduled, func(i, j int) bool { return scheduled[i].at < scheduled[j].at })
		for i := range popped {
			if popped[i].at != scheduled[i].at {
				return false
			}
			if i > 0 && popped[i].at < popped[i-1].at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset never perturbs the relative
// order of the survivors.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		var handles []Handle
		var keepAt []simtime.Time
		for i := 0; i < int(n); i++ {
			at := simtime.Time(r.Intn(1000))
			handles = append(handles, q.Schedule(at, func(simtime.Time) {}))
		}
		for _, h := range handles {
			if r.Intn(2) == 0 {
				h.Cancel()
			} else {
				keepAt = append(keepAt, h.At())
			}
		}
		sort.Slice(keepAt, func(i, j int) bool { return keepAt[i] < keepAt[j] })
		var got []simtime.Time
		for {
			e, ok := q.Pop()
			if !ok {
				break
			}
			got = append(got, e.At())
		}
		if len(got) != len(keepAt) {
			return false
		}
		for i := range got {
			if got[i] != keepAt[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkSchedulePop is the raw queue hot path: one push and one pop
// per iteration against a warm queue.
func BenchmarkSchedulePop(b *testing.B) {
	var q Queue
	q.Grow(1024)
	fn := func(simtime.Time) {}
	for i := 0; i < 512; i++ {
		q.Schedule(simtime.Time(i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	at := simtime.Time(512)
	for i := 0; i < b.N; i++ {
		q.Schedule(at, fn)
		at++
		q.Pop()
	}
}
