package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"latlab/internal/simtime"
)

func TestOrdering(t *testing.T) {
	var q Queue
	var got []int
	q.Schedule(30, func(simtime.Time) { got = append(got, 3) })
	q.Schedule(10, func(simtime.Time) { got = append(got, 1) })
	q.Schedule(20, func(simtime.Time) { got = append(got, 2) })
	for !q.Empty() {
		e := q.Pop()
		e.Fire(e.At())
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("fired order %v, want [1 2 3]", got)
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var q Queue
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		q.Schedule(42, func(simtime.Time) { got = append(got, i) })
	}
	for !q.Empty() {
		e := q.Pop()
		e.Fire(e.At())
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events fired out of schedule order at %d: %v", i, got[:i+1])
		}
	}
}

func TestCancel(t *testing.T) {
	var q Queue
	fired := false
	e := q.Schedule(10, func(simtime.Time) { fired = true })
	q.Schedule(20, func(simtime.Time) {})
	e.Cancel()
	if !e.Cancelled() {
		t.Fatalf("Cancelled() = false after Cancel")
	}
	if got := q.NextTime(); got != 20 {
		t.Fatalf("NextTime = %v, want 20 (cancelled head skipped)", got)
	}
	if q.Pop().At() != 20 {
		t.Fatalf("Pop returned wrong event")
	}
	if fired {
		t.Fatalf("cancelled event fired")
	}
	if !q.Empty() {
		t.Fatalf("queue should be empty")
	}
}

func TestEmptyQueue(t *testing.T) {
	var q Queue
	if q.Pop() != nil {
		t.Fatalf("Pop on empty queue should return nil")
	}
	if q.NextTime() != simtime.Never {
		t.Fatalf("NextTime on empty queue should be Never")
	}
	if !q.Empty() || q.Len() != 0 {
		t.Fatalf("zero value should be empty")
	}
}

func TestNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Schedule(nil) should panic")
		}
	}()
	var q Queue
	q.Schedule(0, nil)
}

func TestScheduleDuringFire(t *testing.T) {
	// Events scheduled from inside a callback for the same instant must
	// fire after the current event but before later instants.
	var q Queue
	var got []string
	q.Schedule(10, func(now simtime.Time) {
		got = append(got, "a")
		q.Schedule(now, func(simtime.Time) { got = append(got, "a-child") })
	})
	q.Schedule(20, func(simtime.Time) { got = append(got, "b") })
	for !q.Empty() {
		e := q.Pop()
		e.Fire(e.At())
	}
	want := []string{"a", "a-child", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

// Property: popping a randomly scheduled set of events yields them in
// non-decreasing time order, and within equal times, in scheduling order.
func TestPopOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		type rec struct {
			at  simtime.Time
			seq int
		}
		var scheduled []rec
		var popped []rec
		for i := 0; i < int(n); i++ {
			at := simtime.Time(r.Intn(16)) // small range to force ties
			i := i
			q.Schedule(at, func(simtime.Time) {})
			scheduled = append(scheduled, rec{at, i})
			_ = i
		}
		for {
			e := q.Pop()
			if e == nil {
				break
			}
			popped = append(popped, rec{e.At(), 0})
		}
		if len(popped) != len(scheduled) {
			return false
		}
		sort.SliceStable(scheduled, func(i, j int) bool { return scheduled[i].at < scheduled[j].at })
		for i := range popped {
			if popped[i].at != scheduled[i].at {
				return false
			}
			if i > 0 && popped[i].at < popped[i-1].at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: cancelling an arbitrary subset never perturbs the relative
// order of the survivors.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		var q Queue
		var events []*Event
		var keepAt []simtime.Time
		for i := 0; i < int(n); i++ {
			at := simtime.Time(r.Intn(1000))
			events = append(events, q.Schedule(at, func(simtime.Time) {}))
		}
		for _, e := range events {
			if r.Intn(2) == 0 {
				e.Cancel()
			} else {
				keepAt = append(keepAt, e.At())
			}
		}
		sort.Slice(keepAt, func(i, j int) bool { return keepAt[i] < keepAt[j] })
		var got []simtime.Time
		for {
			e := q.Pop()
			if e == nil {
				break
			}
			got = append(got, e.At())
		}
		if len(got) != len(keepAt) {
			return false
		}
		for i := range got {
			if got[i] != keepAt[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
