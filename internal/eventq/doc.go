// Package eventq implements the discrete-event queue at the heart of
// the latlab simulator.
//
// Events are ordered by (time, sequence number): two events scheduled
// for the same instant fire in the order they were scheduled, which
// keeps the whole simulation deterministic. Cancellation is lazy — a
// cancelled event stays in the heap but is skipped when popped — so
// cancel is O(1) and the queue never needs to locate arbitrary entries.
//
// The queue is allocation-free on the push/pop path: entries are stored
// by value in a pre-grown 4-ary heap (shallower than a binary heap, so
// fewer cache lines touched per sift), and cancellation state lives in
// a recycled ticket slab addressed by Handle rather than in per-event
// heap allocations. Scheduling a million events costs a handful of
// slice growths, all amortized away by Grow or steady-state reuse.
//
// Invariants:
//
//   - Total order. Pop returns events in strictly non-decreasing time;
//     equal times break by schedule order, never by memory layout or
//     map iteration, so replaying a run replays the exact schedule.
//   - No time travel. Pushing an event earlier than the last popped
//     time is the caller's bug; the queue does not rewind.
//   - Handles stay cheap. A Handle is two integers; using one after
//     its ticket was recycled is detected by generation check rather
//     than corrupting the heap.
package eventq
