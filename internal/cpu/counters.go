package cpu

import (
	"errors"

	"latlab/internal/simtime"
)

// Mode is the processor privilege mode from which a counter access is
// attempted. The paper notes (§2.2) that the Pentium cycle counter is
// readable from user or system mode, but the two event counters can only
// be read and configured from system mode.
type Mode uint8

// Privilege modes.
const (
	UserMode Mode = iota
	SystemMode
)

// ErrPrivileged is returned when an event-counter access is attempted
// from user mode.
var ErrPrivileged = errors.New("cpu: event counters require system mode")

// ErrBadCounter is returned for a counter index other than 0 or 1.
var ErrBadCounter = errors.New("cpu: counter index out of range (two event counters)")

// counterMask truncates event counters to 40 bits, as on the Pentium.
const counterMask = 1<<40 - 1

// CounterFile models the Pentium's performance-monitoring registers: one
// 64-bit free-running cycle counter and two 40-bit configurable event
// counters. Configuring a counter resets its accumulated value, so a
// measurement is "configure, run, read".
type CounterFile struct {
	cpu  *CPU
	sel  [2]EventKind
	base [2]int64
	on   [2]bool
}

// NewCounterFile returns the counter file of c.
func NewCounterFile(c *CPU) *CounterFile { return &CounterFile{cpu: c} }

// ReadCycles returns the 64-bit cycle counter at instant now. Readable
// from any mode.
func (f *CounterFile) ReadCycles(now simtime.Time) int64 {
	return f.cpu.CycleAt(now)
}

// Configure selects the event counted by event counter i and zeroes it.
// System mode only.
func (f *CounterFile) Configure(m Mode, i int, k EventKind) error {
	if m != SystemMode {
		return ErrPrivileged
	}
	if i < 0 || i > 1 {
		return ErrBadCounter
	}
	if k >= NumEventKinds {
		return errors.New("cpu: unknown event kind")
	}
	f.sel[i] = k
	f.base[i] = f.cpu.Count(k)
	f.on[i] = true
	return nil
}

// Read returns the 40-bit value of event counter i. System mode only.
func (f *CounterFile) Read(m Mode, i int) (int64, error) {
	if m != SystemMode {
		return 0, ErrPrivileged
	}
	if i < 0 || i > 1 {
		return 0, ErrBadCounter
	}
	if !f.on[i] {
		return 0, nil
	}
	return (f.cpu.Count(f.sel[i]) - f.base[i]) & counterMask, nil
}

// Selected returns the event kind counter i is configured for and whether
// it has been configured.
func (f *CounterFile) Selected(i int) (EventKind, bool) {
	if i < 0 || i > 1 {
		return 0, false
	}
	return f.sel[i], f.on[i]
}
