// Package cpu models the simulated processor: a clock (the paper's
// 100 MHz Pentium by default, any machine.Profile otherwise), per-event
// hardware counters, and a cost model that turns code-segment
// descriptions into cycle counts via the memory system.
//
// The central idea is that latency differences between OS personalities
// must *emerge* from mechanism — a protection-domain crossing flushes the
// TLBs, so the next execution of the same working set misses and pays
// penalty cycles — rather than being asserted as constants. That is what
// lets the paper's counter-based attribution (Figs. 9-10) be reproduced
// faithfully: the counters and the latency move together because one
// causes the other.
package cpu

import (
	"latlab/internal/machine"
	"latlab/internal/mem"
	"latlab/internal/simtime"
	"latlab/internal/spans"
)

// Penalties holds the cycle costs of memory-system events.
type Penalties struct {
	// TLBMiss is the cost of one TLB miss. The paper uses 20 cycles as a
	// lower bound for Pentium TLB-miss handling (§5.3); the hardware walk
	// typically costs more, so the default is a little higher.
	TLBMiss int64
	// CacheMiss is the cost of one cache miss to DRAM.
	CacheMiss int64
	// SegmentLoad is the cost of one segment-register load (16-bit code).
	SegmentLoad int64
	// Unaligned is the extra cost of one misaligned access.
	Unaligned int64
	// DomainCrossing is the direct cost of a protection boundary switch,
	// excluding the consequential TLB refill misses.
	DomainCrossing int64
}

// DefaultPenalties returns the cost model used by all experiments; it
// equals PenaltiesFor(machine.Pentium100()).
func DefaultPenalties() Penalties {
	return Penalties{
		TLBMiss:        25,
		CacheMiss:      20,
		SegmentLoad:    12,
		Unaligned:      3,
		DomainCrossing: 500,
	}
}

// PenaltiesFor derives the memory-event cost model from a hardware
// profile: the TLB-miss cost is the page walk, the cache-miss cost the
// DRAM latency, both in cycles of that profile's clock. DomainCrossing
// is an OS/architecture cost, not a hardware one, so it keeps the
// default here and is overridden per persona.
func PenaltiesFor(prof machine.Profile) Penalties {
	prof = prof.OrDefault()
	return Penalties{
		TLBMiss:        prof.TLBMissCycles,
		CacheMiss:      prof.DRAMLatencyCycles,
		SegmentLoad:    prof.SegLoadCycles,
		Unaligned:      prof.UnalignedCycles,
		DomainCrossing: 500,
	}
}

// Segment describes one unit of code execution: its base cost with a warm
// memory system, its working set, and the countable events it performs.
// Segments are value types; the same Segment executed twice in a row is
// cheaper the second time because its working set is resident.
type Segment struct {
	// Name labels the segment in traces.
	Name string
	// BaseCycles is the cost with all TLB and cache accesses hitting.
	BaseCycles int64
	// CodePages and DataPages identify the TLB working set.
	CodePages []uint64
	DataPages []uint64
	// CacheChunks identifies the cache working set.
	CacheChunks []uint64
	// Instructions and DataRefs are counter feed only (no cost beyond
	// BaseCycles); roughly proportional to cycles on a warm machine, as
	// the paper observes in §4.
	Instructions int64
	DataRefs     int64
	// SegmentLoads and UnalignedAccesses add per-event cost — the 16-bit
	// code signature.
	SegmentLoads      int64
	UnalignedAccesses int64
}

// Scale returns a copy of s with all counts and base cycles multiplied by
// k (working sets unchanged). Useful for building larger operations from
// a unit descriptor.
func (s Segment) Scale(k int64) Segment {
	c := s
	c.BaseCycles *= k
	c.Instructions *= k
	c.DataRefs *= k
	c.SegmentLoads *= k
	c.UnalignedAccesses *= k
	return c
}

// CPU is the simulated processor. It is not safe for concurrent use; the
// simulator is single-threaded.
type CPU struct {
	Freq      simtime.Hz
	Mem       *mem.System
	Penalties Penalties

	counts [NumEventKinds]int64
	rec    *spans.Recorder
	clock  func() simtime.Time
	// eff is the current operating clock under DVFS; 0 means the CPU
	// runs at Freq (the fixed-clock machines never touch it).
	eff simtime.Hz
}

// Clock returns the current operating frequency: the DVFS level when a
// governor has set one, Freq otherwise.
func (c *CPU) Clock() simtime.Hz {
	if c.eff != 0 {
		return c.eff
	}
	return c.Freq
}

// SetClock moves the operating point to hz (a DVFS level transition);
// 0 restores the base clock. The cycle counter (CycleAt) is invariant —
// it keeps ticking at Freq, like a modern x86 TSC — so changing the
// operating point changes how long work takes, not how time is read.
func (c *CPU) SetClock(hz simtime.Hz) { c.eff = hz }

// DurationOf converts a cycle count to wall time at the current
// operating frequency.
func (c *CPU) DurationOf(cycles int64) simtime.Duration {
	if c.eff != 0 {
		return c.eff.DurationOf(cycles)
	}
	return c.Freq.DurationOf(cycles)
}

// SetRecorder attaches a span recorder reading simulated time from
// clock; recording propagates to the memory system. A nil recorder
// restores the untraced hot path exactly.
func (c *CPU) SetRecorder(rec *spans.Recorder, clock func() simtime.Time) {
	c.rec, c.clock = rec, clock
	c.Mem.SetRecorder(rec)
}

// New returns a CPU for the paper's machine.
//
// Deprecated: use NewFor(machine.Pentium100()) — New is the thin
// compatibility wrapper kept so pre-profile call sites migrate
// mechanically.
func New() *CPU {
	return NewFor(machine.Pentium100())
}

// NewFor returns a CPU for the given hardware profile: its clock, a
// memory system with the profile's TLB and L2 capacities (and tagged-TLB
// behaviour), and profile-derived penalties.
func NewFor(prof machine.Profile) *CPU {
	prof = prof.OrDefault()
	prof.ClockHz.Validate()
	return &CPU{
		Freq:      prof.ClockHz,
		Mem:       mem.NewSystem(mem.ConfigFor(prof)),
		Penalties: PenaltiesFor(prof),
	}
}

// Count returns the accumulated count for an event kind.
func (c *CPU) Count(k EventKind) int64 { return c.counts[k] }

// Add increments an event counter by n (used by devices, e.g. the
// interrupt controller counting Interrupts).
func (c *CPU) Add(k EventKind, n int64) { c.counts[k] += n }

// Snapshot returns a copy of all event counts.
func (c *CPU) Snapshot() [NumEventKinds]int64 { return c.counts }

// Execute runs a segment against the memory system and returns its cost.
// It updates the event counters as a side effect.
func (c *CPU) Execute(seg Segment) (cycles int64, d simtime.Duration) {
	if c.rec != nil {
		return c.executeTraced(seg)
	}
	im := c.Mem.TouchCode(seg.CodePages)
	dm := c.Mem.TouchData(seg.DataPages)
	cm := c.Mem.TouchCache(seg.CacheChunks)

	cycles = seg.BaseCycles
	cycles += int64(im+dm) * c.Penalties.TLBMiss
	cycles += int64(cm) * c.Penalties.CacheMiss
	cycles += seg.SegmentLoads * c.Penalties.SegmentLoad
	cycles += seg.UnalignedAccesses * c.Penalties.Unaligned

	c.counts[Instructions] += seg.Instructions
	c.counts[DataRefs] += seg.DataRefs
	c.counts[ITLBMisses] += int64(im)
	c.counts[DTLBMisses] += int64(dm)
	c.counts[CacheMisses] += int64(cm)
	c.counts[SegmentLoads] += seg.SegmentLoads
	c.counts[UnalignedAccesses] += seg.UnalignedAccesses

	return cycles, c.DurationOf(cycles)
}

// DomainCross models a protection-domain crossing: it flushes both TLBs
// (untagged-Pentium behaviour; a no-op on a tagged-TLB machine), counts
// the event, and returns the direct cost.
func (c *CPU) DomainCross() (cycles int64, d simtime.Duration) {
	c.Mem.FlushTLBs()
	c.counts[DomainCrossings]++
	cycles = c.Penalties.DomainCrossing
	d = c.DurationOf(cycles)
	if c.rec != nil {
		now := c.clock()
		c.rec.ChargeSpan(spans.CauseDomainCross, "cross", now, now.Add(d), cycles, 1)
	}
	return cycles, d
}

// executeTraced is Execute with span emission: one CauseExec container
// covering the whole segment, with leaf children laid out sequentially
// in the order the hardware would pay them — base work first, then TLB
// refills, cache fills, segment loads, and unaligned fixups. The cost
// arithmetic and counter updates are identical to the untraced path.
func (c *CPU) executeTraced(seg Segment) (cycles int64, d simtime.Duration) {
	im := c.Mem.TouchCode(seg.CodePages)
	dm := c.Mem.TouchData(seg.DataPages)
	cm := c.Mem.TouchCache(seg.CacheChunks)

	tlbMisses := int64(im + dm)
	tlbCyc := tlbMisses * c.Penalties.TLBMiss
	cacheCyc := int64(cm) * c.Penalties.CacheMiss
	segCyc := seg.SegmentLoads * c.Penalties.SegmentLoad
	unalCyc := seg.UnalignedAccesses * c.Penalties.Unaligned
	cycles = seg.BaseCycles + tlbCyc + cacheCyc + segCyc + unalCyc

	c.counts[Instructions] += seg.Instructions
	c.counts[DataRefs] += seg.DataRefs
	c.counts[ITLBMisses] += int64(im)
	c.counts[DTLBMisses] += int64(dm)
	c.counts[CacheMisses] += int64(cm)
	c.counts[SegmentLoads] += seg.SegmentLoads
	c.counts[UnalignedAccesses] += seg.UnalignedAccesses

	d = c.DurationOf(cycles)
	t := c.clock()
	ex := c.rec.BeginAt(spans.CauseExec, seg.Name, t)
	charge := func(cause spans.Cause, cyc, count int64) {
		if cyc == 0 && count == 0 {
			return
		}
		end := t.Add(c.DurationOf(cyc))
		c.rec.ChargeSpan(cause, seg.Name, t, end, cyc, count)
		t = end
	}
	charge(spans.CauseBase, seg.BaseCycles, 0)
	charge(spans.CauseTLBMiss, tlbCyc, tlbMisses)
	charge(spans.CauseCacheMiss, cacheCyc, int64(cm))
	charge(spans.CauseSegLoad, segCyc, seg.SegmentLoads)
	charge(spans.CauseUnaligned, unalCyc, seg.UnalignedAccesses)
	c.rec.EndAt(ex, t)

	return cycles, d
}

// CycleAt returns the free-running 64-bit cycle counter value at instant
// t. The counter ticks with time, not with work (it is the Pentium TSC),
// and it is *invariant*: it always advances at the base clock Freq even
// when DVFS has moved the operating point, like a modern x86 TSC. Code
// that converts TSC deltas to wall time at the base frequency — the
// idle-loop instrument does exactly this — stays calibrated across
// frequency transitions, but observes elongated samples while the clock
// is below max. That distortion is a modeled phenomenon, not a bug; see
// the ext-modern-dvfs experiment.
func (c *CPU) CycleAt(t simtime.Time) int64 { return c.Freq.CycleAt(t) }
