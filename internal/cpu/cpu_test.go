package cpu

import (
	"testing"
	"testing/quick"

	"latlab/internal/machine"
	"latlab/internal/simtime"
	"latlab/internal/spans"
)

func TestEventKindStrings(t *testing.T) {
	if Instructions.String() != "instructions" || SegmentLoads.String() != "segment_loads" {
		t.Fatalf("event names wrong")
	}
	if EventKind(200).String() == "" {
		t.Fatalf("unknown kind should still format")
	}
	if len(EventKinds()) != int(NumEventKinds) {
		t.Fatalf("EventKinds length wrong")
	}
	for i, k := range EventKinds() {
		if int(k) != i {
			t.Fatalf("EventKinds out of order")
		}
	}
}

func TestExecuteWarmVsCold(t *testing.T) {
	c := New()
	seg := Segment{
		Name:         "op",
		BaseCycles:   1000,
		CodePages:    []uint64{1, 2},
		DataPages:    []uint64{10},
		CacheChunks:  []uint64{100, 101, 102},
		Instructions: 800,
		DataRefs:     300,
	}
	coldCycles, coldDur := c.Execute(seg)
	wantCold := int64(1000) + 3*c.Penalties.TLBMiss + 3*c.Penalties.CacheMiss
	if coldCycles != wantCold {
		t.Fatalf("cold cycles = %d, want %d", coldCycles, wantCold)
	}
	if coldDur != c.Freq.DurationOf(wantCold) {
		t.Fatalf("cold duration = %v", coldDur)
	}
	warmCycles, _ := c.Execute(seg)
	if warmCycles != 1000 {
		t.Fatalf("warm cycles = %d, want 1000 (all hits)", warmCycles)
	}
	if c.Count(Instructions) != 1600 || c.Count(DataRefs) != 600 {
		t.Fatalf("instruction/dataref counters wrong: %d/%d", c.Count(Instructions), c.Count(DataRefs))
	}
	if c.Count(ITLBMisses) != 2 || c.Count(DTLBMisses) != 1 || c.Count(CacheMisses) != 3 {
		t.Fatalf("miss counters wrong: %d/%d/%d", c.Count(ITLBMisses), c.Count(DTLBMisses), c.Count(CacheMisses))
	}
}

func TestDomainCrossCausesTLBMissesButNotCacheMisses(t *testing.T) {
	c := New()
	seg := Segment{
		BaseCycles:  100,
		CodePages:   []uint64{1, 2, 3},
		DataPages:   []uint64{10, 11},
		CacheChunks: []uint64{50},
	}
	c.Execute(seg) // warm everything
	warm, _ := c.Execute(seg)

	crossCycles, _ := c.DomainCross()
	if crossCycles != c.Penalties.DomainCrossing {
		t.Fatalf("crossing cost = %d", crossCycles)
	}
	if c.Count(DomainCrossings) != 1 {
		t.Fatalf("crossing not counted")
	}

	after, _ := c.Execute(seg)
	wantAfter := warm + 5*c.Penalties.TLBMiss // 3 code + 2 data pages refill
	if after != wantAfter {
		t.Fatalf("post-crossing cycles = %d, want %d (TLB refill only)", after, wantAfter)
	}
	if c.Count(CacheMisses) != 1 {
		t.Fatalf("cache should survive the crossing; misses = %d", c.Count(CacheMisses))
	}
}

func TestSegment16BitCosts(t *testing.T) {
	c := New()
	seg := Segment{BaseCycles: 100, SegmentLoads: 10, UnalignedAccesses: 20}
	cycles, _ := c.Execute(seg)
	want := int64(100) + 10*c.Penalties.SegmentLoad + 20*c.Penalties.Unaligned
	if cycles != want {
		t.Fatalf("16-bit cycles = %d, want %d", cycles, want)
	}
	if c.Count(SegmentLoads) != 10 || c.Count(UnalignedAccesses) != 20 {
		t.Fatalf("16-bit counters wrong")
	}
}

func TestSegmentScale(t *testing.T) {
	seg := Segment{BaseCycles: 10, Instructions: 8, DataRefs: 3, SegmentLoads: 1,
		UnalignedAccesses: 2, CodePages: []uint64{1}}
	s3 := seg.Scale(3)
	if s3.BaseCycles != 30 || s3.Instructions != 24 || s3.DataRefs != 9 ||
		s3.SegmentLoads != 3 || s3.UnalignedAccesses != 6 {
		t.Fatalf("scale wrong: %+v", s3)
	}
	if len(s3.CodePages) != 1 {
		t.Fatalf("working set should be unchanged by Scale")
	}
	if seg.BaseCycles != 10 {
		t.Fatalf("Scale mutated the receiver")
	}
}

func TestAddAndSnapshot(t *testing.T) {
	c := New()
	c.Add(Interrupts, 5)
	if c.Count(Interrupts) != 5 {
		t.Fatalf("Add not reflected")
	}
	snap := c.Snapshot()
	c.Add(Interrupts, 1)
	if snap[Interrupts] != 5 {
		t.Fatalf("snapshot should be a copy")
	}
}

func TestCycleAt(t *testing.T) {
	c := New()
	if got := c.CycleAt(simtime.Time(simtime.Millisecond)); got != 100_000 {
		t.Fatalf("CycleAt(1ms) = %d", got)
	}
}

// Property: executing any segment twice back-to-back is never more
// expensive the second time (warmth is monotone) as long as the working
// set fits in the memory structures.
func TestWarmthMonotoneProperty(t *testing.T) {
	f := func(nCode, nData, nChunk uint8, base uint16) bool {
		c := New()
		seg := Segment{BaseCycles: int64(base)}
		for i := uint8(0); i < nCode%16; i++ {
			seg.CodePages = append(seg.CodePages, uint64(i))
		}
		for i := uint8(0); i < nData%16; i++ {
			seg.DataPages = append(seg.DataPages, uint64(i))
		}
		for i := uint8(0); i < nChunk%64; i++ {
			seg.CacheChunks = append(seg.CacheChunks, uint64(i))
		}
		cold, _ := c.Execute(seg)
		warm, _ := c.Execute(seg)
		return warm <= cold && warm == seg.BaseCycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCounterFileModeRestrictions(t *testing.T) {
	c := New()
	f := NewCounterFile(c)

	// Cycle counter: any mode.
	if got := f.ReadCycles(simtime.Time(simtime.Second)); got != 100_000_000 {
		t.Fatalf("ReadCycles = %d", got)
	}

	// Event counters: system mode only (paper §2.2).
	if err := f.Configure(UserMode, 0, ITLBMisses); err != ErrPrivileged {
		t.Fatalf("user-mode Configure err = %v, want ErrPrivileged", err)
	}
	if _, err := f.Read(UserMode, 0); err != ErrPrivileged {
		t.Fatalf("user-mode Read err = %v, want ErrPrivileged", err)
	}
	if err := f.Configure(SystemMode, 2, ITLBMisses); err != ErrBadCounter {
		t.Fatalf("bad index err = %v", err)
	}
	if err := f.Configure(SystemMode, 0, NumEventKinds); err == nil {
		t.Fatalf("unknown event should error")
	}
}

func TestCounterFileMeasurement(t *testing.T) {
	c := New()
	f := NewCounterFile(c)
	seg := Segment{BaseCycles: 10, CodePages: []uint64{1, 2}}
	c.Execute(seg) // activity before configuration must not leak in

	if err := f.Configure(SystemMode, 0, ITLBMisses); err != nil {
		t.Fatal(err)
	}
	if err := f.Configure(SystemMode, 1, Instructions); err != nil {
		t.Fatal(err)
	}
	if v, _ := f.Read(SystemMode, 0); v != 0 {
		t.Fatalf("configured counter should start at 0, got %d", v)
	}

	c.Mem.FlushTLBs()
	c.Execute(seg)
	if v, _ := f.Read(SystemMode, 0); v != 2 {
		t.Fatalf("ITLB counter = %d, want 2", v)
	}
	k, on := f.Selected(0)
	if !on || k != ITLBMisses {
		t.Fatalf("Selected = %v,%v", k, on)
	}
	if _, on := f.Selected(5); on {
		t.Fatalf("out-of-range Selected should be off")
	}
	// Unconfigured counters read as zero.
	f2 := NewCounterFile(c)
	if v, err := f2.Read(SystemMode, 1); err != nil || v != 0 {
		t.Fatalf("unconfigured read = %d, %v", v, err)
	}
}

func TestNewForTaggedTLBSurvivesDomainCross(t *testing.T) {
	c := NewFor(machine.PentiumTaggedTLB())
	seg := Segment{BaseCycles: 100, CodePages: []uint64{1, 2}, DataPages: []uint64{10}}
	c.Execute(seg) // warm
	c.DomainCross()
	after, _ := c.Execute(seg)
	if after != seg.BaseCycles {
		t.Fatalf("tagged machine paid %d cycles after crossing, want warm %d", after, seg.BaseCycles)
	}
	// The crossing's direct cost is still paid; only the refill vanishes.
	if c.Count(DomainCrossings) != 1 {
		t.Fatalf("crossing not counted")
	}
}

func TestNewForNoL2NeverWarms(t *testing.T) {
	c := NewFor(machine.P100NoL2())
	seg := Segment{BaseCycles: 100, CacheChunks: []uint64{1, 2, 3}}
	c.Execute(seg)
	warm, _ := c.Execute(seg)
	if want := int64(100) + 3*c.Penalties.CacheMiss; warm != want {
		t.Fatalf("no-L2 second run = %d cycles, want %d (cache never warms)", warm, want)
	}
}

// The profile indirection must not reintroduce allocations on the hot
// path: warm execution, a domain crossing, and the TLB refill it causes
// all recycle LRU slots instead of allocating.
func TestExecuteHotPathAllocFree(t *testing.T) {
	for _, prof := range machine.All() {
		c := NewFor(prof)
		seg := Segment{
			BaseCycles:  1000,
			CodePages:   []uint64{1, 2, 3},
			DataPages:   []uint64{10, 11},
			CacheChunks: []uint64{50, 51},
		}
		c.Execute(seg) // populate the slabs
		if avg := testing.AllocsPerRun(200, func() {
			c.Execute(seg)
			c.DomainCross()
			c.Execute(seg)
		}); avg != 0 {
			t.Fatalf("%s: execute/cross/execute allocates %.1f per run", prof.Short, avg)
		}
	}
}

// With a recorder attached the hot path may append spans but must not
// allocate once the recorder's slab is pre-grown; detaching it restores
// the exact untraced path (zero appends, zero allocations).
func TestExecuteTracedAllocBounded(t *testing.T) {
	c := New()
	rec := spans.NewRecorder(func() simtime.Time { return 0 })
	rec.Grow(1 << 16)
	c.SetRecorder(rec, func() simtime.Time { return 0 })
	seg := Segment{
		Name:        "seg",
		BaseCycles:  1000,
		CodePages:   []uint64{1, 2, 3},
		DataPages:   []uint64{10, 11},
		CacheChunks: []uint64{50, 51},
	}
	c.Execute(seg)
	if avg := testing.AllocsPerRun(200, func() {
		c.Execute(seg)
		c.DomainCross()
		c.Execute(seg)
	}); avg != 0 {
		t.Fatalf("traced execute/cross/execute allocates %.1f per run", avg)
	}
	if rec.Len() == 0 {
		t.Fatal("recorder captured nothing")
	}

	c.SetRecorder(nil, nil)
	before := rec.Len()
	c.Execute(seg)
	c.DomainCross()
	if rec.Len() != before {
		t.Fatal("detached recorder still captured spans")
	}
}

// The traced cost model must charge exactly what the untraced one does.
func TestTracedExecuteCostIdentical(t *testing.T) {
	seg := Segment{
		Name:              "seg",
		BaseCycles:        1000,
		CodePages:         []uint64{1, 2, 3},
		DataPages:         []uint64{10, 11},
		CacheChunks:       []uint64{50, 51},
		SegmentLoads:      4,
		UnalignedAccesses: 7,
		Instructions:      500,
		DataRefs:          200,
	}
	plain := New()
	traced := New()
	rec := spans.NewRecorder(func() simtime.Time { return 0 })
	traced.SetRecorder(rec, func() simtime.Time { return 0 })
	for i := 0; i < 3; i++ {
		pc, pd := plain.Execute(seg)
		tc2, td := traced.Execute(seg)
		if pc != tc2 || pd != td {
			t.Fatalf("run %d: traced (%d, %v) != untraced (%d, %v)", i, tc2, td, pc, pd)
		}
		plain.DomainCross()
		traced.DomainCross()
	}
	if plain.Snapshot() != traced.Snapshot() {
		t.Fatalf("counters diverged:\nplain  %v\ntraced %v", plain.Snapshot(), traced.Snapshot())
	}
}
