package cpu

import "fmt"

// EventKind enumerates the hardware events the simulated processor can
// count — the subset of Pentium counter events the paper's Figures 9 and
// 10 report, plus a few the analysis text references.
type EventKind uint8

// Hardware event kinds.
const (
	// Instructions counts retired instructions.
	Instructions EventKind = iota
	// DataRefs counts data memory references.
	DataRefs
	// ITLBMisses counts instruction-TLB misses.
	ITLBMisses
	// DTLBMisses counts data-TLB misses.
	DTLBMisses
	// CacheMisses counts unified cache misses.
	CacheMisses
	// Interrupts counts hardware interrupts taken.
	Interrupts
	// SegmentLoads counts segment-register loads — the signature of
	// 16-bit Windows code paths (paper §4, §5.3).
	SegmentLoads
	// UnalignedAccesses counts misaligned data accesses, likewise
	// characteristic of 16-bit code.
	UnalignedAccesses
	// DomainCrossings counts protection-domain crossings (each flushes
	// the TLBs on a Pentium).
	DomainCrossings

	// NumEventKinds is the number of defined event kinds.
	NumEventKinds
)

var eventNames = [NumEventKinds]string{
	"instructions",
	"data_refs",
	"itlb_misses",
	"dtlb_misses",
	"cache_misses",
	"interrupts",
	"segment_loads",
	"unaligned_accesses",
	"domain_crossings",
}

// String returns the snake_case name of the event kind.
func (k EventKind) String() string {
	if k < NumEventKinds {
		return eventNames[k]
	}
	return fmt.Sprintf("event(%d)", uint8(k))
}

// EventKinds returns all defined kinds in order.
func EventKinds() []EventKind {
	ks := make([]EventKind, NumEventKinds)
	for i := range ks {
		ks[i] = EventKind(i)
	}
	return ks
}
