package kernel

import (
	"fmt"

	"latlab/internal/cpu"
	"latlab/internal/fscache"
	"latlab/internal/simtime"
	"latlab/internal/spans"
)

// ProcID identifies an address space. Switching the CPU between threads
// of different processes flushes the TLBs (when the kernel's config says
// so), which is how context-switch overhead reaches the latency numbers.
type ProcID int

// KernelProc is the address space of kernel helper threads.
const KernelProc ProcID = 0

// ThreadState enumerates scheduler states.
type ThreadState uint8

// Thread states.
const (
	StateNew ThreadState = iota
	StateReady
	StateRunning
	StateBlockedMsg
	StateBlockedIO
	StateSleeping
	StateDone
)

// String names the state.
func (s ThreadState) String() string {
	switch s {
	case StateNew:
		return "new"
	case StateReady:
		return "ready"
	case StateRunning:
		return "running"
	case StateBlockedMsg:
		return "blocked-msg"
	case StateBlockedIO:
		return "blocked-io"
	case StateSleeping:
		return "sleeping"
	case StateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// IdlePriority is the priority of idle-class threads. A system whose
// runnable threads are all idle-class counts as idle: the paper's
// idle-loop instrument replaces the OS idle loop at exactly this level.
const IdlePriority = 0

// reqKind enumerates the primitives a thread can invoke.
type reqKind uint8

const (
	reqCompute reqKind = iota
	reqCompute2
	reqDomainCross
	reqModeSwitch
	reqGetMessage
	reqPeekMessage
	reqPost
	reqSleep
	reqReadFile
	reqWriteFile
	reqYield
	reqExit
)

// request is one primitive invocation, carried thread→kernel over the
// handshake channel.
type request struct {
	kind   reqKind
	seg    cpu.Segment
	seg2   cpu.Segment // second segment of a Compute2 batch
	target *Thread
	msg    Msg
	d      simtime.Duration
	file   fscache.FileID
	page   int64
	pages  int64

	// started marks multi-step requests (compute, sleep, I/O) that have
	// begun but not completed; stage is the Compute2 segment in flight.
	started bool
	stage   uint8
}

// resumeToken is sent kernel→thread; kill aborts the thread.
type resumeToken struct {
	kill bool
}

// killSentinel is the panic value used to unwind a killed thread.
type killSentinel struct{}

// Thread is a simulated thread of control. Application code runs in the
// body function on a dedicated goroutine, but the kernel and at most one
// thread ever execute at a time (strict channel handshake), so the
// simulation is deterministic and race-free.
type Thread struct {
	id   int
	name string
	proc ProcID
	prio int

	k        *Kernel
	body     func(tc *TC)
	resume   chan resumeToken
	requests chan request

	// loopFn, when non-nil, makes this a kernel-resident loop thread
	// (SpawnLoop): no goroutine, no handshake — fetch invokes loopFn in
	// simulator context and loopTC carries its one-request-per-call
	// context.
	loopFn func(lc *LoopTC) bool
	loopTC LoopTC

	// Bulk idle-skip state (engine.go). bulk non-nil enables per-cycle
	// cleanliness tracking; the batched engine elides clean cycles.
	// cycle* fields observe the cycle in flight; sig* plus cycleSeg*
	// hold the canonical interrupt-free signature elision replays from.
	bulk          BulkLoop
	bulkClean     bool
	cycleStart    simtime.Time
	cycleD1       simtime.Duration
	cycleD2       simtime.Duration
	cycleSnap     [cpu.NumEventKinds]int64
	cycleDelta    [cpu.NumEventKinds]int64
	cycleSwitches uint64
	sigD1         simtime.Duration
	sigD2         simtime.Duration
	sigDelta      [cpu.NumEventKinds]int64
	sigClock      simtime.Hz
	cycleSeg      cpu.Segment
	cycleSeg2     cpu.Segment

	// affinity pins a loop thread to a logical CPU (multicore.go);
	// 0 means the scheduler core. lastCPU is where the thread's last
	// chunk ran, for charging the migration tax.
	affinity int
	lastCPU  int

	state    ThreadState
	readySeq uint64

	// pending is the in-flight request, if any; it points at reqSlot,
	// the thread's single preallocated request cell (requests are
	// strictly one at a time per thread).
	pending *request
	reqSlot request
	// remaining is unconsumed CPU time of the pending compute chunk.
	remaining simtime.Duration
	// runStart is when the current chunk last started consuming CPU.
	runStart simtime.Time
	// quantumLeft is the unexpired part of the timeslice.
	quantumLeft simtime.Duration

	// msgq is the thread's message queue.
	msgq []Msg
	// getCall is when a blocking GetMessage began waiting.
	getCall simtime.Time

	// ioReady flags completion of the pending synchronous I/O.
	ioReady bool
	// ioSpan is the open syscall span of the pending synchronous I/O.
	ioSpan spans.Handle
	// readyAt is when the thread last entered the ready queue; only
	// maintained while a span recorder is attached (scheduling delay).
	readyAt simtime.Time

	// Reply slots, valid after the corresponding request completes.
	replyMsg Msg
	replyOK  bool
}

// ID returns the thread id.
func (t *Thread) ID() int { return t.id }

// Name returns the thread name.
func (t *Thread) Name() string { return t.name }

// Proc returns the owning process.
func (t *Thread) Proc() ProcID { return t.proc }

// Priority returns the scheduling priority (higher runs first).
func (t *Thread) Priority() int { return t.prio }

// State returns the scheduler state.
func (t *Thread) State() ThreadState { return t.state }

// QueueLen returns the current message-queue length.
func (t *Thread) QueueLen() int { return len(t.msgq) }

// TC is the thread-side handle to kernel services; every method must be
// called from the thread's own body function.
type TC struct {
	t *Thread
	k *Kernel
}

// Thread returns the thread this context belongs to.
func (tc *TC) Thread() *Thread { return tc.t }

// Now returns the current simulated time. Reading it needs no yield: the
// kernel goroutine is parked while thread code runs.
func (tc *TC) Now() simtime.Time { return tc.k.now }

// Cycles reads the free-running cycle counter (a user-mode rdtsc).
func (tc *TC) Cycles() int64 { return tc.k.cpu.CycleAt(tc.k.now) }

// call performs the handshake for one request and blocks until the
// kernel completes it.
func (tc *TC) call(r request) {
	tc.t.requests <- r
	tok := <-tc.t.resume
	if tok.kill {
		panic(killSentinel{})
	}
}

// Compute consumes CPU according to seg, subject to scheduling: the call
// returns after the simulated machine has spent the segment's cost on
// this thread, however long that takes in elapsed simulated time.
func (tc *TC) Compute(seg cpu.Segment) {
	tc.call(request{kind: reqCompute, seg: seg})
}

// Compute2 consumes CPU for two segments back to back in one kernel
// request. Timing and memory-system effects are identical to two Compute
// calls — the second segment is costed the instant the first finishes —
// but the thread↔kernel handshake fires once instead of twice, which
// matters for instruments that compute on every sample.
func (tc *TC) Compute2(a, b cpu.Segment) {
	tc.call(request{kind: reqCompute2, seg: a, seg2: b})
}

// DomainCross models a protection-domain (address-space) crossing: TLB
// flush plus direct cost.
func (tc *TC) DomainCross() {
	tc.call(request{kind: reqDomainCross})
}

// ModeSwitch models a user/kernel mode switch in the same address space
// (no TLB flush) — the NT 4.0 in-kernel Win32 path.
func (tc *TC) ModeSwitch() {
	tc.call(request{kind: reqModeSwitch})
}

// GetMessage blocks until a message is available and returns it.
func (tc *TC) GetMessage() Msg {
	tc.call(request{kind: reqGetMessage})
	return tc.t.replyMsg
}

// PeekMessage returns the head message without blocking; ok reports
// whether one was available. The message is consumed, matching the
// PM_REMOVE usage the paper's applications rely on.
func (tc *TC) PeekMessage() (Msg, bool) {
	tc.call(request{kind: reqPeekMessage})
	return tc.t.replyMsg, tc.t.replyOK
}

// HasMessage reports whether the thread's queue is non-empty without
// consuming anything (PeekMessage with PM_NOREMOVE). It costs no time
// and is not logged by the monitor.
func (tc *TC) HasMessage() bool { return len(tc.t.msgq) > 0 }

// PendingUserInput reports whether further user-input messages are
// already queued behind the one being handled. The window system uses it
// to batch rendering requests when the input stream outruns the system —
// the §1.1 batching behaviour ("the system batches requests more
// aggressively" under an uninterrupted input stream).
func (tc *TC) PendingUserInput() bool {
	for _, m := range tc.t.msgq {
		if m.Kind.UserInput() {
			return true
		}
	}
	return false
}

// Post appends a message to target's queue.
func (tc *TC) Post(target *Thread, kind MsgKind, param int64) {
	tc.call(request{kind: reqPost, target: target, msg: Msg{Kind: kind, Param: param}})
}

// Forward re-posts a received message to target preserving its original
// Enqueued stamp, so latency measured from the hardware event survives
// system-internal routing (the Windows 95 mouse path).
func (tc *TC) Forward(target *Thread, msg Msg) {
	tc.call(request{kind: reqPost, target: target, msg: msg})
}

// Sleep blocks for at least d; with tick-aligned timers the wake rounds
// up to the next clock tick, like SetTimer on the real systems.
func (tc *TC) Sleep(d simtime.Duration) {
	tc.call(request{kind: reqSleep, d: d})
}

// ReadFile synchronously reads pages [page, page+pages) of file through
// the buffer cache, blocking until all pages are resident.
func (tc *TC) ReadFile(file fscache.FileID, page, pages int64) {
	tc.call(request{kind: reqReadFile, file: file, page: page, pages: pages})
}

// WriteFile synchronously writes pages [page, page+pages) of file
// through the buffer cache to the disk.
func (tc *TC) WriteFile(file fscache.FileID, page, pages int64) {
	tc.call(request{kind: reqWriteFile, file: file, page: page, pages: pages})
}

// ReadFileAsync starts a background read of pages [page, page+pages) and
// returns immediately; a message of the given kind is posted to this
// thread when all pages are resident. Asynchronous I/O does not count as
// outstanding synchronous I/O, so the think/wait FSM treats it as
// background activity — exactly the paper's Fig. 2 assumption.
func (tc *TC) ReadFileAsync(file fscache.FileID, page, pages int64, kind MsgKind, param int64) {
	k, t := tc.k, tc.t
	inline := true
	missing := k.cache.Read(file, page, pages, func(now simtime.Time, err error) {
		if err != nil {
			k.ioErrs++
		}
		if inline {
			return
		}
		k.raiseDiskInterrupt(func(simtime.Time) {
			k.deliver(t, Msg{Kind: kind, Param: param})
		})
	})
	inline = false
	if missing == 0 {
		// All pages were resident: complete immediately.
		k.deliver(t, Msg{Kind: kind, Param: param})
	}
}

// Yield surrenders the CPU to an equal-priority thread, if any.
func (tc *TC) Yield() {
	tc.call(request{kind: reqYield})
}

// SetTimer arranges for a message to be posted to this thread after d
// (tick-aligned when the kernel's timers are), like Win32 SetTimer. It
// consumes no time and does not block; the timer is dropped if the
// thread exits first.
func (tc *TC) SetTimer(d simtime.Duration, kind MsgKind, param int64) {
	k, t := tc.k, tc.t
	wake := k.now.Add(d)
	if k.cfg.TimersTickAligned {
		wake = k.NextTick(wake)
	}
	k.At(wake, func(now simtime.Time) {
		k.PostMessage(t, kind, param)
	})
}
