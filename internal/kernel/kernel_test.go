package kernel

import (
	"testing"
	"testing/quick"

	"latlab/internal/cpu"
	"latlab/internal/machine"
	"latlab/internal/rng"
	"latlab/internal/simtime"
	"latlab/internal/trace"
)

// msOfCycles converts a millisecond count to cycles at 100 MHz.
func msOfCycles(ms int64) int64 { return ms * 100_000 }

// burn returns a segment costing exactly ms milliseconds warm.
func burn(name string, ms int64) cpu.Segment {
	return cpu.Segment{Name: name, BaseCycles: msOfCycles(ms), Instructions: msOfCycles(ms) / 2}
}

// quietConfig disables cost sources that complicate exact-time tests.
func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.ContextSwitch = cpu.Segment{}
	cfg.ClockInterrupt = cpu.Segment{}
	cfg.FlushOnProcessSwitch = false
	return cfg
}

func TestSingleThreadComputes(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	var done simtime.Time
	k.Spawn("worker", 1, 8, func(tc *TC) {
		tc.Compute(burn("w", 5))
		done = tc.Now()
	})
	k.Run(simtime.Time(simtime.Second))
	if done != simtime.Time(5*simtime.Millisecond) {
		t.Fatalf("compute finished at %v, want 5ms", done)
	}
}

func TestSequentialComputesAccumulate(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	var marks []simtime.Time
	k.Spawn("worker", 1, 8, func(tc *TC) {
		for i := 0; i < 3; i++ {
			tc.Compute(burn("w", 2))
			marks = append(marks, tc.Now())
		}
	})
	k.Run(simtime.Time(simtime.Second))
	want := []simtime.Time{
		simtime.Time(2 * simtime.Millisecond),
		simtime.Time(4 * simtime.Millisecond),
		simtime.Time(6 * simtime.Millisecond),
	}
	if len(marks) != 3 {
		t.Fatalf("marks = %v", marks)
	}
	for i := range want {
		if marks[i] != want[i] {
			t.Fatalf("mark %d = %v, want %v", i, marks[i], want[i])
		}
	}
}

func TestGetMessageBlocksUntilPost(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	var got Msg
	var at simtime.Time
	app := k.Spawn("app", 1, 8, func(tc *TC) {
		got = tc.GetMessage()
		at = tc.Now()
	})
	k.At(simtime.Time(30*simtime.Millisecond), func(now simtime.Time) {
		k.PostMessage(app, WMChar, 'x')
	})
	k.Run(simtime.Time(simtime.Second))
	if got.Kind != WMChar || got.Param != 'x' {
		t.Fatalf("message = %+v", got)
	}
	if got.Enqueued != simtime.Time(30*simtime.Millisecond) {
		t.Fatalf("enqueued = %v, want 30ms", got.Enqueued)
	}
	if at != simtime.Time(30*simtime.Millisecond) {
		t.Fatalf("woke at %v, want 30ms", at)
	}
	if app.State() != StateDone {
		t.Fatalf("app state = %v", app.State())
	}
}

func TestPriorityPreemption(t *testing.T) {
	// A high-priority thread woken mid-way through a low-priority compute
	// must finish first, and the low thread's total time stretches by the
	// high thread's compute.
	k := New(quietConfig())
	defer k.Shutdown()
	var lowDone, highDone simtime.Time
	k.Spawn("low", 1, 4, func(tc *TC) {
		tc.Compute(burn("low", 20))
		lowDone = tc.Now()
	})
	high := k.Spawn("high", 2, 8, func(tc *TC) {
		tc.GetMessage()
		tc.Compute(burn("high", 5))
		highDone = tc.Now()
	})
	k.At(simtime.Time(10*simtime.Millisecond), func(now simtime.Time) {
		k.PostMessage(high, WMCommand, 0)
	})
	k.Run(simtime.Time(simtime.Second))
	if highDone != simtime.Time(15*simtime.Millisecond) {
		t.Fatalf("high done at %v, want 15ms", highDone)
	}
	if lowDone != simtime.Time(25*simtime.Millisecond) {
		t.Fatalf("low done at %v, want 25ms (10 run + 5 preempted + 10 run)", lowDone)
	}
}

func TestInterruptStealsTime(t *testing.T) {
	// A 1 ms handler raised mid-compute delays the thread by exactly 1 ms:
	// the idle-loop elongation mechanism.
	cfg := quietConfig()
	k := New(cfg)
	defer k.Shutdown()
	var done simtime.Time
	k.Spawn("worker", 1, 8, func(tc *TC) {
		tc.Compute(burn("w", 10))
		done = tc.Now()
	})
	k.At(simtime.Time(4*simtime.Millisecond), func(now simtime.Time) {
		k.RaiseInterrupt(burn("handler", 1), nil)
	})
	k.Run(simtime.Time(simtime.Second))
	if done != simtime.Time(11*simtime.Millisecond) {
		t.Fatalf("done at %v, want 11ms (10 compute + 1 stolen)", done)
	}
}

func TestQueuedInterruptsSerialize(t *testing.T) {
	cfg := quietConfig()
	k := New(cfg)
	defer k.Shutdown()
	var ends []simtime.Time
	at := func(ms int64) {
		k.At(simtime.Time(ms)*simtime.Time(simtime.Millisecond), func(now simtime.Time) {
			k.RaiseInterrupt(burn("h", 2), func(end simtime.Time) {
				ends = append(ends, end)
			})
		})
	}
	at(5)
	at(6) // arrives while the first handler still runs
	k.Run(simtime.Time(simtime.Second))
	if len(ends) != 2 {
		t.Fatalf("handler completions = %d", len(ends))
	}
	if ends[0] != simtime.Time(7*simtime.Millisecond) {
		t.Fatalf("first handler ended %v, want 7ms", ends[0])
	}
	if ends[1] != simtime.Time(9*simtime.Millisecond) {
		t.Fatalf("second handler ended %v, want 9ms (queued)", ends[1])
	}
}

func TestClockInterruptOverheadElongatesIdleLoop(t *testing.T) {
	// The central methodology check: a calibrated 1 ms loop at idle
	// priority observes clock-interrupt overhead as elongation.
	cfg := quietConfig()
	cfg.ClockInterrupt = cpu.Segment{Name: "clock", BaseCycles: 400} // 4 µs
	k := New(cfg)
	defer k.Shutdown()
	var samples []trace.IdleSample
	k.Spawn("idleloop", 1, IdlePriority, func(tc *TC) {
		for len(samples) < 50 {
			start := tc.Now()
			tc.Compute(burn("loop", 1))
			samples = append(samples, trace.IdleSample{Done: tc.Now(), Elapsed: tc.Now().Sub(start)})
		}
	})
	k.Run(simtime.Time(simtime.Second))
	elongated := 0
	for _, s := range samples {
		switch s.Elapsed {
		case simtime.Millisecond:
		case simtime.Millisecond + 4*simtime.Microsecond:
			elongated++
		default:
			t.Fatalf("unexpected elapsed %v", s.Elapsed)
		}
	}
	// One clock tick per 10 ms: 50 samples cover ~50 ms → ~5 ticks.
	if elongated < 4 || elongated > 6 {
		t.Fatalf("elongated samples = %d, want ≈5", elongated)
	}
}

func TestQuantumRoundRobin(t *testing.T) {
	cfg := quietConfig()
	cfg.Quantum = 5 * simtime.Millisecond
	k := New(cfg)
	defer k.Shutdown()
	var doneA, doneB simtime.Time
	k.Spawn("a", 1, 8, func(tc *TC) {
		tc.Compute(burn("a", 10))
		doneA = tc.Now()
	})
	k.Spawn("b", 2, 8, func(tc *TC) {
		tc.Compute(burn("b", 10))
		doneB = tc.Now()
	})
	k.Run(simtime.Time(simtime.Second))
	// Interleaved in 5 ms slices: a runs 0-5, b 5-10, a 10-15, b 15-20.
	if doneA != simtime.Time(15*simtime.Millisecond) {
		t.Fatalf("a done at %v, want 15ms", doneA)
	}
	if doneB != simtime.Time(20*simtime.Millisecond) {
		t.Fatalf("b done at %v, want 20ms", doneB)
	}
}

func TestContextSwitchChargedOnSwitch(t *testing.T) {
	cfg := quietConfig()
	cfg.ContextSwitch = cpu.Segment{Name: "ctxsw", BaseCycles: 1000} // 10 µs
	k := New(cfg)
	defer k.Shutdown()
	var done simtime.Time
	k.Spawn("only", 1, 8, func(tc *TC) {
		tc.Compute(burn("w", 1))
		tc.Compute(burn("w", 1)) // same thread: no second charge
		done = tc.Now()
	})
	k.Run(simtime.Time(simtime.Second))
	want := simtime.Time(2*simtime.Millisecond + 10*simtime.Microsecond)
	if done != want {
		t.Fatalf("done at %v, want %v (one context switch)", done, want)
	}
}

func TestProcessSwitchFlushesTLB(t *testing.T) {
	cfg := quietConfig()
	cfg.FlushOnProcessSwitch = true
	cfg.Quantum = 2 * simtime.Millisecond
	k := New(cfg)
	defer k.Shutdown()
	seg := cpu.Segment{Name: "ws", BaseCycles: msOfCycles(3), CodePages: []uint64{1, 2, 3}}
	k.Spawn("a", 1, 8, func(tc *TC) {
		for i := 0; i < 4; i++ {
			tc.Compute(seg)
		}
	})
	k.Spawn("b", 2, 8, func(tc *TC) {
		for i := 0; i < 4; i++ {
			tc.Compute(cpu.Segment{Name: "other", BaseCycles: msOfCycles(3)})
		}
	})
	k.Run(simtime.Time(simtime.Second))
	// Thread a re-runs its working set after every switch back from b:
	// multiple cold refills, not just the first.
	if got := k.CPU().Count(cpu.ITLBMisses); got < 6 {
		t.Fatalf("ITLB misses = %d, want ≥6 (flush per process switch)", got)
	}
}

func TestSleepTickAligned(t *testing.T) {
	cfg := quietConfig()
	cfg.TimersTickAligned = true
	k := New(cfg)
	defer k.Shutdown()
	var woke simtime.Time
	k.Spawn("s", 1, 8, func(tc *TC) {
		tc.Compute(burn("w", 3))
		tc.Sleep(simtime.FromMillis(2)) // 3+2=5ms → next tick = 10ms
		woke = tc.Now()
	})
	k.Run(simtime.Time(simtime.Second))
	if woke != simtime.Time(10*simtime.Millisecond) {
		t.Fatalf("woke at %v, want 10ms (tick-aligned)", woke)
	}
}

func TestSleepUnaligned(t *testing.T) {
	cfg := quietConfig()
	cfg.TimersTickAligned = false
	k := New(cfg)
	defer k.Shutdown()
	var woke simtime.Time
	k.Spawn("s", 1, 8, func(tc *TC) {
		tc.Sleep(simtime.FromMillis(3))
		woke = tc.Now()
	})
	k.Run(simtime.Time(simtime.Second))
	if woke != simtime.Time(3*simtime.Millisecond) {
		t.Fatalf("woke at %v, want 3ms", woke)
	}
}

func TestSyncReadColdBlocksWarmReturns(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	f := k.Cache().AddFile("doc", 100_000, 64)
	var coldDur, warmDur simtime.Duration
	syncSeen := 0
	k.SetHooks(Hooks{OnSyncIO: func(n int, now simtime.Time) {
		if n > syncSeen {
			syncSeen = n
		}
	}})
	k.Spawn("reader", 1, 8, func(tc *TC) {
		s := tc.Now()
		tc.ReadFile(f, 0, 16)
		coldDur = tc.Now().Sub(s)
		s = tc.Now()
		tc.ReadFile(f, 0, 16)
		warmDur = tc.Now().Sub(s)
	})
	k.Run(simtime.Time(simtime.Second))
	if coldDur < simtime.FromMillis(2) {
		t.Fatalf("cold read = %v, want ms-scale disk latency", coldDur)
	}
	if warmDur != 0 {
		t.Fatalf("warm read = %v, want 0 (buffer-cache hit)", warmDur)
	}
	if syncSeen != 1 {
		t.Fatalf("sync I/O outstanding peak = %d, want 1", syncSeen)
	}
	if k.SyncIOOutstanding() != 0 {
		t.Fatalf("sync I/O should drain to 0")
	}
}

func TestSyncWriteBlocks(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	f := k.Cache().AddFile("out", 200_000, 64)
	var dur simtime.Duration
	k.Spawn("writer", 1, 8, func(tc *TC) {
		s := tc.Now()
		tc.WriteFile(f, 0, 32)
		dur = tc.Now().Sub(s)
	})
	k.Run(simtime.Time(simtime.Second))
	if dur < simtime.FromMillis(2) {
		t.Fatalf("write-through = %v, want ms-scale", dur)
	}
}

func TestMsgAPIHookRecords(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	var recs []trace.MsgRecord
	k.SetHooks(Hooks{OnMsgAPI: func(r trace.MsgRecord) { recs = append(recs, r) }})
	app := k.Spawn("app", 1, 8, func(tc *TC) {
		if _, ok := tc.PeekMessage(); ok {
			panic("queue should be empty")
		}
		m := tc.GetMessage()
		_ = m
	})
	k.At(simtime.Time(20*simtime.Millisecond), func(now simtime.Time) {
		k.PostMessage(app, WMChar, 'a')
	})
	k.Run(simtime.Time(simtime.Second))
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3 (peek + get-block + get-return)", len(recs))
	}
	peek, block, get := recs[0], recs[1], recs[2]
	if peek.API != trace.PeekMessage || peek.Received {
		t.Fatalf("peek record wrong: %+v", peek)
	}
	if block.API != trace.GetMessage || block.Received || block.Call != 0 {
		t.Fatalf("block record wrong: %+v", block)
	}
	if get.API != trace.GetMessage || !get.Received || get.Kind != int(WMChar) {
		t.Fatalf("get record wrong: %+v", get)
	}
	if get.Call != 0 {
		t.Fatalf("get call time = %v, want 0 (blocked since start)", get.Call)
	}
	if get.Return != simtime.Time(20*simtime.Millisecond) {
		t.Fatalf("get return = %v, want 20ms", get.Return)
	}
	if get.Enqueued != simtime.Time(20*simtime.Millisecond) {
		t.Fatalf("enqueued = %v", get.Enqueued)
	}
}

func TestKeyboardInterruptDeliversWithHandlerCost(t *testing.T) {
	cfg := quietConfig()
	cfg.KeyboardInterrupt = burn("kbd", 1) // 1 ms handler for visibility
	k := New(cfg)
	defer k.Shutdown()
	var got Msg
	app := k.Spawn("app", 1, 8, func(tc *TC) { got = tc.GetMessage() })
	k.At(simtime.Time(5*simtime.Millisecond), func(now simtime.Time) {
		k.KeyboardInterrupt(app, WMKeyDown, 42)
	})
	k.Run(simtime.Time(simtime.Second))
	if got.Kind != WMKeyDown || got.Param != 42 {
		t.Fatalf("message = %+v", got)
	}
	// Enqueued is stamped at interrupt raise, so measured latency covers
	// handler time — the Fig. 1 point.
	if got.Enqueued != simtime.Time(5*simtime.Millisecond) {
		t.Fatalf("enqueued = %v, want 5ms (interrupt time)", got.Enqueued)
	}
}

func TestNonIdleBusyTimeGroundTruth(t *testing.T) {
	cfg := quietConfig()
	k := New(cfg)
	defer k.Shutdown()
	k.Spawn("idle", 1, IdlePriority, func(tc *TC) {
		for i := 0; i < 1000; i++ {
			tc.Compute(burn("idleloop", 1))
		}
	})
	app := k.Spawn("app", 2, 8, func(tc *TC) {
		tc.GetMessage()
		tc.Compute(burn("work", 7))
	})
	k.At(simtime.Time(20*simtime.Millisecond), func(now simtime.Time) {
		k.PostMessage(app, WMChar, 0)
	})
	k.Run(simtime.Time(100 * simtime.Millisecond))
	busy := k.NonIdleBusyTime()
	if busy != 7*simtime.Millisecond {
		t.Fatalf("ground-truth busy = %v, want 7ms (idle-class excluded)", busy)
	}
}

func TestBusyHookTransitions(t *testing.T) {
	cfg := quietConfig()
	k := New(cfg)
	defer k.Shutdown()
	type tr struct {
		busy bool
		at   simtime.Time
	}
	var trs []tr
	k.SetHooks(Hooks{OnBusy: func(b bool, now simtime.Time) { trs = append(trs, tr{b, now}) }})
	app := k.Spawn("app", 1, 8, func(tc *TC) {
		tc.GetMessage()
		tc.Compute(burn("work", 3))
	})
	k.At(simtime.Time(10*simtime.Millisecond), func(now simtime.Time) {
		k.PostMessage(app, WMChar, 0)
	})
	k.Run(simtime.Time(50 * simtime.Millisecond))
	if len(trs) < 2 {
		t.Fatalf("transitions = %v", trs)
	}
	first, last := trs[0], trs[len(trs)-1]
	if !first.busy || first.at != simtime.Time(10*simtime.Millisecond) {
		t.Fatalf("busy start = %+v, want busy@10ms", first)
	}
	if last.busy || last.at != simtime.Time(13*simtime.Millisecond) {
		t.Fatalf("busy end = %+v, want idle@13ms", last)
	}
}

func TestPostToDeadThreadDropped(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	app := k.Spawn("app", 1, 8, func(tc *TC) {})
	k.Run(simtime.Time(simtime.Millisecond))
	if app.State() != StateDone {
		t.Fatalf("app should have exited")
	}
	k.PostMessage(app, WMChar, 0) // must not panic or wake
	k.Run(simtime.Time(2 * simtime.Millisecond))
	if app.QueueLen() != 0 {
		t.Fatalf("dead thread accumulated messages")
	}
}

func TestYield(t *testing.T) {
	cfg := quietConfig()
	k := New(cfg)
	defer k.Shutdown()
	var order []string
	k.Spawn("a", 1, 8, func(tc *TC) {
		tc.Compute(burn("a1", 1))
		order = append(order, "a1")
		tc.Yield()
		tc.Compute(burn("a2", 1))
		order = append(order, "a2")
	})
	k.Spawn("b", 2, 8, func(tc *TC) {
		tc.Compute(burn("b1", 1))
		order = append(order, "b1")
	})
	k.Run(simtime.Time(simtime.Second))
	want := []string{"a1", "b1", "a2"}
	if len(order) != 3 {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	scenario := func() (simtime.Time, int64) {
		cfg := DefaultConfig() // full costs: clock, ctxsw, flushes
		k := New(cfg)
		defer k.Shutdown()
		f := k.Cache().AddFile("doc", 300_000, 128)
		var last simtime.Time
		app := k.Spawn("app", 1, 8, func(tc *TC) {
			for {
				m := tc.GetMessage()
				if m.Kind == WMQuit {
					return
				}
				tc.Compute(cpu.Segment{Name: "h", BaseCycles: 50_000,
					CodePages: []uint64{1, 2, 3}, DataPages: []uint64{9}})
				tc.ReadFile(f, int64(m.Param)%100, 4)
				last = tc.Now()
			}
		})
		k.Spawn("idle", 2, IdlePriority, func(tc *TC) {
			for i := 0; i < 100_000; i++ {
				tc.Compute(burn("loop", 1))
			}
		})
		for i := int64(0); i < 10; i++ {
			i := i
			k.At(simtime.Time(i*37)*simtime.Time(simtime.Millisecond)+1, func(now simtime.Time) {
				k.KeyboardInterrupt(app, WMChar, i*13)
			})
		}
		k.At(simtime.Time(500*simtime.Millisecond), func(now simtime.Time) {
			k.PostMessage(app, WMQuit, 0)
		})
		k.Run(simtime.Time(simtime.Second))
		return last, k.CPU().Count(cpu.ITLBMisses)
	}
	t1, m1 := scenario()
	t2, m2 := scenario()
	if t1 != t2 || m1 != m2 {
		t.Fatalf("non-deterministic: (%v,%d) vs (%v,%d)", t1, m1, t2, m2)
	}
	if t1 == 0 {
		t.Fatalf("scenario did no work")
	}
}

func TestShutdownTerminatesThreads(t *testing.T) {
	k := New(quietConfig())
	k.Spawn("blocked", 1, 8, func(tc *TC) { tc.GetMessage() })
	k.Spawn("computing", 2, 8, func(tc *TC) {
		for {
			tc.Compute(burn("w", 1))
		}
	})
	k.Run(simtime.Time(5 * simtime.Millisecond))
	k.Shutdown()
	k.Shutdown() // idempotent
}

func TestSpawnValidation(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatalf("negative priority should panic")
		}
	}()
	k.Spawn("bad", 1, -1, func(tc *TC) {})
}

func TestNextTick(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	ms := func(x int64) simtime.Time { return simtime.Time(x) * simtime.Time(simtime.Millisecond) }
	if got := k.NextTick(ms(0)); got != 0 {
		t.Fatalf("NextTick(0) = %v", got)
	}
	if got := k.NextTick(ms(10)); got != ms(10) {
		t.Fatalf("NextTick(10ms) = %v", got)
	}
	if got := k.NextTick(ms(10) + 1); got != ms(20) {
		t.Fatalf("NextTick(10ms+1) = %v", got)
	}
}

func TestPeekMessageConsumes(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	var first, second Msg
	var okFirst, okSecond bool
	app := k.Spawn("app", 1, 8, func(tc *TC) {
		tc.Sleep(simtime.FromMillis(15))
		first, okFirst = tc.PeekMessage()
		second, okSecond = tc.PeekMessage()
	})
	k.At(simtime.Time(5*simtime.Millisecond), func(now simtime.Time) {
		k.PostMessage(app, WMChar, 1)
	})
	k.Run(simtime.Time(simtime.Second))
	if !okFirst || first.Param != 1 {
		t.Fatalf("first peek = %+v ok=%v", first, okFirst)
	}
	if okSecond {
		t.Fatalf("second peek should find empty queue, got %+v", second)
	}
}

// TestBusyConservationProperty: with context-switch and interrupt costs
// zeroed, the kernel's non-idle busy time must equal exactly the sum of
// compute requested by non-idle threads, for arbitrary schedules — CPU
// time is neither created nor lost by scheduling.
func TestBusyConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		k := New(quietConfig())
		defer k.Shutdown()
		var requested simtime.Duration
		nThreads := 2 + r.Intn(4)
		for i := 0; i < nThreads; i++ {
			prio := 4 + r.Intn(8)
			nChunks := 1 + r.Intn(5)
			var mine []cpu.Segment
			for c := 0; c < nChunks; c++ {
				cycles := int64(r.Intn(400_000) + 10_000)
				mine = append(mine, cpu.Segment{Name: "w", BaseCycles: cycles})
				requested += simtime.CPUFrequency.DurationOf(cycles)
			}
			delay := simtime.Duration(r.Intn(50)) * simtime.Millisecond
			th := k.Spawn("t", ProcID(i+1), prio, func(tc *TC) {
				tc.GetMessage()
				for _, seg := range mine {
					tc.Compute(seg)
				}
			})
			k.At(k.Now().Add(delay)+1, func(simtime.Time) {
				k.PostMessage(th, WMCommand, 0)
			})
		}
		// Idle-class filler so the CPU is never truly unoccupied.
		k.Spawn("idle", 99, IdlePriority, func(tc *TC) {
			for i := 0; i < 10_000; i++ {
				tc.Compute(cpu.Segment{Name: "i", BaseCycles: 100_000})
			}
		})
		k.Run(simtime.Time(3 * simtime.Second))
		return k.NonIdleBusyTime() == requested
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestIRQCoalescingBatchesDiskCompletions drives concurrent synchronous
// reads on the NVMe profile and checks that the coalescing machine
// completes the identical I/O with strictly fewer interrupts than its
// per-request twin — the whole point of the axis — while every reader
// still finishes.
func TestIRQCoalescingBatchesDiskCompletions(t *testing.T) {
	run := func(prof machine.Profile) (interrupts int64, done int) {
		cfg := DefaultConfig()
		cfg.Machine = prof
		k := New(cfg)
		defer k.Shutdown()
		f := k.Cache().AddFile("data", 0, 4096)
		for i := 0; i < 8; i++ {
			page := int64(1 + 97*i)
			k.Spawn("reader", ProcID(i+1), 8, func(tc *TC) {
				tc.ReadFile(f, page, 1)
				done++
			})
		}
		k.Run(simtime.Time(2 * simtime.Second))
		return k.CPU().Count(cpu.Interrupts), done
	}
	perIRQ, doneA := run(machine.Modern2026NoCoalesce())
	coalesced, doneB := run(machine.Modern2026Pinned())
	if doneA != 8 || doneB != 8 {
		t.Fatalf("readers completed %d / %d, want 8 / 8", doneA, doneB)
	}
	if coalesced >= perIRQ {
		t.Fatalf("coalescing took %d interrupts, per-request twin %d — no batching happened", coalesced, perIRQ)
	}
}
