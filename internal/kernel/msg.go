package kernel

import "latlab/internal/simtime"

// MsgKind identifies a message type. The Win32-style constants live here
// because the kernel's queueing layer, the monitor, and the applications
// all need them.
type MsgKind int

// Message kinds. Values are arbitrary but stable; they appear in traces.
const (
	// WMNull is an empty message.
	WMNull MsgKind = iota
	// WMKeyDown is a key press (Param carries the key code).
	WMKeyDown
	// WMChar is a translated printable character.
	WMChar
	// WMMouseDown is a mouse-button press.
	WMMouseDown
	// WMMouseUp is a mouse-button release.
	WMMouseUp
	// WMPaint requests a repaint.
	WMPaint
	// WMTimer is a timer expiry.
	WMTimer
	// WMQueueSync is the synchronization message the Microsoft Test
	// driver posts after every simulated input event — the artifact the
	// paper discovered distorting its Figure 7 and §5.4 results.
	WMQueueSync
	// WMCommand is an application command (menu action, etc.).
	WMCommand
	// WMIdleWork is an application-internal message used to schedule
	// background processing (Word's spell-check coroutines).
	WMIdleWork
	// WMSysCommand carries window-management commands (e.g. maximize).
	WMSysCommand
	// WMQuit asks the application to exit.
	WMQuit
)

// String names the message kind.
func (k MsgKind) String() string {
	switch k {
	case WMNull:
		return "WM_NULL"
	case WMKeyDown:
		return "WM_KEYDOWN"
	case WMChar:
		return "WM_CHAR"
	case WMMouseDown:
		return "WM_LBUTTONDOWN"
	case WMMouseUp:
		return "WM_LBUTTONUP"
	case WMPaint:
		return "WM_PAINT"
	case WMTimer:
		return "WM_TIMER"
	case WMQueueSync:
		return "WM_QUEUESYNC"
	case WMCommand:
		return "WM_COMMAND"
	case WMIdleWork:
		return "WM_IDLEWORK"
	case WMSysCommand:
		return "WM_SYSCOMMAND"
	case WMQuit:
		return "WM_QUIT"
	default:
		return "WM_UNKNOWN"
	}
}

// Msg is one queued message.
type Msg struct {
	Kind  MsgKind
	Param int64
	// Enqueued is when the message entered the queue; for hardware input
	// it is the interrupt time, so latency measured from it includes the
	// system time conventional instrumentation misses (paper Fig. 1).
	Enqueued simtime.Time
}

// UserInput reports whether the message kind is a user-initiated input
// event whose latency the methodology measures.
func (k MsgKind) UserInput() bool {
	switch k {
	case WMKeyDown, WMChar, WMMouseDown, WMMouseUp, WMCommand, WMSysCommand:
		return true
	default:
		return false
	}
}
