package kernel

import (
	"latlab/internal/cpu"
	"latlab/internal/simtime"
)

// QueueKind selects the event-queue backend a kernel runs on. Both
// backends pop the identical (time, sequence) total order — the
// differential fuzzer in internal/eventq proves it — so the choice is
// purely a throughput knob, never a semantics knob.
type QueueKind uint8

// Queue backends.
const (
	// QueueHeap is the pre-grown 4-ary heap — the reference backend.
	QueueHeap QueueKind = iota
	// QueueCalendar is the calendar/bucket queue tuned for the
	// dense-timer regime (events spread over hundreds of µs to tens of
	// ms, small in-flight counts).
	QueueCalendar
)

// Engine selects the simulation-core strategy. The zero value is the
// reference engine — 4-ary heap, every idle cycle simulated — whose
// behaviour every golden in the repository pins. BatchedEngine enables
// the throughput path; both engines produce byte-identical traces,
// which `make batch-check` re-proves against the full golden corpus
// and the committed campaign ledger.
type Engine struct {
	// Queue picks the event-queue backend.
	Queue QueueKind
	// IdleSkip enables analytic idle-span elision: when the machine is
	// provably idle (ProvablyIdle) and the idle instrument's last cycle
	// was clean — zero TLB/cache misses and exactly its analytic
	// duration, i.e. the memory system is at the idle loop's LRU fixed
	// point — whole idle cycles ending strictly before the next queued
	// event are accounted analytically instead of simulated. The cycle
	// straddling the next event is always simulated honestly, so the
	// methodology's tick/interrupt-detection property is preserved.
	IdleSkip bool
}

// BatchedEngine returns the throughput engine used by batched
// multi-machine runs: calendar queue plus analytic idle skipping.
func BatchedEngine() Engine {
	return Engine{Queue: QueueCalendar, IdleSkip: true}
}

// BulkLoop is implemented by an idle-class instrument whose compute
// cycles may be elided analytically. BulkBudget bounds how many cycles
// may be skipped in one span (typically the instrument's remaining
// buffer capacity, minus one so the straddling cycle's own sample still
// fits). OnBulk informs the instrument that n whole cycles of the given
// duration, starting at start, completed without simulation; the
// instrument must append the samples those cycles would have recorded
// and roll its internal cycle-start state forward by n cycles.
type BulkLoop interface {
	BulkBudget() int64
	OnBulk(n int64, start simtime.Time, cycle simtime.Duration)
}

// SetBulkLoop registers b as the thread's bulk-elision delegate. Only
// meaningful for idle-class loop threads driving Compute2 cycles; the
// kernel starts tracking per-cycle cleanliness for the thread, and the
// batched engine may elide its cycles. The reference engine tracks
// nothing and elides nothing.
func (t *Thread) SetBulkLoop(b BulkLoop) { t.bulk = b }

// ProvablyIdle reports whether the machine is provably idle at this
// instant: the CPU is not stolen by interrupt handlers, no thread is
// waiting on the ready queue, and the running thread (if any) is
// idle-class. In this state the future is fully determined by the event
// queue — every fault injection, timer, wakeup, and device completion
// arrives as a queued event — which is what makes analytic idle-span
// elision sound: nothing can happen strictly before NextTime.
//
// An idle-class peer sitting on the ready queue defeats the proof:
// quantum round-robin between idle peers consumes scheduler state, so
// those spans are simulated honestly.
func (k *Kernel) ProvablyIdle() bool {
	return k.now >= k.stolenUntil && len(k.ready) == 0 &&
		(k.current == nil || k.current.prio == IdlePriority)
}

// noteBulkCycle records the outcome of one completed Compute2 cycle of
// a bulk-tracked thread. A cycle is *canonically clean* when it ran
// exactly its analytic duration (no interrupt, steal, or preemption
// stretched it) with zero TLB/cache misses: that proves the LRU memory
// system reached the cycle's fixed point — hits only reorder resident
// entries, and the cycle touches the same pages in the same order every
// time, so every subsequent identical cycle must cost exactly the same.
// Canonical cycles set bulkClean and refresh the signature (sigD1/sigD2,
// sigDelta, cycleSeg/cycleSeg2) that tryBulkSkip replays.
//
// A cycle stretched by an interrupt (the clock tick) can still preserve
// the fixed point: if the whole window — cycle plus handler — shows zero
// ITLB/DTLB/cache-miss deltas, the handler inserted nothing into any
// LRU structure and therefore evicted nothing; with no insertions ever,
// hits are mere recency reorderings that no eviction will consult. Two
// transparent invalidation channels must also be excluded, because they
// remove entries without an immediate miss: domain crossings flush both
// TLBs (delta must be zero) and a process context switch may flush them
// too (the kernel-wide switch counter must not have moved). Such a
// cycle keeps bulkClean without touching the signature — its own deltas
// include the handler's counters, which elision must not replay — after
// verifying it ran the signature's exact segments and analytic stage
// durations. Anything else marks the thread dirty until the next
// canonical cycle re-proves the fixed point.
func (k *Kernel) noteBulkCycle(t *Thread, r *request) {
	snap := k.cpu.Snapshot()
	for i := range snap {
		t.cycleDelta[i] = snap[i] - t.cycleSnap[i]
	}
	d := t.cycleD1 + t.cycleD2
	transparent := d > 0 &&
		t.cycleDelta[cpu.ITLBMisses] == 0 &&
		t.cycleDelta[cpu.DTLBMisses] == 0 &&
		t.cycleDelta[cpu.CacheMisses] == 0 &&
		t.cycleDelta[cpu.DomainCrossings] == 0 &&
		t.cycleSwitches == k.ctxSwitches
	switch {
	case transparent &&
		k.now.Sub(t.cycleStart) == d &&
		t.cycleDelta[cpu.Interrupts] == 0:
		t.bulkClean = true
		t.sigD1, t.sigD2 = t.cycleD1, t.cycleD2
		t.sigDelta = t.cycleDelta
		// The signature's durations were priced at this operating
		// frequency; under DVFS a later governor transition invalidates
		// them (tryBulkSkip checks).
		t.sigClock = k.cpu.Clock()
		t.cycleSeg, t.cycleSeg2 = r.seg, r.seg2
	case t.bulkClean && transparent &&
		t.cycleD1 == t.sigD1 && t.cycleD2 == t.sigD2 &&
		segsEqual(&r.seg, &t.cycleSeg) && segsEqual(&r.seg2, &t.cycleSeg2):
		// Interrupt-stretched but memory-transparent: keep bulkClean and
		// the canonical signature.
	default:
		t.bulkClean = false
	}
}

// tryBulkSkip elides as many whole idle cycles as provably fit before
// the next queued event. Called from step immediately after fetching a
// bulk-tracked thread's next request — the request is pending but not
// started, so skipping n cycles and then processing the request is
// indistinguishable from simulating n cycles and fetching the request
// afresh (the fetch is stateless for loop threads).
//
// Exactness contract: the elided span replays the slow path's entire
// observable footprint — counter deltas (misses are zero by
// cleanliness; the rest scale linearly), the quantum accounting and
// the one completion event scheduled per chunk (replicated via
// SkipSeq so every later event receives the identical sequence
// number), and the instrument's samples (via OnBulk). The cycle that
// would straddle NextTime is never elided; it executes honestly and
// is the sample that detects the tick or interrupt, exactly as the
// paper's methodology requires.
func (k *Kernel) tryBulkSkip(t *Thread) {
	if !k.idleSkip || !t.bulkClean || k.rec != nil || k.shutdown {
		return
	}
	r := t.pending
	if r == nil || r.kind != reqCompute2 || r.started || r.stage != 0 {
		return
	}
	if t != k.current || k.completion.Valid() || !k.ProvablyIdle() {
		return
	}
	d := t.sigD1 + t.sigD2
	if d <= 0 || !segsEqual(&r.seg, &t.cycleSeg) || !segsEqual(&r.seg2, &t.cycleSeg2) {
		return
	}
	if k.cpu.Clock() != t.sigClock {
		// A DVFS transition since the signature was recorded re-prices
		// every cycle; elision must wait for a fresh canonical cycle at
		// the new operating point. Frequency only changes at clock-tick
		// events, and elision never crosses a queued event, so within
		// an elided span the clock is provably constant.
		return
	}
	// Elide only cycles that end strictly before the next queued event
	// AND no later than the current Run's horizon. The slow path
	// completes every cycle whose completion event lands at or before
	// `until` within this Run call, stops the clock at `until` exactly,
	// and finishes the straddling cycle in a later Run — so the clamp
	// (horizon + 1 makes the bound inclusive) is what keeps Run's return
	// value and the machine state at every Run boundary byte-identical.
	boundary := k.q.NextTime()
	if horizon := k.runUntil.Add(1); boundary > horizon {
		boundary = horizon
	}
	if boundary == simtime.Never {
		return
	}
	n := simtime.IterationsBefore(k.now, d, boundary)
	if b := t.bulk.BulkBudget(); n > b {
		n = b
	}
	if n <= 0 {
		return
	}

	// Replay the scheduler arithmetic of n cycles: each cycle is two
	// compute stages, each stage split into quantum-bounded chunks, and
	// each chunk schedules exactly one completion event in the slow
	// path. No peer is ready (ProvablyIdle), so quantum expiry resets
	// the slice in place rather than requeueing.
	elidedSchedules := uint64(0)
	qL := t.quantumLeft
	quantum := k.cfg.Quantum
	if total := simtime.Duration(n) * d; qL >= total && t.sigD1 > 0 && t.sigD2 > 0 {
		// No refill fits inside the span, so every stage is exactly one
		// chunk — the common case when the quantum dwarfs the cycle.
		elidedSchedules = uint64(2 * n)
		qL -= total
	} else {
		for i := int64(0); i < n; i++ {
			for _, stage := range [2]simtime.Duration{t.sigD1, t.sigD2} {
				rem := stage
				for rem > 0 {
					if qL <= 0 {
						qL = quantum
					}
					run := rem
					if qL < run {
						run = qL
					}
					rem -= run
					qL -= run
					elidedSchedules++
				}
			}
		}
	}
	for i, delta := range t.sigDelta {
		if delta != 0 {
			k.cpu.Add(cpu.EventKind(i), n*delta)
		}
	}
	start := k.now
	k.q.SkipSeq(elidedSchedules)
	k.advance(start.Add(simtime.Duration(n) * d))
	t.quantumLeft = qL
	k.bulkElided += n
	t.bulk.OnBulk(n, start, d)
}

// BulkElided returns the number of idle cycles accounted analytically
// instead of simulated — zero under the reference engine, and the
// measure of how much work idle skipping saved under the batched one.
func (k *Kernel) BulkElided() int64 { return k.bulkElided }

// segsEqual reports whether two segments describe the identical work:
// same costs, counters, and working set. Page-set slices are compared
// by content — instruments reuse the same backing arrays, but the
// elision proof must not depend on that. Pointer arguments keep the
// hot-path comparison free of large struct copies.
func segsEqual(a, b *cpu.Segment) bool {
	return a.Name == b.Name &&
		a.BaseCycles == b.BaseCycles &&
		a.Instructions == b.Instructions &&
		a.DataRefs == b.DataRefs &&
		a.SegmentLoads == b.SegmentLoads &&
		a.UnalignedAccesses == b.UnalignedAccesses &&
		pagesEqual(a.CodePages, b.CodePages) &&
		pagesEqual(a.DataPages, b.DataPages) &&
		pagesEqual(a.CacheChunks, b.CacheChunks)
}

func pagesEqual(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	if len(a) == 0 || &a[0] == &b[0] {
		// Same backing array (the usual case: instruments reissue the
		// identical segment structs every cycle) — trivially equal.
		return true
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// LoopTC is the restricted thread context handed to kernel-resident
// loop threads (SpawnLoop). Unlike TC it runs in simulator context —
// no goroutine, no channel handshake — so a loop thread may record
// exactly one request per invocation and must not block: only the
// reply-free primitives are available.
type LoopTC struct {
	t     *Thread
	k     *Kernel
	armed bool
}

// Thread returns the thread this context belongs to.
func (lc *LoopTC) Thread() *Thread { return lc.t }

// Now returns the current simulated time.
func (lc *LoopTC) Now() simtime.Time { return lc.k.now }

// Cycles reads the free-running cycle counter (a user-mode rdtsc).
func (lc *LoopTC) Cycles() int64 { return lc.k.cpu.CycleAt(lc.k.now) }

// arm resets the thread's request slot and returns it for the caller
// to fill in place — the slot is free whenever the kernel fetches
// (pending is nil), and building the request directly in it spares the
// hot path redundant copies of the two embedded segments.
func (lc *LoopTC) arm() *request {
	if lc.armed {
		panic("kernel: loop thread " + lc.t.name + " issued two requests in one invocation")
	}
	lc.armed = true
	lc.t.reqSlot = request{}
	return &lc.t.reqSlot
}

// Compute consumes CPU according to seg, like TC.Compute.
func (lc *LoopTC) Compute(seg cpu.Segment) {
	r := lc.arm()
	r.kind = reqCompute
	r.seg = seg
}

// Compute2 consumes CPU for two segments back to back, like TC.Compute2.
func (lc *LoopTC) Compute2(a, b cpu.Segment) {
	r := lc.arm()
	r.kind = reqCompute2
	r.seg = a
	r.seg2 = b
}

// Sleep blocks the thread for at least d, like TC.Sleep.
func (lc *LoopTC) Sleep(d simtime.Duration) {
	r := lc.arm()
	r.kind = reqSleep
	r.d = d
}

// SpawnLoop creates a kernel-resident loop thread: fn is invoked in
// simulator context each time the scheduler wants the thread's next
// request, records exactly one primitive on the LoopTC, and returns
// false to exit. The request stream — and therefore the simulation —
// is identical to a goroutine thread issuing the same primitives, but
// without any channel handshake, which is what makes stepping thousands
// of machines per worker affordable. Periodic housekeeping threads
// (idle-loop instrument, persona background tasks) use this form.
func (k *Kernel) SpawnLoop(name string, proc ProcID, prio int, fn func(lc *LoopTC) bool) *Thread {
	if prio < IdlePriority {
		panic("kernel: priority below idle class")
	}
	if fn == nil {
		panic("kernel: nil loop function")
	}
	t := &Thread{
		id:     len(k.threads) + 1,
		name:   name,
		proc:   proc,
		prio:   prio,
		k:      k,
		state:  StateNew,
		loopFn: fn,
	}
	t.loopTC = LoopTC{t: t, k: k}
	k.threads = append(k.threads, t)
	k.makeReady(t)
	k.reconcile()
	return t
}
