package kernel

import (
	"fmt"

	"latlab/internal/eventq"
	"latlab/internal/simtime"
	"latlab/internal/spans"
	"latlab/internal/trace"
)

// reconcile is the scheduler's single entry point: after any state change
// (wakeup, interrupt, completion, spawn) it re-establishes the invariant
// that either the CPU is stolen by interrupt handlers (with a reconcile
// event pending at stolenUntil), or the best-priority runnable thread is
// current with a completion event scheduled, or nothing is runnable.
//
// It is guarded against reentrancy: hooks and thread steps can trigger
// nested calls, which are absorbed into the outer loop.
func (k *Kernel) reconcile() {
	if k.inReconcile {
		k.reconcileAgain = true
		return
	}
	k.inReconcile = true
	defer func() { k.inReconcile = false }()

	for iter := 0; ; iter++ {
		if iter > 1_000_000 {
			panic("kernel: reconcile livelock — a thread is spinning without consuming time")
		}
		k.reconcileAgain = false

		// Interrupt handlers own the CPU; they scheduled a reconcile at
		// stolenUntil.
		if k.now < k.stolenUntil {
			break
		}

		// Preemption: a higher-priority ready thread displaces current.
		if best := k.peekBest(); best != nil && k.current != nil && best.prio > k.current.prio {
			k.pauseCurrent()
			prev := k.current
			k.current = nil
			k.makeReady(prev)
		}

		if k.current == nil {
			t := k.popBest()
			if t == nil {
				break // nothing runnable at all
			}
			if k.rec != nil && t.prio > IdlePriority && t.readyAt != 0 && k.now.After(t.readyAt) {
				k.rec.ChargeSpan(spans.CauseSchedDelay, t.name, t.readyAt, k.now, 0, 0)
			}
			t.state = StateRunning
			t.quantumLeft = k.cfg.Quantum
			k.current = t
		}

		t := k.current
		if t.remaining > 0 {
			if !k.completion.Valid() && !k.startChunk(t) {
				continue // context-switch charge or quantum requeue
			}
			if k.reconcileAgain {
				continue
			}
			break
		}

		// The pending request needs an instantaneous step.
		k.step(t)
	}
	k.updateBusy()
}

// startChunk gives the CPU to t for min(remaining, quantum). It returns
// false when the chunk could not start yet: a context-switch charge stole
// the CPU (a reconcile event is pending), or the quantum expired and t
// was requeued behind an equal-priority peer.
func (k *Kernel) startChunk(t *Thread) bool {
	if t != k.lastRun {
		k.ctxSwitches++
		var ch spans.Handle
		if k.rec != nil {
			ch = k.rec.Begin(spans.CauseCtxSwitch, t.name)
		}
		if k.cfg.FlushOnProcessSwitch && k.lastRun != nil && k.lastRun.proc != t.proc {
			k.cpu.Mem.FlushTLBs()
		}
		k.lastRun = t
		if _, d := k.cpu.Execute(k.cfg.ContextSwitch); d > 0 {
			k.steal(d)
			k.rec.EndAt(ch, k.stolenUntil)
			return false
		}
		k.rec.End(ch)
	}
	if t.quantumLeft <= 0 {
		if k.hasReadyAtPrio(t.prio) {
			k.current = nil
			k.makeReady(t)
			return false
		}
		t.quantumLeft = k.cfg.Quantum
	}
	runFor := t.remaining
	if t.quantumLeft < runFor {
		runFor = t.quantumLeft
	}
	t.runStart = k.now
	k.completion = k.q.Schedule(k.now.Add(runFor), k.onCompletionFn)
	return true
}

// onCompletion fires when the current thread's chunk (or quantum) ends.
func (k *Kernel) onCompletion(now simtime.Time) {
	k.completion = eventq.Handle{}
	t := k.current
	if t == nil {
		return
	}
	k.accountRun(t, now)
	if t.remaining > 0 && t.quantumLeft <= 0 && k.hasReadyAtPrio(t.prio) {
		k.current = nil
		k.makeReady(t)
	}
	k.reconcile()
}

// pauseCurrent stops the running chunk, banking its progress, so the CPU
// can be stolen or switched.
func (k *Kernel) pauseCurrent() {
	if k.current == nil || !k.completion.Valid() {
		return
	}
	k.completion.Cancel()
	k.completion = eventq.Handle{}
	k.accountRun(k.current, k.now)
}

func (k *Kernel) accountRun(t *Thread, now simtime.Time) {
	ran := now.Sub(t.runStart)
	t.runStart = now
	t.remaining -= ran
	if t.remaining < 0 {
		t.remaining = 0
	}
	t.quantumLeft -= ran
}

// steal gives the CPU to kernel-internal work (interrupt handler,
// context switch) for d, queueing behind any steal in progress, and
// arranges a reconcile when the CPU is free again.
func (k *Kernel) steal(d simtime.Duration) {
	start := k.now
	if k.stolenUntil > start {
		start = k.stolenUntil
	}
	k.stolenUntil = start.Add(d)
	k.q.Schedule(k.stolenUntil, func(now simtime.Time) { k.reconcile() })
}

// peekBest returns the best ready thread without removing it.
func (k *Kernel) peekBest() *Thread {
	var best *Thread
	for _, t := range k.ready {
		if best == nil || t.prio > best.prio || (t.prio == best.prio && t.readySeq < best.readySeq) {
			best = t
		}
	}
	return best
}

// popBest removes and returns the best ready thread.
func (k *Kernel) popBest() *Thread {
	best := k.peekBest()
	if best == nil {
		return nil
	}
	for i, t := range k.ready {
		if t == best {
			k.ready = append(k.ready[:i], k.ready[i+1:]...)
			break
		}
	}
	return best
}

// hasReadyAtPrio reports whether some ready thread shares priority p.
func (k *Kernel) hasReadyAtPrio(p int) bool {
	for _, t := range k.ready {
		if t.prio == p {
			return true
		}
	}
	return false
}

// fetchInto obtains t's next request, writing it into t.reqSlot. For
// goroutine threads it resumes the goroutine and waits (strict
// alternation: the kernel blocks here while thread code runs). For
// kernel-resident loop threads it invokes the loop function directly
// in simulator context — same request stream, no channel handshake;
// the LoopTC primitives arm t.reqSlot in place, so the (large,
// two-segment) request struct is never copied on this hot path.
func (k *Kernel) fetchInto(t *Thread) {
	if t.loopFn != nil {
		lc := &t.loopTC
		lc.armed = false
		if !t.loopFn(lc) {
			t.reqSlot = request{kind: reqExit}
			return
		}
		if !lc.armed {
			panic("kernel: loop thread " + t.name + " returned without issuing a request")
		}
		return
	}
	t.resume <- resumeToken{}
	t.reqSlot = <-t.requests
}

// step advances the current thread's instantaneous state: it fetches the
// next request if none is pending, then processes it. Processing may
// consume no simulated time (Post, Peek), set up a compute chunk, or
// block the thread.
func (k *Kernel) step(t *Thread) {
	if t != k.current {
		panic("kernel: stepping a non-current thread")
	}
	if t.pending == nil {
		// The request lives in a per-thread slot rather than a fresh
		// heap allocation: requests arrive one at a time per thread, so
		// the slot is free whenever pending is nil.
		k.fetchInto(t)
		t.pending = &t.reqSlot
		if k.idleSkip && t.bulk != nil {
			// Batched engine: the request is pending but untouched, the
			// cleanest point to elide provably-identical idle cycles.
			k.tryBulkSkip(t)
		}
	}
	k.process(t)
}

// process advances t.pending. It is re-entered after blocking requests
// unblock, so every arm must be idempotent with respect to `started`.
func (k *Kernel) process(t *Thread) {
	r := t.pending
	switch r.kind {
	case reqCompute:
		if !r.started {
			r.started = true
			if _, d := k.cpu.Execute(r.seg); d > 0 {
				t.remaining = d
				return
			}
		}
		t.pending = nil

	case reqCompute2:
		// Two segments in one request: the second is costed the instant
		// the first finishes consuming CPU, exactly as two back-to-back
		// Compute calls would be, but without the thread handshake in
		// between. The idle-loop instrument uses this so its sampling
		// costs one handshake per record, not two.
		for {
			if r.started {
				if r.stage == 1 {
					if k.idleSkip && t.bulk != nil {
						k.noteBulkCycle(t, r)
					}
					t.pending = nil
					return
				}
				r.stage = 1
				r.started = false
			}
			r.started = true
			seg := &r.seg
			if r.stage == 1 {
				seg = &r.seg2
			}
			if k.idleSkip && t.bulk != nil && r.stage == 0 {
				// Open a bulk-cycle observation: wall start, per-stage
				// analytic durations, a counter snapshot to diff at
				// completion (engine.go), and the context-switch count so
				// cleanliness can require the cycle ran switch-free.
				t.cycleStart = k.now
				t.cycleD1, t.cycleD2 = 0, 0
				t.cycleSnap = k.cpu.Snapshot()
				t.cycleSwitches = k.ctxSwitches
			}
			_, d := k.cpu.Execute(*seg)
			if k.idleSkip && t.bulk != nil {
				if r.stage == 0 {
					t.cycleD1 = d
				} else {
					t.cycleD2 = d
				}
			}
			if d > 0 {
				t.remaining = d
				return
			}
		}

	case reqDomainCross:
		if !r.started {
			r.started = true
			if _, d := k.cpu.DomainCross(); d > 0 {
				t.remaining = d
				return
			}
		}
		t.pending = nil

	case reqModeSwitch:
		if !r.started {
			r.started = true
			if d := k.cpu.DurationOf(k.cfg.ModeSwitchCycles); d > 0 {
				if k.rec != nil {
					k.rec.ChargeSpan(spans.CauseModeSwitch, t.name, k.now, k.now.Add(d), k.cfg.ModeSwitchCycles, 1)
				}
				t.remaining = d
				return
			}
		}
		t.pending = nil

	case reqGetMessage:
		if len(t.msgq) > 0 {
			msg := t.msgq[0]
			t.msgq = t.msgq[1:]
			t.replyMsg = msg
			call := k.now
			if r.started { // the call blocked earlier
				call = t.getCall
			}
			k.logMsgAPI(trace.MsgRecord{
				API: trace.GetMessage, Call: call, Return: k.now,
				Received: true, Kind: int(msg.Kind), Enqueued: msg.Enqueued,
				QueueLen: len(t.msgq), Thread: t.id,
			})
			t.pending = nil
			return
		}
		if !r.started {
			r.started = true
			t.getCall = k.now
			// Log the blocking call itself: the monitor sees the
			// application "prepared to accept a new event" (§2.4) even
			// if this call never returns.
			k.logMsgAPI(trace.MsgRecord{
				API: trace.GetMessage, Call: k.now, Return: k.now,
				Received: false, QueueLen: 0, Thread: t.id,
			})
		}
		t.state = StateBlockedMsg
		k.current = nil

	case reqPeekMessage:
		t.replyOK = len(t.msgq) > 0
		rec := trace.MsgRecord{
			API: trace.PeekMessage, Call: k.now, Return: k.now,
			Received: t.replyOK, QueueLen: len(t.msgq), Thread: t.id,
		}
		if t.replyOK {
			msg := t.msgq[0]
			t.msgq = t.msgq[1:]
			t.replyMsg = msg
			rec.Kind = int(msg.Kind)
			rec.Enqueued = msg.Enqueued
			rec.QueueLen = len(t.msgq)
		} else {
			t.replyMsg = Msg{}
		}
		k.logMsgAPI(rec)
		t.pending = nil

	case reqPost:
		k.deliver(r.target, r.msg)
		t.pending = nil

	case reqSleep:
		if !r.started {
			r.started = true
			wake := k.now.Add(r.d)
			if k.cfg.TimersTickAligned {
				wake = k.NextTick(wake)
			}
			t.state = StateSleeping
			k.current = nil
			k.At(wake, func(now simtime.Time) {
				if t.state == StateSleeping {
					k.wake(t)
				}
			})
			return
		}
		t.pending = nil

	case reqReadFile:
		if !r.started {
			r.started = true
			t.ioReady = false
			if k.rec != nil {
				// The span opens before the cache lookup so hit/miss and
				// disk spans nest inside the syscall.
				t.ioSpan = k.rec.Begin(spans.CauseSyscall, "ReadFile")
			}
			inline := true
			missing := k.cache.Read(r.file, r.page, r.pages, func(now simtime.Time, err error) {
				if err != nil {
					k.ioErrs++
				}
				if inline {
					return // all pages hit; no block happened
				}
				k.raiseDiskInterrupt(func(now2 simtime.Time) {
					t.ioReady = true
					k.setSyncIO(k.syncIO - 1)
					k.wake(t)
				})
			})
			inline = false
			if missing == 0 {
				k.rec.End(t.ioSpan)
				t.ioSpan = spans.Handle{}
				t.pending = nil
				return
			}
			k.setSyncIO(k.syncIO + 1)
			t.state = StateBlockedIO
			k.current = nil
			return
		}
		if !t.ioReady {
			// Spuriously re-processed; stay blocked.
			t.state = StateBlockedIO
			k.current = nil
			return
		}
		k.rec.End(t.ioSpan)
		t.ioSpan = spans.Handle{}
		t.pending = nil

	case reqWriteFile:
		if !r.started {
			r.started = true
			t.ioReady = false
			if k.rec != nil {
				t.ioSpan = k.rec.Begin(spans.CauseSyscall, "WriteFile")
			}
			k.cache.Write(r.file, r.page, r.pages, func(now simtime.Time, err error) {
				if err != nil {
					k.ioErrs++
				}
				k.raiseDiskInterrupt(func(now2 simtime.Time) {
					t.ioReady = true
					k.setSyncIO(k.syncIO - 1)
					k.wake(t)
				})
			})
			k.setSyncIO(k.syncIO + 1)
			t.state = StateBlockedIO
			k.current = nil
			return
		}
		if !t.ioReady {
			t.state = StateBlockedIO
			k.current = nil
			return
		}
		k.rec.End(t.ioSpan)
		t.ioSpan = spans.Handle{}
		t.pending = nil

	case reqYield:
		t.pending = nil
		if k.hasReadyAtPrio(t.prio) {
			k.current = nil
			k.makeReady(t)
		}

	case reqExit:
		if k.epOpen && k.epThread == t.id {
			k.rec.EndAt(k.episode, k.now)
			k.epOpen = false
		}
		t.pending = nil
		t.state = StateDone
		k.current = nil

	default:
		panic(fmt.Sprintf("kernel: unknown request kind %d", r.kind))
	}
}

func (k *Kernel) logMsgAPI(rec trace.MsgRecord) {
	if k.rec != nil {
		k.noteMsgAPI(rec)
	}
	if k.hooks.OnMsgAPI != nil {
		k.hooks.OnMsgAPI(rec)
	}
}

// noteMsgAPI maintains the episode span across message-API activity: an
// episode runs from a user-input message's hardware enqueue to the
// handling thread's next message-API call — the instant the application
// "prepared to accept a new event" (paper §2.4). Episodes never nest;
// retrieving fresh user input while one is open closes it.
func (k *Kernel) noteMsgAPI(r trace.MsgRecord) {
	input := r.Received && MsgKind(r.Kind).UserInput()
	if k.epOpen && (r.Thread == k.epThread || input) {
		k.rec.EndAt(k.episode, k.now)
		k.epOpen = false
	}
	if input {
		label := MsgKind(r.Kind).String()
		k.episode = k.rec.BeginAt(spans.CauseEpisode, label, r.Enqueued)
		// The wait between hardware enqueue and retrieval is the latency
		// component Fig. 1's API-only measurement misses.
		k.rec.ChargeSpan(spans.CauseQueueWait, label, r.Enqueued, k.now, 0, 0)
		k.epThread = r.Thread
		k.epOpen = true
	}
}

func (k *Kernel) setSyncIO(n int) {
	k.syncIO = n
	if k.hooks.OnSyncIO != nil {
		k.hooks.OnSyncIO(n, k.now)
	}
}
