package kernel

import (
	"strings"
	"testing"

	"latlab/internal/cpu"
	"latlab/internal/simtime"
)

func TestMsgKindStrings(t *testing.T) {
	cases := map[MsgKind]string{
		WMNull: "WM_NULL", WMKeyDown: "WM_KEYDOWN", WMChar: "WM_CHAR",
		WMMouseDown: "WM_LBUTTONDOWN", WMMouseUp: "WM_LBUTTONUP",
		WMPaint: "WM_PAINT", WMTimer: "WM_TIMER", WMQueueSync: "WM_QUEUESYNC",
		WMCommand: "WM_COMMAND", WMIdleWork: "WM_IDLEWORK",
		WMSysCommand: "WM_SYSCOMMAND", WMQuit: "WM_QUIT",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if MsgKind(99).String() != "WM_UNKNOWN" {
		t.Fatalf("unknown kind string wrong")
	}
}

func TestMsgKindUserInput(t *testing.T) {
	user := []MsgKind{WMKeyDown, WMChar, WMMouseDown, WMMouseUp, WMCommand, WMSysCommand}
	notUser := []MsgKind{WMNull, WMPaint, WMTimer, WMQueueSync, WMIdleWork, WMQuit}
	for _, k := range user {
		if !k.UserInput() {
			t.Fatalf("%v should be user input", k)
		}
	}
	for _, k := range notUser {
		if k.UserInput() {
			t.Fatalf("%v should not be user input", k)
		}
	}
}

func TestThreadStateStrings(t *testing.T) {
	states := []ThreadState{StateNew, StateReady, StateRunning,
		StateBlockedMsg, StateBlockedIO, StateSleeping, StateDone}
	want := []string{"new", "ready", "running", "blocked-msg", "blocked-io", "sleeping", "done"}
	for i, s := range states {
		if s.String() != want[i] {
			t.Fatalf("state %d = %q, want %q", i, s.String(), want[i])
		}
	}
	if !strings.Contains(ThreadState(99).String(), "99") {
		t.Fatalf("unknown state should include value")
	}
}

func TestThreadAccessors(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	th := k.Spawn("acc", ProcID(7), 9, func(tc *TC) {
		tc.GetMessage()
	})
	if th.ID() != 1 || th.Name() != "acc" || th.Proc() != 7 || th.Priority() != 9 {
		t.Fatalf("accessors wrong: %d %q %d %d", th.ID(), th.Name(), th.Proc(), th.Priority())
	}
	k.Run(simtime.Time(simtime.Millisecond))
	if th.State() != StateBlockedMsg {
		t.Fatalf("state = %v", th.State())
	}
	if th.QueueLen() != 0 {
		t.Fatalf("queue len = %d", th.QueueLen())
	}
}

func TestTCCyclesAndNow(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	var cyclesAt3ms int64
	var nowAt3ms simtime.Time
	k.Spawn("t", 1, 8, func(tc *TC) {
		tc.Compute(burn("w", 3))
		cyclesAt3ms = tc.Cycles()
		nowAt3ms = tc.Now()
	})
	k.Run(simtime.Time(simtime.Second))
	if cyclesAt3ms != 300_000 {
		t.Fatalf("Cycles = %d, want 300000 at 3ms", cyclesAt3ms)
	}
	if nowAt3ms != simtime.Time(3*simtime.Millisecond) {
		t.Fatalf("Now = %v", nowAt3ms)
	}
}

func TestTCDomainCrossAndModeSwitch(t *testing.T) {
	cfg := quietConfig()
	cfg.ModeSwitchCycles = 200
	k := New(cfg)
	defer k.Shutdown()
	var afterCross, afterMode simtime.Time
	k.Spawn("t", 1, 8, func(tc *TC) {
		tc.DomainCross()
		afterCross = tc.Now()
		tc.ModeSwitch()
		afterMode = tc.Now()
	})
	k.Run(simtime.Time(simtime.Second))
	crossDur := simtime.CPUFrequency.DurationOf(k.CPU().Penalties.DomainCrossing)
	if afterCross != simtime.Time(crossDur) {
		t.Fatalf("cross end = %v, want %v", afterCross, crossDur)
	}
	if afterMode.Sub(afterCross) != 2*simtime.Microsecond {
		t.Fatalf("mode switch = %v, want 2µs (200 cycles)", afterMode.Sub(afterCross))
	}
	if k.CPU().Count(cpu.DomainCrossings) != 1 {
		t.Fatalf("crossings = %d", k.CPU().Count(cpu.DomainCrossings))
	}
}

func TestTCPostAndHasMessage(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	var got Msg
	var hadBefore, hadAfter bool
	receiver := k.Spawn("rx", 1, 8, func(tc *TC) {
		got = tc.GetMessage()
	})
	k.Spawn("tx", 2, 8, func(tc *TC) {
		hadBefore = tc.HasMessage()
		tc.Compute(burn("w", 2))
		tc.Post(receiver, WMCommand, 77)
		// Posting to self makes HasMessage true without consuming.
		tc.Post(tc.Thread(), WMNull, 0)
		hadAfter = tc.HasMessage()
	})
	k.Run(simtime.Time(simtime.Second))
	if got.Kind != WMCommand || got.Param != 77 {
		t.Fatalf("message = %+v", got)
	}
	if hadBefore || !hadAfter {
		t.Fatalf("HasMessage before/after = %v/%v", hadBefore, hadAfter)
	}
}

func TestTCForwardPreservesEnqueued(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	var final Msg
	sink := k.Spawn("sink", 1, 8, func(tc *TC) {
		final = tc.GetMessage()
	})
	router := k.Spawn("router", 2, 12, func(tc *TC) {
		m := tc.GetMessage()
		tc.Compute(burn("routing", 5))
		tc.Forward(sink, m)
	})
	k.At(simtime.Time(10*simtime.Millisecond), func(simtime.Time) {
		k.KeyboardInterrupt(router, WMKeyDown, 5)
	})
	k.Run(simtime.Time(simtime.Second))
	if final.Enqueued != simtime.Time(10*simtime.Millisecond) {
		t.Fatalf("forwarded Enqueued = %v, want the original interrupt time", final.Enqueued)
	}
	if final.Param != 5 {
		t.Fatalf("payload lost: %+v", final)
	}
}

func TestSetTimerPostsTickAligned(t *testing.T) {
	cfg := quietConfig()
	cfg.TimersTickAligned = true
	k := New(cfg)
	defer k.Shutdown()
	var got Msg
	var at simtime.Time
	k.Spawn("t", 1, 8, func(tc *TC) {
		tc.Compute(burn("w", 3))
		tc.SetTimer(simtime.FromMillis(2), WMTimer, 9) // 3+2 → next tick at 10ms
		got = tc.GetMessage()
		at = tc.Now()
	})
	k.Run(simtime.Time(simtime.Second))
	if got.Kind != WMTimer || got.Param != 9 {
		t.Fatalf("timer message = %+v", got)
	}
	if at != simtime.Time(10*simtime.Millisecond) {
		t.Fatalf("timer fired at %v, want 10ms", at)
	}
}

func TestSetTimerToExitedThreadDropped(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	k.Spawn("t", 1, 8, func(tc *TC) {
		tc.SetTimer(simtime.FromMillis(50), WMTimer, 0)
		// Exit before the timer fires.
	})
	k.Run(simtime.Time(200 * simtime.Millisecond)) // must not panic
}

func TestMouseInterruptDelivers(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	var got Msg
	app := k.Spawn("app", 1, 8, func(tc *TC) { got = tc.GetMessage() })
	k.At(simtime.Time(5*simtime.Millisecond), func(simtime.Time) {
		k.MouseInterrupt(app, WMMouseDown, 3)
	})
	k.Run(simtime.Time(simtime.Second))
	if got.Kind != WMMouseDown || got.Param != 3 {
		t.Fatalf("mouse message = %+v", got)
	}
	if got.Enqueued != simtime.Time(5*simtime.Millisecond) {
		t.Fatalf("enqueued = %v", got.Enqueued)
	}
}

func TestKernelAccessors(t *testing.T) {
	cfg := quietConfig()
	k := New(cfg)
	defer k.Shutdown()
	if k.Counters() == nil || k.Disk() == nil || k.Cache() == nil || k.CPU() == nil {
		t.Fatalf("nil accessor")
	}
	if k.Config().ClockTick != cfg.ClockTick {
		t.Fatalf("config accessor wrong")
	}
	end := k.RunFor(95 * simtime.Millisecond)
	if end != simtime.Time(95*simtime.Millisecond) || k.Now() != end {
		t.Fatalf("RunFor end = %v", end)
	}
	if k.ClockTicks() != 9 {
		t.Fatalf("clock ticks = %d, want 9 over 95ms", k.ClockTicks())
	}
}

func TestAtPastPanics(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	k.RunFor(10 * simtime.Millisecond)
	defer func() {
		if recover() == nil {
			t.Fatalf("At in the past should panic")
		}
	}()
	k.At(simtime.Time(5*simtime.Millisecond), func(simtime.Time) {})
}

func TestAfterNegativePanics(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatalf("negative After should panic")
		}
	}()
	k.After(-1, func(simtime.Time) {})
}

func TestDeliverNilPanics(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatalf("PostMessage to nil should panic")
		}
	}()
	k.PostMessage(nil, WMChar, 0)
}

func TestSleepWhileMessagePendingStillSleeps(t *testing.T) {
	// Sleep must not be interrupted by message arrival; the message is
	// consumed afterwards.
	k := New(quietConfig())
	defer k.Shutdown()
	var woke simtime.Time
	var got Msg
	app := k.Spawn("app", 1, 8, func(tc *TC) {
		tc.Sleep(simtime.FromMillis(40))
		woke = tc.Now()
		got, _ = tc.PeekMessage()
	})
	k.At(simtime.Time(5*simtime.Millisecond), func(simtime.Time) {
		k.PostMessage(app, WMChar, 1)
	})
	k.Run(simtime.Time(simtime.Second))
	if woke != simtime.Time(40*simtime.Millisecond) {
		t.Fatalf("woke at %v, want 40ms (sleep not cut short)", woke)
	}
	if got.Kind != WMChar {
		t.Fatalf("queued message lost: %+v", got)
	}
}

func TestNonIdleBusyWhileRunning(t *testing.T) {
	// NonIdleBusyTime must be queryable mid-busy (open interval).
	k := New(quietConfig())
	defer k.Shutdown()
	k.Spawn("w", 1, 8, func(tc *TC) {
		tc.Compute(burn("w", 50))
	})
	k.RunFor(20 * simtime.Millisecond)
	if got := k.NonIdleBusyTime(); got != 20*simtime.Millisecond {
		t.Fatalf("mid-run busy = %v, want 20ms", got)
	}
}

func TestCPUFrequencyOverride(t *testing.T) {
	cfg := quietConfig()
	cfg.CPUFrequency = 20_000_000 // 20 MHz
	k := New(cfg)
	defer k.Shutdown()
	var done simtime.Time
	k.Spawn("w", 1, 8, func(tc *TC) {
		tc.Compute(cpu.Segment{Name: "w", BaseCycles: 100_000})
		done = tc.Now()
	})
	k.Run(simtime.Time(simtime.Second))
	// 100k cycles at 20 MHz = 5 ms (vs 1 ms at the default 100 MHz).
	if done != simtime.Time(5*simtime.Millisecond) {
		t.Fatalf("done at %v, want 5ms at 20MHz", done)
	}
}

func TestCPUFrequencyInvalidPanics(t *testing.T) {
	cfg := quietConfig()
	cfg.CPUFrequency = 3 // no integral ns period
	defer func() {
		if recover() == nil {
			t.Fatalf("invalid frequency should panic at boot")
		}
	}()
	New(cfg)
}

func TestReadFileAsync(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	f := k.Cache().AddFile("bg", 150_000, 64)
	syncPeak := 0
	k.SetHooks(Hooks{OnSyncIO: func(n int, now simtime.Time) {
		if n > syncPeak {
			syncPeak = n
		}
	}})
	var done Msg
	var issued, completed simtime.Time
	k.Spawn("app", 1, 8, func(tc *TC) {
		tc.ReadFileAsync(f, 0, 16, WMIdleWork, 42)
		issued = tc.Now()
		done = tc.GetMessage()
		completed = tc.Now()
	})
	k.Run(simtime.Time(simtime.Second))
	if done.Kind != WMIdleWork || done.Param != 42 {
		t.Fatalf("completion message = %+v", done)
	}
	if completed.Sub(issued) < simtime.FromMillis(2) {
		t.Fatalf("async read completed too fast: %v", completed.Sub(issued))
	}
	if syncPeak != 0 {
		t.Fatalf("async I/O must not count as synchronous (peak %d)", syncPeak)
	}
}

func TestReadFileAsyncWarmCompletesInline(t *testing.T) {
	k := New(quietConfig())
	defer k.Shutdown()
	f := k.Cache().AddFile("bg", 150_000, 64)
	var gap simtime.Duration
	k.Spawn("app", 1, 8, func(tc *TC) {
		tc.ReadFile(f, 0, 16) // warm the cache synchronously
		start := tc.Now()
		tc.ReadFileAsync(f, 0, 16, WMIdleWork, 0)
		tc.GetMessage()
		gap = tc.Now().Sub(start)
	})
	k.Run(simtime.Time(simtime.Second))
	if gap != 0 {
		t.Fatalf("warm async read should complete immediately, took %v", gap)
	}
}
