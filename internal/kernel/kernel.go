// Package kernel implements the simulated operating system under study:
// a single-CPU priority scheduler with preemption and timeslicing, a
// 10 ms clock interrupt, interrupt-driven devices that steal time from
// whatever is running, per-thread message queues behind GetMessage/
// PeekMessage, and synchronous file I/O through the buffer cache.
//
// Threads are goroutines coupled to the simulator by a strict handshake
// (see thread.go): exactly one of {simulator, one thread} executes at any
// moment, so runs are deterministic and data-race-free by construction.
//
// One modelling approximation is worth stating up front: a Compute
// request is costed against the memory system when it starts, even
// though its simulated time is consumed under scheduling (possibly
// interleaved with interrupts and preemption). Costing therefore happens
// in execution-start order, which preserves the warmth effects the paper
// analyses; what is lost is only re-costing of a chunk's tail after a
// mid-chunk context switch.
package kernel

import (
	"fmt"

	"latlab/internal/cpu"
	"latlab/internal/disk"
	"latlab/internal/eventq"
	"latlab/internal/fscache"
	"latlab/internal/machine"
	"latlab/internal/simtime"
	"latlab/internal/spans"
	"latlab/internal/trace"
)

// Config fixes the machine and OS-mechanism parameters. Personas supply
// different configs per simulated operating system; the hardware side
// is carried by Machine, with the paper's Pentium as the default.
type Config struct {
	// Machine is the hardware profile the kernel boots on: clock rate,
	// TLB/L2 capacities and tagging, memory-event penalties, and disk
	// geometry are all derived from it. The zero value means
	// machine.Pentium100(), the paper's machine.
	Machine machine.Profile
	// Quantum is the scheduler timeslice.
	Quantum simtime.Duration
	// ContextSwitch is the cost charged when the CPU moves between
	// threads.
	ContextSwitch cpu.Segment
	// FlushOnProcessSwitch flushes the TLBs when the incoming thread
	// belongs to a different process (address space).
	FlushOnProcessSwitch bool
	// ClockTick is the hardware timer period (10 ms on the paper's
	// systems).
	ClockTick simtime.Duration
	// ClockInterrupt is the per-tick handler cost (~400 cycles minimum
	// on NT 4.0, paper §2.5).
	ClockInterrupt cpu.Segment
	// DiskInterrupt and KeyboardInterrupt and MouseInterrupt are the
	// device-handler costs.
	DiskInterrupt     cpu.Segment
	KeyboardInterrupt cpu.Segment
	MouseInterrupt    cpu.Segment
	// ModeSwitchCycles is the cost of a user/kernel mode switch without
	// an address-space change.
	ModeSwitchCycles int64
	// TimersTickAligned rounds Sleep wakeups up to clock ticks, the
	// SetTimer behaviour that produces the paper's Fig. 4 animation
	// stair pattern.
	TimersTickAligned bool
	// DiskParams overrides the drive parameters when non-zero; the zero
	// value derives them from Machine (disk.ParamsFor). CachePages
	// sizes the buffer cache; DiskSeed fixes rotational phase.
	DiskParams disk.Params
	CachePages int
	DiskSeed   uint64
	// DomainCrossingCycles overrides the direct protection-domain-
	// crossing cost when non-zero. It is the one penalty the OS owns
	// (trap path, state save, address-space switch), so personas set it
	// while the Machine profile supplies the hardware penalties.
	DomainCrossingCycles int64
	// Penalties overrides the whole CPU cost model when non-zero,
	// squashing both the Machine-derived penalties and
	// DomainCrossingCycles — the pre-profile escape hatch for ablations
	// that need exact control (including explicit zero fields).
	Penalties cpu.Penalties
	// CPUFrequency overrides the simulated clock rate when non-zero,
	// taking precedence over Machine.ClockHz. Segment costs are in
	// cycles, so a slower clock slows every operation proportionally —
	// the paper's §5.1 remark that latencies unnoticed on their machine
	// "might have a significant effect ... on a slower machine".
	CPUFrequency simtime.Hz
	// Engine selects the simulation-core strategy (queue backend,
	// analytic idle skipping). The zero value is the reference engine;
	// see engine.go. Both engines produce byte-identical results.
	Engine Engine
}

// DefaultConfig returns a neutral machine configuration; personas
// override the OS-specific pieces.
func DefaultConfig() Config {
	return Config{
		Quantum:              20 * simtime.Millisecond,
		ContextSwitch:        cpu.Segment{Name: "ctxsw", BaseCycles: 600, Instructions: 400, DataRefs: 150},
		FlushOnProcessSwitch: true,
		ClockTick:            10 * simtime.Millisecond,
		ClockInterrupt:       cpu.Segment{Name: "clock", BaseCycles: 400, Instructions: 250, DataRefs: 80},
		DiskInterrupt:        cpu.Segment{Name: "diskintr", BaseCycles: 2500, Instructions: 1500, DataRefs: 600},
		KeyboardInterrupt:    cpu.Segment{Name: "kbdintr", BaseCycles: 3000, Instructions: 1800, DataRefs: 700},
		MouseInterrupt:       cpu.Segment{Name: "mouseintr", BaseCycles: 1500, Instructions: 900, DataRefs: 350},
		ModeSwitchCycles:     150,
		TimersTickAligned:    true,
		CachePages:           2048, // 8 MB buffer cache out of 32 MB RAM
		DiskSeed:             1996,
	}
}

// Hooks are observation points for the measurement layer. All are
// optional. They fire from simulator context; handlers must not call
// back into the kernel except for pure queries.
type Hooks struct {
	// OnMsgAPI fires for every completed GetMessage/PeekMessage call.
	OnMsgAPI func(rec trace.MsgRecord)
	// OnPost fires when a message is enqueued.
	OnPost func(target *Thread, msg Msg, now simtime.Time, queueLen int)
	// OnBusy fires when the CPU's non-idle-busy state changes. Idle-class
	// threads do not count as busy — they stand in for the idle loop.
	OnBusy func(busy bool, now simtime.Time)
	// OnSyncIO fires when the number of outstanding synchronous I/O
	// requests changes.
	OnSyncIO func(outstanding int, now simtime.Time)
}

// Kernel is the simulated operating system instance.
type Kernel struct {
	cfg Config
	now simtime.Time
	// runUntil is the current Run call's horizon; bulk idle-skip never
	// advances the clock past it.
	runUntil simtime.Time
	q        eventq.Queue
	cpu      *cpu.CPU
	ctrs     *cpu.CounterFile
	disk     *disk.Disk
	cache    *fscache.Cache
	hooks    Hooks

	threads []*Thread
	ready   []*Thread
	seq     uint64

	current     *Thread
	completion  eventq.Handle
	stolenUntil simtime.Time
	lastRun     *Thread

	// Cached event callbacks: the scheduler arms these thousands of
	// times per simulated second, and recreating the closure (or method
	// value) on every arm was a measurable share of all allocations.
	onCompletionFn func(now simtime.Time)
	reconcileFn    func(now simtime.Time)
	clockFn        func(now simtime.Time)

	inReconcile    bool
	reconcileAgain bool

	// tickJitter, when set, perturbs the arming of each clock tick (the
	// fault layer's timer-jitter injection). nil means exact 10 ms ticks.
	tickJitter func(now simtime.Time, tick int64) simtime.Duration
	ioErrs     int64

	syncIO   int
	busy     bool
	busyAcc  simtime.Duration
	busyFrom simtime.Time

	clockTicks int64
	shutdown   bool
	// idleSkip caches cfg.Engine.IdleSkip for the scheduler hot path;
	// bulkElided counts idle cycles accounted analytically;
	// ctxSwitches counts thread context switches (startChunk), letting
	// the cleanliness proof require "no switch inside this cycle" —
	// a process switch may flush the TLBs without an immediate miss.
	idleSkip    bool
	bulkElided  int64
	ctxSwitches uint64

	// rec, when non-nil, receives cause-tagged spans from every charge
	// point in the kernel and its machine. episode/epThread/epOpen track
	// the one interactive episode open at a time: from a user-input
	// message's enqueue to the handling thread's next message-API call.
	rec      *spans.Recorder
	episode  spans.Handle
	epThread int
	epOpen   bool

	// Modern-machine state (multicore.go); all of it stays zero on a
	// 1996 profile. aux holds logical CPUs 1..Cores-1; dvfs is the
	// governor spec with dvfsLevel/dvfsBusyMark its per-tick state;
	// irqc/irqPending/irqTimer implement disk-interrupt coalescing.
	aux           []auxCore
	auxMigrations int64
	dvfs          machine.DVFSSpec
	dvfsLevel     int
	dvfsBusyMark  simtime.Duration
	irqc          machine.IRQCoalesceSpec
	irqPending    []func(now simtime.Time)
	irqTimer      eventq.Handle
}

// New builds a kernel (and its machine: CPU, disk, buffer cache) from
// cfg. The hardware trio is derived from cfg.Machine (the paper's
// Pentium when unset); explicit cfg overrides — penalty fields,
// CPUFrequency, DiskParams — win over the profile derivation.
func New(cfg Config) *Kernel {
	prof := cfg.Machine.OrDefault()
	cfg.Machine = prof
	k := &Kernel{cfg: cfg}
	k.idleSkip = cfg.Engine.IdleSkip
	if cfg.Engine.Queue == QueueCalendar {
		k.q.UseCalendar()
	}
	k.q.Grow(256)
	k.onCompletionFn = k.onCompletion
	k.reconcileFn = func(now simtime.Time) { k.reconcile() }
	k.cpu = cpu.NewFor(prof)
	if cfg.DomainCrossingCycles != 0 {
		k.cpu.Penalties.DomainCrossing = cfg.DomainCrossingCycles
	}
	if cfg.Penalties != (cpu.Penalties{}) {
		k.cpu.Penalties = cfg.Penalties
	}
	if cfg.CPUFrequency != 0 {
		cfg.CPUFrequency.Validate()
		k.cpu.Freq = cfg.CPUFrequency
	}
	dp := cfg.DiskParams
	if dp == (disk.Params{}) {
		dp = disk.ParamsFor(prof)
	}
	k.ctrs = cpu.NewCounterFile(k.cpu)
	k.disk = disk.New(dp, k, cfg.DiskSeed)
	k.cache = fscache.New(k.disk, cfg.CachePages)
	if n := prof.Cores - 1; n > 0 {
		k.aux = make([]auxCore, n)
	}
	if prof.DVFS.Enabled() && (cfg.CPUFrequency == 0 || cfg.CPUFrequency == prof.ClockHz) {
		// The machine boots at the governor's lowest level, the resting
		// point an idle machine decays to. A CPUFrequency override that
		// contradicts the ladder disables the governor instead of
		// running a ladder whose max is not the machine's clock.
		k.dvfs = prof.DVFS
		k.cpu.SetClock(k.dvfs.Level(0))
	}
	k.irqc = prof.IRQCoalesce
	k.scheduleClock()
	return k
}

// Machine returns the hardware profile the kernel booted on.
func (k *Kernel) Machine() machine.Profile { return k.cfg.Machine }

// SetHooks installs observation hooks; call before Run.
func (k *Kernel) SetHooks(h Hooks) { k.hooks = h }

// SetRecorder attaches a span recorder to the kernel and its whole
// machine (CPU, memory system, disk, buffer cache), so every charge
// point emits a cause-tagged span. A nil recorder restores the exact
// untraced code path everywhere. Recording never perturbs the
// simulation: schedules are byte-identical with and without it.
func (k *Kernel) SetRecorder(rec *spans.Recorder) {
	k.rec = rec
	k.cpu.SetRecorder(rec, func() simtime.Time { return k.now })
	k.disk.SetRecorder(rec)
	k.cache.SetRecorder(rec)
}

// Recorder returns the attached span recorder, nil when tracing is off.
func (k *Kernel) Recorder() *spans.Recorder { return k.rec }

// Now returns the current simulated time.
func (k *Kernel) Now() simtime.Time { return k.now }

// CPU returns the simulated processor.
func (k *Kernel) CPU() *cpu.CPU { return k.cpu }

// Counters returns the performance-counter file.
func (k *Kernel) Counters() *cpu.CounterFile { return k.ctrs }

// Cache returns the buffer cache (for file registration).
func (k *Kernel) Cache() *fscache.Cache { return k.cache }

// Disk returns the disk model.
func (k *Kernel) Disk() *disk.Disk { return k.disk }

// Config returns the kernel configuration.
func (k *Kernel) Config() Config { return k.cfg }

// ClockTicks returns the number of clock interrupts taken so far.
func (k *Kernel) ClockTicks() int64 { return k.clockTicks }

// SyncIOOutstanding returns the number of threads blocked in synchronous
// file I/O.
func (k *Kernel) SyncIOOutstanding() int { return k.syncIO }

// IOErrors returns the number of file I/O operations that completed with
// a device error (only possible with a disk fault model installed).
func (k *Kernel) IOErrors() int64 { return k.ioErrs }

// SetTickJitter installs (or, with nil, removes) a perturbation applied
// when each clock tick is armed: the next tick fires at now+ClockTick+fn.
// Negative or zero jitter leaves the tick exact. Implementations must be
// deterministic; tick is the index of the tick just taken.
func (k *Kernel) SetTickJitter(fn func(now simtime.Time, tick int64) simtime.Duration) {
	k.tickJitter = fn
}

// SetPriority changes t's scheduling priority and re-runs the scheduler,
// so a raise can preempt the current thread and a drop can yield to a
// newly-best peer. The fault layer uses it to open priority-inversion
// windows.
func (k *Kernel) SetPriority(t *Thread, prio int) {
	if prio < IdlePriority {
		panic("kernel: priority below idle class")
	}
	if t.prio == prio {
		return
	}
	t.prio = prio
	k.reconcile()
}

// NonIdleBusyTime returns cumulative CPU time spent on interrupt handlers
// and non-idle-class threads — the simulator's ground truth against which
// the idle-loop methodology is validated.
func (k *Kernel) NonIdleBusyTime() simtime.Duration {
	if k.busy {
		return k.busyAcc + k.now.Sub(k.busyFrom)
	}
	return k.busyAcc
}

// After schedules fn at now+d (disk.Scheduler implementation).
func (k *Kernel) After(d simtime.Duration, fn func(now simtime.Time)) {
	if d < 0 {
		panic("kernel: negative delay")
	}
	k.q.Schedule(k.now.Add(d), fn)
}

// At schedules fn at instant t (panics if t is in the past).
func (k *Kernel) At(t simtime.Time, fn func(now simtime.Time)) eventq.Handle {
	if t < k.now {
		panic(fmt.Sprintf("kernel: scheduling into the past (%v < %v)", t, k.now))
	}
	return k.q.Schedule(t, fn)
}

// NextTick returns the first clock-tick instant at or after t.
func (k *Kernel) NextTick(t simtime.Time) simtime.Time {
	tick := int64(k.cfg.ClockTick)
	n := (int64(t) + tick - 1) / tick
	return simtime.Time(n * tick)
}

// Spawn creates a thread in process proc at the given priority and makes
// it runnable. The body runs on its own goroutine under the simulator's
// handshake.
func (k *Kernel) Spawn(name string, proc ProcID, prio int, body func(tc *TC)) *Thread {
	if prio < IdlePriority {
		panic("kernel: priority below idle class")
	}
	t := &Thread{
		id:       len(k.threads) + 1,
		name:     name,
		proc:     proc,
		prio:     prio,
		k:        k,
		body:     body,
		resume:   make(chan resumeToken),
		requests: make(chan request),
		state:    StateNew,
	}
	k.threads = append(k.threads, t)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killSentinel); ok {
					return
				}
				panic(r)
			}
		}()
		tok := <-t.resume
		if tok.kill {
			return
		}
		t.body(&TC{t: t, k: k})
		t.requests <- request{kind: reqExit}
	}()
	k.makeReady(t)
	k.reconcile()
	return t
}

// Run processes events until the queue empties or simulated time would
// pass `until`. It returns the time at which it stopped.
func (k *Kernel) Run(until simtime.Time) simtime.Time {
	// The idle-skip engine must never advance past the run horizon: the
	// slow path stops mid-cycle at `until` exactly, so bulk elision is
	// clamped to cycles ending at or before it (tryBulkSkip).
	k.runUntil = until
	for {
		next := k.q.NextTime()
		if next == simtime.Never || next > until {
			k.advance(until)
			return k.now
		}
		e, _ := k.q.Pop()
		k.advance(e.At())
		e.Fire(k.now)
	}
}

// RunFor runs for a span of simulated time.
func (k *Kernel) RunFor(d simtime.Duration) simtime.Time {
	return k.Run(k.now.Add(d))
}

func (k *Kernel) advance(t simtime.Time) {
	if t < k.now {
		panic("kernel: time went backwards")
	}
	k.now = t
}

// Shutdown kills all live threads so their goroutines exit. The kernel
// is unusable afterwards.
func (k *Kernel) Shutdown() {
	if k.shutdown {
		return
	}
	k.shutdown = true
	if k.epOpen {
		k.rec.EndAt(k.episode, k.now)
		k.epOpen = false
	}
	for _, t := range k.threads {
		if t.state == StateDone {
			continue
		}
		// A live goroutine thread is always parked receiving on resume
		// (either in its primitive's handshake or the initial wait).
		// Loop threads have no goroutine to unwind.
		if t.loopFn == nil {
			t.resume <- resumeToken{kill: true}
		}
		t.state = StateDone
	}
}

// scheduleClock arms the recurring hardware clock interrupt. The tick
// callback reschedules itself, so the whole recurring clock costs one
// closure for the kernel's lifetime instead of one per tick.
func (k *Kernel) scheduleClock() {
	k.clockFn = func(now simtime.Time) {
		if k.shutdown {
			return
		}
		k.clockTicks++
		if k.dvfs.Enabled() {
			// Governor step first, over the window that just closed,
			// before this tick's own handler cost lands in the next one.
			k.dvfsTick()
		}
		k.RaiseInterrupt(k.cfg.ClockInterrupt, nil)
		next := k.now.Add(k.cfg.ClockTick)
		if k.tickJitter != nil {
			if j := k.tickJitter(now, k.clockTicks); j > 0 {
				next = next.Add(j)
			}
		}
		k.At(next, k.clockFn)
	}
	k.At(k.now.Add(k.cfg.ClockTick), k.clockFn)
}

// RaiseInterrupt models a hardware interrupt: the handler segment is
// costed against the machine, the CPU is stolen from whatever thread is
// running for the handler's duration (handlers queue behind each other),
// and actions — the handler's visible effects, such as posting an input
// message — run at handler completion.
func (k *Kernel) RaiseInterrupt(handler cpu.Segment, actions func(now simtime.Time)) {
	var ih spans.Handle
	if k.rec != nil {
		ih = k.rec.Begin(spans.CauseInterrupt, handler.Name)
	}
	cycles, d := k.cpu.Execute(handler)
	_ = cycles
	k.cpu.Add(cpu.Interrupts, 1)

	k.pauseCurrent()
	start := k.now
	if k.stolenUntil > start {
		start = k.stolenUntil
	}
	k.stolenUntil = start.Add(d)
	end := k.stolenUntil
	k.rec.EndAt(ih, end)
	if actions == nil {
		k.q.Schedule(end, k.reconcileFn)
	} else {
		k.q.Schedule(end, func(now simtime.Time) {
			actions(now)
			k.reconcile()
		})
	}
	k.updateBusy()
}

// DeviceInterrupt raises a device interrupt whose handler delivers msgs
// to target, in order, at handler completion. Each message's Enqueued
// stamp is the interrupt time — the instant the user acted — so latency
// measured from it includes handler and scheduling time (the Fig. 1
// discrepancy).
func (k *Kernel) DeviceInterrupt(handler cpu.Segment, target *Thread, msgs ...Msg) {
	enq := k.now
	k.RaiseInterrupt(handler, func(now simtime.Time) {
		for _, m := range msgs {
			m.Enqueued = enq
			k.deliver(target, m)
		}
	})
}

// KeyboardInterrupt raises a keyboard interrupt whose handler posts the
// message to target at completion.
func (k *Kernel) KeyboardInterrupt(target *Thread, kind MsgKind, param int64) {
	k.DeviceInterrupt(k.cfg.KeyboardInterrupt, target, Msg{Kind: kind, Param: param})
}

// MouseInterrupt raises a mouse interrupt whose handler posts the message
// to target at completion.
func (k *Kernel) MouseInterrupt(target *Thread, kind MsgKind, param int64) {
	k.DeviceInterrupt(k.cfg.MouseInterrupt, target, Msg{Kind: kind, Param: param})
}

// PostMessage enqueues a message from simulator context (timers, devices)
// without interrupt cost.
func (k *Kernel) PostMessage(target *Thread, kind MsgKind, param int64) {
	k.deliver(target, Msg{Kind: kind, Param: param, Enqueued: k.now})
	k.reconcile()
}

// deliver appends msg to target's queue, stamps Enqueued if unset, fires
// hooks, and wakes the target if it is blocked in GetMessage.
func (k *Kernel) deliver(target *Thread, msg Msg) {
	if target == nil {
		panic("kernel: deliver to nil thread")
	}
	if target.state == StateDone {
		return // messages to exited threads vanish
	}
	if msg.Enqueued == 0 {
		msg.Enqueued = k.now
	}
	target.msgq = append(target.msgq, msg)
	if k.hooks.OnPost != nil {
		k.hooks.OnPost(target, msg, k.now, len(target.msgq))
	}
	if target.state == StateBlockedMsg {
		k.wake(target)
	}
}

// wake moves a blocked or sleeping thread to the ready queue.
func (k *Kernel) wake(t *Thread) {
	switch t.state {
	case StateBlockedMsg, StateBlockedIO, StateSleeping:
		k.makeReady(t)
		k.reconcile()
	}
}

func (k *Kernel) makeReady(t *Thread) {
	if t.affinity > 0 {
		// Pinned housekeeping threads never touch the scheduler core's
		// ready queue; they wake onto their auxiliary core.
		k.auxReady(t)
		return
	}
	t.state = StateReady
	t.readySeq = k.seq
	k.seq++
	if k.rec != nil {
		t.readyAt = k.now
	}
	k.ready = append(k.ready, t)
}

// updateBusy recomputes non-idle business and fires the hook on change.
func (k *Kernel) updateBusy() {
	busy := k.now < k.stolenUntil ||
		(k.current != nil && k.current.prio > IdlePriority)
	if busy == k.busy {
		return
	}
	if busy {
		k.busyFrom = k.now
	} else {
		k.busyAcc += k.now.Sub(k.busyFrom)
	}
	k.busy = busy
	if k.hooks.OnBusy != nil {
		k.hooks.OnBusy(busy, k.now)
	}
}
