package kernel

import (
	"fmt"

	"latlab/internal/eventq"
	"latlab/internal/simtime"
)

// This file is the modern-machine half of the kernel: auxiliary cores,
// the DVFS governor, and disk-interrupt coalescing. All three are
// driven entirely by machine.Profile fields that are zero on every
// 1996 profile, and every hook below reduces to the exact pre-modern
// code path when its axis is off — which is what keeps the golden
// corpus byte-identical.
//
// The core model is deliberately bounded. Logical CPU 0 runs the full
// single-CPU scheduler, untouched: preemption, quanta, interrupts,
// TLB/cache warmth, and the idle-loop instrument all live there, as
// they did on the paper's machine. Logical CPUs 1..Cores-1 are
// auxiliary run queues for kernel-resident housekeeping threads
// (SpawnLoopOn): run-to-completion FIFO, no preemption, work costed
// against a per-core warmth approximation instead of the shared
// memory system. That asymmetry is the point — the paper's
// methodology instruments one CPU, so work that migrates off it
// simply vanishes from the instrument's view. AuxBusyTime is the
// simulator's ground truth for what the idle loop can no longer see.
type auxCore struct {
	// current is the thread whose chunk occupies the core; busyUntil
	// when that chunk completes.
	current   *Thread
	busyUntil simtime.Time
	// queue is the core's FIFO of ready-but-waiting threads.
	queue []*Thread
	// lastThread tracks whose working set is warm on this core: a
	// different incoming thread pays its cold working-set refill.
	lastThread *Thread
	// busyAcc accumulates completed chunk time (the core's busy total).
	busyAcc simtime.Duration
}

// SpawnLoopOn creates a kernel-resident loop thread pinned to logical
// CPU cpuID. cpuID 0 is the scheduler core (identical to SpawnLoop);
// 1..Cores-1 are the auxiliary cores. Only loop threads can be pinned
// off core 0: the aux interpreter runs in simulator context and
// supports the reply-free loop primitives (Compute, Compute2, Sleep,
// Post, Yield) plus exit.
func (k *Kernel) SpawnLoopOn(name string, proc ProcID, prio int, cpuID int, fn func(lc *LoopTC) bool) *Thread {
	if cpuID < 0 || cpuID > len(k.aux) {
		panic(fmt.Sprintf("kernel: cpu %d outside machine (have %d aux cores)", cpuID, len(k.aux)))
	}
	if cpuID == 0 {
		return k.SpawnLoop(name, proc, prio, fn)
	}
	if prio < IdlePriority {
		panic("kernel: priority below idle class")
	}
	if fn == nil {
		panic("kernel: nil loop function")
	}
	t := &Thread{
		id:       len(k.threads) + 1,
		name:     name,
		proc:     proc,
		prio:     prio,
		k:        k,
		state:    StateNew,
		loopFn:   fn,
		affinity: cpuID,
	}
	t.loopTC = LoopTC{t: t, k: k}
	k.threads = append(k.threads, t)
	k.auxReady(t)
	return t
}

// AuxBusyTime returns cumulative chunk time completed on the auxiliary
// cores — work the single-CPU idle-loop instrument cannot observe.
func (k *Kernel) AuxBusyTime() simtime.Duration {
	total := simtime.Duration(0)
	for i := range k.aux {
		total += k.aux[i].busyAcc
	}
	return total
}

// AuxMigrations returns how many aux chunks started on a different
// core than the thread's previous chunk (each paid MigrationCycles).
func (k *Kernel) AuxMigrations() int64 { return k.auxMigrations }

// auxReady places a pinned thread on an auxiliary core. The home core
// takes it when free; when the home core is occupied, the thread is
// stolen by the first idle aux core (deterministic scan order) and
// pays the migration tax; when every core is busy it queues FIFO on
// its home core.
func (k *Kernel) auxReady(t *Thread) {
	home := t.affinity - 1
	if k.aux[home].current == nil {
		t.state = StateReady
		k.auxRun(home, t)
		return
	}
	for i := range k.aux {
		if i != home && k.aux[i].current == nil && len(k.aux[i].queue) == 0 {
			t.state = StateReady
			k.auxRun(i, t)
			return
		}
	}
	t.state = StateReady
	k.aux[home].queue = append(k.aux[home].queue, t)
}

// auxDispatch starts the next queued thread on core ci, if any.
func (k *Kernel) auxDispatch(ci int) {
	c := &k.aux[ci]
	if c.current != nil || len(c.queue) == 0 {
		return
	}
	t := c.queue[0]
	copy(c.queue, c.queue[1:])
	c.queue = c.queue[:len(c.queue)-1]
	k.auxRun(ci, t)
}

// auxRun drives thread t on aux core ci until it blocks (compute chunk
// in flight, sleeping) or exits. Loop threads issue one request per
// invocation; the zero-time requests (Post, Yield) are absorbed here,
// bounded against a request stream that never consumes time.
func (k *Kernel) auxRun(ci int, t *Thread) {
	c := &k.aux[ci]
	for iter := 0; ; iter++ {
		if iter > 1_000_000 {
			panic("kernel: aux thread " + t.name + " is spinning without consuming time")
		}
		k.fetchInto(t)
		r := &t.reqSlot
		switch r.kind {
		case reqExit:
			t.state = StateDone
			k.auxDispatch(ci)
			return

		case reqSleep:
			wake := k.now.Add(r.d)
			if k.cfg.TimersTickAligned {
				wake = k.NextTick(wake)
			}
			t.state = StateSleeping
			k.At(wake, func(now simtime.Time) {
				if t.state == StateSleeping {
					k.wake(t)
				}
			})
			k.auxDispatch(ci)
			return

		case reqCompute, reqCompute2:
			cycles := k.auxCost(ci, t, r)
			d := k.cpu.Freq.DurationOf(cycles)
			if k.cfg.Machine.SMTPerCore == 2 && k.cfg.Machine.SMTContentionPct > 0 &&
				k.siblingBusy(ci+1) {
				d = d * simtime.Duration(100+k.cfg.Machine.SMTContentionPct) / 100
			}
			if d <= 0 {
				continue
			}
			t.state = StateRunning
			t.lastCPU = ci + 1
			c.current = t
			c.busyUntil = k.now.Add(d)
			k.At(c.busyUntil, func(now simtime.Time) {
				if k.shutdown {
					return
				}
				c.busyAcc += d
				c.current = nil
				if t.state == StateRunning {
					k.auxRun(ci, t)
				} else {
					k.auxDispatch(ci)
				}
			})
			return

		case reqPost:
			k.deliver(r.target, r.msg)
			k.reconcile()

		case reqYield:
			if len(c.queue) > 0 {
				k.aux[ci].queue = append(c.queue, t)
				t.state = StateReady
				k.auxDispatch(ci)
				return
			}

		default:
			panic(fmt.Sprintf("kernel: aux thread %s issued unsupported request kind %d", t.name, r.kind))
		}
	}
}

// auxCost prices one aux chunk. Aux cores do not share the scheduler
// core's memory system (separate L1/TLB per core; per-core counters
// are not modeled), so the cost is analytic: base cycles plus the
// micro-architectural per-event costs, plus a full working-set refill
// when the thread's warmth is not on this core — either because
// another thread ran here since, or because the thread migrated, which
// additionally pays the profile's migration tax.
func (k *Kernel) auxCost(ci int, t *Thread, r *request) int64 {
	p := &k.cpu.Penalties
	cycles := r.seg.BaseCycles +
		r.seg.SegmentLoads*p.SegmentLoad +
		r.seg.UnalignedAccesses*p.Unaligned
	pages := len(r.seg.CodePages) + len(r.seg.DataPages)
	chunks := len(r.seg.CacheChunks)
	if r.kind == reqCompute2 {
		cycles += r.seg2.BaseCycles +
			r.seg2.SegmentLoads*p.SegmentLoad +
			r.seg2.UnalignedAccesses*p.Unaligned
		pages += len(r.seg2.CodePages) + len(r.seg2.DataPages)
		chunks += len(r.seg2.CacheChunks)
	}
	c := &k.aux[ci]
	migrated := t.lastCPU != 0 && t.lastCPU != ci+1
	if c.lastThread != t || migrated {
		cycles += int64(pages)*p.TLBMiss + int64(chunks)*p.CacheMiss
	}
	if migrated {
		cycles += k.cfg.Machine.MigrationCycles
		k.auxMigrations++
	}
	c.lastThread = t
	return cycles
}

// siblingBusy reports whether logical CPU c's SMT sibling (c^1 under
// 2-way SMT) is occupied right now. Logical CPU 0 — the scheduler
// core — counts as busy when the CPU is stolen by handlers or a
// non-idle thread is current; its sibling is logical CPU 1, which is
// why the housekeeping core feels the foreground's contention.
func (k *Kernel) siblingBusy(c int) bool {
	s := c ^ 1
	if s == 0 {
		return k.now < k.stolenUntil || (k.current != nil && k.current.prio > IdlePriority)
	}
	if s-1 >= len(k.aux) {
		return false
	}
	a := &k.aux[s-1]
	return a.current != nil && k.now < a.busyUntil
}

// dvfsTick is the governor step, run once per clock tick: it converts
// the window's non-idle busy time into a load percentage and moves the
// operating point one ladder level via machine.DVFSSpec.Next (pure,
// deterministic, monotone in load). The cycle counter is invariant
// (cpu.CycleAt stays on the base clock), so a transition changes how
// long work takes from now on — including the idle-loop instrument's
// own sampling cycles, which is precisely the distortion the
// ext-modern-dvfs experiment measures.
func (k *Kernel) dvfsTick() {
	busy := k.NonIdleBusyTime()
	window := busy - k.dvfsBusyMark
	k.dvfsBusyMark = busy
	pct := int(100 * window / k.cfg.ClockTick)
	next := k.dvfs.Next(k.dvfsLevel, pct)
	if next != k.dvfsLevel {
		k.dvfsLevel = next
		k.cpu.SetClock(k.dvfs.Level(next))
	}
}

// DVFSLevel returns the governor's current ladder position (0 when the
// machine has no governor).
func (k *Kernel) DVFSLevel() int { return k.dvfsLevel }

// raiseDiskInterrupt delivers a disk-completion action. Without
// coalescing it raises one DiskInterrupt per completion — the exact
// 1996 path. With coalescing (IRQCoalesceSpec), the first pending
// completion arms a timer one window out; completions accumulate until
// the timer fires or MaxBatch is reached, then a single interrupt
// runs the whole batch's actions in completion order. One handler
// cost amortized over the batch, bought with up to one window of
// added completion latency.
func (k *Kernel) raiseDiskInterrupt(action func(now simtime.Time)) {
	if !k.irqc.Enabled() {
		k.RaiseInterrupt(k.cfg.DiskInterrupt, action)
		return
	}
	k.irqPending = append(k.irqPending, action)
	if len(k.irqPending) == 1 {
		k.irqTimer = k.At(k.now.Add(k.irqc.Window), func(now simtime.Time) {
			k.irqTimer = eventq.Handle{}
			k.flushDiskInterrupts()
		})
		if k.irqc.MaxBatch > 1 {
			return
		}
	}
	if k.irqc.MaxBatch > 0 && len(k.irqPending) >= k.irqc.MaxBatch {
		if k.irqTimer.Valid() {
			k.irqTimer.Cancel()
			k.irqTimer = eventq.Handle{}
		}
		k.flushDiskInterrupts()
	}
}

// flushDiskInterrupts raises one interrupt covering every pending
// completion.
func (k *Kernel) flushDiskInterrupts() {
	if k.shutdown || len(k.irqPending) == 0 {
		return
	}
	batch := k.irqPending
	k.irqPending = nil
	k.RaiseInterrupt(k.cfg.DiskInterrupt, func(now simtime.Time) {
		for _, a := range batch {
			a(now)
		}
	})
}
