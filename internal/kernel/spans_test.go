package kernel

import (
	"testing"

	"latlab/internal/simtime"
	"latlab/internal/spans"
)

// attach boots a recorder on k reading the kernel clock.
func attach(k *Kernel) *spans.Recorder {
	rec := spans.NewRecorder(func() simtime.Time { return k.Now() })
	rec.Grow(1 << 12)
	k.SetRecorder(rec)
	return rec
}

// TestSpansEpisodeFromKeystroke drives one keystroke through a handler
// thread and checks the episode span carries the full decomposition:
// queue wait from the hardware interrupt, the handler's execution, and
// closure at the next GetMessage call.
func TestSpansEpisodeFromKeystroke(t *testing.T) {
	cfg := quietConfig()
	k := New(cfg)
	defer k.Shutdown()
	rec := attach(k)

	app := k.Spawn("app", 1, 8, func(tc *TC) {
		for {
			m := tc.GetMessage()
			if m.Kind == WMQuit {
				return
			}
			tc.Compute(burn("handle", 5))
		}
	})
	k.At(simtime.Time(20*simtime.Millisecond), func(now simtime.Time) {
		k.KeyboardInterrupt(app, WMKeyDown, 'a')
	})
	k.At(simtime.Time(100*simtime.Millisecond), func(now simtime.Time) {
		k.PostMessage(app, WMQuit, 0)
	})
	k.Run(simtime.Time(simtime.Second))

	eps, _ := spans.Episodes(rec.Spans())
	if len(eps) != 1 {
		t.Fatalf("got %d episodes, want 1: %+v", len(eps), eps)
	}
	ep := eps[0]
	if ep.Label != "WM_KEYDOWN" {
		t.Fatalf("episode label = %q", ep.Label)
	}
	if ep.Start != simtime.Time(20*simtime.Millisecond) {
		t.Fatalf("episode starts at %v, want the interrupt instant 20ms", ep.Start)
	}
	// End = next GetMessage = interrupt + handler cost + 5ms compute.
	if ep.Duration() < 5*simtime.Millisecond || ep.Duration() > 6*simtime.Millisecond {
		t.Fatalf("episode duration = %v, want ~5ms", ep.Duration())
	}
	if ep.A.Dur[spans.CauseQueueWait] == 0 {
		t.Fatal("episode lost its queue-wait component")
	}
	if ep.A.Cycles[spans.CauseBase] < msOfCycles(5) {
		t.Fatalf("handler base cycles = %d, want >= %d", ep.A.Cycles[spans.CauseBase], msOfCycles(5))
	}
}

// TestSpansInterruptAndFlushAttribution checks that interrupt-handler
// work is attributed to the interrupt cause and that a process switch
// records a TLB flush with the discarded-entry count.
func TestSpansInterruptAndFlushAttribution(t *testing.T) {
	cfg := DefaultConfig() // real context switches, flushes, clock ticks
	k := New(cfg)
	defer k.Shutdown()
	rec := attach(k)

	seg := burn("w", 3)
	seg.CodePages = []uint64{1, 2, 3}
	seg.DataPages = []uint64{10, 11}
	k.Spawn("a", 1, 8, func(tc *TC) {
		for i := 0; i < 4; i++ {
			tc.Compute(seg)
			tc.Yield()
		}
	})
	segB := burn("w2", 3)
	segB.CodePages = []uint64{7, 8}
	k.Spawn("b", 2, 8, func(tc *TC) {
		for i := 0; i < 4; i++ {
			tc.Compute(segB)
			tc.Yield()
		}
	})
	k.Run(simtime.Time(simtime.Second))

	a := spans.Attribution(rec.Spans())
	if a.Cycles[spans.CauseInterrupt] == 0 {
		t.Fatal("no cycles attributed to interrupts despite clock ticks")
	}
	if a.Cycles[spans.CauseCtxSwitch] == 0 {
		t.Fatal("no cycles attributed to context switches")
	}
	if a.Count[spans.CauseTLBFlush] == 0 {
		t.Fatal("no TLB-flush spans despite cross-process switches")
	}
	if a.Count[spans.CauseTLBMiss] == 0 {
		t.Fatal("no TLB-miss spans despite flushed working sets")
	}
}

// TestSpansSyscallContainsDiskIO runs a cold synchronous read and checks
// the syscall span contains cache-miss and disk decomposition spans.
func TestSpansSyscallContainsDiskIO(t *testing.T) {
	cfg := quietConfig()
	k := New(cfg)
	defer k.Shutdown()
	rec := attach(k)
	f := k.Cache().AddFile("doc", 1000, 64)

	k.Spawn("reader", 1, 8, func(tc *TC) {
		tc.ReadFile(f, 0, 8)
	})
	k.Run(simtime.Time(simtime.Second))

	all := rec.Spans()
	var syscallIdx = -1
	for i, s := range all {
		if s.Cause == spans.CauseSyscall {
			syscallIdx = i
			break
		}
	}
	if syscallIdx < 0 {
		t.Fatal("no syscall span recorded")
	}
	if all[syscallIdx].Duration() <= 0 {
		t.Fatalf("cold read syscall has no duration: %+v", all[syscallIdx])
	}
	under := func(cause spans.Cause) bool {
		for _, s := range all {
			if s.Cause != cause {
				continue
			}
			for p := s.Parent; p >= 0; p = all[p].Parent {
				if int(p) == syscallIdx {
					return true
				}
			}
		}
		return false
	}
	for _, c := range []spans.Cause{spans.CauseFSMiss, spans.CauseDiskIO, spans.CauseDiskRot, spans.CauseDiskXfer} {
		if !under(c) {
			t.Fatalf("no %v span nested under the syscall", c)
		}
	}
}

// TestSpansRecordingDoesNotPerturb runs the same scenario traced and
// untraced and requires identical final simulated time and counters.
func TestSpansRecordingDoesNotPerturb(t *testing.T) {
	run := func(traced bool) (simtime.Time, int64) {
		k := New(DefaultConfig())
		defer k.Shutdown()
		if traced {
			attach(k)
		}
		f := k.Cache().AddFile("doc", 2000, 64)
		app := k.Spawn("app", 1, 8, func(tc *TC) {
			for {
				m := tc.GetMessage()
				if m.Kind == WMQuit {
					return
				}
				tc.Compute(burn("handle", 2))
				tc.ReadFile(f, 0, 4)
			}
		})
		for i := 0; i < 5; i++ {
			at := simtime.Time(int64(i+1) * int64(30*simtime.Millisecond))
			k.At(at, func(now simtime.Time) { k.KeyboardInterrupt(app, WMKeyDown, 'x') })
		}
		k.At(simtime.Time(400*simtime.Millisecond), func(now simtime.Time) {
			k.PostMessage(app, WMQuit, 0)
		})
		end := k.Run(simtime.Time(500 * simtime.Millisecond))
		return end, k.CPU().Count(0) // Instructions
	}
	t1, c1 := run(false)
	t2, c2 := run(true)
	if t1 != t2 || c1 != c2 {
		t.Fatalf("tracing perturbed the run: untraced (%v, %d) vs traced (%v, %d)", t1, c1, t2, c2)
	}
}
