package fscache

import (
	"fmt"

	"latlab/internal/disk"
	"latlab/internal/mem"
	"latlab/internal/simtime"
	"latlab/internal/spans"
)

// PageBlocks is the number of 512-byte disk blocks per cache page (4 KB).
const PageBlocks = 8

// FileID names a registered file.
type FileID int

// file records where a file's pages live on disk.
type file struct {
	name       string
	startBlock int64
	pages      int64
}

// Cache is the buffer cache. Not safe for concurrent use.
type Cache struct {
	disk  *disk.Disk
	lru   *mem.LRU
	files map[FileID]*file
	next  FileID

	hits      int64
	misses    int64
	writes    int64
	evictions int64
	ioErrs    int64

	rec *spans.Recorder
}

// SetRecorder attaches a span recorder; nil restores the untraced path.
func (c *Cache) SetRecorder(rec *spans.Recorder) { c.rec = rec }

// New creates a cache of capacityPages pages over d.
func New(d *disk.Disk, capacityPages int) *Cache {
	return &Cache{
		disk:  d,
		lru:   mem.NewLRU(capacityPages),
		files: make(map[FileID]*file),
	}
}

// AddFile registers a file of sizePages pages starting at startBlock and
// returns its id. Layout is the caller's concern; the experiments place
// application binaries, documents, and OLE servers at spread-out
// locations so cold starts pay realistic seeks.
func (c *Cache) AddFile(name string, startBlock, sizePages int64) FileID {
	id := c.next
	c.next++
	c.files[id] = &file{name: name, startBlock: startBlock, pages: sizePages}
	return id
}

// FileName returns the registered name of id.
func (c *Cache) FileName(id FileID) string {
	if f, ok := c.files[id]; ok {
		return f.name
	}
	return fmt.Sprintf("file(%d)", int(id))
}

// FilePages returns the size of id in pages.
func (c *Cache) FilePages(id FileID) int64 {
	if f, ok := c.files[id]; ok {
		return f.pages
	}
	return 0
}

// Hits reports page-level cache hits.
func (c *Cache) Hits() int64 { return c.hits }

// Misses reports page-level cache misses.
func (c *Cache) Misses() int64 { return c.misses }

// Writes counts pages written through.
func (c *Cache) Writes() int64 { return c.writes }

// ForcedEvictions counts pages evicted through EvictOldest (fault-layer
// pressure), excluding ordinary capacity evictions.
func (c *Cache) ForcedEvictions() int64 { return c.evictions }

// IOErrors counts page reads/writes that completed with a device error.
func (c *Cache) IOErrors() int64 { return c.ioErrs }

// HitRate returns hits / (hits+misses), or 1 when nothing was accessed.
func (c *Cache) HitRate() float64 {
	if c.hits+c.misses == 0 {
		return 1
	}
	return float64(c.hits) / float64(c.hits+c.misses)
}

// pageKey builds the LRU identifier for (file, page).
func pageKey(id FileID, page int64) uint64 {
	return uint64(id)<<40 | uint64(page)
}

// Resident reports whether a page is cached, without touching recency.
func (c *Cache) Resident(id FileID, page int64) bool {
	return c.lru.Contains(pageKey(id, page))
}

// ResidentCount returns how many of the first n pages of id are cached.
func (c *Cache) ResidentCount(id FileID, n int64) int64 {
	var r int64
	for p := int64(0); p < n; p++ {
		if c.Resident(id, p) {
			r++
		}
	}
	return r
}

// Read fetches pages [firstPage, firstPage+nPages) of id. Cached pages
// cost nothing here (the caller models CPU copy cost); missing pages are
// read from disk as one request per contiguous run. done fires once all
// pages are resident — immediately (before Read returns) when everything
// hits. It reports the number of page misses. When any underlying disk
// request fails, done receives the first error; pages from failed runs
// are not inserted.
func (c *Cache) Read(id FileID, firstPage, nPages int64, done func(now simtime.Time, err error)) (missing int64) {
	f, ok := c.files[id]
	if !ok {
		panic(fmt.Sprintf("fscache: read of unregistered file %d", id))
	}
	if firstPage < 0 || nPages <= 0 || firstPage+nPages > f.pages {
		panic(fmt.Sprintf("fscache: read [%d,+%d) outside %q (%d pages)", firstPage, nPages, f.name, f.pages))
	}

	// Collect missing pages, touching hits for recency.
	var missPages []int64
	for p := firstPage; p < firstPage+nPages; p++ {
		key := pageKey(id, p)
		if c.lru.Contains(key) {
			c.lru.Touch(key)
			c.hits++
		} else {
			missPages = append(missPages, p)
			c.misses++
		}
	}
	missing = int64(len(missPages))
	if c.rec != nil {
		if hits := nPages - missing; hits > 0 {
			c.rec.Charge(spans.CauseFSHit, f.name, 0, hits)
		}
		if missing > 0 {
			c.rec.Charge(spans.CauseFSMiss, f.name, 0, missing)
		}
	}
	if missing == 0 {
		done(0, nil) // caller context; "now" unused for synchronous hits
		return 0
	}

	// Coalesce contiguous runs into single disk requests.
	outstanding := 0
	var firstErr error
	var fire func(now simtime.Time, err error)
	for i := 0; i < len(missPages); {
		j := i
		for j+1 < len(missPages) && missPages[j+1] == missPages[j]+1 {
			j++
		}
		run := missPages[i : j+1]
		outstanding++
		c.disk.Submit(disk.Request{
			Op:     disk.Read,
			Block:  f.startBlock + run[0]*PageBlocks,
			Blocks: int64(len(run)) * PageBlocks,
			Done: func(now simtime.Time, err error) {
				if err == nil {
					for _, p := range run {
						c.lru.Insert(pageKey(id, p))
					}
				} else {
					c.ioErrs++
					if firstErr == nil {
						firstErr = err
					}
				}
				outstanding--
				if outstanding == 0 {
					fire(now, firstErr)
				}
			},
		})
		i = j + 1
	}
	fire = done
	return missing
}

// Write stores pages [firstPage, firstPage+nPages) of id write-through:
// the pages become resident and a disk write is issued; done fires when
// the write reaches the platter (the sync-save case of Table 1).
func (c *Cache) Write(id FileID, firstPage, nPages int64, done func(now simtime.Time, err error)) {
	f, ok := c.files[id]
	if !ok {
		panic(fmt.Sprintf("fscache: write of unregistered file %d", id))
	}
	if firstPage < 0 || nPages <= 0 || firstPage+nPages > f.pages {
		panic(fmt.Sprintf("fscache: write [%d,+%d) outside %q (%d pages)", firstPage, nPages, f.name, f.pages))
	}
	for p := firstPage; p < firstPage+nPages; p++ {
		c.lru.Insert(pageKey(id, p))
	}
	c.writes += nPages
	c.rec.Charge(spans.CauseFSWrite, f.name, 0, nPages)
	c.disk.Submit(disk.Request{
		Op:     disk.Write,
		Block:  f.startBlock + firstPage*PageBlocks,
		Blocks: nPages * PageBlocks,
		Done: func(now simtime.Time, err error) {
			if err != nil {
				c.ioErrs++
			}
			done(now, err)
		},
	})
}

// EvictAll empties the cache (models a cold boot without rebuilding the
// file table).
func (c *Cache) EvictAll() { c.lru.Flush() }

// EvictOldest discards up to n least-recently-used pages and returns how
// many were evicted. The fault layer uses it to model memory pressure
// from a competing workload collapsing the hit rate.
func (c *Cache) EvictOldest(n int) int {
	evicted := c.lru.EvictOldest(n)
	c.evictions += int64(evicted)
	if evicted > 0 {
		c.rec.Charge(spans.CauseFSEvict, "pressure", 0, int64(evicted))
	}
	return evicted
}
