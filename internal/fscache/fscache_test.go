package fscache

import (
	"testing"

	"latlab/internal/disk"
	"latlab/internal/eventq"
	"latlab/internal/simtime"
)

type fakeSched struct {
	now simtime.Time
	q   eventq.Queue
}

func (s *fakeSched) Now() simtime.Time { return s.now }
func (s *fakeSched) After(d simtime.Duration, fn func(simtime.Time)) {
	s.q.Schedule(s.now.Add(d), fn)
}
func (s *fakeSched) run() {
	for {
		e, ok := s.q.Pop()
		if !ok {
			return
		}
		s.now = e.At()
		e.Fire(s.now)
	}
}

func newCache(pages int) (*Cache, *fakeSched) {
	s := &fakeSched{}
	d := disk.New(disk.DefaultParams(), s, 7)
	return New(d, pages), s
}

func TestColdReadThenWarmRead(t *testing.T) {
	c, s := newCache(128)
	f := c.AddFile("app.exe", 10_000, 64)

	done := false
	miss := c.Read(f, 0, 16, func(simtime.Time, error) { done = true })
	if miss != 16 {
		t.Fatalf("cold misses = %d, want 16", miss)
	}
	if done {
		t.Fatalf("cold read completed synchronously")
	}
	s.run()
	if !done {
		t.Fatalf("cold read never completed")
	}
	if c.ResidentCount(f, 64) != 16 {
		t.Fatalf("resident = %d, want 16", c.ResidentCount(f, 64))
	}

	// Warm read: synchronous completion, zero misses.
	done = false
	miss = c.Read(f, 0, 16, func(simtime.Time, error) { done = true })
	if miss != 0 || !done {
		t.Fatalf("warm read: miss=%d done=%v", miss, done)
	}
	if c.Hits() != 16 || c.Misses() != 16 {
		t.Fatalf("hit/miss counters = %d/%d", c.Hits(), c.Misses())
	}
}

func TestPartialHitCoalescing(t *testing.T) {
	c, s := newCache(128)
	f := c.AddFile("doc", 0, 32)
	// Warm pages 4..7 and 12..15, then read 0..15: misses are two runs
	// (0..3, 8..11), so exactly two disk requests should be issued.
	c.Read(f, 4, 4, func(simtime.Time, error) {})
	c.Read(f, 12, 4, func(simtime.Time, error) {})
	s.run()

	servedBefore := diskOf(c).Served()
	fired := false
	miss := c.Read(f, 0, 16, func(simtime.Time, error) { fired = true })
	if miss != 8 {
		t.Fatalf("misses = %d, want 8", miss)
	}
	s.run()
	if !fired {
		t.Fatalf("read never completed")
	}
	if got := diskOf(c).Served() - servedBefore; got != 2 {
		t.Fatalf("disk requests = %d, want 2 coalesced runs", got)
	}
	if c.ResidentCount(f, 16) != 16 {
		t.Fatalf("all 16 pages should be resident")
	}
}

// diskOf exposes the cache's disk for assertions.
func diskOf(c *Cache) *disk.Disk { return c.disk }

func TestLRUEviction(t *testing.T) {
	c, s := newCache(8)
	f := c.AddFile("big", 0, 64)
	c.Read(f, 0, 8, func(simtime.Time, error) {})
	s.run()
	if c.ResidentCount(f, 64) != 8 {
		t.Fatalf("resident = %d", c.ResidentCount(f, 64))
	}
	// Reading 8 more pages evicts the first 8.
	c.Read(f, 8, 8, func(simtime.Time, error) {})
	s.run()
	if c.Resident(f, 0) {
		t.Fatalf("page 0 should have been evicted")
	}
	if !c.Resident(f, 15) {
		t.Fatalf("page 15 should be resident")
	}
}

func TestWriteThrough(t *testing.T) {
	c, s := newCache(64)
	f := c.AddFile("save.ppt", 50_000, 32)
	var doneAt simtime.Time
	c.Write(f, 0, 32, func(now simtime.Time, _ error) { doneAt = now })
	if c.ResidentCount(f, 32) != 32 {
		t.Fatalf("written pages should be resident immediately")
	}
	if doneAt != 0 {
		t.Fatalf("write completed before disk I/O")
	}
	s.run()
	if doneAt <= 0 {
		t.Fatalf("write never reached the disk")
	}
	if c.Writes() != 32 {
		t.Fatalf("writes = %d", c.Writes())
	}
	// Subsequent read is all hits.
	if miss := c.Read(f, 0, 32, func(simtime.Time, error) {}); miss != 0 {
		t.Fatalf("read-after-write misses = %d", miss)
	}
}

func TestEvictAll(t *testing.T) {
	c, s := newCache(64)
	f := c.AddFile("x", 0, 8)
	c.Read(f, 0, 8, func(simtime.Time, error) {})
	s.run()
	c.EvictAll()
	if c.ResidentCount(f, 8) != 0 {
		t.Fatalf("EvictAll left residents")
	}
}

func TestColdReadSlowerThanWarm(t *testing.T) {
	// The Table 1 mechanism: the same OLE activation is much slower cold.
	c, s := newCache(1024)
	f := c.AddFile("ole_server.exe", 800_000, 256)

	var coldDone simtime.Time
	start := s.Now()
	c.Read(f, 0, 256, func(now simtime.Time, _ error) { coldDone = now })
	s.run()
	coldLatency := coldDone.Sub(start)

	start2 := s.Now()
	sync := false
	c.Read(f, 0, 256, func(simtime.Time, error) { sync = true })
	if !sync {
		t.Fatalf("warm read should complete synchronously")
	}
	warmLatency := s.Now().Sub(start2)
	if coldLatency < 100*warmLatency+simtime.FromMillis(10) {
		t.Fatalf("cold %v should dwarf warm %v", coldLatency, warmLatency)
	}
}

func TestReadValidation(t *testing.T) {
	c, _ := newCache(8)
	f := c.AddFile("f", 0, 4)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("unregistered", func() { c.Read(FileID(99), 0, 1, func(simtime.Time, error) {}) })
	mustPanic("past end", func() { c.Read(f, 3, 2, func(simtime.Time, error) {}) })
	mustPanic("zero pages", func() { c.Read(f, 0, 0, func(simtime.Time, error) {}) })
	mustPanic("write unregistered", func() { c.Write(FileID(99), 0, 1, func(simtime.Time, error) {}) })
	mustPanic("write past end", func() { c.Write(f, 4, 1, func(simtime.Time, error) {}) })
}

func TestFileMetadata(t *testing.T) {
	c, _ := newCache(8)
	f := c.AddFile("notepad.exe", 0, 40)
	if c.FileName(f) != "notepad.exe" || c.FilePages(f) != 40 {
		t.Fatalf("metadata wrong")
	}
	if c.FilePages(FileID(9)) != 0 {
		t.Fatalf("unknown file size should be 0")
	}
	if c.FileName(FileID(9)) == "" {
		t.Fatalf("unknown file name should format")
	}
}
