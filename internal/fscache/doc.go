// Package fscache implements the file-system buffer cache sitting
// between the simulated applications and the disk.
//
// The cache is what produces the warm/cold asymmetries the paper leans
// on: the first OLE edit session pages the object server in from disk
// (seconds), while "more of the pages ... become resident in the buffer
// cache" for the second and third edits (Table 1). Pages are 4 KB
// (eight 512-byte disk blocks), managed LRU, write-through.
//
// Invariants:
//
//   - Deterministic residency. Hit/miss behaviour is a pure function of
//     the access sequence; there is no sampling or clock-driven aging,
//     so the same workload always warms the same pages.
//   - Misses cost disk time, hits cost nothing. The cache adds no
//     latency of its own; every millisecond it contributes to an event
//     is a disk request it issued (observable as disk spans/counters).
//   - Tracing is optional and inert. With a span recorder attached the
//     cache emits fs-hit/fs-miss/fs-write/fs-evict charges; without one
//     it runs the exact pre-span code path.
package fscache
