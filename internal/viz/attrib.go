package viz

import (
	"fmt"
	"io"
	"sort"

	"latlab/internal/simtime"
	"latlab/internal/trace"
)

// AttribTable renders attribution records — one interactive episode per
// row, its wall time decomposed by cause — as the "where did the time
// go" report: a per-cause roll-up over every episode, then each episode
// with its dominant causes. Output is deterministic: causes sort by
// total attributed time (descending, name as tiebreak) and episodes
// keep their input order.
func AttribTable(w io.Writer, title string, recs []trace.AttribRecord) error {
	var wall, attributed simtime.Duration
	totals := map[string]simtime.Duration{}
	for _, r := range recs {
		wall += r.Latency()
		for name, d := range r.Causes {
			totals[name] += d
			attributed += d
		}
	}
	if _, err := fmt.Fprintf(w, "%s — where did the time go? %d episodes, %.2fms wall\n\n",
		title, len(recs), wall.Milliseconds()); err != nil {
		return err
	}
	if len(recs) == 0 {
		_, err := fmt.Fprintln(w, "  (no episodes)")
		return err
	}

	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if totals[names[i]] != totals[names[j]] {
			return totals[names[i]] > totals[names[j]]
		}
		return names[i] < names[j]
	})
	if _, err := fmt.Fprintf(w, "  %-16s %10s %7s\n", "cause", "total", "share"); err != nil {
		return err
	}
	row := func(name string, d simtime.Duration) error {
		_, err := fmt.Fprintf(w, "  %-16s %8.2fms %6.1f%%\n", name, d.Milliseconds(), pctOf(d, wall))
		return err
	}
	for _, name := range names {
		if err := row(name, totals[name]); err != nil {
			return err
		}
	}
	if rem := wall - attributed; rem > 0 {
		if err := row("(unattributed)", rem); err != nil {
			return err
		}
	}

	if _, err := fmt.Fprintf(w, "\n  %-42s %10s %9s  %s\n", "episode", "start", "wall", "top causes"); err != nil {
		return err
	}
	for _, r := range recs {
		if _, err := fmt.Fprintf(w, "  %-42s %8.2fms %7.2fms  %s\n",
			r.Label, r.Start.Milliseconds(), r.Latency().Milliseconds(), topCauses(r, 3)); err != nil {
			return err
		}
	}
	return nil
}

// pctOf returns d as a percentage of total (0 when total is zero).
func pctOf(d, total simtime.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * float64(d) / float64(total)
}

// topCauses summarizes an episode's n largest causes as
// "name share%, ..." (ties broken by name for determinism).
func topCauses(r trace.AttribRecord, n int) string {
	names := make([]string, 0, len(r.Causes))
	for name := range r.Causes {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool {
		if r.Causes[names[i]] != r.Causes[names[j]] {
			return r.Causes[names[i]] > r.Causes[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) > n {
		names = names[:n]
	}
	out := ""
	for i, name := range names {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s %.0f%%", name, pctOf(r.Causes[name], r.Latency()))
	}
	if out == "" {
		return "(none)"
	}
	return out
}
