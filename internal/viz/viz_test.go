package viz

import (
	"strings"
	"testing"

	"latlab/internal/core"
	"latlab/internal/cpu"
	"latlab/internal/simtime"
	"latlab/internal/stats"
)

func ms(f float64) simtime.Duration { return simtime.FromMillis(f) }
func at(f float64) simtime.Time     { return simtime.Time(simtime.FromMillis(f)) }

func TestProfileRendering(t *testing.T) {
	pts := []core.ProfilePoint{
		{T: at(0), Util: 0},
		{T: at(10), Util: 1},
		{T: at(20), Util: 0.5},
		{T: at(30), Util: 0},
	}
	var sb strings.Builder
	if err := Profile(&sb, "idle profile", pts, 40, 8); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "idle profile") || !strings.Contains(out, "#") {
		t.Fatalf("profile output missing content:\n%s", out)
	}
	if !strings.Contains(out, "100%") || !strings.Contains(out, "0%") {
		t.Fatalf("profile output missing axis labels:\n%s", out)
	}
	var empty strings.Builder
	if err := Profile(&empty, "x", nil, 10, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no samples") {
		t.Fatalf("empty profile should say so")
	}
}

func TestTimeSeriesRendering(t *testing.T) {
	events := []core.Event{
		{Enqueued: at(0), Latency: ms(5)},
		{Enqueued: at(1000), Latency: ms(500)},
		{Enqueued: at(2000), Latency: ms(50)},
	}
	var sb strings.Builder
	if err := TimeSeries(&sb, "trace", events, 100, 60, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "|") {
		t.Fatalf("time series missing bars:\n%s", out)
	}
	if !strings.Contains(out, "100ms") {
		t.Fatalf("threshold label missing:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Fatalf("threshold line missing")
	}
}

func TestHistogramRendering(t *testing.T) {
	h := stats.NewHistogram(0, 100, 10)
	for i := 0; i < 1000; i++ {
		h.Add(5)
	}
	h.Add(95)
	h.Add(-1)
	h.Add(200)
	var sb strings.Builder
	if err := Histogram(&sb, "latency histogram", h, 30); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "1000") || !strings.Contains(out, "*") {
		t.Fatalf("histogram missing bars:\n%s", out)
	}
	if !strings.Contains(out, "<0.0ms") || !strings.Contains(out, ">100.0ms") {
		t.Fatalf("histogram missing under/over rows:\n%s", out)
	}
	// Log scale: the 1000-count bar must be < 1000/1 times the 1-count bar.
	lines := strings.Split(out, "\n")
	var big, small int
	for _, l := range lines {
		if strings.Contains(l, "1000 ") {
			big = strings.Count(l, "*")
		}
		if strings.Contains(l, "90.0-100.0") {
			small = strings.Count(l, "*")
		}
	}
	if big == 0 || small == 0 || big > small*15 {
		t.Fatalf("log scaling looks wrong: big=%d small=%d", big, small)
	}
}

func TestCumulativeCurveRendering(t *testing.T) {
	pts := stats.CumulativeCurve([]float64{1, 2, 3, 500})
	var sb strings.Builder
	if err := CumulativeCurve(&sb, "cumulative", pts, 10*simtime.Second, 40, 8); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "[elapsed 10.0s]") {
		t.Fatalf("elapsed bracket missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("curve missing points")
	}
}

func TestCounterBarsRendering(t *testing.T) {
	ms := []core.CounterMeasurement{
		{Label: "nt351", Cycles: 2_000_000, Events: map[cpu.EventKind]int64{cpu.ITLBMisses: 5000}},
		{Label: "nt40", Cycles: 1_000_000, Events: map[cpu.EventKind]int64{cpu.ITLBMisses: 1000}},
	}
	var sb strings.Builder
	if err := CounterBars(&sb, "page down", ms, []cpu.EventKind{cpu.ITLBMisses}, 20); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "nt351") || !strings.Contains(out, "itlb_misses") {
		t.Fatalf("counter bars missing rows:\n%s", out)
	}
	// nt351 bar should be longer than nt40's in both blocks.
	lines := strings.Split(out, "\n")
	counts := map[string]int{}
	for _, l := range lines {
		if strings.Contains(l, "nt351") && strings.Contains(l, "5000") {
			counts["slow"] = strings.Count(l, "#")
		}
		if strings.Contains(l, "nt40") && strings.Contains(l, "1000 ") {
			counts["fast"] = strings.Count(l, "#")
		}
	}
	if counts["slow"] <= counts["fast"] {
		t.Fatalf("bar lengths wrong: %+v", counts)
	}
}

func TestCSVWriters(t *testing.T) {
	var sb strings.Builder
	err := EventsCSV(&sb, []core.Event{{Enqueued: at(1), Latency: ms(2), Busy: ms(1.5)}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "enqueued_ms,") || !strings.Contains(sb.String(), "2.000000") {
		t.Fatalf("events csv wrong: %s", sb.String())
	}
	sb.Reset()
	if err := ProfileCSV(&sb, []core.ProfilePoint{{T: at(1), Util: 0.5}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "0.500000") {
		t.Fatalf("profile csv wrong: %s", sb.String())
	}
}

func TestSortedByLatency(t *testing.T) {
	evs := []core.Event{{Latency: ms(1)}, {Latency: ms(9)}, {Latency: ms(5)}}
	sorted := SortedByLatency(evs)
	if sorted[0].Latency != ms(9) || sorted[2].Latency != ms(1) {
		t.Fatalf("sort wrong: %+v", sorted)
	}
	if evs[0].Latency != ms(1) {
		t.Fatalf("input mutated")
	}
}

func TestCumulativeByEventsRendering(t *testing.T) {
	pts := stats.CumulativeCurve([]float64{2, 2, 2, 30})
	var sb strings.Builder
	if err := CumulativeByEvents(&sb, "by events", pts, 30, 6); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "4 events (sorted by duration)") {
		t.Fatalf("axis label missing:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("points missing")
	}
	var empty strings.Builder
	if err := CumulativeByEvents(&empty, "x", nil, 10, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(empty.String(), "no events") {
		t.Fatalf("empty case should say so")
	}
}
