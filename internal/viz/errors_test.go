package viz

import (
	"errors"
	"testing"

	"latlab/internal/core"
	"latlab/internal/cpu"
	"latlab/internal/simtime"
	"latlab/internal/stats"
)

// failWriter fails after n successful writes, exercising error paths.
type failWriter struct{ n int }

var errSink = errors.New("sink failed")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errSink
	}
	f.n--
	return len(p), nil
}

func TestRenderersPropagateWriteErrors(t *testing.T) {
	profile := []core.ProfilePoint{{T: 0, Util: 0.5}, {T: at(10), Util: 1}}
	events := []core.Event{{Enqueued: 0, Latency: ms(5)}, {Enqueued: at(100), Latency: ms(500)}}
	hist := stats.NewHistogram(0, 10, 5)
	hist.Add(-1)
	hist.Add(5)
	hist.Add(99)
	curve := stats.CumulativeCurve([]float64{1, 5, 20})
	counters := []core.CounterMeasurement{
		{Label: "a", Cycles: 10, Events: map[cpu.EventKind]int64{cpu.ITLBMisses: 5}},
	}

	renderers := map[string]func(w *failWriter) error{
		"profile": func(w *failWriter) error {
			return Profile(w, "t", profile, 20, 4)
		},
		"profile-empty": func(w *failWriter) error {
			return Profile(w, "t", nil, 20, 4)
		},
		"timeseries": func(w *failWriter) error {
			return TimeSeries(w, "t", events, 100, 20, 4)
		},
		"timeseries-empty": func(w *failWriter) error {
			return TimeSeries(w, "t", nil, 100, 20, 4)
		},
		"histogram": func(w *failWriter) error {
			return Histogram(w, "t", hist, 10)
		},
		"curve": func(w *failWriter) error {
			return CumulativeCurve(w, "t", curve, simtime.Second, 20, 4)
		},
		"curve-empty": func(w *failWriter) error {
			return CumulativeCurve(w, "t", nil, simtime.Second, 20, 4)
		},
		"by-events": func(w *failWriter) error {
			return CumulativeByEvents(w, "t", curve, 20, 4)
		},
		"by-events-empty": func(w *failWriter) error {
			return CumulativeByEvents(w, "t", nil, 20, 4)
		},
		"counters": func(w *failWriter) error {
			return CounterBars(w, "t", counters, []cpu.EventKind{cpu.ITLBMisses}, 10)
		},
		"events-csv": func(w *failWriter) error {
			return EventsCSV(w, events)
		},
		"profile-csv": func(w *failWriter) error {
			return ProfileCSV(w, profile)
		},
	}
	for name, render := range renderers {
		// Unbounded writer: must succeed.
		if err := render(&failWriter{n: 1 << 30}); err != nil {
			t.Fatalf("%s with working writer: %v", name, err)
		}
		// Fail at every prefix length until it succeeds: every write
		// error must surface, never be swallowed.
		for n := 0; n < 64; n++ {
			err := render(&failWriter{n: n})
			if err == nil {
				break
			}
			if err != errSink {
				t.Fatalf("%s: unexpected error %v", name, err)
			}
			if n == 63 {
				t.Fatalf("%s: still failing after 64 writes", name)
			}
		}
	}
}

func TestHistogramEmpty(t *testing.T) {
	var w failWriter
	w.n = 1 << 30
	h := stats.NewHistogram(0, 10, 5)
	if err := Histogram(&w, "t", h, 10); err != nil {
		t.Fatal(err)
	}
}
