package viz

import (
	"fmt"
	"io"
	"strings"

	"latlab/internal/perception"
	"latlab/internal/trace"
)

// AttribClassTable renders the perceptual-class view of attribution
// records: a class-share roll-up, then each episode classified under
// its event class's budget, with the cheapest alternative
// input-to-display path (POLYPATH-style) that would have kept it
// imperceptible. Episodes keep their input order; the event class comes
// from the message-kind suffix of the episode label ("...: WM_KEYDOWN").
func AttribClassTable(w io.Writer, m perception.Model, recs []trace.AttribRecord) error {
	type row struct {
		label string
		ec    perception.EventClass
		ms    float64
		class perception.Class
		fix   string
	}
	var rows []row
	var b perception.Breakdown
	for _, r := range recs {
		ec := perception.ClassOfLabel(labelKind(r.Label))
		ms := r.Latency().Milliseconds()
		c := m.Classify(ec, ms)
		b.Add(c)
		fix := "-"
		if c != perception.Imperceptible {
			if p, ok := m.BestPath(ec, ms); ok {
				fix = p.Name
			} else {
				fix = fmt.Sprintf("none (beyond %s)", p.Name)
			}
		}
		rows = append(rows, row{r.Label, ec, ms, c, fix})
	}

	if _, err := fmt.Fprintf(w, "perceptual classes — %d episodes\n\n", len(recs)); err != nil {
		return err
	}
	if len(recs) == 0 {
		_, err := fmt.Fprintln(w, "  (no episodes)")
		return err
	}
	for c := perception.Class(0); c < perception.NumClasses; c++ {
		if _, err := fmt.Fprintf(w, "  %-14s %4d %6.1f%%\n",
			c.String(), b.Counts[c], 100*b.Share(c)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "\n  %-42s %9s %-9s %-14s %s\n",
		"episode", "wall", "event", "class", "fastest fitting path"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "  %-42s %7.2fms %-9s %-14s %s\n",
			r.label, r.ms, r.ec.String(), r.class.String(), r.fix); err != nil {
			return err
		}
	}
	return nil
}

// labelKind extracts the message-kind suffix of an episode label
// ("Windows NT 4.0 @ p100: WM_KEYDOWN" → "WM_KEYDOWN"). A label
// without the separator is returned whole, which classifies as the
// loosest event class.
func labelKind(label string) string {
	if i := strings.LastIndex(label, ": "); i >= 0 {
		return label[i+2:]
	}
	return label
}
