package viz

import (
	"fmt"
	"io"
	"math"
	"strings"

	"latlab/internal/core"
	"latlab/internal/stats"
)

// SVG renderers produce standalone, browser-viewable versions of the
// paper's figures. They use no external assets: plain shapes and text.

// svgPlot accumulates one chart with margins, axes, and a data area.
type svgPlot struct {
	width, height int
	left, right   int
	top, bottom   int
	title         string
	xLabel        string
	yLabel        string
	body          strings.Builder
}

func newSVGPlot(title, xLabel, yLabel string) *svgPlot {
	return &svgPlot{
		width: 860, height: 420,
		left: 70, right: 20, top: 40, bottom: 50,
		title: title, xLabel: xLabel, yLabel: yLabel,
	}
}

func (p *svgPlot) plotW() float64 { return float64(p.width - p.left - p.right) }
func (p *svgPlot) plotH() float64 { return float64(p.height - p.top - p.bottom) }

// px/py map unit coordinates (0..1) into pixel space (0,0 = plot
// bottom-left).
func (p *svgPlot) px(u float64) float64 { return float64(p.left) + u*p.plotW() }
func (p *svgPlot) py(v float64) float64 { return float64(p.height-p.bottom) - v*p.plotH() }

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func (p *svgPlot) rect(x, y, w, h float64, fill string) {
	fmt.Fprintf(&p.body, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`+"\n",
		x, y, w, h, fill)
}

func (p *svgPlot) line(x1, y1, x2, y2 float64, stroke string, dash string) {
	d := ""
	if dash != "" {
		d = fmt.Sprintf(` stroke-dasharray="%s"`, dash)
	}
	fmt.Fprintf(&p.body, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"%s/>`+"\n",
		x1, y1, x2, y2, stroke, d)
}

func (p *svgPlot) text(x, y float64, size int, anchor, s string) {
	fmt.Fprintf(&p.body, `<text x="%.1f" y="%.1f" font-size="%d" font-family="sans-serif" text-anchor="%s">%s</text>`+"\n",
		x, y, size, anchor, svgEscape(s))
}

func (p *svgPlot) polyline(points []float64, stroke string) {
	var sb strings.Builder
	for i := 0; i+1 < len(points); i += 2 {
		fmt.Fprintf(&sb, "%.1f,%.1f ", points[i], points[i+1])
	}
	fmt.Fprintf(&p.body, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
		strings.TrimSpace(sb.String()), stroke)
}

// yTicks draws horizontal gridlines with labels for unit positions.
func (p *svgPlot) yTicks(ticks []float64, label func(v float64) string) {
	for _, v := range ticks {
		y := p.py(v)
		p.line(float64(p.left), y, float64(p.width-p.right), y, "#dddddd", "")
		p.text(float64(p.left)-6, y+4, 11, "end", label(v))
	}
}

// xTicks draws vertical tick labels for unit positions.
func (p *svgPlot) xTicks(ticks []float64, label func(v float64) string) {
	for _, v := range ticks {
		x := p.px(v)
		p.line(x, float64(p.height-p.bottom), x, float64(p.height-p.bottom)+4, "#888888", "")
		p.text(x, float64(p.height-p.bottom)+18, 11, "middle", label(v))
	}
}

func (p *svgPlot) writeTo(w io.Writer) error {
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		p.width, p.height, p.width, p.height)
	sb.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	// Frame.
	fmt.Fprintf(&sb, `<rect x="%d" y="%d" width="%.1f" height="%.1f" fill="none" stroke="#444444"/>`+"\n",
		p.left, p.top, p.plotW(), p.plotH())
	sb.WriteString(p.body.String())
	// Title + axis labels last so they stay on top.
	fmt.Fprintf(&sb, `<text x="%d" y="24" font-size="15" font-family="sans-serif" font-weight="bold">%s</text>`+"\n",
		p.left, svgEscape(p.title))
	fmt.Fprintf(&sb, `<text x="%.1f" y="%d" font-size="12" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
		p.px(0.5), p.height-12, svgEscape(p.xLabel))
	fmt.Fprintf(&sb, `<text x="16" y="%.1f" font-size="12" font-family="sans-serif" text-anchor="middle" transform="rotate(-90 16 %.1f)">%s</text>`+"\n",
		p.py(0.5), p.py(0.5), svgEscape(p.yLabel))
	sb.WriteString("</svg>\n")
	_, err := io.WriteString(w, sb.String())
	return err
}

// logScale maps v into [0,1] on a log axis from lo to hi.
func logScale(v, lo, hi float64) float64 {
	if v < lo {
		v = lo
	}
	if hi <= lo {
		return 0
	}
	return math.Log(v/lo) / math.Log(hi/lo)
}

// TimeSeriesSVG renders the paper's raw-data representation (Figs. 5/12)
// as SVG: one vertical bar per event at its start time, log latency axis,
// dashed line at thresholdMs.
func TimeSeriesSVG(w io.Writer, title string, events []core.Event, thresholdMs float64) error {
	p := newSVGPlot(title, "time (s)", "event latency (ms, log)")
	if len(events) == 0 {
		p.text(p.px(0.5), p.py(0.5), 13, "middle", "(no events)")
		return p.writeTo(w)
	}
	t0, t1 := events[0].Enqueued, events[0].Enqueued
	maxMs := thresholdMs
	for _, e := range events {
		if e.Enqueued < t0 {
			t0 = e.Enqueued
		}
		if e.Enqueued > t1 {
			t1 = e.Enqueued
		}
		if v := e.Latency.Milliseconds(); v > maxMs {
			maxMs = v
		}
	}
	span := t1.Sub(t0).Seconds()
	if span <= 0 {
		span = 1
	}
	const loMs = 1.0
	// Log-decade ticks.
	var yt []float64
	var ytv []float64
	for d := loMs; d <= maxMs*1.001; d *= 10 {
		yt = append(yt, logScale(d, loMs, maxMs))
		ytv = append(ytv, d)
	}
	for i, u := range yt {
		v := ytv[i]
		p.yTicks([]float64{u}, func(float64) string { return fmt.Sprintf("%.0f", v) })
	}
	// Time ticks: 5 evenly spaced.
	for i := 0; i <= 5; i++ {
		u := float64(i) / 5
		sec := t0.Seconds() + u*span
		p.xTicks([]float64{u}, func(float64) string { return fmt.Sprintf("%.1f", sec) })
	}
	// Threshold line.
	ty := p.py(logScale(thresholdMs, loMs, maxMs))
	p.line(float64(p.left), ty, float64(p.width-p.right), ty, "#cc3333", "5,3")
	p.text(float64(p.width-p.right), ty-4, 10, "end", fmt.Sprintf("%.0f ms", thresholdMs))
	// Bars.
	for _, e := range events {
		u := (e.Enqueued.Seconds() - t0.Seconds()) / span
		v := logScale(e.Latency.Milliseconds(), loMs, maxMs)
		x := p.px(u)
		p.line(x, p.py(0), x, p.py(v), "#3366aa", "")
	}
	return p.writeTo(w)
}

// ProfileSVG renders a CPU-utilization profile (Figs. 3/4) as SVG.
func ProfileSVG(w io.Writer, title string, pts []core.ProfilePoint) error {
	p := newSVGPlot(title, "time (ms)", "CPU utilization (%)")
	if len(pts) == 0 {
		p.text(p.px(0.5), p.py(0.5), 13, "middle", "(no samples)")
		return p.writeTo(w)
	}
	t0 := pts[0].T.Milliseconds()
	t1 := pts[len(pts)-1].T.Milliseconds()
	span := t1 - t0
	if span <= 0 {
		span = 1
	}
	for i := 0; i <= 4; i++ {
		v := float64(i) / 4
		p.yTicks([]float64{v}, func(float64) string { return fmt.Sprintf("%.0f", v*100) })
	}
	for i := 0; i <= 5; i++ {
		u := float64(i) / 5
		ms := t0 + u*span
		p.xTicks([]float64{u}, func(float64) string { return fmt.Sprintf("%.0f", ms) })
	}
	var poly []float64
	for _, pt := range pts {
		u := (pt.T.Milliseconds() - t0) / span
		poly = append(poly, p.px(u), p.py(pt.Util))
	}
	p.polyline(poly, "#228833")
	return p.writeTo(w)
}

// HistogramSVG renders a latency histogram with a log count axis (the
// Fig. 7/8/11 histograms).
func HistogramSVG(w io.Writer, title string, h *stats.Histogram) error {
	p := newSVGPlot(title, "event latency (ms)", "events (log)")
	maxCount := h.MaxCount()
	if maxCount == 0 {
		p.text(p.px(0.5), p.py(0.5), 13, "middle", "(empty)")
		return p.writeTo(w)
	}
	logMax := math.Log10(float64(maxCount) + 1)
	n := len(h.Counts)
	barW := p.plotW() / float64(n)
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		v := math.Log10(float64(c)+1) / logMax
		x := p.px(float64(i) / float64(n))
		p.rect(x+1, p.py(v), barW-2, p.py(0)-p.py(v), "#3366aa")
	}
	for i := 0; i <= 4; i++ {
		u := float64(i) / 4
		ms := h.Lo + u*(h.Hi-h.Lo)
		p.xTicks([]float64{u}, func(float64) string { return fmt.Sprintf("%.0f", ms) })
	}
	// Count decade ticks.
	for d := 1.0; d <= float64(maxCount)*1.001; d *= 10 {
		v := math.Log10(d+1) / logMax
		dd := d
		p.yTicks([]float64{v}, func(float64) string { return fmt.Sprintf("%.0f", dd) })
	}
	if h.Over > 0 {
		p.text(float64(p.width-p.right), float64(p.top)+14, 11, "end",
			fmt.Sprintf("+%d events over %.0f ms", h.Over, h.Hi))
	}
	return p.writeTo(w)
}

// CumulativeSVG renders the cumulative-latency curve (log latency X,
// cumulative Y).
func CumulativeSVG(w io.Writer, title string, pts []stats.CumulativePoint) error {
	p := newSVGPlot(title, "event latency (ms, log)", "cumulative latency (ms)")
	if len(pts) == 0 {
		p.text(p.px(0.5), p.py(0.5), 13, "middle", "(no events)")
		return p.writeTo(w)
	}
	maxLat := pts[len(pts)-1].Latency
	if maxLat < 1 {
		maxLat = 1
	}
	maxCum := pts[len(pts)-1].CumLatency
	if maxCum <= 0 {
		maxCum = 1
	}
	for i := 0; i <= 4; i++ {
		v := float64(i) / 4
		p.yTicks([]float64{v}, func(float64) string { return fmt.Sprintf("%.0f", v*maxCum) })
	}
	for d := 1.0; d <= maxLat*1.001; d *= 10 {
		u := logScale(d, 1, maxLat)
		dd := d
		p.xTicks([]float64{u}, func(float64) string { return fmt.Sprintf("%.0f", dd) })
	}
	var poly []float64
	for _, pt := range pts {
		u := logScale(pt.Latency, 1, maxLat)
		poly = append(poly, p.px(u), p.py(pt.CumLatency/maxCum))
	}
	p.polyline(poly, "#aa3366")
	return p.writeTo(w)
}
