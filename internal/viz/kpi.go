package viz

import (
	"fmt"
	"io"
	"strings"
)

// KPITable renders a fixed-width key-performance-indicator table: the
// campaign analyzer's configuration ranking, and any future tabular
// report that wants the same look. The first column is left-aligned
// (labels), every other column right-aligned (numbers); column widths
// fit the widest cell, so the rendering is deterministic for a given
// input. Every row must have the same number of cells as the header.
func KPITable(w io.Writer, indent string, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		if len(row) != len(header) {
			return fmt.Errorf("viz: KPITable row has %d cells, header has %d", len(row), len(header))
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		b.WriteString(indent)
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], cell)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], cell)
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(header); err != nil {
		return err
	}
	rule := make([]string, len(header))
	for i, n := range widths {
		rule[i] = strings.Repeat("-", n)
	}
	if err := line(rule); err != nil {
		return err
	}
	for _, row := range rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}
