package viz

import (
	"strings"
	"testing"

	"latlab/internal/simtime"
	"latlab/internal/trace"
)

// countWriter counts Write calls, sizing the failure sweep below.
type countWriter struct{ writes int }

func (c *countWriter) Write(p []byte) (int, error) {
	c.writes++
	return len(p), nil
}

func attribRecs() []trace.AttribRecord {
	return []trace.AttribRecord{
		{
			Label: "NT 3.51: WM_KEYDOWN",
			Start: simtime.Time(500 * simtime.Millisecond),
			End:   simtime.Time(501 * simtime.Millisecond),
			Causes: map[string]simtime.Duration{
				"base":     700 * simtime.Microsecond,
				"tlb-miss": 200 * simtime.Microsecond,
			},
		},
		{
			Label: "NT 4.0: WM_KEYDOWN",
			Start: simtime.Time(502 * simtime.Millisecond),
			End:   simtime.Time(503 * simtime.Millisecond),
			Causes: map[string]simtime.Duration{
				"base": 900 * simtime.Microsecond,
			},
		},
	}
}

func TestAttribTable(t *testing.T) {
	var sb strings.Builder
	if err := AttribTable(&sb, "run", attribRecs()); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	if !strings.Contains(got, "where did the time go? 2 episodes, 2.00ms wall") {
		t.Fatalf("header wrong:\n%s", got)
	}
	// base (1.6ms) sorts above tlb-miss (0.2ms); the 0.2ms nobody
	// attributed shows up as the remainder row.
	base := strings.Index(got, "base")
	tlb := strings.Index(got, "tlb-miss")
	if base < 0 || tlb < 0 || base > tlb {
		t.Fatalf("causes not sorted by total:\n%s", got)
	}
	if !strings.Contains(got, "(unattributed)") {
		t.Fatalf("missing unattributed remainder:\n%s", got)
	}
	if !strings.Contains(got, "80.0%") { // base share: 1.6 of 2.0ms
		t.Fatalf("share arithmetic wrong:\n%s", got)
	}
	if !strings.Contains(got, "NT 3.51: WM_KEYDOWN") || !strings.Contains(got, "base 70%, tlb-miss 20%") {
		t.Fatalf("episode row wrong:\n%s", got)
	}
}

func TestAttribTableEmpty(t *testing.T) {
	var sb strings.Builder
	if err := AttribTable(&sb, "empty", nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(no episodes)") {
		t.Fatalf("empty rendering wrong:\n%s", sb.String())
	}
}

// TestAttribTablePropagatesWriteErrors fails the writer at every write
// index in turn; AttribTable must surface the error each time.
func TestAttribTablePropagatesWriteErrors(t *testing.T) {
	recs := attribRecs()
	cw := &countWriter{}
	if err := AttribTable(cw, "t", recs); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < cw.writes; n++ {
		if err := AttribTable(&failWriter{n: n}, "t", recs); err == nil {
			t.Fatalf("write failure at %d not propagated", n)
		}
	}
}
