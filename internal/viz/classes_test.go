package viz

import (
	"strings"
	"testing"

	"latlab/internal/perception"
	"latlab/internal/simtime"
	"latlab/internal/trace"
)

// classRecs builds episodes spanning all four perceptual classes.
func classRecs() []trace.AttribRecord {
	mk := func(label string, startMs, wallMs float64) trace.AttribRecord {
		return trace.AttribRecord{
			Label: label,
			Start: simtime.Time(simtime.FromMillis(startMs)),
			End:   simtime.Time(simtime.FromMillis(startMs + wallMs)),
		}
	}
	return []trace.AttribRecord{
		mk("NT 4.0 @ p100: WM_KEYDOWN", 100, 5),      // imperceptible typing
		mk("NT 4.0 @ p100: WM_KEYDOWN", 200, 250),    // perceptible typing → glyph-echo
		mk("NT 4.0 @ p100: WM_LBUTTONDOWN", 300, 90), // perceptible pointing → outline-drag
		mk("NT 4.0 @ p100: WM_COMMAND", 400, 1500),   // annoying command → acknowledge
		mk("NT 4.0 @ p100: WM_KEYDOWN", 500, 5000),   // unusable typing, no path fits
	}
}

func TestAttribClassTable(t *testing.T) {
	var sb strings.Builder
	if err := AttribClassTable(&sb, perception.Default(), classRecs()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"perceptual classes — 5 episodes",
		"imperceptible     1   20.0%",
		"perceptible       2   40.0%",
		"annoying          1   20.0%",
		"unusable          1   20.0%",
		"glyph-echo",
		"outline-drag",
		"acknowledge",
		"none (beyond caret-only)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestAttribClassTableEmpty(t *testing.T) {
	var sb strings.Builder
	if err := AttribClassTable(&sb, perception.Default(), nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "(no episodes)") {
		t.Errorf("empty table output: %q", sb.String())
	}
}
