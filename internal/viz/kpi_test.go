package viz

import (
	"strings"
	"testing"
)

func TestKPITable(t *testing.T) {
	var sb strings.Builder
	err := KPITable(&sb, "  ",
		[]string{"config", "sessions", "p95"},
		[][]string{
			{"storm/nt40/p100", "840", "45.67ms"},
			{"t/w95/p200", "12", "1.00ms"},
		})
	if err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"  config           sessions      p95",
		"  ---------------  --------  -------",
		"  storm/nt40/p100       840  45.67ms",
		"  t/w95/p200             12   1.00ms",
		"",
	}, "\n")
	if sb.String() != want {
		t.Errorf("table mismatch:\ngot:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestKPITableRowMismatch(t *testing.T) {
	var sb strings.Builder
	if err := KPITable(&sb, "", []string{"a", "b"}, [][]string{{"only"}}); err == nil {
		t.Fatal("short row must be an error")
	}
}
