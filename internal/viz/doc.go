// Package viz renders latlab's measurements as text: the same graph
// types the paper uses — CPU-utilization profiles (Figs. 3-4), raw
// event-latency time series with an irritation threshold line (Figs. 5
// and 12), log-count latency histograms and cumulative-latency curves
// (Figs. 7, 8, 11), grouped counter bars (Figs. 9-10), and the
// span-derived "where did the time go" attribution table — plus CSV and
// SVG export for external plotting.
//
// Invariants:
//
//   - Deterministic output. Every renderer produces byte-identical
//     output for the same input: map-ordered data is sorted before
//     printing and no renderer reads clocks or global state. The golden
//     corpus under cmd/latbench depends on this.
//   - Errors propagate. Renderers return the first write error instead
//     of swallowing it, so a failed export never passes silently.
//   - Presentation only. Renderers never mutate or re-derive the
//     measurements they are handed; all analysis lives in core, stats,
//     and spans.
package viz
