package viz

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"latlab/internal/core"
	"latlab/internal/cpu"
	"latlab/internal/simtime"
	"latlab/internal/stats"
)

// grid is a character canvas with (0,0) at the bottom-left.
type grid struct {
	w, h  int
	cells [][]byte
}

func newGrid(w, h int) *grid {
	g := &grid{w: w, h: h, cells: make([][]byte, h)}
	for i := range g.cells {
		g.cells[i] = []byte(strings.Repeat(" ", w))
	}
	return g
}

func (g *grid) set(x, y int, c byte) {
	if x < 0 || x >= g.w || y < 0 || y >= g.h {
		return
	}
	g.cells[g.h-1-y][x] = c
}

func (g *grid) vbar(x, y0, y1 int, c byte) {
	if y1 < y0 {
		y0, y1 = y1, y0
	}
	for y := y0; y <= y1; y++ {
		g.set(x, y, c)
	}
}

func (g *grid) writeTo(w io.Writer, leftLabels func(row int) string) error {
	for i, row := range g.cells {
		label := ""
		if leftLabels != nil {
			label = leftLabels(g.h - 1 - i)
		}
		if _, err := fmt.Fprintf(w, "%10s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	return nil
}

// Profile renders a CPU-utilization profile: X is time, Y utilization
// 0-100%.
func Profile(w io.Writer, title string, pts []core.ProfilePoint, width, height int) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if len(pts) == 0 {
		_, err := fmt.Fprintln(w, "  (no samples)")
		return err
	}
	t0, t1 := pts[0].T, pts[len(pts)-1].T
	span := float64(t1 - t0)
	if span <= 0 {
		span = 1
	}
	g := newGrid(width, height)
	for _, p := range pts {
		x := int(float64(p.T-t0) / span * float64(width-1))
		y := int(p.Util * float64(height-1))
		if p.Util > 0 {
			g.vbar(x, 0, y, '#')
		} else {
			g.set(x, 0, '.')
		}
	}
	if err := g.writeTo(w, func(row int) string {
		switch row {
		case height - 1:
			return "100%"
		case 0:
			return "0%"
		default:
			return ""
		}
	}); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%10s +%s\n%10s  %-12s%*s\n", "", strings.Repeat("-", width),
		"", t0, width-12, t1)
	return err
}

// TimeSeries renders events as vertical bars at their start time with
// height proportional to log latency — the paper's "raw data
// representation" — and draws a horizontal marker at thresholdMs (the
// 0.1 s perception threshold in Fig. 5).
func TimeSeries(w io.Writer, title string, events []core.Event, thresholdMs float64, width, height int) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if len(events) == 0 {
		_, err := fmt.Fprintln(w, "  (no events)")
		return err
	}
	t0 := events[0].Enqueued
	t1 := events[len(events)-1].Enqueued
	for _, e := range events {
		if e.Enqueued < t0 {
			t0 = e.Enqueued
		}
		if e.Enqueued > t1 {
			t1 = e.Enqueued
		}
	}
	span := float64(t1 - t0)
	if span <= 0 {
		span = 1
	}
	// Log scale from 1 ms to the maximum latency.
	maxMs := thresholdMs
	for _, e := range events {
		if v := e.Latency.Milliseconds(); v > maxMs {
			maxMs = v
		}
	}
	yOf := func(ms float64) int {
		if ms < 1 {
			ms = 1
		}
		return int(math.Log10(ms) / math.Log10(maxMs) * float64(height-1))
	}
	g := newGrid(width, height)
	ty := yOf(thresholdMs)
	for x := 0; x < width; x++ {
		g.set(x, ty, '-')
	}
	for _, e := range events {
		x := int(float64(e.Enqueued-t0) / span * float64(width-1))
		g.vbar(x, 0, yOf(e.Latency.Milliseconds()), '|')
	}
	if err := g.writeTo(w, func(row int) string {
		switch row {
		case height - 1:
			return fmt.Sprintf("%.0fms", maxMs)
		case ty:
			return fmt.Sprintf("%.0fms", thresholdMs)
		case 0:
			return "1ms"
		default:
			return ""
		}
	}); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%10s +%s\n%10s  %-12s%*s\n", "", strings.Repeat("-", width),
		"", t0, width-12, t1)
	return err
}

// Histogram renders a latency histogram with a logarithmic count axis,
// as in the paper's Fig. 7 ("the Y scale in the histogram ... is a
// logarithmic scale").
func Histogram(w io.Writer, title string, h *stats.Histogram, barWidth int) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	maxCount := h.MaxCount()
	if h.Under > maxCount {
		maxCount = h.Under
	}
	if h.Over > maxCount {
		maxCount = h.Over
	}
	if maxCount == 0 {
		_, err := fmt.Fprintln(w, "  (empty)")
		return err
	}
	logMax := math.Log10(float64(maxCount) + 1)
	bar := func(count int) string {
		if count == 0 {
			return ""
		}
		n := int(math.Log10(float64(count)+1) / logMax * float64(barWidth))
		if n < 1 {
			n = 1
		}
		return strings.Repeat("*", n)
	}
	if h.Under > 0 {
		if _, err := fmt.Fprintf(w, "  %12s %6d %s\n", fmt.Sprintf("<%.1fms", h.Lo), h.Under, bar(h.Under)); err != nil {
			return err
		}
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		label := fmt.Sprintf("%.1f-%.1f", h.Lo+float64(i)*h.Width, h.Lo+float64(i+1)*h.Width)
		if _, err := fmt.Fprintf(w, "  %12s %6d %s\n", label, c, bar(c)); err != nil {
			return err
		}
	}
	if h.Over > 0 {
		if _, err := fmt.Fprintf(w, "  %12s %6d %s\n", fmt.Sprintf(">%.1fms", h.Hi), h.Over, bar(h.Over)); err != nil {
			return err
		}
	}
	return nil
}

// CumulativeCurve renders the cumulative-latency curve: X event latency
// (log), Y cumulative latency. The bracketed elapsed time matches the
// paper's figure captions.
func CumulativeCurve(w io.Writer, title string, pts []stats.CumulativePoint, elapsed simtime.Duration, width, height int) error {
	if _, err := fmt.Fprintf(w, "%s [elapsed %.1fs]\n", title, elapsed.Seconds()); err != nil {
		return err
	}
	if len(pts) == 0 {
		_, err := fmt.Fprintln(w, "  (no events)")
		return err
	}
	maxLat := pts[len(pts)-1].Latency
	if maxLat < 1 {
		maxLat = 1
	}
	maxCum := pts[len(pts)-1].CumLatency
	if maxCum <= 0 {
		maxCum = 1
	}
	g := newGrid(width, height)
	for _, p := range pts {
		lat := p.Latency
		if lat < 1 {
			lat = 1
		}
		x := int(math.Log10(lat) / math.Log10(maxLat+1e-9) * float64(width-1))
		if x < 0 {
			x = 0
		}
		y := int(p.CumLatency / maxCum * float64(height-1))
		g.set(x, y, '*')
	}
	if err := g.writeTo(w, func(row int) string {
		switch row {
		case height - 1:
			return fmt.Sprintf("%.0fms", maxCum)
		case 0:
			return "0"
		default:
			return ""
		}
	}); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%10s +%s\n%10s  1ms%*s\n", "", strings.Repeat("-", width),
		"", width-3, fmt.Sprintf("%.0fms (log)", maxLat))
	return err
}

// CumulativeByEvents renders the paper's third §3.2 representation: the
// cumulative latency as a function of the number of events (sorted by
// duration) — "providing an intuition about the variance in response
// time perceived by the user". Smooth curves mean events of the same
// class contribute equally (the Fig. 7 observation).
func CumulativeByEvents(w io.Writer, title string, pts []stats.CumulativePoint, width, height int) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if len(pts) == 0 {
		_, err := fmt.Fprintln(w, "  (no events)")
		return err
	}
	maxCum := pts[len(pts)-1].CumLatency
	if maxCum <= 0 {
		maxCum = 1
	}
	g := newGrid(width, height)
	for _, p := range pts {
		x := (p.EventCount - 1) * (width - 1) / len(pts)
		y := int(p.CumLatency / maxCum * float64(height-1))
		g.set(x, y, '*')
	}
	if err := g.writeTo(w, func(row int) string {
		switch row {
		case height - 1:
			return fmt.Sprintf("%.0fms", maxCum)
		case 0:
			return "0"
		default:
			return ""
		}
	}); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%10s +%s\n%10s  0%*d events (sorted by duration)\n",
		"", strings.Repeat("-", width), "", width-1, len(pts))
	return err
}

// CounterBars renders grouped hardware-counter measurements (Figs. 9-10):
// one block per event kind, one bar per measurement (persona).
func CounterBars(w io.Writer, title string, ms []core.CounterMeasurement, kinds []cpu.EventKind, barWidth int) error {
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-22s", "cycles"); err != nil {
		return err
	}
	var maxCycles int64 = 1
	for _, m := range ms {
		if m.Cycles > maxCycles {
			maxCycles = m.Cycles
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, m := range ms {
		n := int(float64(m.Cycles) / float64(maxCycles) * float64(barWidth))
		if _, err := fmt.Fprintf(w, "    %-10s %12d %s\n", m.Label, m.Cycles, strings.Repeat("#", n)); err != nil {
			return err
		}
	}
	for _, k := range kinds {
		var maxV int64 = 1
		for _, m := range ms {
			if v := m.Events[k]; v > maxV {
				maxV = v
			}
		}
		if _, err := fmt.Fprintf(w, "  %-22s\n", k); err != nil {
			return err
		}
		for _, m := range ms {
			v := m.Events[k]
			n := int(float64(v) / float64(maxV) * float64(barWidth))
			if _, err := fmt.Fprintf(w, "    %-10s %12d %s\n", m.Label, v, strings.Repeat("#", n)); err != nil {
				return err
			}
		}
	}
	return nil
}

// EventsCSV writes extracted events as CSV.
func EventsCSV(w io.Writer, events []core.Event) error {
	if _, err := io.WriteString(w, "enqueued_ms,handle_start_ms,end_ms,latency_ms,busy_ms,gapped,kind\n"); err != nil {
		return err
	}
	for _, e := range events {
		if _, err := fmt.Fprintf(w, "%.6f,%.6f,%.6f,%.6f,%.6f,%t,%d\n",
			e.Enqueued.Milliseconds(), e.HandleStart.Milliseconds(), e.End.Milliseconds(),
			e.Latency.Milliseconds(), e.Busy.Milliseconds(), e.Gapped, int(e.Kind)); err != nil {
			return err
		}
	}
	return nil
}

// ProfileCSV writes a utilization profile as CSV.
func ProfileCSV(w io.Writer, pts []core.ProfilePoint) error {
	if _, err := io.WriteString(w, "t_ms,util\n"); err != nil {
		return err
	}
	for _, p := range pts {
		if _, err := fmt.Fprintf(w, "%.6f,%.6f\n", p.T.Milliseconds(), p.Util); err != nil {
			return err
		}
	}
	return nil
}

// SortedByLatency returns events sorted descending by latency (for
// long-event tables like Table 1).
func SortedByLatency(events []core.Event) []core.Event {
	out := append([]core.Event(nil), events...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Latency > out[j].Latency })
	return out
}
