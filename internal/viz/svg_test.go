package viz

import (
	"strings"
	"testing"

	"latlab/internal/core"
	"latlab/internal/stats"
)

func checkSVG(t *testing.T, out string, wants ...string) {
	t.Helper()
	if !strings.HasPrefix(out, "<svg ") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatalf("not a complete SVG document:\n%.120s...", out)
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Fatalf("svg missing %q:\n%.400s...", w, out)
		}
	}
}

func TestTimeSeriesSVG(t *testing.T) {
	events := []core.Event{
		{Enqueued: at(0), Latency: ms(5)},
		{Enqueued: at(2000), Latency: ms(500)},
		{Enqueued: at(4000), Latency: ms(50)},
	}
	var sb strings.Builder
	if err := TimeSeriesSVG(&sb, "raw trace", events, 100); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, sb.String(), "raw trace", "100 ms", "event latency (ms, log)", "<line")

	var empty strings.Builder
	if err := TimeSeriesSVG(&empty, "x", nil, 100); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, empty.String(), "(no events)")
}

func TestTimeSeriesSVGEscapesTitle(t *testing.T) {
	var sb strings.Builder
	if err := TimeSeriesSVG(&sb, `a <b> & "c"`, nil, 100); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "<b>") {
		t.Fatalf("title not escaped")
	}
	checkSVG(t, sb.String(), "a &lt;b&gt; &amp; &quot;c&quot;")
}

func TestProfileSVG(t *testing.T) {
	pts := []core.ProfilePoint{
		{T: at(0), Util: 0}, {T: at(10), Util: 1}, {T: at(20), Util: 0.3},
	}
	var sb strings.Builder
	if err := ProfileSVG(&sb, "profile", pts); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, sb.String(), "profile", "CPU utilization", "<polyline")

	var empty strings.Builder
	if err := ProfileSVG(&empty, "x", nil); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, empty.String(), "(no samples)")
}

func TestHistogramSVG(t *testing.T) {
	h := stats.NewHistogram(0, 100, 10)
	for i := 0; i < 500; i++ {
		h.Add(5)
	}
	h.Add(95)
	h.Add(200) // over
	var sb strings.Builder
	if err := HistogramSVG(&sb, "hist", h); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, sb.String(), "hist", "<rect", "+1 events over 100 ms")

	var empty strings.Builder
	if err := HistogramSVG(&empty, "x", stats.NewHistogram(0, 10, 4)); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, empty.String(), "(empty)")
}

func TestCumulativeSVG(t *testing.T) {
	pts := stats.CumulativeCurve([]float64{2, 5, 300})
	var sb strings.Builder
	if err := CumulativeSVG(&sb, "cum", pts); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, sb.String(), "cum", "cumulative latency", "<polyline")

	var empty strings.Builder
	if err := CumulativeSVG(&empty, "x", nil); err != nil {
		t.Fatal(err)
	}
	checkSVG(t, empty.String(), "(no events)")
}

func TestSVGWriteErrorPropagates(t *testing.T) {
	events := []core.Event{{Enqueued: at(0), Latency: ms(5)}}
	if err := TimeSeriesSVG(&failWriter{n: 0}, "t", events, 100); err != errSink {
		t.Fatalf("error not propagated: %v", err)
	}
	if err := ProfileSVG(&failWriter{n: 0}, "t", []core.ProfilePoint{{T: 0, Util: 1}}); err != errSink {
		t.Fatalf("error not propagated: %v", err)
	}
}
