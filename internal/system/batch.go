package system

import (
	"latlab/internal/simtime"
	"latlab/internal/trace"
)

// BatchSession is one machine's scripted run inside a Batch. A session
// exposes its milestone program as (NextTarget, OnTarget) pairs: the
// batch runs the machine to the target, the session executes its
// program step there and computes the next target. Machines are fully
// independent — each kernel has its own clock and event queue — so any
// stepping order yields the same per-session results; the batch steps
// them earliest-target-first to keep the cohort loosely in lockstep.
type BatchSession interface {
	// Sys returns the session's booted machine.
	Sys() *System
	// NextTarget returns the next simulated instant the session's
	// program needs control at, or simtime.Never once it has finished.
	NextTarget() simtime.Time
	// OnTarget executes the program step with the clock at the target.
	OnTarget()
}

// Batch steps up to Size independent machines as one unit on one
// worker. Per-machine state is struct-of-arrays — sessions, cached
// targets, and reusable sample arenas in parallel slices — so the
// stepping loop touches only small dense arrays between kernel runs.
// Slots are reused across waves of sessions (Reset keeps the arenas),
// which is what amortises instrument-buffer allocation across a
// campaign's thousands of sessions.
type Batch struct {
	sessions []BatchSession
	targets  []simtime.Time
	arenas   [][]trace.IdleSample
}

// NewBatch makes an empty batch with n slots.
func NewBatch(n int) *Batch {
	if n < 1 {
		panic("system: batch size must be positive")
	}
	return &Batch{
		sessions: make([]BatchSession, n),
		targets:  make([]simtime.Time, n),
		arenas:   make([][]trace.IdleSample, n),
	}
}

// Size returns the slot count.
func (b *Batch) Size() int { return len(b.sessions) }

// Arena returns a stable pointer to the slot's sample arena. Callers
// hand it to the session's booter (experiments.Config.IdleArena),
// which grows it on first use and records into it; the grown backing
// stays with the slot for the next session.
func (b *Batch) Arena(slot int) *[]trace.IdleSample { return &b.arenas[slot] }

// Open installs s in the given slot.
func (b *Batch) Open(slot int, s BatchSession) {
	if b.sessions[slot] != nil {
		panic("system: batch slot already open")
	}
	b.sessions[slot] = s
	b.targets[slot] = s.NextTarget()
}

// Run drives every open session to completion: repeatedly pick the
// session with the earliest pending target, run its machine to that
// instant, execute its program step, and cache the new target. Returns
// when no session has a pending target.
func (b *Batch) Run() {
	for {
		best, at := -1, simtime.Never
		for i, s := range b.sessions {
			if s == nil {
				continue
			}
			if t := b.targets[i]; t < at {
				at, best = t, i
			}
		}
		if best < 0 || at == simtime.Never {
			return
		}
		s := b.sessions[best]
		s.Sys().K.Run(at)
		s.OnTarget()
		b.targets[best] = s.NextTarget()
	}
}

// Reset empties every slot for the next wave; arenas are retained.
func (b *Batch) Reset() {
	for i := range b.sessions {
		b.sessions[i] = nil
		b.targets[i] = 0
	}
}
