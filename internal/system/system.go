// Package system assembles a bootable simulated machine: a kernel
// configured by a persona, the persona's window system, its background
// housekeeping threads, and the input-routing policy — including the
// Windows 95 behaviour of busy-waiting between mouse-down and mouse-up
// that the paper's Fig. 6 exposes.
package system

import (
	"latlab/internal/kernel"
	"latlab/internal/machine"
	"latlab/internal/persona"
	"latlab/internal/winsys"
)

// Scheduling priorities used across the experiments.
const (
	// IdlePrio is the idle class: the idle-loop instrument runs here.
	IdlePrio = kernel.IdlePriority
	// BackgroundPrio is OS housekeeping.
	BackgroundPrio = 4
	// AppPrio is the foreground application.
	AppPrio = 8
	// RouterPrio is system-level input routing (above applications).
	RouterPrio = 12
)

// System is one booted machine.
type System struct {
	K   *kernel.Kernel
	P   persona.P
	M   machine.Profile
	Win *winsys.WinSys

	focus    *kernel.Thread
	router   *kernel.Thread
	nextProc kernel.ProcID
}

// Boot builds and starts a machine for persona p on the paper's
// hardware (machine.Pentium100). It is the thin wrapper over BootOn
// kept so pre-profile call sites migrate mechanically.
func Boot(p persona.P) *System {
	return BootOn(p, machine.Pentium100())
}

// BootOn builds and starts persona p on hardware profile prof: kernel,
// window system, background threads, and (for personas with
// MouseBusyWait) the mouse router. The persona's kernel config is
// bound to prof, so the whole boot — CPU clock, TLB/L2 behaviour, disk
// geometry — runs on that machine. Call Shutdown when done to release
// thread goroutines.
func BootOn(p persona.P, prof machine.Profile) *System {
	prof = prof.OrDefault()
	cfg := p.Kernel
	cfg.Machine = prof
	s := &System{K: kernel.New(cfg), P: p, M: prof, nextProc: 1}
	s.Win = winsys.New(s.K, p)

	for _, b := range p.Background {
		b := b
		s.K.Spawn(b.Name, kernel.KernelProc, BackgroundPrio, func(tc *kernel.TC) {
			for {
				tc.Sleep(b.Period)
				tc.Compute(b.Burst)
			}
		})
	}

	if p.MouseBusyWait {
		s.router = s.K.Spawn("mouse16", kernel.KernelProc, RouterPrio, s.mouseRouter)
	}
	return s
}

// mouseRouter reproduces the Windows 95 behaviour the paper found: "the
// system busy-waits between 'mouse down' and 'mouse up' events", so the
// measured latency of a click is the duration of the user's press.
func (s *System) mouseRouter(tc *kernel.TC) {
	for {
		m := tc.GetMessage()
		if m.Kind != kernel.WMMouseDown {
			tc.Forward(s.focus, m)
			continue
		}
		tc.Forward(s.focus, m)
		for {
			if m2, ok := tc.PeekMessage(); ok {
				tc.Forward(s.focus, m2)
				if m2.Kind == kernel.WMMouseUp {
					break
				}
				continue
			}
			tc.Compute(s.P.MousePoll)
		}
	}
}

// NewProc allocates a fresh address space for an application.
func (s *System) NewProc() kernel.ProcID {
	p := s.nextProc
	s.nextProc++
	return p
}

// SpawnApp starts an application main thread in its own process at
// foreground priority and gives it input focus.
func (s *System) SpawnApp(name string, body func(tc *kernel.TC)) *kernel.Thread {
	t := s.K.Spawn(name, s.NewProc(), AppPrio, body)
	s.SetFocus(t)
	return t
}

// SetFocus directs subsequent input to t.
func (s *System) SetFocus(t *kernel.Thread) { s.focus = t }

// Focus returns the focused thread.
func (s *System) Focus() *kernel.Thread { return s.focus }

// Inject delivers one user-input event through the persona's hardware
// path. When sync is true, a WM_QUEUESYNC follows the event in the same
// queue — the Microsoft Test artifact (paper §5.4). Must be called from
// simulator context (e.g. a k.At callback).
func (s *System) Inject(kind kernel.MsgKind, param int64, sync bool) {
	if s.focus == nil {
		panic("system: input injected with no focused application")
	}
	target := s.focus
	handler := s.P.Kernel.KeyboardInterrupt
	switch kind {
	case kernel.WMMouseDown, kernel.WMMouseUp:
		handler = s.P.Kernel.MouseInterrupt
		if s.router != nil {
			target = s.router
		}
	}
	msgs := []kernel.Msg{{Kind: kind, Param: param}}
	if sync {
		msgs = append(msgs, kernel.Msg{Kind: kernel.WMQueueSync})
	}
	s.K.DeviceInterrupt(handler, target, msgs...)
}

// Shutdown stops all threads.
func (s *System) Shutdown() { s.K.Shutdown() }
