// Package system assembles a bootable simulated machine: a kernel
// configured by a persona, the persona's window system, its background
// housekeeping threads, and the input-routing policy — including the
// Windows 95 behaviour of busy-waiting between mouse-down and mouse-up
// that the paper's Fig. 6 exposes.
package system

import (
	"latlab/internal/faults"
	"latlab/internal/kernel"
	"latlab/internal/machine"
	"latlab/internal/persona"
	"latlab/internal/spans"
	"latlab/internal/winsys"
)

// Scheduling priorities used across the experiments.
const (
	// IdlePrio is the idle class: the idle-loop instrument runs here.
	IdlePrio = kernel.IdlePriority
	// BackgroundPrio is OS housekeeping.
	BackgroundPrio = 4
	// AppPrio is the foreground application.
	AppPrio = 8
	// RouterPrio is system-level input routing (above applications).
	RouterPrio = 12
)

// System is one booted machine.
type System struct {
	K   *kernel.Kernel
	P   persona.P
	M   machine.Profile
	Win *winsys.WinSys

	focus    *kernel.Thread
	router   *kernel.Thread
	nextProc kernel.ProcID
}

// Config describes one machine to boot: who it pretends to be
// (Persona), what it runs on (Machine), and the optional cross-cutting
// attachments — a fault plan to arm and a span recorder to observe
// with. It is the single construction surface the scenario compiler
// lowers onto; the zero value of every field but Persona is valid.
type Config struct {
	// Persona is the OS personality to boot. Required: an unnamed
	// persona (empty Name) panics, because a zero persona.P would
	// otherwise boot a silently meaningless machine.
	Persona persona.P
	// Machine is the hardware profile; the zero value means the paper's
	// Pentium (machine.Pentium100).
	Machine machine.Profile
	// Faults is armed on the booted kernel with a kernel-only target
	// (faults.Target{K: ...}), before any application is spawned. Fault
	// kinds that need richer targets — PriorityInversion's victim
	// thread, a custom storm segment — are skipped or defaulted by
	// faults.Arm; callers needing them arm their own faults.Clock
	// instead and leave this empty. The empty plan takes the exact
	// fault-free code path.
	Faults faults.Plan
	// Spans, when non-nil, is attached to the kernel before the first
	// event runs, so the whole boot is observable. Recording never
	// perturbs the simulation.
	Spans *spans.Recorder
	// Engine selects the kernel's simulation-core strategy (event-queue
	// backend, analytic idle skipping). The zero value is the reference
	// engine; kernel.BatchedEngine() is the throughput path. Both
	// produce byte-identical results — see internal/kernel/engine.go.
	Engine kernel.Engine
}

// New builds and starts a machine from cfg: kernel on cfg.Machine,
// window system, the persona's background threads, and (for personas
// with MouseBusyWait) the mouse router; then arms cfg.Faults and
// attaches cfg.Spans. Call Shutdown when done to release thread
// goroutines.
func New(cfg Config) *System {
	if cfg.Persona.Name == "" {
		panic("system: New with zero-value Persona")
	}
	p, prof := cfg.Persona, cfg.Machine.OrDefault()
	kcfg := p.Kernel
	kcfg.Machine = prof
	kcfg.Engine = cfg.Engine
	s := &System{K: kernel.New(kcfg), P: p, M: prof, nextProc: 1}
	s.Win = winsys.New(s.K, p)

	for _, b := range p.Background {
		b := b
		// Housekeeping threads are kernel-resident loops (no goroutine):
		// the phase toggle issues the identical Sleep/Compute request
		// stream the goroutine form did. On a multicore profile they are
		// pinned to logical CPU 1 — the housekeeping core, spilling onto
		// further aux cores under contention — so the scheduler core
		// (and the idle-loop instrument watching it) never sees them.
		sleep := true
		fn := func(lc *kernel.LoopTC) bool {
			if sleep {
				lc.Sleep(b.Period)
			} else {
				lc.Compute(b.Burst)
			}
			sleep = !sleep
			return true
		}
		if prof.Cores > 1 {
			s.K.SpawnLoopOn(b.Name, kernel.KernelProc, BackgroundPrio, 1, fn)
		} else {
			s.K.SpawnLoop(b.Name, kernel.KernelProc, BackgroundPrio, fn)
		}
	}

	if p.MouseBusyWait {
		s.router = s.K.Spawn("mouse16", kernel.KernelProc, RouterPrio, s.mouseRouter)
	}
	if !cfg.Faults.Empty() {
		faults.NewClock(cfg.Faults).Arm(faults.Target{K: s.K})
	}
	if cfg.Spans != nil {
		s.K.SetRecorder(cfg.Spans)
	}
	return s
}

// Boot builds and starts a machine for persona p on the paper's
// hardware (machine.Pentium100).
//
// Deprecated: use New(Config{Persona: p}).
func Boot(p persona.P) *System {
	return New(Config{Persona: p})
}

// BootOn builds and starts persona p on hardware profile prof.
//
// Deprecated: use New(Config{Persona: p, Machine: prof}).
func BootOn(p persona.P, prof machine.Profile) *System {
	return New(Config{Persona: p, Machine: prof})
}

// mouseRouter reproduces the Windows 95 behaviour the paper found: "the
// system busy-waits between 'mouse down' and 'mouse up' events", so the
// measured latency of a click is the duration of the user's press.
func (s *System) mouseRouter(tc *kernel.TC) {
	for {
		m := tc.GetMessage()
		if m.Kind != kernel.WMMouseDown {
			tc.Forward(s.focus, m)
			continue
		}
		tc.Forward(s.focus, m)
		for {
			if m2, ok := tc.PeekMessage(); ok {
				tc.Forward(s.focus, m2)
				if m2.Kind == kernel.WMMouseUp {
					break
				}
				continue
			}
			tc.Compute(s.P.MousePoll)
		}
	}
}

// NewProc allocates a fresh address space for an application.
func (s *System) NewProc() kernel.ProcID {
	p := s.nextProc
	s.nextProc++
	return p
}

// SpawnApp starts an application main thread in its own process at
// foreground priority and gives it input focus.
func (s *System) SpawnApp(name string, body func(tc *kernel.TC)) *kernel.Thread {
	t := s.K.Spawn(name, s.NewProc(), AppPrio, body)
	s.SetFocus(t)
	return t
}

// SetFocus directs subsequent input to t.
func (s *System) SetFocus(t *kernel.Thread) { s.focus = t }

// Focus returns the focused thread.
func (s *System) Focus() *kernel.Thread { return s.focus }

// Inject delivers one user-input event through the persona's hardware
// path. When sync is true, a WM_QUEUESYNC follows the event in the same
// queue — the Microsoft Test artifact (paper §5.4). Must be called from
// simulator context (e.g. a k.At callback).
func (s *System) Inject(kind kernel.MsgKind, param int64, sync bool) {
	if s.focus == nil {
		panic("system: input injected with no focused application")
	}
	target := s.focus
	handler := s.P.Kernel.KeyboardInterrupt
	switch kind {
	case kernel.WMMouseDown, kernel.WMMouseUp:
		handler = s.P.Kernel.MouseInterrupt
		if s.router != nil {
			target = s.router
		}
	}
	msgs := []kernel.Msg{{Kind: kind, Param: param}}
	if sync {
		msgs = append(msgs, kernel.Msg{Kind: kernel.WMQueueSync})
	}
	s.K.DeviceInterrupt(handler, target, msgs...)
}

// Shutdown stops all threads.
func (s *System) Shutdown() { s.K.Shutdown() }
