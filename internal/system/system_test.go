package system

import (
	"testing"

	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/machine"
	"latlab/internal/persona"
	"latlab/internal/simtime"
)

func TestBootSpawnsBackground(t *testing.T) {
	s := Boot(persona.W95())
	defer s.Shutdown()
	// Run 500 ms idle; the W95 housekeeping threads must generate busy
	// time even with no application.
	s.K.Run(simtime.Time(500 * simtime.Millisecond))
	if got := s.K.NonIdleBusyTime(); got < simtime.FromMillis(1) {
		t.Fatalf("W95 idle-time background busy = %v, want > 1ms", got)
	}

	nt := Boot(persona.NT40())
	defer nt.Shutdown()
	nt.K.Run(simtime.Time(500 * simtime.Millisecond))
	// NT idles except for clock interrupts: 50 ticks × ~4 µs ≈ 0.2 ms.
	if got := nt.K.NonIdleBusyTime(); got > simtime.FromMillis(1) {
		t.Fatalf("NT 4.0 idle busy = %v, want clock-only (<1ms)", got)
	}
}

func TestKeyboardInjection(t *testing.T) {
	s := Boot(persona.NT40())
	defer s.Shutdown()
	var got []kernel.Msg
	s.SpawnApp("app", func(tc *kernel.TC) {
		for len(got) < 2 {
			got = append(got, tc.GetMessage())
		}
	})
	s.K.At(simtime.Time(10*simtime.Millisecond), func(simtime.Time) {
		s.Inject(kernel.WMKeyDown, 'a', true)
	})
	s.K.Run(simtime.Time(simtime.Second))
	if len(got) != 2 {
		t.Fatalf("messages = %d, want key + queuesync", len(got))
	}
	if got[0].Kind != kernel.WMKeyDown || got[1].Kind != kernel.WMQueueSync {
		t.Fatalf("order = %v,%v; want WM_KEYDOWN then WM_QUEUESYNC", got[0].Kind, got[1].Kind)
	}
	if got[0].Enqueued != simtime.Time(10*simtime.Millisecond) {
		t.Fatalf("enqueued = %v, want injection instant", got[0].Enqueued)
	}
}

func TestMouseClickNTDirect(t *testing.T) {
	s := Boot(persona.NT40())
	defer s.Shutdown()
	var kinds []kernel.MsgKind
	s.SpawnApp("app", func(tc *kernel.TC) {
		for len(kinds) < 2 {
			kinds = append(kinds, tc.GetMessage().Kind)
		}
	})
	s.K.At(simtime.Time(5*simtime.Millisecond), func(simtime.Time) { s.Inject(kernel.WMMouseDown, 0, false) })
	s.K.At(simtime.Time(105*simtime.Millisecond), func(simtime.Time) { s.Inject(kernel.WMMouseUp, 0, false) })
	s.K.Run(simtime.Time(simtime.Second))
	if len(kinds) != 2 || kinds[0] != kernel.WMMouseDown || kinds[1] != kernel.WMMouseUp {
		t.Fatalf("kinds = %v", kinds)
	}
	// NT: the system was essentially idle between down and up.
	if busy := s.K.NonIdleBusyTime(); busy > simtime.FromMillis(5) {
		t.Fatalf("NT busy during click = %v, want ≪ press duration", busy)
	}
}

func TestMouseClickW95BusyWaits(t *testing.T) {
	// Paper §4/Fig. 6: under Windows 95 the CPU spins from mouse-down to
	// mouse-up, so measured busy time ≈ press duration.
	s := Boot(persona.W95())
	defer s.Shutdown()
	var kinds []kernel.MsgKind
	s.SpawnApp("app", func(tc *kernel.TC) {
		for len(kinds) < 2 {
			kinds = append(kinds, tc.GetMessage().Kind)
		}
	})
	s.K.At(simtime.Time(5*simtime.Millisecond), func(simtime.Time) { s.Inject(kernel.WMMouseDown, 0, false) })
	s.K.At(simtime.Time(105*simtime.Millisecond), func(simtime.Time) { s.Inject(kernel.WMMouseUp, 0, false) })
	s.K.Run(simtime.Time(simtime.Second))
	if len(kinds) != 2 || kinds[0] != kernel.WMMouseDown || kinds[1] != kernel.WMMouseUp {
		t.Fatalf("kinds = %v (router must forward both)", kinds)
	}
	busy := s.K.NonIdleBusyTime()
	if busy < simtime.FromMillis(95) {
		t.Fatalf("W95 busy during click = %v, want ≈ press duration (100ms)", busy)
	}
}

func TestInjectWithoutFocusPanics(t *testing.T) {
	s := Boot(persona.NT40())
	defer s.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	s.Inject(kernel.WMKeyDown, 'a', false)
}

func TestNewProcUnique(t *testing.T) {
	s := Boot(persona.NT40())
	defer s.Shutdown()
	a, b := s.NewProc(), s.NewProc()
	if a == b || a == kernel.KernelProc {
		t.Fatalf("proc ids not unique: %v, %v", a, b)
	}
}

func TestFocusSwitching(t *testing.T) {
	s := Boot(persona.NT40())
	defer s.Shutdown()
	var gotA, gotB int
	a := s.SpawnApp("a", func(tc *kernel.TC) {
		for {
			if m := tc.GetMessage(); m.Kind == kernel.WMQuit {
				return
			}
			gotA++
		}
	})
	b := s.SpawnApp("b", func(tc *kernel.TC) {
		for {
			if m := tc.GetMessage(); m.Kind == kernel.WMQuit {
				return
			}
			gotB++
		}
	})
	s.SetFocus(a)
	if s.Focus() != a {
		t.Fatalf("focus accessor wrong")
	}
	s.K.At(simtime.Time(5*simtime.Millisecond), func(simtime.Time) { s.Inject(kernel.WMKeyDown, 1, false) })
	s.K.At(simtime.Time(10*simtime.Millisecond), func(simtime.Time) { s.SetFocus(b) })
	s.K.At(simtime.Time(15*simtime.Millisecond), func(simtime.Time) { s.Inject(kernel.WMKeyDown, 2, false) })
	s.K.At(simtime.Time(20*simtime.Millisecond), func(simtime.Time) {
		s.K.PostMessage(a, kernel.WMQuit, 0)
		s.K.PostMessage(b, kernel.WMQuit, 0)
	})
	s.K.Run(simtime.Time(simtime.Second))
	if gotA != 1 || gotB != 1 {
		t.Fatalf("routing: a=%d b=%d, want 1/1", gotA, gotB)
	}
}

func TestW95MouseClickWithQueueSync(t *testing.T) {
	// The Test driver posts WM_QUEUESYNC after the mouse-down; the router
	// must forward it mid-busy-wait without ending the wait.
	s := Boot(persona.W95())
	defer s.Shutdown()
	var kinds []kernel.MsgKind
	s.SpawnApp("app", func(tc *kernel.TC) {
		for len(kinds) < 4 {
			kinds = append(kinds, tc.GetMessage().Kind)
		}
	})
	s.K.At(simtime.Time(5*simtime.Millisecond), func(simtime.Time) { s.Inject(kernel.WMMouseDown, 0, true) })
	s.K.At(simtime.Time(85*simtime.Millisecond), func(simtime.Time) { s.Inject(kernel.WMMouseUp, 0, true) })
	s.K.Run(simtime.Time(simtime.Second))
	want := []kernel.MsgKind{kernel.WMMouseDown, kernel.WMQueueSync, kernel.WMMouseUp, kernel.WMQueueSync}
	if len(kinds) != 4 {
		t.Fatalf("forwarded = %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("forward order = %v, want %v", kinds, want)
		}
	}
	if busy := s.K.NonIdleBusyTime(); busy < simtime.FromMillis(75) {
		t.Fatalf("busy-wait should still span the press: %v", busy)
	}
}

func TestW95KeyboardBypassesRouter(t *testing.T) {
	s := Boot(persona.W95())
	defer s.Shutdown()
	var got kernel.Msg
	s.SpawnApp("app", func(tc *kernel.TC) { got = tc.GetMessage() })
	s.K.At(simtime.Time(5*simtime.Millisecond), func(simtime.Time) { s.Inject(kernel.WMKeyDown, 'k', false) })
	s.K.Run(simtime.Time(200 * simtime.Millisecond))
	if got.Kind != kernel.WMKeyDown || got.Param != 'k' {
		t.Fatalf("keyboard should go straight to the app: %+v", got)
	}
	// No busy-wait for keys: system mostly idle.
	if busy := s.K.NonIdleBusyTime(); busy > simtime.FromMillis(10) {
		t.Fatalf("keyboard path busy = %v, want small", busy)
	}
}

// Every persona must boot and echo keystrokes on every hardware profile:
// the scenario-matrix experiments (ext-hw-*) assume any cell of the
// persona × machine grid is runnable.
func TestBootMatrixEveryPersonaOnEveryMachine(t *testing.T) {
	for _, p := range persona.All() {
		for _, m := range machine.All() {
			t.Run(p.Short+"/"+m.Short, func(t *testing.T) {
				s := BootOn(p, m)
				defer s.Shutdown()
				if s.M.Short != m.Short {
					t.Fatalf("booted machine = %q, want %q", s.M.Short, m.Short)
				}
				echoed := 0
				s.SpawnApp("echo", func(tc *kernel.TC) {
					for {
						if tc.GetMessage().Kind == kernel.WMKeyDown {
							s.Win.TextOut(tc, 1)
							echoed++
						}
					}
				})
				for i := 0; i < 3; i++ {
					at := simtime.Time((50 + 100*i)) * simtime.Time(simtime.Millisecond)
					s.K.At(at, func(simtime.Time) { s.Inject(kernel.WMKeyDown, 'x', false) })
				}
				s.K.Run(simtime.Time(simtime.Second))
				if echoed != 3 {
					t.Fatalf("echoed %d keystrokes, want 3", echoed)
				}
			})
		}
	}
}

// On a multicore profile the persona's background housekeeping runs on
// the auxiliary cores: the scheduler core's ground-truth busy time must
// drop relative to the single-core twin, the displaced work must show
// up in AuxBusyTime, and the foreground must still echo every key.
func TestModernProfilesOffloadBackgroundWork(t *testing.T) {
	for _, p := range persona.All() {
		t.Run(p.Short, func(t *testing.T) {
			run := func(m machine.Profile) (core0, aux simtime.Duration) {
				s := BootOn(p, m)
				defer s.Shutdown()
				s.SpawnApp("echo", func(tc *kernel.TC) {
					for {
						if tc.GetMessage().Kind == kernel.WMKeyDown {
							s.Win.TextOut(tc, 1)
						}
					}
				})
				for i := 0; i < 5; i++ {
					at := simtime.Time((50 + 300*i)) * simtime.Time(simtime.Millisecond)
					s.K.At(at, func(simtime.Time) { s.Inject(kernel.WMKeyDown, 'x', false) })
				}
				s.K.Run(simtime.Time(3 * simtime.Second))
				return s.K.NonIdleBusyTime(), s.K.AuxBusyTime()
			}
			multiCore0, multiAux := run(machine.Modern2026Pinned())
			uniCore0, uniAux := run(machine.Modern2026Uni())
			if uniAux != 0 {
				t.Fatalf("single-core machine reported aux busy time %v", uniAux)
			}
			if len(p.Background) > 0 {
				if multiAux <= 0 {
					t.Fatalf("multicore machine ran no background work on aux cores")
				}
				if multiCore0 >= uniCore0 {
					t.Fatalf("offload did not reduce scheduler-core busy: multi %v vs uni %v", multiCore0, uniCore0)
				}
			}
		})
	}
}

// The DVFS governor must ramp up under load and decay back to the
// bottom level across an idle stretch — observable end to end through a
// booted system, not just the pure Next function.
func TestDVFSGovernorRampsAndDecays(t *testing.T) {
	s := BootOn(persona.NT40(), machine.Modern2026())
	defer s.Shutdown()
	spec := machine.Modern2026().DVFS
	if got := s.K.CPU().Clock(); got != spec.Level(0) {
		t.Fatalf("boot clock = %v, want bottom level %v", got, spec.Level(0))
	}
	busyUntil := simtime.Time(300 * simtime.Millisecond)
	s.SpawnApp("burn", func(tc *kernel.TC) {
		for tc.Now() < busyUntil {
			tc.Compute(cpu.Segment{Name: "burn", BaseCycles: 2_000_000})
		}
		tc.GetMessage() // park forever
	})
	s.K.Run(simtime.Time(250 * simtime.Millisecond))
	if lvl := s.K.DVFSLevel(); lvl != spec.NumLevels()-1 {
		t.Fatalf("sustained load reached level %d, want top %d", lvl, spec.NumLevels()-1)
	}
	s.K.Run(simtime.Time(2 * simtime.Second))
	if lvl := s.K.DVFSLevel(); lvl != 0 {
		t.Fatalf("idle stretch decayed to level %d, want 0", lvl)
	}
	if got := s.K.CPU().Clock(); got != spec.Level(0) {
		t.Fatalf("idle clock = %v, want %v", got, spec.Level(0))
	}
}

// BootOn with the zero profile must behave exactly like Boot: the
// compatibility default for configs that never mention hardware.
func TestBootOnZeroProfileIsPentium100(t *testing.T) {
	s := BootOn(persona.NT40(), machine.Profile{})
	defer s.Shutdown()
	if s.M.Short != "p100" {
		t.Fatalf("zero profile booted %q, want p100", s.M.Short)
	}
	legacy := Boot(persona.NT40())
	defer legacy.Shutdown()
	if legacy.M.Short != "p100" {
		t.Fatalf("Boot() machine = %q, want p100", legacy.M.Short)
	}
}
