package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"latlab/internal/experiments"
	"latlab/internal/scenario"
)

// fakeResult renders a fixed payload.
type fakeResult struct {
	id      string
	payload string
}

func (r *fakeResult) ExperimentID() string { return r.id }
func (r *fakeResult) Render(w io.Writer) error {
	_, err := fmt.Fprintln(w, r.payload)
	return err
}

// mkSpec builds a spec whose run sleeps for d (host time) and then
// returns a deterministic payload.
func mkSpec(id string, d time.Duration) experiments.Spec {
	return experiments.Spec{
		ID: id, Title: "fake " + id, Paper: "test",
		Run: func(ctx context.Context, cfg experiments.Config) (experiments.Result, error) {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &fakeResult{id: id, payload: "payload-" + id}, nil
		},
	}
}

// render runs specs at the given parallelism and returns the emitted
// text plus the manifest.
func render(t *testing.T, specs []experiments.Spec, jobs int, timeout time.Duration) (string, *Manifest) {
	t.Helper()
	var buf bytes.Buffer
	man, err := Run(context.Background(), specs, Options{Jobs: jobs, Timeout: timeout}, func(out Outcome) error {
		if out.Record.Failed() {
			fmt.Fprintf(&buf, "FAILED %s\n", out.Spec.ID)
			return nil
		}
		return out.Result.Render(&buf)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return buf.String(), man
}

func TestDeterministicOrderAcrossJobCounts(t *testing.T) {
	// Later specs finish first, so a naive completion-order stream would
	// invert the output at jobs > 1.
	var specs []experiments.Spec
	const n = 12
	for i := 0; i < n; i++ {
		specs = append(specs, mkSpec(fmt.Sprintf("exp%02d", i), time.Duration(n-i)*3*time.Millisecond))
	}
	seq, manSeq := render(t, specs, 1, 0)
	par, manPar := render(t, specs, 8, 0)
	if seq != par {
		t.Fatalf("output differs between -jobs 1 and -jobs 8:\n--- seq\n%s\n--- par\n%s", seq, par)
	}
	if !strings.HasPrefix(seq, "payload-exp00\n") {
		t.Fatalf("output not in spec order:\n%s", seq)
	}
	for _, man := range []*Manifest{manSeq, manPar} {
		if len(man.Records) != n {
			t.Fatalf("records = %d, want %d", len(man.Records), n)
		}
		for i, r := range man.Records {
			if want := fmt.Sprintf("exp%02d", i); r.ID != want {
				t.Fatalf("record[%d] = %s, want %s", i, r.ID, want)
			}
			if r.Failed() {
				t.Fatalf("record %s unexpectedly failed: %s", r.ID, r.Error)
			}
			if r.WallSeconds <= 0 {
				t.Fatalf("record %s missing wall time", r.ID)
			}
		}
	}
	if manPar.Jobs != 8 || manSeq.Jobs != 1 {
		t.Fatalf("manifest jobs = %d/%d, want 8/1", manPar.Jobs, manSeq.Jobs)
	}
}

func TestPanicBecomesFailedRecord(t *testing.T) {
	specs := []experiments.Spec{
		mkSpec("ok1", time.Millisecond),
		{ID: "boom", Title: "panicker", Paper: "test",
			Run: func(context.Context, experiments.Config) (experiments.Result, error) {
				panic("injected failure")
			}},
		mkSpec("ok2", time.Millisecond),
	}
	out, man := render(t, specs, 4, 0)
	want := "payload-ok1\nFAILED boom\npayload-ok2\n"
	if out != want {
		t.Fatalf("output = %q, want %q", out, want)
	}
	if man.Failed() != 1 {
		t.Fatalf("failed = %d, want 1", man.Failed())
	}
	rec := man.Records[1]
	if !rec.Panicked || !strings.Contains(rec.Error, "injected failure") {
		t.Fatalf("panic record wrong: %+v", rec)
	}
	if !strings.Contains(rec.Error, "runner_test.go") {
		t.Fatalf("panic record should carry a stack trace: %q", rec.Error)
	}
}

func TestTimeoutOfContextIgnoringSpec(t *testing.T) {
	block := make(chan struct{})
	defer close(block) // release the abandoned goroutine at test end
	specs := []experiments.Spec{
		mkSpec("fast", time.Millisecond),
		{ID: "stuck", Title: "ignores ctx", Paper: "test",
			Run: func(context.Context, experiments.Config) (experiments.Result, error) {
				<-block // ignores its context entirely
				return nil, errors.New("unreachable")
			}},
		mkSpec("fast2", time.Millisecond),
	}
	out, man := render(t, specs, 2, 50*time.Millisecond)
	want := "payload-fast\nFAILED stuck\npayload-fast2\n"
	if out != want {
		t.Fatalf("output = %q, want %q", out, want)
	}
	rec := man.Records[1]
	if !rec.TimedOut || rec.Error == "" {
		t.Fatalf("timeout record wrong: %+v", rec)
	}
	if man.Records[0].Failed() || man.Records[2].Failed() {
		t.Fatalf("timeout must not fail the other experiments: %+v", man.Records)
	}
}

func TestSpecHonoringContextTimesOutToo(t *testing.T) {
	// mkSpec's run returns ctx.Err() when cancelled: the error must be
	// classified as a timeout even though it arrived via the done path.
	_, man := render(t, []experiments.Spec{mkSpec("slow", time.Second)}, 1, 20*time.Millisecond)
	rec := man.Records[0]
	if !rec.TimedOut {
		t.Fatalf("cooperative timeout not flagged: %+v", rec)
	}
}

func TestEmitErrorCancelsRun(t *testing.T) {
	var specs []experiments.Spec
	for i := 0; i < 6; i++ {
		specs = append(specs, mkSpec(fmt.Sprintf("e%d", i), 5*time.Millisecond))
	}
	boom := errors.New("render failed")
	calls := 0
	man, err := Run(context.Background(), specs, Options{Jobs: 2}, func(out Outcome) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after error, want 1", calls)
	}
	if len(man.Records) != len(specs) {
		t.Fatalf("manifest records = %d, want %d (synthetic cancelled records for the rest)",
			len(man.Records), len(specs))
	}
	if man.Records[0].Cancelled || man.Records[0].Failed() {
		t.Fatalf("the emitted record must stay real: %+v", man.Records[0])
	}
	for _, r := range man.Records[1:] {
		if !r.Cancelled || r.Error != "cancelled" || !r.Failed() {
			t.Fatalf("uncollected spec %s not marked cancelled: %+v", r.ID, r)
		}
	}
}

func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	specs := []experiments.Spec{
		mkSpec("a", time.Millisecond), mkSpec("b", time.Millisecond), mkSpec("c", time.Millisecond),
	}
	man, err := Run(ctx, specs, Options{Jobs: 2}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	// Record count equals spec count even though the run never started:
	// every un-run spec gets a synthetic cancelled record, in spec order.
	if len(man.Records) != len(specs) {
		t.Fatalf("manifest records = %d, want %d", len(man.Records), len(specs))
	}
	for i, r := range man.Records {
		if r.ID != specs[i].ID {
			t.Fatalf("record[%d] = %s, want %s", i, r.ID, specs[i].ID)
		}
		if !r.Failed() {
			t.Fatalf("record under cancelled parent should fail: %+v", r)
		}
		if r.Cancelled && r.Error != "cancelled" {
			t.Fatalf("cancelled record %s carries error %q", r.ID, r.Error)
		}
	}
}

func TestPerturbSeed(t *testing.T) {
	if PerturbSeed(1996, 0) != 1996 {
		t.Fatalf("attempt 0 must keep the configured seed")
	}
	seen := map[uint64]bool{1996: true}
	for i := 1; i < 8; i++ {
		s := PerturbSeed(1996, i)
		if seen[s] {
			t.Fatalf("attempt %d repeated seed %d", i, s)
		}
		seen[s] = true
		if s2 := PerturbSeed(1996, i); s2 != s {
			t.Fatalf("PerturbSeed not deterministic: %d vs %d", s, s2)
		}
	}
}

func TestRetrySucceedsAfterFailures(t *testing.T) {
	var seeds []uint64
	spec := experiments.Spec{
		ID: "flaky", Title: "fails twice", Paper: "test",
		Run: func(_ context.Context, cfg experiments.Config) (experiments.Result, error) {
			seeds = append(seeds, cfg.Seed)
			if len(seeds) < 3 {
				return nil, fmt.Errorf("transient failure %d", len(seeds))
			}
			return &fakeResult{id: "flaky", payload: "ok"}, nil
		},
	}
	man, err := Run(context.Background(), []experiments.Spec{spec},
		Options{Jobs: 1, Retries: 3, Config: experiments.Config{Seed: 1996}}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rec := man.Records[0]
	if rec.Failed() {
		t.Fatalf("retried spec should have recovered: %+v", rec)
	}
	if rec.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", rec.Attempts)
	}
	want := []uint64{1996, PerturbSeed(1996, 1), PerturbSeed(1996, 2)}
	if len(rec.AttemptSeeds) != 3 || rec.AttemptSeeds[0] != want[0] ||
		rec.AttemptSeeds[1] != want[1] || rec.AttemptSeeds[2] != want[2] {
		t.Fatalf("attempt seeds = %v, want %v", rec.AttemptSeeds, want)
	}
	if len(seeds) != 3 || seeds[1] == seeds[0] || seeds[2] == seeds[1] {
		t.Fatalf("experiment saw seeds %v, want 3 distinct", seeds)
	}
}

func TestRetryExhaustedKeepsLastError(t *testing.T) {
	runs := 0
	spec := experiments.Spec{
		ID: "doomed", Title: "always fails", Paper: "test",
		Run: func(context.Context, experiments.Config) (experiments.Result, error) {
			runs++
			if runs == 1 {
				panic("persistent crash") // a panic is retried like an error
			}
			return nil, errors.New("persistent crash")
		},
	}
	man, err := Run(context.Background(), []experiments.Spec{spec},
		Options{Jobs: 1, Retries: 2}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rec := man.Records[0]
	if runs != 3 || rec.Attempts != 3 {
		t.Fatalf("runs/attempts = %d/%d, want 3/3", runs, rec.Attempts)
	}
	if !rec.Failed() || !strings.Contains(rec.Error, "persistent crash") {
		t.Fatalf("exhausted record wrong: %+v", rec)
	}
	if rec.Panicked {
		t.Fatalf("last attempt returned an error, not a panic: %+v", rec)
	}
}

func TestTimeoutIsNotRetried(t *testing.T) {
	// atomic: the timed-out attempt's goroutine is abandoned, so it may
	// still be touching the counter when the run returns.
	var attempts atomic.Int32
	spec := experiments.Spec{
		ID: "slow", Title: "times out", Paper: "test",
		Run: func(ctx context.Context, _ experiments.Config) (experiments.Result, error) {
			attempts.Add(1)
			<-ctx.Done()
			return nil, ctx.Err()
		},
	}
	man, err := Run(context.Background(), []experiments.Spec{spec},
		Options{Jobs: 1, Retries: 5, Timeout: 20 * time.Millisecond}, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	rec := man.Records[0]
	if n := attempts.Load(); n != 1 || rec.Attempts != 1 {
		t.Fatalf("timeout retried: attempts = %d/%d, want 1/1", n, rec.Attempts)
	}
	if !rec.TimedOut {
		t.Fatalf("record not flagged as timeout: %+v", rec)
	}
}

func TestManifestJSONRoundTrips(t *testing.T) {
	_, man := render(t, []experiments.Spec{mkSpec("a", time.Millisecond)}, 1, 0)
	var sb strings.Builder
	if err := man.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for _, want := range []string{`"id": "a"`, `"go_version"`, `"wall_seconds"`, `"records"`} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("manifest JSON missing %s:\n%s", want, sb.String())
		}
	}
}

// TestManifestCarriesScenario checks that a scenario-compiled spec's
// document lands in its RunRecord — including the synthetic record of
// a cancelled suite — while hand-written specs stay scenario-free.
func TestManifestCarriesScenario(t *testing.T) {
	doc := &scenario.Doc{
		Schema: scenario.SchemaVersion, ID: "sc-test", Title: "t",
		Persona:  "nt40",
		Workload: scenario.Workload{Kind: scenario.KindTyping, Full: scenario.Params{Chars: 10}},
	}
	withDoc := mkSpec("sc-test", 0)
	withDoc.Scenario = doc
	specs := []experiments.Spec{withDoc, mkSpec("plain", 0)}

	_, man := render(t, specs, 1, 0)
	if man.Records[0].Scenario == nil || man.Records[0].Scenario.ID != "sc-test" {
		t.Fatalf("scenario spec's record lost its document: %+v", man.Records[0].Scenario)
	}
	if man.Records[1].Scenario != nil {
		t.Fatalf("hand-written spec's record gained a document")
	}

	// A cancelled suite synthesizes records for uncollected specs; the
	// document must survive there too, or a -json manifest from an
	// aborted run would under-describe the corpus it was replaying.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	man2, _ := Run(ctx, specs, Options{Jobs: 1}, nil)
	if man2 == nil {
		t.Fatal("cancelled run should still return a manifest")
	}
	for _, r := range man2.Records {
		if r.ID == "sc-test" && r.Cancelled && r.Scenario == nil {
			t.Fatalf("cancelled synthetic record lost the scenario document")
		}
	}
}

func TestDrainStopsFeedingWithoutError(t *testing.T) {
	// Drain closed before the run starts: no spec is fed, every record
	// is a synthetic cancelled one, and — unlike cancellation — the run
	// returns no error, because draining is a graceful stop.
	drain := make(chan struct{})
	close(drain)
	specs := []experiments.Spec{
		mkSpec("a", time.Millisecond), mkSpec("b", time.Millisecond), mkSpec("c", time.Millisecond),
	}
	emitted := 0
	man, err := Run(context.Background(), specs, Options{Jobs: 2, Drain: drain},
		func(out Outcome) error { emitted++; return nil })
	if err != nil {
		t.Fatalf("drained run must not error: %v", err)
	}
	if len(man.Records) != len(specs) {
		t.Fatalf("manifest records = %d, want %d", len(man.Records), len(specs))
	}
	for i, r := range man.Records {
		if r.ID != specs[i].ID || !r.Cancelled {
			t.Fatalf("record[%d] = %+v, want cancelled %s", i, r, specs[i].ID)
		}
	}
	// The never-fed suffix gets synthetic manifest records only — the
	// emit path sees nothing, so callers must treat a short emit count
	// as interruption.
	if emitted != 0 {
		t.Fatalf("emit called %d times for unfed specs, want 0", emitted)
	}
}

func TestDrainMidRunCompletesInFlight(t *testing.T) {
	// Drain after the first spec starts: the in-flight spec completes
	// and emits a real record; later specs are never fed.
	drain := make(chan struct{})
	started := make(chan struct{})
	specs := []experiments.Spec{
		{ID: "slow", Title: "slow", Run: func(ctx context.Context, cfg experiments.Config) (experiments.Result, error) {
			close(started)
			<-drain // hold until the drain fires, then finish normally
			return &fakeResult{id: "slow", payload: "done"}, nil
		}},
		mkSpec("later", time.Millisecond),
	}
	go func() {
		<-started
		close(drain)
	}()
	man, err := Run(context.Background(), specs, Options{Jobs: 1, Drain: drain}, nil)
	if err != nil {
		t.Fatalf("drained run must not error: %v", err)
	}
	if man.Records[0].Failed() {
		t.Fatalf("in-flight spec must complete: %+v", man.Records[0])
	}
	if !man.Records[1].Cancelled {
		t.Fatalf("unfed spec must be cancelled: %+v", man.Records[1])
	}
}
