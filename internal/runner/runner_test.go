package runner

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"latlab/internal/experiments"
)

// fakeResult renders a fixed payload.
type fakeResult struct {
	id      string
	payload string
}

func (r *fakeResult) ExperimentID() string { return r.id }
func (r *fakeResult) Render(w io.Writer) error {
	_, err := fmt.Fprintln(w, r.payload)
	return err
}

// mkSpec builds a spec whose run sleeps for d (host time) and then
// returns a deterministic payload.
func mkSpec(id string, d time.Duration) experiments.Spec {
	return experiments.Spec{
		ID: id, Title: "fake " + id, Paper: "test",
		Run: func(ctx context.Context, cfg experiments.Config) (experiments.Result, error) {
			select {
			case <-time.After(d):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &fakeResult{id: id, payload: "payload-" + id}, nil
		},
	}
}

// render runs specs at the given parallelism and returns the emitted
// text plus the manifest.
func render(t *testing.T, specs []experiments.Spec, jobs int, timeout time.Duration) (string, *Manifest) {
	t.Helper()
	var buf bytes.Buffer
	man, err := Run(context.Background(), specs, Options{Jobs: jobs, Timeout: timeout}, func(out Outcome) error {
		if out.Record.Failed() {
			fmt.Fprintf(&buf, "FAILED %s\n", out.Spec.ID)
			return nil
		}
		return out.Result.Render(&buf)
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return buf.String(), man
}

func TestDeterministicOrderAcrossJobCounts(t *testing.T) {
	// Later specs finish first, so a naive completion-order stream would
	// invert the output at jobs > 1.
	var specs []experiments.Spec
	const n = 12
	for i := 0; i < n; i++ {
		specs = append(specs, mkSpec(fmt.Sprintf("exp%02d", i), time.Duration(n-i)*3*time.Millisecond))
	}
	seq, manSeq := render(t, specs, 1, 0)
	par, manPar := render(t, specs, 8, 0)
	if seq != par {
		t.Fatalf("output differs between -jobs 1 and -jobs 8:\n--- seq\n%s\n--- par\n%s", seq, par)
	}
	if !strings.HasPrefix(seq, "payload-exp00\n") {
		t.Fatalf("output not in spec order:\n%s", seq)
	}
	for _, man := range []*Manifest{manSeq, manPar} {
		if len(man.Records) != n {
			t.Fatalf("records = %d, want %d", len(man.Records), n)
		}
		for i, r := range man.Records {
			if want := fmt.Sprintf("exp%02d", i); r.ID != want {
				t.Fatalf("record[%d] = %s, want %s", i, r.ID, want)
			}
			if r.Failed() {
				t.Fatalf("record %s unexpectedly failed: %s", r.ID, r.Error)
			}
			if r.WallSeconds <= 0 {
				t.Fatalf("record %s missing wall time", r.ID)
			}
		}
	}
	if manPar.Jobs != 8 || manSeq.Jobs != 1 {
		t.Fatalf("manifest jobs = %d/%d, want 8/1", manPar.Jobs, manSeq.Jobs)
	}
}

func TestPanicBecomesFailedRecord(t *testing.T) {
	specs := []experiments.Spec{
		mkSpec("ok1", time.Millisecond),
		{ID: "boom", Title: "panicker", Paper: "test",
			Run: func(context.Context, experiments.Config) (experiments.Result, error) {
				panic("injected failure")
			}},
		mkSpec("ok2", time.Millisecond),
	}
	out, man := render(t, specs, 4, 0)
	want := "payload-ok1\nFAILED boom\npayload-ok2\n"
	if out != want {
		t.Fatalf("output = %q, want %q", out, want)
	}
	if man.Failed() != 1 {
		t.Fatalf("failed = %d, want 1", man.Failed())
	}
	rec := man.Records[1]
	if !rec.Panicked || !strings.Contains(rec.Error, "injected failure") {
		t.Fatalf("panic record wrong: %+v", rec)
	}
	if !strings.Contains(rec.Error, "runner_test.go") {
		t.Fatalf("panic record should carry a stack trace: %q", rec.Error)
	}
}

func TestTimeoutOfContextIgnoringSpec(t *testing.T) {
	block := make(chan struct{})
	defer close(block) // release the abandoned goroutine at test end
	specs := []experiments.Spec{
		mkSpec("fast", time.Millisecond),
		{ID: "stuck", Title: "ignores ctx", Paper: "test",
			Run: func(context.Context, experiments.Config) (experiments.Result, error) {
				<-block // ignores its context entirely
				return nil, errors.New("unreachable")
			}},
		mkSpec("fast2", time.Millisecond),
	}
	out, man := render(t, specs, 2, 50*time.Millisecond)
	want := "payload-fast\nFAILED stuck\npayload-fast2\n"
	if out != want {
		t.Fatalf("output = %q, want %q", out, want)
	}
	rec := man.Records[1]
	if !rec.TimedOut || rec.Error == "" {
		t.Fatalf("timeout record wrong: %+v", rec)
	}
	if man.Records[0].Failed() || man.Records[2].Failed() {
		t.Fatalf("timeout must not fail the other experiments: %+v", man.Records)
	}
}

func TestSpecHonoringContextTimesOutToo(t *testing.T) {
	// mkSpec's run returns ctx.Err() when cancelled: the error must be
	// classified as a timeout even though it arrived via the done path.
	_, man := render(t, []experiments.Spec{mkSpec("slow", time.Second)}, 1, 20*time.Millisecond)
	rec := man.Records[0]
	if !rec.TimedOut {
		t.Fatalf("cooperative timeout not flagged: %+v", rec)
	}
}

func TestEmitErrorCancelsRun(t *testing.T) {
	var specs []experiments.Spec
	for i := 0; i < 6; i++ {
		specs = append(specs, mkSpec(fmt.Sprintf("e%d", i), 5*time.Millisecond))
	}
	boom := errors.New("render failed")
	calls := 0
	man, err := Run(context.Background(), specs, Options{Jobs: 2}, func(out Outcome) error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if calls != 1 {
		t.Fatalf("emit called %d times after error, want 1", calls)
	}
	if len(man.Records) != 1 {
		t.Fatalf("manifest records = %d, want 1 (emitted prefix only)", len(man.Records))
	}
}

func TestParentCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	man, err := Run(ctx, []experiments.Spec{mkSpec("a", time.Millisecond)}, Options{Jobs: 1}, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run error = %v, want context.Canceled", err)
	}
	for _, r := range man.Records {
		if !r.Failed() {
			t.Fatalf("record under cancelled parent should fail: %+v", r)
		}
	}
}

func TestManifestJSONRoundTrips(t *testing.T) {
	_, man := render(t, []experiments.Spec{mkSpec("a", time.Millisecond)}, 1, 0)
	var sb strings.Builder
	if err := man.WriteJSON(&sb); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	for _, want := range []string{`"id": "a"`, `"go_version"`, `"wall_seconds"`, `"records"`} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("manifest JSON missing %s:\n%s", want, sb.String())
		}
	}
}
