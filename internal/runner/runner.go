// Package runner schedules experiments across a worker pool. Each
// experiment boots its own simulated machine, so the suite is
// embarrassingly parallel; the runner's job is everything around that:
// streaming results back in the caller's (paper) order regardless of
// completion order, turning a panicking experiment into a failed run
// record instead of a crashed suite, enforcing a per-experiment timeout
// via context, and emitting a machine-readable manifest — one RunRecord
// per experiment with timings, seed, and environment — so CI or an agent
// can rank and re-run experiments without parsing the human rendering.
package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"latlab/internal/experiments"
	"latlab/internal/scenario"
)

// Options tunes a suite run.
type Options struct {
	// Jobs is the worker-pool size; <=0 means runtime.NumCPU().
	Jobs int
	// Timeout bounds each experiment attempt's wall time; 0 means no
	// limit. A timed-out experiment becomes a failed RunRecord and its
	// goroutine is abandoned (the simulators have no preemption hook), so
	// the remaining experiments still complete.
	Timeout time.Duration
	// Retries grants a failing experiment that many additional attempts.
	// Attempt i runs with PerturbSeed(seed, i) so a seed-dependent crash
	// does not simply repeat; every attempt's seed lands in the manifest.
	// Timeouts and cancellation are not retried — their budget is already
	// spent and a different seed will not unstick them.
	Retries int
	// Drain, when it becomes readable (usually by closing it), stops the
	// feeder from handing out new specs while letting every in-flight
	// spec run to completion — the graceful-shutdown half of
	// cancellation. Because specs are fed strictly in order, the set of
	// completed specs after a drain is always a prefix of specs; the
	// un-fed suffix still gets synthetic Cancelled records. A nil Drain
	// never fires.
	Drain <-chan struct{}
	// Config is passed to every experiment.
	Config experiments.Config
}

// PerturbSeed derives the seed for retry attempt (0-based). Attempt 0
// returns seed unchanged, so a clean first run is bit-identical whether
// retries are enabled or not; later attempts mix the attempt index
// through the SplitMix64 finalizer so each retry explores a distinct
// but fully reproducible stochastic schedule.
func PerturbSeed(seed uint64, attempt int) uint64 {
	if attempt == 0 {
		return seed
	}
	z := seed + 0x9e3779b97f4a7c15*uint64(attempt)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// ArtifactRecord summarizes one exported artifact in a RunRecord.
type ArtifactRecord struct {
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Samples int    `json:"samples"`
}

// RunRecord is the machine-readable outcome of one experiment.
type RunRecord struct {
	ID    string `json:"id"`
	Title string `json:"title"`
	Paper string `json:"paper"`
	Seed  uint64 `json:"seed"`
	Quick bool   `json:"quick"`
	// Machine is the short id of the hardware profile the experiment ran
	// on ("p100" unless overridden).
	Machine string `json:"machine"`
	// WallSeconds is host time spent inside Spec.Run.
	WallSeconds float64 `json:"wall_seconds"`
	// SimSeconds is the longest simulated span any report artifact
	// covers — how much machine time the experiment simulated, as far as
	// its exported data shows. Zero when no artifact carries a report.
	SimSeconds float64 `json:"sim_seconds"`
	// Samples totals the data points across all artifacts.
	Samples   int              `json:"samples"`
	Artifacts []ArtifactRecord `json:"artifacts,omitempty"`
	// Attempts counts how many times Spec.Run was invoked: 1 plus the
	// retries consumed. Zero only on a synthetic Cancelled record.
	Attempts int `json:"attempts,omitempty"`
	// AttemptSeeds lists the seed each attempt ran with, in attempt
	// order; AttemptSeeds[0] is the configured seed.
	AttemptSeeds []uint64 `json:"attempt_seeds,omitempty"`
	// Error is empty on success. Panics and timeouts land here too,
	// flagged by Panicked / TimedOut.
	Error    string `json:"error,omitempty"`
	Panicked bool   `json:"panicked,omitempty"`
	TimedOut bool   `json:"timed_out,omitempty"`
	// Cancelled marks a synthetic record for a spec whose result the run
	// never collected because the suite was cancelled first.
	Cancelled bool `json:"cancelled,omitempty"`
	// Scenario is the full declarative document of a file-backed or
	// scenario-registered experiment (experiments.FromScenario), absent
	// for hand-written experiments — so a -json manifest records the
	// complete config every such run can be reproduced from.
	Scenario *scenario.Doc `json:"scenario,omitempty"`
}

// Failed reports whether the experiment did not produce a result.
func (r RunRecord) Failed() bool { return r.Error != "" }

// Manifest is the structured record of a whole suite run.
type Manifest struct {
	StartedAt string `json:"started_at"`
	Seed      uint64 `json:"seed"`
	Quick     bool   `json:"quick"`
	// Machine is the short id of the hardware profile the suite ran on.
	Machine   string  `json:"machine"`
	Jobs      int     `json:"jobs"`
	TimeoutS  float64 `json:"timeout_seconds,omitempty"`
	GoVersion string  `json:"go_version"`
	OS        string  `json:"os"`
	Arch      string  `json:"arch"`
	NumCPU    int     `json:"num_cpu"`
	// WallSeconds is the wall time of the whole run; with -jobs > 1 it
	// is less than the sum of the per-record wall times.
	WallSeconds float64     `json:"wall_seconds"`
	Records     []RunRecord `json:"records"`
}

// Failed counts records without a result.
func (m *Manifest) Failed() int {
	n := 0
	for _, r := range m.Records {
		if r.Failed() {
			n++
		}
	}
	return n
}

// WriteJSON writes the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// Outcome pairs an experiment's record with its live result. Result is
// nil when the record is failed.
type Outcome struct {
	Spec   experiments.Spec
	Result experiments.Result
	Record RunRecord
}

// Run executes specs on a worker pool of opt.Jobs goroutines and calls
// emit (if non-nil) once per spec, in the order of specs, regardless of
// completion order. A panicking or timed-out experiment is reported as a
// failed record; the remaining experiments still run. If emit returns an
// error the run is cancelled and that error returned. The returned
// manifest always lists exactly one record per spec, in specs order:
// specs whose results the cancelled run never collected get a synthetic
// record with Error "cancelled" and Cancelled set, so downstream tooling
// can join manifests against the spec list positionally.
func Run(ctx context.Context, specs []experiments.Spec, opt Options, emit func(Outcome) error) (*Manifest, error) {
	jobs := opt.Jobs
	if jobs <= 0 {
		jobs = runtime.NumCPU()
	}
	if jobs > len(specs) && len(specs) > 0 {
		jobs = len(specs)
	}
	man := &Manifest{
		StartedAt: time.Now().UTC().Format(time.RFC3339),
		Seed:      opt.Config.Seed,
		Quick:     opt.Config.Quick,
		Machine:   opt.Config.MachineProfile().Short,
		Jobs:      jobs,
		TimeoutS:  opt.Timeout.Seconds(),
		GoVersion: runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	start := time.Now()
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type indexed struct {
		i   int
		out Outcome
	}
	work := make(chan int)
	// Buffered so workers finishing after a cancellation never block on a
	// collector that has already stopped reading.
	results := make(chan indexed, len(specs))

	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results <- indexed{i, runOne(ctx, specs[i], opt)}
			}
		}()
	}
	go func() {
		defer close(work)
		for i := range specs {
			// Check the stop signals with priority: a select with a ready
			// worker would otherwise race a just-closed Drain and feed one
			// more spec.
			select {
			case <-ctx.Done():
				return
			case <-opt.Drain:
				return
			default:
			}
			select {
			case work <- i:
			case <-ctx.Done():
				return
			case <-opt.Drain:
				return
			}
		}
	}()
	go func() { wg.Wait(); close(results) }()

	// Reorder buffer: outcomes are appended and emitted strictly in specs
	// order, so the caller's rendering is deterministic however the pool
	// schedules.
	pending := make(map[int]Outcome, jobs)
	next := 0
	var emitErr error
	for r := range results {
		pending[r.i] = r.out
		for {
			out, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if emitErr != nil {
				continue
			}
			man.Records = append(man.Records, out.Record)
			if emit != nil {
				if err := emit(out); err != nil {
					emitErr = err
					cancel()
				}
			}
		}
	}
	// Records are appended strictly in specs order, so everything the run
	// never collected — the feed stopped on cancellation, or an emit error
	// stopped collection — is the suffix. Synthesize its records here so
	// len(Records) == len(specs) on every path.
	for i := len(man.Records); i < len(specs); i++ {
		s := specs[i]
		man.Records = append(man.Records, RunRecord{
			ID: s.ID, Title: s.Title, Paper: s.Paper,
			Seed: opt.Config.Seed, Quick: opt.Config.Quick,
			Machine:  opt.Config.MachineProfile().Short,
			Scenario: s.Scenario,
			Error:    "cancelled", Cancelled: true,
		})
	}
	man.WallSeconds = time.Since(start).Seconds()
	if emitErr != nil {
		return man, emitErr
	}
	return man, parent.Err()
}

// runOne executes a single spec under the per-attempt timeout,
// converting panics and timeouts into failed records and retrying
// errored attempts (with perturbed seeds) up to opt.Retries times.
func runOne(ctx context.Context, s experiments.Spec, opt Options) Outcome {
	rec := RunRecord{
		ID: s.ID, Title: s.Title, Paper: s.Paper,
		Seed: opt.Config.Seed, Quick: opt.Config.Quick,
		Machine:  opt.Config.MachineProfile().Short,
		Scenario: s.Scenario,
	}
	for attempt := 0; ; attempt++ {
		cfg := opt.Config
		cfg.Seed = PerturbSeed(opt.Config.Seed, attempt)
		// Scope span-track names to the spec so a shared collector names
		// tracks identically whatever the completion order of the pool.
		cfg.TraceTag = s.ID
		rec.Attempts = attempt + 1
		rec.AttemptSeeds = append(rec.AttemptSeeds, cfg.Seed)

		res, err, panicked, timedOut := runAttempt(ctx, s, cfg, opt.Timeout, &rec.WallSeconds)
		if err == nil {
			rec.Error, rec.Panicked, rec.TimedOut = "", false, false
			summarize(res, &rec)
			return Outcome{Spec: s, Result: res, Record: rec}
		}
		rec.Error = err.Error()
		rec.Panicked = panicked
		rec.TimedOut = timedOut
		// Retry only genuine failures: a timeout already spent its whole
		// budget, and under a cancelled suite more attempts are pointless.
		if timedOut || ctx.Err() != nil || attempt >= opt.Retries {
			return Outcome{Spec: s, Record: rec}
		}
	}
}

// runAttempt invokes Spec.Run once under its own timeout, accumulating
// host wall time into *wall.
func runAttempt(ctx context.Context, s experiments.Spec, cfg experiments.Config,
	timeout time.Duration, wall *float64) (_ experiments.Result, _ error, panicked, timedOut bool) {
	runCtx := ctx
	cancel := func() {}
	if timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()

	type ret struct {
		res      experiments.Result
		err      error
		panicked bool
	}
	done := make(chan ret, 1)
	start := time.Now()
	go func() {
		defer func() {
			if p := recover(); p != nil {
				done <- ret{
					err:      fmt.Errorf("panic: %v\n%s", p, debug.Stack()),
					panicked: true,
				}
			}
		}()
		res, err := s.Run(runCtx, cfg)
		done <- ret{res: res, err: err}
	}()

	select {
	case r := <-done:
		*wall += time.Since(start).Seconds()
		return r.res, r.err, r.panicked, errors.Is(r.err, context.DeadlineExceeded)
	case <-runCtx.Done():
		// The experiment ignored its context; abandon its goroutine and
		// record the failure so the rest of the suite proceeds.
		*wall += time.Since(start).Seconds()
		return nil, runCtx.Err(), false, errors.Is(runCtx.Err(), context.DeadlineExceeded)
	}
}

// summarize fills the record's artifact inventory from the result.
func summarize(res experiments.Result, rec *RunRecord) {
	ap, ok := res.(experiments.ArtifactProvider)
	if !ok {
		return
	}
	for _, a := range ap.Artifacts() {
		n := a.Samples()
		rec.Artifacts = append(rec.Artifacts, ArtifactRecord{
			Kind: a.Kind.String(), Name: a.Name, Samples: n,
		})
		rec.Samples += n
		if a.Report != nil {
			if s := a.Report.Elapsed.Seconds(); s > rec.SimSeconds {
				rec.SimSeconds = s
			}
		}
	}
}
