package ole

import (
	"testing"

	"latlab/internal/persona"
)

func TestCalibPrint(t *testing.T) {
	for _, p := range persona.NTs() {
		lat := activateTimes(t, p)
		t.Logf("%s: ole1=%v ole2=%v ole3=%v", p.Short, lat[0], lat[1], lat[2])
	}
}
