// Package ole models OLE embedded objects and their in-place editing
// sessions — the PowerPoint workload's embedded Excel graphs (paper
// §5.2-5.3, Table 1, Figs. 8-10).
//
// The behaviour the paper leans on is buffer-cache warming across
// sessions: the first activation pages the object server in from disk
// (seconds); later activations find progressively more of it resident
// ("the effects of the file system cache are most clearly observed in
// the latency for starting the second OLE edit"). The model captures
// that with a server image read in small scattered requests, per-session
// working-set extensions that shrink as the environment warms, and
// per-object data that is always cold the first time.
package ole

import (
	"fmt"

	"latlab/internal/cpu"
	"latlab/internal/fscache"
	"latlab/internal/kernel"
	"latlab/internal/winsys"
)

// readChunkPages is the request granularity for demand paging: small
// requests mean many rotational delays, which is what makes cold starts
// cost seconds (Table 1).
const readChunkPages = 2

// Server is an OLE object-server application (the embedded-graph editor).
type Server struct {
	cache *fscache.Cache
	exe   fscache.FileID
	// corePages is the image working set paged in on first activation.
	corePages int64
	// sessionExtra lists additional unique pages faulted by successive
	// sessions (fonts, registry, per-session scratch); the shrinking
	// schedule produces Table 1's 2nd/3rd-edit warming.
	sessionExtra []int64
	// setupCalls is the GUI-call count of one in-place activation.
	setupCalls int
	// initCyclesPerCall is the server-side compute accompanying setup.
	initSeg cpu.Segment

	sessions  int
	codePages []uint64
}

// ServerConfig sizes a Server.
type ServerConfig struct {
	// Name labels the server's image file.
	Name string
	// StartBlock places the image on disk.
	StartBlock int64
	// CorePages is the image working set (before persona BinaryScale).
	CorePages int64
	// SessionExtra is the per-session unique page schedule.
	SessionExtra []int64
	// SetupCalls is the GUI call count per activation.
	SetupCalls int
}

// DefaultServerConfig models a mid-90s embedded-chart editor: ~2.4 MB
// image working set, shrinking per-session extras.
func DefaultServerConfig() ServerConfig {
	return ServerConfig{
		Name:         "graph-server.exe",
		StartBlock:   1_200_000,
		CorePages:    900,
		SessionExtra: []int64{120, 140, 6},
		SetupCalls:   1200,
	}
}

// NewServer registers the server image (scaled by the persona's
// BinaryScale) and returns the server.
func NewServer(w *winsys.WinSys, cache *fscache.Cache, cfg ServerConfig) *Server {
	scale := w.Persona().BinaryScale
	if scale <= 0 {
		scale = 1
	}
	core := int64(float64(cfg.CorePages) * scale)
	extra := make([]int64, len(cfg.SessionExtra))
	var extraTotal int64
	for i, e := range cfg.SessionExtra {
		extra[i] = int64(float64(e) * scale)
		extraTotal += extra[i]
	}
	total := core + extraTotal
	s := &Server{
		cache:        cache,
		exe:          cache.AddFile(cfg.Name, cfg.StartBlock, total),
		corePages:    core,
		sessionExtra: extra,
		setupCalls:   cfg.SetupCalls,
		initSeg: cpu.Segment{Name: "ole-init", BaseCycles: 18_000,
			Instructions: 11_000, DataRefs: 5_000,
			CodePages: []uint64{500, 501, 502, 503}, DataPages: []uint64{520, 521}},
		codePages: []uint64{500, 501, 502, 503, 504, 505},
	}
	return s
}

// Sessions returns how many activations have run.
func (s *Server) Sessions() int { return s.sessions }

// Exe returns the server image file.
func (s *Server) Exe() fscache.FileID { return s.exe }

// pageIn demand-pages [first, first+pages) of the image in small chunks,
// with fix-up compute between chunks (relocation, import resolution).
func (s *Server) pageIn(tc *kernel.TC, first, pages int64) {
	fixup := cpu.Segment{Name: "ole-fixup", BaseCycles: 45_000,
		Instructions: 28_000, DataRefs: 11_000,
		CodePages: s.codePages[:2], DataPages: []uint64{522}}
	for p := first; p < first+pages; p += readChunkPages {
		n := int64(readChunkPages)
		if p+n > first+pages {
			n = first + pages - p
		}
		tc.ReadFile(s.exe, p, n)
		tc.Compute(fixup)
	}
}

// Object is one embedded object instance inside a document.
type Object struct {
	Server *Server
	// data is the object's storage (chart data, cached metafile).
	data      fscache.FileID
	dataPages int64
	// Elements is the chart complexity (drawn elements).
	Elements int
	edits    int
}

// NewObject registers an object of dataPages pages at startBlock whose
// chart has the given element count.
func NewObject(s *Server, name string, startBlock, dataPages int64, elements int) *Object {
	return &Object{
		Server:    s,
		data:      s.cache.AddFile(name, startBlock, dataPages),
		dataPages: dataPages,
		Elements:  elements,
	}
}

// Render draws the object in place (the page-down path of Fig. 9): the
// cached presentation is drawn, no server activation.
func (o *Object) Render(tc *kernel.TC, w *winsys.WinSys) {
	w.DrawChart(tc, o.Elements)
}

// Activate starts an in-place editing session (Table 1's "start OLE edit
// session", Figs. 8/10): demand-page the server image (core only on
// first activation), fault in this session's unique pages, read the
// object's storage, then perform activation GUI work and redraw.
func (o *Object) Activate(tc *kernel.TC, w *winsys.WinSys) {
	s := o.Server
	if s.sessions == 0 {
		s.pageIn(tc, 0, s.corePages)
	}
	idx := s.sessions
	if idx >= len(s.sessionExtra) {
		idx = len(s.sessionExtra) - 1
	}
	if idx >= 0 && s.sessionExtra[idx] > 0 {
		off := s.corePages
		for i := 0; i < idx; i++ {
			off += s.sessionExtra[i]
		}
		s.pageIn(tc, off, s.sessionExtra[idx])
	}
	s.sessions++

	// Object storage: cold the first time this object is opened. Chart
	// records are small, so storage is read page-at-a-time — many
	// rotational delays, the dominant cost of warm-server activations.
	if o.edits == 0 {
		for p := int64(0); p < o.dataPages; p++ {
			tc.ReadFile(o.data, p, 1)
			tc.Compute(s.initSeg)
		}
	}
	o.edits++

	// In-place activation GUI work plus server-side init compute.
	w.OLESetup(tc, s.setupCalls)
	tc.Compute(s.initSeg.Scale(40))
	o.Render(tc, w)
}

// EditKeystroke applies one modification to the activated object.
func (o *Object) EditKeystroke(tc *kernel.TC, w *winsys.WinSys) {
	if o.edits == 0 {
		panic(fmt.Sprintf("ole: keystroke in never-activated object %d", int(o.data)))
	}
	tc.Compute(o.Server.initSeg.Scale(3))
	w.DrawChart(tc, o.Elements/8+1)
}

// Deactivate ends the editing session: menu un-merge and host redraw.
func (o *Object) Deactivate(tc *kernel.TC, w *winsys.WinSys) {
	w.OLESetup(tc, o.Server.setupCalls/6)
	w.RepaintLines(tc, 8)
}
