package ole

import (
	"testing"

	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/system"
)

// activateTimes boots persona p and returns the latencies of three
// successive OLE activations (three distinct objects, as in the paper's
// PowerPoint task).
func activateTimes(t *testing.T, p persona.P) [3]simtime.Duration {
	t.Helper()
	sys := system.New(system.Config{Persona: p})
	defer sys.Shutdown()
	srv := NewServer(sys.Win, sys.K.Cache(), DefaultServerConfig())
	objs := [3]*Object{
		NewObject(srv, "obj1", 400_000, 140, 240),
		NewObject(srv, "obj2", 480_000, 140, 240),
		NewObject(srv, "obj3", 560_000, 140, 240),
	}
	var lat [3]simtime.Duration
	sys.Win.BindApp([]uint64{300, 301, 302, 303})
	sys.SpawnApp("ppt", func(tc *kernel.TC) {
		for i, o := range objs {
			start := tc.Now()
			o.Activate(tc, sys.Win)
			lat[i] = tc.Now().Sub(start)
			o.Deactivate(tc, sys.Win)
		}
	})
	sys.K.Run(simtime.Time(120 * simtime.Second))
	return lat
}

func TestActivationWarming(t *testing.T) {
	lat := activateTimes(t, persona.NT40())
	// Table 1 shape: first activation is multi-second and successive
	// ones get cheaper as the buffer cache warms.
	if lat[0] < 3*simtime.Second || lat[0] > 9*simtime.Second {
		t.Fatalf("first activation = %v, want Table-1 scale (~5.8s)", lat[0])
	}
	if !(lat[1] < lat[0]/2) {
		t.Fatalf("second activation %v should be far below first %v", lat[1], lat[0])
	}
	if !(lat[2] < lat[1]) {
		t.Fatalf("third activation %v should be below second %v", lat[2], lat[1])
	}
	if lat[2] < 200*simtime.Millisecond {
		t.Fatalf("third activation %v suspiciously fast; data+setup should remain", lat[2])
	}
}

func TestActivationNT351SlowerThanNT40(t *testing.T) {
	l351 := activateTimes(t, persona.NT351())
	l40 := activateTimes(t, persona.NT40())
	for i := range l351 {
		if l351[i] <= l40[i] {
			t.Fatalf("activation %d: NT3.51 %v should exceed NT4.0 %v", i, l351[i], l40[i])
		}
	}
	// The cold gap is driven by the bigger image (BinaryScale) and the
	// extra server round trips.
	if gap := l351[0] - l40[0]; gap < 500*simtime.Millisecond {
		t.Fatalf("cold activation gap = %v, want Table-1 scale (≈1.2s)", gap)
	}
}

func TestRenderDoesNotTouchDisk(t *testing.T) {
	sys := system.New(system.Config{Persona: persona.NT40()})
	defer sys.Shutdown()
	srv := NewServer(sys.Win, sys.K.Cache(), DefaultServerConfig())
	obj := NewObject(srv, "obj", 400_000, 100, 240)
	var renderDur simtime.Duration
	sys.SpawnApp("ppt", func(tc *kernel.TC) {
		start := tc.Now()
		obj.Render(tc, sys.Win)
		renderDur = tc.Now().Sub(start)
	})
	served := sys.K.Disk().Served()
	sys.K.Run(simtime.Time(10 * simtime.Second))
	if sys.K.Disk().Served() != served {
		t.Fatalf("render performed disk I/O")
	}
	if renderDur <= 0 || renderDur > simtime.Second {
		t.Fatalf("render = %v, want sub-second draw", renderDur)
	}
}

func TestEditKeystroke(t *testing.T) {
	sys := system.New(system.Config{Persona: persona.NT40()})
	defer sys.Shutdown()
	srv := NewServer(sys.Win, sys.K.Cache(), DefaultServerConfig())
	obj := NewObject(srv, "obj", 400_000, 100, 240)
	var editDur simtime.Duration
	sys.SpawnApp("ppt", func(tc *kernel.TC) {
		obj.Activate(tc, sys.Win)
		start := tc.Now()
		obj.EditKeystroke(tc, sys.Win)
		editDur = tc.Now().Sub(start)
	})
	sys.K.Run(simtime.Time(60 * simtime.Second))
	if editDur <= 0 || editDur > 100*simtime.Millisecond {
		t.Fatalf("edit keystroke = %v, want well under 100ms warm", editDur)
	}
	if srv.Sessions() != 1 {
		t.Fatalf("sessions = %d", srv.Sessions())
	}
}

func TestEditBeforeActivatePanics(t *testing.T) {
	sys := system.New(system.Config{Persona: persona.NT40()})
	defer sys.Shutdown()
	srv := NewServer(sys.Win, sys.K.Cache(), DefaultServerConfig())
	obj := NewObject(srv, "obj", 400_000, 100, 240)
	panicked := false
	sys.SpawnApp("ppt", func(tc *kernel.TC) {
		defer func() {
			// Recover inside the thread body: the thread then exits
			// normally from the kernel's point of view.
			panicked = recover() != nil
		}()
		obj.EditKeystroke(tc, sys.Win)
	})
	sys.K.Run(simtime.Time(simtime.Second))
	if !panicked {
		t.Fatalf("EditKeystroke before Activate should panic")
	}
}
