package stats

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
)

// Sketch is a mergeable streaming quantile sketch over non-negative
// samples (latencies in milliseconds), built for campaign-scale runs
// where per-event samples must be discarded: memory stays bounded by
// the sample *range*, never the sample *count*.
//
// It is the log-bucket member of the t-digest family (DDSketch-style):
// values land in geometrically spaced buckets with base gamma =
// (1+alpha)/(1-alpha), so every quantile estimate is within relative
// error alpha of the true sample quantile. Alongside the buckets it
// tracks exact count/min/max and streaming sum/M2 moments, so mean and
// jitter (standard deviation) come from the same object.
//
// Determinism contract (what the campaign ledger relies on, proved by
// the property tests in sketch_test.go):
//
//   - Merge(a, b) and Merge(b, a) produce byte-identical sketches:
//     bucket counts are integer sums, and the moment merges are written
//     in operand-symmetric form (IEEE addition and multiplication are
//     commutative, and the cross term depends only on delta squared).
//   - Bucket counts — and therefore every Quantile estimate — are
//     exactly invariant under any sharding of the input: folding shards
//     and folding the whole stream yield identical integer counts.
//   - Sum/Mean/M2 are grouping-invariant only up to floating-point
//     rounding; for a fixed fold order they are bit-deterministic,
//     which is why the campaign engine folds each cell sequentially in
//     seed order and the analyzer merges cells in ledger order.
type Sketch struct {
	gamma   float64
	lnGamma float64
	alpha   float64

	count uint64
	zeros uint64 // samples below SketchMinValue (estimated as 0)
	sum   float64
	min   float64
	max   float64
	m2    float64 // sum of squared deviations from the mean

	base    int // bucket index of buckets[0]
	buckets []uint64
}

// SketchMinValue is the smallest magnitude the sketch resolves;
// samples below it (including exact zeros) land in a dedicated zero
// bucket and are estimated as 0. One nanosecond, in milliseconds.
const SketchMinValue = 1e-6

// DefaultSketchAlpha is the relative accuracy campaigns run with: one
// percent of the value at every quantile.
const DefaultSketchAlpha = 0.01

// NewSketch returns an empty sketch with the given relative accuracy
// (0 < alpha < 1). Typical alpha is DefaultSketchAlpha.
func NewSketch(alpha float64) *Sketch {
	if !(alpha > 0 && alpha < 1) {
		panic(fmt.Sprintf("stats: sketch alpha %v out of (0,1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{gamma: gamma, lnGamma: math.Log(gamma), alpha: alpha}
}

// Alpha returns the sketch's relative accuracy.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Count returns the number of samples added.
func (s *Sketch) Count() uint64 { return s.count }

// Sum returns the sum of all samples.
func (s *Sketch) Sum() float64 { return s.sum }

// Min returns the smallest sample (0 when empty).
func (s *Sketch) Min() float64 {
	if s.count == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest sample (0 when empty).
func (s *Sketch) Max() float64 {
	if s.count == 0 {
		return 0
	}
	return s.max
}

// Mean returns the sample mean (0 when empty).
func (s *Sketch) Mean() float64 {
	if s.count == 0 {
		return 0
	}
	return s.sum / float64(s.count)
}

// Variance returns the population variance (0 when empty).
func (s *Sketch) Variance() float64 {
	if s.count == 0 {
		return 0
	}
	v := s.m2 / float64(s.count)
	if v < 0 { // floating-point merge slop can dip epsilon-negative
		return 0
	}
	return v
}

// StdDev returns the population standard deviation — the campaign's
// jitter metric.
func (s *Sketch) StdDev() float64 { return math.Sqrt(s.Variance()) }

// Buckets returns the number of live buckets (for memory assertions).
func (s *Sketch) Buckets() int {
	n := 0
	for _, c := range s.buckets {
		if c > 0 {
			n++
		}
	}
	return n
}

// indexOf returns the bucket index for x >= SketchMinValue: the
// smallest i with gamma^i >= x, so bucket i covers (gamma^(i-1),
// gamma^i].
func (s *Sketch) indexOf(x float64) int {
	return int(math.Ceil(math.Log(x) / s.lnGamma))
}

// valueOf returns the estimate for bucket index i: the point whose
// worst-case relative error over the bucket's range is exactly alpha.
func (s *Sketch) valueOf(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Add records one sample. Negative samples are clamped to the zero
// bucket (latencies cannot be negative; a clamp keeps a corrupted
// input from poisoning the bucket range). Steady-state Add is
// allocation-free once the sample range has been seen.
func (s *Sketch) Add(x float64) {
	if x < 0 {
		x = 0
	}
	// Moments first: delta against the pre-add mean, the nb=1 case of
	// the pairwise merge formula.
	if s.count == 0 {
		s.min, s.max = x, x
	} else {
		oldMean := s.sum / float64(s.count)
		delta := x - oldMean
		s.m2 += delta * delta * float64(s.count) / float64(s.count+1)
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.count++
	s.sum += x

	if x < SketchMinValue {
		s.zeros++
		return
	}
	s.bump(s.indexOf(x), 1)
}

// bump adds n to bucket idx, growing the dense window as needed.
func (s *Sketch) bump(idx int, n uint64) {
	if len(s.buckets) == 0 {
		s.base = idx
		s.buckets = append(s.buckets, 0)
	}
	for idx < s.base {
		// Prepend: grow at the front, preserving order.
		grow := s.base - idx
		s.buckets = append(make([]uint64, grow, grow+len(s.buckets)), s.buckets...)
		s.base = idx
	}
	for idx >= s.base+len(s.buckets) {
		s.buckets = append(s.buckets, 0)
	}
	s.buckets[idx-s.base] += n
}

// Merge folds o into s. Bucket counts add exactly; moments merge with
// the operand-symmetric parallel formula, so Merge(a,b) and Merge(b,a)
// are byte-identical. The two sketches must share the same alpha.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil || o.count == 0 {
		return nil
	}
	if s.gamma != o.gamma {
		return fmt.Errorf("stats: merging sketches with different accuracy (alpha %v vs %v)", s.alpha, o.alpha)
	}
	if s.count == 0 {
		s.min, s.max = o.min, o.max
		s.m2 = o.m2
	} else {
		na, nb := float64(s.count), float64(o.count)
		delta := s.sum/na - o.sum/nb
		s.m2 = (s.m2 + o.m2) + delta*delta*(na*nb)/(na+nb)
		if o.min < s.min {
			s.min = o.min
		}
		if o.max > s.max {
			s.max = o.max
		}
	}
	s.count += o.count
	s.sum += o.sum
	s.zeros += o.zeros
	for i, c := range o.buckets {
		if c > 0 {
			s.bump(o.base+i, c)
		}
	}
	return nil
}

// Quantile returns the estimate for quantile q in [0, 1], within
// relative error Alpha of the exact sample quantile at rank
// ceil(q*count) (rank 1 for q = 0). An empty sketch returns 0.
func (s *Sketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > s.count {
		rank = s.count
	}
	if rank <= s.zeros {
		return 0
	}
	cum := s.zeros
	for i, c := range s.buckets {
		cum += c
		if cum >= rank {
			return s.valueOf(s.base + i)
		}
	}
	// Unreachable for a consistent sketch; fall back to the top bucket.
	return s.Max()
}

// sketchJSON is the serialized form: fixed field order, sparse
// ascending [index, count] bucket pairs — the representation the
// campaign ledger commits, so it must be deterministic and strict to
// re-parse.
type sketchJSON struct {
	Alpha   float64    `json:"alpha"`
	Count   uint64     `json:"count"`
	Zeros   uint64     `json:"zeros"`
	Sum     float64    `json:"sum"`
	Min     float64    `json:"min"`
	Max     float64    `json:"max"`
	M2      float64    `json:"m2"`
	Buckets [][2]int64 `json:"buckets"`
}

// MarshalJSON implements json.Marshaler with a canonical form: only
// non-empty buckets, ascending by index.
func (s *Sketch) MarshalJSON() ([]byte, error) {
	out := sketchJSON{
		Alpha: s.alpha, Count: s.count, Zeros: s.zeros,
		Sum: s.sum, Min: s.Min(), Max: s.Max(), M2: s.m2,
		Buckets: make([][2]int64, 0, len(s.buckets)),
	}
	for i, c := range s.buckets {
		if c > 0 {
			out.Buckets = append(out.Buckets, [2]int64{int64(s.base + i), int64(c)})
		}
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler, strictly: unknown fields,
// out-of-order or non-positive buckets, and count/bucket mismatches
// are all rejected, so a corrupted ledger record fails loudly.
func (s *Sketch) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var in sketchJSON
	if err := dec.Decode(&in); err != nil {
		return fmt.Errorf("stats: sketch: %w", err)
	}
	if !(in.Alpha > 0 && in.Alpha < 1) {
		return fmt.Errorf("stats: sketch: alpha %v out of (0,1)", in.Alpha)
	}
	for _, v := range []float64{in.Sum, in.Min, in.Max, in.M2} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("stats: sketch: non-finite moment")
		}
	}
	n := in.Zeros
	fresh := NewSketch(in.Alpha)
	prev := math.MinInt64
	for _, b := range in.Buckets {
		idx, c := b[0], b[1]
		if c <= 0 {
			return fmt.Errorf("stats: sketch: bucket %d has non-positive count %d", idx, c)
		}
		if int(idx) <= prev {
			return fmt.Errorf("stats: sketch: bucket indices not strictly ascending at %d", idx)
		}
		prev = int(idx)
		fresh.bump(int(idx), uint64(c))
		n += uint64(c)
	}
	if n != in.Count {
		return fmt.Errorf("stats: sketch: count %d does not match bucket total %d", in.Count, n)
	}
	fresh.count = in.Count
	fresh.zeros = in.Zeros
	fresh.sum = in.Sum
	fresh.min = in.Min
	fresh.max = in.Max
	fresh.m2 = in.M2
	*s = *fresh
	return nil
}
