// Package stats provides the summary statistics and histogram machinery
// used to analyze latency traces, mirroring the representations in the
// paper's Section 3.2: event-latency histograms, cumulative-latency
// curves, and interarrival summaries.
package stats

import (
	"fmt"
	"math"
	"sort"

	"latlab/internal/simtime"
)

// Summary holds the basic moments of a sample set.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	StdDev float64
	Sum    float64
}

// Summarize computes a Summary over xs. An empty input yields a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	var s Summary
	s.N = len(xs)
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	for _, x := range xs {
		s.Sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	// Population standard deviation: the paper reports std dev over the
	// full set of trials, not a sampling estimate.
	s.StdDev = math.Sqrt(ss / float64(s.N))
	return s
}

// RelStdDev returns the standard deviation as a fraction of the mean
// (the "%-of-mean" form the paper uses, e.g. "under 2% of the mean").
// It returns 0 when the mean is 0.
func (s Summary) RelStdDev() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.StdDev / math.Abs(s.Mean)
}

// SummarizeDurations converts durations to milliseconds and summarizes.
func SummarizeDurations(ds []simtime.Duration) Summary {
	xs := make([]float64, len(ds))
	for i, d := range ds {
		xs[i] = d.Milliseconds()
	}
	return Summarize(xs)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// linear interpolation between closest ranks. It panics on empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty set")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Histogram bins sample values. Bins are left-closed, right-open:
// [lo+i*width, lo+(i+1)*width). Values outside [lo, hi) land in the
// Under/Over counters so no sample is silently dropped.
type Histogram struct {
	Lo, Hi float64
	Width  float64
	Counts []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates a histogram over [lo, hi) with n equal bins.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic(fmt.Sprintf("stats: bad histogram bounds [%v,%v) n=%d", lo, hi, n))
	}
	return &Histogram{Lo: lo, Hi: hi, Width: (hi - lo) / float64(n), Counts: make([]int, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / h.Width)
		if i >= len(h.Counts) { // float edge case at the upper bound
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// Total returns the number of samples recorded, including out-of-range ones.
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.Width
}

// MaxCount returns the largest bin count (useful for scaling plots).
func (h *Histogram) MaxCount() int {
	m := 0
	for _, c := range h.Counts {
		if c > m {
			m = c
		}
	}
	return m
}

// CumulativePoint is one point on a cumulative-latency curve.
type CumulativePoint struct {
	// Latency is the event latency in milliseconds; points are sorted by it.
	Latency float64
	// EventCount is the number of events with latency ≤ Latency.
	EventCount int
	// CumLatency is the summed latency (ms) of those events.
	CumLatency float64
}

// CumulativeCurve sorts latencies ascending and integrates them. This is
// the paper's "cumulative latency graph": X = latency, Y = cumulative
// latency; and the derived events-vs-cumulative-latency view (§3.2).
func CumulativeCurve(latencies []float64) []CumulativePoint {
	sorted := append([]float64(nil), latencies...)
	sort.Float64s(sorted)
	pts := make([]CumulativePoint, len(sorted))
	var cum float64
	for i, l := range sorted {
		cum += l
		pts[i] = CumulativePoint{Latency: l, EventCount: i + 1, CumLatency: cum}
	}
	return pts
}

// FractionBelow returns the share of total cumulative latency contributed
// by events with latency < cutoff. Used for assertions such as "over 80%
// of the latency of Notepad is due to events under 10 ms" (§5.1).
func FractionBelow(latencies []float64, cutoff float64) float64 {
	var below, total float64
	for _, l := range latencies {
		total += l
		if l < cutoff {
			below += l
		}
	}
	if total == 0 {
		return 0
	}
	return below / total
}

// Interarrival summarizes the gaps between events above a latency
// threshold, reproducing the analysis in the paper's Table 2.
type Interarrival struct {
	ThresholdMs float64
	Count       int     // events above threshold
	MeanSec     float64 // mean gap between successive above-threshold events
	StdDevSec   float64
}

// InterarrivalAbove computes interarrival statistics for events whose
// latency exceeds thresholdMs. starts holds each event's start time;
// latencies its duration in ms; the two slices are parallel.
func InterarrivalAbove(starts []simtime.Time, latencies []float64, thresholdMs float64) Interarrival {
	if len(starts) != len(latencies) {
		panic("stats: starts and latencies length mismatch")
	}
	n := 0
	for _, l := range latencies {
		if l > thresholdMs {
			n++
		}
	}
	above := make([]simtime.Time, 0, n)
	for i, l := range latencies {
		if l > thresholdMs {
			above = append(above, starts[i])
		}
	}
	ia := Interarrival{ThresholdMs: thresholdMs, Count: len(above)}
	if len(above) < 2 {
		return ia
	}
	sort.Slice(above, func(i, j int) bool { return above[i] < above[j] })
	gaps := make([]float64, len(above)-1)
	for i := 1; i < len(above); i++ {
		gaps[i-1] = above[i].Sub(above[i-1]).Seconds()
	}
	s := Summarize(gaps)
	ia.MeanSec = s.Mean
	ia.StdDevSec = s.StdDev
	return ia
}
