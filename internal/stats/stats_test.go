package stats

import (
	"math"
	"testing"
	"testing/quick"

	"latlab/internal/simtime"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 || s.Min != 2 || s.Max != 9 || s.Sum != 40 {
		t.Fatalf("basic fields wrong: %+v", s)
	}
	if s.Mean != 5 {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	if !almost(s.StdDev, 2, 1e-12) {
		t.Fatalf("stddev = %v, want 2 (population)", s.StdDev)
	}
	if !almost(s.RelStdDev(), 0.4, 1e-12) {
		t.Fatalf("rel stddev = %v, want 0.4", s.RelStdDev())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.RelStdDev() != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeDurations(t *testing.T) {
	s := SummarizeDurations([]simtime.Duration{simtime.Millisecond, 3 * simtime.Millisecond})
	if s.Mean != 2 {
		t.Fatalf("duration mean = %v ms, want 2", s.Mean)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Median(xs); got != 3 {
		t.Fatalf("median = %v", got)
	}
	if got := Percentile(xs, 25); got != 2 {
		t.Fatalf("p25 = %v, want 2", got)
	}
	// Interpolated.
	if got := Percentile([]float64{0, 10}, 50); got != 5 {
		t.Fatalf("interpolated median = %v, want 5", got)
	}
}

func TestPercentilePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	Percentile(nil, 50)
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5) // bins of width 2
	for _, x := range []float64{-1, 0, 1.9, 2, 9.999, 10, 50} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Fatalf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	if h.Counts[0] != 2 { // 0 and 1.9
		t.Fatalf("bin0 = %d, want 2", h.Counts[0])
	}
	if h.Counts[1] != 1 { // 2
		t.Fatalf("bin1 = %d, want 1", h.Counts[1])
	}
	if h.Counts[4] != 1 { // 9.999
		t.Fatalf("bin4 = %d, want 1", h.Counts[4])
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d, want 7", h.Total())
	}
	if h.BinCenter(0) != 1 {
		t.Fatalf("bin center = %v, want 1", h.BinCenter(0))
	}
	if h.MaxCount() != 2 {
		t.Fatalf("max count = %d", h.MaxCount())
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewHistogram(5, 5, 3)
}

// Property: every added sample is accounted for exactly once.
func TestHistogramConservation(t *testing.T) {
	f := func(xs []float64) bool {
		h := NewHistogram(0, 100, 10)
		for _, x := range xs {
			h.Add(x)
		}
		n := h.Under + h.Over
		for _, c := range h.Counts {
			n += c
		}
		return n == len(xs) && h.Total() == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCumulativeCurve(t *testing.T) {
	pts := CumulativeCurve([]float64{5, 1, 3})
	if len(pts) != 3 {
		t.Fatalf("len = %d", len(pts))
	}
	if pts[0].Latency != 1 || pts[1].Latency != 3 || pts[2].Latency != 5 {
		t.Fatalf("not sorted: %+v", pts)
	}
	if pts[2].CumLatency != 9 || pts[2].EventCount != 3 {
		t.Fatalf("final point wrong: %+v", pts[2])
	}
	if pts[1].CumLatency != 4 {
		t.Fatalf("middle cumulative = %v, want 4", pts[1].CumLatency)
	}
}

// Property: the cumulative curve is monotonic in both axes and its final
// value equals the sum of inputs.
func TestCumulativeCurveProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		xs := make([]float64, len(raw))
		var sum float64
		for i, r := range raw {
			xs[i] = float64(r)
			sum += xs[i]
		}
		pts := CumulativeCurve(xs)
		if len(pts) != len(xs) {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].Latency < pts[i-1].Latency || pts[i].CumLatency < pts[i-1].CumLatency {
				return false
			}
		}
		return len(pts) == 0 || math.Abs(pts[len(pts)-1].CumLatency-sum) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFractionBelow(t *testing.T) {
	lat := []float64{1, 1, 1, 1, 6} // total 10, below-5 sum 4
	if got := FractionBelow(lat, 5); got != 0.4 {
		t.Fatalf("FractionBelow = %v, want 0.4", got)
	}
	if got := FractionBelow(nil, 5); got != 0 {
		t.Fatalf("empty FractionBelow = %v, want 0", got)
	}
}

func TestInterarrivalAbove(t *testing.T) {
	// Three above-threshold events at t = 0s, 2s, 6s → gaps 2s, 4s.
	starts := []simtime.Time{
		0,
		simtime.Time(2 * simtime.Second),
		simtime.Time(3 * simtime.Second),
		simtime.Time(6 * simtime.Second),
	}
	lat := []float64{200, 150, 50, 300} // threshold 100 excludes the 50ms event
	ia := InterarrivalAbove(starts, lat, 100)
	if ia.Count != 3 {
		t.Fatalf("count = %d, want 3", ia.Count)
	}
	if !almost(ia.MeanSec, 3, 1e-9) {
		t.Fatalf("mean gap = %v, want 3", ia.MeanSec)
	}
	if !almost(ia.StdDevSec, 1, 1e-9) {
		t.Fatalf("std gap = %v, want 1", ia.StdDevSec)
	}
}

func TestInterarrivalFewEvents(t *testing.T) {
	ia := InterarrivalAbove([]simtime.Time{0}, []float64{500}, 100)
	if ia.Count != 1 || ia.MeanSec != 0 {
		t.Fatalf("single event interarrival: %+v", ia)
	}
}

func TestInterarrivalMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	InterarrivalAbove([]simtime.Time{0}, nil, 1)
}

func TestHistogramAddAllocFree(t *testing.T) {
	// Bins are allocated once in NewHistogram; recording a sample — in
	// range, under, or over — must never allocate.
	h := NewHistogram(0, 100, 50)
	xs := []float64{-1, 0, 3.7, 99.999, 100, 1e9}
	i := 0
	if avg := testing.AllocsPerRun(1000, func() {
		h.Add(xs[i%len(xs)])
		i++
	}); avg != 0 {
		t.Fatalf("Histogram.Add allocates %.1f/op, want 0", avg)
	}
}
