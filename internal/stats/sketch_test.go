package stats

import (
	"bytes"
	"encoding/json"
	"math"
	"sort"
	"testing"

	"latlab/internal/rng"
)

// The sketch backs the campaign ledger, so its contract is proved as
// properties over adversarial distributions rather than spot values:
//
//   1. every quantile estimate is within the documented relative error
//      of the exact sorted-sample quantile at the same rank;
//   2. Merge is order-invariant byte-for-byte;
//   3. bucket counts — hence quantiles — are exactly invariant under
//      any sharding of the input, and the moments match the whole-
//      stream fold to floating-point rounding.

// distribution is one adversarial sample generator.
type distribution struct {
	name string
	gen  func(r *rng.Source) float64
}

// distributions returns the adversarial set: uniform, bimodal,
// heavy-tail (Pareto), constant, and a spiky mix that exercises the
// zero bucket.
func distributions() []distribution {
	return []distribution{
		{"uniform", func(r *rng.Source) float64 { return r.Uniform(0.1, 1000) }},
		{"bimodal", func(r *rng.Source) float64 {
			if r.Float64() < 0.5 {
				return r.Uniform(1, 2)
			}
			return r.Uniform(900, 1100)
		}},
		{"heavy-tail", func(r *rng.Source) float64 {
			// Pareto with shape 1.1: the tail dominates, like stalled-event
			// latency distributions.
			return 5 / math.Pow(1-r.Float64(), 1/1.1)
		}},
		{"constant", func(r *rng.Source) float64 { return 42.0 }},
		{"zero-spike", func(r *rng.Source) float64 {
			if r.Float64() < 0.3 {
				return 0
			}
			return r.Uniform(0.5, 50)
		}},
	}
}

// samplesFor draws n samples of d from a fixed seed.
func samplesFor(d distribution, n int) []float64 {
	r := rng.New(0xc0ffee)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = d.gen(r)
	}
	return xs
}

// exactQuantile mirrors the sketch's rank convention on the exact
// sorted sample: rank ceil(q*n), clamped to [1, n].
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

var quantiles = []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1}

// TestSketchQuantileErrorBounds checks the headline accuracy property
// on every adversarial distribution: each quantile estimate is within
// relative error alpha of the exact sorted-sample quantile at the same
// rank (values in the zero bucket are estimated as 0, so they get an
// absolute tolerance of SketchMinValue).
func TestSketchQuantileErrorBounds(t *testing.T) {
	const n = 20_000
	for _, d := range distributions() {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			xs := samplesFor(d, n)
			sk := NewSketch(DefaultSketchAlpha)
			for _, x := range xs {
				sk.Add(x)
			}
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			for _, q := range quantiles {
				got := sk.Quantile(q)
				want := exactQuantile(sorted, q)
				if want < SketchMinValue {
					if got != 0 {
						t.Errorf("q=%v: zero-bucket value estimated %v, want 0", q, got)
					}
					continue
				}
				if rel := math.Abs(got-want) / want; rel > sk.Alpha()+1e-12 {
					t.Errorf("q=%v: estimate %v vs exact %v: relative error %v > alpha %v",
						q, got, want, rel, sk.Alpha())
				}
			}
			s := Summarize(xs)
			if math.Abs(sk.Mean()-s.Mean) > 1e-9*math.Max(1, math.Abs(s.Mean)) {
				t.Errorf("mean %v vs exact %v", sk.Mean(), s.Mean)
			}
			if math.Abs(sk.StdDev()-s.StdDev) > 1e-6*math.Max(1, s.StdDev) {
				t.Errorf("stddev %v vs exact %v", sk.StdDev(), s.StdDev)
			}
			if sk.Min() != s.Min || sk.Max() != s.Max {
				t.Errorf("min/max %v/%v vs exact %v/%v", sk.Min(), sk.Max(), s.Min, s.Max)
			}
		})
	}
}

// marshal renders a sketch's canonical bytes for byte-equality checks.
func marshal(t *testing.T, sk *Sketch) []byte {
	t.Helper()
	data, err := json.Marshal(sk)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// foldShards splits xs into nShards round-robin shards, folds each
// into its own sketch, and merges them left-to-right in the given
// shard order.
func foldShards(t *testing.T, xs []float64, nShards int, order []int) *Sketch {
	t.Helper()
	shards := make([]*Sketch, nShards)
	for i := range shards {
		shards[i] = NewSketch(DefaultSketchAlpha)
	}
	for i, x := range xs {
		shards[i%nShards].Add(x)
	}
	out := NewSketch(DefaultSketchAlpha)
	for _, i := range order {
		if err := out.Merge(shards[i]); err != nil {
			t.Fatal(err)
		}
	}
	return out
}

// TestSketchMergeCommutative checks merge(a,b) ≡ merge(b,a)
// byte-for-byte on every distribution pair, including self-pairs.
func TestSketchMergeCommutative(t *testing.T) {
	const n = 4_000
	ds := distributions()
	for i := range ds {
		for j := range ds {
			a0, b0 := NewSketch(DefaultSketchAlpha), NewSketch(DefaultSketchAlpha)
			for _, x := range samplesFor(ds[i], n) {
				a0.Add(x)
			}
			for _, x := range samplesFor(ds[j], n/3) {
				b0.Add(x)
			}
			ab := NewSketch(DefaultSketchAlpha)
			if err := ab.Merge(a0); err != nil {
				t.Fatal(err)
			}
			if err := ab.Merge(b0); err != nil {
				t.Fatal(err)
			}
			ba := NewSketch(DefaultSketchAlpha)
			if err := ba.Merge(b0); err != nil {
				t.Fatal(err)
			}
			if err := ba.Merge(a0); err != nil {
				t.Fatal(err)
			}
			if got, want := marshal(t, ab), marshal(t, ba); !bytes.Equal(got, want) {
				t.Errorf("%s+%s: merge not commutative:\n a,b: %s\n b,a: %s",
					ds[i].name, ds[j].name, got, want)
			}
		}
	}
}

// TestSketchFoldOfShardsMatchesWhole checks the sharding property the
// campaign engine relies on: folding shards (in any shard order)
// yields exactly the bucket counts — and therefore exactly the
// quantile estimates — of folding the whole stream, with count, zeros,
// min, and max exactly equal and sum/mean/M2 equal to floating-point
// rounding.
func TestSketchFoldOfShardsMatchesWhole(t *testing.T) {
	const n = 10_000
	for _, d := range distributions() {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			xs := samplesFor(d, n)
			whole := NewSketch(DefaultSketchAlpha)
			for _, x := range xs {
				whole.Add(x)
			}
			for _, nShards := range []int{2, 3, 7, 16} {
				// Forward and reversed shard orders both must agree.
				fwd := make([]int, nShards)
				rev := make([]int, nShards)
				for i := range fwd {
					fwd[i] = i
					rev[i] = nShards - 1 - i
				}
				for _, order := range [][]int{fwd, rev} {
					got := foldShards(t, xs, nShards, order)
					if got.Count() != whole.Count() || got.zeros != whole.zeros {
						t.Fatalf("%d shards: count/zeros %d/%d vs whole %d/%d",
							nShards, got.Count(), got.zeros, whole.Count(), whole.zeros)
					}
					if got.Min() != whole.Min() || got.Max() != whole.Max() {
						t.Fatalf("%d shards: min/max differ", nShards)
					}
					if got.base != whole.base && len(whole.buckets) > 0 && len(got.buckets) > 0 {
						// Dense windows may differ in padding; compare counts below.
						_ = got
					}
					for _, q := range quantiles {
						if got.Quantile(q) != whole.Quantile(q) {
							t.Fatalf("%d shards: quantile %v = %v, whole = %v (must be exact)",
								nShards, q, got.Quantile(q), whole.Quantile(q))
						}
					}
					if rel := math.Abs(got.Sum()-whole.Sum()) / math.Max(1, math.Abs(whole.Sum())); rel > 1e-9 {
						t.Fatalf("%d shards: sum %v vs %v", nShards, got.Sum(), whole.Sum())
					}
					if rel := math.Abs(got.StdDev()-whole.StdDev()) / math.Max(1, whole.StdDev()); rel > 1e-6 {
						t.Fatalf("%d shards: stddev %v vs %v", nShards, got.StdDev(), whole.StdDev())
					}
				}
			}
		})
	}
}

// TestSketchJSONRoundTrip checks that Marshal → Unmarshal → Marshal is
// byte-identical (the ledger's append/replay cycle) and that the
// round-tripped sketch answers every quantile identically.
func TestSketchJSONRoundTrip(t *testing.T) {
	for _, d := range distributions() {
		sk := NewSketch(DefaultSketchAlpha)
		for _, x := range samplesFor(d, 5_000) {
			sk.Add(x)
		}
		data := marshal(t, sk)
		var back Sketch
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		if again := marshal(t, &back); !bytes.Equal(data, again) {
			t.Errorf("%s: round trip not byte-identical", d.name)
		}
		for _, q := range quantiles {
			if back.Quantile(q) != sk.Quantile(q) {
				t.Errorf("%s: quantile %v drifted over round trip", d.name, q)
			}
		}
		if err := back.Merge(sk); err != nil {
			t.Errorf("%s: merging a round-tripped sketch: %v", d.name, err)
		}
	}
}

// TestSketchUnmarshalRejects locks the strict-parse behaviour the
// ledger depends on: malformed sketch payloads fail instead of
// silently degrading.
func TestSketchUnmarshalRejects(t *testing.T) {
	cases := map[string]string{
		"unknown field":     `{"alpha":0.01,"count":0,"zeros":0,"sum":0,"min":0,"max":0,"m2":0,"buckets":[],"bogus":1}`,
		"bad alpha":         `{"alpha":1.5,"count":0,"zeros":0,"sum":0,"min":0,"max":0,"m2":0,"buckets":[]}`,
		"count mismatch":    `{"alpha":0.01,"count":5,"zeros":0,"sum":1,"min":1,"max":1,"m2":0,"buckets":[[3,4]]}`,
		"unsorted buckets":  `{"alpha":0.01,"count":2,"zeros":0,"sum":2,"min":1,"max":1,"m2":0,"buckets":[[3,1],[2,1]]}`,
		"zero-count bucket": `{"alpha":0.01,"count":1,"zeros":1,"sum":0,"min":0,"max":0,"m2":0,"buckets":[[3,0]]}`,
		"not json":          `{"alpha":`,
	}
	for name, data := range cases {
		var sk Sketch
		if err := json.Unmarshal([]byte(data), &sk); err == nil {
			t.Errorf("%s: parse unexpectedly succeeded", name)
		}
	}
}

// TestSketchEmptyAndEdge covers the empty sketch and clamping edges.
func TestSketchEmptyAndEdge(t *testing.T) {
	sk := NewSketch(DefaultSketchAlpha)
	if sk.Quantile(0.5) != 0 || sk.Mean() != 0 || sk.StdDev() != 0 || sk.Min() != 0 || sk.Max() != 0 {
		t.Error("empty sketch must report zeros")
	}
	if err := sk.Merge(NewSketch(DefaultSketchAlpha)); err != nil {
		t.Errorf("merging empty sketches: %v", err)
	}
	other := NewSketch(0.05)
	other.Add(1)
	if err := sk.Merge(other); err == nil {
		t.Error("merging different alphas must fail")
	}
	sk.Add(-5) // clamped to the zero bucket
	if sk.Quantile(1) != 0 || sk.Min() != 0 {
		t.Error("negative sample must clamp to 0")
	}
}

// TestSketchAddAllocs is the flat-memory budget: once the sample range
// has been seen, Add never allocates — a campaign's resident set does
// not grow with its session count.
func TestSketchAddAllocs(t *testing.T) {
	sk := NewSketch(DefaultSketchAlpha)
	r := rng.New(7)
	for i := 0; i < 4_096; i++ {
		sk.Add(r.Uniform(0.01, 5_000))
	}
	if avg := testing.AllocsPerRun(1000, func() {
		sk.Add(r.Uniform(0.01, 5_000))
	}); avg != 0 {
		t.Errorf("Add allocates %.1f per op in steady state, want 0", avg)
	}
}

// BenchmarkSketchAdd measures the per-sample fold cost on the campaign
// hot path (gated by benchgate for allocations).
func BenchmarkSketchAdd(b *testing.B) {
	sk := NewSketch(DefaultSketchAlpha)
	r := rng.New(7)
	xs := make([]float64, 4096)
	for i := range xs {
		xs[i] = r.Uniform(0.01, 5_000)
	}
	for _, x := range xs {
		sk.Add(x)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sk.Add(xs[i&4095])
	}
}
