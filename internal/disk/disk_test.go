package disk

import (
	"testing"
	"testing/quick"

	"latlab/internal/eventq"
	"latlab/internal/rng"
	"latlab/internal/simtime"
)

// rngNew and quickCheck keep the property test terse.
func rngNew(seed uint64) *rng.Source { return rng.New(seed) }

func quickCheck(f any, max int) error {
	return quick.Check(f, &quick.Config{MaxCount: max})
}

// fakeSched drives the disk with a standalone event queue.
type fakeSched struct {
	now simtime.Time
	q   eventq.Queue
}

func (s *fakeSched) Now() simtime.Time { return s.now }
func (s *fakeSched) After(d simtime.Duration, fn func(simtime.Time)) {
	s.q.Schedule(s.now.Add(d), fn)
}
func (s *fakeSched) run() {
	for {
		e, ok := s.q.Pop()
		if !ok {
			return
		}
		s.now = e.At()
		e.Fire(s.now)
	}
}

func TestServiceTimeComponents(t *testing.T) {
	s := &fakeSched{}
	d := New(DefaultParams(), s, 1)
	p := d.Params()

	// Sequential read at the head position: no seek.
	r := Request{Op: Read, Block: 0, Blocks: 8, Done: func(simtime.Time, error) {}}
	got := d.ServiceTime(r, 0)
	want := p.ControllerOverhead + 8*p.TransferPerBlock
	if got != want {
		t.Fatalf("no-seek service = %v, want %v", got, want)
	}

	// Far seek saturates at MaxSeek.
	far := Request{Op: Read, Block: p.Blocks - 8, Blocks: 8, Done: func(simtime.Time, error) {}}
	got = d.ServiceTime(far, 0.5)
	want = p.ControllerOverhead + p.MaxSeek + simtime.Duration(0.5*float64(p.Rotation)) + 8*p.TransferPerBlock
	if got != want {
		t.Fatalf("far-seek service = %v, want %v", got, want)
	}
	if got < simtime.FromMillis(20) || got > simtime.FromMillis(30) {
		t.Fatalf("full-stroke read should be a few tens of ms, got %v", got)
	}
}

func TestFIFOCompletionOrder(t *testing.T) {
	s := &fakeSched{}
	d := New(DefaultParams(), s, 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		d.Submit(Request{Op: Read, Block: int64(i) * 100_000, Blocks: 4,
			Done: func(simtime.Time, error) { order = append(order, i) }})
	}
	if d.QueueLen() != 4 || !d.Busy() {
		t.Fatalf("queue/busy = %d/%v, want 4/true", d.QueueLen(), d.Busy())
	}
	s.run()
	if len(order) != 5 {
		t.Fatalf("completions = %d, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("completion order %v, not FIFO", order)
		}
	}
	if d.Served() != 5 || d.Busy() || d.QueueLen() != 0 {
		t.Fatalf("final state wrong: served=%d busy=%v q=%d", d.Served(), d.Busy(), d.QueueLen())
	}
	if d.BusyTime() <= 0 {
		t.Fatalf("busy time not accumulated")
	}
}

func TestCompletionTimeAdvances(t *testing.T) {
	s := &fakeSched{}
	d := New(DefaultParams(), s, 1)
	var doneAt simtime.Time
	d.Submit(Request{Op: Write, Block: 500_000, Blocks: 16, Done: func(now simtime.Time, _ error) { doneAt = now }})
	s.run()
	if doneAt <= 0 {
		t.Fatalf("completion time = %v, should be after submission", doneAt)
	}
	// A single mid-disk request on an idle drive: ms-scale, not µs or s.
	if doneAt < simtime.Time(simtime.Millisecond) || doneAt > simtime.Time(100*simtime.Millisecond) {
		t.Fatalf("completion at %v, outside plausible range", doneAt)
	}
}

func TestResubmitFromCompletion(t *testing.T) {
	// A Done callback that submits another request must not deadlock or
	// lose the request.
	s := &fakeSched{}
	d := New(DefaultParams(), s, 1)
	completions := 0
	d.Submit(Request{Op: Read, Block: 0, Blocks: 1, Done: func(simtime.Time, error) {
		completions++
		d.Submit(Request{Op: Read, Block: 1000, Blocks: 1, Done: func(simtime.Time, error) {
			completions++
		}})
	}})
	s.run()
	if completions != 2 {
		t.Fatalf("completions = %d, want 2", completions)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() simtime.Time {
		s := &fakeSched{}
		d := New(DefaultParams(), s, 42)
		var last simtime.Time
		for i := 0; i < 20; i++ {
			d.Submit(Request{Op: Read, Block: int64(i*37) % 1_000_000 * 2, Blocks: 8,
				Done: func(now simtime.Time, _ error) { last = now }})
		}
		s.run()
		return last
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed produced different schedules: %v vs %v", a, b)
	}
}

func TestSubmitValidation(t *testing.T) {
	s := &fakeSched{}
	d := New(DefaultParams(), s, 1)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s should panic", name)
			}
		}()
		fn()
	}
	mustPanic("nil done", func() { d.Submit(Request{Block: 0, Blocks: 1}) })
	mustPanic("zero blocks", func() {
		d.Submit(Request{Block: 0, Blocks: 0, Done: func(simtime.Time, error) {}})
	})
	mustPanic("past end", func() {
		d.Submit(Request{Block: d.Params().Blocks, Blocks: 1, Done: func(simtime.Time, error) {}})
	})
}

// Property: every submitted request completes exactly once, in FIFO
// order, with strictly increasing completion times.
func TestDiskFIFOProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		s := &fakeSched{}
		d := New(DefaultParams(), s, seed)
		r := rngNew(seed)
		var order []int
		var times []simtime.Time
		for i := 0; i < n; i++ {
			i := i
			block := int64(r.Intn(1_900_000))
			d.Submit(Request{Op: Read, Block: block, Blocks: int64(r.Intn(16)) + 1,
				Done: func(now simtime.Time, _ error) {
					order = append(order, i)
					times = append(times, now)
				}})
		}
		s.run()
		if len(order) != n || d.Served() != int64(n) {
			return false
		}
		for i := range order {
			if order[i] != i {
				return false
			}
			if i > 0 && times[i] <= times[i-1] {
				return false
			}
		}
		return true
	}
	if err := quickCheck(f, 50); err != nil {
		t.Fatal(err)
	}
}

// scriptedFaults fails the first failN attempts of every request and
// optionally degrades service / stalls the device.
type scriptedFaults struct {
	failN  int
	factor float64
	stall  simtime.Time
}

func (f *scriptedFaults) ServiceFactor(simtime.Time) float64 {
	if f.factor > 0 {
		return f.factor
	}
	return 1
}
func (f *scriptedFaults) StallUntil(simtime.Time) simtime.Time { return f.stall }
func (f *scriptedFaults) AttemptFails(_ Op, _ int64, _ simtime.Time, attempt int) bool {
	return attempt < f.failN
}

func TestRetriedRequestCompletesExactlyOnce(t *testing.T) {
	s := &fakeSched{}
	d := New(DefaultParams(), s, 7)
	d.SetFaults(&scriptedFaults{failN: 2})
	completions := 0
	var gotErr error
	var cleanDone, faultyDone simtime.Time
	d.Submit(Request{Op: Read, Block: 400_000, Blocks: 8, Done: func(now simtime.Time, err error) {
		completions++
		gotErr = err
		faultyDone = now
	}})
	s.run()
	if completions != 1 {
		t.Fatalf("completions = %d, want exactly 1", completions)
	}
	if gotErr != nil {
		t.Fatalf("retried request should succeed, got %v", gotErr)
	}
	if d.Retries() != 2 {
		t.Fatalf("retries = %d, want 2", d.Retries())
	}
	if d.MediaErrors() != 0 || d.Served() != 1 {
		t.Fatalf("mediaErrs=%d served=%d, want 0/1", d.MediaErrors(), d.Served())
	}

	// A clean run of the same request finishes earlier: retries cost time.
	s2 := &fakeSched{}
	d2 := New(DefaultParams(), s2, 7)
	d2.Submit(Request{Op: Read, Block: 400_000, Blocks: 8, Done: func(now simtime.Time, _ error) {
		cleanDone = now
	}})
	s2.run()
	if faultyDone <= cleanDone {
		t.Fatalf("faulty completion %v should be later than clean %v", faultyDone, cleanDone)
	}
}

func TestExhaustedRetriesSurfaceMediaError(t *testing.T) {
	s := &fakeSched{}
	p := DefaultParams()
	p.MaxRetries = 3
	d := New(p, s, 7)
	d.SetFaults(&scriptedFaults{failN: 100}) // never succeeds
	completions := 0
	var gotErr error
	d.Submit(Request{Op: Write, Block: 1234, Blocks: 4, Done: func(_ simtime.Time, err error) {
		completions++
		gotErr = err
	}})
	// A second, healthy-looking request behind it must still be serviced.
	var second bool
	d.Submit(Request{Op: Read, Block: 9999, Blocks: 1, Done: func(simtime.Time, error) { second = true }})
	s.run()
	if completions != 1 {
		t.Fatalf("completions = %d, want exactly 1", completions)
	}
	me, ok := gotErr.(*MediaError)
	if !ok {
		t.Fatalf("err = %v, want *MediaError", gotErr)
	}
	if me.Attempts != p.MaxRetries+1 || me.Op != Write || me.Block != 1234 {
		t.Fatalf("MediaError = %+v, want {Write 1234 %d}", me, p.MaxRetries+1)
	}
	// Both requests ran under the always-fail model: each burned the full
	// retry budget and surfaced an error, and crucially the second was
	// still serviced after the first gave up.
	if d.MediaErrors() != 2 || d.Retries() != int64(2*p.MaxRetries) {
		t.Fatalf("mediaErrs=%d retries=%d, want 2/%d", d.MediaErrors(), d.Retries(), 2*p.MaxRetries)
	}
	if !second {
		t.Fatalf("request queued behind a failing one never completed")
	}
	if me.Error() == "" {
		t.Fatalf("MediaError.Error empty")
	}
}

func TestFaultModelStallAndDegradeLengthenService(t *testing.T) {
	run := func(fm FaultModel) simtime.Time {
		s := &fakeSched{}
		d := New(DefaultParams(), s, 11)
		var done simtime.Time
		d.Submit(Request{Op: Read, Block: 250_000, Blocks: 8, Done: func(now simtime.Time, _ error) { done = now }})
		s.run()
		return done
	}
	clean := run(nil)
	stalled := func() simtime.Time {
		s := &fakeSched{}
		d := New(DefaultParams(), s, 11)
		d.SetFaults(&scriptedFaults{stall: simtime.Time(simtime.FromMillis(50))})
		var done simtime.Time
		d.Submit(Request{Op: Read, Block: 250_000, Blocks: 8, Done: func(now simtime.Time, _ error) { done = now }})
		s.run()
		return done
	}()
	degraded := func() simtime.Time {
		s := &fakeSched{}
		d := New(DefaultParams(), s, 11)
		d.SetFaults(&scriptedFaults{factor: 4})
		var done simtime.Time
		d.Submit(Request{Op: Read, Block: 250_000, Blocks: 8, Done: func(now simtime.Time, _ error) { done = now }})
		s.run()
		return done
	}()
	if stalled < clean.Add(simtime.FromMillis(50)) {
		t.Fatalf("stalled completion %v not delayed past %v+50ms", stalled, clean)
	}
	if degraded <= clean {
		t.Fatalf("degraded completion %v not later than clean %v", degraded, clean)
	}
}
