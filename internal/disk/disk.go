// Package disk models the experimental machine's SCSI disk (paper §2.1:
// a dedicated 1 GB Fujitsu M1606SAU behind an NCR825 host adapter).
//
// The model is positional: a request's service time is seek (proportional
// to cylinder distance, with a settle floor) + rotational latency
// (deterministic pseudo-random phase) + transfer. Requests are serviced
// one at a time from a FIFO queue, and completion is reported through a
// callback that the kernel turns into a completion interrupt. Disk time
// is where the paper's multi-second PowerPoint latencies (Table 1) come
// from, so the constants are calibrated to a mid-90s 5400 RPM drive.
package disk

import (
	"fmt"

	"latlab/internal/machine"
	"latlab/internal/rng"
	"latlab/internal/simtime"
	"latlab/internal/spans"
)

// Scheduler is the slice of the simulator the disk needs: the current
// time and the ability to run a callback after a delay. The kernel
// implements it.
type Scheduler interface {
	Now() simtime.Time
	After(d simtime.Duration, fn func(now simtime.Time))
}

// Params describes drive geometry and speed.
type Params struct {
	// Blocks is the drive capacity in 512-byte blocks.
	Blocks int64
	// BlocksPerCylinder converts block distance to seek distance.
	BlocksPerCylinder int64
	// SeekSettle is the minimum cost of any seek.
	SeekSettle simtime.Duration
	// SeekPerCylinder is the incremental cost per cylinder crossed.
	SeekPerCylinder simtime.Duration
	// MaxSeek caps the seek cost (full-stroke seek).
	MaxSeek simtime.Duration
	// Rotation is the time of one revolution; average rotational delay
	// is half of it.
	Rotation simtime.Duration
	// TransferPerBlock is the media transfer time per 512-byte block.
	TransferPerBlock simtime.Duration
	// ControllerOverhead is the fixed per-request command cost.
	ControllerOverhead simtime.Duration
	// MaxRetries is how many times the driver re-attempts a transfer
	// that fails with a transient media error before reporting the error
	// to the caller. Only consulted when a fault model is installed.
	MaxRetries int
	// RetryBackoff is the delay before the first re-attempt; each
	// further attempt doubles it (exponential backoff), modelling the
	// recalibrate-and-retry loops behind the paper's multi-second
	// PowerPoint disk stalls (Table 1).
	RetryBackoff simtime.Duration
}

// DefaultParams approximates the Fujitsu M1606SAU: ~1 GB, 5400 RPM
// (11.1 ms/rev), ~10 ms average seek, ~5 MB/s media rate. It equals
// ParamsFor(machine.Pentium100()).
func DefaultParams() Params {
	return ParamsFor(machine.Pentium100())
}

// ParamsFor derives drive parameters from a hardware profile: the
// geometry comes from the profile, the driver retry policy (which is
// software, not geometry) keeps its defaults.
func ParamsFor(prof machine.Profile) Params {
	g := prof.OrDefault().Disk
	return Params{
		Blocks:             g.Blocks,
		BlocksPerCylinder:  g.BlocksPerCylinder,
		SeekSettle:         g.SeekSettle,
		SeekPerCylinder:    g.SeekPerCylinder,
		MaxSeek:            g.MaxSeek,
		Rotation:           g.Rotation,
		TransferPerBlock:   g.TransferPerBlock,
		ControllerOverhead: g.ControllerOverhead,
		MaxRetries:         4,
		RetryBackoff:       simtime.FromMillis(3),
	}
}

// Op distinguishes reads from writes. The service-time model treats them
// identically; the distinction feeds traces and counters.
type Op uint8

// Operations.
const (
	Read Op = iota
	Write
)

// Request is one disk operation. Done is invoked exactly once, at
// completion time, from simulator context. err is nil on success; a
// request whose every attempt failed under an installed fault model
// completes with a *MediaError instead of panicking — device trouble is
// an outcome, not a simulator bug.
type Request struct {
	Op     Op
	Block  int64
	Blocks int64
	Done   func(now simtime.Time, err error)
}

// MediaError reports a transfer whose attempts were all rejected by the
// media. It is the error surfaced through Request.Done after the driver
// exhausts its retry budget.
type MediaError struct {
	Op       Op
	Block    int64
	Attempts int
}

// Error implements error.
func (e *MediaError) Error() string {
	op := "read"
	if e.Op == Write {
		op = "write"
	}
	return fmt.Sprintf("disk: unrecoverable media error (%s block %d after %d attempts)", op, e.Block, e.Attempts)
}

// FaultModel is the disk's view of the fault-injection layer
// (internal/faults). All methods are consulted from simulator context;
// implementations must be deterministic for a given seed. A nil model
// (the default) keeps the drive on the exact pre-fault code path.
type FaultModel interface {
	// ServiceFactor returns the degraded service-time multiplier in
	// effect at t; 1 means nominal.
	ServiceFactor(t simtime.Time) float64
	// StallUntil returns the instant before which the device cannot
	// start a transfer at t (a frozen/recalibrating drive); returns a
	// time <= t when the device is not stalled.
	StallUntil(t simtime.Time) simtime.Time
	// AttemptFails reports whether the media attempt finishing at t
	// fails with a transient error (the driver then backs off and
	// retries).
	AttemptFails(op Op, block int64, t simtime.Time, attempt int) bool
}

// Disk is the drive model. Not safe for concurrent use.
type Disk struct {
	params Params
	sched  Scheduler
	rand   *rng.Source

	head    int64 // current block position
	busy    bool
	queue   []Request
	served  int64
	busyFor simtime.Duration

	fm        FaultModel
	retries   int64
	mediaErrs int64

	rec *spans.Recorder
}

// SetRecorder attaches a span recorder; nil restores the untraced path.
// Recording never perturbs the schedule: the same random draws happen in
// the same order with or without it.
func (d *Disk) SetRecorder(rec *spans.Recorder) { d.rec = rec }

// New creates a disk with the given parameters, driven by sched. The seed
// fixes the rotational-phase sequence so runs are reproducible.
func New(params Params, sched Scheduler, seed uint64) *Disk {
	return &Disk{params: params, sched: sched, rand: rng.New(seed)}
}

// Params returns the drive parameters.
func (d *Disk) Params() Params { return d.params }

// QueueLen returns the number of requests waiting (excluding the one in
// service).
func (d *Disk) QueueLen() int { return len(d.queue) }

// Busy reports whether a request is in service.
func (d *Disk) Busy() bool { return d.busy }

// Served returns the number of completed requests.
func (d *Disk) Served() int64 { return d.served }

// BusyTime returns cumulative service time.
func (d *Disk) BusyTime() simtime.Duration { return d.busyFor }

// SetFaults installs (or, with nil, removes) the fault model. With no
// model the drive runs the exact fault-free code path: no extra random
// draws, no retry bookkeeping, byte-identical schedules.
func (d *Disk) SetFaults(fm FaultModel) { d.fm = fm }

// Retries returns the number of re-attempted transfers.
func (d *Disk) Retries() int64 { return d.retries }

// MediaErrors returns the number of requests completed with an error
// after the retry budget was exhausted.
func (d *Disk) MediaErrors() int64 { return d.mediaErrs }

// ServiceTime computes the time to service a request from the current
// head position, without side effects on queue state. Exposed for tests
// and capacity planning.
func (d *Disk) ServiceTime(r Request, rotFrac float64) simtime.Duration {
	ctrl, seek, rot, xfer := d.serviceParts(r, rotFrac)
	return ctrl + seek + rot + xfer
}

// serviceParts decomposes the service time of r into its mechanical
// components from the current head position. ServiceTime is their sum;
// the span layer records them individually.
func (d *Disk) serviceParts(r Request, rotFrac float64) (ctrl, seek, rot, xfer simtime.Duration) {
	dist := r.Block - d.head
	if dist < 0 {
		dist = -dist
	}
	cyl := dist / d.params.BlocksPerCylinder
	if cyl > 0 {
		seek = d.params.SeekSettle + simtime.Duration(cyl)*d.params.SeekPerCylinder
		if seek > d.params.MaxSeek {
			seek = d.params.MaxSeek
		}
	}
	rot = simtime.Duration(rotFrac * float64(d.params.Rotation))
	xfer = simtime.Duration(r.Blocks) * d.params.TransferPerBlock
	return d.params.ControllerOverhead, seek, rot, xfer
}

// opLabel returns the stable trace label of an operation.
func opLabel(op Op) string {
	if op == Write {
		return "disk write"
	}
	return "disk read"
}

// recordService emits the span decomposition of one media attempt that
// starts at start, stalls for stall, and then services for svc. The
// parts are laid out sequentially (stall, controller, seek, rotation,
// transfer); any service time beyond the nominal mechanical sum is the
// degraded-mode surcharge from fault injection.
func (d *Disk) recordService(r Request, rotFrac float64, start simtime.Time, stall, svc simtime.Duration) {
	ctrl, seek, rot, xfer := d.serviceParts(r, rotFrac)
	label := opLabel(r.Op)
	io := d.rec.BeginAt(spans.CauseDiskIO, label, start)
	t := start
	part := func(c spans.Cause, dur simtime.Duration, count int64) {
		if dur == 0 && count == 0 {
			return
		}
		d.rec.ChargeSpan(c, label, t, t.Add(dur), 0, count)
		t = t.Add(dur)
	}
	part(spans.CauseDiskStall, stall, 0)
	part(spans.CauseDiskCtrl, ctrl, 0)
	part(spans.CauseDiskSeek, seek, 0)
	part(spans.CauseDiskRot, rot, 0)
	part(spans.CauseDiskXfer, xfer, r.Blocks)
	if extra := svc - (ctrl + seek + rot + xfer); extra > 0 {
		part(spans.CauseDiskDegraded, extra, 0)
	}
	d.rec.EndAt(io, t)
}

// Submit enqueues a request. It panics on malformed requests — a
// simulation that issues bad I/O is broken, not unlucky.
func (d *Disk) Submit(r Request) {
	if r.Done == nil {
		panic("disk: request without completion callback")
	}
	if r.Blocks <= 0 || r.Block < 0 || r.Block+r.Blocks > d.params.Blocks {
		panic("disk: request outside device")
	}
	d.queue = append(d.queue, r)
	if !d.busy {
		d.startNext()
	}
}

func (d *Disk) startNext() {
	if len(d.queue) == 0 {
		d.busy = false
		return
	}
	r := d.queue[0]
	d.queue = d.queue[1:]
	d.busy = true
	if d.fm != nil {
		d.startAttempt(r, 0)
		return
	}
	rotFrac := d.rand.Float64()
	svc := d.ServiceTime(r, rotFrac)
	if d.rec != nil {
		d.recordService(r, rotFrac, d.sched.Now(), 0, svc)
	}
	d.busyFor += svc
	d.head = r.Block + r.Blocks
	d.sched.After(svc, func(now simtime.Time) {
		d.served++
		// Start the next transfer before delivering the completion so a
		// Done callback that submits more I/O sees a consistent queue.
		d.startNext()
		r.Done(now, nil)
	})
}

// startAttempt services r under the installed fault model: the transfer
// may start late (device stall), run slow (degraded service factor), and
// fail at completion (transient media error), in which case the driver
// backs off exponentially and re-attempts up to MaxRetries times before
// surfacing a *MediaError. The head still moves — a failed transfer
// still sought and spun.
func (d *Disk) startAttempt(r Request, attempt int) {
	now := d.sched.Now()
	delay := simtime.Duration(0)
	if until := d.fm.StallUntil(now); until > now {
		delay = until.Sub(now)
	}
	rotFrac := d.rand.Float64()
	svc := d.ServiceTime(r, rotFrac)
	if f := d.fm.ServiceFactor(now.Add(delay)); f > 1 {
		svc = simtime.Duration(float64(svc) * f)
	}
	if d.rec != nil {
		d.recordService(r, rotFrac, now, delay, svc)
	}
	d.busyFor += svc
	d.head = r.Block + r.Blocks
	d.sched.After(delay+svc, func(now simtime.Time) {
		if d.fm != nil && d.fm.AttemptFails(r.Op, r.Block, now, attempt) {
			if attempt < d.params.MaxRetries {
				d.retries++
				backoff := d.params.RetryBackoff << uint(attempt)
				d.rec.ChargeSpan(spans.CauseDiskRetry, opLabel(r.Op), now, now.Add(backoff), 0, 1)
				d.sched.After(backoff, func(simtime.Time) {
					d.startAttempt(r, attempt+1)
				})
				return
			}
			d.mediaErrs++
			d.served++
			d.startNext()
			r.Done(now, &MediaError{Op: r.Op, Block: r.Block, Attempts: attempt + 1})
			return
		}
		d.served++
		d.startNext()
		r.Done(now, nil)
	})
}
