package disk

import (
	"testing"

	"latlab/internal/simtime"
	"latlab/internal/spans"
)

// TestRecorderDecomposesService checks that a traced clean transfer
// emits one disk-io container whose leaf parts sum exactly to the
// service time the drive charged.
func TestRecorderDecomposesService(t *testing.T) {
	s := &fakeSched{}
	d := New(DefaultParams(), s, 1)
	rec := spans.NewRecorder(s.Now)
	d.SetRecorder(rec)
	d.Submit(Request{Op: Write, Block: 400_000, Blocks: 8, Done: func(simtime.Time, error) {}})
	s.run()

	var containers int
	for _, sp := range rec.Spans() {
		switch sp.Cause {
		case spans.CauseDiskIO:
			containers++
			if sp.Label != "disk write" {
				t.Errorf("container label = %q, want disk write", sp.Label)
			}
			if sp.Duration() != d.BusyTime() {
				t.Errorf("container duration = %v, want service time %v", sp.Duration(), d.BusyTime())
			}
		case spans.CauseDiskStall, spans.CauseDiskDegraded, spans.CauseDiskRetry:
			t.Errorf("clean transfer emitted fault span %v", sp.Cause)
		}
	}
	if containers != 1 {
		t.Fatalf("disk-io containers = %d, want 1", containers)
	}
	a := spans.Attribution(rec.Spans())
	parts := a.Dur[spans.CauseDiskCtrl] + a.Dur[spans.CauseDiskSeek] +
		a.Dur[spans.CauseDiskRot] + a.Dur[spans.CauseDiskXfer]
	if parts != d.BusyTime() {
		t.Fatalf("leaf parts sum to %v, want %v", parts, d.BusyTime())
	}
	if a.Count[spans.CauseDiskXfer] != 8 {
		t.Fatalf("xfer count = %d, want 8 blocks", a.Count[spans.CauseDiskXfer])
	}
}

// TestRecorderCoversFaultPath checks the stall / degraded / retry spans
// of a faulted transfer: two attempts, each with its stall and
// degraded-surcharge parts, joined by one retry backoff.
func TestRecorderCoversFaultPath(t *testing.T) {
	s := &fakeSched{}
	d := New(DefaultParams(), s, 7)
	d.SetFaults(&scriptedFaults{failN: 1, factor: 2, stall: simtime.Time(simtime.Millisecond)})
	rec := spans.NewRecorder(s.Now)
	d.SetRecorder(rec)
	d.Submit(Request{Op: Read, Block: 123_456, Blocks: 4, Done: func(simtime.Time, error) {}})
	s.run()

	var containers int
	for _, sp := range rec.Spans() {
		if sp.Cause == spans.CauseDiskIO {
			containers++
			if sp.Label != "disk read" {
				t.Errorf("container label = %q, want disk read", sp.Label)
			}
		}
	}
	if containers != 2 {
		t.Fatalf("disk-io containers = %d, want one per attempt (2)", containers)
	}
	a := spans.Attribution(rec.Spans())
	// Only the first attempt starts inside the stall window (StallUntil
	// is an absolute instant); the retry begins after it has passed.
	if a.Dur[spans.CauseDiskStall] != simtime.Millisecond {
		t.Errorf("stall = %v, want the first attempt's 1ms", a.Dur[spans.CauseDiskStall])
	}
	if a.Dur[spans.CauseDiskDegraded] <= 0 {
		t.Errorf("degraded surcharge not recorded under service factor 2")
	}
	if a.Count[spans.CauseDiskRetry] != 1 || a.Dur[spans.CauseDiskRetry] != d.Params().RetryBackoff {
		t.Errorf("retry = %d × %v, want 1 × %v backoff",
			a.Count[spans.CauseDiskRetry], a.Dur[spans.CauseDiskRetry], d.Params().RetryBackoff)
	}
	// The decomposition still covers exactly what the drive charged.
	mech := a.Dur[spans.CauseDiskCtrl] + a.Dur[spans.CauseDiskSeek] +
		a.Dur[spans.CauseDiskRot] + a.Dur[spans.CauseDiskXfer] + a.Dur[spans.CauseDiskDegraded]
	if mech != d.BusyTime() {
		t.Fatalf("service parts sum to %v, want busy time %v", mech, d.BusyTime())
	}
}

// TestRecorderDoesNotPerturbSchedule: completion times are identical
// with and without a recorder, on both the clean and the fault path.
func TestRecorderDoesNotPerturbSchedule(t *testing.T) {
	run := func(traced, faulty bool) simtime.Time {
		s := &fakeSched{}
		d := New(DefaultParams(), s, 42)
		if faulty {
			d.SetFaults(&scriptedFaults{failN: 1, factor: 1.5, stall: simtime.Time(simtime.Millisecond)})
		}
		if traced {
			d.SetRecorder(spans.NewRecorder(s.Now))
		}
		var done simtime.Time
		for i := 0; i < 3; i++ {
			d.Submit(Request{Op: Read, Block: int64(i) * 250_000, Blocks: 8,
				Done: func(now simtime.Time, _ error) { done = now }})
		}
		s.run()
		return done
	}
	for _, faulty := range []bool{false, true} {
		if on, off := run(true, faulty), run(false, faulty); on != off {
			t.Errorf("faulty=%v: traced completion %v != untraced %v", faulty, on, off)
		}
	}
	// SetRecorder(nil) restores the untraced path.
	s := &fakeSched{}
	d := New(DefaultParams(), s, 42)
	rec := spans.NewRecorder(s.Now)
	d.SetRecorder(rec)
	d.SetRecorder(nil)
	d.Submit(Request{Op: Read, Block: 0, Blocks: 1, Done: func(simtime.Time, error) {}})
	s.run()
	if rec.Len() != 0 {
		t.Fatalf("detached recorder still collected %d spans", rec.Len())
	}
}
