package persona

import (
	"testing"

	"latlab/internal/cpu"
)

func TestAllPersonas(t *testing.T) {
	ps := All()
	if len(ps) != 3 {
		t.Fatalf("want 3 personas")
	}
	wantShort := []string{"nt351", "nt40", "w95"}
	for i, p := range ps {
		if p.Short != wantShort[i] {
			t.Fatalf("persona %d short = %q, want %q", i, p.Short, wantShort[i])
		}
		if p.Name == "" {
			t.Fatalf("persona %q missing name", p.Short)
		}
		if p.PathScale <= 0 || p.DataWindowScale <= 0 {
			t.Fatalf("persona %q has non-positive scales", p.Short)
		}
		if p.QueueSyncCycles <= 0 {
			t.Fatalf("persona %q missing QueueSync cost", p.Short)
		}
		p.Kernel.ClockTick.Milliseconds()
	}
	if len(NTs()) != 2 {
		t.Fatalf("NTs should return both NT personas")
	}
}

func TestByShort(t *testing.T) {
	p, ok := ByShort("nt40")
	if !ok || p.Name != "Windows NT 4.0" {
		t.Fatalf("ByShort(nt40) = %+v, %v", p, ok)
	}
	if _, ok := ByShort("os2"); ok {
		t.Fatalf("unknown persona should not resolve")
	}
}

func TestArchitecturalDifferences(t *testing.T) {
	nt351, nt40, w95 := NT351(), NT40(), W95()

	if nt351.Arch != ServerProcess {
		t.Fatalf("NT 3.51 must use the user-level Win32 server")
	}
	if nt40.Arch != KernelMode {
		t.Fatalf("NT 4.0 must use in-kernel Win32")
	}
	if w95.Arch != Shared16Bit {
		t.Fatalf("Windows 95 must use shared 16-bit components")
	}

	// Only Windows 95 carries the 16-bit signature and the mouse
	// busy-wait; only it runs extra idle-time background work (Fig. 3).
	if nt351.SegLoadsPerKCycle != 0 || nt40.SegLoadsPerKCycle != 0 {
		t.Fatalf("NT personas must not inject segment loads")
	}
	if w95.SegLoadsPerKCycle <= 0 || w95.UnalignedPerKCycle <= 0 {
		t.Fatalf("Windows 95 must inject 16-bit costs")
	}
	if nt351.MouseBusyWait || nt40.MouseBusyWait || !w95.MouseBusyWait {
		t.Fatalf("mouse busy-wait is a Windows 95 behaviour")
	}
	if len(nt351.Background) != 0 || len(nt40.Background) != 0 || len(w95.Background) == 0 {
		t.Fatalf("background housekeeping is a Windows 95 behaviour")
	}
	if w95.DataWindowScale < 1.5 {
		t.Fatalf("Windows 95 data-window scale should reflect the +93%% TLB misses")
	}

	// Paper §2.5: NT 4.0 minimum clock-interrupt overhead ≈400 cycles;
	// the others are not lower.
	if nt40.Kernel.ClockInterrupt.BaseCycles != 400 {
		t.Fatalf("NT 4.0 clock handler = %d cycles, want 400", nt40.Kernel.ClockInterrupt.BaseCycles)
	}
	if nt351.Kernel.ClockInterrupt.BaseCycles < 400 || w95.Kernel.ClockInterrupt.BaseCycles < 400 {
		t.Fatalf("clock handler costs should be ≥ NT 4.0's")
	}

	// WM_QUEUESYNC is dearer under Windows 95 (Fig. 7 note).
	if w95.QueueSyncCycles <= nt40.QueueSyncCycles || w95.QueueSyncCycles <= nt351.QueueSyncCycles {
		t.Fatalf("Windows 95 QueueSync must cost the most")
	}

	// The crossing penalty is wired into the kernel config as the
	// persona-owned cost; hardware penalties come from the machine
	// profile, so the wholesale override stays zero.
	if nt351.Kernel.DomainCrossingCycles == 0 || nt40.Kernel.DomainCrossingCycles == 0 {
		t.Fatalf("domain-crossing cost not configured")
	}
	if nt351.Kernel.DomainCrossingCycles <= nt40.Kernel.DomainCrossingCycles {
		t.Fatalf("the server-process persona's crossing must cost more")
	}
	if nt351.Kernel.Penalties != (cpu.Penalties{}) {
		t.Fatalf("personas must not override the hardware cost model wholesale")
	}
	// Word-on-95 lingering prevents idleness (paper §5.4).
	if w95.WordLinger == 0 || nt40.WordLinger != 0 {
		t.Fatalf("WordLinger should be set only for Windows 95")
	}
}
