// Package persona defines the three simulated operating-system
// personalities the paper compares — Windows NT 3.51, Windows NT 4.0 and
// Windows 95 — as parameter sets over the same kernel and machine.
//
// The personas differ *mechanistically*, matching the architectural
// causes the paper identifies rather than asserting outcome numbers:
//
//   - NT 3.51 implements the Win32 API in a user-level server process, so
//     every GUI call crosses two protection domains, and each crossing
//     flushes the Pentium's TLBs (paper §5.3).
//   - NT 4.0 moved those components into the kernel: a cheap mode switch,
//     no address-space change, no TLB flush.
//   - Windows 95 runs large 16-bit components (USER/GDI): shared address
//     space, but segment-register loads, unaligned accesses, and wider
//     data working sets from thunking — and it busy-waits between
//     mouse-down and mouse-up (paper §4).
package persona

import (
	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/simtime"
)

// Arch is the Win32 implementation architecture.
type Arch uint8

// Win32 architectures.
const (
	// ServerProcess routes GUI calls through a user-level server in its
	// own address space (NT 3.51 / CSRSS).
	ServerProcess Arch = iota
	// KernelMode implements GUI calls in the kernel (NT 4.0).
	KernelMode
	// Shared16Bit implements GUI calls in shared-memory 16-bit code
	// (Windows 95).
	Shared16Bit
)

// Background describes a periodic OS housekeeping thread. The paper's
// Fig. 3 shows Windows 95 with more idle-time activity than the NTs.
type Background struct {
	Name   string
	Period simtime.Duration
	Burst  cpu.Segment
}

// P is a complete OS personality.
type P struct {
	// Name is the full name ("Windows NT 4.0"); Short a slug ("nt40").
	Name  string
	Short string
	// Arch selects the Win32 call path.
	Arch Arch
	// Kernel is the machine/OS mechanism configuration.
	Kernel kernel.Config
	// PathScale multiplies GUI code-path length relative to NT 4.0; the
	// paper concludes warm-cache differences "are a function of the code
	// path lengths" (§4).
	PathScale float64
	// SegLoadsPerKCycle and UnalignedPerKCycle inject the 16-bit code
	// signature, per 1000 base cycles of GUI work.
	SegLoadsPerKCycle  float64
	UnalignedPerKCycle float64
	// DataWindowScale widens GUI data working sets (Windows 95 touches
	// ~93% more TLB entries than NT 4.0 in the paper's Fig. 9).
	DataWindowScale float64
	// QueueSyncCycles is the cost of processing the WM_QUEUESYNC message
	// Microsoft Test posts after every input; longer under Windows 95
	// (paper Fig. 7 note).
	QueueSyncCycles int64
	// MouseBusyWait makes the system spin between mouse-down and
	// mouse-up (Windows 95, paper §4).
	MouseBusyWait bool
	// MousePoll is the busy-wait polling segment when MouseBusyWait.
	MousePoll cpu.Segment
	// WordLinger keeps the CPU busy after each Word event (the paper
	// could not report Word numbers for Windows 95 because the system
	// "does not become idle immediately", §5.4).
	WordLinger simtime.Duration
	// BinaryScale scales the page counts of application and OLE-server
	// images (each OS release linked different library sets); it drives
	// the cold-start gaps of Table 1.
	BinaryScale float64
	// SaveScale scales document-save I/O volume. NT 4.0 writes more
	// (safe-save temp copy plus shell metadata), which is how Table 1's
	// save is *slower* on NT 4.0 than NT 3.51.
	SaveScale float64
	// ServerCallScale multiplies the GUI call count of call-heavy
	// compound operations (OLE in-place activation): the user-level
	// server needs extra round trips for menu merging and window
	// re-parenting.
	ServerCallScale float64
	// BatchScale is the relative cost of a GUI call issued while more
	// user input is already queued: the window system coalesces
	// invalidations and batches requests (client-server batching, §1.1).
	// 0 means 1.0 (no batching). Realistic pacing leaves the queue empty
	// during handling, so only saturated input benefits — which is how an
	// "infinitely fast user" benchmark flatters throughput while latency
	// collapses.
	BatchScale float64
	// Background lists the persona's housekeeping threads.
	Background []Background
}

// kcfg builds a kernel.Config with per-persona interrupt and switch
// costs (cycle counts, so they scale with whatever clock the machine
// profile supplies at boot). The domain-crossing cost is the only
// penalty a persona owns; the hardware penalties (TLB refill, DRAM,
// 16-bit micro-costs) derive from the machine profile in kernel.New.
func kcfg(clock, kbd, mouse, diskIntr, ctxsw, modeSwitch, crossing int64) kernel.Config {
	cfg := kernel.DefaultConfig()
	cfg.ClockInterrupt = cpu.Segment{Name: "clock", BaseCycles: clock,
		Instructions: clock * 6 / 10, DataRefs: clock / 4, CodePages: []uint64{2}, DataPages: []uint64{3}}
	cfg.KeyboardInterrupt = cpu.Segment{Name: "kbdintr", BaseCycles: kbd,
		Instructions: kbd * 6 / 10, DataRefs: kbd / 4, CodePages: []uint64{4, 5}, DataPages: []uint64{6}}
	cfg.MouseInterrupt = cpu.Segment{Name: "mouseintr", BaseCycles: mouse,
		Instructions: mouse * 6 / 10, DataRefs: mouse / 4, CodePages: []uint64{7}, DataPages: []uint64{8}}
	cfg.DiskInterrupt = cpu.Segment{Name: "diskintr", BaseCycles: diskIntr,
		Instructions: diskIntr * 6 / 10, DataRefs: diskIntr / 4, CodePages: []uint64{9, 10}, DataPages: []uint64{11}}
	cfg.ContextSwitch = cpu.Segment{Name: "ctxsw", BaseCycles: ctxsw,
		Instructions: ctxsw * 6 / 10, DataRefs: ctxsw / 4, CodePages: []uint64{12}, DataPages: []uint64{13}}
	cfg.ModeSwitchCycles = modeSwitch
	cfg.DomainCrossingCycles = crossing
	return cfg
}

// NT351 returns the Windows NT 3.51 personality.
func NT351() P {
	return P{
		Name:  "Windows NT 3.51",
		Short: "nt351",
		Arch:  ServerProcess,
		// Clock-interrupt floor a bit above NT 4.0's ~400 cycles.
		Kernel: kcfg(450, 2800, 1400, 2600, 700, 150, 900),
		// §5.3 attributes most of the NT gap to the server architecture
		// (crossings and TLB refills), with only a modest path change.
		PathScale:       1.03,
		DataWindowScale: 1.0,
		QueueSyncCycles: 120_000, // ~1.2 ms
		BatchScale:      0.70,    // client-server batching is aggressive
		BinaryScale:     1.20,
		SaveScale:       1.0,
		// Extra server round trips would widen Table 1's OLE gaps, but
		// §5.3's attribution ("TLB misses account for at least 23-25% of
		// the latency difference") constrains the non-TLB share; the
		// reproduction keeps call counts equal and lets crossings+TLB
		// carry the difference.
		ServerCallScale: 1.0,
	}
}

// NT40 returns the Windows NT 4.0 personality.
func NT40() P {
	return P{
		Name:  "Windows NT 4.0",
		Short: "nt40",
		// Paper §2.5: smallest observed clock-interrupt overhead on
		// NT 4.0 was about 400 cycles.
		Kernel:          kcfg(400, 2500, 1200, 2400, 650, 150, 700),
		Arch:            KernelMode,
		PathScale:       1.0,
		DataWindowScale: 1.0,
		QueueSyncCycles: 100_000, // ~1 ms
		BatchScale:      0.75,
		BinaryScale:     1.0,
		SaveScale:       1.18,
		ServerCallScale: 1.0,
	}
}

// W95 returns the Windows 95 personality.
func W95() P {
	return P{
		Name:  "Windows 95",
		Short: "w95",
		Arch:  Shared16Bit,
		// 16-bit interrupt reflection makes low-level handling dearer.
		Kernel:             kcfg(650, 5200, 2800, 3200, 900, 300, 700),
		PathScale:          1.0,
		SegLoadsPerKCycle:  4,
		UnalignedPerKCycle: 6,
		DataWindowScale:    1.93,    // paper Fig. 9: 93% more TLB misses than NT 4.0
		QueueSyncCycles:    520_000, // ~5.2 ms; inflates elapsed time, Fig. 7
		BatchScale:         0.88,    // 16-bit GDI coalesces less
		MouseBusyWait:      true,
		MousePoll: cpu.Segment{Name: "mousepoll", BaseCycles: 4000,
			Instructions: 2600, DataRefs: 900, SegmentLoads: 40,
			CodePages: []uint64{20, 21}, DataPages: []uint64{22}},
		WordLinger:      2 * simtime.Second,
		BinaryScale:     1.10,
		SaveScale:       1.0,
		ServerCallScale: 1.0,
		Background: []Background{
			{
				Name:   "vmm-housekeeping",
				Period: 55 * simtime.Millisecond,
				Burst: cpu.Segment{Name: "vmm", BaseCycles: 28_000,
					Instructions: 17_000, DataRefs: 7_000, SegmentLoads: 300,
					CodePages: []uint64{24, 25}, DataPages: []uint64{26, 27}},
			},
			{
				Name:   "shell-poll",
				Period: 125 * simtime.Millisecond,
				Burst: cpu.Segment{Name: "shellpoll", BaseCycles: 15_000,
					Instructions: 9_000, DataRefs: 4_000, SegmentLoads: 150,
					CodePages: []uint64{28}, DataPages: []uint64{29}},
			},
		},
	}
}

// All returns the three personas in the paper's order.
func All() []P { return []P{NT351(), NT40(), W95()} }

// NTs returns only the two NT personas (several experiments exclude
// Windows 95, as the paper did).
func NTs() []P { return []P{NT351(), NT40()} }

// ByShort returns the persona with the given short name, or ok=false.
func ByShort(short string) (P, bool) {
	for _, p := range All() {
		if p.Short == short {
			return p, true
		}
	}
	return P{}, false
}
