package mem

import (
	"testing"
	"testing/quick"
)

func TestLRUBasic(t *testing.T) {
	l := NewLRU(2)
	if l.Touch(1) {
		t.Fatalf("first touch should miss")
	}
	if !l.Touch(1) {
		t.Fatalf("second touch should hit")
	}
	l.Touch(2)
	if l.Len() != 2 || l.Cap() != 2 {
		t.Fatalf("len/cap = %d/%d", l.Len(), l.Cap())
	}
	// 1 is LRU? No: touch order was 1,1,2 → 1 is LRU... wait, 1 was
	// touched twice then 2; LRU is 1. Touch 3 evicts 1.
	l.Touch(3)
	if l.Contains(1) {
		t.Fatalf("1 should have been evicted")
	}
	if !l.Contains(2) || !l.Contains(3) {
		t.Fatalf("2 and 3 should be resident")
	}
}

func TestLRURecencyUpdate(t *testing.T) {
	l := NewLRU(2)
	l.Touch(1)
	l.Touch(2)
	l.Touch(1) // 2 becomes LRU
	l.Touch(3) // evicts 2
	if l.Contains(2) {
		t.Fatalf("2 should have been evicted after recency update")
	}
	if !l.Contains(1) || !l.Contains(3) {
		t.Fatalf("1 and 3 should be resident")
	}
}

func TestLRUFlush(t *testing.T) {
	l := NewLRU(4)
	for i := uint64(0); i < 4; i++ {
		l.Touch(i)
	}
	l.Flush()
	if l.Len() != 0 {
		t.Fatalf("flush should empty the set")
	}
	if l.Touch(0) {
		t.Fatalf("post-flush touch should miss")
	}
}

func TestLRUInsert(t *testing.T) {
	l := NewLRU(2)
	l.Insert(5)
	if !l.Contains(5) {
		t.Fatalf("Insert should make id resident")
	}
}

func TestLRUCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic")
		}
	}()
	NewLRU(0)
}

// Property: Len never exceeds Cap, and a working set within capacity hits
// on every touch after the first pass.
func TestLRUProperties(t *testing.T) {
	f := func(ids []uint64, capRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		l := NewLRU(capacity)
		for _, id := range ids {
			l.Touch(id)
			if l.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLRUWorkingSetWithinCapacityAlwaysHits(t *testing.T) {
	l := NewLRU(8)
	ws := []uint64{10, 20, 30, 40}
	touchAll(l, ws) // cold pass
	for pass := 0; pass < 5; pass++ {
		if misses := touchAll(l, ws); misses != 0 {
			t.Fatalf("pass %d: %d misses for resident working set", pass, misses)
		}
	}
}

func TestLRUWorkingSetLargerThanCapacityAlwaysMisses(t *testing.T) {
	// Sequential scan of cap+1 items through an LRU misses every time.
	l := NewLRU(3)
	ws := []uint64{1, 2, 3, 4}
	touchAll(l, ws)
	for pass := 0; pass < 3; pass++ {
		if misses := touchAll(l, ws); misses != len(ws) {
			t.Fatalf("pass %d: %d misses, want %d (LRU thrash)", pass, misses, len(ws))
		}
	}
}

func TestSystem(t *testing.T) {
	s := NewSystem(DefaultConfig())
	if s.ITLB.Cap() != 32 || s.DTLB.Cap() != 64 || s.Cache.Cap() != 8192 {
		t.Fatalf("default capacities wrong")
	}
	code := []uint64{1, 2, 3}
	data := []uint64{100, 101}
	if got := s.TouchCode(code); got != 3 {
		t.Fatalf("cold code misses = %d, want 3", got)
	}
	if got := s.TouchData(data); got != 2 {
		t.Fatalf("cold data misses = %d, want 2", got)
	}
	if got := s.TouchCode(code); got != 0 {
		t.Fatalf("warm code misses = %d, want 0", got)
	}
	// A domain crossing flushes both TLBs but not the cache.
	chunks := []uint64{7, 8}
	s.TouchCache(chunks)
	s.FlushTLBs()
	if got := s.TouchCode(code); got != 3 {
		t.Fatalf("post-flush code misses = %d, want 3", got)
	}
	if got := s.TouchData(data); got != 2 {
		t.Fatalf("post-flush data misses = %d, want 2", got)
	}
	if got := s.TouchCache(chunks); got != 0 {
		t.Fatalf("cache should survive TLB flush, got %d misses", got)
	}
}

func BenchmarkLRUTouch(b *testing.B) {
	// 8192-line cache (the paper's 256 KB L2) under a working set a bit
	// larger than capacity: every miss exercises the evict/recycle path.
	l := NewLRU(8192)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Touch(uint64(i % 10000))
	}
}

func BenchmarkLRUFlush(b *testing.B) {
	l := NewLRU(64)
	for i := uint64(0); i < 64; i++ {
		l.Touch(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Touch(uint64(i & 63))
		if i&63 == 63 {
			l.Flush()
		}
	}
}

func TestTaggedTLBSurvivesFlush(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TaggedTLB = true
	s := NewSystem(cfg)
	if !s.Tagged() {
		t.Fatalf("Tagged() should report the config")
	}
	code := []uint64{1, 2, 3}
	data := []uint64{100, 101}
	s.TouchCode(code)
	s.TouchData(data)
	s.FlushTLBs() // no-op on a tagged machine
	if got := s.TouchCode(code); got != 0 {
		t.Fatalf("tagged ITLB lost entries across flush: %d misses", got)
	}
	if got := s.TouchData(data); got != 0 {
		t.Fatalf("tagged DTLB lost entries across flush: %d misses", got)
	}
}

func TestNoL2EveryCacheReferenceMisses(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheLines = 0
	s := NewSystem(cfg)
	if s.Cache != nil {
		t.Fatalf("CacheLines=0 should build no cache")
	}
	chunks := []uint64{7, 8, 9}
	if got := s.TouchCache(chunks); got != 3 {
		t.Fatalf("no-L2 misses = %d, want all %d", got, len(chunks))
	}
	if got := s.TouchCache(chunks); got != 3 {
		t.Fatalf("no-L2 machine must never warm up, got %d misses", got)
	}
	// The TLBs still work without an L2.
	s.TouchCode([]uint64{1})
	if got := s.TouchCode([]uint64{1}); got != 0 {
		t.Fatalf("TLBs should still warm up on a no-L2 machine")
	}
}
