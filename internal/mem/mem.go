// Package mem models the memory-system state that the paper's analysis
// attributes latency differences to: TLBs that are flushed on every
// protection-domain crossing (Pentium has no tagged TLB, [5] in the
// paper), and a cache whose warmth distinguishes first-run from
// steady-state behaviour.
//
// The model is deliberately coarse — LRU sets of page and line
// identifiers — because the methodology only needs miss *counts* that
// respond correctly to working-set size, reuse, and flushes.
package mem

import (
	"latlab/internal/machine"
	"latlab/internal/spans"
)

// LRU is a fixed-capacity LRU set of 64-bit identifiers. Touch reports
// hit or miss and makes the identifier most-recently-used, evicting the
// least-recently-used entry on overflow. The zero value is unusable; use
// NewLRU.
//
// The recency list is intrusive over a fixed node slab allocated once at
// construction: a miss recycles a slot (from the free list, or by
// evicting the LRU entry) instead of allocating, and a flush clears the
// index map in place instead of replacing it. TLBs are flushed on every
// protection-domain crossing, so both paths are hot.
type LRU struct {
	cap   int
	index map[uint64]int32
	nodes []node // fixed slab of cap slots
	free  []int32
	head  int32 // most recently used, -1 when empty
	tail  int32 // least recently used, -1 when empty
}

// node is one slab slot of the intrusive recency list; prev/next are
// slot indices, -1 for none.
type node struct {
	id         uint64
	prev, next int32
}

const noSlot int32 = -1

// NewLRU returns an LRU set with the given capacity.
func NewLRU(capacity int) *LRU {
	if capacity <= 0 {
		panic("mem: non-positive LRU capacity")
	}
	l := &LRU{
		cap:   capacity,
		index: make(map[uint64]int32, capacity),
		nodes: make([]node, capacity),
		free:  make([]int32, capacity),
		head:  noSlot,
		tail:  noSlot,
	}
	l.resetFree()
	return l
}

// resetFree refills the free list with every slot.
func (l *LRU) resetFree() {
	l.free = l.free[:0]
	for i := l.cap - 1; i >= 0; i-- {
		l.free = append(l.free, int32(i))
	}
}

// Cap returns the capacity.
func (l *LRU) Cap() int { return l.cap }

// Len returns the number of resident identifiers.
func (l *LRU) Len() int { return len(l.index) }

// Contains reports residency without updating recency.
func (l *LRU) Contains(id uint64) bool {
	_, ok := l.index[id]
	return ok
}

// Touch references id, returning true on a hit. On a miss the id is
// inserted, evicting the LRU entry if the set is full.
func (l *LRU) Touch(id uint64) bool {
	if n, ok := l.index[id]; ok {
		l.moveToFront(n)
		return true
	}
	var slot int32
	if n := len(l.free); n > 0 {
		slot = l.free[n-1]
		l.free = l.free[:n-1]
	} else {
		slot = l.evict()
	}
	l.nodes[slot].id = id
	l.index[id] = slot
	l.pushFront(slot)
	return false
}

// Insert makes id resident without reporting hit/miss (prefetch).
func (l *LRU) Insert(id uint64) { l.Touch(id) }

// Flush empties the set (a TLB flush on protection-domain crossing).
func (l *LRU) Flush() {
	clear(l.index)
	l.head, l.tail = noSlot, noSlot
	l.resetFree()
}

func (l *LRU) pushFront(n int32) {
	l.nodes[n].prev = noSlot
	l.nodes[n].next = l.head
	if l.head != noSlot {
		l.nodes[l.head].prev = n
	}
	l.head = n
	if l.tail == noSlot {
		l.tail = n
	}
}

func (l *LRU) unlink(n int32) {
	prev, next := l.nodes[n].prev, l.nodes[n].next
	if prev != noSlot {
		l.nodes[prev].next = next
	} else {
		l.head = next
	}
	if next != noSlot {
		l.nodes[next].prev = prev
	} else {
		l.tail = prev
	}
	l.nodes[n].prev, l.nodes[n].next = noSlot, noSlot
}

func (l *LRU) moveToFront(n int32) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}

// evict removes the LRU entry and returns its freed slot.
func (l *LRU) evict() int32 {
	victim := l.tail
	l.unlink(victim)
	delete(l.index, l.nodes[victim].id)
	return victim
}

// EvictOldest discards up to n least-recently-used entries, returning
// how many were removed. Freed slots rejoin the free list.
func (l *LRU) EvictOldest(n int) int {
	evicted := 0
	for evicted < n && l.tail != noSlot {
		l.free = append(l.free, l.evict())
		evicted++
	}
	return evicted
}

// System bundles the memory structures of the simulated machine. The
// capacities default to the paper's Pentium: 32-entry instruction TLB,
// 64-entry data TLB, and a 256 KB L2 modelled as 8192 32-byte lines
// (identified at a coarser "chunk" granularity by callers). Cache is
// nil on a machine with no L2 — every cache reference then misses.
type System struct {
	ITLB  *LRU
	DTLB  *LRU
	Cache *LRU

	tagged bool
	rec    *spans.Recorder
}

// SetRecorder attaches a span recorder; nil restores the untraced path.
func (s *System) SetRecorder(rec *spans.Recorder) { s.rec = rec }

// Config sets the capacities of a System. CacheLines <= 0 means no L2:
// the System is built without a cache and every chunk reference pays
// the miss penalty. TaggedTLB makes FlushTLBs a no-op — entries carry
// an address-space tag, so they survive protection-domain crossings.
type Config struct {
	ITLBEntries int
	DTLBEntries int
	CacheLines  int
	TaggedTLB   bool
}

// DefaultConfig matches the experimental machine in paper §2.1.
func DefaultConfig() Config {
	return Config{ITLBEntries: 32, DTLBEntries: 64, CacheLines: 8192}
}

// ConfigFor derives the memory-system capacities from a hardware
// profile. ConfigFor(machine.Pentium100()) equals DefaultConfig.
func ConfigFor(p machine.Profile) Config {
	p = p.OrDefault()
	return Config{
		ITLBEntries: p.ITLBEntries,
		DTLBEntries: p.DTLBEntries,
		CacheLines:  p.CacheLines(),
		TaggedTLB:   p.TaggedTLB,
	}
}

// NewSystem builds a System from cfg.
func NewSystem(cfg Config) *System {
	s := &System{
		ITLB:   NewLRU(cfg.ITLBEntries),
		DTLB:   NewLRU(cfg.DTLBEntries),
		tagged: cfg.TaggedTLB,
	}
	if cfg.CacheLines > 0 {
		s.Cache = NewLRU(cfg.CacheLines)
	}
	return s
}

// Tagged reports whether the TLBs are address-space tagged.
func (s *System) Tagged() bool { return s.tagged }

// FlushTLBs empties both TLBs, as the Pentium does on every protection-
// domain crossing (paper §5.3). The cache survives. On a tagged-TLB
// machine this is a no-op: entries are qualified by address-space tag
// instead of being discarded (page identifiers are globally unique in
// this simulator, so surviving entries never alias across processes).
func (s *System) FlushTLBs() {
	if s.tagged {
		return
	}
	if s.rec != nil {
		// Count records the mappings discarded — the future TLB misses
		// this flush manufactures.
		s.rec.Charge(spans.CauseTLBFlush, "flush", 0, int64(s.ITLB.Len()+s.DTLB.Len()))
	}
	s.ITLB.Flush()
	s.DTLB.Flush()
}

// TouchCode references a set of code pages, returning the miss count.
func (s *System) TouchCode(pages []uint64) int {
	return touchAll(s.ITLB, pages)
}

// TouchData references a set of data pages, returning the miss count.
func (s *System) TouchData(pages []uint64) int {
	return touchAll(s.DTLB, pages)
}

// TouchCache references a set of cache chunks, returning the miss
// count. With no L2 every reference misses.
func (s *System) TouchCache(chunks []uint64) int {
	if s.Cache == nil {
		return len(chunks)
	}
	return touchAll(s.Cache, chunks)
}

func touchAll(l *LRU, ids []uint64) int {
	misses := 0
	for _, id := range ids {
		if !l.Touch(id) {
			misses++
		}
	}
	return misses
}
