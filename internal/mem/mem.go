// Package mem models the memory-system state that the paper's analysis
// attributes latency differences to: TLBs that are flushed on every
// protection-domain crossing (Pentium has no tagged TLB, [5] in the
// paper), and a cache whose warmth distinguishes first-run from
// steady-state behaviour.
//
// The model is deliberately coarse — LRU sets of page and line
// identifiers — because the methodology only needs miss *counts* that
// respond correctly to working-set size, reuse, and flushes.
package mem

// LRU is a fixed-capacity LRU set of 64-bit identifiers. Touch reports
// hit or miss and makes the identifier most-recently-used, evicting the
// least-recently-used entry on overflow. The zero value is unusable; use
// NewLRU.
type LRU struct {
	cap   int
	slots map[uint64]*node
	head  *node // most recently used
	tail  *node // least recently used
}

type node struct {
	id         uint64
	prev, next *node
}

// NewLRU returns an LRU set with the given capacity.
func NewLRU(capacity int) *LRU {
	if capacity <= 0 {
		panic("mem: non-positive LRU capacity")
	}
	return &LRU{cap: capacity, slots: make(map[uint64]*node, capacity)}
}

// Cap returns the capacity.
func (l *LRU) Cap() int { return l.cap }

// Len returns the number of resident identifiers.
func (l *LRU) Len() int { return len(l.slots) }

// Contains reports residency without updating recency.
func (l *LRU) Contains(id uint64) bool {
	_, ok := l.slots[id]
	return ok
}

// Touch references id, returning true on a hit. On a miss the id is
// inserted, evicting the LRU entry if the set is full.
func (l *LRU) Touch(id uint64) bool {
	if n, ok := l.slots[id]; ok {
		l.moveToFront(n)
		return true
	}
	n := &node{id: id}
	l.slots[id] = n
	l.pushFront(n)
	if len(l.slots) > l.cap {
		l.evict()
	}
	return false
}

// Insert makes id resident without reporting hit/miss (prefetch).
func (l *LRU) Insert(id uint64) { l.Touch(id) }

// Flush empties the set (a TLB flush on protection-domain crossing).
func (l *LRU) Flush() {
	l.slots = make(map[uint64]*node, l.cap)
	l.head, l.tail = nil, nil
}

func (l *LRU) pushFront(n *node) {
	n.prev = nil
	n.next = l.head
	if l.head != nil {
		l.head.prev = n
	}
	l.head = n
	if l.tail == nil {
		l.tail = n
	}
}

func (l *LRU) unlink(n *node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (l *LRU) moveToFront(n *node) {
	if l.head == n {
		return
	}
	l.unlink(n)
	l.pushFront(n)
}

func (l *LRU) evict() {
	if l.tail == nil {
		return
	}
	victim := l.tail
	l.unlink(victim)
	delete(l.slots, victim.id)
}

// System bundles the memory structures of the simulated machine. The
// capacities default to the paper's Pentium: 32-entry instruction TLB,
// 64-entry data TLB, and a 256 KB L2 modelled as 8192 32-byte lines
// (identified at a coarser "chunk" granularity by callers).
type System struct {
	ITLB  *LRU
	DTLB  *LRU
	Cache *LRU
}

// Config sets the capacities of a System.
type Config struct {
	ITLBEntries int
	DTLBEntries int
	CacheLines  int
}

// DefaultConfig matches the experimental machine in paper §2.1.
func DefaultConfig() Config {
	return Config{ITLBEntries: 32, DTLBEntries: 64, CacheLines: 8192}
}

// NewSystem builds a System from cfg.
func NewSystem(cfg Config) *System {
	return &System{
		ITLB:  NewLRU(cfg.ITLBEntries),
		DTLB:  NewLRU(cfg.DTLBEntries),
		Cache: NewLRU(cfg.CacheLines),
	}
}

// FlushTLBs empties both TLBs, as the Pentium does on every protection-
// domain crossing (paper §5.3). The cache survives.
func (s *System) FlushTLBs() {
	s.ITLB.Flush()
	s.DTLB.Flush()
}

// TouchCode references a set of code pages, returning the miss count.
func (s *System) TouchCode(pages []uint64) int {
	return touchAll(s.ITLB, pages)
}

// TouchData references a set of data pages, returning the miss count.
func (s *System) TouchData(pages []uint64) int {
	return touchAll(s.DTLB, pages)
}

// TouchCache references a set of cache chunks, returning the miss count.
func (s *System) TouchCache(chunks []uint64) int {
	return touchAll(s.Cache, chunks)
}

func touchAll(l *LRU, ids []uint64) int {
	misses := 0
	for _, id := range ids {
		if !l.Touch(id) {
			misses++
		}
	}
	return misses
}
