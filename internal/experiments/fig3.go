package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/core"
	"latlab/internal/cpu"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/viz"
)

// Fig3Persona is one system's idle profile.
type Fig3Persona struct {
	Persona string
	Profile []core.ProfilePoint
	// MeanUtil is average idle-time CPU utilization.
	MeanUtil float64
	// ClockBursts is the number of distinct utilization bursts observed.
	ClockBursts int
	// ClockOverheadCycles is the measured per-clock-interrupt overhead,
	// obtained by coupling the idle loop with the hardware counters
	// (paper §2.5: ≈400 cycles on NT 4.0).
	ClockOverheadCycles float64
}

// Fig3Result is the idle-system comparison of paper Fig. 3.
type Fig3Result struct {
	Systems []Fig3Persona
}

// ExperimentID implements Result.
func (r *Fig3Result) ExperimentID() string { return "fig3" }

// Render implements Result.
func (r *Fig3Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 3 — Idle-system profiles\n\n")
	for _, s := range r.Systems {
		if err := viz.Profile(w, fmt.Sprintf("%s (mean util %.3f%%, clock interrupt ≈%.0f cycles)",
			s.Persona, 100*s.MeanUtil, s.ClockOverheadCycles), s.Profile, 100, 8); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Artifacts implements ArtifactProvider.
func (r *Fig3Result) Artifacts() []Artifact {
	var out []Artifact
	for _, s := range r.Systems {
		out = append(out, ProfileArtifact(s.Persona, s.Profile))
	}
	return out
}

func runFig3(ctx context.Context, cfg Config) (Result, error) {
	seconds := 2
	if cfg.Quick {
		seconds = 1
	}
	res := &Fig3Result{}
	for _, p := range persona.All() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := newRig(cfg, p, seconds+2)
		intrBefore := r.sys.K.CPU().Count(cpu.Interrupts)
		stolenBefore := stolenTotal(r)
		r.sys.K.Run(simtime.Time(simtime.Duration(seconds) * simtime.Second))
		samples := r.il.Samples()
		profile := core.Profile(samples)

		// Clock-overhead estimate: total stolen time divided by the
		// interrupts taken (valid on the NTs, where nothing else runs;
		// on W95 background activity inflates it, which the paper's
		// Fig. 3 discussion also observes).
		intr := r.sys.K.CPU().Count(cpu.Interrupts) - intrBefore
		stolen := stolenTotal(r) - stolenBefore
		perIntr := 0.0
		if intr > 0 {
			perIntr = float64(r.sys.K.CPU().Freq.CyclesIn(stolen)) / float64(intr)
		}

		// Clock bursts steal only ≈4 µs per sample, so count elongations
		// above a 2 µs floor rather than the general busy threshold.
		bursts := 0
		for _, s := range samples {
			if s.Stolen(core.NominalSample) > 2*simtime.Microsecond {
				bursts++
			}
		}
		res.Systems = append(res.Systems, Fig3Persona{
			Persona:             p.Name,
			Profile:             profile,
			MeanUtil:            core.MeanUtil(profile),
			ClockBursts:         bursts,
			ClockOverheadCycles: perIntr,
		})
		r.shutdown()
	}
	return res, nil
}

func stolenTotal(r *rig) simtime.Duration {
	var t simtime.Duration
	for _, s := range r.il.Samples() {
		t += s.Stolen(core.NominalSample)
	}
	return t
}

func init() {
	Register(Spec{
		ID:    "fig3",
		Title: "Idle-system profiles for the three operating systems",
		Paper: "Fig. 3, §2.5",
		Run:   runFig3,
	})
}
