package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/apps"
	"latlab/internal/core"
	"latlab/internal/cpu"
	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/viz"
)

// counterKinds are the hardware events Figs. 9-10 report.
var counterKinds = []cpu.EventKind{
	cpu.Instructions, cpu.DataRefs,
	cpu.ITLBMisses, cpu.DTLBMisses,
	cpu.SegmentLoads, cpu.UnalignedAccesses,
}

// CounterResult holds a counter comparison across the three systems for
// one operation (the shape of Figs. 9 and 10).
type CounterResult struct {
	id        string
	Title     string
	Operation string
	Systems   []core.CounterMeasurement
	// TLBExtra351 and TLBFraction351 quantify the paper's attribution:
	// extra NT 3.51 TLB misses over NT 4.0, and their share of the
	// latency difference at 20 cycles/miss (≥25% for page down, ≥23%
	// for the OLE edit).
	TLBExtra351    int64
	TLBFraction351 float64
	// W95TLBRatio is W95 TLB misses over NT 4.0's (paper: 1.93x).
	W95TLBRatio float64
}

// ExperimentID implements Result.
func (r *CounterResult) ExperimentID() string { return r.id }

// Render implements Result.
func (r *CounterResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "%s\n\n", r.Title)
	if err := viz.CounterBars(w, "  "+r.Operation, r.Systems, counterKinds, 36); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n  NT 3.51 extra TLB misses vs NT 4.0: %d (at 20 cyc/miss: %.0f%% of the latency difference)\n",
		r.TLBExtra351, 100*r.TLBFraction351)
	fmt.Fprintf(w, "  W95 / NT 4.0 TLB-miss ratio: %.2fx\n", r.W95TLBRatio)
	return nil
}

// measurePerPersona runs op-measurement over all three personas using a
// prepared rig per persona.
func measureOp(ctx context.Context, id, title, operation string, cfg Config, warmups int,
	prepare func(r *rig) (runOnce func())) (*CounterResult, error) {
	res := &CounterResult{id: id, Title: title, Operation: operation}
	byShort := map[string]core.CounterMeasurement{}
	for _, p := range persona.All() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := newRig(cfg, p, 400)
		runOnce := prepare(r)
		for i := 0; i < warmups; i++ {
			runOnce() // warm caches, as the paper's repeated trials are
		}
		m := core.MeasureCounters(r.sys.K, p.Short, counterKinds, runOnce)
		byShort[p.Short] = m
		res.Systems = append(res.Systems, m)
		r.shutdown()
	}
	res.TLBExtra351, res.TLBFraction351 =
		core.TLBAttribution(byShort["nt351"], byShort["nt40"], 20)
	tlb := func(m core.CounterMeasurement) float64 {
		return float64(m.Events[cpu.ITLBMisses] + m.Events[cpu.DTLBMisses])
	}
	if base := tlb(byShort["nt40"]); base > 0 {
		res.W95TLBRatio = tlb(byShort["w95"]) / base
	}
	return res, nil
}

// pptWarmRig boots a persona with PowerPoint launched and opened, using
// a deck whose slides all carry embedded graphs, so that repeated
// page-downs land on OLE pages (the Fig. 9 microbenchmark).
func pptWarmRig(r *rig, objectEverySlide bool) *apps.Powerpoint {
	params := apps.DefaultPowerpointParams()
	params.Slides = 40
	if objectEverySlide {
		params.ObjectSlides = nil
		for s := 2; s <= 40; s++ {
			params.ObjectSlides = append(params.ObjectSlides, s)
		}
	}
	ppt := apps.NewPowerpoint(r.sys, params)
	steps := []chainStep{
		step(kernel.WMCommand, apps.CmdLaunch, 200*simtime.Millisecond),
		step(kernel.WMCommand, apps.CmdOpen, 200*simtime.Millisecond),
	}
	runChain(r.sys, steps, false, simtime.Time(120*simtime.Second))
	return ppt
}

// quiesce runs the kernel until the focused app goes idle. It always
// advances time first (pending injections haven't fired yet) and polls
// finely so counter measurements bracket the operation tightly.
func quiesce(r *rig) {
	for i := 0; i < 2_000_000; i++ {
		r.sys.K.RunFor(200 * simtime.Microsecond)
		f := r.sys.Focus()
		if f.State() == kernel.StateBlockedMsg && f.QueueLen() == 0 &&
			r.sys.K.SyncIOOutstanding() == 0 {
			return
		}
	}
	panic("experiments: application never quiesced")
}

func runFig9(ctx context.Context, cfg Config) (Result, error) {
	return liftCounters(measureOp(ctx, "fig9",
		"Fig. 9 — Counter measurements for the Powerpoint page-down operation",
		"page down to a page containing an OLE embedded graph (warm)",
		cfg, 1,
		func(r *rig) func() {
			pptWarmRig(r, true)
			return func() {
				r.sys.K.At(r.sys.K.Now()+1, func(simtime.Time) {
					r.sys.Inject(kernel.WMKeyDown, input.VKPageDown, false)
				})
				quiesce(r)
			}
		}))
}

func runFig10(ctx context.Context, cfg Config) (Result, error) {
	// Three warm-up sessions walk the server's per-session extra-page
	// schedule so the buffer cache is genuinely hot (paper §5.3).
	return liftCounters(measureOp(ctx, "fig10",
		"Fig. 10 — Counter measurements for the OLE edit start-up (hot buffer cache)",
		"start OLE edit session, hot cache",
		cfg, 3,
		func(r *rig) func() {
			ppt := pptWarmRig(r, false)
			_ = ppt
			return func() {
				r.sys.K.At(r.sys.K.Now()+1, func(simtime.Time) {
					r.sys.Inject(kernel.WMCommand, apps.CmdEditObject+0, false)
				})
				quiesce(r)
				r.sys.K.At(r.sys.K.Now()+1, func(simtime.Time) {
					r.sys.Inject(kernel.WMCommand, apps.CmdEndEdit, false)
				})
				quiesce(r)
			}
		}))
}

// liftCounters adapts measureOp's concrete result to the Spec.Run shape.
func liftCounters(r *CounterResult, err error) (Result, error) {
	if err != nil {
		return nil, err
	}
	return r, nil
}

func init() {
	Register(Spec{ID: "fig9", Title: "Counter measurements: Powerpoint page down",
		Paper: "Fig. 9, §5.3", Run: runFig9})
	Register(Spec{ID: "fig10", Title: "Counter measurements: OLE edit start-up",
		Paper: "Fig. 10, §5.3", Run: runFig10})
}
