package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"latlab/internal/apps"
	"latlab/internal/core"
	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/viz"
)

// pptRun is the outcome of one PowerPoint task run (§5.2): the full
// event list plus labels for the long-latency command events.
type pptRun struct {
	events  []core.Event
	labeled []labeledEvent
	elapsed simtime.Duration
}

type labeledEvent struct {
	label string
	ev    core.Event
}

// pptMemo caches task runs so fig8, table1 and fig12 don't re-simulate.
// The runner schedules those experiments concurrently, so the cache is a
// lock-protected singleflight: the first caller for a key simulates, any
// concurrent caller for the same key waits for that run instead of
// duplicating it. A cached *pptRun is immutable once published.
var pptMemo = struct {
	mu sync.Mutex
	m  map[string]*pptMemoEntry
}{m: map[string]*pptMemoEntry{}}

type pptMemoEntry struct {
	once sync.Once
	run  *pptRun
}

// pptTask drives the paper's PowerPoint scenario on persona p: cold
// boot, start PowerPoint, open the 46-page deck, page through it
// (rendering the three embedded graphs), start an OLE edit session on
// each object with a few modification keystrokes, then save. Pacing is
// completion-based with ≥150 ms think times, matching the Test script.
func pptTask(p persona.P, cfg Config) *pptRun {
	key := fmt.Sprintf("%s/%v/%d", p.Short, cfg.Quick, cfg.Seed)
	pptMemo.mu.Lock()
	e, ok := pptMemo.m[key]
	if !ok {
		e = &pptMemoEntry{}
		pptMemo.m[key] = e
	}
	pptMemo.mu.Unlock()
	e.once.Do(func() { e.run = pptSimulate(p, cfg) })
	return e.run
}

// pptSimulate performs the actual simulated task run behind pptTask.
func pptSimulate(p persona.P, cfg Config) *pptRun {
	// The run is shared by fig8/table1/fig12 but simulated once; a fixed
	// tag keeps its span-track name independent of which spec got here
	// first (trace export must not depend on pool completion order).
	cfg.TraceTag = "powerpoint-task"
	params := apps.DefaultPowerpointParams()
	pageDownsPerStop := []int{9, 10, 10} // reach slides 10, 20, 30
	edits := 3
	if cfg.Quick {
		params.Slides = 12
		params.ObjectSlides = []int{3, 6, 9}
		pageDownsPerStop = []int{2, 3, 3}
		edits = 2
	}

	r := newRig(cfg, p, 220)
	defer r.shutdown()
	ppt := apps.NewPowerpoint(r.sys, params)

	think := 300 * simtime.Millisecond
	var steps []chainStep
	steps = append(steps, step(kernel.WMCommand, apps.CmdLaunch, 500*simtime.Millisecond))
	steps = append(steps, step(kernel.WMCommand, apps.CmdOpen, think))
	for i := 0; i < edits; i++ {
		for j := 0; j < pageDownsPerStop[i]; j++ {
			steps = append(steps, step(kernel.WMKeyDown, input.VKPageDown, think))
		}
		steps = append(steps, step(kernel.WMCommand, apps.CmdEditObject+int64(i), think))
		// Modify the object: a few keystrokes ≥150 ms apart (§5.2).
		for k := 0; k < 3; k++ {
			steps = append(steps, step(kernel.WMChar, '7', 150*simtime.Millisecond))
		}
		steps = append(steps, step(kernel.WMCommand, apps.CmdEndEdit, think))
	}
	steps = append(steps, step(kernel.WMCommand, apps.CmdSave, think))

	done := runChain(r.sys, steps, true, simtime.Time(200*simtime.Second))
	events := r.extract(ppt.Thread(), true)

	run := &pptRun{events: events, elapsed: simtime.Duration(done)}
	// Label the command events in issue order.
	labels := []string{"Start Powerpoint", "Open document"}
	for i := 0; i < edits; i++ {
		labels = append(labels, fmt.Sprintf("Start OLE edit session (object %d)", i+1), "End OLE edit")
	}
	labels = append(labels, "Save document")
	li := 0
	for _, e := range events {
		if e.Kind == kernel.WMCommand && li < len(labels) {
			run.labeled = append(run.labeled, labeledEvent{label: labels[li], ev: e})
			li++
		}
	}
	return run
}

// Fig8Persona is one NT system's PowerPoint latency summary.
type Fig8Persona struct {
	Persona string
	Report  *core.Report
}

// Fig8Result is the PowerPoint event-latency summary of paper Fig. 8:
// events below 50 ms are pre-filtered, and most of the total time is in
// the long-latency events.
type Fig8Result struct {
	Systems []Fig8Persona
}

// ExperimentID implements Result.
func (r *Fig8Result) ExperimentID() string { return "fig8" }

// Render implements Result.
func (r *Fig8Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 8 — Powerpoint event latency summary (events <50ms excluded, NT only)\n\n")
	for _, s := range r.Systems {
		rep := s.Report
		if err := viz.Histogram(w,
			fmt.Sprintf("%s — %d events ≥50ms, cumulative latency %.1fs (log count)",
				s.Persona, len(rep.Events), rep.TotalLatency().Seconds()),
			rep.Histogram(0, 10_000, 20), 40); err != nil {
			return err
		}
		if err := viz.CumulativeCurve(w, "  cumulative latency", rep.CumulativeCurve(),
			rep.Elapsed, 70, 8); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Artifacts implements ArtifactProvider.
func (r *Fig8Result) Artifacts() []Artifact {
	var out []Artifact
	for _, s := range r.Systems {
		out = append(out, EventsArtifact(s.Persona, s.Report.Events),
			ReportArtifact(s.Persona, s.Report))
	}
	return out
}

func runFig8(ctx context.Context, cfg Config) (Result, error) {
	res := &Fig8Result{}
	for _, p := range persona.NTs() { // W95 excluded, as in the paper (§5.2)
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		run := pptTask(p, cfg)
		filtered := core.FilterLatencyAbove(run.events, 50*simtime.Millisecond)
		res.Systems = append(res.Systems, Fig8Persona{
			Persona: p.Name,
			Report:  core.NewReport(filtered, run.elapsed),
		})
	}
	return res, nil
}

// Table1Row is one long-latency event across the two NT systems.
type Table1Row struct {
	Event    string
	NT351Sec float64
	NT40Sec  float64
}

// Table1Result reproduces paper Table 1: PowerPoint events with latency
// over one second.
type Table1Result struct {
	Rows []Table1Row
}

// ExperimentID implements Result.
func (r *Table1Result) ExperimentID() string { return "table1" }

// Render implements Result.
func (r *Table1Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Table 1 — Powerpoint events with latency over one second\n\n")
	fmt.Fprintf(w, "  %-38s %9s %9s\n", "latency (in seconds)", "NT 3.51", "NT 4.0")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-38s %9.3f %9.3f\n", row.Event, row.NT351Sec, row.NT40Sec)
	}
	return nil
}

func runTable1(ctx context.Context, cfg Config) (Result, error) {
	runs := map[string]*pptRun{}
	for _, p := range persona.NTs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		runs[p.Short] = pptTask(p, cfg)
	}
	byLabel := func(run *pptRun) map[string]float64 {
		m := map[string]float64{}
		for _, le := range run.labeled {
			m[le.label] = le.ev.Latency.Seconds()
		}
		return m
	}
	l351, l40 := byLabel(runs["nt351"]), byLabel(runs["nt40"])
	res := &Table1Result{}
	for label := range l351 {
		if l351[label] >= 1 || l40[label] >= 1 {
			res.Rows = append(res.Rows, Table1Row{Event: label, NT351Sec: l351[label], NT40Sec: l40[label]})
		}
	}
	// Tie-break on the label so the rendered table (and therefore the
	// whole suite output) is byte-stable across runs and job counts.
	sort.Slice(res.Rows, func(i, j int) bool {
		if res.Rows[i].NT351Sec != res.Rows[j].NT351Sec {
			return res.Rows[i].NT351Sec > res.Rows[j].NT351Sec
		}
		return res.Rows[i].Event < res.Rows[j].Event
	})
	return res, nil
}

// Fig12Result is the time series of long-latency PowerPoint events
// (paper Fig. 12): both NTs show the same command-driven periodicity,
// with NT 4.0's interarrivals slightly shorter to match its shorter
// latencies (completion-paced input).
type Fig12Result struct {
	Systems []struct {
		Persona            string
		Events             []core.Event
		MeanInterarrivalMs float64
	}
}

// ExperimentID implements Result.
func (r *Fig12Result) ExperimentID() string { return "fig12" }

// Render implements Result.
func (r *Fig12Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 12 — Time series of long-latency (>50ms) Powerpoint events\n\n")
	for _, s := range r.Systems {
		if err := viz.TimeSeries(w,
			fmt.Sprintf("%s (mean interarrival %.1fs)", s.Persona, s.MeanInterarrivalMs/1000),
			s.Events, 50, 110, 10); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// Artifacts implements ArtifactProvider.
func (r *Fig12Result) Artifacts() []Artifact {
	var out []Artifact
	for _, s := range r.Systems {
		out = append(out, EventsArtifact(s.Persona, s.Events))
	}
	return out
}

func runFig12(ctx context.Context, cfg Config) (Result, error) {
	res := &Fig12Result{}
	for _, p := range persona.NTs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		run := pptTask(p, cfg)
		long := core.FilterLatencyAbove(run.events, 50*simtime.Millisecond)
		ia := core.NewReport(long, run.elapsed).Interarrival(50)
		res.Systems = append(res.Systems, struct {
			Persona            string
			Events             []core.Event
			MeanInterarrivalMs float64
		}{Persona: p.Name, Events: long, MeanInterarrivalMs: ia.MeanSec * 1000})
	}
	return res, nil
}

func init() {
	Register(Spec{ID: "fig8", Title: "Powerpoint event latency summary",
		Paper: "Fig. 8, §5.2", Run: runFig8})
	Register(Spec{ID: "table1", Title: "Powerpoint events with latency over one second",
		Paper: "Table 1, §5.2", Run: runTable1})
	Register(Spec{ID: "fig12", Title: "Time series of long-latency Powerpoint events",
		Paper: "Fig. 12, §6", Run: runFig12})
}
