package experiments

import (
	"testing"

	"latlab/internal/core"
)

func TestExtBatching(t *testing.T) {
	r := mustRun(t, runExtBatching, full()).(*ExtBatchingResult)
	renderOK(t, r)
	// The saturated ("infinitely fast user") run completes more events
	// per second — throughput prefers it.
	if r.SaturatedRate <= r.PacedRate {
		t.Fatalf("saturated rate %.1f/s should exceed paced %.1f/s",
			r.SaturatedRate, r.PacedRate)
	}
	// But per-event latency degrades badly: queueing dominates.
	if r.Saturated.Mean < 3*r.Paced.Mean {
		t.Fatalf("saturated mean %.1fms should dwarf paced %.1fms (queueing)",
			r.Saturated.Mean, r.Paced.Mean)
	}
	if r.Saturated.Max < 10*r.Paced.Max {
		t.Fatalf("saturated max %.1fms should explode vs paced %.1fms",
			r.Saturated.Max, r.Paced.Max)
	}
}

func TestExtThinkWait(t *testing.T) {
	r := mustRun(t, runExtThinkWait, full()).(*ExtThinkWaitResult)
	renderOK(t, r)
	if len(r.Systems) != 3 {
		t.Fatalf("systems = %d", len(r.Systems))
	}
	for _, s := range r.Systems {
		total := s.Think + s.Wait
		if total <= 0 {
			t.Fatalf("%s: empty decomposition", s.Persona)
		}
		// A typing session is mostly think time (the user composes), but
		// wait time must be present and the FSM must transition often
		// (roughly twice per keystroke).
		if s.WaitShare <= 0 || s.WaitShare > 0.5 {
			t.Fatalf("%s: wait share %.2f implausible for typing", s.Persona, s.WaitShare)
		}
		if s.Transitions < 100 {
			t.Fatalf("%s: only %d transitions", s.Persona, s.Transitions)
		}
	}
	// Windows 95's extra per-event cost and background activity push its
	// wait share above NT 4.0's.
	var w95, nt40 float64
	for _, s := range r.Systems {
		switch s.Persona {
		case "Windows 95":
			w95 = s.WaitShare
		case "Windows NT 4.0":
			nt40 = s.WaitShare
		}
	}
	if w95 <= nt40 {
		t.Fatalf("W95 wait share %.3f should exceed NT4.0 %.3f", w95, nt40)
	}
}

func TestExtMetric(t *testing.T) {
	r := mustRun(t, runExtMetric, full()).(*ExtMetricResult)
	renderOK(t, r)
	if len(r.Systems) != 2 || len(r.ThresholdsMs) != 4 {
		t.Fatalf("shape wrong: %d systems, %d thresholds", len(r.Systems), len(r.ThresholdsMs))
	}
	for _, s := range r.Systems {
		// Irritation is non-increasing in the threshold.
		for i := 1; i < len(s.Values); i++ {
			if s.Values[i] > s.Values[i-1] {
				t.Fatalf("%s: irritation increased with threshold: %v", s.Persona, s.Values)
			}
		}
		// At the 2 s floor, a Word typing session irritates nobody.
		if s.Values[len(s.Values)-1] != 0 {
			t.Fatalf("%s: irritation at 2s = %v, want 0", s.Persona, s.Values)
		}
		// At 50 ms it is clearly non-zero.
		if s.Values[0] <= 0 {
			t.Fatalf("%s: irritation at 50ms should be positive", s.Persona)
		}
	}
}

func TestExtSlowCPU(t *testing.T) {
	r := mustRun(t, runExtSlowCPU, full()).(*ExtSlowCPUResult)
	renderOK(t, r)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	fast, slow := r.Rows[0], r.Rows[2]
	if fast.MHz != 100 || slow.MHz != 20 {
		t.Fatalf("clock order wrong: %+v", r.Rows)
	}
	// Latency scales with the clock: the 20 MHz machine is ≈5x slower.
	ratio := slow.Char.Mean / fast.Char.Mean
	if ratio < 3.5 || ratio > 6.5 {
		t.Fatalf("char slowdown = %.1fx, want ≈5x", ratio)
	}
	// At 100 MHz nothing crosses the perception threshold; at 20 MHz the
	// refresh keystrokes do (the §5.1 point).
	if fast.OverPerception != 0 {
		t.Fatalf("100 MHz: %d events over 0.1s, want 0", fast.OverPerception)
	}
	if slow.OverPerception == 0 {
		t.Fatalf("20 MHz: refreshes should cross the perception threshold")
	}
	if slow.Refresh.Mean < core.PerceptionThresholdMs {
		t.Fatalf("20 MHz refresh mean = %.1fms, want >100ms", slow.Refresh.Mean)
	}
}

func TestExtInterrupts(t *testing.T) {
	r := mustRun(t, runExtInterrupts, full()).(*ExtInterruptsResult)
	renderOK(t, r)
	byName := map[string]ExtInterruptsRow{}
	for _, row := range r.Systems {
		byName[row.Persona] = row
	}
	nt40 := byName["Windows NT 4.0"]
	w95 := byName["Windows 95"]
	// Keyboard handling matches the persona's configured cost within the
	// instrument's TLB-warmup noise.
	if got := nt40.Cycles["keyboard"]; got < 2300 || got > 2900 {
		t.Fatalf("NT4.0 keyboard overhead = %.0f cycles, want ≈2500", got)
	}
	// Windows 95's 16-bit interrupt reflection costs roughly twice NT's.
	if w95.Cycles["keyboard"] < 1.5*nt40.Cycles["keyboard"] {
		t.Fatalf("W95 keyboard %.0f should dwarf NT4.0 %.0f",
			w95.Cycles["keyboard"], nt40.Cycles["keyboard"])
	}
	for _, row := range r.Systems {
		for _, class := range r.Classes {
			if row.Cycles[class] <= 0 {
				t.Fatalf("%s %s overhead = %.0f, want positive", row.Persona, class, row.Cycles[class])
			}
		}
	}
}

func TestExtBatchingCoalesces(t *testing.T) {
	r := mustRun(t, runExtBatching, full()).(*ExtBatchingResult)
	if r.PacedBatched != 0 {
		t.Fatalf("realistic pacing should never trigger batching, got %d", r.PacedBatched)
	}
	if r.SaturatedBatched == 0 {
		t.Fatalf("saturated input should batch GUI calls")
	}
}
