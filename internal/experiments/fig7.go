package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/apps"
	"latlab/internal/core"
	"latlab/internal/input"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/viz"
)

// Fig7Persona holds one system's Notepad benchmark summary.
type Fig7Persona struct {
	Persona string
	Report  *core.Report
	// FractionUnder10ms is the share of cumulative latency from events
	// below 10 ms (paper: "over 80%").
	FractionUnder10ms float64
	// ElapsedBusy is cumulative non-idle time over the run, which
	// includes the WM_QUEUESYNC processing removed from event latencies
	// — the source of the paper's Fig. 7 anomaly.
	ElapsedBusy simtime.Duration
}

// Fig7Result is the Notepad event-latency summary of paper Fig. 7.
type Fig7Result struct {
	Systems []Fig7Persona
}

// ExperimentID implements Result.
func (r *Fig7Result) ExperimentID() string { return "fig7" }

// Render implements Result.
func (r *Fig7Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 7 — Notepad event latency summary (Test input, WM_QUEUESYNC stripped)\n\n")
	for _, s := range r.Systems {
		rep := s.Report
		if err := viz.Histogram(w,
			fmt.Sprintf("%s — %d events, cumulative latency %.0fms, busy elapsed %.1fs (log count)",
				s.Persona, len(rep.Events), rep.TotalLatency().Milliseconds(), s.ElapsedBusy.Seconds()),
			rep.Histogram(0, 40, 20), 40); err != nil {
			return err
		}
		if err := viz.CumulativeCurve(w, "  cumulative latency", rep.CumulativeCurve(),
			rep.Elapsed, 70, 8); err != nil {
			return err
		}
		if err := viz.CumulativeByEvents(w, "  cumulative latency by event count",
			rep.CumulativeCurve(), 70, 6); err != nil {
			return err
		}
		fmt.Fprintf(w, "  latency from events <10ms: %.0f%%\n\n", 100*s.FractionUnder10ms)
	}
	return nil
}

// Artifacts implements ArtifactProvider.
func (r *Fig7Result) Artifacts() []Artifact {
	var out []Artifact
	for _, s := range r.Systems {
		out = append(out, EventsArtifact(s.Persona, s.Report.Events),
			ReportArtifact(s.Persona, s.Report))
	}
	return out
}

// notepadScript builds the §5.1 editing session: `chars` characters at
// ~100 wpm with paragraph newlines, cursor movement, and page movement.
func notepadScript(chars int) *input.Script {
	raw := input.SampleText(chars)
	var text []rune
	for i, c := range raw {
		if i > 0 && i%130 == 0 {
			text = append(text, '\n')
		}
		text = append(text, c)
	}
	evs := input.TypeText(simtime.Time(500*simtime.Millisecond), string(text), 120*simtime.Millisecond)
	at := evs[len(evs)-1].At.Add(500 * simtime.Millisecond)
	// Cursor movement and page movement.
	evs = append(evs, input.KeyDowns(at, input.VKDown, 8, 150*simtime.Millisecond)...)
	at = at.Add(8*150*simtime.Millisecond + 500*simtime.Millisecond)
	evs = append(evs, input.KeyDowns(at, input.VKPageDown, 4, 400*simtime.Millisecond)...)
	return &input.Script{Events: evs, QueueSync: true}
}

func runFig7(ctx context.Context, cfg Config) (Result, error) {
	chars := 1300 // paper: "text entry of 1300 characters at ~100 wpm"
	if cfg.Quick {
		chars = 150
	}
	res := &Fig7Result{}
	for _, p := range persona.All() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		script := notepadScript(chars)
		seconds := int(script.End().Seconds()) + 10
		r := newRig(cfg, p, seconds)
		n := apps.NewNotepad(r.sys, 250_000)
		script.Install(r.sys)
		end := script.End().Add(2 * simtime.Second)
		r.sys.K.Run(end)

		events := r.extract(n.Thread(), true) // Test overhead removed, §5.1
		rep := core.NewReport(events, simtime.Duration(end))
		res.Systems = append(res.Systems, Fig7Persona{
			Persona:           p.Name,
			Report:            rep,
			FractionUnder10ms: rep.FractionBelow(10),
			ElapsedBusy:       r.sys.K.NonIdleBusyTime(),
		})
		r.shutdown()
	}
	return res, nil
}

func init() {
	Register(Spec{
		ID:    "fig7",
		Title: "Notepad event latency summary",
		Paper: "Fig. 7, §5.1",
		Run:   runFig7,
	})
}
