package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/rng"
	"latlab/internal/simtime"
	"latlab/internal/stats"
)

// Fig6Persona holds one system's simple-event latencies.
type Fig6Persona struct {
	Persona string
	// Keystroke summarizes unbound-keystroke latency (ms) over the
	// manual trials.
	Keystroke stats.Summary
	// Click summarizes background-mouse-click latency (ms).
	Click stats.Summary
	// ClickIsPressDuration flags the Windows 95 anomaly: the measured
	// "latency" is the duration of the user's press (busy-wait).
	ClickIsPressDuration bool
}

// Fig6Result is the simple-interactive-event comparison of paper Fig. 6.
type Fig6Result struct {
	Systems []Fig6Persona
	// MeanHoldMs is the mean simulated press duration, for reference
	// against the W95 click numbers.
	MeanHoldMs float64
}

// ExperimentID implements Result.
func (r *Fig6Result) ExperimentID() string { return "fig6" }

// Render implements Result.
func (r *Fig6Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 6 — Latency of simple interactive events (manual input, mean of trials)\n\n")
	fmt.Fprintf(w, "  %-18s %14s %8s %14s %8s\n", "system", "keystroke", "std", "mouse click", "std")
	for _, s := range r.Systems {
		note := ""
		if s.ClickIsPressDuration {
			note = "  <- off the scale: busy-waits for the press duration"
		}
		fmt.Fprintf(w, "  %-18s %14s %7.1f%% %14s %7.1f%%%s\n",
			s.Persona, fmtMs(s.Keystroke.Mean), 100*s.Keystroke.RelStdDev(),
			fmtMs(s.Click.Mean), 100*s.Click.RelStdDev(), note)
	}
	fmt.Fprintf(w, "\n  (mean press duration %s)\n", fmtMs(r.MeanHoldMs))
	return nil
}

func runFig6(ctx context.Context, cfg Config) (Result, error) {
	trials := 35 // paper: "the mean of 30-40 trials, ignoring cold cache cases"
	if cfg.Quick {
		trials = 8
	}
	res := &Fig6Result{}
	var holdSum float64
	var holdCount int
	for _, p := range persona.All() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rnd := rng.New(cfg.Seed + uint64(len(p.Short)))

		// Unbound keystroke: the focused app passes it to DefWindowProc.
		kr := newRig(cfg, p, trials+10)
		app := kr.sys.SpawnApp("bench", func(tc *kernel.TC) {
			for {
				m := tc.GetMessage()
				switch m.Kind {
				case kernel.WMQuit:
					return
				case kernel.WMKeyDown:
					kr.sys.Win.KeyTranslate(tc)
					kr.sys.Win.DefWindowProc(tc)
				case kernel.WMMouseDown, kernel.WMMouseUp:
					kr.sys.Win.MouseEvent(tc)
					kr.sys.Win.DefWindowProc(tc)
				}
			}
		})
		kr.sys.Win.BindApp([]uint64{345, 346, 347})

		at := simtime.Time(300 * simtime.Millisecond)
		for i := 0; i <= trials; i++ { // one extra: cold trial dropped below
			at = at.Add(simtime.Duration(rnd.Uniform(0.35, 0.6) * float64(simtime.Second)))
			t := at
			kr.sys.K.At(t, func(simtime.Time) { kr.sys.Inject(kernel.WMKeyDown, 'a', false) })
		}
		keyEnd := at.Add(simtime.Second)

		// Background mouse clicks with human-ish hold times.
		clickStart := keyEnd.Add(simtime.Second)
		at = clickStart
		var holds []float64
		for i := 0; i <= trials; i++ {
			hold := rnd.Uniform(0.085, 0.13) // 85-130 ms press
			holds = append(holds, hold*1000)
			for _, e := range input.Click(at, simtime.FromSeconds(hold)) {
				e := e
				kr.sys.K.At(e.At, func(simtime.Time) { kr.sys.Inject(e.Kind, e.Param, false) })
			}
			at = at.Add(simtime.Duration(rnd.Uniform(0.4, 0.65) * float64(simtime.Second)))
		}
		kr.sys.K.Run(at.Add(simtime.Second))

		events := kr.extract(app, false)
		var keyMs, clickMs []float64
		for _, e := range events {
			switch {
			case e.Kind == kernel.WMKeyDown:
				keyMs = append(keyMs, e.Latency.Milliseconds())
			case e.Kind == kernel.WMMouseDown:
				clickMs = append(clickMs, e.Latency.Milliseconds())
			}
		}
		// Ignore the cold-cache first trial of each class, as the paper
		// does.
		if len(keyMs) > 1 {
			keyMs = keyMs[1:]
		}
		if len(clickMs) > 1 {
			clickMs = clickMs[1:]
		}
		res.Systems = append(res.Systems, Fig6Persona{
			Persona:              p.Name,
			Keystroke:            stats.Summarize(keyMs),
			Click:                stats.Summarize(clickMs),
			ClickIsPressDuration: p.MouseBusyWait,
		})
		for _, h := range holds {
			holdSum += h
			holdCount++
		}
		kr.shutdown()
	}
	res.MeanHoldMs = holdSum / float64(holdCount)
	return res, nil
}

func init() {
	Register(Spec{
		ID:    "fig6",
		Title: "Simple interactive events: unbound keystroke and mouse click",
		Paper: "Fig. 6, §4",
		Run:   runFig6,
	})
}
