package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/apps"
	"latlab/internal/core"
	"latlab/internal/input"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/stats"
)

// The three ext-* experiments go beyond the paper's published artifacts,
// implementing studies its text calls for:
//
//   - ext-batching quantifies §1.1's critique: driving the system "as
//     rapidly as it can accept input" models an infinitely fast user and
//     distorts both latency and the meaning of throughput.
//   - ext-thinkwait implements the complete Fig. 2 think/wait FSM with
//     the queue and I/O monitoring the paper lists as future work
//     ("Implementation of such monitoring is part of our continuing
//     work at Harvard").
//   - ext-metric explores §3.1's proposed scalar responsiveness
//     summation and shows the threshold sensitivity that made the paper
//     decline to adopt a single figure of merit.

// ExtBatchingResult compares Notepad driven by an infinitely fast input
// stream against realistic pacing.
type ExtBatchingResult struct {
	// Paced and Saturated summarize per-event latency (ms).
	Paced     stats.Summary
	Saturated stats.Summary
	// PacedRate and SaturatedRate are completed events per second of
	// elapsed time — the throughput view that makes the saturated run
	// look *better*.
	PacedRate     float64
	SaturatedRate float64
	// BatchedCalls counts window-system calls coalesced by request
	// batching in each run: saturation makes the system batch
	// aggressively (§1.1), flattering throughput further.
	PacedBatched     int64
	SaturatedBatched int64
}

// ExperimentID implements Result.
func (r *ExtBatchingResult) ExperimentID() string { return "ext-batching" }

// Render implements Result.
func (r *ExtBatchingResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Extension (§1.1) — the infinitely fast user: Notepad, NT 4.0\n\n")
	fmt.Fprintf(w, "  %-26s %14s %14s\n", "", "realistic", "saturated")
	fmt.Fprintf(w, "  %-26s %11.1f/s %11.1f/s   <- throughput prefers saturation\n",
		"events completed", r.PacedRate, r.SaturatedRate)
	fmt.Fprintf(w, "  %-26s %12.1fms %12.1fms   <- latency tells the truth\n",
		"mean event latency", r.Paced.Mean, r.Saturated.Mean)
	fmt.Fprintf(w, "  %-26s %12.1fms %12.1fms\n", "max event latency", r.Paced.Max, r.Saturated.Max)
	fmt.Fprintf(w, "  %-26s %14d %14d   <- batching kicks in under saturation\n",
		"batched GUI calls", r.PacedBatched, r.SaturatedBatched)
	fmt.Fprintf(w, "\n  \"users will never be able to generate such an input stream\" — §1.1\n")
	return nil
}

func runExtBatching(ctx context.Context, cfg Config) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	chars := 300
	if cfg.Quick {
		chars = 80
	}
	run := func(gap simtime.Duration) (stats.Summary, float64, int64) {
		r := newRig(cfg, persona.NT40(), 120)
		defer r.shutdown()
		n := apps.NewNotepad(r.sys, 250_000)
		script := &input.Script{
			Events: input.TypeText(simtime.Time(200*simtime.Millisecond), input.SampleText(chars), gap),
		}
		script.Install(r.sys)
		r.sys.K.Run(script.End().Add(5 * simtime.Second))
		events := r.extract(n.Thread(), false)
		if len(events) == 0 {
			return stats.Summary{}, 0, 0
		}
		elapsed := events[len(events)-1].End.Sub(events[0].Enqueued).Seconds()
		return stats.Summarize(core.Latencies(events)), float64(len(events)) / elapsed,
			r.sys.Win.BatchedCalls()
	}
	res := &ExtBatchingResult{}
	res.Paced, res.PacedRate, res.PacedBatched = run(120 * simtime.Millisecond) // ~100 wpm
	res.Saturated, res.SaturatedRate, res.SaturatedBatched = run(0)             // infinitely fast user
	return res, nil
}

// ExtThinkWaitResult decomposes a session into think and wait time with
// the full Fig. 2 FSM.
type ExtThinkWaitResult struct {
	Systems []struct {
		Persona     string
		Think, Wait simtime.Duration
		Transitions int
		// WaitIdleIO is wait time with the CPU idle — synchronous I/O
		// the CPU-only view would misclassify as think time.
		WaitShare float64
	}
}

// ExperimentID implements Result.
func (r *ExtThinkWaitResult) ExperimentID() string { return "ext-thinkwait" }

// Render implements Result.
func (r *ExtThinkWaitResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Extension (§2.3, Fig. 2) — full think/wait decomposition of a Notepad+save session\n\n")
	fmt.Fprintf(w, "  %-18s %12s %12s %8s %12s\n", "system", "think", "wait", "wait%", "transitions")
	for _, s := range r.Systems {
		fmt.Fprintf(w, "  %-18s %11.2fs %11.2fs %7.1f%% %12d\n",
			s.Persona, s.Think.Seconds(), s.Wait.Seconds(), 100*s.WaitShare, s.Transitions)
	}
	fmt.Fprintf(w, "\n  The FSM consumes CPU state, per-thread queue state, and outstanding\n")
	fmt.Fprintf(w, "  synchronous I/O — the \"additional system support\" of §2.4/§6.\n")
	return nil
}

func runExtThinkWait(ctx context.Context, cfg Config) (Result, error) {
	chars := 200
	if cfg.Quick {
		chars = 60
	}
	res := &ExtThinkWaitResult{}
	for _, p := range persona.All() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		r := newRig(cfg, p, 180)
		n := apps.NewNotepad(r.sys, 250_000)
		// Typing with composition pauses, then a simulated save-scale
		// synchronous I/O burst via the document reload.
		ty := input.NewTypist(cfg.Seed, 70)
		script := &input.Script{Events: ty.Type(simtime.Time(300*simtime.Millisecond), input.SampleText(chars))}
		script.Install(r.sys)
		end := r.sys.K.Run(script.End().Add(2 * simtime.Second))

		f := core.DriveFSM(r.pr, n.Thread().ID(), end)
		think, wait := f.ThinkTime(), f.WaitTime()
		res.Systems = append(res.Systems, struct {
			Persona     string
			Think, Wait simtime.Duration
			Transitions int
			WaitShare   float64
		}{
			Persona: p.Name, Think: think, Wait: wait,
			Transitions: len(f.Transitions()),
			WaitShare:   float64(wait) / float64(think+wait),
		})
		r.shutdown()
	}
	return res, nil
}

// ExtMetricResult evaluates the §3.1 responsiveness summation at several
// thresholds.
type ExtMetricResult struct {
	ThresholdsMs []float64
	// Irritation[persona][i] is the summation at ThresholdsMs[i].
	Systems []struct {
		Persona string
		Values  []float64
	}
}

// ExperimentID implements Result.
func (r *ExtMetricResult) ExperimentID() string { return "ext-metric" }

// Render implements Result.
func (r *ExtMetricResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Extension (§3.1) — the proposed scalar responsiveness metric, Word benchmark\n\n")
	fmt.Fprintf(w, "  irritation(T) = Σ max(0, latency - T) in seconds\n\n  %-18s", "system")
	for _, th := range r.ThresholdsMs {
		fmt.Fprintf(w, " %9.0fms", th)
	}
	fmt.Fprintln(w)
	for _, s := range r.Systems {
		fmt.Fprintf(w, "  %-18s", s.Persona)
		for _, v := range s.Values {
			fmt.Fprintf(w, " %10.2fs", v)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\n  The ranking can depend on T — the threshold is event-type and user\n")
	fmt.Fprintf(w, "  dependent, which is why the paper presents latency graphically instead.\n")
	return nil
}

func runExtMetric(ctx context.Context, cfg Config) (Result, error) {
	chars := 400
	if cfg.Quick {
		chars = 100
	}
	res := &ExtMetricResult{ThresholdsMs: []float64{50, core.PerceptionThresholdMs, 200, IrritationS}}
	for _, p := range persona.NTs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		events, _, _ := wordTrace(cfg, p, cfg.Seed, chars, true)
		lats := core.Latencies(events)
		vals := make([]float64, len(res.ThresholdsMs))
		for i, th := range res.ThresholdsMs {
			vals[i] = core.Irritation(lats, th)
		}
		res.Systems = append(res.Systems, struct {
			Persona string
			Values  []float64
		}{Persona: p.Name, Values: vals})
	}
	return res, nil
}

// IrritationS aliases the paper's 2 s "invariably irritates" floor in ms.
const IrritationS = core.IrritationThresholdMs

func init() {
	Register(Spec{ID: "ext-batching", Title: "The infinitely-fast-user distortion",
		Paper: "§1.1 (extension)", Run: runExtBatching})
	Register(Spec{ID: "ext-thinkwait", Title: "Full think/wait FSM decomposition",
		Paper: "§2.3 Fig. 2 (extension)", Run: runExtThinkWait})
	Register(Spec{ID: "ext-metric", Title: "Scalar responsiveness metric exploration",
		Paper: "§3.1 (extension)", Run: runExtMetric})
}
