package experiments

import (
	"context"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"latlab/internal/kernel"
	"latlab/internal/scenario"
	"latlab/internal/system"
)

// TestBatchSessionEquivalence pins the decomposition contract stated in
// session.go: a session stepped inside a system.Batch produces exactly
// the result the sequential path produces for the same Config and Doc —
// same engine, same seeds, arena-backed instrument buffers and all.
// Every fuzzer-found corpus document (each pins its seed and machine)
// runs once alone and once interleaved with the whole set in one batch,
// and the two ScenarioResults must be deeply equal.
func TestBatchSessionEquivalence(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join(twinDir, "fz-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 2 {
		t.Fatalf("need at least 2 corpus documents to interleave, found %d", len(paths))
	}
	sort.Strings(paths)
	var docs []scenario.Doc
	for _, path := range paths {
		doc, err := scenario.ParseFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(doc.Compare) > 0 {
			continue
		}
		docs = append(docs, doc)
	}
	cfg := Config{Seed: 1996, Quick: true, Engine: kernel.BatchedEngine()}

	// Sequential reference: each document run alone.
	want := make([]*ScenarioResult, len(docs))
	for i, doc := range docs {
		spec, err := FromScenario(doc)
		if err != nil {
			t.Fatal(err)
		}
		res, err := spec.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("%s: %v", doc.ID, err)
		}
		want[i] = res.(*ScenarioResult)
	}

	// The same documents opened into one batch and stepped interleaved.
	b := system.NewBatch(len(docs))
	open := make([]*ScenarioSession, len(docs))
	for i, doc := range docs {
		c := cfg
		c.IdleArena = b.Arena(i)
		s, err := OpenScenarioSession(c, doc)
		if err != nil {
			t.Fatalf("%s: %v", doc.ID, err)
		}
		open[i] = s
		b.Open(i, s)
	}
	b.Run()
	for i, s := range open {
		got := s.Result()
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("%s: batched session result differs from the sequential run:\nbatched:    %+v\nsequential: %+v",
				docs[i].ID, got, want[i])
		}
	}
}
