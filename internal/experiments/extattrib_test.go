package experiments

import (
	"strings"
	"testing"

	"latlab/internal/persona"
	"latlab/internal/spans"
)

// TestExtAttrib checks the span-derived reproduction of §5.3: the
// NT 3.51 − NT 4.0 gap exists, TLB-miss time explains at least the
// paper's 23% lower bound of it, and the span attribution agrees with
// the hardware counters cycle for cycle.
func TestExtAttrib(t *testing.T) {
	r := mustRun(t, runExtAttrib, quick()).(*ExtAttribResult)
	renderOK(t, r)
	if r.GapMs <= 0 {
		t.Fatalf("NT 3.51 − NT 4.0 gap = %.3fms, want positive", r.GapMs)
	}
	if r.TLBSharePct < 23 {
		t.Fatalf("span-derived TLB share = %.1f%%, below the paper's 23%% lower bound", r.TLBSharePct)
	}
	for _, c := range r.Cells {
		if c.Events == 0 {
			t.Fatalf("%s: no warm episodes", c.Persona)
		}
		if c.SpanTLBCycles == 0 {
			t.Fatalf("%s: no TLB cycles attributed by spans", c.Persona)
		}
		if c.SpanTLBCycles != c.CounterTLBCycles {
			t.Fatalf("%s: span TLB cycles %d != counter-derived %d",
				c.Persona, c.SpanTLBCycles, c.CounterTLBCycles)
		}
		// The decomposition should account for nearly all of the wall
		// latency — an attribution table with a large unexplained
		// remainder would not answer "where did the time go".
		if c.AttribSum() < 0.8*c.WarmMs {
			t.Fatalf("%s: attributed %.3fms of %.3fms wall", c.Persona, c.AttribSum(), c.WarmMs)
		}
	}
}

// TestConfigTraceCollectsTracks runs an experiment with Config.Trace set
// and checks every rig deposited a named span track.
func TestConfigTraceCollectsTracks(t *testing.T) {
	col := &spans.Collector{}
	cfg := quick()
	cfg.Trace = col
	mustRun(t, runExtAttrib, cfg)
	tracks := col.Tracks()
	if len(tracks) != 2 {
		t.Fatalf("got %d tracks, want one per NT persona: %+v", len(tracks), tracks)
	}
	for _, tr := range tracks {
		if !strings.Contains(tr.Name, " @ p100") {
			t.Fatalf("track name %q missing machine suffix", tr.Name)
		}
		if len(tr.Spans) == 0 {
			t.Fatalf("track %q is empty", tr.Name)
		}
	}
	want := persona.NT351().Name + " @ p100"
	if tracks[0].Name != want && tracks[1].Name != want {
		t.Fatalf("no track named %q: %v, %v", want, tracks[0].Name, tracks[1].Name)
	}
}
