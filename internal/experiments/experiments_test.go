package experiments

import (
	"context"
	"strings"
	"testing"

	"latlab/internal/cpu"
	"latlab/internal/simtime"
)

// cfg is the shared full-size configuration; individual tests opt into
// Quick when the full workload adds nothing to the assertion.
func full() Config { return DefaultConfig() }

func quick() Config { return Config{Seed: 1996, Quick: true} }

func renderOK(t *testing.T, r Result) {
	t.Helper()
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatalf("render: %v", err)
	}
	if len(sb.String()) < 40 {
		t.Fatalf("render output suspiciously short:\n%s", sb.String())
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	want := []string{"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"table1", "fig9", "fig10", "fig11", "table2", "fig12", "s54",
		"ext-batching", "ext-thinkwait", "ext-metric", "ext-slowcpu", "ext-interrupts",
		"ext-faults-disk", "ext-faults-irq", "ext-faults-cache",
		"ext-hw-clock", "ext-hw-l2", "ext-hw-tlb", "ext-attrib",
		"ext-modern-clock", "ext-modern-dvfs", "ext-modern-nvme",
		"ext-modern-irq", "ext-modern-smt"}
	if len(all) != len(want) {
		t.Fatalf("registry has %d specs, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Fatalf("registry order[%d] = %s, want %s", i, all[i].ID, id)
		}
		if all[i].Title == "" || all[i].Paper == "" || all[i].Run == nil {
			t.Fatalf("spec %s incomplete", id)
		}
	}
	if _, ok := ByID("fig7"); !ok {
		t.Fatalf("ByID failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatalf("ByID resolved a bogus id")
	}
}

func TestFig1(t *testing.T) {
	r := mustRun(t, runFig1, full()).(*Fig1Result)
	renderOK(t, r)
	// The idle loop must report a larger latency than the conventional
	// in-application measurement (Fig. 1: 9.76 vs 7.42 ms).
	if r.IdleLoop.Mean <= r.Conventional.Mean {
		t.Fatalf("idle-loop %.2fms should exceed conventional %.2fms",
			r.IdleLoop.Mean, r.Conventional.Mean)
	}
	if r.DiscrepancyMs < 1.5 || r.DiscrepancyMs > 3.5 {
		t.Fatalf("discrepancy = %.2fms, want ≈2.34ms", r.DiscrepancyMs)
	}
	if r.IdleLoop.Mean < 8.5 || r.IdleLoop.Mean > 11 {
		t.Fatalf("idle-loop latency = %.2fms, want ≈9.76ms", r.IdleLoop.Mean)
	}
	if r.Conventional.Mean < 6.4 || r.Conventional.Mean > 8.4 {
		t.Fatalf("conventional latency = %.2fms, want ≈7.42ms", r.Conventional.Mean)
	}
	// One elongated sample ≈ 10.7 ms among ≈1 ms samples.
	var maxS float64
	ones := 0
	for _, s := range r.SampleElapsedMs {
		if s > maxS {
			maxS = s
		}
		if s < 1.1 {
			ones++
		}
	}
	if maxS < 9.5 || maxS > 12 {
		t.Fatalf("elongated sample = %.2fms, want ≈10.76ms", maxS)
	}
	if ones < 2 {
		t.Fatalf("expected surrounding ≈1ms samples, got %v", r.SampleElapsedMs)
	}
}

func TestFig3(t *testing.T) {
	r := mustRun(t, runFig3, full()).(*Fig3Result)
	renderOK(t, r)
	if len(r.Systems) != 3 {
		t.Fatalf("systems = %d", len(r.Systems))
	}
	byName := map[string]Fig3Persona{}
	for _, s := range r.Systems {
		byName[s.Persona] = s
	}
	nt40 := byName["Windows NT 4.0"]
	nt351 := byName["Windows NT 3.51"]
	w95 := byName["Windows 95"]
	// §2.5: NT 4.0 clock interrupt ≈400 cycles; bursts at 10 ms intervals.
	if nt40.ClockOverheadCycles < 380 || nt40.ClockOverheadCycles > 520 {
		t.Fatalf("NT4.0 clock overhead = %.0f cycles, want ≈400", nt40.ClockOverheadCycles)
	}
	if nt351.ClockOverheadCycles < nt40.ClockOverheadCycles {
		t.Fatalf("NT3.51 clock overhead should be ≥ NT4.0")
	}
	// Fig. 3: Windows 95 shows a higher level of idle activity.
	if w95.MeanUtil < 2*nt40.MeanUtil {
		t.Fatalf("W95 idle util %.5f should clearly exceed NT4.0 %.5f", w95.MeanUtil, nt40.MeanUtil)
	}
	// Both NTs: ~1 burst per 10 ms → ≈100/s of runtime (2 s run → ≈200).
	if nt40.ClockBursts < 150 || nt40.ClockBursts > 260 {
		t.Fatalf("NT4.0 bursts = %d, want ≈200 over 2s", nt40.ClockBursts)
	}
}

func TestFig4(t *testing.T) {
	r := mustRun(t, runFig4, full()).(*Fig4Result)
	renderOK(t, r)
	// One merged, gapped event with ≈22 animation spikes.
	if !r.Event.Gapped {
		t.Fatalf("maximize event should be gapped (animation pacing)")
	}
	if len(r.AnimationSpikes) < 18 || len(r.AnimationSpikes) > 26 {
		t.Fatalf("animation spikes = %d, want ≈22", len(r.AnimationSpikes))
	}
	// Spikes align on 10 ms clock boundaries (within one sample).
	tick := int64(10 * simtime.Millisecond)
	for _, s := range r.AnimationSpikes {
		off := int64(s) % tick
		if off > int64(2*simtime.Millisecond) && off < tick-int64(2*simtime.Millisecond) {
			t.Fatalf("spike at %v not aligned to 10ms ticks", s)
		}
	}
	// Initial burst ≈80 ms, redraw ≈200 ms.
	if r.InitialBurst < simtime.FromMillis(60) || r.InitialBurst > simtime.FromMillis(110) {
		t.Fatalf("initial burst = %v, want ≈80ms", r.InitialBurst)
	}
	if r.RedrawBurst < simtime.FromMillis(150) || r.RedrawBurst > simtime.FromMillis(260) {
		t.Fatalf("redraw burst = %v, want ≈200ms", r.RedrawBurst)
	}
	// Full event spans ≈ 80 + 220 + 200 ms.
	if r.Event.Latency < simtime.FromMillis(350) || r.Event.Latency > simtime.FromMillis(750) {
		t.Fatalf("maximize event latency = %v, want ≈500ms", r.Event.Latency)
	}
	if len(r.Full) == 0 || len(r.Averaged) == 0 {
		t.Fatalf("profiles empty")
	}
}

func TestFig5(t *testing.T) {
	r := mustRun(t, runFig5, quick()).(*Fig5Result)
	renderOK(t, r)
	if len(r.Events) < 100 {
		t.Fatalf("events = %d", len(r.Events))
	}
	// Fig. 5: the majority of events fall below the 0.1s threshold but a
	// significant number fall above it.
	below, above := 0, 0
	for _, e := range r.Events {
		if e.Latency.Milliseconds() < 100 {
			below++
		} else {
			above++
		}
	}
	if below <= above {
		t.Fatalf("majority should be below 100ms: %d below, %d above", below, above)
	}
	if above == 0 {
		t.Fatalf("a significant number should exceed 100ms")
	}
	if len(r.Magnified) == 0 || r.WindowHi.Sub(r.WindowLo) != 2*simtime.Second {
		t.Fatalf("magnification window wrong: %d events in [%v,%v]",
			len(r.Magnified), r.WindowLo, r.WindowHi)
	}
}

func TestFig6(t *testing.T) {
	r := mustRun(t, runFig6, full()).(*Fig6Result)
	renderOK(t, r)
	byName := map[string]Fig6Persona{}
	for _, s := range r.Systems {
		byName[s.Persona] = s
	}
	nt40, nt351, w95 := byName["Windows NT 4.0"], byName["Windows NT 3.51"], byName["Windows 95"]

	// Keystroke: W95 substantially worse than NT 4.0 (paper §4).
	if w95.Keystroke.Mean < 1.5*nt40.Keystroke.Mean {
		t.Fatalf("W95 keystroke %.2fms not substantially worse than NT4.0 %.2fms",
			w95.Keystroke.Mean, nt40.Keystroke.Mean)
	}
	if nt351.Keystroke.Mean <= nt40.Keystroke.Mean {
		t.Fatalf("NT3.51 keystroke %.2fms should exceed NT4.0 %.2fms (crossings)",
			nt351.Keystroke.Mean, nt40.Keystroke.Mean)
	}
	// Standard deviations in the paper were ≤8% of the mean.
	for name, s := range byName {
		if s.Keystroke.RelStdDev() > 0.10 {
			t.Fatalf("%s keystroke std = %.1f%%, want ≤10%%", name, 100*s.Keystroke.RelStdDev())
		}
	}
	// Mouse click: NT systems sub-millisecond-ish; W95 = press duration.
	if nt40.Click.Mean > 2 || nt351.Click.Mean > 2 {
		t.Fatalf("NT click latencies should be tiny: %.2f / %.2f ms",
			nt40.Click.Mean, nt351.Click.Mean)
	}
	if !w95.ClickIsPressDuration {
		t.Fatalf("W95 must be flagged as busy-wait")
	}
	if w95.Click.Mean < 0.8*r.MeanHoldMs || w95.Click.Mean > 1.3*r.MeanHoldMs {
		t.Fatalf("W95 click %.1fms should track the press duration ≈%.1fms",
			w95.Click.Mean, r.MeanHoldMs)
	}
	if w95.Click.Mean < 25*nt40.Click.Mean {
		t.Fatalf("W95 click should be off the scale relative to NT")
	}
}

func TestFig7(t *testing.T) {
	r := mustRun(t, runFig7, full()).(*Fig7Result)
	renderOK(t, r)
	byName := map[string]Fig7Persona{}
	for _, s := range r.Systems {
		byName[s.Persona] = s
	}
	nt40, nt351, w95 := byName["Windows NT 4.0"], byName["Windows NT 3.51"], byName["Windows 95"]

	for name, s := range byName {
		// §5.1: >80% of total latency from events under 10 ms.
		if s.FractionUnder10ms < 0.8 {
			t.Fatalf("%s: %.0f%% of latency from <10ms events, want >80%%",
				name, 100*s.FractionUnder10ms)
		}
		// The long-latency keystrokes (refreshes) are ≥ ~28 ms.
		longest := 0.0
		for _, l := range s.Report.Latencies() {
			if l > longest {
				longest = l
			}
		}
		if longest < 25 || longest > 60 {
			t.Fatalf("%s: longest Notepad event %.1fms, want ≈28-45ms", name, longest)
		}
	}

	// The Fig. 7 anomaly: W95 smallest cumulative latency, largest busy
	// elapsed time (WM_QUEUESYNC processing).
	if !(w95.Report.TotalLatency() < nt40.Report.TotalLatency() &&
		nt40.Report.TotalLatency() < nt351.Report.TotalLatency()) {
		t.Fatalf("cumulative latency ordering want W95 < NT40 < NT351: %v / %v / %v",
			w95.Report.TotalLatency(), nt40.Report.TotalLatency(), nt351.Report.TotalLatency())
	}
	if !(w95.ElapsedBusy > nt40.ElapsedBusy && w95.ElapsedBusy > nt351.ElapsedBusy) {
		t.Fatalf("busy elapsed want W95 largest: %v / %v / %v",
			w95.ElapsedBusy, nt40.ElapsedBusy, nt351.ElapsedBusy)
	}
}

func TestFig8AndTable1(t *testing.T) {
	fig8 := mustRun(t, runFig8, full()).(*Fig8Result)
	renderOK(t, fig8)
	table1 := mustRun(t, runTable1, full()).(*Table1Result)
	renderOK(t, table1)

	// Six events with latency >1s on both systems, in nearly the same
	// relative order (paper §5.2): save, start, OLE1, open, OLE2, OLE3.
	if len(table1.Rows) < 6 {
		t.Fatalf("long events = %d, want ≥6: %+v", len(table1.Rows), table1.Rows)
	}
	get := func(label string) Table1Row {
		for _, r := range table1.Rows {
			if strings.HasPrefix(r.Event, label) {
				return r
			}
		}
		t.Fatalf("missing Table 1 row %q in %+v", label, table1.Rows)
		return Table1Row{}
	}
	save := get("Save document")
	start := get("Start Powerpoint")
	open := get("Open document")
	ole1 := get("Start OLE edit session (object 1)")
	ole2 := get("Start OLE edit session (object 2)")
	ole3 := get("Start OLE edit session (object 3)")

	// Save is the one event *slower* on NT 4.0 (9.58 vs 8.08 s).
	if save.NT40Sec <= save.NT351Sec {
		t.Fatalf("save: NT4.0 %.2fs should exceed NT3.51 %.2fs", save.NT40Sec, save.NT351Sec)
	}
	// Every other long event is faster on NT 4.0.
	for _, row := range []Table1Row{start, open, ole1, ole2, ole3} {
		if row.NT40Sec >= row.NT351Sec {
			t.Fatalf("%s: NT4.0 %.2fs should beat NT3.51 %.2fs", row.Event, row.NT40Sec, row.NT351Sec)
		}
	}
	// Buffer-cache warming: OLE1 > OLE2 > OLE3 on both systems.
	if !(ole1.NT40Sec > ole2.NT40Sec && ole2.NT40Sec > ole3.NT40Sec) {
		t.Fatalf("NT4.0 OLE warming broken: %.2f/%.2f/%.2f", ole1.NT40Sec, ole2.NT40Sec, ole3.NT40Sec)
	}
	if !(ole1.NT351Sec > ole2.NT351Sec && ole2.NT351Sec > ole3.NT351Sec) {
		t.Fatalf("NT3.51 OLE warming broken: %.2f/%.2f/%.2f", ole1.NT351Sec, ole2.NT351Sec, ole3.NT351Sec)
	}
	// Magnitude bands vs the paper's Table 1 (generous ±45%).
	band := func(name string, got, paper float64) {
		t.Helper()
		if got < paper*0.55 || got > paper*1.45 {
			t.Fatalf("%s = %.2fs, outside ±45%% of paper's %.2fs", name, got, paper)
		}
	}
	band("save nt351", save.NT351Sec, 8.082)
	band("save nt40", save.NT40Sec, 9.580)
	band("start nt351", start.NT351Sec, 7.166)
	band("start nt40", start.NT40Sec, 5.773)
	band("ole1 nt351", ole1.NT351Sec, 7.050)
	band("ole1 nt40", ole1.NT40Sec, 5.844)
	band("open nt351", open.NT351Sec, 5.680)
	band("open nt40", open.NT40Sec, 4.151)
	band("ole2 nt40", ole2.NT40Sec, 2.009)
	band("ole3 nt40", ole3.NT40Sec, 1.305)

	// Fig. 8: "While most of the events ... are relatively short (under
	// 500 ms), the majority of the time is spent in long-latency events."
	for _, s := range fig8.Systems {
		if len(s.Report.Events) == 0 {
			t.Fatalf("%s: no events ≥50ms", s.Persona)
		}
		short := 0
		var total, longLat float64
		for _, l := range s.Report.Latencies() {
			total += l
			if l < 500 {
				short++
			}
			if l > 1000 {
				longLat += l
			}
		}
		if frac := float64(short) / float64(len(s.Report.Events)); frac < 0.5 {
			t.Fatalf("%s: only %.0f%% of events under 500ms", s.Persona, 100*frac)
		}
		if longLat/total < 0.5 {
			t.Fatalf("%s: long events carry %.0f%% of time, want majority",
				s.Persona, 100*longLat/total)
		}
	}
}

func TestFig9PageDownCounters(t *testing.T) {
	r := mustRun(t, runFig9, full()).(*CounterResult)
	renderOK(t, r)
	byLabel := map[string]int64{}
	tlb := map[string]int64{}
	segLoads := map[string]int64{}
	for _, m := range r.Systems {
		byLabel[m.Label] = m.Cycles
		tlb[m.Label] = m.Events[cpu.ITLBMisses] + m.Events[cpu.DTLBMisses]
		segLoads[m.Label] = m.Events[cpu.SegmentLoads]
	}
	// Latency ordering: NT 4.0 fastest, then W95, then NT 3.51 (§5.3).
	if !(byLabel["nt40"] < byLabel["w95"] && byLabel["w95"] < byLabel["nt351"]) {
		t.Fatalf("cycle ordering want nt40 < w95 < nt351: %v", byLabel)
	}
	// TLB attribution ≥25% of the NT difference at 20 cyc/miss.
	if r.TLBFraction351 < 0.23 {
		t.Fatalf("TLB fraction = %.0f%%, want ≥25%%", 100*r.TLBFraction351)
	}
	if r.TLBExtra351 <= 0 {
		t.Fatalf("NT3.51 should have extra TLB misses")
	}
	// W95: ≈93% more TLB misses than NT 4.0.
	if r.W95TLBRatio < 1.5 || r.W95TLBRatio > 2.4 {
		t.Fatalf("W95/NT40 TLB ratio = %.2f, want ≈1.93", r.W95TLBRatio)
	}
	// Segment loads: large for W95, zero for the NTs.
	if segLoads["w95"] == 0 || segLoads["nt40"] != 0 || segLoads["nt351"] != 0 {
		t.Fatalf("segment loads: %v", segLoads)
	}
}

func TestFig10OLECounters(t *testing.T) {
	r := mustRun(t, runFig10, full()).(*CounterResult)
	renderOK(t, r)
	byLabel := map[string]int64{}
	for _, m := range r.Systems {
		byLabel[m.Label] = m.Cycles
	}
	if !(byLabel["nt40"] < byLabel["w95"] && byLabel["w95"] < byLabel["nt351"]) {
		t.Fatalf("cycle ordering want nt40 < w95 < nt351: %v", byLabel)
	}
	// ≥23% of the NT difference from TLB misses at 20 cyc/miss (§5.3).
	if r.TLBFraction351 < 0.21 {
		t.Fatalf("TLB fraction = %.0f%%, want ≥23%%", 100*r.TLBFraction351)
	}
}

func TestFig11Word(t *testing.T) {
	r := mustRun(t, runFig11, full()).(*Fig11Result)
	renderOK(t, r)
	byName := map[string]Fig11Persona{}
	for _, s := range r.Systems {
		byName[s.Persona] = s
	}
	nt40, nt351 := byName["Windows NT 4.0"], byName["Windows NT 3.51"]
	// NT 4.0: shorter response time and lower variance (§5.4/Fig. 11).
	if nt40.Summary.Mean >= nt351.Summary.Mean {
		t.Fatalf("NT4.0 mean %.1fms should beat NT3.51 %.1fms", nt40.Summary.Mean, nt351.Summary.Mean)
	}
	if nt40.Summary.StdDev > nt351.Summary.StdDev*1.05 {
		t.Fatalf("NT4.0 std %.1f should not exceed NT3.51 %.1f", nt40.Summary.StdDev, nt351.Summary.StdDev)
	}
	// Both systems have most latencies below the perception threshold.
	for name, s := range byName {
		below := 0
		for _, l := range s.Report.Latencies() {
			if l < 100 {
				below++
			}
		}
		if frac := float64(below) / float64(len(s.Report.Events)); frac < 0.6 {
			t.Fatalf("%s: only %.0f%% below 100ms", name, 100*frac)
		}
	}
}

func TestTable2Interarrival(t *testing.T) {
	r := mustRun(t, runTable2, full()).(*Table2Result)
	renderOK(t, r)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	c100, c110, c120 := r.Rows[0].Count, r.Rows[1].Count, r.Rows[2].Count
	if r.TotalEvents < 900 {
		t.Fatalf("events = %d, want ≈1000+", r.TotalEvents)
	}
	// Counts decline steeply: paper 101 → 26 → 8.
	if c100 < 40 || c100 > 220 {
		t.Fatalf(">100ms count = %d, want ≈101", c100)
	}
	if float64(c100) < 2.5*float64(c110) {
		t.Fatalf("10%% threshold increase should cut events ≈4x: %d → %d", c100, c110)
	}
	if c120 >= c110 {
		t.Fatalf("counts must keep declining: %d → %d", c110, c120)
	}
	// No strong periodicity: std of the same order as the mean.
	for _, row := range r.Rows[:2] {
		if row.Count >= 5 {
			ratio := row.StdDevSec / row.MeanSec
			if ratio < 0.4 || ratio > 2.5 {
				t.Fatalf("threshold %v: std/mean = %.2f, want same order (no periodicity)",
					row.ThresholdMs, ratio)
			}
		}
	}
}

func TestFig12TimeSeries(t *testing.T) {
	r := mustRun(t, runFig12, full()).(*Fig12Result)
	renderOK(t, r)
	if len(r.Systems) != 2 {
		t.Fatalf("systems = %d", len(r.Systems))
	}
	var nt351, nt40 float64
	for _, s := range r.Systems {
		if len(s.Events) < 5 {
			t.Fatalf("%s: only %d long events", s.Persona, len(s.Events))
		}
		if s.Persona == "Windows NT 3.51" {
			nt351 = s.MeanInterarrivalMs
		} else {
			nt40 = s.MeanInterarrivalMs
		}
	}
	// NT 4.0 shows slightly shorter interarrivals (completion-paced).
	if nt40 >= nt351 {
		t.Fatalf("NT4.0 interarrival %.0fms should be below NT3.51 %.0fms", nt40, nt351)
	}
}

func TestS54TestVsHand(t *testing.T) {
	r := mustRun(t, runS54, full()).(*S54Result)
	renderOK(t, r)
	if r.TestTypical.Mean < 70 || r.TestTypical.Mean > 110 {
		t.Fatalf("Test typical = %.1fms, want ≈80-100", r.TestTypical.Mean)
	}
	if r.HandTypical.Mean < 22 || r.HandTypical.Mean > 45 {
		t.Fatalf("hand typical = %.1fms, want ≈32", r.HandTypical.Mean)
	}
	if r.TestMaxMs > 160 {
		t.Fatalf("Test max = %.1fms, want ≤≈140", r.TestMaxMs)
	}
	if r.HandMaxMs < 200 {
		t.Fatalf("hand max = %.1fms, want >200 (carriage returns)", r.HandMaxMs)
	}
	if r.HandBackgroundBursts <= r.TestBackgroundBursts {
		t.Fatalf("hand background %d should exceed Test %d", r.HandBackgroundBursts, r.TestBackgroundBursts)
	}
}

func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	run := func(context.Context, Config) (Result, error) { return nil, nil }
	// fig1 is already registered; a duplicate must panic before mutating
	// the registry.
	before := len(All())
	mustPanic("duplicate", func() { Register(Spec{ID: "fig1", Run: run}) })
	mustPanic("empty id", func() { Register(Spec{Run: run}) })
	mustPanic("nil run", func() { Register(Spec{ID: "unregistered-test-id"}) })
	if got := len(All()); got != before {
		t.Fatalf("failed Register mutated the registry: %d -> %d specs", before, got)
	}
}

func TestSortSpecsUnknownIDsKeepRegistrationOrder(t *testing.T) {
	run := func(context.Context, Config) (Result, error) { return nil, nil }
	specs := []Spec{
		{ID: "zz-new-2", Run: run},
		{ID: "fig3", Run: run},
		{ID: "aa-new-1", Run: run},
		{ID: "fig1", Run: run},
	}
	got := sortSpecs(specs)
	want := []string{"fig1", "fig3", "zz-new-2", "aa-new-1"}
	for i, id := range want {
		if got[i].ID != id {
			t.Fatalf("sortSpecs order[%d] = %s, want %s (unknown ids must keep registration order)", i, got[i].ID, id)
		}
	}
}

func TestRunHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, f := range []func(context.Context, Config) (Result, error){
		runFig1, runFig3, runFig7, runExtThinkWait,
	} {
		if _, err := f(ctx, quick()); err == nil {
			t.Fatalf("cancelled context should abort the run")
		}
	}
}

func TestArtifactsAreDeterministic(t *testing.T) {
	r := mustRun(t, runFig7, quick())
	ap, ok := r.(ArtifactProvider)
	if !ok {
		t.Fatalf("Fig7Result must provide artifacts")
	}
	arts := ap.Artifacts()
	// 3 personas x (events + report), declared in persona order.
	if len(arts) != 6 {
		t.Fatalf("artifacts = %d, want 6", len(arts))
	}
	again := ap.Artifacts()
	for i := range arts {
		if arts[i].Kind != again[i].Kind || arts[i].Name != again[i].Name {
			t.Fatalf("artifact order not deterministic at %d: %v vs %v", i, arts[i], again[i])
		}
		if arts[i].Samples() == 0 {
			t.Fatalf("artifact %s/%s has no samples", arts[i].Kind, arts[i].Name)
		}
	}
	if arts[0].Kind != ArtifactEvents || arts[1].Kind != ArtifactReport {
		t.Fatalf("per-persona artifact kinds wrong: %v, %v", arts[0].Kind, arts[1].Kind)
	}
}
