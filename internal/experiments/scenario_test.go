package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"latlab/internal/scenario"
)

// -update rewrites the JSON twins under testdata/scenarios/ from the
// Go-declared documents, so the two can never drift by hand-editing:
//
//	go test ./internal/experiments -update
var update = flag.Bool("update", false, "rewrite testdata/scenarios twins from the Go-declared documents")

// twinDir is the committed scenario corpus, shared with latbench's
// -run corpus default.
const twinDir = "../../testdata/scenarios"

// TestScenarioTwinsMatchGoRegistered is the matrix proof behind the
// ext-faults family: each JSON twin parses to exactly the Go-declared
// document, and running the file-compiled spec renders byte-identically
// to the registered experiment, in both quick and full mode.
func TestScenarioTwinsMatchGoRegistered(t *testing.T) {
	for _, doc := range extFaultsDocs() {
		doc := doc
		t.Run(doc.ID, func(t *testing.T) {
			t.Parallel()
			path := filepath.Join(twinDir, doc.ID+".json")
			if *update {
				data, err := scenario.Marshal(doc)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			parsed, err := scenario.ParseFile(path)
			if err != nil {
				t.Fatalf("missing or invalid twin (run `go test ./internal/experiments -update`): %v", err)
			}
			if !reflect.DeepEqual(parsed, doc) {
				t.Fatalf("twin %s drifted from the Go-declared document:\nfile: %+v\ncode: %+v", path, parsed, doc)
			}
			fileSpec, err := FromScenario(parsed)
			if err != nil {
				t.Fatal(err)
			}
			goSpec, ok := ByID(doc.ID)
			if !ok {
				t.Fatalf("%s not registered", doc.ID)
			}
			for _, quick := range []bool{true, false} {
				cfg := Config{Seed: 1996, Quick: quick}
				if testing.Short() && !quick {
					continue
				}
				if got, want := renderOf(t, fileSpec, cfg), renderOf(t, goSpec, cfg); got != want {
					t.Fatalf("quick=%v: file-compiled output differs from registered output (lens %d vs %d)",
						quick, len(got), len(want))
				}
			}
		})
	}
}

// renderOf runs spec under cfg and returns its rendered text.
func renderOf(t *testing.T, spec Spec, cfg Config) string {
	t.Helper()
	res, err := spec.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Render(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
