package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"latlab/internal/core"
	"latlab/internal/faults"
	"latlab/internal/input"
	"latlab/internal/machine"
	"latlab/internal/persona"
	"latlab/internal/scenario"
	"latlab/internal/simtime"
)

// This file is the scenario compiler: FromScenario lowers a declarative
// scenario.Doc onto the same machinery the hand-written experiments
// use — system.New (via newRig), input.Script, faults.Generate,
// machine.ByShort — so a file-backed experiment and a Go-registered one
// share a single code path through the runner. The ext-faults-* specs
// are themselves registered from documents (see extfaults.go), and
// their JSON twins under testdata/scenarios/ are proven byte-identical
// by TestScenarioTwinsMatchGoRegistered.

// FromScenario compiles doc into a runnable Spec. The Spec's Run
// resolves the document against the run Config: a pinned doc.Seed or
// doc.Machine overrides the configured one, -quick selects the quick
// parameter set, and the fault plan is derived from the effective seed.
// The returned Spec carries the document in Spec.Scenario, so run
// manifests record the full declarative config.
func FromScenario(doc scenario.Doc) (Spec, error) {
	if err := doc.Validate(); err != nil {
		return Spec{}, err
	}
	d := doc
	return Spec{
		ID:       d.ID,
		Title:    d.Title,
		Paper:    d.Paper,
		Scenario: &d,
		Run: func(ctx context.Context, cfg Config) (Result, error) {
			return runScenario(ctx, cfg, d)
		},
	}, nil
}

// RegisterScenario loads the scenario document at path, compiles it,
// and adds it to the experiment registry (panicking on a duplicate id,
// like Register). A non-empty id overrides the document's own. It
// returns the registered Spec so callers can run it directly.
func RegisterScenario(id, path string) (Spec, error) {
	doc, err := scenario.ParseFile(path)
	if err != nil {
		return Spec{}, err
	}
	if id != "" {
		doc.ID = id
		if err := doc.Validate(); err != nil {
			return Spec{}, err
		}
	}
	spec, err := FromScenario(doc)
	if err != nil {
		return Spec{}, err
	}
	Register(spec)
	return spec, nil
}

// scRun is one compiled workload invocation: everything a driver needs
// beyond the label and fault plan.
type scRun struct {
	p       persona.P
	prm     scenario.Params
	stanzas []scenario.Stanza
	seed    uint64
}

// runScenario resolves doc against cfg and executes it.
func runScenario(ctx context.Context, cfg Config, doc scenario.Doc) (Result, error) {
	if doc.Seed != 0 {
		cfg.Seed = doc.Seed
	}
	if doc.Machine != "" {
		prof, ok := machine.ByShort(doc.Machine)
		if !ok {
			return nil, fmt.Errorf("scenario %s: unknown machine %q", doc.ID, doc.Machine)
		}
		cfg.Machine = prof
	}
	p, ok := persona.ByShort(doc.Persona)
	if !ok {
		return nil, fmt.Errorf("scenario %s: unknown persona %q", doc.ID, doc.Persona)
	}
	open, err := scenarioOpener(doc.Workload.Kind)
	if err != nil {
		return nil, err
	}
	driver := func(label string, cfg Config, sc scRun, plan faults.Plan) ExtFaultsRow {
		return open(label, cfg, sc, plan).run()
	}
	sc := scRun{p: p, prm: doc.Workload.Resolve(cfg.Quick), stanzas: doc.Input, seed: cfg.Seed}
	plan := scenarioPlan(doc, cfg)

	if len(doc.Compare) > 0 {
		res := &ExtFaultsResult{ID: doc.ID, Title: doc.BannerOrTitle(), Plan: plan}
		for _, row := range doc.Compare {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			rowPlan := faults.Plan{}
			if row.Faulted {
				rowPlan = plan
			}
			res.Rows = append(res.Rows, driver(row.Label, cfg, sc, rowPlan))
		}
		return res, nil
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &ScenarioResult{
		DocID:   doc.ID,
		Banner:  doc.BannerOrTitle(),
		Persona: doc.Persona,
		Machine: cfg.MachineProfile().Short,
		Seed:    cfg.Seed,
		Plan:    plan,
		Row:     driver("run", cfg, sc, plan),
	}
	return res, nil
}

// scenarioOpener maps a workload kind to its session opener.
func scenarioOpener(kind string) (func(string, Config, scRun, faults.Plan) *ScenarioSession, error) {
	switch kind {
	case scenario.KindTyping:
		return openTyping, nil
	case scenario.KindPowerpoint:
		return openPPT, nil
	case scenario.KindBrowse:
		return openBrowser, nil
	default:
		return nil, fmt.Errorf("scenario: no driver for workload kind %q", kind)
	}
}

// scenarioPlan resolves the document's fault plan against the
// effective seed and mode: derived kinds go through faults.Generate
// (so a scenario plan equals the hand-written experiment's), explicit
// windows are sorted the same way Generate sorts.
func scenarioPlan(doc scenario.Doc, cfg Config) faults.Plan {
	fs := doc.Faults
	if fs == nil {
		return faults.Plan{}
	}
	if len(fs.Kinds) > 0 {
		span := fs.SpanS
		if cfg.Quick && fs.QuickSpanS > 0 {
			span = fs.QuickSpanS
		}
		kinds := make([]faults.Kind, 0, len(fs.Kinds))
		for _, name := range fs.Kinds {
			k, _ := faults.KindByName(name)
			kinds = append(kinds, k)
		}
		return faults.Generate(cfg.Seed, secs(span), kinds...)
	}
	p := faults.Plan{Seed: cfg.Seed}
	for _, w := range fs.Windows {
		k, _ := faults.KindByName(w.Kind)
		p.Faults = append(p.Faults, faults.Fault{
			Kind:      k,
			Start:     simtime.Time(simtime.FromMillis(w.StartMs)),
			Duration:  simtime.FromMillis(w.DurationMs),
			Magnitude: w.Magnitude,
		})
	}
	sort.SliceStable(p.Faults, func(i, j int) bool {
		if p.Faults[i].Start != p.Faults[j].Start {
			return p.Faults[i].Start < p.Faults[j].Start
		}
		return p.Faults[i].Kind < p.Faults[j].Kind
	})
	return p
}

// scenarioScript builds the typing workload's input script: the
// document's explicit stanzas when present, otherwise the seeded
// typist over deterministic filler prose.
func (sc scRun) scenarioScript(startMs float64) *input.Script {
	if len(sc.stanzas) == 0 {
		wpm := defF(sc.prm.WPM, 70)
		ty := input.NewTypist(sc.seed, wpm)
		return &input.Script{
			Events: ty.Type(simtime.Time(simtime.FromMillis(startMs)), input.SampleText(sc.prm.Chars)),
		}
	}
	var evs []input.Event
	for i, st := range sc.stanzas {
		at := simtime.Time(simtime.FromMillis(st.AtMs))
		switch st.Type {
		case "typist":
			// Each stanza forks its own stream so reordering one stanza
			// never reshuffles another's pacing.
			ty := input.NewTypist(sc.seed+uint64(i)*0x9e3779b97f4a7c15, st.WPM)
			evs = append(evs, ty.Type(at, input.SampleText(st.Chars))...)
		case "text":
			evs = append(evs, input.TypeText(at, input.SampleText(st.Chars), simtime.FromMillis(st.PerKeyMs))...)
		case "keydowns":
			vk := st.VK
			if vk == 0 {
				vk = input.VKPageDown
			}
			evs = append(evs, input.KeyDowns(at, vk, st.Count, simtime.FromMillis(st.PerKeyMs))...)
		case "click":
			evs = append(evs, input.Click(at, simtime.FromMillis(st.HoldMs))...)
		case "command":
			evs = append(evs, input.Command(at, st.Cmd))
		}
	}
	s := &input.Script{Events: evs}
	s.Sort()
	return s
}

// defF returns v, or def when v is zero — scenario parameters default
// to the constants the pre-DSL experiments hardcoded.
func defF(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}

// secs converts a float second count to a simulated duration.
func secs(v float64) simtime.Duration { return simtime.Duration(v * float64(simtime.Second)) }

// ScenarioResult is the rendered outcome of a single-run (non-compare)
// scenario: the standard latency-analysis row plus the cliff metrics
// the fuzzer selects on.
type ScenarioResult struct {
	DocID   string
	Banner  string
	Persona string
	Machine string
	Seed    uint64
	Plan    faults.Plan
	Row     ExtFaultsRow
}

// ExperimentID implements Result.
func (r *ScenarioResult) ExperimentID() string { return r.DocID }

// Cliff returns the run's cliff metrics: worst and mean event latency
// in milliseconds, and their ratio (1 when the run had no events).
func (r *ScenarioResult) Cliff() (maxMs, meanMs, ratio float64) {
	s := r.Row.Report.Summary()
	if len(r.Row.Report.Events) == 0 || s.Mean == 0 {
		return s.Max, s.Mean, 1
	}
	return s.Max, s.Mean, s.Max / s.Mean
}

// Render implements Result.
func (r *ScenarioResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Scenario %s — %s\n\n", r.DocID, r.Banner)
	fmt.Fprintf(w, "  persona %s on %s, seed %d\n", r.Persona, r.Machine, r.Seed)
	if r.Plan.Empty() {
		fmt.Fprintf(w, "  fault plan: (no faults)\n")
	} else {
		fmt.Fprintf(w, "  fault plan:\n")
		for _, f := range r.Plan.Faults {
			fmt.Fprintf(w, "    %s\n", f)
		}
	}
	fmt.Fprintln(w)
	row := r.Row
	rep := row.Report
	ia := rep.Interarrival(core.PerceptionThresholdMs)
	fmt.Fprintf(w, "  %4d events  mean %s  >0.1s: %d  total latency %.2fs\n",
		len(rep.Events), fmtMs(rep.Summary().Mean),
		rep.CountAbove(core.PerceptionThresholdMs), rep.TotalLatency().Seconds())
	fmt.Fprintf(w, "  interarrival of >0.1s events: n=%d mean %.2fs sd %.2fs\n",
		ia.Count, ia.MeanSec, ia.StdDevSec)
	fmt.Fprintf(w, "  think %.1fs / wait %.1fs (%d transitions)\n",
		row.ThinkMs/1000, row.WaitMs/1000, row.Transitions)
	fmt.Fprintf(w, "  machine: retries=%d media-errors=%d io-errors=%d evictions=%d interrupts=%d\n",
		row.Retries, row.MediaErrors, row.IOErrors, row.ForcedEvictions, row.Interrupts)
	maxMs, meanMs, ratio := r.Cliff()
	fmt.Fprintf(w, "  cliff: max %s vs mean %s (%.1fx)\n", fmtMs(maxMs), fmtMs(meanMs), ratio)
	fmt.Fprintln(w)
	return nil
}

// Artifacts implements ArtifactProvider.
func (r *ScenarioResult) Artifacts() []Artifact {
	return []Artifact{
		EventsArtifact("run", r.Row.Report.Events),
		ReportArtifact("run", r.Row.Report),
	}
}
