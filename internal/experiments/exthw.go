// The ext-hw experiment family runs persona × machine scenario
// matrices: the paper measured three operating systems on one fixed
// machine (§2.1's 100 MHz Pentium) and *argued* from counters which
// hardware properties its latencies hinged on — clock rate (§5.1),
// L2 warmth (§4), and the untagged TLBs that protection-domain
// crossings flush (§5.3). With the hardware lifted into
// machine.Profile, each argument becomes a runnable counterfactual.
package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/machine"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/stats"
)

// ExtHWCell is one persona-on-machine measurement: warm per-event
// latency plus the per-event hardware-counter rates that explain it.
type ExtHWCell struct {
	Persona string
	Machine string
	// Events is the number of warm events summarized (the cold first
	// event is dropped, as the paper's warm/cold split requires).
	Events int
	// Latency summarizes warm per-event latency in milliseconds.
	Latency stats.Summary
	// TLBMissesPerEvent, CacheMissesPerEvent and CrossingsPerEvent are
	// whole-run counter deltas divided by the event count.
	TLBMissesPerEvent   float64
	CacheMissesPerEvent float64
	CrossingsPerEvent   float64
}

// hwMemCell boots persona p on machine prof and drives keystrokes whose
// handler echoes one character through the persona's Win32 path
// (TextOut: two crossings on NT 3.51, none elsewhere) and then renders
// over `perEvent` cache chunks drawn from a circular `window` of
// distinct chunks. With window == perEvent the working set is fixed
// and L2-resident (misses once, then warm); with window much larger
// than the L2 the handler streams and every reference goes to DRAM on
// every event — the knob that makes an event compute-bound or
// memory-bound on a given machine.
func hwMemCell(cfg Config, p persona.P, prof machine.Profile, keystrokes, perEvent, window int) ExtHWCell {
	r := newRigOn(cfg, p, prof, keystrokes/2+20)
	defer r.shutdown()
	render := cpu.Segment{
		Name: "hw-render", BaseCycles: 100_000,
		Instructions: 60_000, DataRefs: 30_000,
		CodePages: []uint64{400, 401}, DataPages: []uint64{402, 403},
	}
	pos := 0
	app := r.sys.SpawnApp("hwmem", func(tc *kernel.TC) {
		for {
			m := tc.GetMessage()
			if m.Kind == kernel.WMQuit {
				return
			}
			r.sys.Win.TextOut(tc, 1)
			seg := render
			seg.CacheChunks = make([]uint64, perEvent)
			for i := range seg.CacheChunks {
				seg.CacheChunks[i] = 100_000 + uint64((pos+i)%window)
			}
			pos = (pos + perEvent) % window
			tc.Compute(seg)
		}
	})
	r.sys.Win.BindApp([]uint64{400, 401})
	for i := 0; i < keystrokes; i++ {
		at := simtime.Time(500+int64(i)*200) * simtime.Time(simtime.Millisecond)
		r.sys.K.At(at, func(simtime.Time) { r.sys.Inject(kernel.WMKeyDown, 'a', false) })
	}
	before := r.sys.K.CPU().Snapshot()
	r.sys.K.Run(simtime.Time(500+int64(keystrokes)*200)*simtime.Time(simtime.Millisecond) + simtime.Time(2*simtime.Second))
	after := r.sys.K.CPU().Snapshot()

	events := r.extract(app, false)
	cell := ExtHWCell{Persona: p.Name, Machine: prof.Short}
	if len(events) < 2 {
		return cell
	}
	var warm []float64
	for _, ev := range events[1:] { // drop the cold trial
		warm = append(warm, ev.Latency.Milliseconds())
	}
	n := float64(len(events))
	cell.Events = len(warm)
	cell.Latency = stats.Summarize(warm)
	cell.TLBMissesPerEvent = float64(after[cpu.ITLBMisses]-before[cpu.ITLBMisses]+
		after[cpu.DTLBMisses]-before[cpu.DTLBMisses]) / n
	cell.CacheMissesPerEvent = float64(after[cpu.CacheMisses]-before[cpu.CacheMisses]) / n
	cell.CrossingsPerEvent = float64(after[cpu.DomainCrossings]-before[cpu.DomainCrossings]) / n
	return cell
}

// hwKeystrokes picks the session length.
func hwKeystrokes(cfg Config) int {
	if cfg.Quick {
		return 8
	}
	return 24
}

// cellFor returns the cell for (persona, machine short), or a zero cell.
func cellFor(cells []ExtHWCell, persona, short string) ExtHWCell {
	for _, c := range cells {
		if c.Persona == persona && c.Machine == short {
			return c
		}
	}
	return ExtHWCell{}
}

// ---------------------------------------------------------------- clock

// ExtHWClockResult is the ext-hw-clock matrix: every persona on the
// paper's Pentium and on a double-clocked part whose memory penalties
// did not shrink with it.
type ExtHWClockResult struct {
	Base, Fast string // machine shorts
	Cells      []ExtHWCell
}

// ExperimentID implements Result.
func (r *ExtHWClockResult) ExperimentID() string { return "ext-hw-clock" }

// Render implements Result.
func (r *ExtHWClockResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Extension (§5.1) — persona × clock-rate matrix (streaming redraw keystrokes, warm)\n\n")
	fmt.Fprintf(w, "  %-16s %12s %12s %9s\n", "persona", r.Base, r.Fast, "speedup")
	for _, p := range persona.All() {
		base := cellFor(r.Cells, p.Name, r.Base)
		fast := cellFor(r.Cells, p.Name, r.Fast)
		speed := 0.0
		if fast.Latency.Mean > 0 {
			speed = base.Latency.Mean / fast.Latency.Mean
		}
		fmt.Fprintf(w, "  %-16s %10.2fms %10.2fms %8.2fx\n",
			p.Name, base.Latency.Mean, fast.Latency.Mean, speed)
	}
	fmt.Fprintf(w, "\n  Doubling the clock does not halve latency: TLB refills and DRAM\n")
	fmt.Fprintf(w, "  accesses cost the %s more cycles, so the memory-bound share of\n", r.Fast)
	fmt.Fprintf(w, "  each event shrinks less than the compute share — the memory wall\n")
	fmt.Fprintf(w, "  the paper's §5.1 slower-machine remark points at, run in reverse.\n")
	return nil
}

func runExtHWClock(ctx context.Context, cfg Config) (Result, error) {
	machines := []machine.Profile{machine.Pentium100(), machine.Pentium200()}
	res := &ExtHWClockResult{Base: machines[0].Short, Fast: machines[1].Short}
	for _, p := range persona.All() {
		for _, prof := range machines {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			// Stream 4000 chunks per event through a window twice the L2:
			// the redraw's DRAM share cannot be clocked away.
			res.Cells = append(res.Cells, hwMemCell(cfg, p, prof, hwKeystrokes(cfg), 4000, 16384))
		}
	}
	return res, nil
}

// ------------------------------------------------------------------- L2

// ExtHWL2Result is the ext-hw-l2 matrix: a cache-resident render loop
// on the paper's Pentium versus the same part with its L2 removed.
type ExtHWL2Result struct {
	Base, NoL2 string
	Cells      []ExtHWCell
}

// ExperimentID implements Result.
func (r *ExtHWL2Result) ExperimentID() string { return "ext-hw-l2" }

// Render implements Result.
func (r *ExtHWL2Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Extension (§4) — L2 warmth: cache-heavy keystrokes with and without an L2\n\n")
	fmt.Fprintf(w, "  %-10s %12s %14s %16s\n", "machine", "warm mean", "warm max", "cache miss/evt")
	for _, short := range []string{r.Base, r.NoL2} {
		c := cellFor(r.Cells, persona.NT40().Name, short)
		fmt.Fprintf(w, "  %-10s %10.2fms %12.2fms %16.0f\n",
			short, c.Latency.Mean, c.Latency.Max, c.CacheMissesPerEvent)
	}
	base := cellFor(r.Cells, persona.NT40().Name, r.Base)
	noL2 := cellFor(r.Cells, persona.NT40().Name, r.NoL2)
	fmt.Fprintf(w, "\n  delta: %+.2fms per keystroke\n", noL2.Latency.Mean-base.Latency.Mean)
	fmt.Fprintf(w, "\n  With an L2 the working set misses once and stays resident; without\n")
	fmt.Fprintf(w, "  one every reference goes to DRAM on every event — the paper's warm/\n")
	fmt.Fprintf(w, "  cold distinction (§4) is entirely a statement about this cache.\n")
	return nil
}

func runExtHWL2(ctx context.Context, cfg Config) (Result, error) {
	machines := []machine.Profile{machine.Pentium100(), machine.P100NoL2()}
	res := &ExtHWL2Result{Base: machines[0].Short, NoL2: machines[1].Short}
	for _, prof := range machines {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		// The same 6000 chunks every event: fits the 8192-line L2, so it
		// misses once and stays warm — unless there is no L2 at all.
		res.Cells = append(res.Cells, hwMemCell(cfg, persona.NT40(), prof, hwKeystrokes(cfg), 6000, 6000))
	}
	return res, nil
}

// ------------------------------------------------------------------ TLB

// ExtHWTLBResult is the ext-hw-tlb matrix: the two NT personas on the
// paper's untagged-TLB Pentium and on a hypothetical tagged-TLB part.
// The paper attributes part of the NT 3.51 / NT 4.0 latency difference
// to the TLB flushes its server architecture forces — "at least 23-25%"
// (§5.3); tagging the TLBs deletes the flushes without touching the OS,
// so the gap shrinks by exactly the flush share, and what remains is
// the direct crossing cost, the longer server paths, and the CSRSS
// image overflowing the 32-entry ITLB.
type ExtHWTLBResult struct {
	Base, Tagged string
	Cells        []ExtHWCell
	// GapBase and GapTagged are the NT 3.51 − NT 4.0 warm-mean gaps (ms)
	// on each machine; CollapsePct is how much of the gap the tagged TLB
	// removed.
	GapBase, GapTagged float64
	CollapsePct        float64
	// FlushPenalty is NT 3.51's flush-induced latency (ms/event): its
	// warm mean on the untagged machine minus the tagged one. The tagged
	// TLB erases all of it by construction; reporting it shows how much
	// of the persona's own latency the crossings' flushes cost.
	FlushPenalty float64
}

// hwCrossCell measures a crossing-heavy event: each keystroke makes
// `calls` Win32 calls, and after every call the application recomputes
// over a 48-page data window. On NT 3.51's untagged machine the return
// crossing has flushed the DTLB, so that window refills on every call;
// NT 4.0 pays one refill per event (the process-switch flush), and a
// tagged TLB pays none.
func hwCrossCell(cfg Config, p persona.P, prof machine.Profile, keystrokes, calls int) ExtHWCell {
	r := newRigOn(cfg, p, prof, keystrokes/2+20)
	defer r.shutdown()
	appData := make([]uint64, 48)
	for i := range appData {
		appData[i] = 1500 + uint64(i)
	}
	work := cpu.Segment{
		Name: "hw-crosswork", BaseCycles: 6000,
		Instructions: 3600, DataRefs: 1800,
		CodePages: []uint64{320, 321}, DataPages: appData,
	}
	app := r.sys.SpawnApp("hwcross", func(tc *kernel.TC) {
		for {
			m := tc.GetMessage()
			if m.Kind == kernel.WMQuit {
				return
			}
			for i := 0; i < calls; i++ {
				r.sys.Win.DefWindowProc(tc)
				tc.Compute(work)
			}
		}
	})
	r.sys.Win.BindApp([]uint64{320, 321})
	for i := 0; i < keystrokes; i++ {
		at := simtime.Time(500+int64(i)*200) * simtime.Time(simtime.Millisecond)
		r.sys.K.At(at, func(simtime.Time) { r.sys.Inject(kernel.WMKeyDown, 'a', false) })
	}
	before := r.sys.K.CPU().Snapshot()
	r.sys.K.Run(simtime.Time(500+int64(keystrokes)*200)*simtime.Time(simtime.Millisecond) + simtime.Time(2*simtime.Second))
	after := r.sys.K.CPU().Snapshot()

	events := r.extract(app, false)
	cell := ExtHWCell{Persona: p.Name, Machine: prof.Short}
	if len(events) < 2 {
		return cell
	}
	var warm []float64
	for _, ev := range events[1:] {
		warm = append(warm, ev.Latency.Milliseconds())
	}
	n := float64(len(events))
	cell.Events = len(warm)
	cell.Latency = stats.Summarize(warm)
	cell.TLBMissesPerEvent = float64(after[cpu.ITLBMisses]-before[cpu.ITLBMisses]+
		after[cpu.DTLBMisses]-before[cpu.DTLBMisses]) / n
	cell.CrossingsPerEvent = float64(after[cpu.DomainCrossings]-before[cpu.DomainCrossings]) / n
	return cell
}

// ExperimentID implements Result.
func (r *ExtHWTLBResult) ExperimentID() string { return "ext-hw-tlb" }

// Render implements Result.
func (r *ExtHWTLBResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Extension (§5.3) — tagged-TLB counterfactual (crossing-heavy keystrokes, warm)\n\n")
	fmt.Fprintf(w, "  %-16s %-8s %10s %14s %14s\n", "persona", "machine", "mean", "TLB miss/evt", "crossings/evt")
	for _, p := range persona.NTs() {
		for _, short := range []string{r.Base, r.Tagged} {
			c := cellFor(r.Cells, p.Name, short)
			fmt.Fprintf(w, "  %-16s %-8s %8.2fms %14.1f %14.1f\n",
				p.Name, short, c.Latency.Mean, c.TLBMissesPerEvent, c.CrossingsPerEvent)
		}
	}
	fmt.Fprintf(w, "\n  NT 3.51 − NT 4.0 gap: %.2fms on %s, %.2fms on %s (%.0f%% collapsed)\n",
		r.GapBase, r.Base, r.GapTagged, r.Tagged, r.CollapsePct)
	fmt.Fprintf(w, "  NT 3.51 flush-induced penalty: %.2fms/event on %s, erased on %s\n",
		r.FlushPenalty, r.Base, r.Tagged)
	fmt.Fprintf(w, "\n  Tagging the TLBs keeps every crossing but deletes its flush: NT 3.51's\n")
	fmt.Fprintf(w, "  refill misses vanish and its latency collapses toward NT 4.0's. The\n")
	fmt.Fprintf(w, "  residual gap is the direct crossing cost, the longer server paths, and\n")
	fmt.Fprintf(w, "  the CSRSS image overflowing the 32-entry ITLB — matching the paper's\n")
	fmt.Fprintf(w, "  attribution that TLB misses are \"at least 23-25%%\" of the difference\n")
	fmt.Fprintf(w, "  (§5.3), run as an experiment instead of an argument.\n")
	return nil
}

func runExtHWTLB(ctx context.Context, cfg Config) (Result, error) {
	machines := []machine.Profile{machine.Pentium100(), machine.PentiumTaggedTLB()}
	res := &ExtHWTLBResult{Base: machines[0].Short, Tagged: machines[1].Short}
	keystrokes, calls := 30, 4
	if cfg.Quick {
		keystrokes = 10
	}
	for _, p := range persona.NTs() {
		for _, prof := range machines {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			res.Cells = append(res.Cells, hwCrossCell(cfg, p, prof, keystrokes, calls))
		}
	}
	nt351, nt40 := persona.NT351().Name, persona.NT40().Name
	res.GapBase = cellFor(res.Cells, nt351, res.Base).Latency.Mean - cellFor(res.Cells, nt40, res.Base).Latency.Mean
	res.GapTagged = cellFor(res.Cells, nt351, res.Tagged).Latency.Mean - cellFor(res.Cells, nt40, res.Tagged).Latency.Mean
	if res.GapBase != 0 {
		res.CollapsePct = 100 * (1 - res.GapTagged/res.GapBase)
	}
	res.FlushPenalty = cellFor(res.Cells, nt351, res.Base).Latency.Mean - cellFor(res.Cells, nt351, res.Tagged).Latency.Mean
	return res, nil
}

func init() {
	Register(Spec{ID: "ext-hw-clock", Title: "Persona × clock-rate scenario matrix",
		Paper: "§5.1 (extension)", Run: runExtHWClock})
	Register(Spec{ID: "ext-hw-l2", Title: "L2 cache warmth counterfactual",
		Paper: "§4 (extension)", Run: runExtHWL2})
	Register(Spec{ID: "ext-hw-tlb", Title: "Tagged-TLB counterfactual for the NT architecture gap",
		Paper: "§5.3 (extension)", Run: runExtHWTLB})
}
