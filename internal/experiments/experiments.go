// Package experiments reproduces every table and figure in the paper's
// evaluation. Each experiment is a Spec in the registry; running one
// boots the personas it needs, drives the workload, measures it with the
// internal/core methodology, and returns a typed Result that can render
// itself in the paper's format (via internal/viz) and that tests and
// benchmarks assert shape properties against.
//
// The per-experiment index lives in DESIGN.md; measured-vs-paper numbers
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"io"
	"sort"

	"latlab/internal/core"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/system"
)

// Config tunes an experiment run.
type Config struct {
	// Seed drives every stochastic model (typist pacing, disk rotation).
	Seed uint64
	// Quick trims workload sizes so the full suite stays fast in tests;
	// benchmarks and the CLI run the paper-sized workloads.
	Quick bool
}

// DefaultConfig returns the paper-sized configuration.
func DefaultConfig() Config { return Config{Seed: 1996} }

// Result is a rendered experiment outcome.
type Result interface {
	// ExperimentID returns the registry id ("fig7", "table1", ...).
	ExperimentID() string
	// Render writes the paper-style presentation.
	Render(w io.Writer) error
}

// EventsExporter is implemented by results that can export their raw
// per-event data (for external plotting); cmd/latbench writes one CSV
// per named event set when -csv-dir is given.
type EventsExporter interface {
	// EventSets returns named event lists, e.g. {"nt40": [...]}.
	EventSets() map[string][]core.Event
}

// ProfileExporter is implemented by results that can export utilization
// profiles (for external plotting).
type ProfileExporter interface {
	// ProfileSets returns named profiles, e.g. {"nt40-full": [...]}.
	ProfileSets() map[string][]core.ProfilePoint
}

// ReportExporter is implemented by results built on latency reports;
// cmd/latbench renders their histograms and cumulative curves as SVG.
type ReportExporter interface {
	// Reports returns named reports, e.g. {"Windows NT 4.0": ...}.
	Reports() map[string]*core.Report
}

// Spec describes one registered experiment.
type Spec struct {
	// ID is the registry key, matching the paper artifact ("fig1"..).
	ID string
	// Title is a one-line description.
	Title string
	// Paper cites the reproduced artifact.
	Paper string
	// Run executes the experiment.
	Run func(cfg Config) Result
}

var registry []Spec

func register(s Spec) {
	registry = append(registry, s)
}

// All returns every registered experiment in paper order.
func All() []Spec {
	out := append([]Spec(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool { return order(out[i].ID) < order(out[j].ID) })
	return out
}

// order fixes presentation order to follow the paper.
func order(id string) int {
	for i, v := range []string{"fig1", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "table1", "fig9", "fig10", "fig11", "table2", "fig12", "s54",
		"ext-batching", "ext-thinkwait", "ext-metric", "ext-slowcpu", "ext-interrupts"} {
		if v == id {
			return i
		}
	}
	return 99
}

// ByID returns the experiment with the given id.
func ByID(id string) (Spec, bool) {
	for _, s := range registry {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// rig is a booted, instrumented machine.
type rig struct {
	sys *system.System
	pr  *core.Probe
	il  *core.IdleLoop
}

// newRig boots persona p with probe and idle-loop instrumentation sized
// for runSeconds of simulated time.
func newRig(p persona.P, runSeconds int) *rig {
	sys := system.Boot(p)
	pr := core.AttachProbe(sys.K)
	il := core.StartIdleLoop(sys.K, runSeconds*1100+10_000)
	return &rig{sys: sys, pr: pr, il: il}
}

func (r *rig) shutdown() { r.sys.Shutdown() }

// extract pulls the events of thread from the instrumentation.
func (r *rig) extract(t *kernel.Thread, strip bool) []core.Event {
	return core.Extract(r.il.Samples(), r.pr.Msgs, core.ExtractOptions{
		Thread:         t.ID(),
		StripQueueSync: strip,
	})
}

// chainStep is one completion-paced input: the driver waits for the
// application to go quiescent, pauses for think time, then injects —
// how a scripted "user" (or Microsoft Test's wait-for-idle) really paces
// a task like the paper's PowerPoint scenario.
type chainStep struct {
	kind  kernel.MsgKind
	param int64
	sync  bool
	think simtime.Duration
}

// step builds a chainStep.
func step(kind kernel.MsgKind, param int64, think simtime.Duration) chainStep {
	return chainStep{kind: kind, param: param, think: think}
}

// driveChain installs a completion-paced driver for steps on sys. The
// final completion time is written to *done (simtime zero until then).
func driveChain(sys *system.System, steps []chainStep, sync bool, done *simtime.Time) {
	const poll = 20 * simtime.Millisecond
	quiescent := func() bool {
		f := sys.Focus()
		return f.State() == kernel.StateBlockedMsg && f.QueueLen() == 0 &&
			sys.K.SyncIOOutstanding() == 0
	}
	var issue func(i int)
	waitQuiet := func(next func(now simtime.Time)) {
		var check func(now simtime.Time)
		check = func(now simtime.Time) {
			if quiescent() {
				next(now)
				return
			}
			sys.K.At(now.Add(poll), check)
		}
		sys.K.At(sys.K.Now().Add(poll), check)
	}
	issue = func(i int) {
		if i >= len(steps) {
			*done = sys.K.Now()
			return
		}
		st := steps[i]
		sys.K.At(sys.K.Now().Add(st.think), func(now simtime.Time) {
			sys.Inject(st.kind, st.param, sync || st.sync)
			waitQuiet(func(simtime.Time) { issue(i + 1) })
		})
	}
	waitQuiet(func(simtime.Time) { issue(0) })
}

// runChain drives steps to completion (or the deadline) and returns the
// completion time.
func runChain(sys *system.System, steps []chainStep, sync bool, deadline simtime.Time) simtime.Time {
	var done simtime.Time
	driveChain(sys, steps, sync, &done)
	for sys.K.Now() < deadline && done == 0 {
		sys.K.RunFor(500 * simtime.Millisecond)
	}
	if done == 0 {
		panic(fmt.Sprintf("experiments: chain did not complete by %v", deadline))
	}
	// Trailing time so the last event's quiescence is recorded.
	sys.K.RunFor(2 * simtime.Second)
	return done
}

// fmtMs formats a millisecond value compactly.
func fmtMs(ms float64) string {
	if ms >= 1000 {
		return fmt.Sprintf("%.3fs", ms/1000)
	}
	return fmt.Sprintf("%.2fms", ms)
}
