// Package experiments reproduces every table and figure in the paper's
// evaluation. Each experiment is a Spec in the registry; running one
// boots the personas it needs, drives the workload, measures it with the
// internal/core methodology, and returns a typed Result that can render
// itself in the paper's format (via internal/viz) and that tests and
// benchmarks assert shape properties against.
//
// The per-experiment index lives in DESIGN.md; measured-vs-paper numbers
// are recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"io"
	"sort"

	"latlab/internal/core"
	"latlab/internal/kernel"
	"latlab/internal/machine"
	"latlab/internal/persona"
	"latlab/internal/scenario"
	"latlab/internal/simtime"
	"latlab/internal/spans"
	"latlab/internal/system"
	"latlab/internal/trace"
)

// Config tunes an experiment run.
type Config struct {
	// Seed drives every stochastic model (typist pacing, disk rotation).
	Seed uint64
	// Quick trims workload sizes so the full suite stays fast in tests;
	// benchmarks and the CLI run the paper-sized workloads.
	Quick bool
	// Machine is the hardware profile every rig boots on; the zero value
	// means the paper's Pentium (machine.Pentium100). Experiments that
	// compare machines (the ext-hw family) ignore it and boot their own.
	Machine machine.Profile
	// Trace, when non-nil, attaches a span recorder to every rig the
	// experiment boots and deposits each rig's span log as a named track
	// ("persona @ machine") at shutdown. Tracing never perturbs the
	// simulation; leaving Trace nil keeps the exact untraced code path.
	Trace *spans.Collector
	// TraceTag, when set, prefixes every track name this run deposits
	// ("tag: persona @ machine"). The runner sets it to the spec id so a
	// suite-wide trace names tracks identically for any job count —
	// without it, same-named tracks from different experiments would get
	// completion-order-dependent "#n" suffixes.
	TraceTag string
	// Engine selects the simulation-core strategy for every machine this
	// run boots. The zero value is the reference engine; the batched
	// engine (kernel.BatchedEngine) produces byte-identical results
	// faster. Campaigns default to batched; goldens pin the reference.
	Engine kernel.Engine
	// IdleArena, when non-nil, points at a reusable backing array for
	// the idle-loop instrument's sample buffer. The rig grows the arena
	// to the capacity it needs (writing the grown array back through the
	// pointer) and records into it instead of allocating fresh — the
	// batch engine keeps one arena per machine slot across sessions. The
	// buffer's capacity is the same either way, so recorded behaviour is
	// identical.
	IdleArena *[]trace.IdleSample
}

// DefaultConfig returns the paper-sized configuration.
func DefaultConfig() Config { return Config{Seed: 1996} }

// MachineProfile returns the configured hardware profile, defaulted.
func (c Config) MachineProfile() machine.Profile { return c.Machine.OrDefault() }

// Result is a rendered experiment outcome.
type Result interface {
	// ExperimentID returns the registry id ("fig7", "table1", ...).
	ExperimentID() string
	// Render writes the paper-style presentation.
	Render(w io.Writer) error
}

// ArtifactKind classifies the data an Artifact carries.
type ArtifactKind uint8

// Artifact kinds.
const (
	// ArtifactEvents is a named list of extracted interactive events;
	// cmd/latbench exports it as a CSV and an SVG time series.
	ArtifactEvents ArtifactKind = iota
	// ArtifactProfile is a named CPU-utilization profile; cmd/latbench
	// exports it as an SVG profile plot.
	ArtifactProfile
	// ArtifactReport is a named latency report; cmd/latbench exports its
	// histogram and cumulative curve as SVGs.
	ArtifactReport
)

// String returns the manifest name of the kind.
func (k ArtifactKind) String() string {
	switch k {
	case ArtifactEvents:
		return "events"
	case ArtifactProfile:
		return "profile"
	case ArtifactReport:
		return "report"
	default:
		return fmt.Sprintf("ArtifactKind(%d)", uint8(k))
	}
}

// Artifact is one exportable data product of an experiment: raw events,
// a utilization profile, or a latency report. Exactly one of Events,
// Profile, Report is set, selected by Kind. Artifacts replace the former
// per-capability exporter interfaces so cmd/latbench (and the runner's
// manifest) handle every result uniformly and in a deterministic order.
type Artifact struct {
	Kind ArtifactKind
	// Name distinguishes artifacts of the same kind, e.g. the persona.
	Name string

	Events  []core.Event
	Profile []core.ProfilePoint
	Report  *core.Report
}

// Samples returns the number of data points the artifact carries.
func (a Artifact) Samples() int {
	switch a.Kind {
	case ArtifactEvents:
		return len(a.Events)
	case ArtifactProfile:
		return len(a.Profile)
	case ArtifactReport:
		if a.Report != nil {
			return len(a.Report.Events)
		}
	}
	return 0
}

// EventsArtifact builds an ArtifactEvents artifact.
func EventsArtifact(name string, events []core.Event) Artifact {
	return Artifact{Kind: ArtifactEvents, Name: name, Events: events}
}

// ProfileArtifact builds an ArtifactProfile artifact.
func ProfileArtifact(name string, pts []core.ProfilePoint) Artifact {
	return Artifact{Kind: ArtifactProfile, Name: name, Profile: pts}
}

// ReportArtifact builds an ArtifactReport artifact.
func ReportArtifact(name string, rep *core.Report) Artifact {
	return Artifact{Kind: ArtifactReport, Name: name, Report: rep}
}

// ArtifactProvider is implemented by results that carry exportable data
// products. The returned slice order is the export order, so it must be
// deterministic for a given result.
type ArtifactProvider interface {
	Artifacts() []Artifact
}

// Spec describes one registered experiment.
type Spec struct {
	// ID is the registry key, matching the paper artifact ("fig1"..).
	ID string
	// Title is a one-line description.
	Title string
	// Paper cites the reproduced artifact.
	Paper string
	// Run executes the experiment. It must honor ctx cancellation at
	// persona/trial granularity (the runner additionally enforces hard
	// timeouts from outside) and report failures as errors rather than
	// writing to the result.
	Run func(ctx context.Context, cfg Config) (Result, error)
	// Scenario is the declarative document this spec was compiled from
	// (FromScenario), nil for hand-written experiments. The runner
	// copies it into the manifest so a -json record carries the full
	// declarative config of every file-backed run.
	Scenario *scenario.Doc
}

var registry []Spec

// Register adds s to the experiment registry. It panics on a duplicate,
// empty, or Run-less spec so a misdeclared experiment fails at init time
// rather than silently shadowing another.
func Register(s Spec) {
	if s.ID == "" {
		panic("experiments: Register with empty ID")
	}
	if s.Run == nil {
		panic(fmt.Sprintf("experiments: Register(%s) with nil Run", s.ID))
	}
	for _, old := range registry {
		if old.ID == s.ID {
			panic(fmt.Sprintf("experiments: duplicate experiment ID %q", s.ID))
		}
	}
	registry = append(registry, s)
}

// All returns every registered experiment in paper order.
func All() []Spec {
	return sortSpecs(registry)
}

// paperOrder fixes presentation order to follow the paper.
var paperOrder = map[string]int{}

func init() {
	for i, id := range []string{"fig1", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "table1", "fig9", "fig10", "fig11", "table2", "fig12", "s54",
		"ext-batching", "ext-thinkwait", "ext-metric", "ext-slowcpu", "ext-interrupts",
		"ext-faults-disk", "ext-faults-irq", "ext-faults-cache",
		"ext-hw-clock", "ext-hw-l2", "ext-hw-tlb", "ext-attrib",
		"ext-modern-clock", "ext-modern-dvfs", "ext-modern-nvme",
		"ext-modern-irq", "ext-modern-smt"} {
		paperOrder[id] = i
	}
}

// sortSpecs returns a copy of specs in paper order. IDs the paper
// ordering does not know sort after every known one and keep their
// relative order in specs (registration order), so new experiments get a
// stable position without editing the paper list.
func sortSpecs(specs []Spec) []Spec {
	out := append([]Spec(nil), specs...)
	rank := func(id string) int {
		if r, ok := paperOrder[id]; ok {
			return r
		}
		return len(paperOrder)
	}
	sort.SliceStable(out, func(i, j int) bool { return rank(out[i].ID) < rank(out[j].ID) })
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Spec, bool) {
	for _, s := range registry {
		if s.ID == id {
			return s, true
		}
	}
	return Spec{}, false
}

// rig is a booted, instrumented machine.
type rig struct {
	sys *system.System
	pr  *core.Probe
	il  *core.IdleLoop

	// rec is the attached span recorder, nil when untraced; col (with
	// track) is where shutdown deposits the span log.
	rec   *spans.Recorder
	col   *spans.Collector
	track string
}

// newRig boots persona p on cfg's machine profile with probe and
// idle-loop instrumentation sized for runSeconds of simulated time.
func newRig(cfg Config, p persona.P, runSeconds int) *rig {
	return newRigOn(cfg, p, cfg.MachineProfile(), runSeconds)
}

// newRigOn boots persona p on an explicit hardware profile; the ext-hw
// scenario-matrix experiments use it to compare machines side by side.
func newRigOn(cfg Config, p persona.P, prof machine.Profile, runSeconds int) *rig {
	sys := system.New(system.Config{Persona: p, Machine: prof, Engine: cfg.Engine})
	pr := core.AttachProbe(sys.K)
	bufCap := runSeconds*1100 + 10_000
	var il *core.IdleLoop
	if cfg.IdleArena != nil {
		if cap(*cfg.IdleArena) < bufCap {
			*cfg.IdleArena = make([]trace.IdleSample, 0, bufCap)
		}
		il = core.StartIdleLoopBuffer(sys.K, trace.NewBufferBacked((*cfg.IdleArena)[:0:bufCap]))
	} else {
		il = core.StartIdleLoop(sys.K, bufCap)
	}
	r := &rig{sys: sys, pr: pr, il: il}
	if cfg.Trace != nil {
		r.col = cfg.Trace
		r.track = p.Name + " @ " + prof.OrDefault().Short
		if cfg.TraceTag != "" {
			r.track = cfg.TraceTag + ": " + r.track
		}
		r.spansOn()
	}
	return r
}

// spansOn attaches a span recorder to the rig's kernel (pre-grown so
// steady-state recording stays allocation-free) and returns it; repeat
// calls return the already-attached recorder.
func (r *rig) spansOn() *spans.Recorder {
	if r.rec == nil {
		rec := spans.NewRecorder(r.sys.K.Now)
		rec.Grow(1 << 16)
		r.sys.K.SetRecorder(rec)
		r.rec = rec
	}
	return r.rec
}

func (r *rig) shutdown() {
	r.sys.Shutdown()
	if r.col != nil {
		r.col.Add(r.track, r.rec.Spans())
	}
}

// extract pulls the events of thread from the instrumentation.
func (r *rig) extract(t *kernel.Thread, strip bool) []core.Event {
	return core.Extract(r.il.Samples(), r.pr.Msgs, core.ExtractOptions{
		Thread:         t.ID(),
		StripQueueSync: strip,
	})
}

// chainStep is one completion-paced input: the driver waits for the
// application to go quiescent, pauses for think time, then injects —
// how a scripted "user" (or Microsoft Test's wait-for-idle) really paces
// a task like the paper's PowerPoint scenario.
type chainStep struct {
	kind  kernel.MsgKind
	param int64
	sync  bool
	think simtime.Duration
}

// step builds a chainStep.
func step(kind kernel.MsgKind, param int64, think simtime.Duration) chainStep {
	return chainStep{kind: kind, param: param, think: think}
}

// driveChain installs a completion-paced driver for steps on sys. The
// final completion time is written to *done (simtime zero until then).
func driveChain(sys *system.System, steps []chainStep, sync bool, done *simtime.Time) {
	const poll = 20 * simtime.Millisecond
	quiescent := func() bool {
		f := sys.Focus()
		return f.State() == kernel.StateBlockedMsg && f.QueueLen() == 0 &&
			sys.K.SyncIOOutstanding() == 0
	}
	var issue func(i int)
	waitQuiet := func(next func(now simtime.Time)) {
		var check func(now simtime.Time)
		check = func(now simtime.Time) {
			if quiescent() {
				next(now)
				return
			}
			sys.K.At(now.Add(poll), check)
		}
		sys.K.At(sys.K.Now().Add(poll), check)
	}
	issue = func(i int) {
		if i >= len(steps) {
			*done = sys.K.Now()
			return
		}
		st := steps[i]
		sys.K.At(sys.K.Now().Add(st.think), func(now simtime.Time) {
			sys.Inject(st.kind, st.param, sync || st.sync)
			waitQuiet(func(simtime.Time) { issue(i + 1) })
		})
	}
	waitQuiet(func(simtime.Time) { issue(0) })
}

// runChain drives steps to completion (or the deadline) and returns the
// completion time.
func runChain(sys *system.System, steps []chainStep, sync bool, deadline simtime.Time) simtime.Time {
	var done simtime.Time
	driveChain(sys, steps, sync, &done)
	for sys.K.Now() < deadline && done == 0 {
		sys.K.RunFor(500 * simtime.Millisecond)
	}
	if done == 0 {
		panic(fmt.Sprintf("experiments: chain did not complete by %v", deadline))
	}
	// Trailing time so the last event's quiescence is recorded.
	sys.K.RunFor(2 * simtime.Second)
	return done
}

// fmtMs formats a millisecond value compactly.
func fmtMs(ms float64) string {
	if ms >= 1000 {
		return fmt.Sprintf("%.3fs", ms/1000)
	}
	return fmt.Sprintf("%.2fms", ms)
}
