package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/core"
	"latlab/internal/cpu"
	"latlab/internal/persona"
	"latlab/internal/simtime"
)

// ExtInterruptsResult measures per-class interrupt handling overhead by
// coupling the idle loop with the hardware counters — the §2.5 claim:
// "By coupling our idle-loop methodology with the Pentium counters, we
// were able to compute the interrupt handling overhead for various
// classes of interrupts — measurements difficult to obtain using
// conventional methods."
type ExtInterruptsResult struct {
	Classes []string
	Systems []ExtInterruptsRow
}

// ExtInterruptsRow is one persona's per-class overhead in cycles.
type ExtInterruptsRow struct {
	Persona string
	Cycles  map[string]float64
}

// ExperimentID implements Result.
func (r *ExtInterruptsResult) ExperimentID() string { return "ext-interrupts" }

// Render implements Result.
func (r *ExtInterruptsResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Extension (§2.5) — interrupt handling overhead by class (cycles, via idle loop + counters)\n\n")
	fmt.Fprintf(w, "  %-18s", "system")
	for _, c := range r.Classes {
		fmt.Fprintf(w, " %10s", c)
	}
	fmt.Fprintln(w)
	for _, row := range r.Systems {
		fmt.Fprintf(w, "  %-18s", row.Persona)
		for _, c := range r.Classes {
			fmt.Fprintf(w, " %10.0f", row.Cycles[c])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\n  Measured as stolen idle-loop time per interrupt, baseline-corrected\n")
	fmt.Fprintf(w, "  for clock-tick activity; counts verified against the interrupt counter.\n")
	return nil
}

func runExtInterrupts(ctx context.Context, cfg Config) (Result, error) {
	const n = 200
	classes := []string{"clock", "keyboard", "mouse", "disk"}
	res := &ExtInterruptsResult{Classes: classes}
	for _, p := range persona.All() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row := ExtInterruptsRow{Persona: p.Name, Cycles: map[string]float64{}}

		stolenOf := func(inject func(k *rigKernel)) (stolen simtime.Duration, interrupts int64) {
			r := newRig(cfg, p, 5)
			defer r.shutdown()
			before := r.sys.K.CPU().Count(cpu.Interrupts)
			if inject != nil {
				inject(&rigKernel{r})
			}
			r.sys.K.Run(simtime.Time(3 * simtime.Second))
			for _, s := range r.il.Samples() {
				stolen += s.Stolen(core.NominalSample)
			}
			return stolen, r.sys.K.CPU().Count(cpu.Interrupts) - before
		}

		// Baseline: clock ticks (and W95 housekeeping) only.
		baseStolen, baseIntr := stolenOf(nil)
		row.Cycles["clock"] = float64(p.Kernel.ClockInterrupt.BaseCycles)
		_ = baseIntr

		handlers := map[string]cpu.Segment{
			"keyboard": p.Kernel.KeyboardInterrupt,
			"mouse":    p.Kernel.MouseInterrupt,
			"disk":     p.Kernel.DiskInterrupt,
		}
		// Fixed order (not map order): with tracing on, rig creation
		// order names the span tracks, and those must not vary run to run.
		for _, name := range classes[1:] {
			seg := handlers[name]
			stolen, _ := stolenOf(func(rk *rigKernel) {
				// Raise n raw interrupts off the tick grid.
				for i := 0; i < n; i++ {
					at := simtime.Time(100*simtime.Millisecond) +
						simtime.Time(i)*simtime.Time(7*simtime.Millisecond) + 1
					rk.r.sys.K.At(at, func(simtime.Time) {
						rk.r.sys.K.RaiseInterrupt(seg, nil)
					})
				}
			})
			extra := stolen - baseStolen
			row.Cycles[name] = float64(cfg.MachineProfile().ClockHz.CyclesIn(extra)) / n
		}
		res.Systems = append(res.Systems, row)
	}
	return res, nil
}

// rigKernel is a tiny wrapper so the inject closure reads naturally.
type rigKernel struct{ r *rig }

func init() {
	Register(Spec{ID: "ext-interrupts", Title: "Interrupt handling overhead by class",
		Paper: "§2.5 (extension)", Run: runExtInterrupts})
}
