package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/apps"
	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/stats"
	"latlab/internal/system"
)

// Fig1Result validates the idle-loop methodology against conventional
// in-application timestamps (paper Fig. 1 and §2.3): the idle loop sees
// the interrupt-handling and rescheduling time that a getchar()-style
// measurement misses.
type Fig1Result struct {
	// IdleLoop and Conventional summarize per-keystroke latency (ms).
	IdleLoop     stats.Summary
	Conventional stats.Summary
	// DiscrepancyMs is the mean missed system time.
	DiscrepancyMs float64
	// SampleElapsedMs lists the idle-sample durations around the first
	// keystroke (the A-E samples of Fig. 1).
	SampleElapsedMs []float64
}

// ExperimentID implements Result.
func (r *Fig1Result) ExperimentID() string { return "fig1" }

// Render implements Result.
func (r *Fig1Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 1 — Validation of the idle-loop methodology (echo microbenchmark)\n\n")
	fmt.Fprintf(w, "  idle-loop latency:     %s  (std %.1f%%)\n",
		fmtMs(r.IdleLoop.Mean), 100*r.IdleLoop.RelStdDev())
	fmt.Fprintf(w, "  conventional latency:  %s  (timestamps inside the application)\n",
		fmtMs(r.Conventional.Mean))
	fmt.Fprintf(w, "  discrepancy:           %s  — interrupt handling + rescheduling\n",
		fmtMs(r.DiscrepancyMs))
	fmt.Fprintf(w, "\n  idle samples around the first keystroke (ms):")
	for _, s := range r.SampleElapsedMs {
		fmt.Fprintf(w, " %.2f", s)
	}
	_, err := fmt.Fprintln(w)
	return err
}

func runFig1(ctx context.Context, cfg Config) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := persona.NT40()
	r := newRig(cfg, p, 20)
	defer r.shutdown()

	// The paper's test program is console-style: keystrokes travel
	// through KERNEL32 and a console server before the benchmark thread
	// is rescheduled — the system time the conventional measurement
	// misses. Route input through a console-server thread.
	consoleSeg := cpu.Segment{Name: "console-server", BaseCycles: 200_000,
		Instructions: 120_000, DataRefs: 50_000,
		CodePages: []uint64{600, 601, 602, 603}, DataPages: []uint64{620, 621}}
	echo := apps.NewEcho(r.sys, 560_000) // ≈5.6 ms of "some computation"
	app := echo.Thread()
	console := r.sys.K.Spawn("console", kernel.KernelProc, system.RouterPrio,
		func(tc *kernel.TC) {
			for {
				m := tc.GetMessage()
				tc.Compute(consoleSeg)
				tc.Forward(app, m)
			}
		})
	r.sys.SetFocus(console)

	trials := 10
	if cfg.Quick {
		trials = 4
	}
	for i := 0; i < trials; i++ {
		at := simtime.Time(500+int64(i)*400) * simtime.Time(simtime.Millisecond)
		r.sys.K.At(at, func(simtime.Time) { r.sys.Inject(kernel.WMChar, 'x', false) })
	}
	r.sys.K.Run(simtime.Time(500+int64(trials)*400+500) * simtime.Time(simtime.Millisecond))

	events := r.extract(app, false)
	res := &Fig1Result{}
	var idleMs, convMs []float64
	for i, e := range events {
		idleMs = append(idleMs, e.Latency.Milliseconds())
		if i < len(echo.Conventional) {
			convMs = append(convMs, echo.Conventional[i].Milliseconds())
		}
	}
	res.IdleLoop = stats.Summarize(idleMs)
	res.Conventional = stats.Summarize(convMs)
	res.DiscrepancyMs = res.IdleLoop.Mean - res.Conventional.Mean

	// Samples around the first keystroke: two before, through two after
	// the elongated one.
	if len(events) > 0 {
		first := events[0]
		samples := r.il.Samples()
		for i, s := range samples {
			if s.Done >= first.Enqueued {
				lo := i - 2
				if lo < 0 {
					lo = 0
				}
				hi := i + 3
				if hi > len(samples) {
					hi = len(samples)
				}
				for _, ss := range samples[lo:hi] {
					res.SampleElapsedMs = append(res.SampleElapsedMs, ss.Elapsed.Milliseconds())
				}
				break
			}
		}
	}
	return res, nil
}

func init() {
	Register(Spec{
		ID:    "fig1",
		Title: "Idle-loop methodology validation (echo microbenchmark)",
		Paper: "Fig. 1, §2.3",
		Run:   runFig1,
	})
}
