// The ext-modern experiment family reruns the paper's 1996 methodology
// on the 2026 machine profiles: multi-core with background work pushed
// off the scheduler core, SMT, DVFS under the idle-loop instrument,
// NVMe-class storage, and interrupt coalescing. Each experiment is one
// "what still holds / what inverted" claim of the EXPERIMENTS.md modern
// chapter, run as a counterfactual pair against the pinned baseline
// m2026-pin so exactly the axis under test moves. Latencies are also
// classified into perceptual classes (internal/perception): on 2026
// hardware most of the paper's workloads live deep inside the
// imperceptible budget, and the interesting question becomes which
// mechanisms can still push an event out of it.
//
// Note the simulator's clock ceiling: simtime requires an integral-ns
// CPU period, so the modern profiles model a 2026 core as 1 GHz with
// modern per-cycle memory costs rather than a literal 4-5 GHz part.
// Ratios between profiles are meaningful; absolute 2026 latencies are
// conservative by the remaining clock factor.
package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/core"
	"latlab/internal/cpu"
	"latlab/internal/fscache"
	"latlab/internal/kernel"
	"latlab/internal/machine"
	"latlab/internal/perception"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/stats"
)

// ModernCell is one machine's measurement in an ext-modern pair: warm
// per-event latency, its perceptual-class breakdown, and the accounting
// views the modern axes pull apart — what the 1996 idle-loop
// methodology reports as busy versus what the kernel knows ran on the
// scheduler core versus what ran on auxiliary cores it never sees.
type ModernCell struct {
	Machine string
	Era     string
	// Events is the number of warm events summarized (cold first event
	// dropped, as everywhere else in the suite).
	Events  int
	Latency stats.Summary
	// Classes is the warm events' perceptual-class breakdown under the
	// default calibration.
	Classes perception.Breakdown
	// ReportedBusy is the busy time the idle-loop instrument reports
	// (stolen time against its calibrated 1 ms sample); KernelBusy is the
	// scheduler core's ground truth; AuxBusy ran on cores the instrument
	// cannot see at all.
	ReportedBusy simtime.Duration
	KernelBusy   simtime.Duration
	AuxBusy      simtime.Duration
	// AuxMigrations counts cross-core steals of pinned background work.
	AuxMigrations int64
	// OtherInterrupts is the non-clock interrupt count for the whole run
	// (keyboard + disk): the clock's metronome is identical across a
	// pair, so the pair's delta is the disk-interrupt delta.
	OtherInterrupts int64
}

// modernRun boots persona p on prof, injects keystrokes every gapMs
// (starting at 500 ms), letting body handle each one, and returns the
// finished cell. tailMs of quiet time at the end lets the last event
// complete and the DVFS governor decay.
func modernRun(cfg Config, p persona.P, prof machine.Profile, keystrokes int, gapMs, tailMs int64,
	body func(r *rig, tc *kernel.TC)) ModernCell {
	runSeconds := int((500+int64(keystrokes)*gapMs+tailMs)/1000) + 2
	r := newRigOn(cfg, p, prof, runSeconds)
	defer r.shutdown()
	app := r.sys.SpawnApp("modern", func(tc *kernel.TC) {
		for {
			m := tc.GetMessage()
			if m.Kind == kernel.WMQuit {
				return
			}
			if m.Kind != kernel.WMKeyDown {
				continue
			}
			body(r, tc)
		}
	})
	r.sys.Win.BindApp([]uint64{420, 421})
	for i := 0; i < keystrokes; i++ {
		at := simtime.Time(500+int64(i)*gapMs) * simtime.Time(simtime.Millisecond)
		r.sys.K.At(at, func(simtime.Time) { r.sys.Inject(kernel.WMKeyDown, 'a', false) })
	}
	before := r.sys.K.CPU().Snapshot()
	ticksBefore := r.sys.K.ClockTicks()
	r.sys.K.Run(simtime.Time(500+int64(keystrokes)*gapMs+tailMs) * simtime.Time(simtime.Millisecond))
	after := r.sys.K.CPU().Snapshot()

	cell := ModernCell{Machine: prof.Short, Era: prof.Era}
	events := r.extract(app, false)
	if len(events) >= 2 {
		model := perception.Default()
		var warm []float64
		for _, ev := range events[1:] {
			ms := ev.Latency.Milliseconds()
			warm = append(warm, ms)
			cell.Classes.Add(model.ClassifyKind(ev.Kind, ms))
		}
		cell.Events = len(warm)
		cell.Latency = stats.Summarize(warm)
	}
	for _, s := range r.il.Samples() {
		cell.ReportedBusy += s.Stolen(core.NominalSample)
	}
	cell.KernelBusy = r.sys.K.NonIdleBusyTime()
	cell.AuxBusy = r.sys.K.AuxBusyTime()
	cell.AuxMigrations = r.sys.K.AuxMigrations()
	cell.OtherInterrupts = after[cpu.Interrupts] - before[cpu.Interrupts] -
		(r.sys.K.ClockTicks() - ticksBefore)
	return cell
}

// modernKeystrokes picks the session length.
func modernKeystrokes(cfg Config) int {
	if cfg.Quick {
		return 8
	}
	return 24
}

// classShare renders the cell's imperceptible share as a table field.
func classShare(c ModernCell) string {
	return fmt.Sprintf("%.0f%%", 100*c.Classes.Share(perception.Imperceptible))
}

// meanClass names the perceptual class of the cell's warm mean, read as
// a typing event.
func meanClass(c ModernCell) string {
	return perception.Default().Classify(perception.Typing, c.Latency.Mean).String()
}

// ---------------------------------------------------------------- clock

// ExtModernClockResult sweeps the streaming-redraw keystroke of
// ext-hw-clock across three decades of machine: the section 5.1
// argument, extended until it inverts.
type ExtModernClockResult struct {
	Cells []ModernCell
}

// ExperimentID implements Result.
func (r *ExtModernClockResult) ExperimentID() string { return "ext-modern-clock" }

// Render implements Result.
func (r *ExtModernClockResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Modern (§5.1) — the 1996 streaming redraw across three decades of hardware\n\n")
	fmt.Fprintf(w, "  %-12s %-6s %10s %9s %10s %s\n", "machine", "era", "warm mean", "speedup", "impercep.", "class of mean")
	base := r.Cells[0]
	for _, c := range r.Cells {
		speed := 0.0
		if c.Latency.Mean > 0 {
			speed = base.Latency.Mean / c.Latency.Mean
		}
		fmt.Fprintf(w, "  %-12s %-6s %8.2fms %8.2fx %10s %s\n",
			c.Machine, c.Era, c.Latency.Mean, speed, classShare(c), meanClass(c))
	}
	fmt.Fprintf(w, "\n  In 1996 this redraw streamed a window twice the L2 and was memory-\n")
	fmt.Fprintf(w, "  bound: doubling the clock bought well under 2x (ext-hw-clock). The\n")
	fmt.Fprintf(w, "  2026 part's 8 MB L2 holds the entire 1996 working set, so the same\n")
	fmt.Fprintf(w, "  workload collapses by far more than its clock ratio — the memory\n")
	fmt.Fprintf(w, "  wall the paper pointed at moved, it did not fall. Every cell sits\n")
	fmt.Fprintf(w, "  deep inside the 100 ms typing budget: clock rate stopped being the\n")
	fmt.Fprintf(w, "  reason an interactive event feels slow. (1 GHz simulator cap: the\n")
	fmt.Fprintf(w, "  2026 ratios are conservative.)\n")
	return nil
}

func runExtModernClock(ctx context.Context, cfg Config) (Result, error) {
	res := &ExtModernClockResult{}
	for _, prof := range []machine.Profile{machine.Pentium100(), machine.Pentium200(), machine.Modern2026Pinned()} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		pos := 0
		render := cpu.Segment{
			Name: "modern-render", BaseCycles: 100_000,
			Instructions: 60_000, DataRefs: 30_000,
			CodePages: []uint64{420, 421}, DataPages: []uint64{422, 423},
		}
		cell := modernRun(cfg, persona.NT40(), prof, modernKeystrokes(cfg), 200, 2000,
			func(r *rig, tc *kernel.TC) {
				r.sys.Win.TextOut(tc, 1)
				seg := render
				seg.CacheChunks = make([]uint64, 4000)
				for i := range seg.CacheChunks {
					seg.CacheChunks[i] = 100_000 + uint64((pos+i)%16384)
				}
				pos = (pos + 4000) % 16384
				tc.Compute(seg)
			})
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// ----------------------------------------------------------------- dvfs

// ExtModernDVFSResult is the governor-versus-pinned pair: the same
// bursty keystroke session on m2026 (DVFS governor) and m2026-pin
// (pinned at base clock). Two distortions of the 1996 methodology fall
// out: post-idle events run at the parked clock until the governor
// ramps, and the idle-loop instrument — calibrated at base frequency —
// mistakes slowed idle iterations for stolen time.
type ExtModernDVFSResult struct {
	Cells []ModernCell
}

// ExperimentID implements Result.
func (r *ExtModernDVFSResult) ExperimentID() string { return "ext-modern-dvfs" }

// Render implements Result.
func (r *ExtModernDVFSResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Modern (§3) — DVFS governor vs pinned clock under the idle-loop instrument\n\n")
	fmt.Fprintf(w, "  %-12s %10s %10s %14s %13s %10s\n",
		"machine", "warm mean", "warm max", "reported busy", "kernel busy", "inflation")
	for _, c := range r.Cells {
		infl := 0.0
		if c.KernelBusy > 0 {
			infl = float64(c.ReportedBusy) / float64(c.KernelBusy)
		}
		fmt.Fprintf(w, "  %-12s %8.2fms %8.2fms %12.1fms %11.1fms %9.2fx\n",
			c.Machine, c.Latency.Mean, c.Latency.Max,
			c.ReportedBusy.Milliseconds(), c.KernelBusy.Milliseconds(), infl)
	}
	fmt.Fprintf(w, "\n  Latency: each keystroke lands on a parked 250 MHz core and pays up\n")
	fmt.Fprintf(w, "  to 4x its compute until the governor ramps — the tail, not the mean,\n")
	fmt.Fprintf(w, "  absorbs the penalty, exactly the shape the paper says users feel.\n")
	fmt.Fprintf(w, "  Methodology: the idle loop calibrates its 1 ms sample at base clock;\n")
	fmt.Fprintf(w, "  at 250 MHz each iteration takes 4 ms of wall time, and the instrument\n")
	fmt.Fprintf(w, "  books the extra 3 ms as stolen. On m2026 the reported busy time is\n")
	fmt.Fprintf(w, "  pure fiction; the 1996 idle-loop methodology silently requires a\n")
	fmt.Fprintf(w, "  fixed clock (or an invariant-rate timing source for the samples).\n")
	return nil
}

func runExtModernDVFS(ctx context.Context, cfg Config) (Result, error) {
	res := &ExtModernDVFSResult{}
	burst := cpu.Segment{
		Name: "modern-burst", BaseCycles: 4_000_000,
		Instructions: 2_400_000, DataRefs: 900_000,
		CodePages: []uint64{420, 421}, DataPages: []uint64{424, 425},
	}
	for _, prof := range []machine.Profile{machine.Modern2026(), machine.Modern2026Pinned()} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cell := modernRun(cfg, persona.NT40(), prof, modernKeystrokes(cfg), 200, 2000,
			func(r *rig, tc *kernel.TC) {
				r.sys.Win.TextOut(tc, 1)
				tc.Compute(burst)
			})
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// ----------------------------------------------------------------- nvme

// ExtModernNVMeResult is the storage pair: a read-heavy keystroke on
// the 1996 disk geometry (m2026-hdd) versus NVMe-class storage
// (m2026-pin), everything else modern.
type ExtModernNVMeResult struct {
	Cells []ModernCell
}

// ExperimentID implements Result.
func (r *ExtModernNVMeResult) ExperimentID() string { return "ext-modern-nvme" }

// Render implements Result.
func (r *ExtModernNVMeResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Modern (§4) — the 1996 disk vs NVMe-class storage, read-heavy keystrokes\n\n")
	fmt.Fprintf(w, "  %-12s %10s %10s %10s %s\n", "machine", "warm mean", "warm max", "impercep.", "class of mean")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "  %-12s %8.2fms %8.2fms %10s %s\n",
			c.Machine, c.Latency.Mean, c.Latency.Max, classShare(c), meanClass(c))
	}
	hdd, nvme := r.Cells[0], r.Cells[1]
	if nvme.Latency.Mean > 0 {
		fmt.Fprintf(w, "\n  delta: %.2fms per keystroke (%.0fx)\n",
			hdd.Latency.Mean-nvme.Latency.Mean, hdd.Latency.Mean/nvme.Latency.Mean)
	}
	fmt.Fprintf(w, "\n  On the 1996 geometry every scattered read pays a seek plus half a\n")
	fmt.Fprintf(w, "  rotation, and a disk-touching keystroke blows the perception budget\n")
	fmt.Fprintf(w, "  — the paper's warm/cold split (§4) exists because storage dominated\n")
	fmt.Fprintf(w, "  cold events. NVMe deletes the mechanical terms: the same reads cost\n")
	fmt.Fprintf(w, "  microseconds, the event never leaves the imperceptible class, and\n")
	fmt.Fprintf(w, "  \"cold\" stops being a perceptual category at all. This is the\n")
	fmt.Fprintf(w, "  cleanest inversion in the chapter.\n")
	return nil
}

func runExtModernNVMe(ctx context.Context, cfg Config) (Result, error) {
	res := &ExtModernNVMeResult{}
	keystrokes := modernKeystrokes(cfg)
	const readsPerEvent, pagesPerRead = 10, 8
	think := cpu.Segment{
		Name: "modern-parse", BaseCycles: 200_000,
		Instructions: 120_000, DataRefs: 50_000,
		CodePages: []uint64{420, 421}, DataPages: []uint64{426},
	}
	for _, prof := range []machine.Profile{machine.Modern2026HDD(), machine.Modern2026Pinned()} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var db fscache.FileID
		var off int64
		opened := false
		cell := modernRun(cfg, persona.NT40(), prof, keystrokes, 400, 2000,
			func(r *rig, tc *kernel.TC) {
				if !opened {
					db = r.sys.K.Cache().AddFile("archive.db", 700_000,
						int64(keystrokes*readsPerEvent*pagesPerRead)+pagesPerRead)
					opened = true
				}
				for i := 0; i < readsPerEvent; i++ {
					// Advance through the file so every read misses the cache;
					// the stride scatters the blocks across cylinders.
					tc.ReadFile(db, off, pagesPerRead)
					off += pagesPerRead
					tc.Compute(think)
				}
			})
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// ------------------------------------------------------------------ irq

// ExtModernIRQResult is the interrupt-coalescing pair: a keystroke that
// fans out concurrent asynchronous reads and polls for the completions,
// on per-request interrupts (m2026-noirq) versus a 200 µs / 8-batch
// coalescer (m2026-pin) — the only axis the two profiles differ on.
type ExtModernIRQResult struct {
	Cells []ModernCell
}

// ExperimentID implements Result.
func (r *ExtModernIRQResult) ExperimentID() string { return "ext-modern-irq" }

// Render implements Result.
func (r *ExtModernIRQResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Modern (§2.5) — interrupt coalescing vs per-request completion interrupts\n\n")
	fmt.Fprintf(w, "  %-12s %10s %10s %16s\n", "machine", "warm mean", "warm max", "disk+kbd irqs")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "  %-12s %8.2fms %8.2fms %16d\n",
			c.Machine, c.Latency.Mean, c.Latency.Max, c.OtherInterrupts)
	}
	perReq, coal := r.Cells[0], r.Cells[1]
	fmt.Fprintf(w, "\n  coalescing removed %d interrupts and cost %+.2fms of mean latency\n",
		perReq.OtherInterrupts-coal.OtherInterrupts, coal.Latency.Mean-perReq.Latency.Mean)
	fmt.Fprintf(w, "\n  The paper priced every interrupt's overhead (§2.5) on the machine\n")
	fmt.Fprintf(w, "  that took one per event. A 2026 NVMe queue takes one per *batch*:\n")
	fmt.Fprintf(w, "  the coalescer trades up to its 200 µs window of added completion\n")
	fmt.Fprintf(w, "  latency for an interrupt count cut by the batch factor. Both sides\n")
	fmt.Fprintf(w, "  of the trade live far inside the perception budget — coalescing is\n")
	fmt.Fprintf(w, "  free at human timescales, which is why modern controllers default\n")
	fmt.Fprintf(w, "  to it and a 1996-style per-event interrupt audit now measures the\n")
	fmt.Fprintf(w, "  controller's batching policy, not the workload.\n")
	return nil
}

func runExtModernIRQ(ctx context.Context, cfg Config) (Result, error) {
	res := &ExtModernIRQResult{}
	keystrokes := modernKeystrokes(cfg)
	// fanout stays under the coalescer's MaxBatch (8) so the final
	// partial batch must wait out the full 200 µs window — the worst
	// case for the latency side of the trade.
	const fanout, pagesPerRead = 6, 4
	poll := cpu.Segment{
		Name: "modern-poll", BaseCycles: 5000,
		Instructions: 3000, DataRefs: 1000,
		CodePages: []uint64{420, 421}, DataPages: []uint64{427},
	}
	for _, prof := range []machine.Profile{machine.Modern2026NoCoalesce(), machine.Modern2026Pinned()} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var db fscache.FileID
		var off int64
		opened := false
		cell := modernRun(cfg, persona.NT40(), prof, keystrokes, 250, 2000,
			func(r *rig, tc *kernel.TC) {
				if !opened {
					db = r.sys.K.Cache().AddFile("queue.db", 760_000,
						int64(keystrokes*fanout*pagesPerRead)+pagesPerRead)
					opened = true
				}
				for i := 0; i < fanout; i++ {
					tc.ReadFileAsync(db, off, pagesPerRead, kernel.WMIdleWork, int64(i))
					off += pagesPerRead
				}
				// Busy-poll for the completions so the episode stays unbroken
				// and its latency includes the coalescer's holding window.
				for done := 0; done < fanout; {
					if m, ok := tc.PeekMessage(); ok {
						if m.Kind == kernel.WMIdleWork {
							done++
						}
						continue
					}
					tc.Compute(poll)
				}
			})
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

// ------------------------------------------------------------------ smt

// ExtModernSMTResult is the topology pair: Windows 95 — the persona
// with real background housekeeping — on the eight-core part
// (m2026-pin, housekeeping pinned to the SMT sibling and spilling
// across aux cores) versus the same part cut to one core (m2026-uni,
// housekeeping back on the scheduler core, 1996-style).
type ExtModernSMTResult struct {
	Cells []ModernCell
}

// ExperimentID implements Result.
func (r *ExtModernSMTResult) ExperimentID() string { return "ext-modern-smt" }

// Render implements Result.
func (r *ExtModernSMTResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Modern (§2.3) — background work on aux cores vs the scheduler core\n\n")
	fmt.Fprintf(w, "  %-12s %10s %14s %13s %10s %11s\n",
		"machine", "warm mean", "reported busy", "kernel busy", "aux busy", "migrations")
	for _, c := range r.Cells {
		fmt.Fprintf(w, "  %-12s %8.2fms %12.1fms %11.1fms %8.1fms %11d\n",
			c.Machine, c.Latency.Mean,
			c.ReportedBusy.Milliseconds(), c.KernelBusy.Milliseconds(),
			c.AuxBusy.Milliseconds(), c.AuxMigrations)
	}
	fmt.Fprintf(w, "\n  On one core the housekeeping contends with the keystroke path and\n")
	fmt.Fprintf(w, "  every burst lands in the idle loop's ledger. On eight cores the\n")
	fmt.Fprintf(w, "  same work runs on the SMT sibling (stretched by contention when the\n")
	fmt.Fprintf(w, "  scheduler core is busy) and the instrument — which watches only the\n")
	fmt.Fprintf(w, "  core it runs on — reports the machine idle while aux-busy time\n")
	fmt.Fprintf(w, "  accrues. The 1996 single-point methodology still measures foreground\n")
	fmt.Fprintf(w, "  latency correctly, but as a *utilization* probe it is now blind to\n")
	fmt.Fprintf(w, "  most of the machine: per-core instrumentation became mandatory.\n")
	return nil
}

func runExtModernSMT(ctx context.Context, cfg Config) (Result, error) {
	res := &ExtModernSMTResult{}
	echo := cpu.Segment{
		Name: "modern-echo", BaseCycles: 900_000,
		Instructions: 540_000, DataRefs: 200_000,
		CodePages: []uint64{420, 421}, DataPages: []uint64{428, 429},
	}
	for _, prof := range []machine.Profile{machine.Modern2026Pinned(), machine.Modern2026Uni()} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		cell := modernRun(cfg, persona.W95(), prof, modernKeystrokes(cfg), 150, 1500,
			func(r *rig, tc *kernel.TC) {
				r.sys.Win.TextOut(tc, 1)
				tc.Compute(echo)
			})
		res.Cells = append(res.Cells, cell)
	}
	return res, nil
}

func init() {
	Register(Spec{ID: "ext-modern-clock", Title: "Three decades of hardware under the 1996 redraw",
		Paper: "§5.1 (modern)", Run: runExtModernClock})
	Register(Spec{ID: "ext-modern-dvfs", Title: "DVFS governor vs the idle-loop methodology",
		Paper: "§3 (modern)", Run: runExtModernDVFS})
	Register(Spec{ID: "ext-modern-nvme", Title: "NVMe-class storage vs the 1996 disk",
		Paper: "§4 (modern)", Run: runExtModernNVMe})
	Register(Spec{ID: "ext-modern-irq", Title: "Interrupt coalescing vs per-request interrupts",
		Paper: "§2.5 (modern)", Run: runExtModernIRQ})
	Register(Spec{ID: "ext-modern-smt", Title: "Aux-core background work and idle-loop blindness",
		Paper: "§2.3 (modern)", Run: runExtModernSMT})
}
