package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/core"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/viz"
)

// Fig4Result is the window-maximize animation profile of paper Fig. 4:
// an initial processing burst, tick-aligned animation spikes growing with
// the outline, and a long redraw burst — shown at full 1 ms resolution
// (4a) and averaged over 10 ms buckets (4b).
type Fig4Result struct {
	Full     []core.ProfilePoint
	Averaged []core.ProfilePoint
	// Event is the extracted (merged, gapped) maximize event.
	Event core.Event
	// AnimationSpikes are the start times of the animation bursts; the
	// paper observes them aligned on 10 ms clock boundaries.
	AnimationSpikes []simtime.Time
	// InitialBurst and RedrawBurst are the bracketing 100%-CPU phases.
	InitialBurst simtime.Duration
	RedrawBurst  simtime.Duration
}

// ExperimentID implements Result.
func (r *Fig4Result) ExperimentID() string { return "fig4" }

// Render implements Result.
func (r *Fig4Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 4 — Window maximize under Windows NT 4.0\n\n")
	if err := viz.Profile(w, "4a: full 1 ms resolution", r.Full, 110, 10); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := viz.Profile(w, "4b: averaged over 10 ms intervals", r.Averaged, 110, 10); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n  merged maximize event: latency %v (busy %v, %d animation spikes)\n",
		r.Event.Latency, r.Event.Busy, len(r.AnimationSpikes))
	fmt.Fprintf(w, "  initial burst ≈%v, redraw burst ≈%v\n", r.InitialBurst, r.RedrawBurst)
	return nil
}

// Artifacts implements ArtifactProvider.
func (r *Fig4Result) Artifacts() []Artifact {
	return []Artifact{
		ProfileArtifact("full-1ms", r.Full),
		ProfileArtifact("averaged-10ms", r.Averaged),
	}
}

func runFig4(ctx context.Context, cfg Config) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p := persona.NT40()
	r := newRig(cfg, p, 10)
	defer r.shutdown()

	steps, redraw := 22, 105
	if cfg.Quick {
		steps, redraw = 10, 40
	}
	shell := r.sys.SpawnApp("shell", func(tc *kernel.TC) {
		for {
			m := tc.GetMessage()
			if m.Kind == kernel.WMQuit {
				return
			}
			if m.Kind == kernel.WMSysCommand {
				r.sys.Win.MaximizeAnimation(tc, steps, redraw)
			}
		}
	})
	r.sys.Win.BindApp([]uint64{340, 341, 342})
	r.sys.K.At(simtime.Time(100*simtime.Millisecond), func(simtime.Time) {
		r.sys.Inject(kernel.WMSysCommand, 1, false)
	})
	r.sys.K.Run(simtime.Time(2 * simtime.Second))

	samples := r.il.Samples()
	res := &Fig4Result{
		Full:     core.Profile(samples),
		Averaged: core.AveragedProfile(samples, 10*simtime.Millisecond),
	}
	if events := r.extract(shell, false); len(events) > 0 {
		res.Event = events[0]
	}
	spans := core.BusySpans(samples, core.DefaultBusyThreshold)
	for i, bs := range spans {
		switch {
		case i == 0:
			res.InitialBurst = bs.Stolen
		case i == len(spans)-1:
			res.RedrawBurst = bs.Stolen
		default:
			res.AnimationSpikes = append(res.AnimationSpikes, bs.Start)
		}
	}
	return res, nil
}

func init() {
	Register(Spec{
		ID:    "fig4",
		Title: "CPU usage profile of a window-maximize animation",
		Paper: "Fig. 4, §2.6",
		Run:   runFig4,
	})
}
