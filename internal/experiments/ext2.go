package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/apps"
	"latlab/internal/core"
	"latlab/internal/input"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/stats"
)

// ExtSlowCPUResult quantifies the paper's §5.1 remark: "Although these
// differences in latency are likely to go unnoticed by users of our test
// system, they might have a significant effect on user-perceived
// performance on a slower machine." It runs the same Notepad session on
// NT 4.0 at several clock rates and reports how screen-refresh
// keystrokes move relative to the 0.1 s perception threshold.
type ExtSlowCPUResult struct {
	Rows []ExtSlowCPURow
}

// ExtSlowCPURow is one clock rate's outcome.
type ExtSlowCPURow struct {
	MHz int
	// Char and Refresh summarize the two Notepad latency classes (ms).
	Char    stats.Summary
	Refresh stats.Summary
	// OverPerception counts events above the 0.1 s threshold.
	OverPerception int
}

// ExperimentID implements Result.
func (r *ExtSlowCPUResult) ExperimentID() string { return "ext-slowcpu" }

// Render implements Result.
func (r *ExtSlowCPUResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Extension (§5.1) — the same Notepad session on slower machines (NT 4.0)\n\n")
	fmt.Fprintf(w, "  %8s %14s %16s %18s\n", "clock", "echo keystroke", "refresh keystroke", ">0.1s events")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %5dMHz %12.1fms %14.1fms %18d\n",
			row.MHz, row.Char.Mean, row.Refresh.Mean, row.OverPerception)
	}
	fmt.Fprintf(w, "\n  On the 100 MHz machine every event is imperceptible; at 20-25 MHz the\n")
	fmt.Fprintf(w, "  refresh keystrokes cross the perception threshold — the paper's point\n")
	fmt.Fprintf(w, "  that latency differences grow teeth on slower hardware.\n")
	return nil
}

func runExtSlowCPU(ctx context.Context, cfg Config) (Result, error) {
	chars := 150
	if cfg.Quick {
		chars = 60
	}
	res := &ExtSlowCPUResult{}
	for _, mhz := range []int{100, 50, 20} {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p := persona.NT40()
		// A down-clocked variant of the configured machine: same TLBs,
		// caches and disk, only the core runs slower (§5.1's thought
		// experiment isolates clock rate).
		prof := cfg.MachineProfile()
		prof.ClockHz = simtime.Hz(mhz) * 1_000_000

		// Fixed-pace session with newlines so both latency classes appear.
		raw := input.SampleText(chars)
		var text []rune
		for i, c := range raw {
			if i > 0 && i%40 == 0 {
				text = append(text, '\n')
			}
			text = append(text, c)
		}
		script := &input.Script{
			Events: input.TypeText(simtime.Time(300*simtime.Millisecond), string(text), 250*simtime.Millisecond),
		}
		seconds := int(script.End().Seconds()) + 8
		r := newRigOn(cfg, p, prof, seconds)
		n := apps.NewNotepad(r.sys, 250_000)
		script.Install(r.sys)
		r.sys.K.Run(script.End().Add(2 * simtime.Second))

		events := r.extract(n.Thread(), false)
		var charMs, refreshMs []float64
		over := 0
		for _, e := range events {
			ms := e.Latency.Milliseconds()
			if ms > core.PerceptionThresholdMs {
				over++
			}
			// Classify by cost: refreshes are an order of magnitude
			// dearer than echo keystrokes at every clock rate.
			if ms >= 12*100/float64(mhz) {
				refreshMs = append(refreshMs, ms)
			} else {
				charMs = append(charMs, ms)
			}
		}
		res.Rows = append(res.Rows, ExtSlowCPURow{
			MHz:            mhz,
			Char:           stats.Summarize(charMs),
			Refresh:        stats.Summarize(refreshMs),
			OverPerception: over,
		})
		r.shutdown()
	}
	return res, nil
}

func init() {
	Register(Spec{ID: "ext-slowcpu", Title: "Perception thresholds on slower machines",
		Paper: "§5.1 (extension)", Run: runExtSlowCPU})
}
