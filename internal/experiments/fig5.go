package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/apps"
	"latlab/internal/core"
	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/viz"
)

// wordTrace runs the paper's Microsoft Word benchmark (§5.4 / Fig. 5
// trace) on persona p: roughly `chars` characters of text entry with
// arrow-key cursor movement and backspace corrections, varied pacing.
// testDriven selects Microsoft Test emulation (WM_QUEUESYNC after every
// input) versus hand-generated input.
func wordTrace(cfg Config, p persona.P, seed uint64, chars int, testDriven bool) (events []core.Event, elapsed simtime.Duration, w *apps.Word) {
	// Insert a newline roughly every 180 characters (paragraph breaks)
	// and corrections (backspace pairs) every ~60.
	raw := input.SampleText(chars)
	var text []rune
	for i, c := range raw {
		if i > 0 && i%180 == 0 {
			text = append(text, '\n')
		}
		if i > 0 && i%60 == 0 {
			text = append(text, 'x', '\b')
		}
		text = append(text, c)
	}

	secondsBudget := int(float64(len(text))*0.35) + 30
	r := newRig(cfg, p, secondsBudget)
	defer r.shutdown()
	word := apps.NewWord(r.sys, apps.DefaultWordParams())

	// Composing pace, not copy-typing: the paper's script "varied [timing]
	// to simulate realistic pauses when composing a document".
	ty := input.NewTypist(seed, 65)
	evs := ty.Type(simtime.Time(500*simtime.Millisecond), string(text))
	// Sprinkle arrow-key cursor movement after sentence pauses.
	var withArrows []input.Event
	for i, e := range evs {
		withArrows = append(withArrows, e)
		if i > 0 && i%97 == 0 {
			withArrows = append(withArrows, input.Event{
				At: e.At.Add(150 * simtime.Millisecond), Kind: kernel.WMKeyDown, Param: input.VKLeft,
			})
		}
	}
	script := &input.Script{Events: withArrows, QueueSync: testDriven}
	script.Sort()
	script.Install(r.sys)
	end := script.End().Add(3 * simtime.Second)
	r.sys.K.Run(end)

	events = r.extract(word.Thread(), false)
	return events, simtime.Duration(end), word
}

// Fig5Result is the raw-data representation of paper Fig. 5: the full
// Word event trace and a two-second magnification.
type Fig5Result struct {
	Events []core.Event
	// Magnified is the slice of events within the magnification window.
	Magnified []core.Event
	WindowLo  simtime.Time
	WindowHi  simtime.Time
}

// ExperimentID implements Result.
func (r *Fig5Result) ExperimentID() string { return "fig5" }

// Render implements Result.
func (r *Fig5Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 5 — Raw data representation (Word on Windows NT 3.51, %d events)\n\n", len(r.Events))
	if err := viz.TimeSeries(w, "5a: complete trace (0.1s perception threshold marked)",
		r.Events, core.PerceptionThresholdMs, 110, 12); err != nil {
		return err
	}
	fmt.Fprintln(w)
	return viz.TimeSeries(w, fmt.Sprintf("5b: magnification %v .. %v", r.WindowLo, r.WindowHi),
		r.Magnified, core.PerceptionThresholdMs, 110, 12)
}

// Artifacts implements ArtifactProvider.
func (r *Fig5Result) Artifacts() []Artifact {
	return []Artifact{EventsArtifact("word-nt351", r.Events)}
}

func runFig5(ctx context.Context, cfg Config) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	chars := 1000
	if cfg.Quick {
		chars = 150
	}
	events, _, _ := wordTrace(cfg, persona.NT351(), cfg.Seed, chars, true)
	res := &Fig5Result{Events: events}
	// Magnify two seconds from the middle of the run.
	if len(events) > 0 {
		mid := events[len(events)/2].Enqueued
		res.WindowLo, res.WindowHi = mid, mid.Add(2*simtime.Second)
		for _, e := range events {
			if e.Enqueued >= res.WindowLo && e.Enqueued < res.WindowHi {
				res.Magnified = append(res.Magnified, e)
			}
		}
	}
	return res, nil
}

func init() {
	Register(Spec{
		ID:    "fig5",
		Title: "Raw event-latency trace of the Word benchmark",
		Paper: "Fig. 5, §3.2",
		Run:   runFig5,
	})
}
