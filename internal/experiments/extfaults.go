package experiments

import (
	"fmt"
	"io"

	"latlab/internal/apps"
	"latlab/internal/core"
	"latlab/internal/cpu"
	"latlab/internal/faults"
	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/scenario"
	"latlab/internal/simtime"
	"latlab/internal/system"
)

// The ext-faults-* family reruns the paper's latency analysis under
// deterministic injected degradations (internal/faults): the same
// workload is simulated clean and degraded on NT 4.0, and the rendered
// comparison shows how each fault class moves the latency distribution
// — tail inflation for disk faults, interarrival clustering for
// interrupt storms, warm-state collapse for cache pressure. The paper's
// multi-second PowerPoint stalls (Table 1) are exactly this kind of
// adverse-condition latency; here we produce them on demand.

// ExtFaultsRow is one (clean or degraded) run's analysis.
type ExtFaultsRow struct {
	Label  string
	Report *core.Report
	// Think/wait FSM breakdown (§2.4 methodology) over the run.
	ThinkMs, WaitMs float64
	Transitions     int
	// Machine-level fault counters.
	Retries, MediaErrors, IOErrors, ForcedEvictions, Interrupts int64
}

// ExtFaultsResult is a clean-vs-degraded comparison under one fault
// plan.
type ExtFaultsResult struct {
	ID    string
	Title string
	Plan  faults.Plan
	Rows  []ExtFaultsRow // exactly {clean, degraded}
}

// ExperimentID implements Result.
func (r *ExtFaultsResult) ExperimentID() string { return r.ID }

// Render implements Result.
func (r *ExtFaultsResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Extension (robustness) — %s, NT 4.0 clean vs degraded\n\n", r.Title)
	fmt.Fprintf(w, "  fault plan (seed %d):\n", r.Plan.Seed)
	for _, f := range r.Plan.Faults {
		fmt.Fprintf(w, "    %s\n", f)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		rep := row.Report
		ia := rep.Interarrival(core.PerceptionThresholdMs)
		fmt.Fprintf(w, "  %-8s %4d events  mean %s  >0.1s: %d  total latency %.2fs\n",
			row.Label+":", len(rep.Events), fmtMs(rep.Summary().Mean),
			rep.CountAbove(core.PerceptionThresholdMs), rep.TotalLatency().Seconds())
		fmt.Fprintf(w, "           interarrival of >0.1s events: n=%d mean %.2fs sd %.2fs\n",
			ia.Count, ia.MeanSec, ia.StdDevSec)
		fmt.Fprintf(w, "           think %.1fs / wait %.1fs (%d transitions)\n",
			row.ThinkMs/1000, row.WaitMs/1000, row.Transitions)
		fmt.Fprintf(w, "           machine: retries=%d media-errors=%d io-errors=%d evictions=%d interrupts=%d\n",
			row.Retries, row.MediaErrors, row.IOErrors, row.ForcedEvictions, row.Interrupts)
	}
	fmt.Fprintln(w)
	return nil
}

// Artifacts implements ArtifactProvider.
func (r *ExtFaultsResult) Artifacts() []Artifact {
	var out []Artifact
	for _, row := range r.Rows {
		out = append(out, EventsArtifact(row.Label, row.Report.Events),
			ReportArtifact(row.Label, row.Report))
	}
	return out
}

// faultsTarget builds the arming target for a booted rig: a dedicated
// "indexer" background thread (the inversion victim), boosted above the
// application during PriorityInversion windows.
func faultsTarget(r *rig, needBackground bool) faults.Target {
	t := faults.Target{K: r.sys.K, BoostPrio: system.AppPrio + 2}
	if needBackground {
		burst := r.sys.P.Kernel.ClockInterrupt
		burst.Name = "indexer"
		burst.BaseCycles = 1_200_000 // 12 ms at 100 MHz
		sleep := true
		t.Background = r.sys.K.SpawnLoop("indexer", kernel.KernelProc, system.BackgroundPrio, func(lc *kernel.LoopTC) bool {
			if sleep {
				lc.Sleep(40 * simtime.Millisecond)
			} else {
				lc.Compute(burst)
			}
			sleep = !sleep
			return true
		})
	}
	return t
}

// faultsPPT runs the paper's PowerPoint task (launch, open, page
// through, OLE edit, save — §5.2) under plan and returns the analysis
// row. label tags the row; an empty plan is the clean baseline. The
// deck, paging, and pacing come from the compiled scenario run: empty
// PageDowns means the full paper task ([9,10,10]), and each PageDowns
// entry is one OLE edit.
func faultsPPT(label string, cfg Config, sc scRun, plan faults.Plan) ExtFaultsRow {
	return openPPT(label, cfg, sc, plan).run()
}

// openPPT boots the PowerPoint session without running it; the chain
// driver is installed and the session's milestone program replicates
// runChain (500 ms poll slices, then 2 s trailing quiescence so the
// FSM end matches the probe's last records).
func openPPT(label string, cfg Config, sc scRun, plan faults.Plan) *ScenarioSession {
	params := apps.DefaultPowerpointParams()
	if sc.prm.Slides != 0 {
		params.Slides = sc.prm.Slides
	}
	if len(sc.prm.ObjectSlides) > 0 {
		params.ObjectSlides = sc.prm.ObjectSlides
	}
	pageDowns := sc.prm.PageDowns
	if len(pageDowns) == 0 {
		pageDowns = []int{9, 10, 10}
	}
	r := newRig(cfg, sc.p, 400)
	faults.NewClock(plan).Arm(faultsTarget(r, false))
	ppt := apps.NewPowerpoint(r.sys, params)

	think := simtime.FromMillis(defF(sc.prm.ThinkMs, 300))
	var steps []chainStep
	steps = append(steps, step(kernel.WMCommand, apps.CmdLaunch, 500*simtime.Millisecond))
	steps = append(steps, step(kernel.WMCommand, apps.CmdOpen, think))
	for i, downs := range pageDowns {
		for j := 0; j < downs; j++ {
			steps = append(steps, step(kernel.WMKeyDown, input.VKPageDown, think))
		}
		steps = append(steps, step(kernel.WMCommand, apps.CmdEditObject+int64(i), think))
		for k := 0; k < 3; k++ {
			steps = append(steps, step(kernel.WMChar, '7', 150*simtime.Millisecond))
		}
		steps = append(steps, step(kernel.WMCommand, apps.CmdEndEdit, think))
	}
	steps = append(steps, step(kernel.WMCommand, apps.CmdSave, think))

	return openChain(label, r, ppt.Thread(), steps, true,
		simtime.Time(secs(defF(sc.prm.DeadlineS, 380))))
}

// openChain installs a completion-paced chain driver and wraps it as a
// session whose milestone program is runChain's exact loop.
func openChain(label string, r *rig, t *kernel.Thread, steps []chainStep, sync bool, deadline simtime.Time) *ScenarioSession {
	s := &ScenarioSession{r: r, label: label, thread: t,
		kind: sessChain, deadline: deadline, chainDone: new(simtime.Time)}
	driveChain(r.sys, steps, sync, s.chainDone)
	s.target = r.sys.K.Now().Add(500 * simtime.Millisecond)
	return s
}

// faultsTyping runs a paced Notepad typing session under plan. Input
// comes from the scenario run: the seeded typist by default, or the
// document's explicit stanza timeline.
func faultsTyping(label string, cfg Config, sc scRun, plan faults.Plan) ExtFaultsRow {
	return openTyping(label, cfg, sc, plan).run()
}

// openTyping boots the typing session without running it. The whole
// input script is installed up front, so the milestone program is one
// Run to the script end plus trailing time.
func openTyping(label string, cfg Config, sc scRun, plan faults.Plan) *ScenarioSession {
	r := newRig(cfg, sc.p, 240)
	faults.NewClock(plan).Arm(faultsTarget(r, true))
	n := apps.NewNotepad(r.sys, 250_000)
	script := sc.scenarioScript(defF(sc.prm.StartMs, 300))
	script.Install(r.sys)
	return &ScenarioSession{r: r, label: label, thread: n.Thread(),
		kind: sessOnce, target: script.End().Add(secs(defF(sc.prm.TrailingS, 3)))}
}

// faultsRow extracts the common analysis from a finished rig.
func faultsRow(label string, r *rig, t *kernel.Thread, end simtime.Time) ExtFaultsRow {
	events := r.extract(t, true)
	f := core.DriveFSM(r.pr, t.ID(), end)
	k := r.sys.K
	return ExtFaultsRow{
		Label:           label,
		Report:          core.NewReport(events, simtime.Duration(end)),
		ThinkMs:         f.ThinkTime().Milliseconds(),
		WaitMs:          f.WaitTime().Milliseconds(),
		Transitions:     len(f.Transitions()),
		Retries:         k.Disk().Retries(),
		MediaErrors:     k.Disk().MediaErrors(),
		IOErrors:        k.IOErrors(),
		ForcedEvictions: k.Cache().ForcedEvictions(),
		Interrupts:      k.CPU().Count(cpu.Interrupts),
	}
}

// faultsBrowser runs a document-browser session whose warmth lives in
// the buffer cache: each page-down reads the next 64-page window of a
// large report file in small chunks, cycling through the file twice, so
// the second pass is cache-warm on a clean machine and cold again under
// eviction pressure — the paper's "effects of the file system cache"
// phenomenon produced (and destroyed) on demand.
func faultsBrowser(label string, cfg Config, sc scRun, plan faults.Plan) ExtFaultsRow {
	return openBrowser(label, cfg, sc, plan).run()
}

// openBrowser boots the browsing session without running it.
func openBrowser(label string, cfg Config, sc scRun, plan faults.Plan) *ScenarioSession {
	const viewPages, chunk = 64, 8
	views := sc.prm.Views
	r := newRig(cfg, sc.p, 120)
	faults.NewClock(plan).Arm(faultsTarget(r, false))

	db := r.sys.K.Cache().AddFile("reports.db", 600_000, int64(views)*viewPages)
	browse := cpu.Segment{Name: "browse", BaseCycles: 400_000,
		Instructions: 250_000, DataRefs: 90_000,
		CodePages: []uint64{700, 701, 702}, DataPages: []uint64{720, 721}}
	view := int64(0)
	app := r.sys.SpawnApp("browser", func(tc *kernel.TC) {
		for {
			m := tc.GetMessage()
			if m.Kind != kernel.WMKeyDown {
				continue
			}
			base := (view % int64(views)) * viewPages
			for q := int64(0); q < viewPages; q += chunk {
				tc.ReadFile(db, base+q, chunk)
			}
			tc.Compute(browse)
			view++
		}
	})

	var steps []chainStep
	think := simtime.FromMillis(defF(sc.prm.ThinkMs, 300))
	for i := 0; i < 2*views; i++ {
		steps = append(steps, step(kernel.WMKeyDown, input.VKPageDown, think))
	}
	return openChain(label, r, app, steps, true,
		simtime.Time(secs(defF(sc.prm.DeadlineS, 110))))
}

// compareCleanDegraded is the canonical comparison of the ext-faults
// family: the same workload once on a clean machine, once under the
// document's fault plan.
func compareCleanDegraded() []scenario.Row {
	return []scenario.Row{{Label: "clean"}, {Label: "degraded", Faulted: true}}
}

// extFaultsDiskDoc declares ext-faults-disk: the §5.2 PowerPoint task
// under disk degradation. The span (120 s full, 30 s quick) matches
// the task so the windows land mid-run.
func extFaultsDiskDoc() scenario.Doc {
	return scenario.Doc{
		Schema:  scenario.SchemaVersion,
		ID:      "ext-faults-disk",
		Title:   "Latency analysis under injected disk faults",
		Banner:  "Powerpoint task under disk faults (degrade, stall, media errors)",
		Paper:   "Table 1, §5.2 (robustness extension)",
		Persona: "nt40",
		Workload: scenario.Workload{
			Kind: scenario.KindPowerpoint,
			Full: scenario.Params{PageDowns: []int{9, 10, 10}},
			Quick: &scenario.Params{Slides: 12, ObjectSlides: []int{3, 6, 9},
				PageDowns: []int{2, 3}},
		},
		Faults: &scenario.FaultSpec{
			Kinds:      []string{"disk-degrade", "disk-stall", "disk-media-errors"},
			SpanS:      120,
			QuickSpanS: 30,
		},
		Compare: compareCleanDegraded(),
	}
}

// extFaultsIRQDoc declares ext-faults-irq: a typist session under
// interrupt and scheduler degradation. The span matches the typing
// session (~10 s quick, ~26 s full) so the windows land mid-session.
func extFaultsIRQDoc() scenario.Doc {
	return scenario.Doc{
		Schema:  scenario.SchemaVersion,
		ID:      "ext-faults-irq",
		Title:   "Latency analysis under interrupt and scheduler faults",
		Banner:  "Notepad typing under interrupt storm, timer jitter, priority inversion",
		Paper:   "§2.5, §5.3 (robustness extension)",
		Persona: "nt40",
		Workload: scenario.Workload{
			Kind:  scenario.KindTyping,
			Full:  scenario.Params{Chars: 150},
			Quick: &scenario.Params{Chars: 60},
		},
		Faults: &scenario.FaultSpec{
			Kinds:      []string{"irq-storm", "timer-jitter", "priority-inversion"},
			SpanS:      26,
			QuickSpanS: 12,
		},
		Compare: compareCleanDegraded(),
	}
}

// extFaultsCacheDoc declares ext-faults-cache: two browsing passes
// under buffer-cache pressure. The span (~8 s quick, ~18 s full)
// straddles the cache-warm second pass.
func extFaultsCacheDoc() scenario.Doc {
	return scenario.Doc{
		Schema:  scenario.SchemaVersion,
		ID:      "ext-faults-cache",
		Title:   "Latency analysis under cache pressure",
		Banner:  "document browsing under buffer-cache pressure",
		Paper:   "Table 1, §5.2 (robustness extension)",
		Persona: "nt40",
		Workload: scenario.Workload{
			Kind:  scenario.KindBrowse,
			Full:  scenario.Params{Views: 16},
			Quick: &scenario.Params{Views: 8},
		},
		Faults: &scenario.FaultSpec{
			Kinds:      []string{"cache-pressure"},
			SpanS:      18,
			QuickSpanS: 10,
		},
		Compare: compareCleanDegraded(),
	}
}

// extFaultsDocs returns the family's documents; the JSON twins under
// testdata/scenarios/ are kept byte-equivalent to these by
// TestScenarioTwinsMatchGoRegistered.
func extFaultsDocs() []scenario.Doc {
	return []scenario.Doc{extFaultsDiskDoc(), extFaultsIRQDoc(), extFaultsCacheDoc()}
}

func init() {
	// The ext-faults family registers through the scenario compiler:
	// these Go-declared documents and their file twins share one code
	// path end to end.
	for _, doc := range extFaultsDocs() {
		spec, err := FromScenario(doc)
		if err != nil {
			panic(err)
		}
		Register(spec)
	}
}
