package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/apps"
	"latlab/internal/core"
	"latlab/internal/cpu"
	"latlab/internal/faults"
	"latlab/internal/input"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/system"
)

// The ext-faults-* family reruns the paper's latency analysis under
// deterministic injected degradations (internal/faults): the same
// workload is simulated clean and degraded on NT 4.0, and the rendered
// comparison shows how each fault class moves the latency distribution
// — tail inflation for disk faults, interarrival clustering for
// interrupt storms, warm-state collapse for cache pressure. The paper's
// multi-second PowerPoint stalls (Table 1) are exactly this kind of
// adverse-condition latency; here we produce them on demand.

// ExtFaultsRow is one (clean or degraded) run's analysis.
type ExtFaultsRow struct {
	Label  string
	Report *core.Report
	// Think/wait FSM breakdown (§2.4 methodology) over the run.
	ThinkMs, WaitMs float64
	Transitions     int
	// Machine-level fault counters.
	Retries, MediaErrors, IOErrors, ForcedEvictions, Interrupts int64
}

// ExtFaultsResult is a clean-vs-degraded comparison under one fault
// plan.
type ExtFaultsResult struct {
	ID    string
	Title string
	Plan  faults.Plan
	Rows  []ExtFaultsRow // exactly {clean, degraded}
}

// ExperimentID implements Result.
func (r *ExtFaultsResult) ExperimentID() string { return r.ID }

// Render implements Result.
func (r *ExtFaultsResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Extension (robustness) — %s, NT 4.0 clean vs degraded\n\n", r.Title)
	fmt.Fprintf(w, "  fault plan (seed %d):\n", r.Plan.Seed)
	for _, f := range r.Plan.Faults {
		fmt.Fprintf(w, "    %s\n", f)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		rep := row.Report
		ia := rep.Interarrival(core.PerceptionThresholdMs)
		fmt.Fprintf(w, "  %-8s %4d events  mean %s  >0.1s: %d  total latency %.2fs\n",
			row.Label+":", len(rep.Events), fmtMs(rep.Summary().Mean),
			rep.CountAbove(core.PerceptionThresholdMs), rep.TotalLatency().Seconds())
		fmt.Fprintf(w, "           interarrival of >0.1s events: n=%d mean %.2fs sd %.2fs\n",
			ia.Count, ia.MeanSec, ia.StdDevSec)
		fmt.Fprintf(w, "           think %.1fs / wait %.1fs (%d transitions)\n",
			row.ThinkMs/1000, row.WaitMs/1000, row.Transitions)
		fmt.Fprintf(w, "           machine: retries=%d media-errors=%d io-errors=%d evictions=%d interrupts=%d\n",
			row.Retries, row.MediaErrors, row.IOErrors, row.ForcedEvictions, row.Interrupts)
	}
	fmt.Fprintln(w)
	return nil
}

// Artifacts implements ArtifactProvider.
func (r *ExtFaultsResult) Artifacts() []Artifact {
	var out []Artifact
	for _, row := range r.Rows {
		out = append(out, EventsArtifact(row.Label, row.Report.Events),
			ReportArtifact(row.Label, row.Report))
	}
	return out
}

// faultsTarget builds the arming target for a booted rig: a dedicated
// "indexer" background thread (the inversion victim), boosted above the
// application during PriorityInversion windows.
func faultsTarget(r *rig, needBackground bool) faults.Target {
	t := faults.Target{K: r.sys.K, BoostPrio: system.AppPrio + 2}
	if needBackground {
		t.Background = r.sys.K.Spawn("indexer", kernel.KernelProc, system.BackgroundPrio, func(tc *kernel.TC) {
			burst := r.sys.P.Kernel.ClockInterrupt
			burst.Name = "indexer"
			burst.BaseCycles = 1_200_000 // 12 ms at 100 MHz
			for {
				tc.Sleep(40 * simtime.Millisecond)
				tc.Compute(burst)
			}
		})
	}
	return t
}

// faultsPPT runs the paper's PowerPoint task (launch, open, page
// through, OLE edit, save — §5.2) under plan and returns the analysis
// row. label tags the row; an empty plan is the clean baseline.
func faultsPPT(label string, cfg Config, plan faults.Plan) ExtFaultsRow {
	p := persona.NT40()
	params := apps.DefaultPowerpointParams()
	pageDowns := []int{9, 10, 10}
	edits := 3
	if cfg.Quick {
		params.Slides = 12
		params.ObjectSlides = []int{3, 6, 9}
		pageDowns = []int{2, 3, 3}
		edits = 2
	}
	r := newRig(cfg, p, 400)
	defer r.shutdown()
	faults.NewClock(plan).Arm(faultsTarget(r, false))
	ppt := apps.NewPowerpoint(r.sys, params)

	think := 300 * simtime.Millisecond
	var steps []chainStep
	steps = append(steps, step(kernel.WMCommand, apps.CmdLaunch, 500*simtime.Millisecond))
	steps = append(steps, step(kernel.WMCommand, apps.CmdOpen, think))
	for i := 0; i < edits; i++ {
		for j := 0; j < pageDowns[i]; j++ {
			steps = append(steps, step(kernel.WMKeyDown, input.VKPageDown, think))
		}
		steps = append(steps, step(kernel.WMCommand, apps.CmdEditObject+int64(i), think))
		for k := 0; k < 3; k++ {
			steps = append(steps, step(kernel.WMChar, '7', 150*simtime.Millisecond))
		}
		steps = append(steps, step(kernel.WMCommand, apps.CmdEndEdit, think))
	}
	steps = append(steps, step(kernel.WMCommand, apps.CmdSave, think))

	runChain(r.sys, steps, true, simtime.Time(380*simtime.Second))
	// Analyse through the trailing quiescence runChain appends, so the
	// FSM end matches the probe's last records.
	return faultsRow(label, r, ppt.Thread(), r.sys.K.Now())
}

// faultsTyping runs a paced Notepad typing session under plan.
func faultsTyping(label string, cfg Config, plan faults.Plan) ExtFaultsRow {
	p := persona.NT40()
	chars := 150
	if cfg.Quick {
		chars = 60
	}
	r := newRig(cfg, p, 240)
	defer r.shutdown()
	faults.NewClock(plan).Arm(faultsTarget(r, true))
	n := apps.NewNotepad(r.sys, 250_000)
	ty := input.NewTypist(cfg.Seed, 70)
	script := &input.Script{Events: ty.Type(simtime.Time(300*simtime.Millisecond), input.SampleText(chars))}
	script.Install(r.sys)
	done := r.sys.K.Run(script.End().Add(3 * simtime.Second))
	return faultsRow(label, r, n.Thread(), done)
}

// faultsRow extracts the common analysis from a finished rig.
func faultsRow(label string, r *rig, t *kernel.Thread, end simtime.Time) ExtFaultsRow {
	events := r.extract(t, true)
	f := core.DriveFSM(r.pr, t.ID(), end)
	k := r.sys.K
	return ExtFaultsRow{
		Label:           label,
		Report:          core.NewReport(events, simtime.Duration(end)),
		ThinkMs:         f.ThinkTime().Milliseconds(),
		WaitMs:          f.WaitTime().Milliseconds(),
		Transitions:     len(f.Transitions()),
		Retries:         k.Disk().Retries(),
		MediaErrors:     k.Disk().MediaErrors(),
		IOErrors:        k.IOErrors(),
		ForcedEvictions: k.Cache().ForcedEvictions(),
		Interrupts:      k.CPU().Count(cpu.Interrupts),
	}
}

// faultsBrowser runs a document-browser session whose warmth lives in
// the buffer cache: each page-down reads the next 64-page window of a
// large report file in small chunks, cycling through the file twice, so
// the second pass is cache-warm on a clean machine and cold again under
// eviction pressure — the paper's "effects of the file system cache"
// phenomenon produced (and destroyed) on demand.
func faultsBrowser(label string, cfg Config, plan faults.Plan) ExtFaultsRow {
	p := persona.NT40()
	const viewPages, chunk = 64, 8
	views := 16
	if cfg.Quick {
		views = 8
	}
	r := newRig(cfg, p, 120)
	defer r.shutdown()
	faults.NewClock(plan).Arm(faultsTarget(r, false))

	db := r.sys.K.Cache().AddFile("reports.db", 600_000, int64(views)*viewPages)
	browse := cpu.Segment{Name: "browse", BaseCycles: 400_000,
		Instructions: 250_000, DataRefs: 90_000,
		CodePages: []uint64{700, 701, 702}, DataPages: []uint64{720, 721}}
	view := int64(0)
	app := r.sys.SpawnApp("browser", func(tc *kernel.TC) {
		for {
			m := tc.GetMessage()
			if m.Kind != kernel.WMKeyDown {
				continue
			}
			base := (view % int64(views)) * viewPages
			for q := int64(0); q < viewPages; q += chunk {
				tc.ReadFile(db, base+q, chunk)
			}
			tc.Compute(browse)
			view++
		}
	})

	var steps []chainStep
	for i := 0; i < 2*views; i++ {
		steps = append(steps, step(kernel.WMKeyDown, input.VKPageDown, 300*simtime.Millisecond))
	}
	runChain(r.sys, steps, true, simtime.Time(110*simtime.Second))
	return faultsRow(label, r, app, r.sys.K.Now())
}

func runExtFaultsDisk(ctx context.Context, cfg Config) (Result, error) {
	span := 120 * simtime.Second
	if cfg.Quick {
		span = 30 * simtime.Second
	}
	plan := faults.Generate(cfg.Seed, span,
		faults.DiskDegrade, faults.DiskStall, faults.DiskMediaErrors)
	res := &ExtFaultsResult{ID: "ext-faults-disk",
		Title: "Powerpoint task under disk faults (degrade, stall, media errors)", Plan: plan}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, faultsPPT("clean", cfg, faults.Plan{}))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, faultsPPT("degraded", cfg, plan))
	return res, nil
}

func runExtFaultsIRQ(ctx context.Context, cfg Config) (Result, error) {
	// Span matches the typing session (~10 s quick, ~26 s full) so the
	// fault windows land mid-session.
	span := 26 * simtime.Second
	if cfg.Quick {
		span = 12 * simtime.Second
	}
	plan := faults.Generate(cfg.Seed, span,
		faults.IRQStorm, faults.TimerJitter, faults.PriorityInversion)
	res := &ExtFaultsResult{ID: "ext-faults-irq",
		Title: "Notepad typing under interrupt storm, timer jitter, priority inversion", Plan: plan}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, faultsTyping("clean", cfg, faults.Plan{}))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, faultsTyping("degraded", cfg, plan))
	return res, nil
}

func runExtFaultsCache(ctx context.Context, cfg Config) (Result, error) {
	// Span covers the two browsing passes (~8 s quick, ~18 s full) so
	// the pressure window straddles the warm second pass.
	span := 18 * simtime.Second
	if cfg.Quick {
		span = 10 * simtime.Second
	}
	plan := faults.Generate(cfg.Seed, span, faults.CachePressure)
	res := &ExtFaultsResult{ID: "ext-faults-cache",
		Title: "document browsing under buffer-cache pressure", Plan: plan}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, faultsBrowser("clean", cfg, faults.Plan{}))
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, faultsBrowser("degraded", cfg, plan))
	return res, nil
}

func init() {
	Register(Spec{ID: "ext-faults-disk", Title: "Latency analysis under injected disk faults",
		Paper: "Table 1, §5.2 (robustness extension)", Run: runExtFaultsDisk})
	Register(Spec{ID: "ext-faults-irq", Title: "Latency analysis under interrupt and scheduler faults",
		Paper: "§2.5, §5.3 (robustness extension)", Run: runExtFaultsIRQ})
	Register(Spec{ID: "ext-faults-cache", Title: "Latency analysis under cache pressure",
		Paper: "Table 1, §5.2 (robustness extension)", Run: runExtFaultsCache})
}
