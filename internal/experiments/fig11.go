package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/core"
	"latlab/internal/persona"
	"latlab/internal/stats"
	"latlab/internal/viz"
)

// Fig11Persona is one NT system's Word summary.
type Fig11Persona struct {
	Persona string
	Report  *core.Report
	Summary stats.Summary
}

// Fig11Result is the Microsoft Word event latency summary of paper
// Fig. 11 (Test-driven, NT only: under Windows 95 the system never goes
// idle after Word events, §5.4).
type Fig11Result struct {
	Systems []Fig11Persona
}

// ExperimentID implements Result.
func (r *Fig11Result) ExperimentID() string { return "fig11" }

// Render implements Result.
func (r *Fig11Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fig. 11 — Microsoft Word event latency summary (Test input, NT only)\n\n")
	for _, s := range r.Systems {
		rep := s.Report
		if err := viz.Histogram(w,
			fmt.Sprintf("%s — %d events, mean %.1fms std %.1fms (log count)",
				s.Persona, len(rep.Events), s.Summary.Mean, s.Summary.StdDev),
			rep.Histogram(0, 200, 20), 40); err != nil {
			return err
		}
		if err := viz.CumulativeCurve(w, "  cumulative latency", rep.CumulativeCurve(),
			rep.Elapsed, 70, 8); err != nil {
			return err
		}
		if err := viz.CumulativeByEvents(w, "  cumulative latency by event count",
			rep.CumulativeCurve(), 70, 6); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "  (Windows 95 omitted: the system does not become idle after Word")
	fmt.Fprintln(w, "  events, making all latencies appear seconds long — paper §5.1/§5.4.)")
	return nil
}

// Artifacts implements ArtifactProvider.
func (r *Fig11Result) Artifacts() []Artifact {
	var out []Artifact
	for _, s := range r.Systems {
		out = append(out, EventsArtifact(s.Persona, s.Report.Events),
			ReportArtifact(s.Persona, s.Report))
	}
	return out
}

func runFig11(ctx context.Context, cfg Config) (Result, error) {
	chars := 1000
	if cfg.Quick {
		chars = 120
	}
	res := &Fig11Result{}
	for _, p := range persona.NTs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		events, elapsed, _ := wordTrace(cfg, p, cfg.Seed, chars, true)
		rep := core.NewReport(events, elapsed)
		res.Systems = append(res.Systems, Fig11Persona{
			Persona: p.Name,
			Report:  rep,
			Summary: rep.Summary(),
		})
	}
	return res, nil
}

// Table2Row is one threshold's interarrival summary.
type Table2Row struct {
	ThresholdMs float64
	Count       int
	MeanSec     float64
	StdDevSec   float64
}

// Table2Result reproduces paper Table 2: interarrival distributions of
// above-threshold events in the Word benchmark on Windows NT 3.51.
type Table2Result struct {
	TotalEvents int
	Rows        []Table2Row
}

// ExperimentID implements Result.
func (r *Table2Result) ExperimentID() string { return "table2" }

// Render implements Result.
func (r *Table2Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "Table 2 — Interarrival of long-latency events, Word on NT 3.51 (%d events)\n\n", r.TotalEvents)
	fmt.Fprintf(w, "  %-12s %8s %12s %12s\n", "threshold", "events", "mean (s)", "std dev (s)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %9.0fms %8d %12.1f %12.1f\n",
			row.ThresholdMs, row.Count, row.MeanSec, row.StdDevSec)
	}
	return nil
}

func runTable2(ctx context.Context, cfg Config) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	chars := 1000
	if cfg.Quick {
		chars = 150
	}
	events, elapsed, _ := wordTrace(cfg, persona.NT351(), cfg.Seed, chars, true)
	rep := core.NewReport(events, elapsed)
	res := &Table2Result{TotalEvents: len(events)}
	for _, th := range []float64{100, 110, 120} {
		ia := rep.Interarrival(th)
		res.Rows = append(res.Rows, Table2Row{
			ThresholdMs: th, Count: ia.Count, MeanSec: ia.MeanSec, StdDevSec: ia.StdDevSec,
		})
	}
	return res, nil
}

func init() {
	Register(Spec{ID: "fig11", Title: "Microsoft Word event latency summary",
		Paper: "Fig. 11, §5.4", Run: runFig11})
	Register(Spec{ID: "table2", Title: "Interarrival distributions for the Word benchmark",
		Paper: "Table 2, §6", Run: runTable2})
}
