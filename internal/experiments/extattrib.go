// The ext-attrib experiment re-derives the paper's §5.3 attribution
// argument from span data alone. The paper infers from hardware
// counters that TLB misses explain "at least 23-25%" of the latency
// gap between NT 3.51's user-level window server and NT 4.0's
// in-kernel one; ext-hw-tlb already checks that inference with a
// tagged-TLB counterfactual. Here the same crossing-heavy keystroke
// runs under the span recorder, and the gap is decomposed directly:
// every cause's share is read off the episode attributions, no
// counterfactual machine and no counter arithmetic required. The
// counters are kept only as a cross-check that the two attribution
// paths agree cycle for cycle.
package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/cpu"
	"latlab/internal/kernel"
	"latlab/internal/machine"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/spans"
)

// ExtAttribCell is one persona's span-derived keystroke decomposition:
// warm per-event wall latency and its mean attribution by cause, plus
// the whole-run TLB cycle totals from both attribution paths.
type ExtAttribCell struct {
	Persona string
	// Events is the number of warm episodes averaged (the cold first
	// episode is dropped, as the paper's warm/cold split requires).
	Events int
	// WarmMs is the mean warm episode wall latency (interrupt to the
	// handler's next message-API call), in milliseconds.
	WarmMs float64
	// CauseMs is the mean warm attributed milliseconds per cause.
	CauseMs [spans.NumCauses]float64
	// SpanTLBCycles sums the run's CauseTLBMiss span cycles;
	// CounterTLBCycles is the counter-based equivalent (ITLB + DTLB
	// miss deltas times the machine's refill penalty). The two must
	// agree exactly — same charges, observed two ways.
	SpanTLBCycles    int64
	CounterTLBCycles int64
}

// AttribSum returns the cell's total attributed milliseconds.
func (c ExtAttribCell) AttribSum() float64 {
	var sum float64
	for cause, ms := range c.CauseMs {
		if !spans.Cause(cause).Container() {
			sum += ms
		}
	}
	return sum
}

// ExtAttribResult is the ext-attrib outcome: the two NT personas'
// decompositions on the paper's machine and the span-derived answer to
// §5.3's question — how much of the NT 3.51 − NT 4.0 gap is TLB time.
type ExtAttribResult struct {
	Machine string
	Cells   []ExtAttribCell // NT 3.51 first, NT 4.0 second
	// GapMs is the NT 3.51 − NT 4.0 warm wall-latency gap per event;
	// TLBGapMs is the same difference restricted to tlb-miss time.
	GapMs    float64
	TLBGapMs float64
	// TLBSharePct is 100*TLBGapMs/GapMs — the span-derived version of
	// the paper's "at least 23-25%".
	TLBSharePct float64
}

// attribCell runs the ext-hw-tlb crossing workload (each keystroke
// makes `calls` Win32 calls, recomputing over a 48-page window after
// each) on persona p with the span recorder attached, and reduces the
// span log to a per-cause mean over the warm episodes.
func attribCell(cfg Config, p persona.P, prof machine.Profile, keystrokes, calls int) ExtAttribCell {
	r := newRigOn(cfg, p, prof, keystrokes/2+20)
	defer r.shutdown()
	rec := r.spansOn()
	appData := make([]uint64, 48)
	for i := range appData {
		appData[i] = 1500 + uint64(i)
	}
	work := cpu.Segment{
		Name: "attrib-work", BaseCycles: 6000,
		Instructions: 3600, DataRefs: 1800,
		CodePages: []uint64{320, 321}, DataPages: appData,
	}
	r.sys.SpawnApp("attrib", func(tc *kernel.TC) {
		for {
			m := tc.GetMessage()
			if m.Kind == kernel.WMQuit {
				return
			}
			for i := 0; i < calls; i++ {
				r.sys.Win.DefWindowProc(tc)
				tc.Compute(work)
			}
		}
	})
	r.sys.Win.BindApp([]uint64{320, 321})
	for i := 0; i < keystrokes; i++ {
		at := simtime.Time(500+int64(i)*200) * simtime.Time(simtime.Millisecond)
		r.sys.K.At(at, func(simtime.Time) { r.sys.Inject(kernel.WMKeyDown, 'a', false) })
	}
	before := r.sys.K.CPU().Snapshot()
	r.sys.K.Run(simtime.Time(500+int64(keystrokes)*200)*simtime.Time(simtime.Millisecond) + simtime.Time(2*simtime.Second))
	after := r.sys.K.CPU().Snapshot()

	cell := ExtAttribCell{Persona: p.Name}
	all := spans.Attribution(rec.Spans())
	cell.SpanTLBCycles = all.Cycles[spans.CauseTLBMiss]
	cell.CounterTLBCycles = (after[cpu.ITLBMisses] - before[cpu.ITLBMisses] +
		after[cpu.DTLBMisses] - before[cpu.DTLBMisses]) * r.sys.K.CPU().Penalties.TLBMiss

	eps, _ := spans.Episodes(rec.Spans())
	if len(eps) < 2 {
		return cell
	}
	warm := eps[1:] // drop the cold trial
	cell.Events = len(warm)
	for _, ep := range warm {
		cell.WarmMs += ep.Duration().Milliseconds()
		for cause, d := range ep.A.Dur {
			cell.CauseMs[cause] += d.Milliseconds()
		}
	}
	n := float64(len(warm))
	cell.WarmMs /= n
	for cause := range cell.CauseMs {
		cell.CauseMs[cause] /= n
	}
	return cell
}

// cellByPersona returns the cell for the named persona, or a zero cell.
func cellByPersona(cells []ExtAttribCell, name string) ExtAttribCell {
	for _, c := range cells {
		if c.Persona == name {
			return c
		}
	}
	return ExtAttribCell{}
}

// ExperimentID implements Result.
func (r *ExtAttribResult) ExperimentID() string { return "ext-attrib" }

// Render implements Result.
func (r *ExtAttribResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Extension (§5.3) — where did the time go? Span-derived attribution on the %s\n", r.Machine)
	fmt.Fprintf(w, "(crossing-heavy keystrokes, warm mean ms/event)\n\n")
	nt351 := cellByPersona(r.Cells, persona.NT351().Name)
	nt40 := cellByPersona(r.Cells, persona.NT40().Name)
	fmt.Fprintf(w, "  %-14s %10s %10s %10s\n", "cause", "NT 3.51", "NT 4.0", "delta")
	for c := spans.Cause(0); c < spans.NumCauses; c++ {
		if c.Container() {
			continue
		}
		a, b := nt351.CauseMs[c], nt40.CauseMs[c]
		if a == 0 && b == 0 {
			continue
		}
		fmt.Fprintf(w, "  %-14s %8.3fms %8.3fms %+8.3fms\n", c.String(), a, b, a-b)
	}
	fmt.Fprintf(w, "  %-14s %8.3fms %8.3fms %+8.3fms\n", "(attributed)", nt351.AttribSum(), nt40.AttribSum(),
		nt351.AttribSum()-nt40.AttribSum())
	fmt.Fprintf(w, "  %-14s %8.3fms %8.3fms %+8.3fms   (%d / %d warm events)\n", "episode wall",
		nt351.WarmMs, nt40.WarmMs, r.GapMs, nt351.Events, nt40.Events)
	fmt.Fprintf(w, "\n  NT 3.51 − NT 4.0 gap: %.3fms/event, of which tlb-miss %.3fms — %.0f%% of the gap\n",
		r.GapMs, r.TLBGapMs, r.TLBSharePct)
	fmt.Fprintf(w, "  paper §5.3: TLB misses are \"at least 23-25%%\" of the difference\n")
	fmt.Fprintf(w, "\n  cross-check vs hardware counters (whole-run TLB refill cycles):\n")
	for _, c := range r.Cells {
		verdict := "agree"
		if c.SpanTLBCycles != c.CounterTLBCycles {
			verdict = "DISAGREE"
		}
		fmt.Fprintf(w, "    %-16s spans %9d = misses × penalty %9d  [%s]\n",
			c.Persona, c.SpanTLBCycles, c.CounterTLBCycles, verdict)
	}
	fmt.Fprintf(w, "\n  The table is read straight off the span log: each keystroke episode\n")
	fmt.Fprintf(w, "  (interrupt → next GetMessage) sums its leaf spans by cause. The gap\n")
	fmt.Fprintf(w, "  between the personas concentrates in tlb-miss time — the refills that\n")
	fmt.Fprintf(w, "  NT 3.51's user-level server manufactures by flushing the untagged TLBs\n")
	fmt.Fprintf(w, "  on every protection-domain crossing — reproducing the paper's counter-\n")
	fmt.Fprintf(w, "  based argument from a direct decomposition instead of an inference.\n")
	return nil
}

func runExtAttrib(ctx context.Context, cfg Config) (Result, error) {
	prof := machine.Pentium100() // the paper's machine, like ext-hw-tlb's base cell
	res := &ExtAttribResult{Machine: prof.Short}
	keystrokes, calls := 30, 4
	if cfg.Quick {
		keystrokes = 10
	}
	for _, p := range persona.NTs() {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		res.Cells = append(res.Cells, attribCell(cfg, p, prof, keystrokes, calls))
	}
	nt351 := cellByPersona(res.Cells, persona.NT351().Name)
	nt40 := cellByPersona(res.Cells, persona.NT40().Name)
	res.GapMs = nt351.WarmMs - nt40.WarmMs
	res.TLBGapMs = nt351.CauseMs[spans.CauseTLBMiss] - nt40.CauseMs[spans.CauseTLBMiss]
	if res.GapMs != 0 {
		res.TLBSharePct = 100 * res.TLBGapMs / res.GapMs
	}
	return res, nil
}

func init() {
	Register(Spec{ID: "ext-attrib", Title: "Span-derived latency attribution for the NT architecture gap",
		Paper: "§5.3 (extension)", Run: runExtAttrib})
}
