package experiments

import (
	"fmt"

	"latlab/internal/faults"
	"latlab/internal/kernel"
	"latlab/internal/machine"
	"latlab/internal/persona"
	"latlab/internal/scenario"
	"latlab/internal/simtime"
	"latlab/internal/system"
)

// This file decomposes a scenario run into open / step-to-target /
// finish so the batch engine (internal/system.Batch) can interleave
// many sessions on one worker. The decomposition is a pure refactor of
// the sequential drivers: every driver's run phase was already a
// milestone program — a single Run(until) for typing, the 500 ms
// poll-slice loop plus 2 s trailing for completion-paced chains — and
// ScenarioSession replays exactly those milestones, so a session
// stepped inside a batch is byte-identical to one run alone
// (TestBatchSessionEquivalence pins this).

// Session program kinds.
const (
	// sessOnce runs to a single precomputed end time (typing).
	sessOnce uint8 = iota
	// sessChain polls a completion-paced chain in 500 ms slices until
	// the chain reports done, then switches to sessTrailing.
	sessChain
	// sessTrailing runs the 2 s trailing quiescence after a chain.
	sessTrailing
)

// ScenarioSession is one opened, not-yet-finished scenario run: a
// booted machine plus the driver's milestone program. It implements
// system.BatchSession so a batch can step it; Result extracts the
// identical ScenarioResult the sequential path produces.
type ScenarioSession struct {
	r      *rig
	label  string
	thread *kernel.Thread

	kind      uint8
	target    simtime.Time
	deadline  simtime.Time
	chainDone *simtime.Time
	finished  bool
	closed    bool

	// Result metadata, filled by OpenScenarioSession.
	docID   string
	banner  string
	persona string
	machine string
	seed    uint64
	plan    faults.Plan
}

// Sys implements system.BatchSession.
func (s *ScenarioSession) Sys() *system.System { return s.r.sys }

// NextTarget implements system.BatchSession: the next simulated
// instant the session's program needs control at, simtime.Never once
// the program has finished.
func (s *ScenarioSession) NextTarget() simtime.Time {
	if s.finished {
		return simtime.Never
	}
	return s.target
}

// OnTarget implements system.BatchSession: the machine's clock is at
// the target; execute the program step and compute the next target.
// The chain transitions replicate runChain's loop exactly: full 500 ms
// slices while the chain is unfinished and the deadline unreached,
// then one 2 s trailing slice.
func (s *ScenarioSession) OnTarget() {
	now := s.r.sys.K.Now()
	switch s.kind {
	case sessOnce, sessTrailing:
		s.finished = true
	case sessChain:
		if *s.chainDone != 0 {
			s.kind = sessTrailing
			s.target = now.Add(2 * simtime.Second)
			return
		}
		if now >= s.deadline {
			panic(fmt.Sprintf("experiments: chain did not complete by %v", s.deadline))
		}
		s.target = now.Add(500 * simtime.Millisecond)
	}
}

// run drives the session to completion sequentially — the slow path
// the drivers and the compare scenarios use.
func (s *ScenarioSession) run() ExtFaultsRow {
	defer s.Close()
	for !s.finished {
		s.r.sys.K.Run(s.target)
		s.OnTarget()
	}
	return s.row()
}

// row extracts the driver's analysis row and releases the machine.
// Extraction happens before shutdown, matching the sequential drivers'
// deferred-shutdown ordering.
func (s *ScenarioSession) row() ExtFaultsRow {
	row := faultsRow(s.label, s.r, s.thread, s.r.sys.K.Now())
	s.Close()
	return row
}

// Close releases the session's machine. Idempotent; a batch calls it
// on abandoned sessions when a sibling fails mid-batch.
func (s *ScenarioSession) Close() {
	if !s.closed {
		s.closed = true
		s.r.shutdown()
	}
}

// Result extracts the finished session's outcome — identical to what
// runScenario's single-run path returns for the same Config and Doc.
func (s *ScenarioSession) Result() *ScenarioResult {
	if !s.finished {
		panic("experiments: Result on an unfinished session")
	}
	return &ScenarioResult{
		DocID:   s.docID,
		Banner:  s.banner,
		Persona: s.persona,
		Machine: s.machine,
		Seed:    s.seed,
		Plan:    s.plan,
		Row:     s.row(),
	}
}

// OpenScenarioSession resolves doc against cfg exactly like the
// compiled Spec's Run and boots the session without running it. The
// caller steps it (directly or inside a system.Batch) until
// NextTarget returns simtime.Never, then calls Result. Compare
// scenarios have no single-session decomposition and are refused.
func OpenScenarioSession(cfg Config, doc scenario.Doc) (*ScenarioSession, error) {
	if len(doc.Compare) > 0 {
		return nil, fmt.Errorf("scenario %s: compare scenarios cannot run as batched sessions", doc.ID)
	}
	if doc.Seed != 0 {
		cfg.Seed = doc.Seed
	}
	if doc.Machine != "" {
		prof, ok := machine.ByShort(doc.Machine)
		if !ok {
			return nil, fmt.Errorf("scenario %s: unknown machine %q", doc.ID, doc.Machine)
		}
		cfg.Machine = prof
	}
	p, ok := persona.ByShort(doc.Persona)
	if !ok {
		return nil, fmt.Errorf("scenario %s: unknown persona %q", doc.ID, doc.Persona)
	}
	open, err := scenarioOpener(doc.Workload.Kind)
	if err != nil {
		return nil, err
	}
	sc := scRun{p: p, prm: doc.Workload.Resolve(cfg.Quick), stanzas: doc.Input, seed: cfg.Seed}
	plan := scenarioPlan(doc, cfg)
	s := open("run", cfg, sc, plan)
	s.docID = doc.ID
	s.banner = doc.BannerOrTitle()
	s.persona = doc.Persona
	s.machine = cfg.MachineProfile().Short
	s.seed = cfg.Seed
	s.plan = plan
	return s, nil
}
