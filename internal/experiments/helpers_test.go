package experiments

import (
	"context"
	"strings"
	"testing"

	"latlab/internal/apps"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
)

// mustRun executes an experiment run function with a background context
// and fails the test on error.
func mustRun(t *testing.T, f func(context.Context, Config) (Result, error), cfg Config) Result {
	t.Helper()
	res, err := f(context.Background(), cfg)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestFmtMs(t *testing.T) {
	if got := fmtMs(2.345); got != "2.35ms" {
		t.Fatalf("fmtMs(2.345) = %q", got)
	}
	if got := fmtMs(10760); got != "10.760s" {
		t.Fatalf("fmtMs(10760) = %q", got)
	}
}

func TestRunChainDeadlinePanics(t *testing.T) {
	r := newRig(DefaultConfig(), persona.NT40(), 10)
	defer r.shutdown()
	apps.NewNotepad(r.sys, 250_000)
	defer func() {
		if rec := recover(); rec == nil {
			t.Fatalf("expected deadline panic")
		} else if !strings.Contains(rec.(string), "did not complete") {
			t.Fatalf("unexpected panic: %v", rec)
		}
	}()
	// A step that never quiesces in time: inject a command the notepad
	// ignores but give an impossible deadline (now).
	runChain(r.sys, []chainStep{step(kernel.WMChar, 'a', simtime.Second)}, false, r.sys.K.Now())
}

func TestChainPacingWaitsForCompletion(t *testing.T) {
	// Each chain step must start at least `think` after the previous
	// event's completion.
	r := newRig(DefaultConfig(), persona.NT40(), 30)
	defer r.shutdown()
	n := apps.NewNotepad(r.sys, 250_000)
	think := 300 * simtime.Millisecond
	steps := []chainStep{
		step(kernel.WMChar, 'a', think),
		step(kernel.WMChar, 'b', think),
		step(kernel.WMChar, 'c', think),
	}
	runChain(r.sys, steps, false, simtime.Time(20*simtime.Second))
	events := r.extract(n.Thread(), false)
	if len(events) != 3 {
		t.Fatalf("events = %d", len(events))
	}
	for i := 1; i < len(events); i++ {
		gap := events[i].Enqueued.Sub(events[i-1].End)
		if gap < think-50*simtime.Millisecond {
			t.Fatalf("step %d issued %v after completion, want ≥%v", i, gap, think)
		}
	}
}
