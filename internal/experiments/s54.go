package experiments

import (
	"context"
	"fmt"
	"io"

	"latlab/internal/core"
	"latlab/internal/kernel"
	"latlab/internal/persona"
	"latlab/internal/simtime"
	"latlab/internal/stats"
)

// S54Result reproduces the paper's §5.4 Test-versus-hand comparison on
// Windows NT 3.51: Microsoft Test's WM_QUEUESYNC after every keystroke
// forces Word to flush its background coroutine work synchronously, so
// Test-measured keystrokes are far slower than hand-typed ones, while
// hand-typed runs show more background activity and longer carriage
// returns.
type S54Result struct {
	TestTypical stats.Summary
	HandTypical stats.Summary
	TestMaxMs   float64
	HandMaxMs   float64
	// HandBackgroundBursts counts the timer-driven spell chunks in the
	// hand run ("a higher level of background activity").
	HandBackgroundBursts int
	TestBackgroundBursts int
}

// ExperimentID implements Result.
func (r *S54Result) ExperimentID() string { return "s54" }

// Render implements Result.
func (r *S54Result) Render(w io.Writer) error {
	fmt.Fprintf(w, "§5.4 — Word under Microsoft Test vs hand-generated input (NT 3.51)\n\n")
	fmt.Fprintf(w, "  %-24s %12s %12s\n", "", "Test", "hand")
	fmt.Fprintf(w, "  %-24s %11.1fms %11.1fms\n", "typical keystroke", r.TestTypical.Mean, r.HandTypical.Mean)
	fmt.Fprintf(w, "  %-24s %11.1fms %11.1fms\n", "longest event", r.TestMaxMs, r.HandMaxMs)
	fmt.Fprintf(w, "  %-24s %12d %12d\n", "background bursts", r.TestBackgroundBursts, r.HandBackgroundBursts)
	fmt.Fprintf(w, "\n  Hypothesis (paper): the WM_QUEUESYNC message Test posts after every\n")
	fmt.Fprintf(w, "  keystroke forces synchronous processing of Word's deferred work.\n")
	return nil
}

func runS54(ctx context.Context, cfg Config) (Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	chars := 600
	if cfg.Quick {
		chars = 120
	}
	res := &S54Result{}

	typical := func(events []core.Event) stats.Summary {
		var ms []float64
		for _, e := range events {
			if e.Kind == kernel.WMChar && e.Latency < simtime.FromMillis(190) {
				ms = append(ms, e.Latency.Milliseconds())
			}
		}
		return stats.Summarize(ms)
	}
	maxMs := func(events []core.Event) float64 {
		m := 0.0
		for _, e := range events {
			if v := e.Latency.Milliseconds(); v > m {
				m = v
			}
		}
		return m
	}

	testEvents, _, wTest := wordTrace(cfg, persona.NT351(), cfg.Seed, chars, true)
	res.TestTypical = typical(testEvents)
	res.TestMaxMs = maxMs(testEvents)
	res.TestBackgroundBursts = wTest.BackgroundBursts

	handEvents, _, wHand := wordTrace(cfg, persona.NT351(), cfg.Seed+1, chars, false)
	res.HandTypical = typical(handEvents)
	res.HandMaxMs = maxMs(handEvents)
	res.HandBackgroundBursts = wHand.BackgroundBursts
	return res, nil
}

func init() {
	Register(Spec{ID: "s54", Title: "Word: Microsoft Test vs hand-generated input",
		Paper: "§5.4", Run: runS54})
}
