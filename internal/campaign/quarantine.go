package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// QuarantineSchemaVersion is the quarantine-entry schema. Entries
// declare it like ledger records, so a sidecar written by an
// incompatible engine is detected instead of misread.
const QuarantineSchemaVersion = 1

// Quarantine is one quarantined cell: a cell whose sessions errored,
// panicked, or timed out. The run records it here and moves on instead
// of aborting; `campaign resume` retries it with the same seeds under
// the per-cell retry budget. Entries carry no timestamps so the sidecar
// stays as deterministic as the ledger.
type Quarantine struct {
	// Schema is the entry schema version; must be
	// QuarantineSchemaVersion.
	Schema int `json:"schema"`
	// Campaign is the spec id the cell belongs to.
	Campaign string `json:"campaign"`
	// Scenario, Persona, Machine name the cell's configuration;
	// Faults is its fault-plan variant ("" when the cell ran the
	// template's own block).
	Scenario string `json:"scenario"`
	Persona  string `json:"persona"`
	Machine  string `json:"machine"`
	Faults   string `json:"faults,omitempty"`
	// SeedStart and SeedCount delimit the cell's seed range — the exact
	// seeds a retry re-runs.
	SeedStart uint64 `json:"seed_start"`
	SeedCount int    `json:"seed_count"`
	// Quick records the workload sizing the cell failed under.
	Quick bool `json:"quick,omitempty"`
	// Attempts is the total number of failed attempts so far, across the
	// original run and every resume.
	Attempts int `json:"attempts"`
	// Error is the last attempt's failure.
	Error string `json:"error"`
}

// Cell returns the entry's full cell id, matching Record.Cell and
// Cell.ID.
func (q Quarantine) Cell() string {
	return fmt.Sprintf("%s/%d+%d", configKey(q.Scenario, q.Persona, q.Machine, q.Faults), q.SeedStart, q.SeedCount)
}

// Validate checks a parsed entry's invariants, so a corrupted or
// hand-edited sidecar fails loudly.
func (q Quarantine) Validate() error {
	if q.Schema != QuarantineSchemaVersion {
		return fmt.Errorf("campaign: quarantine schema %d not supported (want %d)", q.Schema, QuarantineSchemaVersion)
	}
	if q.Campaign == "" || q.Scenario == "" || q.Persona == "" || q.Machine == "" {
		return fmt.Errorf("campaign: quarantine entry %s missing configuration fields", q.Cell())
	}
	if q.SeedStart < 1 || q.SeedCount < 1 {
		return fmt.Errorf("campaign: quarantine entry %s has a malformed seed range", q.Cell())
	}
	if q.Attempts < 1 {
		return fmt.Errorf("campaign: quarantine entry %s has no attempts", q.Cell())
	}
	if q.Error == "" {
		return fmt.Errorf("campaign: quarantine entry %s has no error", q.Cell())
	}
	return nil
}

// MarshalQuarantine renders q as one canonical sidecar line (compact
// JSON plus newline), mirroring MarshalRecord.
func MarshalQuarantine(q Quarantine) ([]byte, error) {
	data, err := json.Marshal(q)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return append(data, '\n'), nil
}

// AppendQuarantine writes q to w as one sidecar line.
func AppendQuarantine(w io.Writer, q Quarantine) error {
	data, err := MarshalQuarantine(q)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ParseQuarantine parses a quarantine sidecar with the ledger's
// strictness: every line a complete, canonical, schema-valid entry.
// The file is append-only during a run, so the same cell may appear
// repeatedly with increasing attempt counts; the caller collapses with
// LatestQuarantine. An empty sidecar parses to no entries.
func ParseQuarantine(data []byte) ([]Quarantine, error) {
	if len(data) == 0 {
		return nil, nil
	}
	if data[len(data)-1] != '\n' {
		return nil, fmt.Errorf("campaign: quarantine file ends mid-entry (truncated append?)")
	}
	var out []Quarantine
	line := 0
	for len(data) > 0 {
		line++
		nl := bytes.IndexByte(data, '\n')
		raw := data[:nl]
		data = data[nl+1:]
		if len(bytes.TrimSpace(raw)) == 0 {
			return nil, fmt.Errorf("campaign: quarantine line %d is blank", line)
		}
		q, err := parseQuarantineEntry(raw)
		if err != nil {
			return nil, fmt.Errorf("campaign: quarantine line %d: %w", line, err)
		}
		out = append(out, q)
	}
	return out, nil
}

// parseQuarantineEntry decodes one sidecar line strictly and checks
// canonical form, mirroring parseRecord.
func parseQuarantineEntry(raw []byte) (Quarantine, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var q Quarantine
	if err := dec.Decode(&q); err != nil {
		return Quarantine{}, err
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return Quarantine{}, fmt.Errorf("trailing data after entry")
	}
	if err := q.Validate(); err != nil {
		return Quarantine{}, err
	}
	canon, err := json.Marshal(q)
	if err != nil {
		return Quarantine{}, err
	}
	if !bytes.Equal(canon, raw) {
		return Quarantine{}, fmt.Errorf("entry is not in canonical form")
	}
	return q, nil
}

// LatestQuarantine collapses an append-only entry stream to the latest
// entry per cell — the one with the freshest attempt count, since
// entries for a cell are only ever appended with growing Attempts.
func LatestQuarantine(entries []Quarantine) map[string]Quarantine {
	out := make(map[string]Quarantine, len(entries))
	for _, q := range entries {
		out[q.Cell()] = q
	}
	return out
}

// QuarantinePath derives the sidecar path from the ledger path:
// ledger.jsonl → ledger.quarantine.jsonl (other extensions just gain
// the suffix).
func QuarantinePath(ledgerPath string) string {
	if strings.HasSuffix(ledgerPath, ".jsonl") {
		return strings.TrimSuffix(ledgerPath, ".jsonl") + ".quarantine.jsonl"
	}
	return ledgerPath + ".quarantine.jsonl"
}

// LoadQuarantine reads and parses the sidecar at path; a missing file
// is an empty quarantine.
func LoadQuarantine(path string) ([]Quarantine, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return ParseQuarantine(data)
}

// WriteQuarantine atomically replaces the sidecar at path with the
// given entries (write to a temp file, fsync, rename), compacting the
// append-only stream; with no entries the sidecar is removed. A crash
// at any point leaves either the old file or the new one, never a torn
// sidecar.
func WriteQuarantine(path string, entries []Quarantine) error {
	if len(entries) == 0 {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("campaign: %w", err)
		}
		return nil
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	defer os.Remove(tmp.Name())
	for _, q := range entries {
		if err := AppendQuarantine(tmp, q); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("campaign: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("campaign: %w", err)
	}
	return nil
}
