package campaign

import (
	"fmt"
)

// Resume plans a crash-safe continuation of a campaign: feed it every
// record already in the ledger (streamed, via Observe) and it computes
// the set-difference against the spec's expanded cells — the cells
// still to run, in canonical expansion order. Because every cell's
// record depends only on its own configuration and seeds, an
// interrupted run plus a resume produces the same record bytes as an
// uninterrupted run; and because an interrupted run's ledger is always
// a prefix of expansion order (the reorder buffer emits in order and
// appends stop at the first gap), appending the remainder in expansion
// order reconverges to the byte-identical full ledger.
type Resume struct {
	c     *Campaign
	quick bool
	alpha float64
	cells []Cell
	byID  map[string]int
	seen  map[string]bool
}

// NewResume starts planning a resume of campaign c in the given mode.
// alpha is the sketch accuracy the new cells will run with; ledger
// records must match it, or merged analysis would silently mix
// accuracies.
func NewResume(c *Campaign, quick bool, alpha float64) *Resume {
	cells := Cells(c)
	byID := make(map[string]int, len(cells))
	for i, cell := range cells {
		byID[cell.ID()] = i
	}
	return &Resume{
		c:     c,
		quick: quick,
		alpha: alpha,
		cells: cells,
		byID:  byID,
		seen:  make(map[string]bool, len(cells)),
	}
}

// Observe accounts one existing ledger record, verifying it belongs to
// this campaign: same campaign id, same mode, same sketch accuracy, a
// cell the spec actually expands, and no duplicates. A ledger that
// fails here is valid JSONL but is not this campaign's — resuming onto
// it would corrupt the set-difference.
func (r *Resume) Observe(rec Record) error {
	if rec.Campaign != r.c.Spec.ID {
		return fmt.Errorf("campaign: ledger record for campaign %q, resuming %q", rec.Campaign, r.c.Spec.ID)
	}
	if rec.Quick != r.quick {
		return fmt.Errorf("campaign: ledger cell %s ran quick=%v, resume requested quick=%v", rec.Cell(), rec.Quick, r.quick)
	}
	if a := rec.Sketch.Alpha(); a != r.alpha {
		return fmt.Errorf("campaign: ledger cell %s has sketch alpha %v, resume requested %v", rec.Cell(), a, r.alpha)
	}
	id := rec.Cell()
	if _, ok := r.byID[id]; !ok {
		return fmt.Errorf("campaign: ledger cell %s is not a cell of spec %s (spec changed since the run?)", id, r.c.Spec.ID)
	}
	if r.seen[id] {
		return fmt.Errorf("campaign: duplicate ledger record for cell %s", id)
	}
	r.seen[id] = true
	return nil
}

// Done reports how many of the spec's cells the ledger already holds.
func (r *Resume) Done() int { return len(r.seen) }

// Missing returns the cells still to run, in canonical expansion
// order. Quarantined cells whose attempt count has reached budget are
// split off into skipped: they stay quarantined rather than burning
// the run's time on a cell that keeps failing. A budget < 1 retries
// nothing.
func (r *Resume) Missing(quar map[string]Quarantine, budget int) (missing []Cell, skipped []Quarantine) {
	for _, cell := range r.cells {
		id := cell.ID()
		if r.seen[id] {
			continue
		}
		if q, ok := quar[id]; ok && q.Attempts >= budget {
			skipped = append(skipped, q)
			continue
		}
		missing = append(missing, cell)
	}
	return missing, skipped
}
