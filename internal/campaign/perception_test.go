package campaign

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// runMiniPerception runs the mini campaign with "perception": true. The
// spec is written next to mini.json so the scenario path resolves.
func runMiniPerception(t *testing.T, opt Options) ([]byte, Summary) {
	t.Helper()
	base, err := os.ReadFile("testdata/mini.json")
	if err != nil {
		t.Fatal(err)
	}
	spec := strings.Replace(string(base), `"id": "mini",`, `"id": "mini",
  "perception": true,`, 1)
	if spec == string(base) {
		t.Fatal("failed to splice the perception flag into the mini spec")
	}
	path := "testdata/mini-perception.json"
	writeFile(t, path, spec)
	t.Cleanup(func() { os.Remove(path) })
	c, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Spec.Perception {
		t.Fatal("spec did not parse the perception flag")
	}
	var buf bytes.Buffer
	sum, err := Run(t.Context(), c, opt, func(r Record) error { return AppendRecord(&buf, r) })
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sum
}

// TestPerceptionLedgerBlock runs the mini campaign with the perception
// flag and checks the ledger contract: every record carries a
// class-complete perception block, the ledger round-trips through the
// strict canonical-form parser, and stripping the block reproduces the
// flag-off ledger byte for byte — the flag adds a column, it never
// moves the headline numbers.
func TestPerceptionLedgerBlock(t *testing.T) {
	opt := Options{Jobs: 2, Quick: true}
	ledger, sum := runMiniPerception(t, opt)
	if sum.Cells != 8 {
		t.Fatalf("summary = %+v, want 8 cells", sum)
	}
	recs, err := ParseLedger(ledger)
	if err != nil {
		t.Fatalf("perception ledger failed the canonical parser: %v", err)
	}
	for i, r := range recs {
		p := r.Perception
		if p == nil {
			t.Fatalf("record %d has no perception block", i)
		}
		if got := p.ClassTotal(); got != r.Events {
			t.Errorf("record %d: class total %d, want %d", i, got, r.Events)
		}
		// The mini scenario is a typing workload: its events are
		// keystrokes, so the typing sketch must hold them all.
		if p.Typing == nil || p.Typing.Count() != r.Events {
			t.Errorf("record %d: typing sketch does not hold every event", i)
		}
		if p.Pointing != nil || p.Command != nil {
			t.Errorf("record %d: pointing/command sketches present for a typing workload", i)
		}
	}
	// Strip the block; the remainder must be the flag-off ledger.
	var stripped bytes.Buffer
	for _, r := range recs {
		r.Perception = nil
		if err := AppendRecord(&stripped, r); err != nil {
			t.Fatal(err)
		}
	}
	baseLedger, _ := runMiniOpt(t, opt)
	if !bytes.Equal(stripped.Bytes(), baseLedger) {
		t.Error("perception flag perturbed the headline ledger bytes")
	}
}

// TestPerceptionAnalyzeTable: analyze renders the per-class table for a
// perception ledger and — the inertness half — omits it entirely for a
// ledger without the block.
func TestPerceptionAnalyzeTable(t *testing.T) {
	ledger, _ := runMiniPerception(t, Options{Jobs: 1, Quick: true})
	recs, err := ParseLedger(ledger)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(recs)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := a.Render(&out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"perception classes", "impercep", "typing-p95"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("perception render missing %q:\n%s", want, out.String())
		}
	}
	// Merged counts must cover the whole campaign.
	for _, c := range a.Configs {
		if c.Perception == nil {
			t.Fatalf("config %s lost its perception block in analyze", c.Key())
		}
		if got := c.Perception.ClassTotal(); got != c.Sketch.Count() {
			t.Errorf("config %s: merged class total %d, want %d", c.Key(), got, c.Sketch.Count())
		}
	}
	// Flag-off ledgers must not grow the table.
	baseLedger, _ := runMini(t, 1)
	baseRecs, err := ParseLedger(baseLedger)
	if err != nil {
		t.Fatal(err)
	}
	ab, err := Analyze(baseRecs)
	if err != nil {
		t.Fatal(err)
	}
	var baseOut strings.Builder
	if err := ab.Render(&baseOut); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(baseOut.String(), "perception") {
		t.Error("flag-off analyze output mentions perception")
	}
}
