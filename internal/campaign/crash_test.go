package campaign

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestSalvageLedgerEveryByteCut cuts the golden mini ledger at every
// byte boundary — every possible torn append a crash could leave — and
// checks SalvageLedger recovers exactly the complete-record prefix and
// reports the torn tail byte for byte.
func TestSalvageLedgerEveryByteCut(t *testing.T) {
	_, golden, recs := goldenMini(t)
	// newlineBefore[i] = bytes of complete records in golden[:i].
	valid := int64(0)
	count := 0
	for cut := 0; cut <= len(golden); cut++ {
		if cut > 0 && golden[cut-1] == '\n' {
			valid = int64(cut)
			count++
		}
		s, err := SalvageLedger(bytes.NewReader(golden[:cut]))
		if err != nil {
			t.Fatalf("cut %d: SalvageLedger: %v", cut, err)
		}
		if s.Records != count || s.ValidBytes != valid {
			t.Fatalf("cut %d: salvage %d records / %d bytes, want %d / %d",
				cut, s.Records, s.ValidBytes, count, valid)
		}
		wantTail := golden[valid:cut]
		if len(wantTail) == 0 {
			if s.Tail != nil {
				t.Fatalf("cut %d: tail %q on an intact prefix", cut, s.Tail)
			}
		} else if !bytes.Equal(s.Tail, wantTail) {
			t.Fatalf("cut %d: tail %q, want %q", cut, s.Tail, wantTail)
		}
	}
	if count != len(recs) {
		t.Fatalf("walked %d records, want %d", count, len(recs))
	}
}

// TestRepairResumeReconvergesEveryByteCut is the end-to-end crash
// proof: for every byte cut, salvaging (repair) and then resuming must
// reconverge to the byte-identical golden ledger. The resume step's
// record bytes are validated against the golden lines; that RunCells
// actually regenerates those bytes for every suffix is proven
// separately by TestResumeReconvergesFromEveryPrefix, and re-proven
// here end-to-end at sampled cut points.
func TestRepairResumeReconvergesEveryByteCut(t *testing.T) {
	c, golden, recs := goldenMini(t)
	lines := bytes.SplitAfter(golden, []byte("\n"))
	lines = lines[:len(lines)-1]
	cells := Cells(c)
	for cut := 0; cut <= len(golden); cut++ {
		// Repair: truncate to the salvaged prefix.
		s, err := SalvageLedger(bytes.NewReader(golden[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		repaired := golden[:s.ValidBytes]
		// Resume plan over the repaired ledger.
		plan := NewResume(c, true, Options{}.SketchAlpha())
		if err := ScanLedger(bytes.NewReader(repaired), plan.Observe); err != nil {
			t.Fatalf("cut %d: repaired ledger does not scan: %v", cut, err)
		}
		missing, skipped := plan.Missing(nil, 3)
		if len(skipped) != 0 {
			t.Fatalf("cut %d: unexpected skips", cut)
		}
		if len(missing) != len(recs)-s.Records {
			t.Fatalf("cut %d: %d missing, want %d", cut, len(missing), len(recs)-s.Records)
		}
		// The plan must name exactly the cells of the golden remainder, in
		// order; appending their golden lines reconverges byte-identically.
		reconverged := append([]byte{}, repaired...)
		for i, cell := range missing {
			if want := cells[s.Records+i].ID(); cell.ID() != want {
				t.Fatalf("cut %d: missing[%d] = %s, want %s", cut, i, cell.ID(), want)
			}
			reconverged = append(reconverged, lines[s.Records+i]...)
		}
		if !bytes.Equal(reconverged, golden) {
			t.Fatalf("cut %d: reconverged ledger differs from golden", cut)
		}
	}
	// End-to-end at sampled cuts: actually re-run the missing cells.
	for _, cut := range []int{0, 1, len(golden) / 3, len(golden) - 2, len(golden)} {
		s, err := SalvageLedger(bytes.NewReader(golden[:cut]))
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		buf := bytes.NewBuffer(append([]byte{}, golden[:s.ValidBytes]...))
		plan := NewResume(c, true, Options{}.SketchAlpha())
		if err := ScanLedger(bytes.NewReader(golden[:s.ValidBytes]), plan.Observe); err != nil {
			t.Fatal(err)
		}
		missing, _ := plan.Missing(nil, 3)
		if _, err := RunCells(context.Background(), c, missing, Options{Jobs: 2, Quick: true},
			func(r Record) error { return AppendRecord(buf, r) }); err != nil {
			t.Fatalf("cut %d: RunCells: %v", cut, err)
		}
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Fatalf("cut %d: end-to-end resume differs from golden", cut)
		}
	}
}

// TestSalvageRefusesRealCorruption: only a torn *final* line is
// salvageable; a terminated line that does not parse is corruption the
// append-only writer could not have produced.
func TestSalvageRefusesRealCorruption(t *testing.T) {
	_, golden, _ := goldenMini(t)
	lines := bytes.SplitAfter(golden, []byte("\n"))
	lines = lines[:len(lines)-1]
	cases := []struct {
		name string
		data []byte
	}{
		{"terminated garbage line", append(append([]byte{}, lines[0]...), []byte("garbage\n")...)},
		{"blank line", append(append([]byte{}, lines[0]...), '\n')},
		{"mid-ledger truncation", append(append([]byte{}, lines[0][:10]...), lines[1]...)},
	}
	for _, tc := range cases {
		if _, err := SalvageLedger(bytes.NewReader(tc.data)); err == nil {
			t.Errorf("%s: salvage accepted real corruption", tc.name)
		}
	}
}

// TestScanLedgerStreams: the callback sees every record in order and
// its error stops the scan and surfaces unwrapped.
func TestScanLedgerStreams(t *testing.T) {
	_, golden, recs := goldenMini(t)
	i := 0
	err := ScanLedger(bytes.NewReader(golden), func(r Record) error {
		if r.Cell() != recs[i].Cell() {
			t.Fatalf("record %d out of order", i)
		}
		i++
		return nil
	})
	if err != nil || i != len(recs) {
		t.Fatalf("scan: %v after %d records", err, i)
	}
	sentinel := context.Canceled
	calls := 0
	err = ScanLedger(bytes.NewReader(golden), func(Record) error { calls++; return sentinel })
	if err != sentinel || calls != 1 {
		t.Fatalf("callback error: %v after %d calls, want unwrapped sentinel after 1", err, calls)
	}
	if err := ScanLedger(strings.NewReader("{\"schema\":1"), func(Record) error { return nil }); err == nil ||
		!strings.Contains(err.Error(), "truncated") {
		t.Fatalf("torn tail through ScanLedger: %v", err)
	}
}
