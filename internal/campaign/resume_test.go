package campaign

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"
)

// goldenMini runs the mini campaign uninterrupted and returns its
// ledger bytes and parsed records — the reference every resume test
// reconverges to.
func goldenMini(t *testing.T) (*Campaign, []byte, []Record) {
	t.Helper()
	c := mustLoad(t)
	ledger, _ := runMini(t, 4)
	recs, err := ParseLedger(ledger)
	if err != nil {
		t.Fatal(err)
	}
	return c, ledger, recs
}

// TestResumeReconvergesFromEveryPrefix is the crash-safety core: for
// every prefix length k of the golden ledger, planning a resume over
// the first k records and running the missing cells must append
// exactly the remaining records — the combined ledger is
// byte-identical to the uninterrupted one, at a worker count different
// from the golden run's.
func TestResumeReconvergesFromEveryPrefix(t *testing.T) {
	c, golden, recs := goldenMini(t)
	lines := bytes.SplitAfter(golden, []byte("\n"))
	lines = lines[:len(lines)-1] // trailing empty split
	if len(lines) != len(recs) {
		t.Fatalf("%d ledger lines vs %d records", len(lines), len(recs))
	}
	for k := 0; k <= len(recs); k++ {
		plan := NewResume(c, true, Options{}.SketchAlpha())
		var buf bytes.Buffer
		for i := 0; i < k; i++ {
			buf.Write(lines[i])
			if err := plan.Observe(recs[i]); err != nil {
				t.Fatalf("prefix %d: Observe(%d): %v", k, i, err)
			}
		}
		if plan.Done() != k {
			t.Fatalf("prefix %d: Done() = %d", k, plan.Done())
		}
		missing, skipped := plan.Missing(nil, 3)
		if len(skipped) != 0 {
			t.Fatalf("prefix %d: %d skipped with no quarantine", k, len(skipped))
		}
		if len(missing) != len(recs)-k {
			t.Fatalf("prefix %d: %d missing cells, want %d", k, len(missing), len(recs)-k)
		}
		sum, err := RunCells(context.Background(), c, missing, Options{Jobs: 3, Quick: true},
			func(r Record) error { return AppendRecord(&buf, r) })
		if err != nil {
			t.Fatalf("prefix %d: RunCells: %v", k, err)
		}
		if sum.Interrupted || len(sum.Quarantined) != 0 {
			t.Fatalf("prefix %d: summary %+v", k, sum)
		}
		if !bytes.Equal(buf.Bytes(), golden) {
			t.Fatalf("prefix %d: resumed ledger differs from uninterrupted golden", k)
		}
	}
}

// TestResumeObserveRejects: a ledger that is valid JSONL but not this
// campaign's must fail planning, not corrupt the set-difference.
func TestResumeObserveRejects(t *testing.T) {
	c, _, recs := goldenMini(t)
	cases := []struct {
		name   string
		mutate func(*Record)
		want   string
	}{
		{"campaign", func(r *Record) { r.Campaign = "other" }, "campaign"},
		{"mode", func(r *Record) { r.Quick = false }, "quick"},
		{"cell", func(r *Record) { r.SeedStart += 1000 }, "not a cell"},
	}
	for _, tc := range cases {
		plan := NewResume(c, true, Options{}.SketchAlpha())
		r := recs[0]
		tc.mutate(&r)
		if err := plan.Observe(r); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Observe = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// Mismatched sketch accuracy.
	plan := NewResume(c, true, Options{}.SketchAlpha()/2)
	if err := plan.Observe(recs[0]); err == nil || !strings.Contains(err.Error(), "alpha") {
		t.Errorf("alpha mismatch: Observe = %v", err)
	}
	// Duplicate record.
	plan = NewResume(c, true, Options{}.SketchAlpha())
	if err := plan.Observe(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := plan.Observe(recs[0]); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate: Observe = %v", err)
	}
}

// TestQuarantineContinuesRun: a failing cell must not abort the
// campaign — the other cells complete and emit, the failed one lands
// in Summary.Quarantined (and the OnQuarantine hook) with its exact
// configuration and seed range.
func TestQuarantineContinuesRun(t *testing.T) {
	c, _, recs := goldenMini(t)
	victim := recs[2].Cell()
	var hooked []Quarantine
	var buf bytes.Buffer
	sum, err := Run(context.Background(), c, Options{
		Jobs: 2, Quick: true,
		Inject: func(_ context.Context, cell Cell, attempt int) error {
			if cell.ID() == victim {
				return fmt.Errorf("injected fault (attempt %d)", attempt)
			}
			return nil
		},
		OnQuarantine: func(q Quarantine) error { hooked = append(hooked, q); return nil },
	}, func(r Record) error { return AppendRecord(&buf, r) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Interrupted {
		t.Fatal("quarantine must not mark the run interrupted")
	}
	if sum.Cells != len(recs)-1 {
		t.Fatalf("%d cells completed, want %d", sum.Cells, len(recs)-1)
	}
	if len(sum.Quarantined) != 1 || len(hooked) != 1 {
		t.Fatalf("quarantined %d / hooked %d, want 1/1", len(sum.Quarantined), len(hooked))
	}
	q := sum.Quarantined[0]
	if q.Cell() != victim || q.Attempts != 1 || !strings.Contains(q.Error, "injected fault") {
		t.Fatalf("quarantine entry %+v", q)
	}
	if q.Campaign != "mini" || !q.Quick {
		t.Fatalf("quarantine entry %+v missing provenance", q)
	}
	got, err := ParseLedger(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.Cell() == victim {
			t.Fatal("quarantined cell must not reach the ledger")
		}
	}
}

// TestQuarantineRetrySameSeeds: resuming a quarantined cell with the
// retry budget produces the byte-identical record the cell would have
// produced uninterrupted — the retry reuses the same seeds.
func TestQuarantineRetrySameSeeds(t *testing.T) {
	c, _, recs := goldenMini(t)
	victim := recs[2]
	cells := Cells(c)
	var cell Cell
	for _, cl := range cells {
		if cl.ID() == victim.Cell() {
			cell = cl
		}
	}
	// First attempt failed once (prior=1); the retry run is allowed
	// budget-prior more attempts. Inject fails global attempts <= 2, so
	// attempt 3 succeeds.
	attempts := []int{}
	var buf bytes.Buffer
	sum, err := RunCells(context.Background(), c, []Cell{cell}, Options{
		Jobs: 1, Quick: true,
		RetryBudget:   3,
		PriorAttempts: map[string]int{victim.Cell(): 1},
		Inject: func(_ context.Context, _ Cell, attempt int) error {
			attempts = append(attempts, attempt)
			if attempt <= 2 {
				return fmt.Errorf("injected fault (attempt %d)", attempt)
			}
			return nil
		},
	}, func(r Record) error { return AppendRecord(&buf, r) })
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Quarantined) != 0 || sum.Cells != 1 {
		t.Fatalf("summary %+v", sum)
	}
	if len(attempts) != 2 || attempts[0] != 2 || attempts[1] != 3 {
		t.Fatalf("global attempt numbers %v, want [2 3]", attempts)
	}
	want, err := MarshalRecord(victim)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatal("retried cell's record differs from the uninterrupted one")
	}
}

// TestQuarantineBudgetExhausted: a cell that keeps failing stops
// consuming attempts once its total reaches the budget, and Missing
// splits over-budget cells into skipped.
func TestQuarantineBudgetExhausted(t *testing.T) {
	c, _, recs := goldenMini(t)
	victim := recs[0]
	cells := Cells(c)
	fail := func(_ context.Context, cell Cell, attempt int) error {
		return fmt.Errorf("always failing (attempt %d)", attempt)
	}
	sum, err := RunCells(context.Background(), c, cells[:1], Options{
		Jobs: 1, Quick: true,
		RetryBudget:   3,
		PriorAttempts: map[string]int{victim.Cell(): 1},
		Inject:        fail,
	}, func(Record) error { t.Fatal("no record expected"); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Quarantined) != 1 || sum.Quarantined[0].Attempts != 3 {
		t.Fatalf("summary %+v, want one quarantine at 3 attempts", sum)
	}
	// Planning the next resume: the cell is out of budget, so it is
	// skipped, not retried.
	plan := NewResume(c, true, Options{}.SketchAlpha())
	missing, skipped := plan.Missing(LatestQuarantine(sum.Quarantined), 3)
	if len(skipped) != 1 || skipped[0].Cell() != victim.Cell() {
		t.Fatalf("skipped %+v, want the exhausted cell", skipped)
	}
	if len(missing) != len(cells)-1 {
		t.Fatalf("%d missing cells, want %d", len(missing), len(cells)-1)
	}
	for _, m := range missing {
		if m.ID() == victim.Cell() {
			t.Fatal("exhausted cell must not be in missing")
		}
	}
}

// TestDrainKeepsPrefix: a drain signal mid-run stops feeding new cells
// but the emitted records stay a prefix of expansion order, so the
// ledger is resumable; RunCells reports Interrupted without an error.
func TestDrainKeepsPrefix(t *testing.T) {
	c, golden, _ := goldenMini(t)
	drain := make(chan struct{})
	close(drain) // drain before the first cell is even fed
	var buf bytes.Buffer
	sum, err := Run(context.Background(), c, Options{Jobs: 2, Quick: true, Drain: drain},
		func(r Record) error { return AppendRecord(&buf, r) })
	if err != nil {
		t.Fatalf("drained run must not error: %v", err)
	}
	if !sum.Interrupted {
		t.Fatal("drained run must report Interrupted")
	}
	if !bytes.HasPrefix(golden, buf.Bytes()) {
		t.Fatal("drained ledger is not a byte prefix of the golden ledger")
	}
	if sum.Cells == len(Cells(c)) {
		t.Fatal("pre-closed drain still ran the whole campaign")
	}
}

// TestInterruptedSubsetStaysPrefix: cancelling mid-run must never emit
// a record past the first gap — whatever lands in the ledger is a byte
// prefix of the golden ledger.
func TestInterruptedSubsetStaysPrefix(t *testing.T) {
	c, golden, _ := goldenMini(t)
	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	n := 0
	sum, err := Run(ctx, c, Options{Jobs: 4, Quick: true},
		func(r Record) error {
			if n++; n == 3 {
				cancel() // cancel once a few records have landed
			}
			return AppendRecord(&buf, r)
		})
	if err == nil && !sum.Interrupted {
		t.Fatal("cancelled run must report interruption")
	}
	if !bytes.HasPrefix(golden, buf.Bytes()) {
		t.Fatal("interrupted ledger is not a byte prefix of the golden ledger")
	}
}
