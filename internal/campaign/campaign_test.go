package campaign

import (
	"os"
	"strings"
	"testing"
)

// writeFile writes a test fixture, failing the test on error.
func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// validSpecJSON is a minimal valid spec the mutation tests start from.
const validSpecJSON = `{
  "schema": 1,
  "id": "demo",
  "title": "t",
  "personas": ["nt40"],
  "machines": ["p100"],
  "scenarios": ["s.json"],
  "seeds": {"start": 1, "count": 10, "per_cell": 4}
}`

func TestParseSpecValid(t *testing.T) {
	s, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != "demo" || s.Sessions() != 10 {
		t.Errorf("parsed spec = %+v", s)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"unknown field", `{"schema":1,"id":"a","title":"t","bogus":1,"personas":["nt40"],"machines":["p100"],"scenarios":["s.json"],"seeds":{"start":1,"count":1,"per_cell":1}}`, "bogus"},
		{"bad schema", strings.Replace(validSpecJSON, `"schema": 1`, `"schema": 9`, 1), "schema"},
		{"bad id", strings.Replace(validSpecJSON, `"id": "demo"`, `"id": "Demo!"`, 1), "slug"},
		{"no title", strings.Replace(validSpecJSON, `"title": "t"`, `"title": ""`, 1), "title"},
		{"unknown persona", strings.Replace(validSpecJSON, `"personas": ["nt40"]`, `"personas": ["dos"]`, 1), "persona"},
		{"dup persona", strings.Replace(validSpecJSON, `"personas": ["nt40"]`, `"personas": ["nt40", "nt40"]`, 1), "duplicate persona"},
		{"unknown machine", strings.Replace(validSpecJSON, `"machines": ["p100"]`, `"machines": ["cray"]`, 1), "machine"},
		{"dup machine", strings.Replace(validSpecJSON, `"machines": ["p100"]`, `"machines": ["p100", "p100"]`, 1), "duplicate machine"},
		{"no scenarios", strings.Replace(validSpecJSON, `"scenarios": ["s.json"]`, `"scenarios": []`, 1), "scenario"},
		{"seed zero", strings.Replace(validSpecJSON, `"start": 1`, `"start": 0`, 1), "seeds.start"},
		{"zero count", strings.Replace(validSpecJSON, `"count": 10`, `"count": 0`, 1), "seeds.count"},
		{"per_cell over count", strings.Replace(validSpecJSON, `"per_cell": 4`, `"per_cell": 11`, 1), "per_cell"},
		{"trailing data", validSpecJSON + `{"more": 1}`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.json))
			if err == nil {
				t.Fatalf("want error mentioning %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLoadSpecResolvesScenarios(t *testing.T) {
	c, err := LoadSpec("testdata/mini.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Docs) != 1 || c.Docs[0].ID != "tiny-type" {
		t.Fatalf("docs = %+v", c.Docs)
	}
}

func TestCellsExpansion(t *testing.T) {
	c, err := LoadSpec("testdata/mini.json")
	if err != nil {
		t.Fatal(err)
	}
	cells := Cells(c)
	// 1 scenario x 2 personas x 1 machine x ceil(24/6)=4 chunks.
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	wantFirst := "tiny-type/nt40/p100/1+6"
	if cells[0].ID() != wantFirst {
		t.Errorf("first cell %s, want %s", cells[0].ID(), wantFirst)
	}
	// Expansion order: all nt40 chunks before any w95 chunk; ascending
	// seed chunks within a configuration; indexes sequential.
	seenW95 := false
	var prevStart uint64
	for i, cell := range cells {
		if cell.Index != i {
			t.Errorf("cell %d has index %d", i, cell.Index)
		}
		if cell.Persona == "w95" {
			seenW95 = true
			continue
		}
		if seenW95 {
			t.Fatalf("nt40 cell after w95 at %d", i)
		}
		if cell.SeedStart <= prevStart {
			t.Errorf("seed chunks not ascending at cell %d", i)
		}
		prevStart = cell.SeedStart
	}
	// Seeds tile the range exactly.
	total := 0
	for _, cell := range cells {
		total += cell.SeedCount
		if cell.Doc.Seed != 0 {
			t.Errorf("cell %s doc pins seed %d", cell.ID(), cell.Doc.Seed)
		}
		if cell.Doc.Persona != cell.Persona || cell.Doc.Machine != cell.Machine {
			t.Errorf("cell %s doc not re-pointed: %s/%s", cell.ID(), cell.Doc.Persona, cell.Doc.Machine)
		}
	}
	if total != 2*24 {
		t.Errorf("cells cover %d seeds, want 48", total)
	}
}

func TestLoadSpecRejectsCompareDocs(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/cmp.json", `{
  "schema": 1, "id": "cmp", "title": "t", "paper": "p", "persona": "nt40",
  "workload": {"kind": "typing", "full": {"chars": 8}},
  "compare": [{"label": "clean", "faulted": false}]
}`)
	writeFile(t, dir+"/spec.json", `{
  "schema": 1, "id": "c", "title": "t",
  "personas": ["nt40"], "machines": ["p100"], "scenarios": ["cmp.json"],
  "seeds": {"start": 1, "count": 1, "per_cell": 1}
}`)
	if _, err := LoadSpec(dir + "/spec.json"); err == nil || !strings.Contains(err.Error(), "compare") {
		t.Fatalf("want compare-row rejection, got %v", err)
	}
}

func TestLoadSpecRejectsDuplicateScenarioIDs(t *testing.T) {
	dir := t.TempDir()
	doc := `{
  "schema": 1, "id": "same", "title": "t", "paper": "p", "persona": "nt40",
  "workload": {"kind": "typing", "full": {"chars": 8}}
}`
	writeFile(t, dir+"/a.json", doc)
	writeFile(t, dir+"/b.json", doc)
	writeFile(t, dir+"/spec.json", `{
  "schema": 1, "id": "c", "title": "t",
  "personas": ["nt40"], "machines": ["p100"], "scenarios": ["a.json", "b.json"],
  "seeds": {"start": 1, "count": 1, "per_cell": 1}
}`)
	if _, err := LoadSpec(dir + "/spec.json"); err == nil || !strings.Contains(err.Error(), "duplicate scenario") {
		t.Fatalf("want duplicate-id rejection, got %v", err)
	}
}

// cellSpecJSON is a minimal valid explicit-cell-list spec.
const cellSpecJSON = `{
  "schema": 1,
  "id": "demo-next",
  "title": "t",
  "scenarios": ["s.json"],
  "cells": [
    {"scenario": "s", "persona": "nt40", "machine": "p100", "seed_start": 1, "seed_count": 3},
    {"scenario": "s", "persona": "w95", "machine": "p100", "seed_start": 4, "seed_count": 3}
  ]
}`

func TestParseSpecCellList(t *testing.T) {
	s, err := ParseSpec([]byte(cellSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cells) != 2 || s.Sessions() != 6 {
		t.Errorf("parsed spec = %+v", s)
	}
	if got := s.Cells[0].ID(); got != "s/nt40/p100/1+3" {
		t.Errorf("cell id %q", got)
	}
}

func TestParseSpecCellListRejects(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"cells plus personas", func(s string) string {
			return strings.Replace(s, `"scenarios"`, `"personas": ["nt40"], "scenarios"`, 1)
		}, "mutually exclusive"},
		{"cells plus seeds", func(s string) string {
			return strings.Replace(s, `"scenarios"`, `"seeds": {"start":1,"count":2,"per_cell":1}, "scenarios"`, 1)
		}, "mutually exclusive"},
		{"unknown persona", func(s string) string {
			return strings.Replace(s, `"persona": "nt40"`, `"persona": "bogus"`, 1)
		}, "unknown persona"},
		{"unknown machine", func(s string) string {
			return strings.Replace(s, `"machine": "p100", "seed_start": 1`, `"machine": "bogus", "seed_start": 1`, 1)
		}, "unknown machine"},
		{"zero seed start", func(s string) string {
			return strings.Replace(s, `"seed_start": 1`, `"seed_start": 0`, 1)
		}, "seed_start"},
		{"zero seed count", func(s string) string {
			return strings.Replace(s, `"seed_count": 3}`, `"seed_count": 0}`, 1)
		}, "seed_count"},
		{"no scenario id", func(s string) string {
			return strings.Replace(s, `{"scenario": "s", "persona": "nt40"`, `{"scenario": "", "persona": "nt40"`, 1)
		}, "no scenario id"},
		{"duplicate cell", func(s string) string {
			return strings.Replace(s, `"persona": "w95", "machine": "p100", "seed_start": 4`,
				`"persona": "nt40", "machine": "p100", "seed_start": 1`, 1)
		}, "duplicate cell"},
	}
	for _, tc := range cases {
		mutated := tc.mutate(cellSpecJSON)
		if mutated == cellSpecJSON {
			t.Fatalf("%s: mutation did not change the spec", tc.name)
		}
		if _, err := ParseSpec([]byte(mutated)); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestMarshalSpecRoundTrips(t *testing.T) {
	for _, src := range []string{validSpecJSON, cellSpecJSON} {
		s, err := ParseSpec([]byte(src))
		if err != nil {
			t.Fatal(err)
		}
		data, err := MarshalSpec(s)
		if err != nil {
			t.Fatal(err)
		}
		again, err := ParseSpec(data)
		if err != nil {
			t.Fatalf("marshaled spec does not re-parse: %v\n%s", err, data)
		}
		if again.ID != s.ID || len(again.Cells) != len(s.Cells) || again.Sessions() != s.Sessions() {
			t.Errorf("round trip changed the spec:\n%+v\nvs\n%+v", s, again)
		}
		// Deterministic bytes.
		data2, err := MarshalSpec(again)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != string(data2) {
			t.Error("MarshalSpec is not deterministic")
		}
	}
}

// TestNextSpecRoundTrip closes the analyze → emit-spec → run loop at
// the library level: the emitted spec must load, expand to exactly the
// suggested cells, and run.
func TestNextSpecRoundTrip(t *testing.T) {
	ledger, _ := runMini(t, 2)
	recs, err := ParseLedger(ledger)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(recs)
	if err != nil {
		t.Fatal(err)
	}
	next, err := a.NextSpec(map[string]string{"tiny-type": "tiny-type.json"})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID != "mini-next" || len(next.Cells) != len(a.SuggestedNext) {
		t.Fatalf("next spec %+v", next)
	}
	data, err := MarshalSpec(next)
	if err != nil {
		t.Fatal(err)
	}
	// Write next to the testdata dir so its scenario path resolves.
	path := "testdata/emitted-next.json"
	writeFile(t, path, string(data))
	t.Cleanup(func() { os.Remove(path) })
	c, err := LoadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	cells := Cells(c)
	if len(cells) != len(a.SuggestedNext) {
		t.Fatalf("%d cells, want %d", len(cells), len(a.SuggestedNext))
	}
	for i, n := range a.SuggestedNext {
		want := Quarantine{Scenario: n.Scenario, Persona: n.Persona, Machine: n.Machine,
			SeedStart: n.SeedStart, SeedCount: n.SeedCount}.Cell()
		if cells[i].ID() != want {
			t.Errorf("cell %d = %s, want %s", i, cells[i].ID(), want)
		}
	}
	// An unknown scenario id must refuse, not emit a dangling reference.
	if _, err := a.NextSpec(map[string]string{}); err == nil {
		t.Error("NextSpec with no path mapping must error")
	}
}
