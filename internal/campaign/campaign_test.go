package campaign

import (
	"os"
	"strings"
	"testing"
)

// writeFile writes a test fixture, failing the test on error.
func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

// validSpecJSON is a minimal valid spec the mutation tests start from.
const validSpecJSON = `{
  "schema": 1,
  "id": "demo",
  "title": "t",
  "personas": ["nt40"],
  "machines": ["p100"],
  "scenarios": ["s.json"],
  "seeds": {"start": 1, "count": 10, "per_cell": 4}
}`

func TestParseSpecValid(t *testing.T) {
	s, err := ParseSpec([]byte(validSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	if s.ID != "demo" || s.Sessions() != 10 {
		t.Errorf("parsed spec = %+v", s)
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"unknown field", `{"schema":1,"id":"a","title":"t","bogus":1,"personas":["nt40"],"machines":["p100"],"scenarios":["s.json"],"seeds":{"start":1,"count":1,"per_cell":1}}`, "bogus"},
		{"bad schema", strings.Replace(validSpecJSON, `"schema": 1`, `"schema": 9`, 1), "schema"},
		{"bad id", strings.Replace(validSpecJSON, `"id": "demo"`, `"id": "Demo!"`, 1), "slug"},
		{"no title", strings.Replace(validSpecJSON, `"title": "t"`, `"title": ""`, 1), "title"},
		{"unknown persona", strings.Replace(validSpecJSON, `"personas": ["nt40"]`, `"personas": ["dos"]`, 1), "persona"},
		{"dup persona", strings.Replace(validSpecJSON, `"personas": ["nt40"]`, `"personas": ["nt40", "nt40"]`, 1), "duplicate persona"},
		{"unknown machine", strings.Replace(validSpecJSON, `"machines": ["p100"]`, `"machines": ["cray"]`, 1), "machine"},
		{"dup machine", strings.Replace(validSpecJSON, `"machines": ["p100"]`, `"machines": ["p100", "p100"]`, 1), "duplicate machine"},
		{"no scenarios", strings.Replace(validSpecJSON, `"scenarios": ["s.json"]`, `"scenarios": []`, 1), "scenario"},
		{"seed zero", strings.Replace(validSpecJSON, `"start": 1`, `"start": 0`, 1), "seeds.start"},
		{"zero count", strings.Replace(validSpecJSON, `"count": 10`, `"count": 0`, 1), "seeds.count"},
		{"per_cell over count", strings.Replace(validSpecJSON, `"per_cell": 4`, `"per_cell": 11`, 1), "per_cell"},
		{"trailing data", validSpecJSON + `{"more": 1}`, "trailing"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.json))
			if err == nil {
				t.Fatalf("want error mentioning %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestLoadSpecResolvesScenarios(t *testing.T) {
	c, err := LoadSpec("testdata/mini.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Docs) != 1 || c.Docs[0].ID != "tiny-type" {
		t.Fatalf("docs = %+v", c.Docs)
	}
}

func TestCellsExpansion(t *testing.T) {
	c, err := LoadSpec("testdata/mini.json")
	if err != nil {
		t.Fatal(err)
	}
	cells := Cells(c)
	// 1 scenario x 2 personas x 1 machine x ceil(24/6)=4 chunks.
	if len(cells) != 8 {
		t.Fatalf("got %d cells, want 8", len(cells))
	}
	wantFirst := "tiny-type/nt40/p100/1+6"
	if cells[0].ID() != wantFirst {
		t.Errorf("first cell %s, want %s", cells[0].ID(), wantFirst)
	}
	// Expansion order: all nt40 chunks before any w95 chunk; ascending
	// seed chunks within a configuration; indexes sequential.
	seenW95 := false
	var prevStart uint64
	for i, cell := range cells {
		if cell.Index != i {
			t.Errorf("cell %d has index %d", i, cell.Index)
		}
		if cell.Persona == "w95" {
			seenW95 = true
			continue
		}
		if seenW95 {
			t.Fatalf("nt40 cell after w95 at %d", i)
		}
		if cell.SeedStart <= prevStart {
			t.Errorf("seed chunks not ascending at cell %d", i)
		}
		prevStart = cell.SeedStart
	}
	// Seeds tile the range exactly.
	total := 0
	for _, cell := range cells {
		total += cell.SeedCount
		if cell.Doc.Seed != 0 {
			t.Errorf("cell %s doc pins seed %d", cell.ID(), cell.Doc.Seed)
		}
		if cell.Doc.Persona != cell.Persona || cell.Doc.Machine != cell.Machine {
			t.Errorf("cell %s doc not re-pointed: %s/%s", cell.ID(), cell.Doc.Persona, cell.Doc.Machine)
		}
	}
	if total != 2*24 {
		t.Errorf("cells cover %d seeds, want 48", total)
	}
}

func TestLoadSpecRejectsCompareDocs(t *testing.T) {
	dir := t.TempDir()
	writeFile(t, dir+"/cmp.json", `{
  "schema": 1, "id": "cmp", "title": "t", "paper": "p", "persona": "nt40",
  "workload": {"kind": "typing", "full": {"chars": 8}},
  "compare": [{"label": "clean", "faulted": false}]
}`)
	writeFile(t, dir+"/spec.json", `{
  "schema": 1, "id": "c", "title": "t",
  "personas": ["nt40"], "machines": ["p100"], "scenarios": ["cmp.json"],
  "seeds": {"start": 1, "count": 1, "per_cell": 1}
}`)
	if _, err := LoadSpec(dir + "/spec.json"); err == nil || !strings.Contains(err.Error(), "compare") {
		t.Fatalf("want compare-row rejection, got %v", err)
	}
}

func TestLoadSpecRejectsDuplicateScenarioIDs(t *testing.T) {
	dir := t.TempDir()
	doc := `{
  "schema": 1, "id": "same", "title": "t", "paper": "p", "persona": "nt40",
  "workload": {"kind": "typing", "full": {"chars": 8}}
}`
	writeFile(t, dir+"/a.json", doc)
	writeFile(t, dir+"/b.json", doc)
	writeFile(t, dir+"/spec.json", `{
  "schema": 1, "id": "c", "title": "t",
  "personas": ["nt40"], "machines": ["p100"], "scenarios": ["a.json", "b.json"],
  "seeds": {"start": 1, "count": 1, "per_cell": 1}
}`)
	if _, err := LoadSpec(dir + "/spec.json"); err == nil || !strings.Contains(err.Error(), "duplicate scenario") {
		t.Fatalf("want duplicate-id rejection, got %v", err)
	}
}
