package campaign

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// sampleQuarantine is a canonical entry for round-trip tests.
func sampleQuarantine() Quarantine {
	return Quarantine{
		Schema:    QuarantineSchemaVersion,
		Campaign:  "mini",
		Scenario:  "tiny-type",
		Persona:   "nt40",
		Machine:   "p100",
		SeedStart: 7,
		SeedCount: 6,
		Quick:     true,
		Attempts:  2,
		Error:     "seed 9: boom",
	}
}

func TestQuarantineRoundTrip(t *testing.T) {
	q := sampleQuarantine()
	data, err := MarshalQuarantine(q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseQuarantine(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != q {
		t.Fatalf("round trip: %+v", got)
	}
	// Appending the same bytes again parses as two entries.
	got, err = ParseQuarantine(append(append([]byte{}, data...), data...))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d entries, want 2", len(got))
	}
	if q.Cell() != "tiny-type/nt40/p100/7+6" {
		t.Fatalf("cell id %q", q.Cell())
	}
}

func TestParseQuarantineRejects(t *testing.T) {
	valid, err := MarshalQuarantine(sampleQuarantine())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"torn tail", valid[:len(valid)-1], "mid-entry"},
		{"blank line", []byte("\n"), "blank"},
		{"unknown field", []byte(`{"schema":1,"bogus":true}` + "\n"), "bogus"},
		{"bad schema", bytes.Replace(valid, []byte(`"schema":1`), []byte(`"schema":9`), 1), "schema 9"},
		{"no attempts", bytes.Replace(valid, []byte(`"attempts":2`), []byte(`"attempts":0`), 1), "attempts"},
		{"no error", bytes.Replace(valid, []byte(`"seed 9: boom"`), []byte(`""`), 1), "no error"},
		{"non-canonical", bytes.Replace(valid, []byte(`"attempts":2`), []byte(`"attempts": 2`), 1), "canonical"},
		{"trailing data", bytes.Replace(valid, []byte("\n"), []byte(` {}`+"\n"), 1), "trailing"},
	}
	for _, tc := range cases {
		if _, err := ParseQuarantine(tc.data); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if got, err := ParseQuarantine(nil); err != nil || got != nil {
		t.Errorf("empty sidecar: %v, %v", got, err)
	}
}

func TestLatestQuarantine(t *testing.T) {
	a := sampleQuarantine()
	b := a
	b.Attempts = 3
	b.Error = "still failing"
	other := a
	other.SeedStart = 100
	latest := LatestQuarantine([]Quarantine{a, other, b})
	if len(latest) != 2 {
		t.Fatalf("%d cells, want 2", len(latest))
	}
	if got := latest[a.Cell()]; got.Attempts != 3 || got.Error != "still failing" {
		t.Fatalf("latest for %s = %+v, want the later entry", a.Cell(), got)
	}
}

func TestQuarantinePath(t *testing.T) {
	if got := QuarantinePath("runs/demo-ledger.jsonl"); got != "runs/demo-ledger.quarantine.jsonl" {
		t.Errorf("QuarantinePath jsonl: %q", got)
	}
	if got := QuarantinePath("ledger.dat"); got != "ledger.dat.quarantine.jsonl" {
		t.Errorf("QuarantinePath other: %q", got)
	}
}

func TestWriteAndLoadQuarantine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.jsonl")
	// Missing file loads as empty.
	if entries, err := LoadQuarantine(path); err != nil || entries != nil {
		t.Fatalf("missing sidecar: %v, %v", entries, err)
	}
	a := sampleQuarantine()
	b := a
	b.SeedStart = 13
	if err := WriteQuarantine(path, []Quarantine{a, b}); err != nil {
		t.Fatal(err)
	}
	entries, err := LoadQuarantine(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0] != a || entries[1] != b {
		t.Fatalf("loaded %+v", entries)
	}
	// No leftover temp files from the atomic write.
	dir, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(dir) != 1 {
		t.Fatalf("%d files in sidecar dir, want 1", len(dir))
	}
	// Writing an empty set removes the sidecar.
	if err := WriteQuarantine(path, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("empty WriteQuarantine must remove the sidecar")
	}
	// Removing an already-missing sidecar is fine.
	if err := WriteQuarantine(path, nil); err != nil {
		t.Fatal(err)
	}
}

// FuzzParseQuarantine mirrors FuzzParseLedger: whatever the input, the
// parser must never panic, and accepted entries must round-trip to the
// canonical bytes.
func FuzzParseQuarantine(f *testing.F) {
	valid, err := MarshalQuarantine(sampleQuarantine())
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte(""))
	f.Add(valid)
	f.Add(append(append([]byte{}, valid...), valid...))
	f.Add(valid[:len(valid)-1]) // torn tail
	f.Add(valid[:len(valid)/2]) // torn mid-entry
	f.Add([]byte("{}\n"))
	f.Add([]byte("\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		entries, err := ParseQuarantine(data)
		if err != nil {
			return
		}
		var out bytes.Buffer
		for _, q := range entries {
			if err := q.Validate(); err != nil {
				t.Fatalf("accepted entry fails Validate: %v", err)
			}
			if err := AppendQuarantine(&out, q); err != nil {
				t.Fatal(err)
			}
		}
		if len(entries) > 0 && !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted sidecar is not canonical:\n in: %q\nout: %q", data, out.Bytes())
		}
	})
}
