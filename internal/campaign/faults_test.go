package campaign

import (
	"bytes"
	"context"
	"os"
	"strings"
	"testing"
)

// faultsSpecJSON is mini.json plus a two-variant faults axis.
const faultsSpecJSON = `{
  "schema": 1,
  "id": "mini-faults",
  "title": "t",
  "personas": ["nt40"],
  "machines": ["p100"],
  "faults": ["none", "irq-storm"],
  "scenarios": ["s.json"],
  "seeds": {"start": 1, "count": 4, "per_cell": 2}
}`

func TestParseSpecFaultsAxis(t *testing.T) {
	s, err := ParseSpec([]byte(faultsSpecJSON))
	if err != nil {
		t.Fatal(err)
	}
	// The axis multiplies the cube: 1 scenario x 1 persona x 1 machine
	// x 2 variants x 4 seeds.
	if s.Sessions() != 8 {
		t.Errorf("Sessions() = %d, want 8", s.Sessions())
	}
}

func TestParseSpecFaultsAxisRejects(t *testing.T) {
	cases := []struct {
		name string
		json string
		want string
	}{
		{"unknown variant", strings.Replace(faultsSpecJSON, `"none", "irq-storm"`, `"meteor-strike"`, 1), "fault variant"},
		{"duplicate variant", strings.Replace(faultsSpecJSON, `"none", "irq-storm"`, `"none", "none"`, 1), "duplicate fault variant"},
		{"empty variant", strings.Replace(faultsSpecJSON, `"none", "irq-storm"`, `""`, 1), "empty fault variant"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSpec([]byte(tc.json))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %v does not mention %q", err, tc.want)
			}
		})
	}
	// Cell-list specs get the same variant validation, and cube axes
	// stay mutually exclusive with cells.
	bad := `{"schema":1,"id":"a","title":"t","scenarios":["s.json"],"cells":[{"scenario":"s","persona":"nt40","machine":"p100","faults":"meteor","seed_start":1,"seed_count":1}]}`
	if _, err := ParseSpec([]byte(bad)); err == nil || !strings.Contains(err.Error(), "fault variant") {
		t.Errorf("cell-list variant error = %v", err)
	}
	both := strings.Replace(validSpecJSON, `"scenarios"`, `"cells": [{"scenario":"s","persona":"nt40","machine":"p100","seed_start":1,"seed_count":1}], "scenarios"`, 1)
	if _, err := ParseSpec([]byte(both)); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Errorf("cells+axes error = %v", err)
	}
}

// loadFaultsMini loads the mini campaign with a faults axis patched in.
func loadFaultsMini(t *testing.T) *Campaign {
	t.Helper()
	dir := t.TempDir()
	tiny, err := os.ReadFile("testdata/tiny-type.json")
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, dir+"/tiny-type.json", string(tiny))
	spec := strings.Replace(faultsSpecJSON, `"s.json"`, `"tiny-type.json"`, 1)
	writeFile(t, dir+"/spec.json", spec)
	c, err := LoadSpec(dir + "/spec.json")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCellsExpandFaultsAxis(t *testing.T) {
	cells := Cells(loadFaultsMini(t))
	// 1 scenario x 1 persona x 1 machine x 2 variants x 2 chunks.
	want := []string{
		"tiny-type/nt40/p100/none/1+2",
		"tiny-type/nt40/p100/none/3+2",
		"tiny-type/nt40/p100/irq-storm/1+2",
		"tiny-type/nt40/p100/irq-storm/3+2",
	}
	if len(cells) != len(want) {
		t.Fatalf("got %d cells, want %d", len(cells), len(want))
	}
	for i, cell := range cells {
		if cell.ID() != want[i] {
			t.Errorf("cell %d = %s, want %s", i, cell.ID(), want[i])
		}
	}
	// The "none" variant strips the template's fault block; a kind
	// variant replaces it with a derived plan over the default span
	// (the template pins none).
	if cells[0].Doc.Faults != nil {
		t.Errorf("none variant kept fault block %+v", cells[0].Doc.Faults)
	}
	f := cells[2].Doc.Faults
	if f == nil || len(f.Kinds) != 1 || f.Kinds[0] != "irq-storm" {
		t.Fatalf("derived variant block = %+v", f)
	}
	if f.SpanS != DefaultFaultSpanS || f.QuickSpanS != DefaultQuickFaultSpanS {
		t.Errorf("derived span %v/%v, want defaults %v/%v", f.SpanS, f.QuickSpanS, DefaultFaultSpanS, DefaultQuickFaultSpanS)
	}
	if err := cells[2].Doc.Validate(); err != nil {
		t.Errorf("derived doc invalid: %v", err)
	}
}

func TestRunFaultsAxisCampaign(t *testing.T) {
	c := loadFaultsMini(t)
	var buf bytes.Buffer
	sum, err := Run(context.Background(), c, Options{Jobs: 2, Quick: true},
		func(r Record) error { return AppendRecord(&buf, r) })
	if err != nil {
		t.Fatal(err)
	}
	if sum.Cells != 4 || sum.Sessions != 8 {
		t.Fatalf("summary = %+v, want 4 cells / 8 sessions", sum)
	}
	recs, err := ParseLedger(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	cells := Cells(c)
	for i, r := range recs {
		if r.Cell() != cells[i].ID() {
			t.Errorf("record %d is cell %s, want %s", i, r.Cell(), cells[i].ID())
		}
		if r.Faults != cells[i].Faults {
			t.Errorf("record %d faults %q, want %q", i, r.Faults, cells[i].Faults)
		}
	}
	// The ledger round-trips through analyze with per-variant configs,
	// and the suggested cells re-emit as a runnable spec that carries
	// the variant — the `analyze -emit-spec` loop.
	a, err := Analyze(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Configs) != 2 {
		t.Fatalf("%d configs, want 2 (one per variant): %+v", len(a.Configs), a.Configs)
	}
	for _, n := range a.SuggestedNext {
		if err := validFaultVariant(n.Faults); err != nil {
			t.Errorf("suggested cell lost its variant: %+v", n)
		}
	}
	spec, err := a.NextSpec(map[string]string{"tiny-type": "tiny-type.json"})
	if err != nil {
		t.Fatal(err)
	}
	for i, ref := range spec.Cells {
		if ref.Faults != a.SuggestedNext[i].Faults {
			t.Errorf("emitted cell %d faults %q, want %q", i, ref.Faults, a.SuggestedNext[i].Faults)
		}
	}
	data, err := MarshalSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseSpec(data)
	if err != nil {
		t.Fatalf("emitted spec does not re-parse: %v", err)
	}
	for i, ref := range back.Cells {
		if ref != spec.Cells[i] {
			t.Errorf("cell %d did not round-trip: %+v != %+v", i, ref, spec.Cells[i])
		}
	}
	// A resume planned over the full ledger has nothing left to run.
	r := NewResume(c, true, Options{}.SketchAlpha())
	for _, rec := range recs {
		if err := r.Observe(rec); err != nil {
			t.Fatal(err)
		}
	}
	if missing, _ := r.Missing(nil, 1); len(missing) != 0 {
		t.Errorf("resume found %d missing cells in a complete ledger", len(missing))
	}
}
