// Package campaign turns single latbench runs into population-scale
// latency surfaces: a campaign spec expands a persona × machine ×
// scenario × seed cube into thousands-to-millions of seeded sessions,
// shards them across workers on top of internal/runner, and folds each
// session's event latencies into mergeable streaming sketches
// (stats.Sketch), so memory stays flat at any population size — the
// product is a distribution per configuration, never a retained sample
// set.
//
// Results persist to an append-only, schema-versioned JSONL ledger
// (one Record per cell: configuration, seed range, sketch
// serialization, p50/p95/p99, jitter) that Analyze replays to rank
// configurations and propose refined follow-up cells. cmd/campaign is
// the CLI (`campaign run`, `campaign analyze`).
//
// Determinism contract: a campaign's ledger — and therefore its
// analysis — is byte-identical for a given spec, mode, and seed range
// regardless of the worker count. Cells are the sharding unit, each
// cell folds its sessions sequentially in seed order, and records are
// emitted in cell-expansion order through the runner's reorder buffer,
// so no float ever crosses a scheduling boundary.
package campaign

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"

	"latlab/internal/faults"
	"latlab/internal/machine"
	"latlab/internal/persona"
	"latlab/internal/scenario"
)

// SpecSchemaVersion is the campaign-spec schema this package parses.
// Specs must declare it explicitly, like scenario documents.
const SpecSchemaVersion = 1

// Spec is one parsed campaign specification: the axes of the sweep
// cube and the seed range every configuration is swept over.
type Spec struct {
	// Schema is the spec schema version; must be SpecSchemaVersion.
	Schema int `json:"schema"`
	// ID is the campaign id (slug), recorded in every ledger record.
	ID string `json:"id"`
	// Title is the one-line description shown by analyze.
	Title string `json:"title"`
	// Personas lists the OS personality short names to sweep.
	Personas []string `json:"personas,omitempty"`
	// Machines lists the hardware-profile short names to sweep.
	Machines []string `json:"machines,omitempty"`
	// Faults lists fault-plan variants to sweep: "none" (strip the
	// template's fault block — a clean machine) or a fault kind name
	// (faults.KindNames — derive that kind's windows from each session
	// seed over the template's fault span, or the package default span
	// when the template pins none). An absent axis keeps the template's
	// own fault block, which is also what the variant "" means in
	// explicit cells.
	Faults []string `json:"faults,omitempty"`
	// Scenarios lists scenario-document paths, relative to the spec
	// file. Each must be a single-run document (no compare rows); its
	// persona, machine, and seed are overridden per cell.
	Scenarios []string `json:"scenarios"`
	// Seeds is the seed range swept per configuration and its cell
	// granularity. (omitzero needs a Go ≥ 1.24 toolchain; older ones
	// emit explicit zeros, which cell-list validation also accepts.)
	Seeds SeedBlock `json:"seeds,omitzero"`
	// Cells, when non-empty, switches the spec from a cube sweep to an
	// explicit cell list: exactly these configuration × seed-range cells
	// run, in this order. Mutually exclusive with Personas/Machines/
	// Seeds (Scenarios still lists the referenced documents). This is
	// the form `campaign analyze -emit-spec` writes, so suggested_next
	// round-trips into a runnable spec.
	Cells []CellRef `json:"cells,omitempty"`
	// Perception, when true, additionally folds every event into
	// per-perceptual-class counters and per-event-class sketches
	// (internal/perception, Default calibration) and records them in each
	// ledger cell's optional perception block. Off by default: the flag
	// changes the ledger bytes, so pre-existing specs and their committed
	// ledgers are untouched.
	Perception bool `json:"perception,omitempty"`
	// Notes is free-form provenance.
	Notes string `json:"notes,omitempty"`
}

// CellRef names one explicit cell of a cell-list spec. Scenario is the
// scenario document's id (which must resolve to one of the spec's
// Scenarios entries), not its path.
type CellRef struct {
	// Scenario, Persona, Machine name the configuration.
	Scenario string `json:"scenario"`
	Persona  string `json:"persona"`
	Machine  string `json:"machine"`
	// Faults is the fault-plan variant ("" = the template's own block).
	Faults string `json:"faults,omitempty"`
	// SeedStart and SeedCount delimit the cell's seed range.
	SeedStart uint64 `json:"seed_start"`
	SeedCount int    `json:"seed_count"`
}

// ID returns the cell id the ref expands to, matching Cell.ID.
func (c CellRef) ID() string {
	return fmt.Sprintf("%s/%d+%d", configKey(c.Scenario, c.Persona, c.Machine, c.Faults), c.SeedStart, c.SeedCount)
}

// configKey builds the configuration key shared by cell ids, ledger
// records, and analyze groupings. The faults segment appears only when
// a variant is set, so pre-faults-axis ids are unchanged.
func configKey(scenario, persona, machine, faults string) string {
	key := scenario + "/" + persona + "/" + machine
	if faults != "" {
		key += "/" + faults
	}
	return key
}

// SeedBlock sizes the seed axis of the cube.
type SeedBlock struct {
	// Start is the first session seed (>= 1; seed 0 means "inherit" in
	// scenario documents, so it cannot name a session).
	Start uint64 `json:"start"`
	// Count is the number of consecutive seeds swept per configuration.
	Count int `json:"count"`
	// PerCell is the cell granularity: each configuration's seed range
	// is chunked into cells of this many seeds (the last cell may be
	// smaller). Cells are the sharding and ledger unit.
	PerCell int `json:"per_cell"`
}

// Sessions returns the total session count of the cube (or of the
// explicit cell list).
func (s Spec) Sessions() int {
	if len(s.Cells) > 0 {
		n := 0
		for _, c := range s.Cells {
			n += c.SeedCount
		}
		return n
	}
	n := len(s.Scenarios) * len(s.Personas) * len(s.Machines) * s.Seeds.Count
	if len(s.Faults) > 0 {
		n *= len(s.Faults)
	}
	return n
}

// specIDPattern mirrors the scenario slug grammar.
var specIDPattern = regexp.MustCompile(`^[a-z0-9][a-z0-9-]*$`)

// Validate checks the spec against the grammar, phrasing each error
// with the valid alternatives so a hand-written spec is fixable from
// the message alone.
func (s Spec) Validate() error {
	if s.Schema != SpecSchemaVersion {
		return fmt.Errorf("campaign: schema %d not supported (want %d)", s.Schema, SpecSchemaVersion)
	}
	if !specIDPattern.MatchString(s.ID) {
		return fmt.Errorf("campaign: id %q is not a slug (lowercase letters, digits, dashes)", s.ID)
	}
	if s.Title == "" {
		return fmt.Errorf("campaign %s: missing title", s.ID)
	}
	if len(s.Cells) > 0 {
		return s.validateCells()
	}
	if len(s.Personas) == 0 {
		return fmt.Errorf("campaign %s: no personas", s.ID)
	}
	seen := map[string]bool{}
	for _, p := range s.Personas {
		if _, ok := persona.ByShort(p); !ok {
			return fmt.Errorf("campaign %s: unknown persona %q (valid: %s)",
				s.ID, p, strings.Join(personaShorts(), ", "))
		}
		if seen["p:"+p] {
			return fmt.Errorf("campaign %s: duplicate persona %q", s.ID, p)
		}
		seen["p:"+p] = true
	}
	if len(s.Machines) == 0 {
		return fmt.Errorf("campaign %s: no machines", s.ID)
	}
	for _, m := range s.Machines {
		if _, ok := machine.ByShort(m); !ok {
			return fmt.Errorf("campaign %s: unknown machine %q (valid: %s)",
				s.ID, m, strings.Join(machine.Shorts(), ", "))
		}
		if seen["m:"+m] {
			return fmt.Errorf("campaign %s: duplicate machine %q", s.ID, m)
		}
		seen["m:"+m] = true
	}
	for _, f := range s.Faults {
		if f == "" {
			return fmt.Errorf("campaign %s: empty fault variant (omit the faults axis to keep the template's block)", s.ID)
		}
		if err := validFaultVariant(f); err != nil {
			return fmt.Errorf("campaign %s: %w", s.ID, err)
		}
		if seen["f:"+f] {
			return fmt.Errorf("campaign %s: duplicate fault variant %q", s.ID, f)
		}
		seen["f:"+f] = true
	}
	if len(s.Scenarios) == 0 {
		return fmt.Errorf("campaign %s: no scenarios", s.ID)
	}
	if s.Seeds.Start < 1 {
		return fmt.Errorf("campaign %s: seeds.start must be >= 1 (seed 0 means \"inherit\" in scenario documents)", s.ID)
	}
	if s.Seeds.Count < 1 {
		return fmt.Errorf("campaign %s: seeds.count must be positive", s.ID)
	}
	if s.Seeds.PerCell < 1 || s.Seeds.PerCell > s.Seeds.Count {
		return fmt.Errorf("campaign %s: seeds.per_cell must be in [1, seeds.count]", s.ID)
	}
	return nil
}

// validateCells checks the explicit-cell-list form of a spec: no cube
// axes alongside it, every referenced persona and machine valid, sane
// seed ranges, and no duplicate cells.
func (s Spec) validateCells() error {
	if len(s.Personas) > 0 || len(s.Machines) > 0 || len(s.Faults) > 0 || s.Seeds != (SeedBlock{}) {
		return fmt.Errorf("campaign %s: cells and cube axes (personas/machines/faults/seeds) are mutually exclusive", s.ID)
	}
	if len(s.Scenarios) == 0 {
		return fmt.Errorf("campaign %s: no scenarios", s.ID)
	}
	seen := map[string]bool{}
	for i, c := range s.Cells {
		if c.Scenario == "" {
			return fmt.Errorf("campaign %s: cell %d has no scenario id", s.ID, i)
		}
		if _, ok := persona.ByShort(c.Persona); !ok {
			return fmt.Errorf("campaign %s: cell %d: unknown persona %q (valid: %s)",
				s.ID, i, c.Persona, strings.Join(personaShorts(), ", "))
		}
		if _, ok := machine.ByShort(c.Machine); !ok {
			return fmt.Errorf("campaign %s: cell %d: unknown machine %q (valid: %s)",
				s.ID, i, c.Machine, strings.Join(machine.Shorts(), ", "))
		}
		if c.Faults != "" {
			if err := validFaultVariant(c.Faults); err != nil {
				return fmt.Errorf("campaign %s: cell %d: %w", s.ID, i, err)
			}
		}
		if c.SeedStart < 1 {
			return fmt.Errorf("campaign %s: cell %d: seed_start must be >= 1", s.ID, i)
		}
		if c.SeedCount < 1 {
			return fmt.Errorf("campaign %s: cell %d: seed_count must be positive", s.ID, i)
		}
		if seen[c.ID()] {
			return fmt.Errorf("campaign %s: duplicate cell %s", s.ID, c.ID())
		}
		seen[c.ID()] = true
	}
	return nil
}

// FaultNone is the fault-axis variant that strips the scenario
// template's fault block: the cell runs on a clean machine.
const FaultNone = "none"

// validFaultVariant checks one fault-axis value: FaultNone or a fault
// kind name.
func validFaultVariant(v string) error {
	if v == FaultNone {
		return nil
	}
	if _, ok := faults.KindByName(v); !ok {
		return fmt.Errorf("unknown fault variant %q (valid: %s, %s)",
			v, FaultNone, strings.Join(faults.KindNames(), ", "))
	}
	return nil
}

// personaShorts lists the valid persona short names.
func personaShorts() []string {
	var out []string
	for _, p := range persona.All() {
		out = append(out, p.Short)
	}
	return out
}

// ParseSpec decodes and validates a campaign spec. Decoding is strict:
// unknown fields and trailing data are errors, mirroring
// scenario.Parse.
func ParseSpec(data []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("campaign: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return Spec{}, fmt.Errorf("campaign: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// MarshalSpec renders a spec as a deterministic, parseable campaign
// file: indented JSON in struct field order plus a trailing newline —
// the form `campaign analyze -emit-spec` writes.
func MarshalSpec(s Spec) ([]byte, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return append(data, '\n'), nil
}

// Campaign is a loaded spec with its scenario templates resolved: the
// runnable form Run consumes.
type Campaign struct {
	Spec Spec
	// Docs holds the parsed scenario templates, parallel to
	// Spec.Scenarios.
	Docs []scenario.Doc
}

// LoadSpec reads the campaign spec at path and resolves its scenario
// documents (relative to the spec file). Each template must be a
// single-run scenario — a campaign measures one distribution per
// configuration, so compare rows are rejected — and template ids must
// be unique, since they name configurations in the ledger.
func LoadSpec(path string) (*Campaign, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	spec, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	c := &Campaign{Spec: spec}
	dir := filepath.Dir(path)
	ids := map[string]bool{}
	for _, rel := range spec.Scenarios {
		doc, err := scenario.ParseFile(filepath.Join(dir, rel))
		if err != nil {
			return nil, err
		}
		if len(doc.Compare) > 0 {
			return nil, fmt.Errorf("campaign %s: scenario %s has compare rows; campaigns need single-run documents", spec.ID, doc.ID)
		}
		if ids[doc.ID] {
			return nil, fmt.Errorf("campaign %s: duplicate scenario id %q", spec.ID, doc.ID)
		}
		ids[doc.ID] = true
		c.Docs = append(c.Docs, doc)
	}
	// In cell-list mode every cell's scenario id must name one of the
	// resolved documents — only checkable now that the docs are loaded.
	for i, cell := range spec.Cells {
		if !ids[cell.Scenario] {
			return nil, fmt.Errorf("campaign %s: cell %d references scenario id %q, not the id of any listed document", spec.ID, i, cell.Scenario)
		}
	}
	return c, nil
}
