package campaign

import (
	"bytes"
	"strings"
	"testing"

	"latlab/internal/stats"
)

// testRecord builds a consistent in-memory record from the given
// latency samples.
func testRecord(t *testing.T, seedStart uint64, samples ...float64) Record {
	t.Helper()
	sk := stats.NewSketch(stats.DefaultSketchAlpha)
	for _, v := range samples {
		sk.Add(v)
	}
	return Record{
		Schema:    RecordSchemaVersion,
		Campaign:  "demo",
		Scenario:  "tiny-type",
		Persona:   "nt40",
		Machine:   "p100",
		SeedStart: seedStart,
		SeedCount: 6,
		Quick:     true,
		Sessions:  6,
		Events:    sk.Count(),
		P50Ms:     sk.Quantile(0.5),
		P95Ms:     sk.Quantile(0.95),
		P99Ms:     sk.Quantile(0.99),
		MaxMs:     sk.Max(),
		MeanMs:    sk.Mean(),
		JitterMs:  sk.StdDev(),
		Sketch:    sk,
	}
}

func TestLedgerRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := []Record{
		testRecord(t, 1, 1.5, 2.5, 40, 0, 3.25, 2.5),
		testRecord(t, 7, 5, 5, 5, 5, 5, 5),
	}
	for _, r := range recs {
		if err := AppendRecord(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	parsed, err := ParseLedger(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != 2 {
		t.Fatalf("parsed %d records, want 2", len(parsed))
	}
	// Canonical form: re-marshal must reproduce the input bytes.
	var again bytes.Buffer
	for _, r := range parsed {
		if err := AppendRecord(&again, r); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Errorf("re-marshal differs:\n%s\nvs\n%s", buf.Bytes(), again.Bytes())
	}
	if got := parsed[0].Cell(); got != "tiny-type/nt40/p100/1+6" {
		t.Errorf("cell id %q", got)
	}
	if parsed[1].Sketch.Count() != 6 {
		t.Errorf("sketch count %d", parsed[1].Sketch.Count())
	}
}

func TestParseLedgerEmpty(t *testing.T) {
	recs, err := ParseLedger(nil)
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty ledger: %v, %d records", err, len(recs))
	}
}

func TestParseLedgerRejects(t *testing.T) {
	line, err := MarshalRecord(testRecord(t, 1, 1, 2, 3, 4, 5, 6))
	if err != nil {
		t.Fatal(err)
	}
	valid := string(line)
	cases := []struct {
		name string
		data string
		want string
	}{
		{"truncated final record", valid + strings.TrimSuffix(valid, "\n"), "truncated"},
		{"half a record", valid[:len(valid)/2] + "\n", "line 1"},
		{"blank line", valid + "\n" + valid, "blank"},
		{"unknown field", strings.Replace(valid, `"schema"`, `"bogus":1,"schema"`, 1), "bogus"},
		{"trailing data on line", strings.TrimSuffix(valid, "\n") + " {}\n", "trailing"},
		{"wrong schema", strings.Replace(valid, `"schema":1`, `"schema":9`, 1), "schema"},
		{"missing campaign", strings.Replace(valid, `"campaign":"demo"`, `"campaign":""`, 1), "configuration"},
		{"zero seed start", strings.Replace(valid, `"seed_start":1`, `"seed_start":0`, 1), "seed range"},
		{"sessions beyond range", strings.Replace(valid, `"sessions":6`, `"sessions":7`, 1), "sessions"},
		{"events vs sketch count", strings.Replace(valid, `"events":6`, `"events":5`, 1), "sketch count"},
		{"negative quantile", strings.Replace(valid, `"p50_ms":`, `"p50_ms":-`, 1), "p50_ms"},
		{"corrupt sketch buckets", strings.Replace(valid, `"buckets":[[`, `"buckets":[[-9999,0],[`, 1), "bucket"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.data == valid {
				t.Fatal("mutation did not change the record")
			}
			_, err := ParseLedger([]byte(tc.data))
			if err == nil {
				t.Fatalf("want error mentioning %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzParseLedger fuzzes the strict JSONL parser: it must never panic,
// and anything it accepts must be in canonical form already —
// re-marshaling the parsed records reproduces the input bytes exactly,
// so a ledger cannot drift through a parse/write cycle.
func FuzzParseLedger(f *testing.F) {
	sk := stats.NewSketch(stats.DefaultSketchAlpha)
	for _, v := range []float64{1.5, 2.5, 40, 0, 3.25, 2.5} {
		sk.Add(v)
	}
	rec := Record{
		Schema: RecordSchemaVersion, Campaign: "demo", Scenario: "tiny-type",
		Persona: "nt40", Machine: "p100", SeedStart: 1, SeedCount: 6,
		Quick: true, Sessions: 6, Events: sk.Count(),
		P50Ms: sk.Quantile(0.5), P95Ms: sk.Quantile(0.95), P99Ms: sk.Quantile(0.99),
		MaxMs: sk.Max(), MeanMs: sk.Mean(), JitterMs: sk.StdDev(), Sketch: sk,
	}
	line, err := MarshalRecord(rec)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(line)
	f.Add(append(line, line...))
	f.Add(line[:len(line)-1])                                       // truncated
	f.Add(append(append([]byte{}, line...), line[:len(line)/2]...)) // torn tail after a valid record
	f.Add(append(append([]byte{}, line...), line[:1]...))           // one-byte torn tail
	f.Add([]byte(`{"schema":1}` + "\n"))                            // incomplete record
	f.Add([]byte(`{"bogus":true}` + "\n"))                          // unknown field
	f.Add([]byte("\n"))                                             // blank line
	f.Add([]byte(``))                                               // empty ledger
	f.Add([]byte(strings.Replace(string(line), ":1,", ":2,", 1)))   // perturbed
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ParseLedger(data)
		if err != nil {
			return
		}
		var out bytes.Buffer
		for _, r := range recs {
			if err := AppendRecord(&out, r); err != nil {
				t.Fatalf("accepted record failed to marshal: %v", err)
			}
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatalf("accepted ledger is not canonical:\ninput:  %q\noutput: %q", data, out.Bytes())
		}
	})
}
