package campaign

import (
	"context"
	"fmt"
	"io"
	"time"

	"latlab/internal/experiments"
	"latlab/internal/kernel"
	"latlab/internal/perception"
	"latlab/internal/runner"
	"latlab/internal/scenario"
	"latlab/internal/stats"
	"latlab/internal/system"
)

// Options tunes a campaign run.
type Options struct {
	// Jobs is the worker-pool size handed to the runner; <=0 means one
	// worker per CPU. The ledger bytes are identical for every value.
	Jobs int
	// Quick selects the quick workload parameter set for every session,
	// exactly like latbench -quick.
	Quick bool
	// Timeout bounds each cell's wall time — the whole retry loop,
	// backoff included; 0 means no limit. A timed-out cell is
	// quarantined, not fatal.
	Timeout time.Duration
	// Alpha is the sketch relative accuracy; 0 means
	// stats.DefaultSketchAlpha.
	Alpha float64
	// RetryBudget caps the total attempts a quarantined cell may consume
	// across the original run and every resume. Cells without a prior
	// quarantine entry always get exactly one attempt (failures are
	// quarantined for resume to retry, keeping the first pass fast);
	// a cell with prior failures gets RetryBudget - prior attempts here.
	// <= 0 means 1.
	RetryBudget int
	// Backoff is the base delay between retry attempts of one cell. The
	// delay before global attempt n (2nd, 3rd, …) is Backoff << (n-2),
	// a deterministic exponential schedule — unlike the runner's
	// seed-perturbing retry, the seeds never change. Zero disables
	// waiting.
	Backoff time.Duration
	// PriorAttempts maps cell ids to failed attempts recorded in the
	// quarantine sidecar, so the retry budget spans runs.
	PriorAttempts map[string]int
	// Drain, when closed, stops feeding new cells while in-flight cells
	// run to completion and flush through the reorder buffer — graceful
	// shutdown. The completed set stays a prefix of expansion order, so
	// the ledger remains byte-identical resumable.
	Drain <-chan struct{}
	// Inject is the crash-injection seam: when non-nil it runs before
	// every cell attempt (attempt is the global 1-based attempt number,
	// prior failures included) and a non-nil return fails the attempt
	// without running any session. Tests and the
	// LATLAB_CAMPAIGN_INJECT env hook use it to fault or delay specific
	// cells deterministically.
	Inject func(ctx context.Context, cell Cell, attempt int) error
	// OnQuarantine, when non-nil, receives each quarantined cell in
	// expansion order as soon as its failure is known — the hook the CLI
	// uses to append the sidecar crash-safely while the run continues. A
	// returned error stops the run like an emit error.
	OnQuarantine func(Quarantine) error
	// Engine selects the kernel engine every session boots on. The zero
	// value is the reference engine; cmd/campaign defaults to
	// kernel.BatchedEngine(). Both produce byte-identical ledgers.
	Engine kernel.Engine
	// Batch is the number of machines each worker steps as one
	// system.Batch; <= 1 runs sessions one at a time (the reference
	// path). The ledger bytes are identical for every value: sessions
	// are opened, stepped, and folded in seed order either way. Cells
	// whose scenario has no single-session decomposition (compare
	// scenarios) fall back to the sequential path automatically.
	Batch int
}

// SketchAlpha resolves the sketch accuracy the options run with —
// the value resume planning must match against existing records.
func (o Options) SketchAlpha() float64 {
	if o.Alpha == 0 {
		return stats.DefaultSketchAlpha
	}
	return o.Alpha
}

// attemptsFor returns how many attempts the cell may consume this run.
func (o Options) attemptsFor(id string) (prior, allowed int) {
	prior = o.PriorAttempts[id]
	if prior == 0 {
		return 0, 1
	}
	budget := o.RetryBudget
	if budget < 1 {
		budget = 1
	}
	allowed = budget - prior
	if allowed < 1 {
		allowed = 1
	}
	return prior, allowed
}

// Cell is one unit of campaign work: a single configuration swept over
// a contiguous seed subrange. Cells are what the runner shards, so
// every float inside a cell folds on one goroutine, in seed order.
type Cell struct {
	// Index is the cell's position in expansion order (ledger order).
	Index int
	// Doc is the scenario template, already re-pointed at the cell's
	// persona and machine, with Seed cleared so the per-session seed
	// flows from the run config.
	Doc scenario.Doc
	// Scenario, Persona, Machine name the configuration.
	Scenario string
	Persona  string
	Machine  string
	// Faults is the fault-plan variant applied to the template ("" =
	// the template's own block; see Spec.Faults).
	Faults string
	// SeedStart and SeedCount delimit the seed subrange.
	SeedStart uint64
	SeedCount int
	// Perception carries the spec's perception flag: fold per-class
	// stats into the cell's record.
	Perception bool
}

// ID returns the cell id used in ledger records and error messages.
func (c Cell) ID() string {
	return fmt.Sprintf("%s/%d+%d", configKey(c.Scenario, c.Persona, c.Machine, c.Faults), c.SeedStart, c.SeedCount)
}

// Cells expands the campaign into cells in canonical order. For a cube
// spec that is scenario-major, then persona, then machine, then fault
// variant, then ascending seed chunks — the order records appear in
// the ledger. For an explicit cell-list spec it is simply the listed
// order, one engine cell per CellRef.
func Cells(c *Campaign) []Cell {
	var out []Cell
	if len(c.Spec.Cells) > 0 {
		docByID := map[string]int{}
		for i, doc := range c.Docs {
			docByID[doc.ID] = i
		}
		for i, ref := range c.Spec.Cells {
			d := c.Docs[docByID[ref.Scenario]]
			d.Persona = ref.Persona
			d.Machine = ref.Machine
			d.Seed = 0
			applyFaultVariant(&d, ref.Faults)
			out = append(out, Cell{
				Index:      i,
				Doc:        d,
				Scenario:   ref.Scenario,
				Persona:    ref.Persona,
				Machine:    ref.Machine,
				Faults:     ref.Faults,
				SeedStart:  ref.SeedStart,
				SeedCount:  ref.SeedCount,
				Perception: c.Spec.Perception,
			})
		}
		return out
	}
	// An absent faults axis expands as the single variant "": keep the
	// template's fault block, and omit the faults segment from cell ids
	// so pre-axis ledgers stay byte-identical.
	variants := c.Spec.Faults
	if len(variants) == 0 {
		variants = []string{""}
	}
	for si, doc := range c.Docs {
		for _, p := range c.Spec.Personas {
			for _, m := range c.Spec.Machines {
				for _, f := range variants {
					start := c.Spec.Seeds.Start
					remaining := c.Spec.Seeds.Count
					for remaining > 0 {
						n := c.Spec.Seeds.PerCell
						if n > remaining {
							n = remaining
						}
						d := c.Docs[si]
						d.Persona = p
						d.Machine = m
						d.Seed = 0
						applyFaultVariant(&d, f)
						out = append(out, Cell{
							Index:      len(out),
							Doc:        d,
							Scenario:   doc.ID,
							Persona:    p,
							Machine:    m,
							Faults:     f,
							SeedStart:  start,
							SeedCount:  n,
							Perception: c.Spec.Perception,
						})
						start += uint64(n)
						remaining -= n
					}
				}
			}
		}
	}
	return out
}

// Default fault span for derived variants when the scenario template
// pins none: windows are placed inside the first 10 simulated seconds
// (2 in -quick mode), matching the spans the committed fault scenarios
// use.
const (
	DefaultFaultSpanS      = 10.0
	DefaultQuickFaultSpanS = 2.0
)

// applyFaultVariant rewrites the cell's scenario document for one
// fault-axis variant: "" keeps the template's block, FaultNone strips
// it, and a kind name replaces it with a seed-derived plan of that
// kind — spanned like the template's own derived block when it has
// one, else over the package default span.
func applyFaultVariant(d *scenario.Doc, variant string) {
	switch variant {
	case "":
	case FaultNone:
		d.Faults = nil
	default:
		span, quickSpan := DefaultFaultSpanS, DefaultQuickFaultSpanS
		if f := d.Faults; f != nil && f.SpanS > 0 {
			span = f.SpanS
			if f.QuickSpanS > 0 {
				quickSpan = f.QuickSpanS
			}
		}
		d.Faults = &scenario.FaultSpec{
			Kinds:      []string{variant},
			SpanS:      span,
			QuickSpanS: quickSpan,
		}
	}
}

// Summary totals a completed campaign run.
type Summary struct {
	// Planned is the number of cells the run set out to execute.
	Planned int
	// Cells is the number of ledger records emitted.
	Cells int
	// Sessions is the number of seeded sessions executed.
	Sessions int
	// Events is the number of event latencies folded into sketches.
	Events uint64
	// Quarantined lists the cells that failed (error, panic, timeout)
	// after their attempts, in expansion order. The run completed the
	// remaining cells instead of aborting; `campaign resume` retries
	// these with the same seeds.
	Quarantined []Quarantine
	// Interrupted reports that the run stopped early — a drained or
	// cancelled context — and the ledger holds a resumable prefix
	// instead of every planned cell.
	Interrupted bool
}

// cellResult carries a finished cell's outcome through the runner's
// reorder buffer. It is the experiments.Result of the synthetic
// per-cell spec; exactly one of rec/fail is meaningful, so a failed
// cell flows through the same ordered path as a completed one instead
// of aborting the suite.
type cellResult struct {
	id   string
	rec  Record
	fail *Quarantine
}

// ExperimentID implements experiments.Result.
func (r *cellResult) ExperimentID() string { return r.id }

// Render implements experiments.Result with the cell's headline.
func (r *cellResult) Render(w io.Writer) error {
	if r.fail != nil {
		_, err := fmt.Fprintf(w, "cell %s: quarantined after %d attempts: %s\n",
			r.id, r.fail.Attempts, r.fail.Error)
		return err
	}
	_, err := fmt.Fprintf(w, "cell %s: %d sessions, %d events, p99 %.2fms\n",
		r.id, r.rec.Sessions, r.rec.Events, r.rec.P99Ms)
	return err
}

// Run executes the whole campaign: every cell of the expanded cube, in
// expansion order. See RunCells for the execution contract.
func Run(ctx context.Context, c *Campaign, opt Options, emit func(Record) error) (Summary, error) {
	return RunCells(ctx, c, Cells(c), opt, emit)
}

// RunCells executes the given cells (any subset of the campaign's
// expansion, in expansion order — Run passes all of them, resume the
// set-difference): cells shard across the runner's worker pool, each
// cell folds its sessions sequentially in seed order into a fresh
// sketch, and emit receives one Record per completed cell in cell
// order (the runner's reorder buffer restores it whatever the worker
// count).
//
// A cell whose sessions error, panic, or time out is quarantined — the
// run continues — and lands in Summary.Quarantined (and
// opt.OnQuarantine), never in the ledger. Cancellation and draining
// instead mark the run Interrupted, and record appends stop at the
// first not-completed cell so the emitted records always form a prefix
// of cells: an interrupted ledger plus a resume reconverges to the
// byte-identical uninterrupted ledger. If emit or OnQuarantine returns
// an error the run stops and that error is returned.
func RunCells(ctx context.Context, c *Campaign, cells []Cell, opt Options, emit func(Record) error) (Summary, error) {
	alpha := opt.SketchAlpha()
	specs := make([]experiments.Spec, len(cells))
	for i, cell := range cells {
		specs[i] = cellSpec(c.Spec.ID, cell, alpha, opt)
	}
	sum := Summary{Planned: len(cells)}
	next := 0
	_, err := runner.Run(ctx, specs,
		runner.Options{
			Jobs:    opt.Jobs,
			Timeout: opt.Timeout,
			// Retries must stay 0: the runner's retry perturbs the seed, and
			// a perturbed seed breaks the ledger's determinism contract. The
			// deterministic same-seed retry lives in cellSpec instead.
			Retries: 0,
			Drain:   opt.Drain,
			Config:  experiments.Config{Quick: opt.Quick},
		},
		func(out runner.Outcome) error {
			cell := cells[next]
			next++
			// Interruption — a drained suffix or a cell cut down by
			// cancellation — is not failure: the cell is simply not run, and
			// everything from the first such gap on is left for resume so
			// the appended records stay a prefix of expansion order.
			if out.Record.Cancelled || out.Record.Error == context.Canceled.Error() {
				sum.Interrupted = true
				return nil
			}
			if out.Record.Failed() {
				// Panics and timeouts bypass the in-spec retry loop (the
				// runner caught them at the spec boundary), so the attempt
				// accounting is the prior count plus this one attempt.
				prior, _ := opt.attemptsFor(cell.ID())
				return quarantine(&sum, opt, cellQuarantine(c.Spec.ID, cell, opt.Quick, prior+1, out.Record.Error))
			}
			res := out.Result.(*cellResult)
			if res.fail != nil {
				return quarantine(&sum, opt, *res.fail)
			}
			if sum.Interrupted {
				// A completed cell after an interruption gap would land out
				// of order; drop it and let resume re-run it.
				return nil
			}
			sum.Cells++
			sum.Sessions += res.rec.Sessions
			sum.Events += res.rec.Events
			return emit(res.rec)
		})
	// Cells the collector never saw — the feed stopped on a drain or
	// cancellation — are interruption too, even though the runner's
	// synthetic records for them bypass the emit path.
	if next < len(cells) {
		sum.Interrupted = true
	}
	if err != nil && ctx.Err() != nil {
		sum.Interrupted = true
	}
	return sum, err
}

// quarantine records one failed cell and forwards it to the hook.
func quarantine(sum *Summary, opt Options, q Quarantine) error {
	sum.Quarantined = append(sum.Quarantined, q)
	if opt.OnQuarantine != nil {
		return opt.OnQuarantine(q)
	}
	return nil
}

// cellQuarantine builds the quarantine entry for a failed cell.
func cellQuarantine(campaignID string, cell Cell, quick bool, attempts int, errMsg string) Quarantine {
	return Quarantine{
		Schema:    QuarantineSchemaVersion,
		Campaign:  campaignID,
		Scenario:  cell.Scenario,
		Persona:   cell.Persona,
		Machine:   cell.Machine,
		Faults:    cell.Faults,
		SeedStart: cell.SeedStart,
		SeedCount: cell.SeedCount,
		Quick:     quick,
		Attempts:  attempts,
		Error:     errMsg,
	}
}

// cellSpec wraps one cell as a synthetic experiments.Spec so the
// runner can schedule it like any other experiment. The spec's Run
// holds the deterministic retry loop: up to the cell's allowed
// attempts with the *same* seeds, exponential backoff between them,
// and a cellResult carrying either the record or the quarantine entry
// — it only returns an error for cancellation, so a failing cell never
// aborts the suite.
func cellSpec(campaignID string, cell Cell, alpha float64, opt Options) experiments.Spec {
	return experiments.Spec{
		ID:    cell.ID(),
		Title: fmt.Sprintf("campaign %s cell %s", campaignID, cell.ID()),
		Run: func(ctx context.Context, _ experiments.Config) (experiments.Result, error) {
			prior, allowed := opt.attemptsFor(cell.ID())
			var lastErr error
			for a := 0; a < allowed; a++ {
				attempt := prior + a + 1
				if a > 0 && opt.Backoff > 0 {
					if err := sleepCtx(ctx, opt.Backoff<<(attempt-2)); err != nil {
						return nil, err
					}
				}
				var rec Record
				var err error
				if opt.Inject != nil {
					err = opt.Inject(ctx, cell, attempt)
				}
				if err == nil {
					rec, err = runCell(ctx, campaignID, cell, alpha, opt)
				}
				if err == nil {
					return &cellResult{id: cell.ID(), rec: rec}, nil
				}
				if ctx.Err() != nil {
					// Cancellation, not failure: surface the bare context
					// error so the collector files the cell under
					// "interrupted", never "quarantined".
					return nil, ctx.Err()
				}
				lastErr = err
			}
			q := cellQuarantine(campaignID, cell, opt.Quick, prior+allowed, lastErr.Error())
			return &cellResult{id: cell.ID(), fail: &q}, nil
		},
	}
}

// sleepCtx waits d or until ctx is cancelled.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// runCell executes a cell's sessions in seed order, folding every
// event latency into one sketch and returning the finished ledger
// record. Each session's result is discarded after folding, so memory
// stays flat at any population size. With opt.Batch > 1, sessions run
// interleaved as a system.Batch in waves of the batch size — opened,
// stepped, and folded in seed order, so the record (and the ledger) is
// byte-identical to the sequential path.
func runCell(ctx context.Context, campaignID string, cell Cell, alpha float64, opt Options) (Record, error) {
	sk := stats.NewSketch(alpha)
	sessions := 0
	// The perception fold walks the same events in the same order as the
	// headline sketch, adding the identical float, so turning the block on
	// never perturbs the headline distribution.
	var per *PerceptionStats
	model := perception.Default()
	if cell.Perception {
		per = &PerceptionStats{}
	}
	fold := func(sr *experiments.ScenarioResult) {
		for _, ev := range sr.Row.Report.Events {
			ms := ev.Latency.Milliseconds()
			sk.Add(ms)
			if per == nil {
				continue
			}
			ec := perception.ClassOfKind(ev.Kind)
			switch model.Classify(ec, ms) {
			case perception.Imperceptible:
				per.Imperceptible++
			case perception.Perceptible:
				per.Perceptible++
			case perception.Annoying:
				per.Annoying++
			default:
				per.Unusable++
			}
			dst := &per.Command
			switch ec {
			case perception.Typing:
				dst = &per.Typing
			case perception.Pointing:
				dst = &per.Pointing
			}
			if *dst == nil {
				*dst = stats.NewSketch(alpha)
			}
			(*dst).Add(ms)
		}
		sessions++
	}
	var err error
	if opt.Batch > 1 && len(cell.Doc.Compare) == 0 {
		err = runCellBatched(ctx, cell, opt, fold)
	} else {
		err = runCellSequential(ctx, cell, opt, fold)
	}
	if err != nil {
		return Record{}, err
	}
	return Record{
		Schema:     RecordSchemaVersion,
		Campaign:   campaignID,
		Scenario:   cell.Scenario,
		Persona:    cell.Persona,
		Machine:    cell.Machine,
		Faults:     cell.Faults,
		SeedStart:  cell.SeedStart,
		SeedCount:  cell.SeedCount,
		Quick:      opt.Quick,
		Sessions:   sessions,
		Events:     sk.Count(),
		P50Ms:      sk.Quantile(0.50),
		P95Ms:      sk.Quantile(0.95),
		P99Ms:      sk.Quantile(0.99),
		MaxMs:      sk.Max(),
		MeanMs:     sk.Mean(),
		JitterMs:   sk.StdDev(),
		Sketch:     sk,
		Perception: per,
	}, nil
}

// runCellSequential is the reference path: one session at a time.
func runCellSequential(ctx context.Context, cell Cell, opt Options, fold func(*experiments.ScenarioResult)) error {
	spec, err := experiments.FromScenario(cell.Doc)
	if err != nil {
		return err
	}
	for i := 0; i < cell.SeedCount; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		seed := cell.SeedStart + uint64(i)
		res, err := spec.Run(ctx, experiments.Config{Seed: seed, Quick: opt.Quick, Engine: opt.Engine})
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		sr, ok := res.(*experiments.ScenarioResult)
		if !ok {
			return fmt.Errorf("seed %d: unexpected result type %T", seed, res)
		}
		fold(sr)
	}
	return nil
}

// runCellBatched steps the cell's sessions opt.Batch machines at a
// time on this worker: each wave opens its sessions in seed order
// (reusing the batch's per-slot sample arenas), interleaves their
// stepping earliest-target-first, then extracts and folds in seed
// order. Abandoned sessions are closed if a sibling's open fails.
func runCellBatched(ctx context.Context, cell Cell, opt Options, fold func(*experiments.ScenarioResult)) error {
	if err := cell.Doc.Validate(); err != nil {
		return err
	}
	b := system.NewBatch(opt.Batch)
	open := make([]*experiments.ScenarioSession, opt.Batch)
	for base := 0; base < cell.SeedCount; base += opt.Batch {
		n := opt.Batch
		if rest := cell.SeedCount - base; n > rest {
			n = rest
		}
		err := func() error {
			defer func() {
				for _, s := range open {
					if s != nil {
						s.Close()
					}
				}
			}()
			for i := 0; i < n; i++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				seed := cell.SeedStart + uint64(base+i)
				s, err := experiments.OpenScenarioSession(experiments.Config{
					Seed: seed, Quick: opt.Quick, Engine: opt.Engine, IdleArena: b.Arena(i),
				}, cell.Doc)
				if err != nil {
					return fmt.Errorf("seed %d: %w", seed, err)
				}
				open[i] = s
				b.Open(i, s)
			}
			b.Run()
			return nil
		}()
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			fold(open[i].Result())
			open[i] = nil
		}
		b.Reset()
	}
	return nil
}
