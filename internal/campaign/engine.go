package campaign

import (
	"context"
	"fmt"
	"io"
	"time"

	"latlab/internal/experiments"
	"latlab/internal/runner"
	"latlab/internal/scenario"
	"latlab/internal/stats"
)

// Options tunes a campaign run.
type Options struct {
	// Jobs is the worker-pool size handed to the runner; <=0 means one
	// worker per CPU. The ledger bytes are identical for every value.
	Jobs int
	// Quick selects the quick workload parameter set for every session,
	// exactly like latbench -quick.
	Quick bool
	// Timeout bounds each cell's wall time; 0 means no limit.
	Timeout time.Duration
	// Alpha is the sketch relative accuracy; 0 means
	// stats.DefaultSketchAlpha.
	Alpha float64
}

// Cell is one unit of campaign work: a single configuration swept over
// a contiguous seed subrange. Cells are what the runner shards, so
// every float inside a cell folds on one goroutine, in seed order.
type Cell struct {
	// Index is the cell's position in expansion order (ledger order).
	Index int
	// Doc is the scenario template, already re-pointed at the cell's
	// persona and machine, with Seed cleared so the per-session seed
	// flows from the run config.
	Doc scenario.Doc
	// Scenario, Persona, Machine name the configuration.
	Scenario string
	Persona  string
	Machine  string
	// SeedStart and SeedCount delimit the seed subrange.
	SeedStart uint64
	SeedCount int
}

// ID returns the cell id used in ledger records and error messages.
func (c Cell) ID() string {
	return fmt.Sprintf("%s/%s/%s/%d+%d", c.Scenario, c.Persona, c.Machine, c.SeedStart, c.SeedCount)
}

// Cells expands the campaign cube into cells in canonical order:
// scenario-major, then persona, then machine, then ascending seed
// chunks — the order records appear in the ledger.
func Cells(c *Campaign) []Cell {
	var out []Cell
	for si, doc := range c.Docs {
		for _, p := range c.Spec.Personas {
			for _, m := range c.Spec.Machines {
				start := c.Spec.Seeds.Start
				remaining := c.Spec.Seeds.Count
				for remaining > 0 {
					n := c.Spec.Seeds.PerCell
					if n > remaining {
						n = remaining
					}
					d := c.Docs[si]
					d.Persona = p
					d.Machine = m
					d.Seed = 0
					out = append(out, Cell{
						Index:     len(out),
						Doc:       d,
						Scenario:  doc.ID,
						Persona:   p,
						Machine:   m,
						SeedStart: start,
						SeedCount: n,
					})
					start += uint64(n)
					remaining -= n
				}
			}
		}
	}
	return out
}

// Summary totals a completed campaign run.
type Summary struct {
	// Cells is the number of ledger records emitted.
	Cells int
	// Sessions is the number of seeded sessions executed.
	Sessions int
	// Events is the number of event latencies folded into sketches.
	Events uint64
}

// cellResult carries a finished cell's ledger record through the
// runner's reorder buffer. It is the experiments.Result of the
// synthetic per-cell spec.
type cellResult struct {
	id  string
	rec Record
}

// ExperimentID implements experiments.Result.
func (r *cellResult) ExperimentID() string { return r.id }

// Render implements experiments.Result with the record's headline.
func (r *cellResult) Render(w io.Writer) error {
	_, err := fmt.Fprintf(w, "cell %s: %d sessions, %d events, p99 %.2fms\n",
		r.id, r.rec.Sessions, r.rec.Events, r.rec.P99Ms)
	return err
}

// Run executes the campaign: cells shard across the runner's worker
// pool, each cell folds its sessions sequentially in seed order into a
// fresh sketch, and emit receives one Record per cell in expansion
// order (the runner's reorder buffer restores it whatever the worker
// count). Any failed session aborts the run — a partial cell must
// never reach the ledger. If emit returns an error the run stops and
// that error is returned.
func Run(ctx context.Context, c *Campaign, opt Options, emit func(Record) error) (Summary, error) {
	alpha := opt.Alpha
	if alpha == 0 {
		alpha = stats.DefaultSketchAlpha
	}
	cells := Cells(c)
	specs := make([]experiments.Spec, len(cells))
	for i, cell := range cells {
		specs[i] = cellSpec(c.Spec.ID, cell, alpha, opt.Quick)
	}
	var sum Summary
	_, err := runner.Run(ctx, specs,
		runner.Options{
			Jobs:    opt.Jobs,
			Timeout: opt.Timeout,
			// Retries must stay 0: a retry perturbs the seed, and a
			// perturbed seed breaks the ledger's determinism contract.
			Retries: 0,
			Config:  experiments.Config{Quick: opt.Quick},
		},
		func(out runner.Outcome) error {
			if out.Record.Failed() {
				return fmt.Errorf("campaign %s: cell %s failed: %s", c.Spec.ID, out.Spec.ID, out.Record.Error)
			}
			res := out.Result.(*cellResult)
			sum.Cells++
			sum.Sessions += res.rec.Sessions
			sum.Events += res.rec.Events
			return emit(res.rec)
		})
	return sum, err
}

// cellSpec wraps one cell as a synthetic experiments.Spec so the
// runner can schedule it like any other experiment.
func cellSpec(campaignID string, cell Cell, alpha float64, quick bool) experiments.Spec {
	return experiments.Spec{
		ID:    cell.ID(),
		Title: fmt.Sprintf("campaign %s cell %s", campaignID, cell.ID()),
		Run: func(ctx context.Context, _ experiments.Config) (experiments.Result, error) {
			rec, err := runCell(ctx, campaignID, cell, alpha, quick)
			if err != nil {
				return nil, err
			}
			return &cellResult{id: cell.ID(), rec: rec}, nil
		},
	}
}

// runCell executes a cell's sessions sequentially in seed order,
// folding every event latency into one sketch and returning the
// finished ledger record. Each session's result is discarded after
// folding, so memory stays flat at any population size.
func runCell(ctx context.Context, campaignID string, cell Cell, alpha float64, quick bool) (Record, error) {
	spec, err := experiments.FromScenario(cell.Doc)
	if err != nil {
		return Record{}, err
	}
	sk := stats.NewSketch(alpha)
	sessions := 0
	for i := 0; i < cell.SeedCount; i++ {
		if err := ctx.Err(); err != nil {
			return Record{}, err
		}
		seed := cell.SeedStart + uint64(i)
		res, err := spec.Run(ctx, experiments.Config{Seed: seed, Quick: quick})
		if err != nil {
			return Record{}, fmt.Errorf("seed %d: %w", seed, err)
		}
		sr, ok := res.(*experiments.ScenarioResult)
		if !ok {
			return Record{}, fmt.Errorf("seed %d: unexpected result type %T", seed, res)
		}
		for _, ms := range sr.Row.Report.Latencies() {
			sk.Add(ms)
		}
		sessions++
	}
	return Record{
		Schema:    RecordSchemaVersion,
		Campaign:  campaignID,
		Scenario:  cell.Scenario,
		Persona:   cell.Persona,
		Machine:   cell.Machine,
		SeedStart: cell.SeedStart,
		SeedCount: cell.SeedCount,
		Quick:     quick,
		Sessions:  sessions,
		Events:    sk.Count(),
		P50Ms:     sk.Quantile(0.50),
		P95Ms:     sk.Quantile(0.95),
		P99Ms:     sk.Quantile(0.99),
		MaxMs:     sk.Max(),
		MeanMs:    sk.Mean(),
		JitterMs:  sk.StdDev(),
		Sketch:    sk,
	}, nil
}
