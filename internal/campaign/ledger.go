package campaign

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"latlab/internal/stats"
)

// RecordSchemaVersion is the ledger-record schema. Every record
// declares it, so a ledger written by a future incompatible engine is
// detected instead of misread.
const RecordSchemaVersion = 1

// Record is one ledger line: the folded latency distribution of one
// cell (a configuration × seed subrange). Per-event samples are gone
// by the time a record exists — the sketch is the distribution.
type Record struct {
	// Schema is the record schema version; must be RecordSchemaVersion.
	Schema int `json:"schema"`
	// Campaign is the spec id the cell belongs to.
	Campaign string `json:"campaign"`
	// Scenario, Persona, Machine name the cell's configuration;
	// Faults is its fault-plan variant ("" pre-faults-axis, omitted
	// from the JSON so old ledgers stay canonical).
	Scenario string `json:"scenario"`
	Persona  string `json:"persona"`
	Machine  string `json:"machine"`
	Faults   string `json:"faults,omitempty"`
	// SeedStart and SeedCount delimit the cell's contiguous seed range.
	SeedStart uint64 `json:"seed_start"`
	SeedCount int    `json:"seed_count"`
	// Quick records whether the cell ran -quick workload sizing.
	Quick bool `json:"quick,omitempty"`
	// Sessions is the number of sessions folded (== SeedCount on a
	// completed cell); Events the number of event latencies folded.
	Sessions int    `json:"sessions"`
	Events   uint64 `json:"events"`
	// Headline quantiles and jitter (ms), precomputed from the sketch
	// so a ledger is grep-able without re-deriving.
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
	MaxMs    float64 `json:"max_ms"`
	MeanMs   float64 `json:"mean_ms"`
	JitterMs float64 `json:"jitter_ms"`
	// Sketch is the cell's full latency distribution, mergeable across
	// cells.
	Sketch *stats.Sketch `json:"sketch"`
	// Perception is the optional perceptual-class block (specs with
	// "perception": true): how the cell's events classify under the
	// default perception calibration, plus a latency sketch per event
	// class. Nil — and absent from the JSON — for every record written
	// before the block existed or without the spec flag, so old ledgers
	// stay canonical byte for byte.
	Perception *PerceptionStats `json:"perception,omitempty"`
}

// PerceptionStats is a record's perceptual-class block: the event count
// per perceptual latency class (internal/perception, Default budgets)
// and one mergeable latency sketch per event class that had any events.
type PerceptionStats struct {
	// Per-perceptual-class event counts; they sum to the record's
	// Events.
	Imperceptible uint64 `json:"imperceptible"`
	Perceptible   uint64 `json:"perceptible"`
	Annoying      uint64 `json:"annoying"`
	Unusable      uint64 `json:"unusable"`
	// Per-event-class latency distributions; a class with no events is
	// nil and absent from the JSON.
	Typing   *stats.Sketch `json:"typing,omitempty"`
	Pointing *stats.Sketch `json:"pointing,omitempty"`
	Command  *stats.Sketch `json:"command,omitempty"`
}

// ClassTotal sums the perceptual-class counters.
func (p *PerceptionStats) ClassTotal() uint64 {
	return p.Imperceptible + p.Perceptible + p.Annoying + p.Unusable
}

// sketchTotal sums the per-event-class sketch counts.
func (p *PerceptionStats) sketchTotal() uint64 {
	var n uint64
	for _, sk := range []*stats.Sketch{p.Typing, p.Pointing, p.Command} {
		if sk != nil {
			n += sk.Count()
		}
	}
	return n
}

// Merge folds o into p: counters add, per-event-class sketches merge
// (adopting o's sketch where p has none for that class).
func (p *PerceptionStats) Merge(o *PerceptionStats) error {
	p.Imperceptible += o.Imperceptible
	p.Perceptible += o.Perceptible
	p.Annoying += o.Annoying
	p.Unusable += o.Unusable
	pair := []struct {
		dst **stats.Sketch
		src *stats.Sketch
	}{{&p.Typing, o.Typing}, {&p.Pointing, o.Pointing}, {&p.Command, o.Command}}
	for _, x := range pair {
		if x.src == nil {
			continue
		}
		if *x.dst == nil {
			adopted := stats.NewSketch(x.src.Alpha())
			*x.dst = adopted
		}
		if err := (*x.dst).Merge(x.src); err != nil {
			return err
		}
	}
	return nil
}

// Config returns the record's configuration key: the cube coordinates
// minus the seed axis.
func (r Record) Config() string {
	return configKey(r.Scenario, r.Persona, r.Machine, r.Faults)
}

// Cell returns the record's full cell id, unique within a campaign.
func (r Record) Cell() string {
	return fmt.Sprintf("%s/%d+%d", r.Config(), r.SeedStart, r.SeedCount)
}

// Validate checks a parsed record's invariants beyond JSON
// well-formedness, so a corrupted or hand-edited ledger fails loudly.
func (r Record) Validate() error {
	if r.Schema != RecordSchemaVersion {
		return fmt.Errorf("campaign: record schema %d not supported (want %d)", r.Schema, RecordSchemaVersion)
	}
	if r.Campaign == "" || r.Scenario == "" || r.Persona == "" || r.Machine == "" {
		return fmt.Errorf("campaign: record %s missing configuration fields", r.Cell())
	}
	if r.SeedStart < 1 || r.SeedCount < 1 {
		return fmt.Errorf("campaign: record %s has a malformed seed range", r.Cell())
	}
	if r.Sessions < 0 || r.Sessions > r.SeedCount {
		return fmt.Errorf("campaign: record %s sessions %d outside seed range", r.Cell(), r.Sessions)
	}
	if r.Sketch == nil {
		return fmt.Errorf("campaign: record %s has no sketch", r.Cell())
	}
	if r.Sketch.Count() != r.Events {
		return fmt.Errorf("campaign: record %s events %d do not match sketch count %d",
			r.Cell(), r.Events, r.Sketch.Count())
	}
	if p := r.Perception; p != nil {
		if got := p.ClassTotal(); got != r.Events {
			return fmt.Errorf("campaign: record %s perception classes total %d, want %d events",
				r.Cell(), got, r.Events)
		}
		if got := p.sketchTotal(); got != r.Events {
			return fmt.Errorf("campaign: record %s perception sketches total %d, want %d events",
				r.Cell(), got, r.Events)
		}
	}
	for name, v := range map[string]float64{
		"p50_ms": r.P50Ms, "p95_ms": r.P95Ms, "p99_ms": r.P99Ms,
		"max_ms": r.MaxMs, "mean_ms": r.MeanMs, "jitter_ms": r.JitterMs,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("campaign: record %s has invalid %s", r.Cell(), name)
		}
	}
	return nil
}

// MarshalRecord renders r as one canonical ledger line (compact JSON
// plus newline). Field order is fixed by the struct, floats use Go's
// shortest-round-trip formatting, so the bytes are deterministic.
func MarshalRecord(r Record) ([]byte, error) {
	data, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("campaign: %w", err)
	}
	return append(data, '\n'), nil
}

// AppendRecord writes r to w as one ledger line.
func AppendRecord(w io.Writer, r Record) error {
	data, err := MarshalRecord(r)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// ParseLedger parses an entire JSONL ledger strictly: every line must
// be a complete, schema-valid record with no unknown fields, in
// canonical form (re-marshaling it reproduces the line byte for byte),
// and a final line without its newline is rejected as a truncated
// record (an interrupted append must not pass as a shorter, valid
// ledger). An empty ledger parses to no records.
func ParseLedger(data []byte) ([]Record, error) {
	var out []Record
	err := ScanLedger(bytes.NewReader(data), func(r Record) error {
		out = append(out, r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ScanLedger streams a JSONL ledger through a bufio.Reader one line at
// a time, calling fn for each record, with exactly ParseLedger's
// strictness — so a million-cell ledger costs one line of buffer, not
// O(file) memory, and the caller decides what to retain. If fn returns
// an error the scan stops and returns it.
func ScanLedger(r io.Reader, fn func(Record) error) error {
	s, err := salvageLedger(r, fn)
	if err != nil {
		return err
	}
	if s.Tail != nil {
		return fmt.Errorf("campaign: ledger ends mid-record (truncated append?)")
	}
	return nil
}

// Salvage is the result of scanning a possibly-torn ledger: how much of
// it is intact and what hangs off the end.
type Salvage struct {
	// Records counts the valid records before the tear.
	Records int
	// ValidBytes is the byte offset just past the final valid record —
	// the length to truncate a torn ledger to.
	ValidBytes int64
	// Tail is the torn final fragment (the bytes of an interrupted
	// append, missing their newline); nil when the ledger is intact.
	Tail []byte
}

// SalvageLedger scans a ledger tolerating the one legal corruption
// shape: a truncated final line from an interrupted append, i.e. bytes
// after the last complete record that never received their terminating
// newline. It returns where the valid prefix ends and the torn tail
// (nil if the ledger is intact). Every other malformation — a
// terminated line that does not parse, a blank line, a non-canonical
// record — is corruption the append-only engine could not have
// produced, and is returned as an error instead.
func SalvageLedger(r io.Reader) (Salvage, error) {
	return salvageLedger(r, nil)
}

// salvageLedger is the shared line-at-a-time scan under ScanLedger and
// SalvageLedger.
func salvageLedger(r io.Reader, fn func(Record) error) (Salvage, error) {
	br := bufio.NewReader(r)
	var s Salvage
	line := 0
	for {
		raw, err := br.ReadBytes('\n')
		if err == io.EOF {
			if len(raw) > 0 {
				s.Tail = raw
			}
			return s, nil
		}
		if err != nil {
			return Salvage{}, fmt.Errorf("campaign: %w", err)
		}
		line++
		body := raw[:len(raw)-1]
		if len(bytes.TrimSpace(body)) == 0 {
			return Salvage{}, fmt.Errorf("campaign: ledger line %d is blank", line)
		}
		rec, err := parseRecord(body)
		if err != nil {
			return Salvage{}, fmt.Errorf("campaign: ledger line %d: %w", line, err)
		}
		s.Records++
		s.ValidBytes += int64(len(raw))
		if fn != nil {
			if err := fn(rec); err != nil {
				return Salvage{}, err
			}
		}
	}
}

// parseRecord decodes one ledger line strictly and checks it is in
// canonical form: the ledger is append-only and byte-deterministic, so
// a line the engine could not have written is corruption, not style.
func parseRecord(raw []byte) (Record, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var rec Record
	if err := dec.Decode(&rec); err != nil {
		return Record{}, err
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil || len(trailing) > 0 {
		return Record{}, fmt.Errorf("trailing data after record")
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	canon, err := json.Marshal(rec)
	if err != nil {
		return Record{}, err
	}
	if !bytes.Equal(canon, raw) {
		return Record{}, fmt.Errorf("record is not in canonical form")
	}
	return rec, nil
}
