package campaign

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"latlab/internal/kernel"
	"latlab/internal/stats"
)

// runMini executes the mini test campaign at the given worker count
// and returns the ledger bytes and run summary.
func runMini(t *testing.T, jobs int) ([]byte, Summary) {
	t.Helper()
	return runMiniOpt(t, Options{Jobs: jobs, Quick: true})
}

// runMiniOpt is runMini with full control over the run options.
func runMiniOpt(t *testing.T, opt Options) ([]byte, Summary) {
	t.Helper()
	c, err := LoadSpec("testdata/mini.json")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sum, err := Run(context.Background(), c, opt,
		func(r Record) error { return AppendRecord(&buf, r) })
	if err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sum
}

func TestRunFoldsCampaign(t *testing.T) {
	ledger, sum := runMini(t, 1)
	if sum.Cells != 8 || sum.Sessions != 48 {
		t.Fatalf("summary = %+v, want 8 cells / 48 sessions", sum)
	}
	if sum.Events == 0 {
		t.Fatal("campaign folded no events")
	}
	recs, err := ParseLedger(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 8 {
		t.Fatalf("%d ledger records, want 8", len(recs))
	}
	for i, r := range recs {
		if r.Campaign != "mini" || !r.Quick {
			t.Errorf("record %d: campaign %q quick %v", i, r.Campaign, r.Quick)
		}
		if r.Sessions != r.SeedCount {
			t.Errorf("record %d: %d sessions for %d seeds", i, r.Sessions, r.SeedCount)
		}
		// P99 is a bucket estimate within relative error alpha, so it may
		// sit up to that factor above the exact max.
		if r.Events == 0 || r.P50Ms <= 0 || r.P99Ms > r.MaxMs*(1+stats.DefaultSketchAlpha) {
			t.Errorf("record %d has implausible metrics: %+v", i, r)
		}
	}
	// Ledger order is cell-expansion order.
	cells := Cells(mustLoad(t))
	for i, r := range recs {
		if r.Cell() != cells[i].ID() {
			t.Errorf("record %d is cell %s, want %s", i, r.Cell(), cells[i].ID())
		}
	}
}

// mustLoad loads the mini campaign spec.
func mustLoad(t *testing.T) *Campaign {
	t.Helper()
	c, err := LoadSpec("testdata/mini.json")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRunShardingInvariant is the cross-shard determinism gate: the
// ledger must be byte-identical however the cells shard across
// workers.
func TestRunShardingInvariant(t *testing.T) {
	base, _ := runMini(t, 1)
	for _, jobs := range []int{4, 8} {
		got, _ := runMini(t, jobs)
		if !bytes.Equal(base, got) {
			t.Errorf("ledger differs between -jobs 1 and -jobs %d", jobs)
		}
	}
}

// TestRunBatchInvariant is the engine/batch determinism gate: the
// ledger must be byte-identical on the reference engine and on the
// batched engine at every batch size — singleton waves, partial waves
// (4 against 6-seed cells), and one wave far wider than any cell.
func TestRunBatchInvariant(t *testing.T) {
	base, _ := runMiniOpt(t, Options{Jobs: 2, Quick: true})
	for _, opt := range []Options{
		{Jobs: 2, Quick: true, Engine: kernel.BatchedEngine(), Batch: 1},
		{Jobs: 2, Quick: true, Engine: kernel.BatchedEngine(), Batch: 4},
		{Jobs: 2, Quick: true, Engine: kernel.BatchedEngine(), Batch: 64},
	} {
		got, _ := runMiniOpt(t, opt)
		if !bytes.Equal(base, got) {
			t.Errorf("ledger differs between the reference path and the batched engine at -batch %d", opt.Batch)
		}
	}
}

func TestRunHonorsCancellation(t *testing.T) {
	c := mustLoad(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, c, Options{Jobs: 2, Quick: true}, func(Record) error { return nil })
	if err == nil {
		t.Fatal("cancelled run must error")
	}
}

func TestRunStopsOnEmitError(t *testing.T) {
	c := mustLoad(t)
	calls := 0
	_, err := Run(context.Background(), c, Options{Jobs: 2, Quick: true},
		func(Record) error { calls++; return context.Canceled })
	if err == nil {
		t.Fatal("emit error must propagate")
	}
	if calls != 1 {
		t.Errorf("emit called %d times after erroring, want 1", calls)
	}
}

func TestAnalyzeRanksAndSuggests(t *testing.T) {
	ledger, _ := runMini(t, 2)
	recs, err := ParseLedger(ledger)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Analyze(recs)
	if err != nil {
		t.Fatal(err)
	}
	if a.Campaign != "mini" || a.Cells != 8 || a.Sessions != 48 || len(a.Configs) != 2 {
		t.Fatalf("analysis = %+v", a)
	}
	// Ranked by p95 ascending.
	for i := 1; i < len(a.Configs); i++ {
		if a.Configs[i-1].Sketch.Quantile(0.95) > a.Configs[i].Sketch.Quantile(0.95) {
			t.Errorf("configs not ranked by p95 at %d", i)
		}
	}
	// Config totals must cover the whole campaign.
	var sess int
	var events uint64
	for _, c := range a.Configs {
		sess += c.Sessions
		events += c.Sketch.Count()
	}
	if sess != a.Sessions || events != a.Events {
		t.Errorf("config totals %d/%d vs analysis %d/%d", sess, events, a.Sessions, a.Events)
	}
	if len(a.SuggestedNext) == 0 {
		t.Fatal("no suggested cells")
	}
	for _, n := range a.SuggestedNext {
		if n.SeedCount < 1 || (n.Reason != "p99" && n.Reason != "jitter") {
			t.Errorf("bad suggestion %+v", n)
		}
		// Refined cells are halves of per_cell=6 chunks.
		if n.SeedCount != 3 {
			t.Errorf("suggestion %+v not a half-cell", n)
		}
	}
	// Render is deterministic and carries the table and suggestions.
	var r1, r2 strings.Builder
	if err := a.Render(&r1); err != nil {
		t.Fatal(err)
	}
	if err := a.Render(&r2); err != nil {
		t.Fatal(err)
	}
	if r1.String() != r2.String() {
		t.Error("Render not deterministic")
	}
	for _, want := range []string{"Campaign mini", "config", "p95", "jitter", "suggested_next", "tiny-type/"} {
		if !strings.Contains(r1.String(), want) {
			t.Errorf("render missing %q:\n%s", want, r1.String())
		}
	}
}

func TestAnalyzeRejects(t *testing.T) {
	ledger, _ := runMini(t, 1)
	recs, err := ParseLedger(ledger)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(nil); err == nil {
		t.Error("empty ledger must error")
	}
	dup := append(append([]Record{}, recs...), recs[0])
	if _, err := Analyze(dup); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate cell: %v", err)
	}
	mixed := append([]Record{}, recs...)
	mixed[1].Campaign = "other"
	if _, err := Analyze(mixed); err == nil || !strings.Contains(err.Error(), "mixes campaigns") {
		t.Errorf("mixed campaigns: %v", err)
	}
	mode := append([]Record{}, recs...)
	mode[1].Quick = false
	if _, err := Analyze(mode); err == nil || !strings.Contains(err.Error(), "quick") {
		t.Errorf("mixed modes: %v", err)
	}
}
