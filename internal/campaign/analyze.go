package campaign

import (
	"fmt"
	"io"
	"sort"

	"latlab/internal/stats"
	"latlab/internal/viz"
)

// ConfigStats is one configuration's distribution, merged across every
// cell (seed subrange) the ledger holds for it.
type ConfigStats struct {
	// Scenario, Persona, Machine name the configuration; Faults is its
	// fault-plan variant ("" when the records ran the template's own
	// block).
	Scenario string
	Persona  string
	Machine  string
	Faults   string
	// Cells and Sessions count the ledger records and sessions merged.
	Cells    int
	Sessions int
	// Sketch is the merged distribution; headline metrics read from it.
	Sketch *stats.Sketch
	// Perception is the merged perceptual-class block, nil when none of
	// the configuration's records carried one.
	Perception *PerceptionStats
}

// Key returns the configuration key, matching Record.Config.
func (c ConfigStats) Key() string {
	return configKey(c.Scenario, c.Persona, c.Machine, c.Faults)
}

// NextCell is one suggested follow-up cell: a refined seed subrange of
// a cell that showed the worst tail or variance, so the next campaign
// can zoom where the distribution is ugliest.
type NextCell struct {
	// Reason says which ranking produced the suggestion ("p99" or
	// "jitter").
	Reason string `json:"reason"`
	// Scenario, Persona, Machine name the configuration to re-sweep;
	// Faults carries the source cell's fault variant.
	Scenario string `json:"scenario"`
	Persona  string `json:"persona"`
	Machine  string `json:"machine"`
	Faults   string `json:"faults,omitempty"`
	// SeedStart and SeedCount delimit the refined subrange: one half of
	// the source cell's range.
	SeedStart uint64 `json:"seed_start"`
	SeedCount int    `json:"seed_count"`
}

// Analysis is a replayed ledger: one merged ConfigStats per
// configuration, ranked, plus the suggested follow-up cells.
type Analysis struct {
	// Campaign is the campaign id every record carried.
	Campaign string
	// Quick records the mode the ledger was produced in.
	Quick bool
	// Cells, Sessions, Events total the ledger.
	Cells    int
	Sessions int
	Events   uint64
	// Configs holds one entry per configuration, in ranked order: best
	// p95 first, ties broken by p50, then jitter, then key.
	Configs []ConfigStats
	// SuggestedNext lists refined follow-up cells for the worst-tail
	// and worst-jitter cells.
	SuggestedNext []NextCell
}

// suggestPerRanking is how many worst cells each ranking (p99, jitter)
// contributes suggestions for.
const suggestPerRanking = 3

// Analyze replays ledger records into per-configuration distributions.
// Sketches merge in ledger order, so for a canonical ledger (expansion
// order) the analysis is deterministic down to the float bits. All
// records must come from one campaign and one mode.
func Analyze(records []Record) (*Analysis, error) {
	if len(records) == 0 {
		return nil, fmt.Errorf("campaign: empty ledger")
	}
	a := &Analysis{Campaign: records[0].Campaign, Quick: records[0].Quick}
	byKey := map[string]int{}
	seen := map[string]bool{}
	for _, r := range records {
		if r.Campaign != a.Campaign {
			return nil, fmt.Errorf("campaign: ledger mixes campaigns %q and %q", a.Campaign, r.Campaign)
		}
		if r.Quick != a.Quick {
			return nil, fmt.Errorf("campaign: ledger mixes quick and full-size records")
		}
		if cell := r.Cell(); seen[cell] {
			return nil, fmt.Errorf("campaign: duplicate ledger record for cell %s", cell)
		} else {
			seen[cell] = true
		}
		a.Cells++
		a.Sessions += r.Sessions
		a.Events += r.Sketch.Count()
		key := r.Config()
		i, ok := byKey[key]
		if !ok {
			i = len(a.Configs)
			byKey[key] = i
			a.Configs = append(a.Configs, ConfigStats{
				Scenario: r.Scenario, Persona: r.Persona, Machine: r.Machine, Faults: r.Faults,
				Sketch: stats.NewSketch(r.Sketch.Alpha()),
			})
		}
		c := &a.Configs[i]
		if err := c.Sketch.Merge(r.Sketch); err != nil {
			return nil, fmt.Errorf("campaign: config %s: %w", key, err)
		}
		if r.Perception != nil {
			if c.Perception == nil {
				c.Perception = &PerceptionStats{}
			}
			if err := c.Perception.Merge(r.Perception); err != nil {
				return nil, fmt.Errorf("campaign: config %s: %w", key, err)
			}
		}
		c.Cells++
		c.Sessions += r.Sessions
	}
	// Rank configurations: best p95 first. The paper's argument is that
	// tails, not means, decide interactive feel, so the headline order
	// follows the tail.
	sort.SliceStable(a.Configs, func(i, j int) bool {
		ci, cj := a.Configs[i], a.Configs[j]
		pi, pj := ci.Sketch.Quantile(0.95), cj.Sketch.Quantile(0.95)
		if pi != pj {
			return pi < pj
		}
		mi, mj := ci.Sketch.Quantile(0.5), cj.Sketch.Quantile(0.5)
		if mi != mj {
			return mi < mj
		}
		si, sj := ci.Sketch.StdDev(), cj.Sketch.StdDev()
		if si != sj {
			return si < sj
		}
		return ci.Key() < cj.Key()
	})
	a.SuggestedNext = suggestNext(records)
	return a, nil
}

// suggestNext picks the worst cells by p99 and by jitter and splits
// each one's seed range in half: refined cells for the next sweep.
// Ties break by cell id, so suggestions are deterministic.
func suggestNext(records []Record) []NextCell {
	worst := func(metric func(Record) float64) []Record {
		idx := make([]int, len(records))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(i, j int) bool {
			mi, mj := metric(records[idx[i]]), metric(records[idx[j]])
			if mi != mj {
				return mi > mj
			}
			return records[idx[i]].Cell() < records[idx[j]].Cell()
		})
		n := suggestPerRanking
		if n > len(idx) {
			n = len(idx)
		}
		out := make([]Record, n)
		for i := 0; i < n; i++ {
			out[i] = records[idx[i]]
		}
		return out
	}
	var next []NextCell
	seen := map[string]bool{}
	add := func(reason string, recs []Record) {
		for _, r := range recs {
			if seen[r.Cell()] {
				continue
			}
			seen[r.Cell()] = true
			half := r.SeedCount / 2
			if half == 0 {
				// A one-seed cell cannot refine further; re-suggest it whole.
				next = append(next, NextCell{
					Reason: reason, Scenario: r.Scenario, Persona: r.Persona, Machine: r.Machine, Faults: r.Faults,
					SeedStart: r.SeedStart, SeedCount: r.SeedCount,
				})
				continue
			}
			next = append(next,
				NextCell{
					Reason: reason, Scenario: r.Scenario, Persona: r.Persona, Machine: r.Machine, Faults: r.Faults,
					SeedStart: r.SeedStart, SeedCount: half,
				},
				NextCell{
					Reason: reason, Scenario: r.Scenario, Persona: r.Persona, Machine: r.Machine, Faults: r.Faults,
					SeedStart: r.SeedStart + uint64(half), SeedCount: r.SeedCount - half,
				})
		}
	}
	add("p99", worst(func(r Record) float64 { return r.P99Ms }))
	add("jitter", worst(func(r Record) float64 { return r.JitterMs }))
	return next
}

// NextSpec renders the analysis's suggested_next cells as a runnable
// follow-up campaign spec (the explicit cell-list form), closing the
// agent loop: analyze a ledger, emit the spec, run it. scenarioPath
// maps each suggested cell's scenario id to the document path the
// emitted spec should reference (relative to wherever the spec will be
// written); every suggested scenario must be present. The result is
// deterministic for a given analysis.
func (a *Analysis) NextSpec(scenarioPath map[string]string) (Spec, error) {
	if len(a.SuggestedNext) == 0 {
		return Spec{}, fmt.Errorf("campaign: no suggested cells to emit")
	}
	s := Spec{
		Schema: SpecSchemaVersion,
		ID:     a.Campaign + "-next",
		Title:  fmt.Sprintf("suggested_next refinement of campaign %s", a.Campaign),
		Notes: fmt.Sprintf("Emitted by `campaign analyze -emit-spec` from a %d-cell ledger: "+
			"the worst-p99 and worst-jitter cells, split into refined seed subranges.", a.Cells),
	}
	seen := map[string]bool{}
	for _, n := range a.SuggestedNext {
		if !seen[n.Scenario] {
			path, ok := scenarioPath[n.Scenario]
			if !ok {
				return Spec{}, fmt.Errorf("campaign: no scenario path known for suggested scenario id %q", n.Scenario)
			}
			seen[n.Scenario] = true
			s.Scenarios = append(s.Scenarios, path)
		}
		s.Cells = append(s.Cells, CellRef{
			Scenario:  n.Scenario,
			Persona:   n.Persona,
			Machine:   n.Machine,
			Faults:    n.Faults,
			SeedStart: n.SeedStart,
			SeedCount: n.SeedCount,
		})
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Render writes the analyze report: campaign totals, the ranked KPI
// table, and the suggested follow-up cells as JSON lines. The output
// is deterministic for a given ledger.
func (a *Analysis) Render(w io.Writer) error {
	mode := "full-size"
	if a.Quick {
		mode = "quick"
	}
	fmt.Fprintf(w, "Campaign %s — %d configurations, %d cells, %d sessions, %d events (%s)\n\n",
		a.Campaign, len(a.Configs), a.Cells, a.Sessions, a.Events, mode)
	header := []string{"config", "sessions", "events", "p50", "p95", "p99", "max", "mean", "jitter"}
	rows := make([][]string, len(a.Configs))
	for i, c := range a.Configs {
		sk := c.Sketch
		rows[i] = []string{
			c.Key(),
			fmt.Sprintf("%d", c.Sessions),
			fmt.Sprintf("%d", sk.Count()),
			fmtCellMs(sk.Quantile(0.50)),
			fmtCellMs(sk.Quantile(0.95)),
			fmtCellMs(sk.Quantile(0.99)),
			fmtCellMs(sk.Max()),
			fmtCellMs(sk.Mean()),
			// Jitter runs orders of magnitude below the latencies
			// themselves, so it gets an extra decimal place.
			fmt.Sprintf("%.3fms", sk.StdDev()),
		}
	}
	if err := viz.KPITable(w, "  ", header, rows); err != nil {
		return err
	}
	if err := a.renderPerception(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nsuggested_next (%d cells):\n", len(a.SuggestedNext))
	for _, n := range a.SuggestedNext {
		// The faults field renders only when set, so pre-faults-axis
		// ledgers reproduce their committed reports byte for byte.
		f := ""
		if n.Faults != "" {
			f = fmt.Sprintf(",\"faults\":%q", n.Faults)
		}
		fmt.Fprintf(w, "  {\"reason\":%q,\"scenario\":%q,\"persona\":%q,\"machine\":%q%s,\"seed_start\":%d,\"seed_count\":%d}\n",
			n.Reason, n.Scenario, n.Persona, n.Machine, f, n.SeedStart, n.SeedCount)
	}
	return nil
}

// renderPerception writes the perceptual-class table — class shares and
// per-event-class p95s per configuration, in the ranked order — when at
// least one configuration carries a perception block. Ledgers without
// the block render nothing here, keeping pre-existing reports byte for
// byte.
func (a *Analysis) renderPerception(w io.Writer) error {
	any := false
	for _, c := range a.Configs {
		if c.Perception != nil {
			any = true
			break
		}
	}
	if !any {
		return nil
	}
	fmt.Fprintf(w, "\nperception classes (default calibration):\n")
	header := []string{"config", "impercep", "percep", "annoying", "unusable", "typing-p95", "point-p95", "cmd-p95"}
	var rows [][]string
	share := func(n, total uint64) string {
		if total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1f%%", 100*float64(n)/float64(total))
	}
	p95 := func(sk *stats.Sketch) string {
		if sk == nil || sk.Count() == 0 {
			return "-"
		}
		return fmtCellMs(sk.Quantile(0.95))
	}
	for _, c := range a.Configs {
		p := c.Perception
		if p == nil {
			continue
		}
		total := p.ClassTotal()
		rows = append(rows, []string{
			c.Key(),
			share(p.Imperceptible, total),
			share(p.Perceptible, total),
			share(p.Annoying, total),
			share(p.Unusable, total),
			p95(p.Typing),
			p95(p.Pointing),
			p95(p.Command),
		})
	}
	return viz.KPITable(w, "  ", header, rows)
}

// fmtCellMs renders a millisecond KPI cell.
func fmtCellMs(ms float64) string { return fmt.Sprintf("%.2fms", ms) }
