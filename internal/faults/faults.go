package faults

import (
	"fmt"
	"sort"
	"strings"

	"latlab/internal/cpu"
	"latlab/internal/disk"
	"latlab/internal/kernel"
	"latlab/internal/rng"
	"latlab/internal/simtime"
)

// Kind classifies a fault. The magnitude's meaning is kind-specific.
type Kind uint8

// Fault kinds.
const (
	// DiskDegrade multiplies disk service times by Magnitude while
	// active (a drive in thermal recalibration, a failing spindle).
	DiskDegrade Kind = iota
	// DiskStall freezes the device for the window: transfers cannot
	// start before the window ends. Magnitude is unused.
	DiskStall
	// DiskMediaErrors makes each transfer attempt completing in the
	// window fail with probability Magnitude/(attempt+1) — retries are
	// progressively likelier to succeed, like a marginal sector.
	DiskMediaErrors
	// IRQStorm raises Magnitude spurious interrupts per second (a chatty
	// device or a stuck line stealing CPU from whatever runs).
	IRQStorm
	// TimerJitter delays each clock tick armed in the window by a
	// uniform random amount up to Magnitude milliseconds.
	TimerJitter
	// PriorityInversion boosts a background thread above the foreground
	// application for the window. Magnitude is unused; the priorities
	// come from the Target.
	PriorityInversion
	// CachePressure evicts Magnitude buffer-cache pages every pressure
	// interval while active (a competing working set).
	CachePressure

	numKinds
)

// String returns the stable name used in plan renders and manifests.
func (k Kind) String() string {
	switch k {
	case DiskDegrade:
		return "disk-degrade"
	case DiskStall:
		return "disk-stall"
	case DiskMediaErrors:
		return "disk-media-errors"
	case IRQStorm:
		return "irq-storm"
	case TimerJitter:
		return "timer-jitter"
	case PriorityInversion:
		return "priority-inversion"
	case CachePressure:
		return "cache-pressure"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// KindByName returns the kind with the given stable name (the String
// form used in plan renders, manifests, and scenario documents).
func KindByName(name string) (Kind, bool) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

// KindNames returns the stable names of every kind, in Kind order.
func KindNames() []string {
	out := make([]string, numKinds)
	for k := Kind(0); k < numKinds; k++ {
		out[k] = k.String()
	}
	return out
}

// Fault is one scheduled degradation window.
type Fault struct {
	Kind      Kind
	Start     simtime.Time
	Duration  simtime.Duration
	Magnitude float64
}

// End returns the instant the fault stops.
func (f Fault) End() simtime.Time { return f.Start.Add(f.Duration) }

// Active reports whether the fault covers t.
func (f Fault) Active(t simtime.Time) bool { return t >= f.Start && t < f.End() }

// String renders the record, e.g.
// "disk-degrade [12.000s +8.000s) x5.2".
func (f Fault) String() string {
	return fmt.Sprintf("%s [%v +%v) x%.2f", f.Kind, f.Start, f.Duration, f.Magnitude)
}

// Plan is a seed plus the fault records derived from it. The zero value
// is the empty plan (no faults).
type Plan struct {
	Seed   uint64
	Faults []Fault
}

// Empty reports whether the plan schedules no faults.
func (p Plan) Empty() bool { return len(p.Faults) == 0 }

// String renders the plan one fault per line, deterministic order.
func (p Plan) String() string {
	if p.Empty() {
		return "(no faults)"
	}
	var b strings.Builder
	for i, f := range p.Faults {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.String())
	}
	return b.String()
}

// salt derives the per-kind RNG stream from the plan seed so adding a
// kind to a plan never shifts another kind's draws.
func salt(k Kind) uint64 { return 0x9e3779b97f4a7c15 * (uint64(k) + 1) }

// Generate derives a plan from seed alone: one window per requested
// kind, placed in the middle stretch of span (15–45% in, 15–40% of span
// long) with a kind-appropriate magnitude. Kinds are emitted in the
// order given; each kind's window depends only on (seed, kind), so
// plans compose predictably.
func Generate(seed uint64, span simtime.Duration, kinds ...Kind) Plan {
	p := Plan{Seed: seed}
	for _, k := range kinds {
		r := rng.New(seed ^ salt(k))
		start := simtime.Time(float64(span) * (0.15 + 0.30*r.Float64()))
		dur := simtime.Duration(float64(span) * (0.15 + 0.25*r.Float64()))
		p.Faults = append(p.Faults, Fault{Kind: k, Start: start, Duration: dur, Magnitude: magnitude(k, r)})
	}
	sort.SliceStable(p.Faults, func(i, j int) bool {
		if p.Faults[i].Start != p.Faults[j].Start {
			return p.Faults[i].Start < p.Faults[j].Start
		}
		return p.Faults[i].Kind < p.Faults[j].Kind
	})
	return p
}

// magnitude draws a kind-appropriate magnitude.
func magnitude(k Kind, r *rng.Source) float64 {
	switch k {
	case DiskDegrade:
		return 3 + 5*r.Float64() // 3–8x slower
	case DiskMediaErrors:
		return 0.5 + 0.4*r.Float64() // 50–90% first-attempt failure
	case IRQStorm:
		return 2000 + 3000*r.Float64() // interrupts per second
	case TimerJitter:
		return 2 + 6*r.Float64() // up to 2–8 ms per tick
	case CachePressure:
		return float64(64 + r.Intn(192)) // pages per pressure interval
	default:
		return 0
	}
}

// Clock scopes a plan to one machine run. It resolves which faults are
// active at any instant, owns the injection RNG streams, and implements
// disk.FaultModel. One Clock per booted machine; not safe for use by
// more than one simulator.
type Clock struct {
	plan    Plan
	diskRnd *rng.Source // media-error attempt decisions
	tickRnd *rng.Source // timer-jitter amounts
}

// NewClock builds a clock for plan.
func NewClock(plan Plan) *Clock {
	return &Clock{
		plan:    plan,
		diskRnd: rng.New(plan.Seed ^ 0x6469736b_66617631), // "diskfav1"
		tickRnd: rng.New(plan.Seed ^ 0x7469636b_6a697431), // "tickjit1"
	}
}

// Plan returns the scoped plan.
func (c *Clock) Plan() Plan { return c.plan }

// Active returns the first fault of the given kind covering t.
func (c *Clock) Active(kind Kind, t simtime.Time) (Fault, bool) {
	for _, f := range c.plan.Faults {
		if f.Kind == kind && f.Active(t) {
			return f, true
		}
	}
	return Fault{}, false
}

// ServiceFactor implements disk.FaultModel.
func (c *Clock) ServiceFactor(t simtime.Time) float64 {
	if f, ok := c.Active(DiskDegrade, t); ok {
		return f.Magnitude
	}
	return 1
}

// StallUntil implements disk.FaultModel: a transfer starting inside a
// DiskStall window waits for the window to end.
func (c *Clock) StallUntil(t simtime.Time) simtime.Time {
	if f, ok := c.Active(DiskStall, t); ok {
		return f.End()
	}
	return t
}

// AttemptFails implements disk.FaultModel.
func (c *Clock) AttemptFails(_ disk.Op, _ int64, t simtime.Time, attempt int) bool {
	f, ok := c.Active(DiskMediaErrors, t)
	if !ok {
		return false
	}
	return c.diskRnd.Float64() < f.Magnitude/float64(attempt+1)
}

// DefaultStormSegment is the handler cost charged per spurious IRQStorm
// interrupt when the Target does not supply one: a misbehaving device
// whose handler runs ~100 µs at 100 MHz, so a few-kHz storm steals a
// large fraction of the CPU — the paper's §2.5 "interrupt activity"
// made pathological.
func DefaultStormSegment() cpu.Segment {
	return cpu.Segment{Name: "stormintr", BaseCycles: 10_000, Instructions: 6_000, DataRefs: 2_200}
}

// Target names the machine pieces Arm injects into. K is required; the
// rest configure individual kinds and are only consulted when the plan
// schedules that kind.
type Target struct {
	// K is the kernel under attack.
	K *kernel.Kernel
	// StormSegment is the per-interrupt handler cost for IRQStorm
	// windows; zero value means DefaultStormSegment.
	StormSegment cpu.Segment
	// Background is the thread boosted during PriorityInversion windows
	// (typically an OS housekeeping thread); nil skips the kind.
	Background *kernel.Thread
	// BoostPrio is the priority Background is raised to; it should
	// exceed the foreground application's priority to invert.
	BoostPrio int
	// PressureEvery is the CachePressure eviction interval; zero means
	// one clock tick (10 ms).
	PressureEvery simtime.Duration
}

// Arm installs the plan on t's machine. It must be called before the
// simulation starts (all fault windows open at strictly positive times)
// and at most once per clock. An empty plan is a no-op: nothing is
// installed and the machine stays on its fault-free path.
func (c *Clock) Arm(t Target) {
	if c.plan.Empty() {
		return
	}
	if t.K == nil {
		panic("faults: Arm with nil kernel")
	}
	k := t.K
	hasDisk, hasJitter := false, false
	for _, f := range c.plan.Faults {
		f := f
		switch f.Kind {
		case DiskDegrade, DiskStall, DiskMediaErrors:
			hasDisk = true
		case TimerJitter:
			hasJitter = true
		case IRQStorm:
			c.armStorm(k, t, f)
		case PriorityInversion:
			c.armInversion(k, t, f)
		case CachePressure:
			c.armPressure(k, t, f)
		}
	}
	if hasDisk {
		k.Disk().SetFaults(c)
	}
	if hasJitter {
		k.SetTickJitter(func(now simtime.Time, _ int64) simtime.Duration {
			f, ok := c.Active(TimerJitter, now)
			if !ok {
				return 0
			}
			return simtime.Duration(c.tickRnd.Float64() * f.Magnitude * float64(simtime.Millisecond))
		})
	}
}

// armStorm schedules a self-rescheduling spurious-interrupt source over
// f's window.
func (c *Clock) armStorm(k *kernel.Kernel, t Target, f Fault) {
	seg := t.StormSegment
	if seg.BaseCycles == 0 {
		seg = DefaultStormSegment()
	}
	period := simtime.Duration(float64(simtime.Second) / f.Magnitude)
	if period < 50*simtime.Microsecond {
		period = 50 * simtime.Microsecond
	}
	var fire func(now simtime.Time)
	fire = func(now simtime.Time) {
		if now >= f.End() {
			return
		}
		k.RaiseInterrupt(seg, nil)
		k.At(now.Add(period), fire)
	}
	k.At(f.Start, fire)
}

// armInversion boosts the background thread over the window and
// restores its original priority after.
func (c *Clock) armInversion(k *kernel.Kernel, t Target, f Fault) {
	bg := t.Background
	if bg == nil {
		return
	}
	restore := bg.Priority()
	k.At(f.Start, func(simtime.Time) { k.SetPriority(bg, t.BoostPrio) })
	k.At(f.End(), func(simtime.Time) { k.SetPriority(bg, restore) })
}

// armPressure evicts cache pages periodically over the window.
func (c *Clock) armPressure(k *kernel.Kernel, t Target, f Fault) {
	every := t.PressureEvery
	if every <= 0 {
		every = 10 * simtime.Millisecond
	}
	pages := int(f.Magnitude)
	var press func(now simtime.Time)
	press = func(now simtime.Time) {
		if now >= f.End() {
			return
		}
		k.Cache().EvictOldest(pages)
		k.At(now.Add(every), press)
	}
	k.At(f.Start, press)
}
